(* The paper's §5.2 worked example (Figure 5), step by step: three
   concurrent updates against a keyless three-way join view, maintained by
   SWEEP with on-line local error correction.

   Run with: dune exec examples/figure5_walkthrough.exe *)

open Repro_relational
open Repro_sim
open Repro_warehouse
open Repro_consistency
open Repro_workload
open Repro_harness

let () =
  Format.printf
    "Figure 5 (SIGMOD'97): V = π[D,F] (R1 ⋈(B=C) R2 ⋈(D=E) R3)@.@.";
  let s2, d2 = (Paper_example.d_r2 ()) in
  let s3, d3 = (Paper_example.d_r3 ()) in
  let s1, d1 = (Paper_example.d_r1 ()) in
  (* ΔR2 first; ΔR3 and ΔR1 land while ΔR2's sweep query to R1 is in
     flight — the §5.2 interleaving. *)
  let outcome =
    Experiment.run_scripted ~algorithm:(module Sweep : Algorithm.S)
      ~view:(Paper_example.view ())
      ~initial:(Paper_example.initial ())
      ~updates:[ (0.0, s2, d2); (1.4, s3, d3); (1.5, s1, d1) ]
      ()
  in
  Format.printf "full simulation trace:@.";
  List.iter
    (fun l ->
      Format.printf "  [%6.2f] %-10s %s@." l.Trace.time l.Trace.who
        l.Trace.text)
    (Trace.lines outcome.Experiment.trace);
  Format.printf "@.view states (paper's Figure 5 warehouse column):@.";
  Format.printf "  initial:      %a@." Bag.pp (Paper_example.v0 ());
  List.iter2
    (fun label (r : Node.install_record) ->
      Format.printf "  after %s: %a@." label Bag.pp r.Node.view_after)
    [ "ΔR2"; "ΔR3"; "ΔR1" ]
    (Node.installs outcome.Experiment.node);
  let verdict = Experiment.check_scripted outcome in
  Format.printf "@.checker: %a — every Figure 5 state reproduced exactly.@."
    Checker.pp_verdict verdict.Checker.verdict
