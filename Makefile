.PHONY: all build test lint lint-fast lint-json lint-sarif faults recover chaos serve aux joins bench bench-json bench-compare examples doc clean

all: build

build:
	dune build @all

test:
	dune runtest

# Repository-invariant static analysis (rules L1-L9, see DESIGN.md §11
# and §16). Fails on any error-severity finding not covered by an
# audited `(* lint: allow <rule> <reason> *)` pragma.
lint:
	dune exec bin/repro_lint.exe -- lib bin bench test

# Incremental pass over the files git reports changed vs HEAD; the
# module graph forces a full run whenever a changed interface or a
# referenced unit could shift cross-module verdicts elsewhere.
lint-fast:
	dune exec bin/repro_lint.exe -- --changed lib bin bench test

# Same pass, machine-readable report for CI artifacts.
lint-json:
	dune exec bin/repro_lint.exe -- --json lib bin bench test > LINT.json

# SARIF 2.1.0 interchange document (code-scanning upload format).
lint-sarif:
	dune exec bin/repro_lint.exe -- --sarif LINT.sarif lib bin bench test

# Seeded fault-schedule property suite only (transport + fault injection).
faults:
	dune exec test/test_main.exe -- test faults

# Warehouse crash-recovery suite only (WAL + checkpoint + restart).
recover:
	dune exec test/test_main.exe -- test recovery

# Composed chaos suite at full scale: 50 randomized Fault.chaos
# schedules per algorithm (heavy link faults, overlapping source
# crashes, a warehouse outage) with query deadlines and circuit
# breakers armed; checks progress, deterministic replay, consistency
# floors and post-heal convergence. `dune runtest` runs the same suite
# at 6 seeds.
chaos:
	CHAOS_SEEDS=50 dune exec test/test_main.exe -- test chaos

# Read-path serving suite at full scale: 25 seeded read storms per
# algorithm (flash-crowd bursts, admission control, staleness SLOs,
# session guarantees, degraded serving under an open breaker). `dune
# runtest` runs the same suite at 5 seeds.
serve:
	SERVE_SEEDS=25 dune exec test/test_main.exe -- test serving

# Self-maintenance differential suite at full depth: 100 seeds per
# algorithm (sweep, sweep-batched, nested-sweep, strobe) proving the
# auxiliary-projection path (DESIGN.md §14) produces bit-identical
# views, replays and verdicts versus --aux off, plus the random
# join-spec answerability property. `dune runtest` runs the same
# suite at 5 seeds.
aux:
	AUX_SEEDS=100 dune exec test/test_main.exe -- test aux

# Join-strategy differential suite at full depth: 100 seeds per
# algorithm proving pairwise, probe and trie execution produce
# bit-identical views, replays and verdicts (including under crash and
# outage schedules), and that the default probe path never degrades to
# an unindexed scan. `dune runtest` runs the same suite at 5 seeds.
joins:
	JOIN_SEEDS=100 dune exec test/test_main.exe -- test join-strategies

# Regenerate every table and figure of the paper (see EXPERIMENTS.md).
bench:
	dune exec bench/main.exe

# Machine-readable benchmark document at reduced scale, then the CI
# perf gate: re-read BENCH.json and fail on any missing/malformed field.
bench-json:
	dune exec bench/main.exe -- micro --json-out BENCH.json --scale 0.2
	dune exec bin/bench_check.exe -- BENCH.json

# Like bench-json, but additionally compare against the most recent
# committed BENCH_<n>.json and fail on a >25% regression in
# messages-per-update, staleness p99 or read-staleness p99 (all
# deterministic per seed; wall-clock figures are never gated).
bench-compare:
	dune exec bench/main.exe -- micro --json-out BENCH.json --scale 0.2
	baseline=$$(ls BENCH_[0-9]*.json 2>/dev/null | sort -V | tail -1); \
	if [ -n "$$baseline" ]; then \
	  dune exec bin/bench_check.exe -- BENCH.json --against $$baseline; \
	else \
	  dune exec bin/bench_check.exe -- BENCH.json; \
	fi

examples:
	for e in quickstart figure5_walkthrough retail_warehouse \
	         concurrent_anomaly algorithm_comparison star_schema; do \
	  echo "== $$e =="; dune exec examples/$$e.exe; echo; done

clean:
	dune clean
