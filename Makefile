.PHONY: all build test faults recover bench examples doc clean

all: build

build:
	dune build @all

test:
	dune runtest

# Seeded fault-schedule property suite only (transport + fault injection).
faults:
	dune exec test/test_main.exe -- test faults

# Warehouse crash-recovery suite only (WAL + checkpoint + restart).
recover:
	dune exec test/test_main.exe -- test recovery

# Regenerate every table and figure of the paper (see EXPERIMENTS.md).
bench:
	dune exec bench/main.exe

examples:
	for e in quickstart figure5_walkthrough retail_warehouse \
	         concurrent_anomaly algorithm_comparison star_schema; do \
	  echo "== $$e =="; dune exec examples/$$e.exe; echo; done

clean:
	dune clean
