.PHONY: all build test bench examples doc clean

all: build

build:
	dune build @all

test:
	dune runtest

# Regenerate every table and figure of the paper (see EXPERIMENTS.md).
bench:
	dune exec bench/main.exe

examples:
	for e in quickstart figure5_walkthrough retail_warehouse \
	         concurrent_anomaly algorithm_comparison star_schema; do \
	  echo "== $$e =="; dune exec examples/$$e.exe; echo; done

clean:
	dune clean
