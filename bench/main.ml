(* Benchmark / experiment driver.

   With no arguments it regenerates every table and figure of the paper
   (T1, F5, F2, E1–E6; see DESIGN.md §4) and then runs the Bechamel
   micro-benchmarks of the hot paths. A single argument selects one
   experiment ("t1", "f5", "f2", "e1".."e6", "micro").

   With --json-out FILE it instead emits the machine-readable BENCH.json
   (schema "repro-bench/1"): micro-benchmark estimates plus one registry
   entry (counters + latency histograms) per algorithm on the concurrent
   and centralized presets. --scale F shrinks both the workloads and the
   Bechamel quota, for the CI perf gate:

     dune exec bench/main.exe -- micro --json-out BENCH.json --scale 0.2 *)

open Repro_relational
open Repro_sim
open Repro_workload
open Repro_harness

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                            *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let rng = Rng.create 2024L in
  let view3 = Chain.view ~n:3 () in
  let rels = Chain.populate view3 ~size:1000 ~domain:64 rng in
  let delta = Delta.insertion (Chain.tuple ~key:10_000 ~a:7 ~b:9) in
  let bench_hash_join =
    Test.make ~name:"hash join 1k x 1k"
      (Staged.stage (fun () ->
           let left = Partial.of_relation view3 0 rels.(0) in
           let right = Partial.of_relation view3 1 rels.(1) in
           ignore (Algebra.join view3 left right)))
  in
  let bench_sweep_step =
    Test.make ~name:"sweep step (dR join R, 1k tuples)"
      (Staged.stage (fun () ->
           let p = Partial.of_source_delta view3 1 delta in
           ignore (Algebra.extend view3 p ~with_relation:(0, rels.(0)))))
  in
  let bench_compensate =
    let temp = Partial.of_source_delta view3 1 delta in
    let answer = Algebra.extend view3 temp ~with_relation:(0, rels.(0)) in
    Test.make ~name:"local compensation"
      (Staged.stage (fun () ->
           ignore
             (Algebra.compensate view3 ~answer
                ~interfering:(Delta.deletion (Chain.tuple ~key:0 ~a:1 ~b:1))
                ~temp)))
  in
  let bench_full_eval =
    Test.make ~name:"full view recompute (3 x 1k)"
      (Staged.stage (fun () -> ignore (Algebra.eval view3 (fun i -> rels.(i)))))
  in
  let bench_delta_apply =
    Test.make ~name:"delta apply to 1k-tuple bag"
      (Staged.stage (fun () ->
           let b = Bag.copy (Relation.as_bag rels.(2)) in
           Bag.merge_into ~into:b delta))
  in
  let bench_sim_round =
    Test.make ~name:"simulated SWEEP run (3 sources, 10 updates)"
      (Staged.stage (fun () ->
           let sc =
             { Scenario.default with
               init_size = 30;
               stream =
                 { Update_gen.default with n_updates = 10; mean_gap = 0.5 } }
           in
           ignore
             (Experiment.run ~check:false sc
                (module Repro_warehouse.Sweep : Repro_warehouse.Algorithm.S))))
  in
  let bench_indexed_probe =
    (* the source-side fast path: probe a persistent index instead of
       building a hash table over the whole relation per query *)
    let tbl =
      Repro_source.Base_table.create ~source:0 ~indexes:[ 2 ] rels.(0)
    in
    Test.make ~name:"sweep step via persistent index (1k tuples)"
      (Staged.stage (fun () ->
           let p = Partial.of_source_delta view3 1 delta in
           ignore
             (Algebra.extend_with_probe view3 p ~source:0
                ~probe:(fun ~col ~value ->
                  Repro_source.Base_table.probe tbl ~col ~value))))
  in
  let bench_trie_step =
    (* the same leg as a sorted-intersection over a prebuilt trie *)
    let tbl = Repro_source.Base_table.create ~source:0 ~view:view3 rels.(0) in
    ignore (Repro_source.Base_table.trie tbl ~col:2);
    Test.make ~name:"sweep step via trie join (1k tuples)"
      (Staged.stage (fun () ->
           let p = Partial.of_source_delta view3 1 delta in
           ignore
             (Trie_join.extend view3 p ~source:0
                ~trie:(fun ~col -> Repro_source.Base_table.trie tbl ~col))))
  in
  let bench_trie_chain =
    (* the full multiway delta join, one intersection per junction *)
    let tbls =
      Array.init 3 (fun i ->
          Repro_source.Base_table.create ~source:i ~view:view3 rels.(i))
    in
    Array.iteri
      (fun i tbl ->
        List.iter
          (fun col -> ignore (Repro_source.Base_table.trie tbl ~col))
          (Repro_source.Base_table.join_columns view3 i))
      tbls;
    Test.make ~name:"trie chain eval (dR1, 3 x 1k tuples)"
      (Staged.stage (fun () ->
           ignore
             (Trie_join.eval_chain view3 ~pin:(1, delta)
                ~trie:(fun j ~col -> Repro_source.Base_table.trie tbls.(j) ~col))))
  in
  let bench_sim_round_batched =
    (* tight gaps so the queue actually builds up and sweeps amortize *)
    Test.make ~name:"simulated batched-SWEEP run (3 sources, 10 updates)"
      (Staged.stage (fun () ->
           let sc =
             { Scenario.default with
               init_size = 30;
               stream =
                 { Update_gen.default with n_updates = 10; mean_gap = 0.1 } }
           in
           ignore
             (Experiment.run ~check:false sc
                (module Repro_warehouse.Sweep_batched
                : Repro_warehouse.Algorithm.S))))
  in
  let bench_queue_churn =
    (* the former O(n²) hot spot: append/drain a deep update queue *)
    let upd seq =
      { Repro_protocol.Message.txn = { Repro_protocol.Message.source = 0; seq };
        delta; occurred_at = 0.; global = None }
    in
    Test.make ~name:"update queue churn (1k append + batch drain)"
      (Staged.stage (fun () ->
           let q = Repro_warehouse.Update_queue.create () in
           for seq = 0 to 999 do
             ignore
               (Repro_warehouse.Update_queue.append q (upd seq) ~arrived_at:0.)
           done;
           while
             Repro_warehouse.Update_queue.take q ~max:16 <> []
           do
             ()
           done))
  in
  let bench_parser =
    Test.make ~name:"parse SQL view definition"
      (Staged.stage (fun () ->
           ignore
             (View_parser.parse_exn
                "SELECT R2.D, R3.F FROM R1(A int, B int), R2(C int, D int), \
                 R3(E int, F int) WHERE R1.B = R2.C AND R2.D = R3.E")))
  in
  [ bench_hash_join; bench_sweep_step; bench_indexed_probe; bench_trie_step;
    bench_trie_chain; bench_compensate; bench_full_eval; bench_delta_apply;
    bench_queue_churn; bench_parser; bench_sim_round;
    bench_sim_round_batched ]

(* Run the micro-benchmarks and return (name, ns-per-run) estimates;
   tests whose OLS fit fails are dropped. *)
let micro_estimates ?(quota = 0.5) () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:(Some 1000) ()
  in
  List.concat_map
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols (List.hd instances) results in
      Hashtbl.fold
        (fun name ols acc ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] when Float.is_finite est -> (name, est) :: acc
          | _ -> acc)
        analyzed []
      |> List.sort compare)
    (micro_tests ())

let run_micro () =
  print_endline
    "MICRO. Bechamel micro-benchmarks of the hot paths (monotonic clock).";
  let rows =
    List.map
      (fun (name, ns) -> [ name; Printf.sprintf "%.0f" ns ])
      (micro_estimates ())
  in
  print_string
    (Report.table ~title:"" ~headers:[ "benchmark"; "ns/run" ] ~rows ())

(* ------------------------------------------------------------------ *)
(* BENCH.json emission (the machine-readable document; see Bench_doc)   *)
(* ------------------------------------------------------------------ *)

let run_bench_json ~scale path =
  let module Obs = Repro_observability.Obs in
  let registry = Repro_observability.Registry.create () in
  let scaled sc =
    let stream = sc.Scenario.stream in
    let n_updates =
      max 5
        (int_of_float (float_of_int stream.Update_gen.n_updates *. scale))
    in
    { sc with Scenario.stream = { stream with Update_gen.n_updates } }
  in
  let scenarios =
    List.filter_map
      (fun name -> Option.map scaled (Scenario.find_preset name))
      (* chaos exercises the resilience counters (query_timeouts,
         breaker_trips, stalled_updates, degraded_time) so the perf gate
         validates them against a run where they are live, not zero *)
      (* read-heavy and flash-crowd exercise the serving counters
         (reads_served/stale/shed, read staleness quantiles) the same
         way *)
      (* self-maint exercises the self-maintenance counters
         (local_answers, aux_bytes, aux_hit_rate) with full aux
         projections — the gate checks messages/update < 1 there *)
      [ "concurrent"; "centralized"; "chaos"; "read-heavy"; "flash-crowd";
        "self-maint" ]
  in
  let experiments =
    List.concat_map
      (fun sc ->
        List.map
          (fun (name, alg) ->
            let obs = Obs.create () in
            let r = Experiment.run ~check:false ~obs sc alg in
            ignore (Bench_doc.register registry ~obs r);
            ( Printf.sprintf "%s/%s" name sc.Scenario.name,
              r.Experiment.wall_seconds ))
          (Experiment.algorithms_for sc))
      scenarios
  in
  let micro = micro_estimates ~quota:(Float.max 0.05 (0.5 *. scale)) () in
  Report.write_json path (Bench_doc.make ~scale ~experiments ~micro registry);
  Printf.printf "wrote %s (%d algorithm entries, %d micro rows)\n" path
    (List.length experiments) (List.length micro)

(* ------------------------------------------------------------------ *)
(* Dispatch                                                             *)
(* ------------------------------------------------------------------ *)

let known = [ "t1"; "f5"; "f2"; "e1"; "e2"; "e3"; "e4"; "e5"; "e6"; "e7"; "e8"; "e9"; "a1"; "a2"; "a3"; "micro" ]

let run_one id =
  match id with
  | "micro" -> run_micro ()
  | _ -> (
      match Paper_experiments.by_id id with
      | Some f -> print_string (f ())
      | None ->
          Printf.eprintf "unknown experiment %S; known: %s\n" id
            (String.concat ", " known);
          exit 2)

let usage () =
  Printf.eprintf "usage: main.exe [%s] [--json-out FILE] [--scale F]\n"
    (String.concat "|" known);
  exit 2

let () =
  let rec parse ids scale json = function
    | [] -> (List.rev ids, scale, json)
    | "--json-out" :: file :: rest -> parse ids scale (Some file) rest
    | "--scale" :: f :: rest -> (
        match float_of_string_opt f with
        | Some s when s > 0. && Float.is_finite s -> parse ids s json rest
        | _ ->
            Printf.eprintf "bad --scale %S (want a positive float)\n" f;
            exit 2)
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" ->
        usage ()
    | id :: rest -> parse (id :: ids) scale json rest
  in
  let ids, scale, json =
    parse [] 1.0 None (List.tl (Array.to_list Sys.argv))
  in
  match (json, ids) with
  | Some path, ([] | [ "micro" ]) -> run_bench_json ~scale path
  | Some _, _ ->
      prerr_endline "--json-out only applies to the micro/default mode";
      exit 2
  | None, [] ->
      print_endline
        "Reproduction benchmarks: Efficient View Maintenance at Data \
         Warehouses (SIGMOD'97)";
      print_endline
        "===========================================================================";
      List.iter
        (fun id ->
          print_newline ();
          run_one id;
          print_newline ())
        known
  | None, [ id ] -> run_one id
  | None, _ -> usage ()
