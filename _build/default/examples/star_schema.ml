(* A star-schema analytics warehouse: a sales fact feed joined with two
   dimension sources, maintained by pipelined SWEEP under a fast update
   stream, with incremental group-by aggregates (revenue per store)
   derived from the very deltas the warehouse installs.

   The view is written in the SQL-like surface syntax and compiled by
   View_parser — the same definition the paper writes out in §5.2 style.

   Run with: dune exec examples/star_schema.exe *)

open Repro_relational
open Repro_sim
open Repro_warehouse
open Repro_consistency
open Repro_harness

let view =
  View_parser.parse_exn
    "SELECT sales.id, stores.name, products.label, sales.amount \
     FROM stores(store_id int key, name int), \
          sales(id int key, store int, product int, amount int), \
          products(product_id int key, label int) \
     WHERE stores.store_id = sales.store AND sales.product = \
           products.product_id"

let () =
  let rng = Rng.create 2027L in
  let stores =
    Relation.of_tuples (List.init 4 (fun s -> Tuple.ints [ s; 100 + s ]))
  in
  let products =
    Relation.of_tuples (List.init 6 (fun p -> Tuple.ints [ p; 200 + p ]))
  in
  let sales =
    Relation.of_tuples
      (List.init 25 (fun i ->
           Tuple.ints [ i; Rng.int rng 4; Rng.int rng 6; 5 + Rng.int rng 95 ]))
  in
  let initial = [| stores; sales; products |] in
  (* A brisk afternoon: 40 new sales plus one store rename and one
     delisted product, all overlapping in flight. *)
  let next_sale = ref 25 in
  let updates =
    List.concat
      [ List.init 40 (fun k ->
            let id = !next_sale in
            incr next_sale;
            ( 0.3 *. float_of_int k, 1,
              Delta.insertion
                (Tuple.ints
                   [ id; Rng.int rng 4; Rng.int rng 6; 5 + Rng.int rng 95 ])
            ));
        [ (3.1, 0,
           Delta.sum
             [ Delta.deletion (Tuple.ints [ 2; 102 ]);
               Delta.insertion (Tuple.ints [ 2; 150 ]) ]);
          (6.4, 2, Delta.deletion (Tuple.ints [ 5; 205 ])) ] ]
  in
  let outcome =
    Experiment.run_scripted ~latency:0.7
      ~algorithm:(module Sweep_pipelined : Algorithm.S)
      ~view ~initial ~updates ()
  in
  let node = outcome.Experiment.node in
  (* Revenue per store, maintained incrementally: seed from the initial
     view, then replay every installed delta. View tuple layout is
     [sale id; store name; product label; amount]. *)
  let revenue =
    Aggregate.create ~group_by:[| 1 |]
      ~aggregates:[ Aggregate.Count; Aggregate.Sum 3; Aggregate.Avg 3 ]
  in
  Aggregate.seed revenue (Node.initial_view node);
  let prev = ref (Bag.copy (Node.initial_view node)) in
  List.iter
    (fun (r : Node.install_record) ->
      let delta = Bag.copy r.Node.view_after in
      Bag.diff_into ~into:delta !prev;
      Aggregate.apply revenue delta;
      prev := r.Node.view_after)
    (Node.installs node);
  Format.printf "star-schema warehouse (pipelined SWEEP, W=8)@.@.%a@.@."
    View_def.pp view;
  let m = Node.metrics node in
  Format.printf
    "%d updates in %d installs; staleness mean %.2f; %d compensations@.@."
    m.Metrics.updates_incorporated m.Metrics.installs
    (Metrics.mean_staleness m) m.Metrics.compensations;
  Format.printf "revenue per store (count, sum, avg):@.%a@." Aggregate.pp
    revenue;
  let verdict = Experiment.check_scripted outcome in
  Format.printf "@.consistency: %a@." Checker.pp_verdict
    verdict.Checker.verdict;
  (* cross-check the incremental aggregate against a recomputation *)
  let recomputed =
    let a =
      Aggregate.create ~group_by:[| 1 |]
        ~aggregates:[ Aggregate.Count; Aggregate.Sum 3; Aggregate.Avg 3 ]
    in
    Aggregate.seed a (Node.view_contents node);
    a
  in
  let agree =
    List.for_all
      (fun key -> Aggregate.get revenue key = Aggregate.get recomputed key)
      (Aggregate.groups recomputed)
  in
  Format.printf "incremental aggregates match recomputation: %b@.@." agree;
  (* the view is an ordinary relation: dump it as CSV for inspection *)
  let view_schema =
    Schema.make "premium_view"
      [ Schema.attr "sale_id" Value.T_int; Schema.attr "store" Value.T_int;
        Schema.attr "product" Value.T_int; Schema.attr "amount" Value.T_int ]
  in
  let as_relation =
    Relation.of_list (Bag.to_sorted_list (Node.view_contents node))
  in
  Format.printf "view as CSV (first lines):@.";
  String.split_on_char '\n' (Csv.render view_schema as_relation)
  |> List.filteri (fun i _ -> i < 6)
  |> List.iter (Format.printf "  %s@.")
