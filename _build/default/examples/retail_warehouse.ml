(* A realistic scenario from the paper's motivation (§1): a decision-support
   warehouse over three autonomous OLTP systems — suppliers, catalog and
   order entry — maintaining a view of shipped premium orders with the
   supplier that fulfils them.

   Demonstrates: custom schemas, a selection predicate, a source-local
   multi-update transaction workload, and SWEEP keeping the view completely
   consistent under sustained concurrent updates.

   Run with: dune exec examples/retail_warehouse.exe *)

open Repro_relational
open Repro_sim
open Repro_warehouse
open Repro_consistency
open Repro_harness

let schemas =
  [| Schema.make "suppliers"
       [ Schema.attr ~key:true "supplier_id" Value.T_int;
         Schema.attr "region" Value.T_int ];
     Schema.make "catalog"
       [ Schema.attr ~key:true "sku" Value.T_int;
         Schema.attr "supplier_id" Value.T_int;
         Schema.attr "price" Value.T_int ];
     Schema.make "orders"
       [ Schema.attr ~key:true "order_id" Value.T_int;
         Schema.attr "sku" Value.T_int;
         Schema.attr "quantity" Value.T_int ] |]

(* Global attribute map: suppliers = 0..1, catalog = 2..4, orders = 5..7.
   Join: suppliers.supplier_id = catalog.supplier_id; catalog.sku =
   orders.sku. Selection: premium orders only (price >= 1000). *)
let view =
  View_def.make ~name:"premium_orders" ~schemas
    ~joins:
      [| Join_spec.natural ~left_attr:0 ~right_attr:3;
         Join_spec.natural ~left_attr:2 ~right_attr:6 |]
    ~selection:(Predicate.cmp_const Predicate.Ge 4 (Value.int 1000))
    ~projection:[| 5; 2; 0; 7 |] (* order, sku, supplier, quantity *)
    ()

let () =
  let rng = Rng.create 77L in
  let suppliers =
    Relation.of_tuples
      (List.init 5 (fun s -> Tuple.ints [ s; Rng.int rng 3 ]))
  in
  let catalog =
    Relation.of_tuples
      (List.init 20 (fun sku ->
           Tuple.ints [ sku; Rng.int rng 5; 200 + Rng.int rng 1800 ]))
  in
  let orders =
    Relation.of_tuples
      (List.init 30 (fun o ->
           Tuple.ints [ o; Rng.int rng 20; 1 + Rng.int rng 9 ]))
  in
  let initial = [| suppliers; catalog; orders |] in
  (* Script a day of activity: orders stream in at source 2, the catalog
     reprices (delete+insert in one source-local transaction), a supplier
     is dropped. Timing is tight enough that sweeps overlap updates. *)
  let next_order = ref 30 in
  let updates =
    List.concat
      [ List.init 25 (fun k ->
            let o = !next_order in
            incr next_order;
            ( 0.4 *. float_of_int k, 2,
              Delta.insertion (Tuple.ints [ o; Rng.int rng 20; 1 + Rng.int rng 9 ])
            ));
        [ (2.3, 1,
           Delta.sum
             [ Delta.deletion
                 (match Relation.to_sorted_list catalog with
                 | (t, _) :: _ -> t
                 | [] -> assert false);
               Delta.insertion (Tuple.ints [ 0; 1; 1500 ]) ]);
          (5.7, 0,
           Delta.deletion
             (match Relation.to_sorted_list suppliers with
             | (t, _) :: _ -> t
             | [] -> assert false)) ] ]
  in
  let outcome =
    Experiment.run_scripted ~latency:0.8
      ~algorithm:(module Sweep : Algorithm.S)
      ~view ~initial ~updates ()
  in
  let node = outcome.Experiment.node in
  Format.printf "premium-orders view over 3 OLTP sources (SWEEP)@.@.";
  Format.printf "%a@.@." View_def.pp view;
  Format.printf "updates processed: %d in %d installs@."
    (Node.metrics node).Metrics.updates_incorporated
    (Node.metrics node).Metrics.installs;
  Format.printf "compensations for concurrent updates: %d@."
    (Node.metrics node).Metrics.compensations;
  Format.printf "mean view staleness: %.2f time units@."
    (Metrics.mean_staleness (Node.metrics node));
  Format.printf "final view (%d premium order lines):@."
    (Bag.total (Node.view_contents node));
  List.iter
    (fun (tup, c) -> Format.printf "  %a [%d]@." Tuple.pp tup c)
    (Bag.to_sorted_list (Node.view_contents node));
  let verdict = Experiment.check_scripted outcome in
  Format.printf "@.consistency: %a (%s)@." Checker.pp_verdict
    verdict.Checker.verdict verdict.Checker.detail
