(* The anomaly that motivates the paper (§3): without compensation, a
   concurrent update corrupts the incremental answer. This example runs the
   *same* race twice — once under the naive no-compensation strategy, once
   under SWEEP — and prints the wrong and right views side by side.

   Run with: dune exec examples/concurrent_anomaly.exe *)

open Repro_relational
open Repro_warehouse
open Repro_consistency
open Repro_workload
open Repro_harness

let view = Chain.view ~n:3 ()

let initial () =
  [| Relation.of_tuples [ Chain.tuple ~key:0 ~a:0 ~b:1 ];
     Relation.of_tuples [ Chain.tuple ~key:0 ~a:1 ~b:2 ];
     Relation.of_tuples [ Chain.tuple ~key:0 ~a:2 ~b:3 ] |]

(* The race: an insert at R3 starts a sweep; while its query to R1 is in
   flight, R1 loses its only tuple. The sweep's answer was evaluated on the
   *new* R1, but the warehouse will later process the delete too — without
   compensation the delete's effect is applied twice. *)
let updates =
  [ (0.0, 2, Delta.insertion (Chain.tuple ~key:1 ~a:2 ~b:9));
    (3.5, 0, Delta.deletion (Chain.tuple ~key:0 ~a:0 ~b:1)) ]

let run algorithm =
  Experiment.run_scripted ~algorithm ~view ~initial:(initial ()) ~updates ()

let () =
  let naive = run (module Naive : Algorithm.S) in
  let sweep = run (module Sweep : Algorithm.S) in
  let expected =
    Checker.expected_states view ~initial:(initial ())
      ~deliveries:(Node.deliveries naive.Experiment.node)
  in
  let truth = expected.(Array.length expected - 1) in
  Format.printf "the race (paper §3): ΔR3 sweep overlaps a delete at R1@.@.";
  Format.printf "ground truth final view:  %a@." Bag.pp truth;
  Format.printf "naive (no compensation):  %a@." Bag.pp
    (Node.view_contents naive.Experiment.node);
  Format.printf "sweep (local correction): %a@.@." Bag.pp
    (Node.view_contents sweep.Experiment.node);
  let vn = Experiment.check_scripted naive in
  let vs = Experiment.check_scripted sweep in
  Format.printf "checker: naive = %a, sweep = %a@." Checker.pp_verdict
    vn.Checker.verdict Checker.pp_verdict vs.Checker.verdict;
  Format.printf
    "@.Note the negative count in the naive view: the update's effect was \
     subtracted@.once by the interfered answer and again when the delete \
     itself was processed.@.SWEEP removed the error term locally (%d \
     compensation) and stayed exact.@."
    (Node.metrics sweep.Experiment.node).Metrics.compensations
