(* Run every maintenance algorithm over the same concurrent workload and
   print the comparison — a miniature, instantly-reproducible Table 1.

   Run with: dune exec examples/algorithm_comparison.exe [preset]
   where preset is one of: sequential, concurrent, bursty, adversarial,
   centralized (default: concurrent). *)

open Repro_warehouse
open Repro_consistency
open Repro_harness

let () =
  let preset =
    match Array.to_list Sys.argv with
    | [ _; p ] -> p
    | _ -> "concurrent"
  in
  let scenario =
    match Scenario.find_preset preset with
    | Some s -> s
    | None ->
        Printf.eprintf "unknown preset %S; have: %s\n" preset
          (String.concat ", " (List.map fst Scenario.presets));
        exit 2
  in
  Format.printf "scenario %a@.@." Scenario.pp scenario;
  let rows =
    List.map
      (fun (name, alg) ->
        let r = Experiment.run ~max_events:50_000 scenario alg in
        let m = r.Experiment.metrics in
        [ name;
          (if r.Experiment.completed then
             Checker.verdict_to_string r.Experiment.verdict.Checker.verdict
           else "diverges");
          string_of_int m.Metrics.queries_sent;
          string_of_int m.Metrics.installs;
          string_of_int m.Metrics.compensations;
          Printf.sprintf "%.1f" (Metrics.mean_staleness m);
          string_of_int m.Metrics.negative_installs ])
      (Experiment.algorithms_for scenario)
  in
  print_string
    (Report.table ~title:"algorithms on the same delivered update stream"
       ~headers:
         [ "algorithm"; "verdict"; "queries"; "installs"; "compensations";
           "staleness"; "neg installs" ]
       ~rows ())
