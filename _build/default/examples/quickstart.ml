(* Quickstart: build a two-source warehouse, run SWEEP over a handful of
   concurrent updates, and watch the materialized view stay exact.

   Run with: dune exec examples/quickstart.exe *)

open Repro_relational
open Repro_warehouse
open Repro_consistency
open Repro_harness

let () =
  (* 1. Describe the distributed schema: two base relations at two
        autonomous sources. *)
  let schemas =
    [| Schema.make "orders"
         [ Schema.attr ~key:true "order_id" Value.T_int;
           Schema.attr "product" Value.T_int ];
       Schema.make "products"
         [ Schema.attr ~key:true "product_id" Value.T_int;
           Schema.attr "price" Value.T_int ] |]
  in
  (* 2. The warehouse view: orders joined with their products, keeping
        order id, product id and price. *)
  let view =
    View_def.make ~name:"order_prices" ~schemas
      ~joins:[| Join_spec.natural ~left_attr:1 ~right_attr:2 |]
      ~projection:[| 0; 2; 3 |] ()
  in
  (* 3. Initial contents of each source. *)
  let orders =
    Relation.of_tuples [ Tuple.ints [ 100; 7 ]; Tuple.ints [ 101; 8 ] ]
  in
  let products =
    Relation.of_tuples [ Tuple.ints [ 7; 1999 ]; Tuple.ints [ 8; 2499 ] ]
  in
  (* 4. A burst of updates, deliberately close together so they interfere
        with the sweep in flight: a new order, a price change (delete +
        insert), and a cancelled order. *)
  let updates =
    [ (0.0, 0, Delta.insertion (Tuple.ints [ 102; 8 ]));
      (0.6, 1,
       Delta.sum
         [ Delta.deletion (Tuple.ints [ 8; 2499 ]);
           Delta.insertion (Tuple.ints [ 8; 2199 ]) ]);
      (1.1, 0, Delta.deletion (Tuple.ints [ 100; 7 ])) ]
  in
  (* 5. Run it through the simulated warehouse under SWEEP. *)
  let outcome =
    Experiment.run_scripted ~algorithm:(module Sweep : Algorithm.S) ~view
      ~initial:[| orders; products |] ~updates ()
  in
  Format.printf "view definition:@.%a@.@." View_def.pp view;
  (* the sources mutate their relations during the run; the outcome keeps
     pristine copies of the initial state *)
  let pristine = outcome.Experiment.initial_sources in
  Format.printf "initial view: %a@.@." Relation.pp
    (Algebra.eval view (fun i -> pristine.(i)));
  Format.printf "view after each update:@.";
  List.iteri
    (fun k (r : Node.install_record) ->
      Format.printf "  %d. incorporates %s -> %a@." (k + 1)
        (String.concat ", "
           (List.map
              (fun t -> Format.asprintf "%a" Repro_protocol.Message.pp_txn_id t)
              r.Node.txns))
        Bag.pp r.Node.view_after)
    (Node.installs outcome.Experiment.node);
  let verdict = Experiment.check_scripted outcome in
  Format.printf "@.metrics:@.%a@." Metrics.pp
    (Node.metrics outcome.Experiment.node);
  Format.printf "@.consistency checker: %a (%s)@." Checker.pp_verdict
    verdict.Checker.verdict verdict.Checker.detail
