examples/algorithm_comparison.ml: Array Checker Experiment Format List Metrics Printf Report Repro_consistency Repro_harness Repro_warehouse Scenario String Sys
