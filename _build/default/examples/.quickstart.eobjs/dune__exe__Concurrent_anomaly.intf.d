examples/concurrent_anomaly.mli:
