examples/figure5_walkthrough.mli:
