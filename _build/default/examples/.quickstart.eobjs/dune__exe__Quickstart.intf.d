examples/quickstart.mli:
