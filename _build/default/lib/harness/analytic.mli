(** An analytical performance model of SWEEP, validated against the
    simulator (experiment E8).

    The paper's §6.2 mentions an analytical model characterizing
    performance, deferred to the thesis [Yur97]. This module derives the
    first-order model from the protocol's structure:

    - a ViewChange's service time is [n−1] sequential round trips:
      [S = 2(n−1)·E\[lat\]], with variance [2(n−1)·Var(lat)];
    - the warehouse is a single server fed at rate [λ = 1/gap], so
      utilization is [ρ = λS]; when [ρ < 1] mean staleness follows the
      Pollaczek–Khinchine M/G/1 sojourn time, and when [ρ ≥ 1] a fluid
      (overload) model predicts staleness growing linearly over the
      stream;
    - an answer from source [j] needs compensation when at least one
      update from [j] is pending at its receipt; with per-source Poisson
      arrivals [λ/n], queue backlog [Q] (Little's law), and the k-th
      answer received [2kL] after the sweep starts, that probability is
      [1 − exp(−(Q + λ·2kL)/n)] — summed over the n−1 hops.

    The model also predicts pipelined SWEEP (width W) by dividing the
    effective utilization by [min W (⌈ρ⌉)]. *)

type inputs = {
  n : int;  (** number of sources *)
  mean_latency : float;  (** per-hop one-way mean *)
  var_latency : float;  (** per-hop one-way variance *)
  gap : float;  (** mean update inter-arrival time *)
  n_updates : int;  (** stream length (for the overload fluid model) *)
}

type prediction = {
  service_time : float;  (** S, mean sweep duration *)
  utilization : float;  (** ρ = S / gap *)
  stable : bool;  (** ρ < 1 *)
  mean_staleness : float;
  compensations_per_update : float;
}

(** Predict plain SWEEP. *)
val sweep : inputs -> prediction

(** Predict pipelined SWEEP with window [w]. *)
val sweep_pipelined : w:int -> inputs -> prediction

(** Inputs matching a {!Scenario.t} (uses its latency model's mean and
    variance). *)
val inputs_of_scenario : Scenario.t -> inputs
