(** Regeneration of every table and figure in the paper, plus the
    quantitative claims its prose makes (see DESIGN.md §4 for the
    experiment index). Each function runs its experiment(s) and returns a
    printable report; [all] is what [bench/main.exe] emits. *)

(** Table 1 — algorithm comparison with *measured* consistency and
    message cost. *)
val t1 : unit -> string

(** Figure 2 — on-line incremental view computation: the hop-by-hop trace
    of one sweep. *)
val f2 : unit -> string

(** Figure 5 / §5.2 — the worked example replayed through the simulator,
    printing the state table and the warehouse's narration. *)
val f5 : unit -> string

(** E1 — message cost: per-update messages vs number of sources, plus the
    scripted K-interference blow-up of C-strobe vs SWEEP's constant
    cost. *)
val e1 : unit -> string

(** E2 — ECA's compensating-query size growth with update overlap. *)
val e2 : unit -> string

(** E3 — view staleness vs update rate: Strobe's quiescence requirement
    vs SWEEP/Nested SWEEP. *)
val e3 : unit -> string

(** E4 — Nested SWEEP's message amortization and batching vs SWEEP. *)
val e4 : unit -> string

(** E5 — adversarial alternating interference: Nested SWEEP recursion
    depth and the forced-termination fallback. *)
val e5 : unit -> string

(** E6 — on-line error correction: compensation counts track
    interference; the naive baseline's divergence rate. *)
val e6 : unit -> string

(** E7 — payload sizes vs join selectivity: the shipping-vs-querying
    trade-off of §1, sweep vs recompute. *)
val e7 : unit -> string

(** E8 — the analytical performance model (cf. §6.2's [Yur97] reference)
    validated against the simulator. *)
val e8 : unit -> string

(** E9 — latency-distribution sensitivity: the P–K variance factor in
    practice (same mean, different distributions). *)
val e9 : unit -> string

(** A1 — ablation: the §5.3 parallel-sweep optimization (same messages,
    same consistency, shorter critical path / lower staleness). *)
val a1 : unit -> string

(** A2 — ablation: the §5.3 pipelining optimization (overlapping sweeps,
    in-order installs; staleness vs pipeline width). *)
val a2 : unit -> string

(** A3 — extension: type-3 global transactions via Global SWEEP
    (transaction-atomic installs). *)
val a3 : unit -> string

(** Every experiment, in presentation order, as (id, report). *)
val all : unit -> (string * string) list

(** Look up one experiment by id ("t1", "f2", "f5", "e1".."e9", "a1".."a3"). *)
val by_id : string -> (unit -> string) option
