open Repro_sim

type inputs = {
  n : int;
  mean_latency : float;
  var_latency : float;
  gap : float;
  n_updates : int;
}

type prediction = {
  service_time : float;
  utilization : float;
  stable : bool;
  mean_staleness : float;
  compensations_per_update : float;
}

let latency_var = function
  | Latency.Fixed _ -> 0.
  | Latency.Uniform (lo, hi) -> (hi -. lo) ** 2. /. 12.
  | Latency.Exponential m -> m *. m

let inputs_of_scenario (s : Scenario.t) =
  { n = s.Scenario.n_sources;
    mean_latency = Latency.mean s.Scenario.latency;
    var_latency = latency_var s.Scenario.latency;
    gap = s.Scenario.stream.Repro_workload.Update_gen.mean_gap;
    n_updates = s.Scenario.stream.Repro_workload.Update_gen.n_updates }

(* Shared skeleton: given an effective service time (already divided by
   the pipeline width), produce staleness and compensation estimates. *)
let predict ~hops ~effective_service i =
  let lambda = 1. /. i.gap in
  let s = effective_service in
  let rho = lambda *. s in
  let stable = rho < 1. in
  let mean_staleness =
    if stable then begin
      (* M/G/1 Pollaczek–Khinchine sojourn: W = S + ρS(1+cv²)/(2(1−ρ)).
         The service is a sum of [2·hops] independent latency samples, so
         cv² = (2·hops·Var) / S². *)
      let var_s = 2. *. float_of_int hops *. i.var_latency in
      let cv2 = if s = 0. then 0. else var_s /. (s *. s) in
      s +. (rho *. s *. (1. +. cv2) /. (2. *. (1. -. rho)))
    end
    else begin
      (* Fluid overload: backlog grows at λ − 1/S over the stream's span
         T = n_updates·gap; the average update waits about half the final
         backlog drain time plus its own service. *)
      let t = float_of_int i.n_updates *. i.gap in
      let growth = lambda -. (1. /. s) in
      s +. (growth *. t /. 2. *. s)
    end
  in
  (* Compensation probability at the k-th answer: at least one pending
     update from that source. Per-source arrival rate λ/n; exposure is the
     standing backlog (Little: Q = λ·W_q) plus the 2kL the sweep has been
     running. *)
  let wq = Float.max 0. (mean_staleness -. s) in
  let q = lambda *. wq in
  let comp =
    let acc = ref 0. in
    for k = 1 to hops do
      let exposure = q +. (lambda *. 2. *. float_of_int k *. i.mean_latency) in
      acc := !acc +. (1. -. exp (-.exposure /. float_of_int i.n))
    done;
    !acc
  in
  { service_time = s; utilization = rho; stable; mean_staleness;
    compensations_per_update = comp }

let sweep i =
  let hops = i.n - 1 in
  let s = 2. *. float_of_int hops *. i.mean_latency in
  predict ~hops ~effective_service:s i

let sweep_pipelined ~w i =
  let hops = i.n - 1 in
  let s = 2. *. float_of_int hops *. i.mean_latency in
  predict ~hops ~effective_service:(s /. float_of_int w) i
