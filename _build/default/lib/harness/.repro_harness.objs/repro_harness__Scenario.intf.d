lib/harness/scenario.mli: Format Latency Repro_sim Repro_workload Update_gen
