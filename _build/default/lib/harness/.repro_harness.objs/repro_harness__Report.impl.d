lib/harness/report.ml: Buffer Char List Printf String
