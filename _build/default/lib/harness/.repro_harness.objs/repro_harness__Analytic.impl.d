lib/harness/analytic.ml: Float Latency Repro_sim Repro_workload Scenario
