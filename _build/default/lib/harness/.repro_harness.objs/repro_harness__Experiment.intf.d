lib/harness/experiment.mli: Algorithm Checker Engine Format Metrics Node Repro_consistency Repro_relational Repro_sim Repro_warehouse Scenario Trace
