lib/harness/paper_experiments.mli:
