lib/harness/analytic.mli: Scenario
