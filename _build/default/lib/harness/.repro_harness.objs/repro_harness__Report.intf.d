lib/harness/report.mli:
