lib/harness/scenario.ml: Format Latency List Repro_sim Repro_workload Update_gen
