lib/consistency/checker.mli: Bag Format Message Relation Repro_protocol Repro_relational View_def
