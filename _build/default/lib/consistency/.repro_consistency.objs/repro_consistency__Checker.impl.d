lib/consistency/checker.ml: Algebra Array Bag Format Hashtbl Int List Message Partial Printf Relation Repro_protocol Repro_relational View_def
