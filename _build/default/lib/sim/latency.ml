type t = Fixed of float | Uniform of float * float | Exponential of float

let sample t rng =
  match t with
  | Fixed d -> d
  | Uniform (lo, hi) -> Rng.uniform rng ~lo ~hi
  | Exponential mean -> Rng.exponential rng ~mean

let mean = function
  | Fixed d -> d
  | Uniform (lo, hi) -> (lo +. hi) /. 2.
  | Exponential m -> m

let pp ppf = function
  | Fixed d -> Format.fprintf ppf "fixed(%g)" d
  | Uniform (lo, hi) -> Format.fprintf ppf "uniform(%g,%g)" lo hi
  | Exponential m -> Format.fprintf ppf "exp(%g)" m
