type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = int64 t in
  create seed

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Keep 62 bits so the conversion to OCaml's 63-bit int stays
     non-negative. *)
  let v = Int64.to_int (Int64.logand (int64 t) 0x3FFF_FFFF_FFFF_FFFFL) in
  v mod bound

let float t =
  (* 53 random bits into [0, 1) *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0

let bool t p = float t < p

let exponential t ~mean =
  let u = float t in
  (* avoid log 0 *)
  let u = if u <= 0. then 1e-12 else u in
  -.mean *. log u

let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let zipf t ~n ~theta =
  if n <= 0 then invalid_arg "Rng.zipf: n <= 0";
  if theta <= 0. then int t n
  else begin
    (* Inverse-CDF sampling over the finite harmonic weights. Weights are
       recomputed per call only for small n; this is workload generation,
       not a hot path. *)
    let total = ref 0. in
    let w = Array.init n (fun i -> 1. /. Float.pow (float_of_int (i + 1)) theta) in
    Array.iter (fun x -> total := !total +. x) w;
    let target = float t *. !total in
    let rec go i acc =
      if i = n - 1 then i
      else
        let acc = acc +. w.(i) in
        if target < acc then i else go (i + 1) acc
    in
    go 0 0.
  end
