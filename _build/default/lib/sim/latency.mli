(** Channel latency models.

    The paper only assumes channels are reliable and FIFO; latency
    variability is what creates the concurrent-update interleavings the
    algorithms must survive, so experiments sweep over these models. *)

type t =
  | Fixed of float
  | Uniform of float * float  (** [lo, hi) *)
  | Exponential of float  (** mean *)

val sample : t -> Rng.t -> float

(** Mean of the model (used for sizing experiment horizons). *)
val mean : t -> float

val pp : Format.formatter -> t -> unit
