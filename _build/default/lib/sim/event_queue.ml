type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;  (* heap.(0) unused when size = 0 *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }
let is_empty q = q.size = 0
let length q = q.size

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

(* Only called once the heap array is non-empty (push seeds it), so
   [q.heap.(0)] is a valid filler. *)
let grow q =
  let cap = Array.length q.heap in
  if q.size >= cap then begin
    let nheap = Array.make (cap * 2) q.heap.(0) in
    Array.blit q.heap 0 nheap 0 q.size;
    q.heap <- nheap
  end

let push q ~time payload =
  let e = { time; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  (if Array.length q.heap = 0 then q.heap <- Array.make 16 e);
  grow q;
  q.heap.(q.size) <- e;
  q.size <- q.size + 1;
  (* sift up *)
  let i = ref (q.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    before q.heap.(!i) q.heap.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = q.heap.(!i) in
    q.heap.(!i) <- q.heap.(parent);
    q.heap.(parent) <- tmp;
    i := parent
  done

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < q.size && before q.heap.(l) q.heap.(!smallest) then smallest := l;
        if r < q.size && before q.heap.(r) q.heap.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = q.heap.(!i) in
          q.heap.(!i) <- q.heap.(!smallest);
          q.heap.(!smallest) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (top.time, top.payload)
  end

let peek_time q = if q.size = 0 then None else Some q.heap.(0).time
