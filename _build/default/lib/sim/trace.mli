(** Simulation trace log.

    Components emit timestamped, labelled lines; the Figure 2
    demonstration and debugging replay them. Disabled traces cost one
    branch per emit. *)

type t

val create : ?enabled:bool -> unit -> t
val enabled : t -> bool
val set_enabled : t -> bool -> unit

(** [emit t ~time ~who fmt …]: record a line (no-op when disabled). *)
val emit : t -> time:float -> who:string -> ('a, Format.formatter, unit) format -> 'a

type line = { time : float; who : string; text : string }

(** Lines in emission order. *)
val lines : t -> line list

val clear : t -> unit
val pp : Format.formatter -> t -> unit
