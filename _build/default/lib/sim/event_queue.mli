(** Binary-heap event queue.

    Events are ordered by (time, insertion sequence): ties in time are
    broken by insertion order, which makes simulation runs deterministic
    given a fixed seed. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

(** [push q ~time payload] schedules [payload]. *)
val push : 'a t -> time:float -> 'a -> unit

(** Earliest event, or [None] when empty. *)
val pop : 'a t -> (float * 'a) option

val peek_time : 'a t -> float option
