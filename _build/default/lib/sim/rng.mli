(** Deterministic splitmix64 PRNG.

    Every run of the simulator is seeded explicitly, so experiments and
    failing property-test cases replay bit-identically. *)

type t

val create : int64 -> t

(** Derive an independent stream (used to give each workload source its
    own stream without cross-coupling). *)
val split : t -> t

val int64 : t -> int64

(** [int t bound] is uniform in [0, bound). Raises [Invalid_argument] when
    [bound <= 0]. *)
val int : t -> int -> int

(** Uniform in [0, 1). *)
val float : t -> float

(** [bool t p] is true with probability [p]. *)
val bool : t -> float -> bool

(** Exponentially distributed with the given mean — inter-arrival times of
    source updates. *)
val exponential : t -> mean:float -> float

(** [uniform t ~lo ~hi] is uniform in [lo, hi). *)
val uniform : t -> lo:float -> hi:float -> float

(** [pick t arr] is a uniformly random element. Raises on empty array. *)
val pick : t -> 'a array -> 'a

(** [zipf t ~n ~theta] samples a 0-based rank in [0, n) with Zipfian skew
    [theta] ([theta = 0] is uniform). *)
val zipf : t -> n:int -> theta:float -> int
