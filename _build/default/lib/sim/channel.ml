type 'a t = {
  engine : Engine.t;
  latency : Latency.t;
  rng : Rng.t;
  drop : float;
  deliver : 'a -> unit;
  mutable last_delivery : float;
  mutable sent : int;
  mutable dropped : int;
}

let create ?(drop = 0.) engine ~latency ~rng ~deliver =
  if drop < 0. || drop >= 1. then invalid_arg "Channel.create: drop ∉ [0,1)";
  { engine; latency; rng; drop; deliver; last_delivery = 0.; sent = 0;
    dropped = 0 }

let send ch msg =
  ch.sent <- ch.sent + 1;
  if ch.drop > 0. && Rng.bool ch.rng ch.drop then
    ch.dropped <- ch.dropped + 1
  else begin
    let sample = Latency.sample ch.latency ch.rng in
    let t = Float.max (Engine.now ch.engine +. sample) ch.last_delivery in
    ch.last_delivery <- t;
    Engine.at ch.engine ~time:t (fun () -> ch.deliver msg)
  end

let sent ch = ch.sent
let dropped ch = ch.dropped
