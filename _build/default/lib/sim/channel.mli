(** Reliable FIFO point-to-point channels (paper §2).

    Messages are never lost and are delivered in send order: a sampled
    delivery time earlier than the previous message's is clamped forward.
    SWEEP's exact interference detection (§4, footnote 2) depends on this
    property, and the tests assert it. *)

type 'a t

(** [create engine ~latency ~rng ~deliver] builds a channel whose receive
    endpoint is the [deliver] callback. [drop] (default 0) is a message
    loss probability — strictly a violation of the paper's reliability
    assumption, provided so tests can demonstrate that the assumption is
    load-bearing (a lossy channel wedges the protocol). *)
val create :
  ?drop:float -> Engine.t -> latency:Latency.t -> rng:Rng.t ->
  deliver:('a -> unit) -> 'a t

(** Messages lost so far (always 0 with [drop = 0]). *)
val dropped : 'a t -> int

(** [send ch msg] enqueues [msg] for FIFO delivery. *)
val send : 'a t -> 'a -> unit

(** Messages sent over this channel so far. *)
val sent : 'a t -> int
