lib/sim/latency.ml: Format Rng
