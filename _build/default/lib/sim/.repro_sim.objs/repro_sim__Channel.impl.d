lib/sim/channel.ml: Engine Float Latency Rng
