lib/sim/channel.mli: Engine Latency Rng
