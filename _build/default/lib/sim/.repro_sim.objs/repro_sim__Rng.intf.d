lib/sim/rng.mli:
