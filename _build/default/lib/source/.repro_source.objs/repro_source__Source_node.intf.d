lib/source/source_node.mli: Base_table Delta Engine Message Relation Repro_protocol Repro_relational Repro_sim Trace View_def
