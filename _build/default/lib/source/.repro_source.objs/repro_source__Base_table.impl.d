lib/source/base_table.ml: Delta Hashtbl Int List Message Option Printf Relation Repro_protocol Repro_relational String Tuple Value
