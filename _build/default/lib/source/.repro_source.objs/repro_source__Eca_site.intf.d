lib/source/eca_site.mli: Base_table Delta Engine Message Partial Relation Repro_protocol Repro_relational Repro_sim Trace View_def
