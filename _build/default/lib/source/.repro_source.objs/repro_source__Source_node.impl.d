lib/source/source_node.ml: Algebra Base_table Delta Engine Join_spec List Message Partial Printf Relation Repro_protocol Repro_relational Repro_sim Trace View_def
