lib/source/eca_site.ml: Algebra Array Base_table Delta Engine List Message Partial Relation Repro_protocol Repro_relational Repro_sim Trace View_def
