lib/source/base_table.mli: Delta Message Relation Repro_protocol Repro_relational Tuple Value
