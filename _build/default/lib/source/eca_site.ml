open Repro_relational
open Repro_sim
open Repro_protocol

type t = {
  engine : Engine.t;
  view : View_def.t;
  tables : Base_table.t array;
  send : Message.to_warehouse -> unit;
  trace : Trace.t;
}

let create engine ~view ~inits ~send ~trace =
  let n = View_def.n_sources view in
  if Array.length inits <> n then
    invalid_arg "Eca_site.create: need one initial relation per position";
  { engine; view;
    tables = Array.mapi (fun i r -> Base_table.create ~source:i r) inits;
    send; trace }

let table t i = t.tables.(i)

let local_update t ~source delta =
  let txn = Base_table.apply t.tables.(source) delta in
  let now = Engine.now t.engine in
  Trace.emit t.trace ~time:now ~who:"eca-site" "apply %a = %a"
    Message.pp_txn_id txn Delta.pp delta;
  t.send
    (Message.Update_notice
       { txn; delta = Delta.copy delta; occurred_at = now; global = None });
  txn

(* Evaluate one term: a chain join over all positions where pinned
   positions contribute the pinned delta and the rest contribute the
   current base relation. *)
let eval_term t (pins : Message.eca_term) : Partial.t =
  let n = View_def.n_sources t.view in
  let operand j =
    match List.assoc_opt j pins with
    | Some d -> Partial.of_source_delta t.view j d
    | None -> Partial.of_relation t.view j (Base_table.relation t.tables.(j))
  in
  let acc = ref (operand 0) in
  for j = 1 to n - 1 do
    acc := Algebra.join t.view !acc (operand j)
  done;
  !acc

let eval_terms t terms =
  match terms with
  | [] -> invalid_arg "Eca_site.eval_terms: empty expression"
  | first :: rest ->
      List.fold_left
        (fun acc term -> Partial.add acc (eval_term t term))
        (eval_term t first) rest

let handle t msg =
  let now = Engine.now t.engine in
  match msg with
  | Message.Eca_query { qid; terms } ->
      let partial = eval_terms t terms in
      Trace.emit t.trace ~time:now ~who:"eca-site" "eca_query#%d (%d terms) -> %a"
        qid (List.length terms) Partial.pp partial;
      t.send (Message.Eca_answer { qid; partial })
  | Message.Sweep_query { qid; target; partial } ->
      let answer =
        Algebra.extend t.view partial
          ~with_relation:(target, Base_table.relation t.tables.(target))
      in
      t.send (Message.Answer { qid; source = target; partial = answer })
  | Message.Fetch { qid; target } ->
      t.send
        (Message.Snapshot
           { qid; source = target;
             relation = Relation.copy (Base_table.relation t.tables.(target)) })
