(** Update-stream generation.

    Drives a finite stream of single-update transactions (and optional
    source-local multi-update transactions) into the sources through an
    [apply] callback, via the simulation engine. The generator mirrors
    every source's contents so deletes always name live tuples and
    inserted keys are always fresh — preserving the key invariants the
    Strobe-family baselines rely on. *)

open Repro_relational
open Repro_sim

(** Which source the next update hits. *)
type placement =
  | Uniform
  | Zipf of float  (** skewed towards low-numbered sources *)
  | Alternating of int * int
      (** strictly alternate between two sources — the adversarial pattern
          that starves Nested SWEEP (paper §6.2) *)

type config = {
  n_updates : int;  (** total update transactions to emit *)
  mean_gap : float;  (** mean exponential inter-arrival time *)
  p_insert : float;  (** probability an update is an insert *)
  placement : placement;
  txn_size : int;  (** updates per transaction (>1 = source-local txn) *)
  domain : int;  (** payload domain, matching {!Chain.populate} *)
  p_global : float;
      (** probability an emission is a type-3 global transaction touching
          two distinct sources (requires n >= 2; counts as one of
          [n_updates]) *)
  fixed_gap : bool;
      (** when true, inter-arrival times are exactly [mean_gap] instead of
          exponential — guarantees a truly sequential regime in tests *)
}

val default : config

(** [drive engine rng config ~view ~initial ~apply ?on_done ()] schedules
    the whole stream starting at the current sim time. [initial] must be
    the sources' contents at that moment (copied internally). [apply
    ~source delta] must perform the update at the source. [on_done] fires
    after the last update has been applied. *)
val drive :
  Engine.t ->
  Rng.t ->
  config ->
  view:View_def.t ->
  initial:Relation.t array ->
  apply:(source:int -> global:(int * int) option -> Delta.t -> unit) ->
  ?on_done:(unit -> unit) ->
  unit ->
  unit
