(** Standard chain-join schemas and views for experiments.

    Each base relation is [Ri(k*, a, b)] with [k] a unique integer key;
    adjacent relations join on [Ri.b = R(i+1).a]. The default projection
    keeps every key (so the Strobe-family baselines are applicable) plus
    the endpoints' payloads. Join attribute values are drawn from
    [0, domain): [domain] controls join selectivity — the expected number
    of partners per tuple is [size / domain]. *)

open Repro_relational

val schemas : n:int -> Schema.t array

(** [view ~n ()] is the chain view. [projection] defaults to all keys plus
    [R0.a] and [R(n-1).b]. *)
val view :
  ?name:string ->
  ?selection:Predicate.t ->
  ?projection:int array ->
  n:int ->
  unit ->
  View_def.t

(** [tuple ~key ~a ~b] builds one source tuple. *)
val tuple : key:int -> a:int -> b:int -> Tuple.t

(** [populate view ~size ~domain rng] generates initial relations: keys
    [0..size-1], payloads uniform over the domain. *)
val populate :
  View_def.t -> size:int -> domain:int -> Repro_sim.Rng.t -> Relation.t array
