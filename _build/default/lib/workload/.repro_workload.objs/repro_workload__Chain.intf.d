lib/workload/chain.mli: Predicate Relation Repro_relational Repro_sim Schema Tuple View_def
