lib/workload/update_gen.ml: Array Chain Delta Engine List Relation Repro_relational Repro_sim Rng Tuple Value View_def
