lib/workload/chain.ml: Array Join_spec Option Predicate Printf Relation Repro_relational Repro_sim Schema Tuple Value View_def
