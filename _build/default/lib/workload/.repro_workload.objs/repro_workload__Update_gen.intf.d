lib/workload/update_gen.mli: Delta Engine Relation Repro_relational Repro_sim Rng View_def
