lib/workload/paper_example.mli: Bag Delta Relation Repro_relational Schema View_def
