lib/workload/paper_example.ml: Bag Delta Join_spec Relation Repro_relational Schema Tuple Value View_def
