open Repro_relational

let schemas ~n =
  Array.init n (fun i ->
      Schema.make
        (Printf.sprintf "R%d" i)
        [ Schema.attr ~key:true "k" Value.T_int;
          Schema.attr "a" Value.T_int;
          Schema.attr "b" Value.T_int ])

let view ?name ?(selection = Predicate.True) ?projection ~n () =
  let schemas = schemas ~n in
  let joins =
    Array.init (n - 1) (fun i ->
        (* Ri.b = R(i+1).a in global indices: each relation is 3 wide. *)
        Join_spec.natural ~left_attr:((i * 3) + 2) ~right_attr:((i + 1) * 3 + 1))
  in
  let projection =
    match projection with
    | Some p -> p
    | None ->
        let keys = Array.init n (fun i -> i * 3) in
        Array.concat [ keys; [| 1; ((n - 1) * 3) + 2 |] ]
  in
  View_def.make
    ~name:(Option.value name ~default:(Printf.sprintf "chain%d" n))
    ~schemas ~joins ~selection ~projection ()

let tuple ~key ~a ~b = Tuple.ints [ key; a; b ]

let populate view ~size ~domain rng =
  let n = View_def.n_sources view in
  Array.init n (fun _ ->
      let rel = Relation.create ~initial_size:(size * 2) () in
      for key = 0 to size - 1 do
        Relation.insert rel
          (tuple ~key ~a:(Repro_sim.Rng.int rng domain)
             ~b:(Repro_sim.Rng.int rng domain))
          1
      done;
      rel)
