open Repro_relational
open Repro_sim

type placement = Uniform | Zipf of float | Alternating of int * int

type config = {
  n_updates : int;
  mean_gap : float;
  p_insert : float;
  placement : placement;
  txn_size : int;
  domain : int;
  p_global : float;
  fixed_gap : bool;
}

let default =
  { n_updates = 100; mean_gap = 1.0; p_insert = 0.6; placement = Uniform;
    txn_size = 1; domain = 16; p_global = 0.; fixed_gap = false }

(* Mirror of one source: live tuples (for valid deletes) and the next
   fresh key. *)
type mirror = { mutable live : Tuple.t list; mutable next_key : int }

let mirror_of_relation rel =
  let live = List.map fst (Relation.to_sorted_list rel) in
  let next_key =
    List.fold_left (fun acc tup ->
        match Tuple.get tup 0 with
        | Value.Int k -> max acc (k + 1)
        | _ -> acc)
      0 live
  in
  { live; next_key }

let gen_one rng cfg mirror =
  let insert () =
    let tup =
      Chain.tuple ~key:mirror.next_key ~a:(Rng.int rng cfg.domain)
        ~b:(Rng.int rng cfg.domain)
    in
    mirror.next_key <- mirror.next_key + 1;
    mirror.live <- tup :: mirror.live;
    Delta.insertion tup
  in
  if mirror.live = [] || Rng.bool rng cfg.p_insert then insert ()
  else begin
    let arr = Array.of_list mirror.live in
    let victim = Rng.pick rng arr in
    mirror.live <- List.filter (fun t -> not (Tuple.equal t victim)) mirror.live;
    Delta.deletion victim
  end

let drive engine rng cfg ~view ~initial ~apply ?(on_done = fun () -> ()) () =
  let n = View_def.n_sources view in
  let mirrors = Array.map mirror_of_relation initial in
  let flip = ref false in
  let pick_source () =
    match cfg.placement with
    | Uniform -> Rng.int rng n
    | Zipf theta -> Rng.zipf rng ~n ~theta
    | Alternating (a, b) ->
        flip := not !flip;
        if !flip then a else b
  in
  let next_gid = ref 0 in
  let rec emit remaining =
    if remaining = 0 then on_done ()
    else begin
      (if n >= 2 && Rng.bool rng cfg.p_global then begin
         (* type-3 transaction: one part at each of two distinct sources,
            applied at the same instant *)
         let s1 = pick_source () in
         let s2 =
           let rec other () =
             let s = Rng.int rng n in
             if s = s1 then other () else s
           in
           other ()
         in
         let gid = !next_gid in
         incr next_gid;
         apply ~source:s1 ~global:(Some (gid, 2))
           (gen_one rng cfg mirrors.(s1));
         apply ~source:s2 ~global:(Some (gid, 2))
           (gen_one rng cfg mirrors.(s2))
       end
       else begin
         let source = pick_source () in
         let parts =
           List.init cfg.txn_size (fun _ -> gen_one rng cfg mirrors.(source))
         in
         apply ~source ~global:None (Delta.sum parts)
       end);
      Engine.schedule engine ~delay:(gap ())
        (fun () -> emit (remaining - 1))
    end
  and gap () =
    if cfg.fixed_gap then cfg.mean_gap
    else Rng.exponential rng ~mean:cfg.mean_gap
  in
  Engine.schedule engine ~delay:(gap ()) (fun () -> emit cfg.n_updates)
