type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

type ty = T_bool | T_int | T_float | T_str

(* Rank by constructor so that values of distinct types still have a total,
   deterministic order (needed for canonical printing of relations). *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | Str _ -> 4

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0
let hash = Hashtbl.hash

let type_of = function
  | Null -> None
  | Bool _ -> Some T_bool
  | Int _ -> Some T_int
  | Float _ -> Some T_float
  | Str _ -> Some T_str

let conforms v ty =
  match type_of v with None -> true | Some ty' -> ty = ty'

let pp ppf = function
  | Null -> Format.pp_print_string ppf "null"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s

let pp_ty ppf = function
  | T_bool -> Format.pp_print_string ppf "bool"
  | T_int -> Format.pp_print_string ppf "int"
  | T_float -> Format.pp_print_string ppf "float"
  | T_str -> Format.pp_print_string ppf "str"

let to_string v = Format.asprintf "%a" pp v
let int i = Int i
let str s = Str s
let float f = Float f
let bool b = Bool b
