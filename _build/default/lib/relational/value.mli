(** Atomic values stored in tuples.

    The warehouse model is relational; base relations and the materialized
    view hold tuples of these atomic values. Comparison is total and
    deterministic so relations can be printed and tested in a canonical
    order. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

(** Value types, used by {!Schema} to describe attributes. *)
type ty = T_bool | T_int | T_float | T_str

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

(** [type_of v] is the type of [v]; [Null] has no type. *)
val type_of : t -> ty option

(** [conforms v ty] holds when [v] can populate an attribute of type [ty].
    [Null] conforms to every type. *)
val conforms : t -> ty -> bool

val pp : Format.formatter -> t -> unit
val pp_ty : Format.formatter -> ty -> unit
val to_string : t -> string

(** Convenience constructors used pervasively in tests and examples. *)
val int : int -> t

val str : string -> t
val float : float -> t
val bool : bool -> t
