type t = Value.t array

let of_list = Array.of_list
let ints l = Array.of_list (List.map Value.int l)
let arity = Array.length
let get t i = t.(i)

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else
    let rec go i =
      if i = la then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let equal a b = compare a b = 0
let hash = Hashtbl.hash
let concat = Array.append
let project t indices = Array.map (fun i -> t.(i)) indices
let slice = Array.sub

let pp ppf t =
  Format.pp_print_char ppf '(';
  Array.iteri
    (fun i v ->
      if i > 0 then Format.pp_print_string ppf ", ";
      Value.pp ppf v)
    t;
  Format.pp_print_char ppf ')'

let to_string t = Format.asprintf "%a" pp t
