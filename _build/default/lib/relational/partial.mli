(** Partially-evaluated view deltas.

    During a sweep, ΔV covers a contiguous range of sources [lo..hi]; each
    tuple is the concatenation of one tuple from each covered relation,
    with a signed count. This is the payload carried by sweep queries and
    answers (paper Fig. 2). *)

type t = {
  lo : int;  (** first covered source (inclusive) *)
  hi : int;  (** last covered source (inclusive) *)
  data : Delta.t;
}

(** [of_source_delta view i d] is the one-source partial ΔV = ΔRi. *)
val of_source_delta : View_def.t -> int -> Delta.t -> t

(** [of_relation view i r] views source [i]'s relation as an all-positive
    partial. *)
val of_relation : View_def.t -> int -> Relation.t -> t

(** Expected tuple arity for a partial covering [lo..hi]. *)
val arity : View_def.t -> lo:int -> hi:int -> int

(** [covers_all view p] holds when [p] spans every source. *)
val covers_all : View_def.t -> t -> bool

(** [lookup view p tup g] is the value of global attribute [g] inside
    [tup], a tuple of partial [p]. Raises [Invalid_argument] when [g] lies
    outside [p]'s range. *)
val lookup : View_def.t -> t -> Tuple.t -> int -> Value.t

val is_empty : t -> bool

(** Number of distinct tuples carried. *)
val cardinal : t -> int

(** Payload weight (sum of |count|) — wire-size proxy. *)
val weight : t -> int

val copy : t -> t

(** Pointwise sum; ranges must agree. Raises [Invalid_argument]
    otherwise. *)
val add : t -> t -> t

(** Pointwise difference; ranges must agree. *)
val sub : t -> t -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
