(** Signed deltas: the ΔR / ΔV of the paper.

    An insert carries a positive sign and a delete a negative sign (§3); a
    modify is modeled as a delete followed by an insert (§2). A delta is a
    bag with signed counts. *)

type t = Bag.t

val empty : unit -> t
val copy : t -> t

(** [insertion tup] is ΔR = {+tup}. *)
val insertion : Tuple.t -> t

(** [deletion tup] is ΔR = {−tup}. *)
val deletion : Tuple.t -> t

val of_list : (Tuple.t * int) list -> t

(** [of_relation ?sign r] views a whole relation as a delta (used when a
    source ships a snapshot, and by the recompute baseline).
    [sign] defaults to [1]. *)
val of_relation : ?sign:int -> Relation.t -> t

(** [sum ds] is the pointwise sum — merging several concurrent updates
    from the same source into a single ΔR (paper §5.1). *)
val sum : t list -> t

(** [negate d] flips every sign (fresh delta). *)
val negate : t -> t

val add : t -> Tuple.t -> int -> unit
val count : t -> Tuple.t -> int
val is_empty : t -> bool
val cardinal : t -> int

(** Sum of absolute counts — payload size of the delta on the wire. *)
val weight : t -> int

val iter : (Tuple.t -> int -> unit) -> t -> unit
val fold : (Tuple.t -> int -> 'a -> 'a) -> t -> 'a -> 'a
val to_sorted_list : t -> (Tuple.t * int) list
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** [distinct d] keeps each tuple of [d] once with count [+1], dropping
    multiplicities and signs. The parallel-sweep merge (§5.3) seeds its
    right sweep with this so the overlap join does not double-count. *)
val distinct : t -> t

(** Insertions only ([count > 0]), as a delta. *)
val positive_part : t -> t

(** Deletions only, with counts negated to be positive. *)
val negative_part : t -> t
