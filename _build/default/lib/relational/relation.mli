(** Base relations and materialized views: bags with non-negative counts.

    Each data source conceptually stores one base relation (paper §2); the
    warehouse's materialized view is also a relation whose counts record in
    how many ways each view tuple is derivable. *)

type t

val create : ?initial_size:int -> unit -> t
val copy : t -> t

(** [insert r tup n] adds [n >= 1] occurrences of [tup].
    Raises [Invalid_argument] when [n < 1]. *)
val insert : t -> Tuple.t -> int -> unit

(** [delete r tup n] removes [n >= 1] occurrences.
    Raises [Invalid_argument] when fewer than [n] are present. *)
val delete : t -> Tuple.t -> int -> unit

val count : t -> Tuple.t -> int
val mem : t -> Tuple.t -> bool
val is_empty : t -> bool
val cardinal : t -> int

(** Sum of counts. *)
val total : t -> int

val iter : (Tuple.t -> int -> unit) -> t -> unit
val fold : (Tuple.t -> int -> 'a -> 'a) -> t -> 'a -> 'a
val to_sorted_list : t -> (Tuple.t * int) list

(** [of_list l] builds a relation; entries may repeat (counts accumulate).
    Raises [Invalid_argument] if any accumulated count is negative. *)
val of_list : (Tuple.t * int) list -> t

(** [of_tuples l] inserts each tuple once. *)
val of_tuples : Tuple.t list -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Read-only view of the underlying bag (shared, do not mutate). *)
val as_bag : t -> Bag.t

(** [apply r delta] adds the signed [delta] to [r].
    Returns [Error tuples] listing tuples whose count would go negative —
    the signature of an inconsistent maintenance algorithm — in which case
    [r] is left unchanged. *)
val apply : t -> Bag.t -> (unit, Tuple.t list) result

(** Fresh relation equal to [r + delta]; same error behaviour as
    {!apply}. *)
val applied : t -> Bag.t -> (t, Tuple.t list) result
