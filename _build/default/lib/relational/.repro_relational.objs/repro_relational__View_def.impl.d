lib/relational/view_def.ml: Array Format Join_spec List Predicate Printf Schema String
