lib/relational/partial.ml: Array Bag Delta Format Printf View_def
