lib/relational/partial.mli: Delta Format Relation Tuple Value View_def
