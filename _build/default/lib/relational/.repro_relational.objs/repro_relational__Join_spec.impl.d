lib/relational/join_spec.ml: Format List Predicate
