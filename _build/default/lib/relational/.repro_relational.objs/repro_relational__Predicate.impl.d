lib/relational/predicate.ml: Format Int List Value
