lib/relational/join_spec.mli: Format Predicate
