lib/relational/delta.mli: Bag Format Relation Tuple
