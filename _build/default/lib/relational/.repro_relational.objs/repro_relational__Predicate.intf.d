lib/relational/predicate.mli: Format Value
