lib/relational/csv.mli: Format Relation Schema
