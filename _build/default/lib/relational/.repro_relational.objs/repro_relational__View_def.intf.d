lib/relational/view_def.mli: Format Join_spec Predicate Schema
