lib/relational/relation.mli: Bag Format Tuple
