lib/relational/relation.ml: Bag List Printf Tuple
