lib/relational/schema.ml: Array Format Hashtbl List String Value
