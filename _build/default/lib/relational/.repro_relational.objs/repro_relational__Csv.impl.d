lib/relational/csv.ml: Array Buffer Format List Printf Relation Result Schema String Value
