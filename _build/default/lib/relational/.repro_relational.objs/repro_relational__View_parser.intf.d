lib/relational/view_parser.mli: View_def
