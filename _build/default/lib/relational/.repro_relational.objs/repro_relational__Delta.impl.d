lib/relational/delta.ml: Bag List Relation
