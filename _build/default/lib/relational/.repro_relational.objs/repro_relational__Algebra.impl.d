lib/relational/algebra.ml: Array Delta Hashtbl Join_spec List Partial Predicate Printf Relation Tuple View_def
