lib/relational/view_parser.ml: Array Buffer Join_spec List Predicate Printf Result Schema String Value View_def
