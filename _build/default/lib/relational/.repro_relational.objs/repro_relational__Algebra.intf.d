lib/relational/algebra.mli: Delta Partial Relation Tuple Value View_def
