(** The SPJ view definition maintained at the warehouse (paper §2):

    {v V = π_ProjAttr σ_SelectCond (R0 ⋈ R1 ⋈ … ⋈ R(n-1)) v}

    Sources are 0-indexed here (the paper is 1-indexed). The attributes of
    all base relations are concatenated into a single global attribute
    space; [offset v i] is the global index of source [i]'s first
    attribute. *)

type t

(** [make ~name ~schemas ~joins ~selection ~projection ()] validates and
    builds a view definition:
    - [Array.length joins = Array.length schemas - 1];
    - [joins.(i)]'s equalities connect attributes of source [i] (left) and
      source [i+1] (right);
    - projection and selection indices fall inside the global width.

    Raises [Invalid_argument] otherwise. *)
val make :
  name:string ->
  schemas:Schema.t array ->
  joins:Join_spec.t array ->
  ?selection:Predicate.t ->
  projection:int array ->
  unit ->
  t

val name : t -> string
val n_sources : t -> int
val schemas : t -> Schema.t array
val schema : t -> int -> Schema.t
val joins : t -> Join_spec.t array
val join_between : t -> int -> Join_spec.t
val selection : t -> Predicate.t
val projection : t -> int array

(** Global index of source [i]'s first attribute. *)
val offset : t -> int -> int

(** Arity of source [i]'s relation. *)
val width : t -> int -> int

(** Total width of the un-projected join tuple. *)
val total_width : t -> int

(** [source_of_global v g] is the source whose relation holds global
    attribute [g]. *)
val source_of_global : t -> int -> int

(** [global v i a] is the global index of local attribute [a] of source
    [i]. *)
val global : t -> int -> int -> int

(** [global_by_name v i name] resolves a source-local attribute name. *)
val global_by_name : t -> int -> string -> int

(** Positions *within the projection* of source [i]'s key attributes.
    Raises [Not_found] if some key attribute of [i] is not projected —
    the situation in which the Strobe family is inapplicable (paper
    §3). *)
val view_key_positions : t -> int -> int list

(** Whether the projection retains every source's full key — the Strobe
    family's applicability condition. *)
val includes_all_keys : t -> bool

val pp : Format.formatter -> t -> unit
