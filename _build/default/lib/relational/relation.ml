type t = Bag.t

let create = Bag.create
let copy = Bag.copy

let insert r tup n =
  if n < 1 then invalid_arg "Relation.insert: count < 1";
  Bag.add r tup n

let delete r tup n =
  if n < 1 then invalid_arg "Relation.delete: count < 1";
  if Bag.count r tup < n then
    invalid_arg
      (Printf.sprintf "Relation.delete: %s has count %d < %d"
         (Tuple.to_string tup) (Bag.count r tup) n);
  Bag.add r tup (-n)

let count = Bag.count
let mem = Bag.mem
let is_empty = Bag.is_empty
let cardinal = Bag.cardinal
let total = Bag.total
let iter = Bag.iter
let fold = Bag.fold
let to_sorted_list = Bag.to_sorted_list

let of_list l =
  let b = Bag.of_list l in
  if Bag.has_negative b then invalid_arg "Relation.of_list: negative count";
  b

let of_tuples l = of_list (List.map (fun tup -> (tup, 1)) l)
let equal = Bag.equal
let pp = Bag.pp
let as_bag r = r

let apply r delta =
  let bad =
    Bag.fold
      (fun tup c acc -> if Bag.count r tup + c < 0 then tup :: acc else acc)
      delta []
  in
  match bad with
  | [] ->
      Bag.merge_into ~into:r delta;
      Ok ()
  | _ -> Error (List.sort Tuple.compare bad)

let applied r delta =
  let r' = copy r in
  match apply r' delta with Ok () -> Ok r' | Error ts -> Error ts
