(** Relation schemas.

    A schema names a base relation and describes its attributes. Attributes
    marked [key] form the relation's unique key; SWEEP itself never relies
    on keys, but the Strobe-family baselines do (the paper's §3 discusses
    this restriction), so the schema records them. *)

type attribute = { name : string; ty : Value.ty; key : bool }

type t

(** [make name attrs] builds a schema. Raises [Invalid_argument] on
    duplicate attribute names or an empty attribute list. *)
val make : string -> attribute list -> t

(** [attr ?key name ty] is a convenience attribute constructor
    ([key] defaults to [false]). *)
val attr : ?key:bool -> string -> Value.ty -> attribute

val name : t -> string
val attrs : t -> attribute array
val arity : t -> int

(** [index_of s n] is the position of attribute [n].
    Raises [Not_found] when absent. *)
val index_of : t -> string -> int

(** Positions of the key attributes, in declaration order. *)
val key_indices : t -> int list

(** [conforms s tup] holds when [tup] has the right arity and each value
    conforms to its attribute type. *)
val conforms : t -> Value.t array -> bool

val pp : Format.formatter -> t -> unit
