type t = { lo : int; hi : int; data : Delta.t }

let of_source_delta _view i d = { lo = i; hi = i; data = Delta.copy d }
let of_relation _view i r = { lo = i; hi = i; data = Delta.of_relation r }

let arity view ~lo ~hi =
  let a = ref 0 in
  for i = lo to hi do
    a := !a + View_def.width view i
  done;
  !a

let covers_all view p = p.lo = 0 && p.hi = View_def.n_sources view - 1

let lookup view p tup g =
  let base = View_def.offset view p.lo in
  let limit = View_def.offset view p.hi + View_def.width view p.hi in
  if g < base || g >= limit then
    invalid_arg
      (Printf.sprintf "Partial.lookup: attr %d outside range [%d..%d]" g p.lo
         p.hi);
  tup.(g - base)

let is_empty p = Delta.is_empty p.data
let cardinal p = Delta.cardinal p.data
let weight p = Delta.weight p.data
let copy p = { p with data = Delta.copy p.data }

let same_range a b =
  if a.lo <> b.lo || a.hi <> b.hi then
    invalid_arg
      (Printf.sprintf "Partial: range mismatch [%d..%d] vs [%d..%d]" a.lo a.hi
         b.lo b.hi)

let add a b =
  same_range a b;
  let data = Delta.copy a.data in
  Bag.merge_into ~into:data b.data;
  { a with data }

let sub a b =
  same_range a b;
  let data = Delta.copy a.data in
  Bag.diff_into ~into:data b.data;
  { a with data }

let equal a b = a.lo = b.lo && a.hi = b.hi && Delta.equal a.data b.data

let pp ppf p =
  Format.fprintf ppf "ΔV[%d..%d]%a" p.lo p.hi Delta.pp p.data
