(** Selection predicates over attributes addressed by *global index*.

    The view definition concatenates the attributes of all base relations
    into one global attribute space (R1's attributes first, then R2's, …);
    predicates reference attributes by their global position. Evaluation is
    against a lookup function so the same predicate works on full-width
    tuples and on partial join results. *)

type expr =
  | Const of Value.t
  | Attr of int  (** global attribute index *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True
  | False
  | Cmp of cmp * expr * expr
  | And of t * t
  | Or of t * t
  | Not of t

(** [eval ~lookup p]: [lookup g] must return the value of global
    attribute [g]. *)
val eval : lookup:(int -> Value.t) -> t -> bool

(** Global indices mentioned by the predicate (sorted, no duplicates). *)
val attrs_used : t -> int list

(** [conj ps] is the conjunction of [ps] ([True] when empty). *)
val conj : t list -> t

(** Convenience: [eq_attr a b] compares two global attributes for
    equality; [cmp_const op a v] compares attribute [a] to constant
    [v]. *)
val eq_attr : int -> int -> t

val cmp_const : cmp -> int -> Value.t -> t
val pp : Format.formatter -> t -> unit
