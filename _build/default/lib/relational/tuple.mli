(** Tuples: immutable arrays of {!Value.t}.

    Tuples are treated as values — never mutate the underlying array after
    construction; all operations here copy. *)

type t = Value.t array

val of_list : Value.t list -> t

(** [ints [1;2]] builds an all-integer tuple; the common case in tests. *)
val ints : int list -> t

val arity : t -> int
val get : t -> int -> Value.t
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

(** [concat a b] is the juxtaposition of [a] and [b] — the tuple of the
    joined relation. *)
val concat : t -> t -> t

(** [project t indices] keeps the values at [indices], in that order. *)
val project : t -> int array -> t

(** [slice t pos len] is the contiguous sub-tuple starting at [pos]. *)
val slice : t -> int -> int -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
