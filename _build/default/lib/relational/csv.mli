(** CSV import/export for relations.

    A pragmatic loader for feeding example data into base relations and
    dumping views for inspection. Values are parsed against the schema's
    attribute types: [int] and [float] literals, [true]/[false] for
    booleans, the empty field for NULL, anything else as a string
    (quoting with ["…"], doubled quotes inside). An optional trailing
    integer column (header [#count]) carries multiplicities. *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

(** [parse schema text] — [text] has a header line naming the schema's
    attributes in order (validated), then one row per tuple. *)
val parse : Schema.t -> string -> (Relation.t, error) result

val parse_exn : Schema.t -> string -> Relation.t

(** [render schema rel] — canonical (sorted) CSV with a [#count] column
    when some multiplicity exceeds 1. *)
val render : Schema.t -> Relation.t -> string
