type expr = Const of Value.t | Attr of int
type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True
  | False
  | Cmp of cmp * expr * expr
  | And of t * t
  | Or of t * t
  | Not of t

let eval_expr lookup = function Const v -> v | Attr g -> lookup g

let eval_cmp op a b =
  let c = Value.compare a b in
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let rec eval ~lookup = function
  | True -> true
  | False -> false
  | Cmp (op, e1, e2) -> eval_cmp op (eval_expr lookup e1) (eval_expr lookup e2)
  | And (p, q) -> eval ~lookup p && eval ~lookup q
  | Or (p, q) -> eval ~lookup p || eval ~lookup q
  | Not p -> not (eval ~lookup p)

let attrs_used p =
  let rec go acc = function
    | True | False -> acc
    | Cmp (_, e1, e2) ->
        let add acc = function Attr g -> g :: acc | Const _ -> acc in
        add (add acc e1) e2
    | And (p, q) | Or (p, q) -> go (go acc p) q
    | Not p -> go acc p
  in
  List.sort_uniq Int.compare (go [] p)

let conj ps =
  List.fold_left (fun acc p -> if acc = True then p else And (acc, p)) True ps

let eq_attr a b = Cmp (Eq, Attr a, Attr b)
let cmp_const op a v = Cmp (op, Attr a, Const v)

let pp_cmp ppf op =
  Format.pp_print_string ppf
    (match op with
    | Eq -> "="
    | Ne -> "<>"
    | Lt -> "<"
    | Le -> "<="
    | Gt -> ">"
    | Ge -> ">=")

let pp_expr ppf = function
  | Const v -> Value.pp ppf v
  | Attr g -> Format.fprintf ppf "#%d" g

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Cmp (op, e1, e2) ->
      Format.fprintf ppf "%a %a %a" pp_expr e1 pp_cmp op pp_expr e2
  | And (p, q) -> Format.fprintf ppf "(%a and %a)" pp p pp q
  | Or (p, q) -> Format.fprintf ppf "(%a or %a)" pp p pp q
  | Not p -> Format.fprintf ppf "(not %a)" pp p
