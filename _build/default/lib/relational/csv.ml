type error = { line : int; message : string }

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

exception Fail of error

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Fail { line; message })) fmt

(* Split one CSV record, honouring double-quoted fields. *)
let split_record line_no line =
  let n = String.length line in
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let rec field i =
    if i >= n then finish i
    else
      match line.[i] with
      | ',' ->
          fields := Buffer.contents buf :: !fields;
          Buffer.clear buf;
          field (i + 1)
      | '"' -> quoted (i + 1)
      | c ->
          Buffer.add_char buf c;
          field (i + 1)
  and quoted i =
    if i >= n then fail line_no "unterminated quoted field"
    else
      match line.[i] with
      | '"' when i + 1 < n && line.[i + 1] = '"' ->
          Buffer.add_char buf '"';
          quoted (i + 2)
      | '"' -> field (i + 1)
      | c ->
          Buffer.add_char buf c;
          quoted (i + 1)
  and finish _ = List.rev (Buffer.contents buf :: !fields)
  in
  field 0

let parse_value line_no ty raw =
  let raw = String.trim raw in
  if raw = "" then Value.Null
  else
    match ty with
    | Value.T_int -> (
        match int_of_string_opt raw with
        | Some i -> Value.int i
        | None -> fail line_no "expected an integer, got %S" raw)
    | Value.T_float -> (
        match float_of_string_opt raw with
        | Some f -> Value.float f
        | None -> fail line_no "expected a float, got %S" raw)
    | Value.T_bool -> (
        match String.lowercase_ascii raw with
        | "true" -> Value.bool true
        | "false" -> Value.bool false
        | _ -> fail line_no "expected true/false, got %S" raw)
    | Value.T_str -> Value.str raw

let parse schema text =
  let lines =
    List.filteri
      (fun _ l -> String.trim l <> "")
      (String.split_on_char '\n' text)
  in
  match lines with
  | [] -> Result.Error { line = 0; message = "empty input" }
  | header :: rows -> (
      try
        let cols = List.map String.trim (split_record 1 header) in
        let attrs = Schema.attrs schema in
        let expected =
          Array.to_list (Array.map (fun a -> a.Schema.name) attrs)
        in
        let with_count =
          match cols with
          | _ when cols = expected -> false
          | _ when cols = expected @ [ "#count" ] -> true
          | _ ->
              fail 1 "header %s does not match schema %s"
                (String.concat "," cols)
                (String.concat "," expected)
        in
        let rel = Relation.create () in
        List.iteri
          (fun k row ->
            let line_no = k + 2 in
            let fields = split_record line_no row in
            let arity = Array.length attrs in
            let want = if with_count then arity + 1 else arity in
            if List.length fields <> want then
              fail line_no "expected %d field(s), got %d" want
                (List.length fields);
            let values = Array.make arity Value.Null in
            List.iteri
              (fun i f ->
                if i < arity then
                  values.(i) <- parse_value line_no attrs.(i).Schema.ty f)
              fields;
            let count =
              if with_count then
                match int_of_string_opt (String.trim (List.nth fields arity)) with
                | Some c when c >= 1 -> c
                | _ -> fail line_no "invalid #count"
              else 1
            in
            Relation.insert rel values count)
          rows;
        Ok rel
      with Fail e -> Result.Error e)

let parse_exn schema text =
  match parse schema text with
  | Ok rel -> rel
  | Error e -> invalid_arg (Format.asprintf "Csv.parse: %a" pp_error e)

let render_value = function
  | Value.Null -> ""
  | Value.Bool b -> string_of_bool b
  | Value.Int i -> string_of_int i
  | Value.Float f -> Printf.sprintf "%g" f
  | Value.Str s ->
      if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
        "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
      else s

let render schema rel =
  let attrs = Schema.attrs schema in
  let entries = Relation.to_sorted_list rel in
  let with_count = List.exists (fun (_, c) -> c > 1) entries in
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i a ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf a.Schema.name)
    attrs;
  if with_count then Buffer.add_string buf ",#count";
  Buffer.add_char buf '\n';
  List.iter
    (fun (tup, c) ->
      Array.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (render_value v))
        tup;
      if with_count then Buffer.add_string buf ("," ^ string_of_int c);
      Buffer.add_char buf '\n')
    entries;
  Buffer.contents buf
