type t = Bag.t

let empty () = Bag.create ~initial_size:4 ()
let copy = Bag.copy

let insertion tup =
  let d = empty () in
  Bag.add d tup 1;
  d

let deletion tup =
  let d = empty () in
  Bag.add d tup (-1);
  d

let of_list = Bag.of_list

let of_relation ?(sign = 1) r =
  let d = Bag.create ~initial_size:(Relation.cardinal r * 2) () in
  Relation.iter (fun tup c -> Bag.add d tup (sign * c)) r;
  d

let sum ds =
  let acc = empty () in
  List.iter (fun d -> Bag.merge_into ~into:acc d) ds;
  acc

let negate d =
  let acc = Bag.create ~initial_size:(Bag.cardinal d * 2) () in
  Bag.iter (fun tup c -> Bag.add acc tup (-c)) d;
  acc

let add = Bag.add
let count = Bag.count
let is_empty = Bag.is_empty
let cardinal = Bag.cardinal
let weight = Bag.weight
let iter = Bag.iter
let fold = Bag.fold
let to_sorted_list = Bag.to_sorted_list
let equal = Bag.equal
let pp = Bag.pp

let distinct d =
  let acc = empty () in
  Bag.iter (fun tup _ -> Bag.add acc tup 1) d;
  acc

let positive_part d =
  let acc = empty () in
  Bag.iter (fun tup c -> if c > 0 then Bag.add acc tup c) d;
  acc

let negative_part d =
  let acc = empty () in
  Bag.iter (fun tup c -> if c < 0 then Bag.add acc tup (-c)) d;
  acc
