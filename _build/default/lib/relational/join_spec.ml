type t = { equalities : (int * int) list; residual : Predicate.t option }

let make ?residual equalities = { equalities; residual }
let natural ~left_attr ~right_attr = make [ (left_attr, right_attr) ]

let pp ppf t =
  List.iteri
    (fun i (l, r) ->
      if i > 0 then Format.pp_print_string ppf " and ";
      Format.fprintf ppf "#%d = #%d" l r)
    t.equalities;
  match t.residual with
  | None -> if t.equalities = [] then Format.pp_print_string ppf "cross"
  | Some p ->
      if t.equalities <> [] then Format.pp_print_string ppf " and ";
      Predicate.pp ppf p
