(** A small SQL-like surface syntax for view definitions.

    The paper writes its views as SQL (§5.2):

    {v
      SELECT R2.D, R3.F
      FROM   R1(A int, B int key),
             R2(C int, D int),
             R3(E int, F int)
      WHERE  R1.B = R2.C AND R2.D = R3.E
    v}

    Grammar (case-insensitive keywords):
    - [FROM] lists the base relations *in chain order*, each with an
      inline schema: [name(attr type [key], …)]; types are [int], [float],
      [str], [bool].
    - [WHERE] is a conjunction/disjunction of comparisons between
      qualified attributes ([Rel.attr]) and literals (integers, floats,
      single-quoted strings, [true]/[false]). Equality conjuncts that link
      two *adjacent* relations become hash-join conditions; every other
      conjunct of a top-level conjunction becomes residual selection.
      [<>], [<], [<=], [>], [>=] are supported.
    - [SELECT] lists qualified attributes, or [*] for all.

    [parse] returns the corresponding {!View_def.t} or a descriptive
    error with position information. *)

val parse : string -> (View_def.t, string) result

(** [parse_exn] raises [Invalid_argument] on error. *)
val parse_exn : string -> View_def.t

(** [to_sql view] renders a view definition back into the surface syntax,
    such that [parse (to_sql v)] accepts it and compiles to an equivalent
    view (same schemas, joins, selection semantics and projection — the
    test suite asserts the round trip). Raises [Invalid_argument] for
    selections containing [Null] constants, which the grammar cannot
    express. *)
val to_sql : View_def.t -> string
