(** Join condition between two *adjacent* relations of the view's chain.

    The view is a chain join [R0 ⋈ R1 ⋈ … ⋈ R(n-1)] (paper §2); the
    condition connecting [Ri] and [R(i+1)] is a conjunction of attribute
    equalities (driving the hash join) plus an optional residual predicate,
    all in global attribute indices. *)

type t = {
  equalities : (int * int) list;
      (** [(lg, rg)] pairs: global attr [lg] of the left relation equals
          global attr [rg] of the right relation. Empty means cross
          product (filtered by [residual] if present). *)
  residual : Predicate.t option;
}

val make : ?residual:Predicate.t -> (int * int) list -> t

(** [natural ~left_attr ~right_attr] is the single-equality join used by
    most scenarios. *)
val natural : left_attr:int -> right_attr:int -> t

val pp : Format.formatter -> t -> unit
