open Repro_relational

type txn_id = { source : int; seq : int }

let pp_txn_id ppf t = Format.fprintf ppf "u%d.%d" t.source t.seq

let compare_txn_id a b =
  match Int.compare a.source b.source with
  | 0 -> Int.compare a.seq b.seq
  | c -> c

type global_tag = { gid : int; parts : int }

type update = {
  txn : txn_id;
  delta : Delta.t;
  occurred_at : float;
  global : global_tag option;
}
type eca_term = (int * Delta.t) list

type to_source =
  | Sweep_query of { qid : int; target : int; partial : Partial.t }
  | Fetch of { qid : int; target : int }
  | Eca_query of { qid : int; terms : eca_term list }

type to_warehouse =
  | Update_notice of update
  | Answer of { qid : int; source : int; partial : Partial.t }
  | Snapshot of { qid : int; source : int; relation : Relation.t }
  | Eca_answer of { qid : int; partial : Partial.t }

let weight_to_source = function
  | Sweep_query { partial; _ } -> Partial.weight partial
  | Fetch _ -> 1
  | Eca_query { terms; _ } ->
      List.fold_left
        (fun acc term ->
          List.fold_left (fun acc (_, d) -> acc + Delta.weight d) (acc + 1) term)
        0 terms

let weight_to_warehouse = function
  | Update_notice { delta; _ } -> Delta.weight delta
  | Answer { partial; _ } -> Partial.weight partial
  | Snapshot { relation; _ } -> Relation.total relation
  | Eca_answer { partial; _ } -> Partial.weight partial

let pp_to_source ppf = function
  | Sweep_query { qid; target; partial } ->
      Format.fprintf ppf "sweep_query#%d to %d %a" qid target Partial.pp partial
  | Fetch { qid; target } -> Format.fprintf ppf "fetch#%d of %d" qid target
  | Eca_query { qid; terms } ->
      Format.fprintf ppf "eca_query#%d (%d terms)" qid (List.length terms)

let pp_to_warehouse ppf = function
  | Update_notice { txn; delta; _ } ->
      Format.fprintf ppf "update %a %a" pp_txn_id txn Delta.pp delta
  | Answer { qid; source; partial } ->
      Format.fprintf ppf "answer#%d from %d %a" qid source Partial.pp partial
  | Snapshot { qid; source; relation } ->
      Format.fprintf ppf "snapshot#%d from %d (%d tuples)" qid source
        (Relation.total relation)
  | Eca_answer { qid; partial } ->
      Format.fprintf ppf "eca_answer#%d %a" qid Partial.pp partial
