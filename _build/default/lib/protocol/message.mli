(** Wire messages between data sources and the warehouse.

    Three traffic classes (paper Figs. 1–4): update notifications flowing
    up from the sources, incremental queries flowing down from the
    warehouse, and answers flowing back up. The ECA baseline additionally
    ships multi-term compensating query *expressions* (its message size is
    the quantity the paper calls quadratic). *)

open Repro_relational

(** Identity of a source-local transaction: [seq] is the per-source
    application sequence number. *)
type txn_id = { source : int; seq : int }

val pp_txn_id : Format.formatter -> txn_id -> unit
val compare_txn_id : txn_id -> txn_id -> int

(** Identity of a *global* (type-3) transaction spanning several sources
    (paper §2 defers these to the Strobe paper's technique): [gid] names
    the transaction, [parts] says how many per-source parts it has. *)
type global_tag = { gid : int; parts : int }

(** One atomic source update as shipped to the warehouse: a single update
    transaction or a source-local multi-update transaction collapses into
    one signed delta (paper §2). [occurred_at] is the sim time it was
    applied at the source. [global] tags the part of a type-3 transaction
    it belongs to, if any. *)
type update = {
  txn : txn_id;
  delta : Delta.t;
  occurred_at : float;
  global : global_tag option;
}

(** A query term for the ECA site: positions in [pins] are replaced by the
    pinned delta; unpinned positions read the site's current base
    relation. *)
type eca_term = (int * Delta.t) list

type to_source =
  | Sweep_query of { qid : int; target : int; partial : Partial.t }
      (** "Join your relation with this ΔV and send it back" (Fig. 3). The
          receiving source extends the partial on whichever side it is
          adjacent to. *)
  | Fetch of { qid : int; target : int }
      (** Ship a full snapshot of your relation (recompute baseline). *)
  | Eca_query of { qid : int; terms : eca_term list }
      (** Evaluate [Σ_t (⋈ over all positions, pinned or current)] — the
          ECA compensating query expression. *)

type to_warehouse =
  | Update_notice of update
  | Answer of { qid : int; source : int; partial : Partial.t }
  | Snapshot of { qid : int; source : int; relation : Relation.t }
  | Eca_answer of { qid : int; partial : Partial.t }

(** Payload sizes in tuple units — the paper's "message size" axis. *)
val weight_to_source : to_source -> int

val weight_to_warehouse : to_warehouse -> int
val pp_to_source : Format.formatter -> to_source -> unit
val pp_to_warehouse : Format.formatter -> to_warehouse -> unit
