lib/protocol/message.mli: Delta Format Partial Relation Repro_relational
