lib/protocol/message.ml: Delta Format Int List Partial Relation Repro_relational
