(** Parallel SWEEP — the first optimization sketched in the paper's §5.3:

    "the two for loops, i.e., the left and right sweeps, in the ViewChange
    function are independent and therefore can be executed in parallel.
    The only requirement will be that the two partial views obtained after
    the two sweeps complete should be merged, i.e.
    ΔV = ΔV_left ⋈ ΔV_right."

    Both sweeps are launched at once; each compensates its own answers
    exactly as SWEEP does; when both complete, the partials — which
    overlap only on the updated source — are glued by
    {!Repro_relational.Algebra.merge_overlap}. Message count is unchanged
    at 2(n−1), but the critical path shrinks from n−1 round trips to
    max(i, n−1−i), which shows up as lower staleness (ablation bench A1).
    Complete consistency is preserved: updates are still handled one at a
    time, in delivery order. *)

include Algorithm.S
