open Repro_protocol

type entry = { update : Message.update; arrival : int; arrived_at : float }

(* Entries are kept oldest-first in a plain list: queues stay short (the
   max length is itself a reported metric) and algorithms need mid-queue
   removal, which a functional list does simply. *)
type t = { mutable items : entry list; mutable next_arrival : int }

let create () = { items = []; next_arrival = 0 }

let append t update ~arrived_at =
  let entry = { update; arrival = t.next_arrival; arrived_at } in
  t.next_arrival <- t.next_arrival + 1;
  t.items <- t.items @ [ entry ];
  entry

let pop t =
  match t.items with
  | [] -> None
  | e :: rest ->
      t.items <- rest;
      Some e

let peek t = match t.items with [] -> None | e :: _ -> Some e
let is_empty t = t.items = []
let length t = List.length t.items

let from_source t j =
  List.filter (fun e -> e.update.Message.txn.source = j) t.items

let take_from_source t j =
  let mine, rest =
    List.partition (fun e -> e.update.Message.txn.source = j) t.items
  in
  t.items <- rest;
  mine

let entries t = t.items
let last_arrival t = t.next_arrival - 1
