(** Global SWEEP — type-3 (multi-source) transaction support.

    The paper's model (§2) handles type-1/2 updates and points to the
    Strobe paper's technique for type-3: a transaction spanning several
    sources arrives at the warehouse as independently delivered per-source
    parts, and no view state should ever expose some parts without the
    others.

    This variant processes updates exactly like SWEEP — one at a time, in
    delivery order, with local compensation — but *buffers installs while
    any global transaction is open* (some parts incorporated, some still
    outstanding). The buffered delta, covering the whole transaction plus
    whatever unrelated updates were interleaved between its parts, is
    installed as one atomic state transition once no transaction is open.

    On streams without global transactions this is SWEEP (complete
    consistency); with them the view is strongly consistent and
    transaction-atomic — the test suite asserts that no install ever
    splits a global transaction. *)

include Algorithm.S
