lib/warehouse/strobe.ml: Algebra Algorithm Bag Delta Engine Hashtbl Keys List Message Partial Printf Repro_protocol Repro_relational Repro_sim Sweep Trace Tuple Update_queue View_def
