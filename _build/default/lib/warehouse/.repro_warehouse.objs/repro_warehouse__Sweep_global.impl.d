lib/warehouse/sweep_global.ml: Algorithm Bag Delta Hashtbl Message Repro_protocol Repro_relational Sweep_engine Update_queue
