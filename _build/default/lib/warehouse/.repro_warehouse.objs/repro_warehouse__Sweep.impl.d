lib/warehouse/sweep.ml: Algorithm Sweep_engine Sweep_order
