lib/warehouse/naive.ml: Algorithm Sweep_engine
