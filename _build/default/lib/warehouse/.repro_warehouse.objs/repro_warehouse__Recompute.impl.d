lib/warehouse/recompute.ml: Algebra Algorithm Array Bag Delta Message Printf Relation Repro_protocol Repro_relational Update_queue View_def
