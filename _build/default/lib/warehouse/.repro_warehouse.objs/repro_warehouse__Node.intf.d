lib/warehouse/node.mli: Algorithm Bag Delta Engine Message Metrics Relation Repro_protocol Repro_relational Repro_sim Trace Update_queue View_def
