lib/warehouse/sweep_order.ml: List
