lib/warehouse/c_strobe.mli: Algorithm
