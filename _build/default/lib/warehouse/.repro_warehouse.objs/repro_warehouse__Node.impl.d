lib/warehouse/node.ml: Algorithm Bag Delta Engine List Message Metrics Option Relation Repro_protocol Repro_relational Repro_sim Trace Update_queue View_def
