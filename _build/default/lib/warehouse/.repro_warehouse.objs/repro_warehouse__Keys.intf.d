lib/warehouse/keys.mli: Bag Delta Hashtbl Repro_relational Tuple View_def
