lib/warehouse/recompute.mli: Algorithm
