lib/warehouse/sweep_order.mli:
