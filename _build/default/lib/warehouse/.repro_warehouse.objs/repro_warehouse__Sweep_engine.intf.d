lib/warehouse/sweep_engine.mli: Algorithm Delta Repro_relational Update_queue
