lib/warehouse/metrics.ml: Format
