lib/warehouse/update_queue.ml: List Message Repro_protocol
