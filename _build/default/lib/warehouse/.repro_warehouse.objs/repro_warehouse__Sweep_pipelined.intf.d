lib/warehouse/sweep_pipelined.mli: Algorithm
