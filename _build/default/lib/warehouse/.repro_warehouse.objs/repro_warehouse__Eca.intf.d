lib/warehouse/eca.mli: Algorithm
