lib/warehouse/sweep_parallel.mli: Algorithm
