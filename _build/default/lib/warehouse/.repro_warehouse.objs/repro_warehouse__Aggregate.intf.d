lib/warehouse/aggregate.mli: Bag Delta Format Repro_relational Tuple
