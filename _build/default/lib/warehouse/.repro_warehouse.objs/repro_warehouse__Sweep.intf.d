lib/warehouse/sweep.mli: Algorithm
