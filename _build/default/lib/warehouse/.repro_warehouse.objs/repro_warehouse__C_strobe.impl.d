lib/warehouse/c_strobe.ml: Algebra Algorithm Bag Delta Engine Hashtbl Int Keys List Message Partial Printf Repro_protocol Repro_relational Repro_sim String Trace Tuple Update_queue View_def
