lib/warehouse/metrics.mli: Format
