lib/warehouse/strobe.mli: Algorithm
