lib/warehouse/aggregate.ml: Array Bag Delta Format Hashtbl Int List Map Option Printf Repro_relational Tuple Value
