lib/warehouse/eca.ml: Algebra Algorithm Delta Engine List Message Printf Repro_protocol Repro_relational Repro_sim Trace Update_queue
