lib/warehouse/sweep_engine.ml: Algebra Algorithm Delta Engine List Message Metrics Partial Printf Repro_protocol Repro_relational Repro_sim Sweep_order Trace Update_queue View_def
