lib/warehouse/algorithm.ml: Bag Delta Engine Message Metrics Repro_protocol Repro_relational Repro_sim Trace Update_queue View_def
