lib/warehouse/sweep_pipelined.ml: Algebra Algorithm Delta Engine List Message Metrics Partial Printf Repro_protocol Repro_relational Repro_sim Sweep Trace Update_queue View_def
