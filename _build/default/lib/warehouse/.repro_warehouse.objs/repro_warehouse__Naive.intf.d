lib/warehouse/naive.mli: Algorithm
