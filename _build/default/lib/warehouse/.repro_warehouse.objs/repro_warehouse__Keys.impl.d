lib/warehouse/keys.ml: Array Bag Delta Hashtbl List Printf Repro_relational Schema Tuple View_def
