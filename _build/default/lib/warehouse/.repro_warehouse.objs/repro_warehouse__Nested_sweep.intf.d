lib/warehouse/nested_sweep.mli: Algorithm
