lib/warehouse/sweep_parallel.ml: Algebra Algorithm Delta Engine List Message Metrics Partial Printf Repro_protocol Repro_relational Repro_sim Trace Update_queue View_def
