lib/warehouse/sweep_global.mli: Algorithm
