lib/warehouse/update_queue.mli: Message Repro_protocol
