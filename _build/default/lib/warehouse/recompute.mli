(** Full-recomputation baseline (paper §3 calls it "unrealistic").

    For every queued update it fetches a snapshot of every base relation
    and recomputes the view from scratch. Message *count* is O(n) like
    SWEEP, but the payload is the entire database, and because the n
    snapshots are taken at different times the recomputed state can
    correspond to no consistent database state at all — the checker
    classifies it as convergent only. *)

include Algorithm.S
