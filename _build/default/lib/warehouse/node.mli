(** The warehouse site (paper Figs. 1 and 4).

    Owns the materialized view, the update message queue and the metrics;
    runs one maintenance algorithm. The [LogUpdates] process of Fig. 4 is
    {!deliver} on an [Update_notice]; answers are routed to the
    algorithm's [on_answer]. All messages the algorithm sends are
    instrumented here, and every install is recorded (time, incorporated
    transactions, view snapshot) for the consistency checker.

    The view is stored as a signed {!Bag} on purpose: a correct algorithm
    never drives a count negative, and the node records it when one does
    (the naive baseline's failure mode) instead of crashing. *)

open Repro_relational
open Repro_sim
open Repro_protocol

type install_record = {
  at : float;
  txns : Message.txn_id list;  (** incorporated by this install *)
  view_after : Bag.t;  (** snapshot right after the install *)
  negative : bool;  (** install drove some count negative *)
}

type t

(** [create engine ~view ~algorithm ~send ~init ()] builds the node.
    [send i msg] must transmit [msg] to source [i] (or to the centralized
    site); [init] is the initial, correct materialized view (paper §5.1
    assumes V starts correct). [record_history] (default true) keeps
    per-install snapshots for the checker. *)
val create :
  Engine.t ->
  view:View_def.t ->
  algorithm:(module Algorithm.S) ->
  send:(int -> Message.to_source -> unit) ->
  init:Relation.t ->
  ?record_history:bool ->
  ?trace:Trace.t ->
  unit ->
  t

(** Deliver one message from a source channel. *)
val deliver : t -> Message.to_warehouse -> unit

(** [add_install_listener t f] calls [f delta] after every install, with
    the view-level delta just applied — the feed for downstream
    derivations such as {!Aggregate}. *)
val add_install_listener : t -> (Delta.t -> unit) -> unit

(** Current materialized view contents (live; treat as read-only). *)
val view_contents : t -> Bag.t

val metrics : t -> Metrics.t
val queue : t -> Update_queue.t
val algorithm_name : t -> string

(** Installs in order of occurrence. *)
val installs : t -> install_record list

(** Updates in warehouse delivery order. *)
val deliveries : t -> Message.update list

(** Initial view contents (snapshot taken at creation). *)
val initial_view : t -> Bag.t

(** True when the algorithm has no in-flight work and the queue is
    empty. *)
val idle : t -> bool
