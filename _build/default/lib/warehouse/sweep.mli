(** SWEEP (paper §5, Fig. 4).

    Processes one update at a time, in warehouse delivery order. For
    update (ΔR, i) it computes ΔV by querying sources i−1 … 0 (left
    sweep), then i+1 … n−1 (right sweep), one round trip each. When an
    answer from source j arrives while updates from j sit in the update
    queue, those updates interfered (FIFO argument, §4); their error term
    [ΔRj ⋈ TempView] is computed and subtracted *locally* — no
    compensating queries. The finished ΔV is selected, projected and
    installed before the next update is started.

    Guarantees complete consistency; exactly 2(n−1) messages
    (n−1 queries, n−1 answers) per update. *)

include Algorithm.S

(** Sources queried for an update at position [i] in a view over [n]
    sources, in SWEEP order (left sweep then right sweep) — exposed for
    tests. *)
val sweep_order : n:int -> i:int -> int list
