(** Incremental group-by aggregates over the materialized view.

    The paper restricts the view function to SPJ expressions but notes
    (§2) that "it is possible to model the data warehouse using more
    complex view functions such as aggregates". This module is that
    extension: it consumes the very same view-level deltas the warehouse
    installs and maintains [COUNT], [SUM], [AVG], [MIN] and [MAX] per
    group incrementally — deletions included, thanks to the counting
    representation (a per-group value multiset makes MIN/MAX maintainable
    under deletes, which plain counters cannot do).

    Attach one to a warehouse with {!Node.add_install_listener}; every
    install keeps the aggregate exactly consistent with the view it is
    derived from (asserted by the test suite). *)

open Repro_relational

type func = Count | Sum of int | Avg of int | Min of int | Max of int
(** Aggregate functions; the [int] is the *view-tuple* column index. *)

type t

(** [create ~group_by ~aggregates] — [group_by] lists view-tuple columns
    forming the grouping key (empty = one global group). *)
val create : group_by:int array -> aggregates:func list -> t

(** Feed one view-level delta (as passed to the warehouse's install). *)
val apply : t -> Delta.t -> unit

(** [of_view t view_contents] (re)initializes from a full view — used to
    seed from the initial materialized view. *)
val seed : t -> Bag.t -> unit

(** Current value of each aggregate for a group key, in the order given
    at [create]. [None] when the group is empty (SUM/AVG/MIN/MAX of an
    empty group; COUNT of a missing group is [Some 0.]). *)
val get : t -> Tuple.t -> float option list

(** All non-empty groups, sorted by key. *)
val groups : t -> Tuple.t list

val pp : Format.formatter -> t -> unit
