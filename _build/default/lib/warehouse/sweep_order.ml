let order ~n ~i =
  let left = List.init i (fun k -> i - 1 - k) in
  let right = List.init (n - 1 - i) (fun k -> i + 1 + k) in
  left @ right
