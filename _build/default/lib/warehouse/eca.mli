(** ECA — the Eager Compensating Algorithm (Zhuge et al. 1995; paper §3).

    Single-site architecture: one data source (the {!Repro_source.Eca_site})
    stores all base relations, so every incremental query is answered in
    one round trip (O(1) messages per update). Compensation is *remote*:
    when update Ui arrives while queries Q1…Qk are unanswered, the new
    query is

    {v Qi = V(Ui) − Σj Qj(Ui) v}

    where Qj(Ui) substitutes Ui's delta for its relation in every term of
    Qj. Terms accumulate pins as concurrent updates stack up, which is the
    quadratic growth in query *size* the paper ascribes to ECA (our
    experiment E2). Each answer is merged into the view as it arrives;
    correct states are guaranteed at quiescence. *)

include Algorithm.S
