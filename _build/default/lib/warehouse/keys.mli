(** Key plumbing for the Strobe-family baselines.

    Strobe and C-strobe assume every base relation has a unique key and
    that the view projects all of them (paper §3); these helpers extract
    key values from source tuples, full-width join tuples and projected
    view tuples, and build the key-based deletions those algorithms apply
    locally. *)

open Repro_relational

(** Checks the Strobe applicability condition; raises [Invalid_argument]
    naming the algorithm when the view does not retain all keys. *)
val require_keys : algorithm:string -> View_def.t -> unit

(** Key values of a source-local tuple of source [j]. *)
val source_tuple_key : View_def.t -> int -> Tuple.t -> Tuple.t

(** Key values of source [j]'s slice inside a full-width join tuple. *)
val full_tuple_key : View_def.t -> int -> Tuple.t -> Tuple.t

(** Key values of source [j] inside a projected view tuple. *)
val view_tuple_key : View_def.t -> int -> Tuple.t -> Tuple.t

(** [kill_full view ~full ~source ~keys] removes from the full-width
    delta [full] every tuple whose [source]-slice key is in [keys]
    (in place). *)
val kill_full :
  View_def.t -> full:Delta.t -> source:int -> keys:(Tuple.t, unit) Hashtbl.t ->
  unit

(** [view_deletion view ~contents ~source ~key] is the negative view-level
    delta that removes every current view tuple whose [source]-key equals
    [key]. *)
val view_deletion :
  View_def.t -> contents:Bag.t -> source:int -> key:Tuple.t -> Delta.t
