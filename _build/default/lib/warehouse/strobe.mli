(** Strobe (Zhuge et al. 1996; paper §3).

    Multi-source, unique-key algorithm. Deletes are handled locally: a
    key-delete action is appended to the action list AL and registered
    against every in-flight query. Inserts trigger a full query across the
    other sources, evaluated *without* compensation; when the answer
    returns, the deletes collected during its evaluation are applied to it
    and an insert action is appended to AL. AL is applied to the
    materialized view — in one atomic batch, suppressing key duplicates —
    only when the unanswered-query set becomes empty.

    That quiescence condition is Strobe's weakness: under sustained
    updates AL grows and the view goes stale without bound (our experiment
    E3). Consistency achieved is strong. *)

include Algorithm.S
