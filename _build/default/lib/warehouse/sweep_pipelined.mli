(** Pipelined SWEEP — the second optimization sketched in the paper's
    §5.3:

    "Another optimization ... is to pipeline the view construction for
    multiple updates. This will introduce some complexity in the data
    warehouse software module but will result in a rapid installation of
    view changes ... the view changes should be incorporated in the order
    of the arrival of the updates and a more elaborate mechanism will be
    needed to detect concurrent updates."

    Up to [window] ViewChange sweeps run concurrently, each over its own
    query stream. The elaborate interference rule the paper alludes to:
    when update [u]'s sweep receives the answer from source [j], exactly
    the updates from [j] *delivered after u* — whether still queued or
    themselves being swept in the pipeline — interfered in a way [u] must
    cancel, because they serialize after [u]. Updates delivered before [u]
    serialize before it, were (by FIFO) applied before the query was
    evaluated, and so are *meant* to be visible in the answer. Completed
    ΔVs are buffered and installed strictly in delivery order, preserving
    complete consistency.

    Compared to SWEEP, messages are unchanged but up to [window] sweeps
    overlap, multiplying the sustainable update rate (ablation A2). *)

include Algorithm.S

(** Same algorithm with a custom pipeline width (default 8). *)
val with_window : int -> (module Algorithm.S)
