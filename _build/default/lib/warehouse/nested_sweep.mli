(** Nested SWEEP (paper §6, Fig. 6).

    Like SWEEP, but when the answer from source [j] reveals a concurrent
    update ΔRj, that update is *removed from the queue* and recursively
    incorporated: a child ViewChange evaluates ΔRj's missing terms over
    exactly the range the parent has covered so far, its result is merged
    into the parent's ΔV, and the parent continues sweeping — now carrying
    both updates. One combined delta is installed for the whole batch, so
    consistency weakens from complete to strong while the message cost is
    amortized over the batch.

    The paper notes (§6.2) that an adversarial alternating sequence of
    interfering updates can make the recursion oscillate; it suggests
    forcing termination. [max_depth] implements that: beyond it, a
    concurrent update is only compensated (SWEEP-style) and left queued,
    which is counted as a fallback in the metrics. *)

include Algorithm.S

(** Same algorithm with a custom recursion bound (default 64). *)
val with_max_depth : int -> (module Algorithm.S)
