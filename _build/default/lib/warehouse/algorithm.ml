open Repro_relational
open Repro_sim
open Repro_protocol

type ctx = {
  engine : Engine.t;
  view : View_def.t;
  trace : Trace.t;
  metrics : Metrics.t;
  queue : Update_queue.t;
  send : int -> Message.to_source -> unit;
  install : Delta.t -> txns:Update_queue.entry list -> unit;
  view_contents : unit -> Bag.t;
  fresh_qid : unit -> int;
}

module type S = sig
  type t

  val name : string
  val create : ctx -> t
  val on_update : t -> Update_queue.entry -> unit
  val on_answer : t -> Message.to_warehouse -> unit
  val idle : t -> bool
end

type packed = Packed : (module S with type t = 'a) * 'a -> packed

let instantiate (module A : S) ctx = Packed ((module A), A.create ctx)
let packed_name (Packed ((module A), _)) = A.name
let packed_on_update (Packed ((module A), st)) e = A.on_update st e
let packed_on_answer (Packed ((module A), st)) m = A.on_answer st m
let packed_idle (Packed ((module A), st)) = A.idle st
