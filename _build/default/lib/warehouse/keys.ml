open Repro_relational

let require_keys ~algorithm view =
  if not (View_def.includes_all_keys view) then
    invalid_arg
      (Printf.sprintf
         "%s requires the view to project a unique key of every base \
          relation (paper §3); view %s does not"
         algorithm (View_def.name view))

let source_tuple_key view j tup =
  let keys = Schema.key_indices (View_def.schema view j) in
  Array.of_list (List.map (fun a -> tup.(a)) keys)

let full_tuple_key view j tup =
  let ofs = View_def.offset view j in
  let keys = Schema.key_indices (View_def.schema view j) in
  Array.of_list (List.map (fun a -> tup.(ofs + a)) keys)

let view_tuple_key view j tup =
  let positions = View_def.view_key_positions view j in
  Array.of_list (List.map (fun p -> tup.(p)) positions)

let kill_full view ~full ~source ~keys =
  let doomed =
    Delta.fold
      (fun tup c acc ->
        if Hashtbl.mem keys (full_tuple_key view source tup) then
          (tup, c) :: acc
        else acc)
      full []
  in
  List.iter (fun (tup, c) -> Delta.add full tup (-c)) doomed

let view_deletion view ~contents ~source ~key =
  let out = Delta.empty () in
  Bag.iter
    (fun tup c ->
      if Tuple.equal (view_tuple_key view source tup) key then
        Delta.add out tup (-c))
    contents;
  out
