(** The no-compensation strawman.

    Identical to SWEEP except that answers are incorporated as-is: the
    error terms introduced by concurrent updates (paper §3) are never
    corrected. Under concurrency it installs wrong states — including
    negative tuple counts — which is the anomaly motivating the paper.
    With updates spaced far enough apart it coincides with SWEEP. *)

include Algorithm.S
