(** C-strobe (Zhuge et al. 1996; paper §3).

    Complete consistency via *remote* compensation: each update is handled
    fully — one installed state per update, in delivery order — before the
    next is started. A deleted tuple is applied locally by key. An
    inserted tuple triggers a query over the other sources; because
    evaluation is not error-corrected in flight, every update delivered
    after the one being processed is conservatively treated as concurrent
    (the paper's §4 point: without FIFO reasoning the warehouse cannot
    tell, and the key assumption makes over-compensation harmless):

    - a concurrent *insert* is handled locally by key-deleting its tuples
      from the accumulated answer (they will be added when that update is
      itself processed);
    - a concurrent *delete* may have removed tuples the answer should have
      contained, so a compensating query re-evaluates the join with the
      deleted tuples pinned in — and those queries can themselves suffer
      concurrent deletes, recursively. Distinct pin sets multiply: this is
      the combinatorial message blow-up (K^(n−2), optimized (n−1)!) that
      makes C-strobe unscalable and that SWEEP's local compensation
      eliminates. *)

include Algorithm.S
