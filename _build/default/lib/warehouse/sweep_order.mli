(** The sweep visitation order of Fig. 4: sources left of the updated one,
    nearest first, then the sources to its right. *)

(** [order ~n ~i] for an update at position [i] in a view over [n]
    sources. *)
val order : n:int -> i:int -> int list
