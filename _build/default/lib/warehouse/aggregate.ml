open Repro_relational

type func = Count | Sum of int | Avg of int | Min of int | Max of int

module VMap = Map.Make (struct
  type t = Value.t

  let compare = Value.compare
end)

(* Per group: total multiplicity, and per tracked column a running sum and
   a value multiset (the multiset is what makes MIN/MAX maintainable under
   deletions). *)
type group = {
  mutable n : int;
  sums : float array;
  mutable values : int VMap.t array;
}

type t = {
  group_by : int array;
  aggregates : func list;
  columns : int array;  (* distinct columns referenced by the aggregates *)
  col_slot : (int, int) Hashtbl.t;
  groups : (Tuple.t, group) Hashtbl.t;
}

let column_of = function
  | Count -> None
  | Sum c | Avg c | Min c | Max c -> Some c

let create ~group_by ~aggregates =
  let columns =
    List.sort_uniq Int.compare (List.filter_map column_of aggregates)
    |> Array.of_list
  in
  let col_slot = Hashtbl.create 8 in
  Array.iteri (fun slot c -> Hashtbl.replace col_slot c slot) columns;
  { group_by; aggregates; columns; col_slot; groups = Hashtbl.create 64 }

let numeric col v =
  match v with
  | Value.Int i -> float_of_int i
  | Value.Float f -> f
  | other ->
      invalid_arg
        (Printf.sprintf "Aggregate: non-numeric value %s in column %d"
           (Value.to_string other) col)

let group_of t key =
  match Hashtbl.find_opt t.groups key with
  | Some g -> g
  | None ->
      let g =
        { n = 0;
          sums = Array.make (Array.length t.columns) 0.;
          values = Array.map (fun _ -> VMap.empty) t.columns }
      in
      Hashtbl.replace t.groups key g;
      g

let add_tuple t tup count =
  let key = Tuple.project tup t.group_by in
  let g = group_of t key in
  g.n <- g.n + count;
  Array.iteri
    (fun slot col ->
      let v = Tuple.get tup col in
      g.sums.(slot) <- g.sums.(slot) +. (numeric col v *. float_of_int count);
      let current = Option.value ~default:0 (VMap.find_opt v g.values.(slot)) in
      let updated = current + count in
      if updated < 0 then
        invalid_arg "Aggregate.apply: delta deletes more than present";
      g.values.(slot) <-
        (if updated = 0 then VMap.remove v g.values.(slot)
         else VMap.add v updated g.values.(slot)))
    t.columns;
  if g.n = 0 then Hashtbl.remove t.groups key

let apply t delta = Delta.iter (fun tup c -> add_tuple t tup c) delta

let seed t contents =
  Hashtbl.reset t.groups;
  Bag.iter (fun tup c -> add_tuple t tup c) contents

let get t key =
  let g = Hashtbl.find_opt t.groups key in
  List.map
    (fun f ->
      match (f, g) with
      | Count, None -> Some 0.
      | Count, Some g -> Some (float_of_int g.n)
      | (Sum _ | Avg _ | Min _ | Max _), None -> None
      | (Sum _ | Avg _ | Min _ | Max _), Some g when g.n = 0 -> None
      | Sum c, Some g -> Some g.sums.(Hashtbl.find t.col_slot c)
      | Avg c, Some g ->
          Some (g.sums.(Hashtbl.find t.col_slot c) /. float_of_int g.n)
      | Min c, Some g ->
          let slot = Hashtbl.find t.col_slot c in
          Option.map
            (fun (v, _) -> numeric c v)
            (VMap.min_binding_opt g.values.(slot))
      | Max c, Some g ->
          let slot = Hashtbl.find t.col_slot c in
          Option.map
            (fun (v, _) -> numeric c v)
            (VMap.max_binding_opt g.values.(slot)))
    t.aggregates

let groups t =
  Hashtbl.fold (fun key _ acc -> key :: acc) t.groups []
  |> List.sort Tuple.compare

let pp_func ppf = function
  | Count -> Format.pp_print_string ppf "count(*)"
  | Sum c -> Format.fprintf ppf "sum(#%d)" c
  | Avg c -> Format.fprintf ppf "avg(#%d)" c
  | Min c -> Format.fprintf ppf "min(#%d)" c
  | Max c -> Format.fprintf ppf "max(#%d)" c

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun key ->
      Format.fprintf ppf "%a ->" Tuple.pp key;
      List.iter2
        (fun f v ->
          match v with
          | Some x -> Format.fprintf ppf " %a=%g" pp_func f x
          | None -> Format.fprintf ppf " %a=ø" pp_func f)
        t.aggregates (get t key);
      Format.fprintf ppf "@,")
    (groups t);
  Format.fprintf ppf "@]"
