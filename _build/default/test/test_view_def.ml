open Repro_relational
open Repro_workload

let view3 = Chain.view ~n:3 ()

let test_offsets () =
  Alcotest.(check int) "n" 3 (View_def.n_sources view3);
  Alcotest.(check int) "offset 0" 0 (View_def.offset view3 0);
  Alcotest.(check int) "offset 1" 3 (View_def.offset view3 1);
  Alcotest.(check int) "offset 2" 6 (View_def.offset view3 2);
  Alcotest.(check int) "total width" 9 (View_def.total_width view3);
  Alcotest.(check int) "width" 3 (View_def.width view3 1)

let test_global_resolution () =
  Alcotest.(check int) "global (1, 'b')" 5 (View_def.global_by_name view3 1 "b");
  Alcotest.(check int) "source of 5" 1 (View_def.source_of_global view3 5);
  Alcotest.(check int) "source of 0" 0 (View_def.source_of_global view3 0);
  Alcotest.(check int) "source of 8" 2 (View_def.source_of_global view3 8)

let test_keys_in_projection () =
  Alcotest.(check bool) "chain view keeps all keys" true
    (View_def.includes_all_keys view3);
  Alcotest.(check (list int)) "key of source 1 in view" [ 1 ]
    (View_def.view_key_positions view3 1);
  (* a projection dropping R1's key makes Strobe inapplicable *)
  let v =
    Chain.view ~n:2 ~projection:[| 0; 5 |] ~name:"no-keys" ()
  in
  Alcotest.(check bool) "keyless view detected" false
    (View_def.includes_all_keys v)

let test_validation () =
  let schemas = Chain.schemas ~n:2 in
  let bad_join () =
    ignore
      (View_def.make ~name:"bad" ~schemas
         ~joins:[| Join_spec.natural ~left_attr:4 ~right_attr:2 |]
         ~projection:[| 0 |] ())
  in
  Alcotest.(check bool) "join not connecting adjacent sources rejected" true
    (match bad_join () with
    | exception Invalid_argument _ -> true
    | () -> false);
  let bad_proj () =
    ignore
      (View_def.make ~name:"bad" ~schemas
         ~joins:[| Join_spec.natural ~left_attr:2 ~right_attr:4 |]
         ~projection:[| 99 |] ())
  in
  Alcotest.(check bool) "projection out of range rejected" true
    (match bad_proj () with
    | exception Invalid_argument _ -> true
    | () -> false);
  let wrong_join_count () =
    ignore
      (View_def.make ~name:"bad" ~schemas ~joins:[||] ~projection:[| 0 |] ())
  in
  Alcotest.(check bool) "join count enforced" true
    (match wrong_join_count () with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_partial_lookup () =
  let p =
    { Partial.lo = 1; hi = 2;
      data = Delta.of_list [ (Tuple.ints [ 10; 11; 12; 13; 14; 15 ], 1) ] }
  in
  let tup = Tuple.ints [ 10; 11; 12; 13; 14; 15 ] in
  Alcotest.check Rig.value "global 3 inside partial" (Value.int 10)
    (Partial.lookup view3 p tup 3);
  Alcotest.check Rig.value "global 8" (Value.int 15)
    (Partial.lookup view3 p tup 8);
  Alcotest.(check bool) "out of range raises" true
    (match Partial.lookup view3 p tup 0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_partial_arith () =
  let d1 =
    { Partial.lo = 0; hi = 0; data = Delta.of_list [ (Tuple.ints [ 1; 2; 3 ], 2) ] }
  in
  let d2 =
    { Partial.lo = 0; hi = 0; data = Delta.of_list [ (Tuple.ints [ 1; 2; 3 ], -2) ] }
  in
  Alcotest.(check bool) "add cancels" true
    (Partial.is_empty (Partial.add d1 d2));
  Alcotest.(check int) "sub doubles weight" 4
    (Partial.weight (Partial.sub d1 d2));
  let other = { d1 with Partial.lo = 1; hi = 1 } in
  Alcotest.(check bool) "range mismatch raises" true
    (match Partial.add d1 other with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  [ Alcotest.test_case "offsets and widths" `Quick test_offsets;
    Alcotest.test_case "global attribute resolution" `Quick
      test_global_resolution;
    Alcotest.test_case "key projection checks" `Quick test_keys_in_projection;
    Alcotest.test_case "constructor validation" `Quick test_validation;
    Alcotest.test_case "partial lookup" `Quick test_partial_lookup;
    Alcotest.test_case "partial add/sub" `Quick test_partial_arith ]
