open Repro_sim

let test_event_queue_order () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:3.0 "c";
  Event_queue.push q ~time:1.0 "a";
  Event_queue.push q ~time:2.0 "b";
  let order = ref [] in
  let rec drain () =
    match Event_queue.pop q with
    | None -> ()
    | Some (_, x) ->
        order := x :: !order;
        drain ()
  in
  drain ();
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ]
    (List.rev !order)

let test_event_queue_stable_ties () =
  let q = Event_queue.create () in
  for i = 0 to 99 do
    Event_queue.push q ~time:1.0 i
  done;
  let out = ref [] in
  let rec drain () =
    match Event_queue.pop q with
    | None -> ()
    | Some (_, x) ->
        out := x :: !out;
        drain ()
  in
  drain ();
  Alcotest.(check (list int)) "insertion order preserved on ties"
    (List.init 100 (fun i -> i))
    (List.rev !out)

let test_event_queue_interleaved () =
  (* pushes interleaved with pops must still respect (time, seq) *)
  let q = Event_queue.create () in
  Event_queue.push q ~time:5.0 "late";
  Event_queue.push q ~time:1.0 "early";
  (match Event_queue.pop q with
  | Some (t, "early") -> Alcotest.(check (float 0.0)) "t" 1.0 t
  | _ -> Alcotest.fail "expected early");
  Event_queue.push q ~time:2.0 "mid";
  Alcotest.(check (option (float 0.))) "peek mid" (Some 2.0)
    (Event_queue.peek_time q);
  Alcotest.(check int) "length" 2 (Event_queue.length q)

let test_engine_runs_in_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:2.0 (fun () -> log := ("b", Engine.now e) :: !log);
  Engine.schedule e ~delay:1.0 (fun () ->
      log := ("a", Engine.now e) :: !log;
      (* events scheduled from events run too *)
      Engine.schedule e ~delay:0.5 (fun () ->
          log := ("a2", Engine.now e) :: !log));
  (match Engine.run e with `Drained -> () | _ -> Alcotest.fail "drain");
  Alcotest.(check (list string)) "execution order" [ "a"; "a2"; "b" ]
    (List.map fst (List.rev !log));
  Alcotest.(check int) "executed" 3 (Engine.executed e)

let test_engine_until () =
  let e = Engine.create () in
  let hits = ref 0 in
  for i = 1 to 10 do
    Engine.schedule e ~delay:(float_of_int i) (fun () -> incr hits)
  done;
  (match Engine.run ~until:5.5 e with
  | `Until -> ()
  | _ -> Alcotest.fail "expected until");
  Alcotest.(check int) "only first five" 5 !hits;
  Alcotest.(check (float 0.)) "clock clamped" 5.5 (Engine.now e)

let test_engine_rejects_past () =
  let e = Engine.create () in
  Engine.schedule e ~delay:1.0 (fun () ->
      Alcotest.(check bool) "scheduling in the past raises" true
        (match Engine.at e ~time:0.5 (fun () -> ()) with
        | exception Invalid_argument _ -> true
        | () -> false));
  ignore (Engine.run e)

let test_channel_fifo_under_random_latency () =
  (* FIFO must hold even when sampled latencies would reorder: that is the
     property SWEEP's correctness rests on (paper §2). *)
  let e = Engine.create ~seed:99L () in
  let received = ref [] in
  let ch =
    Channel.create e
      ~latency:(Latency.Uniform (0.1, 5.0))
      ~rng:(Rng.create 3L)
      ~deliver:(fun m -> received := m :: !received)
  in
  for i = 0 to 199 do
    Engine.schedule e ~delay:(0.01 *. float_of_int i) (fun () ->
        Channel.send ch i)
  done;
  ignore (Engine.run e);
  Alcotest.(check (list int)) "delivered in send order"
    (List.init 200 (fun i -> i))
    (List.rev !received);
  Alcotest.(check int) "sent count" 200 (Channel.sent ch)

let test_rng_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  let seq r = List.init 50 (fun _ -> Rng.int r 1000) in
  Alcotest.(check (list int)) "same seed, same stream" (seq a) (seq b);
  let c = Rng.create 43L in
  Alcotest.(check bool) "different seed differs" true (seq a <> seq c)

let test_rng_ranges () =
  let r = Rng.create 7L in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    Alcotest.(check bool) "int in range" true (v >= 0 && v < 10);
    let f = Rng.float r in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0. && f < 1.);
    let x = Rng.exponential r ~mean:2.0 in
    Alcotest.(check bool) "exponential nonnegative" true (x >= 0.);
    let u = Rng.uniform r ~lo:3. ~hi:4. in
    Alcotest.(check bool) "uniform in range" true (u >= 3. && u < 4.)
  done

let test_rng_zipf_skew () =
  let r = Rng.create 11L in
  let counts = Array.make 4 0 in
  for _ = 1 to 4000 do
    let k = Rng.zipf r ~n:4 ~theta:1.2 in
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "rank 0 most popular" true
    (counts.(0) > counts.(1) && counts.(1) > counts.(3));
  (* theta = 0 degenerates to uniform-ish *)
  let u = Array.make 4 0 in
  for _ = 1 to 4000 do
    let k = Rng.zipf r ~n:4 ~theta:0. in
    u.(k) <- u.(k) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "roughly uniform" true (c > 800))
    u

let test_rng_split_independent () =
  let r = Rng.create 5L in
  let a = Rng.split r in
  let b = Rng.split r in
  let seq r = List.init 20 (fun _ -> Rng.int r 1_000_000) in
  Alcotest.(check bool) "split streams differ" true (seq a <> seq b)

let test_trace () =
  let tr = Trace.create ~enabled:true () in
  Trace.emit tr ~time:1.5 ~who:"x" "hello %d" 42;
  Trace.emit tr ~time:2.5 ~who:"y" "world";
  (match Trace.lines tr with
  | [ l1; l2 ] ->
      Alcotest.(check string) "text" "hello 42" l1.Trace.text;
      Alcotest.(check string) "who" "y" l2.Trace.who
  | _ -> Alcotest.fail "expected two lines");
  Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (List.length (Trace.lines tr));
  let off = Trace.create () in
  Trace.emit off ~time:0. ~who:"x" "invisible %s" "arg";
  Alcotest.(check int) "disabled trace records nothing" 0
    (List.length (Trace.lines off))

let qcheck_heap_sorts =
  QCheck.Test.make ~name:"event queue sorts any float multiset"
    QCheck.(small_list (float_bound_inclusive 100.))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> Event_queue.push q ~time:t ()) times;
      let rec drain acc =
        match Event_queue.pop q with
        | None -> List.rev acc
        | Some (t, ()) -> drain (t :: acc)
      in
      let out = drain [] in
      out = List.sort compare times)

let suite =
  [ Alcotest.test_case "event queue: time order" `Quick test_event_queue_order;
    Alcotest.test_case "event queue: stable on ties" `Quick
      test_event_queue_stable_ties;
    Alcotest.test_case "event queue: interleaved push/pop" `Quick
      test_event_queue_interleaved;
    Alcotest.test_case "engine: causal execution" `Quick
      test_engine_runs_in_order;
    Alcotest.test_case "engine: until bound" `Quick test_engine_until;
    Alcotest.test_case "engine: rejects past" `Quick test_engine_rejects_past;
    Alcotest.test_case "channel: FIFO under random latency" `Quick
      test_channel_fifo_under_random_latency;
    Alcotest.test_case "rng: determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng: ranges" `Quick test_rng_ranges;
    Alcotest.test_case "rng: zipf skew" `Quick test_rng_zipf_skew;
    Alcotest.test_case "rng: split independence" `Quick
      test_rng_split_independent;
    Alcotest.test_case "trace log" `Quick test_trace;
    QCheck_alcotest.to_alcotest qcheck_heap_sorts ]
