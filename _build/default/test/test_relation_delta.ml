open Repro_relational

let t1 = Tuple.ints [ 1 ]
let t2 = Tuple.ints [ 2 ]

let test_relation_insert_delete () =
  let r = Relation.create () in
  Relation.insert r t1 2;
  Relation.delete r t1 1;
  Alcotest.(check int) "count after" 1 (Relation.count r t1);
  Alcotest.check_raises "delete below zero"
    (Invalid_argument "Relation.delete: (1) has count 1 < 2") (fun () ->
      Relation.delete r t1 2);
  Alcotest.check_raises "insert nonpositive"
    (Invalid_argument "Relation.insert: count < 1") (fun () ->
      Relation.insert r t1 0)

let test_relation_of_list_negative () =
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Relation.of_list: negative count") (fun () ->
      ignore (Relation.of_list [ (t1, -1) ]))

let test_apply_guard () =
  let r = Relation.of_list [ (t1, 1) ] in
  let bad = Delta.of_list [ (t1, -2) ] in
  (match Relation.apply r bad with
  | Error [ tup ] -> Alcotest.check Rig.tuple "offender reported" t1 tup
  | Error _ | Ok () -> Alcotest.fail "expected single offending tuple");
  (* the failed apply must leave the relation untouched *)
  Alcotest.(check int) "unchanged" 1 (Relation.count r t1);
  let ok = Delta.of_list [ (t1, -1); (t2, 3) ] in
  (match Relation.apply r ok with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "valid delta rejected");
  Alcotest.(check int) "t1 gone" 0 (Relation.count r t1);
  Alcotest.(check int) "t2 there" 3 (Relation.count r t2)

let test_delta_parts () =
  let d = Delta.of_list [ (t1, 2); (t2, -3) ] in
  Alcotest.check Rig.delta "positive part"
    (Delta.of_list [ (t1, 2) ])
    (Delta.positive_part d);
  Alcotest.check Rig.delta "negative part (positivized)"
    (Delta.of_list [ (t2, 3) ])
    (Delta.negative_part d);
  Alcotest.check Rig.delta "negate"
    (Delta.of_list [ (t1, -2); (t2, 3) ])
    (Delta.negate d);
  Alcotest.(check int) "weight" 5 (Delta.weight d)

let test_delta_sum_merges_updates () =
  (* merging interfering updates from one source (paper §5.1) *)
  let d1 = Delta.insertion t1 in
  let d2 = Delta.deletion t1 in
  let d3 = Delta.insertion t2 in
  Alcotest.check Rig.delta "insert+delete cancel, rest survives"
    (Delta.of_list [ (t2, 1) ])
    (Delta.sum [ d1; d2; d3 ])

let test_of_relation_signs () =
  let r = Relation.of_list [ (t1, 2) ] in
  Alcotest.check Rig.delta "positive" (Delta.of_list [ (t1, 2) ])
    (Delta.of_relation r);
  Alcotest.check Rig.delta "negative"
    (Delta.of_list [ (t1, -2) ])
    (Delta.of_relation ~sign:(-1) r)

(* Property: applying a valid random delta then its negation restores the
   relation. *)
let qcheck_apply_roundtrip =
  QCheck.Test.make ~name:"relation apply/unapply roundtrip"
    QCheck.(small_list (pair (int_range 0 5) (int_range 1 3)))
    (fun entries ->
      let r =
        Relation.of_list
          (List.map (fun (k, c) -> (Tuple.ints [ k ], c)) entries)
      in
      let before = Relation.copy r in
      (* delete half of what's there, insert something new *)
      let d = Delta.empty () in
      Relation.iter (fun tup c -> Delta.add d tup (-(c / 2))) r;
      Delta.add d (Tuple.ints [ 99 ]) 2;
      match Relation.apply r d with
      | Error _ -> false
      | Ok () -> (
          match Relation.apply r (Delta.negate d) with
          | Error _ -> false
          | Ok () -> Relation.equal r before))

let suite =
  [ Alcotest.test_case "insert/delete guards" `Quick
      test_relation_insert_delete;
    Alcotest.test_case "of_list rejects negatives" `Quick
      test_relation_of_list_negative;
    Alcotest.test_case "apply is atomic on failure" `Quick test_apply_guard;
    Alcotest.test_case "delta sign decomposition" `Quick test_delta_parts;
    Alcotest.test_case "delta sum merges updates" `Quick
      test_delta_sum_merges_updates;
    Alcotest.test_case "of_relation signs" `Quick test_of_relation_signs;
    QCheck_alcotest.to_alcotest qcheck_apply_roundtrip ]
