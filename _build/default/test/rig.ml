(* Test rig: thin wrapper over the harness's scripted runner plus alcotest
   testables shared by the suites. *)

open Repro_relational
open Repro_warehouse
open Repro_consistency
open Repro_harness

type outcome = Experiment.scripted_outcome = {
  node : Node.t;
  view : View_def.t;
  initial_sources : Relation.t array;
  trace : Repro_sim.Trace.t;
  engine : Repro_sim.Engine.t;
}

let scripted ?latency ?(algorithm = (module Sweep : Algorithm.S)) ?seed ~view
    ~initial ~updates () =
  Experiment.run_scripted ?latency ?seed ~algorithm ~view ~initial ~updates ()

let check = Experiment.check_scripted

(* Alcotest testables. *)
let bag = Alcotest.testable Bag.pp Bag.equal
let delta = Alcotest.testable Delta.pp Delta.equal
let relation = Alcotest.testable Relation.pp Relation.equal
let tuple = Alcotest.testable Tuple.pp Tuple.equal
let value = Alcotest.testable Value.pp Value.equal

let verdict =
  Alcotest.testable Checker.pp_verdict (fun a b ->
      Checker.compare_verdict a b = 0)

let final_view outcome = Node.view_contents outcome.node
