(* Deterministic pins on baseline-specific mechanisms: ECA's query-term
   algebra, Strobe's mid-flight key-deletes, and C-strobe's pin-set
   growth. All scripted with fixed latencies so the message counts and
   payload weights are exact. *)

open Repro_relational
open Repro_sim
open Repro_warehouse
open Repro_consistency
open Repro_workload
open Repro_harness

(* A manual centralized rig (the scripted harness runner only wires the
   distributed topology). *)
let run_centralized ~algorithm ~updates =
  let view = Chain.view ~n:3 () in
  let engine = Engine.create ~seed:2L () in
  let rng = Engine.rng engine in
  let inits =
    Array.init 3 (fun _ -> Relation.of_tuples [ Chain.tuple ~key:0 ~a:0 ~b:0 ])
  in
  let initial_copy = Array.map Relation.copy inits in
  let node = ref None in
  let deliver msg = Node.deliver (Option.get !node) msg in
  let up =
    Channel.create engine ~latency:(Latency.Fixed 1.0) ~rng:(Rng.split rng)
      ~deliver
  in
  let site =
    Repro_source.Eca_site.create engine ~view ~inits
      ~send:(fun m -> Channel.send up m)
      ~trace:(Trace.create ())
  in
  let down =
    Channel.create engine ~latency:(Latency.Fixed 1.0) ~rng:(Rng.split rng)
      ~deliver:(fun m -> Repro_source.Eca_site.handle site m)
  in
  let warehouse =
    Node.create engine ~view ~algorithm
      ~send:(fun _ m -> Channel.send down m)
      ~init:(Algebra.eval view (fun i -> inits.(i)))
      ()
  in
  node := Some warehouse;
  List.iter
    (fun (time, source, delta) ->
      Engine.at engine ~time (fun () ->
          ignore (Repro_source.Eca_site.local_update site ~source delta)))
    updates;
  (match Engine.run engine with `Drained -> () | _ -> assert false);
  (warehouse, view, initial_copy)

let check_centralized (warehouse, view, initial_copy) =
  Checker.check view
    { Checker.initial_sources = initial_copy;
      deliveries = Node.deliveries warehouse;
      installs =
        List.map
          (fun (r : Node.install_record) -> (r.txns, r.view_after))
          (Node.installs warehouse);
      final_view = Node.view_contents warehouse }

let ins k = Delta.insertion (Chain.tuple ~key:k ~a:0 ~b:0)

(* Two overlapping updates at *different* relations: the second ECA query
   must carry a compensation term (payload strictly larger than the
   first); overlapping updates at the *same* relation annihilate the
   substitution, so the second query carries none. *)
let test_eca_term_algebra () =
  let weight_of_queries updates =
    let warehouse, _, _ =
      run_centralized ~algorithm:(module Eca : Algorithm.S) ~updates
    in
    let m = Node.metrics warehouse in
    (m.Metrics.queries_sent, m.Metrics.query_weight)
  in
  (* sequential control: two queries of one base term each. Each term
     weighs (1 tuple + 1 per-term overhead) = 2. *)
  let q_seq, w_seq = weight_of_queries [ (0.0, 1, ins 1); (50.0, 2, ins 1) ] in
  Alcotest.(check int) "two queries" 2 q_seq;
  (* overlapping at different relations: Q2 = base + compensation term *)
  let q_ovl, w_ovl = weight_of_queries [ (0.0, 1, ins 1); (0.5, 2, ins 1) ] in
  Alcotest.(check int) "still two queries" 2 q_ovl;
  Alcotest.(check bool)
    (Printf.sprintf "overlap inflates payload (%d > %d)" w_ovl w_seq)
    true (w_ovl > w_seq);
  (* overlapping at the same relation: substitution annihilates — same
     payload as the sequential control *)
  let q_same, w_same = weight_of_queries [ (0.0, 1, ins 1); (0.5, 1, ins 2) ] in
  Alcotest.(check int) "two queries again" 2 q_same;
  Alcotest.(check int) "no compensation term for the same relation" w_seq
    w_same

let test_eca_converges_on_overlap () =
  let run =
    run_centralized ~algorithm:(module Eca : Algorithm.S)
      ~updates:[ (0.0, 1, ins 1); (0.5, 2, ins 1); (0.9, 0, ins 1) ]
  in
  let v = (check_centralized run).Checker.verdict in
  Alcotest.(check bool) "eca ≥ convergent" true
    (Checker.compare_verdict v Checker.Convergent <= 0)

(* Strobe: a delete delivered while an insert's query is in flight must be
   applied to that query's answer (kill) — final state exact (strong). *)
let test_strobe_mid_flight_kill () =
  let view = Chain.view ~n:3 () in
  let initial =
    Array.init 3 (fun _ -> Relation.of_tuples [ Chain.tuple ~key:0 ~a:0 ~b:0 ])
  in
  let outcome =
    Experiment.run_scripted ~algorithm:(module Strobe : Algorithm.S) ~view
      ~initial
      ~updates:
        [ (0.0, 1, ins 1);
          (* in flight 1→5 *)
          (2.5, 0, Delta.deletion (Chain.tuple ~key:0 ~a:0 ~b:0)) ]
      ()
  in
  Alcotest.(check bool) "≥ strong" true
    (Checker.compare_verdict
       (Experiment.check_scripted outcome).Checker.verdict Checker.Strong
    <= 0);
  (* the killed derivations are gone: only the R0-less... the final view
     must equal a recomputation *)
  let expected =
    Checker.expected_states view
      ~initial:outcome.Experiment.initial_sources
      ~deliveries:(Node.deliveries outcome.Experiment.node)
  in
  Alcotest.check Rig.bag "final exact"
    expected.(Array.length expected - 1)
    (Node.view_contents outcome.Experiment.node)

(* C-strobe pin-set growth: one insert with two concurrent deletes at two
   other sources (n = 4) spawns compensating queries for each pin subset:
   {i,d1}, {i,d2}, {i,d1,d2}. Exact query count:
   base job: 3 queries; {i,d1}: 2; {i,d2}: 2; {i,d1,d2}: 1 → 8 total,
   plus 0 for the deletes themselves. *)
let test_cstrobe_pinset_growth () =
  let view = Chain.view ~n:4 () in
  let initial =
    Array.init 4 (fun _ ->
        Relation.of_tuples
          [ Chain.tuple ~key:0 ~a:0 ~b:0; Chain.tuple ~key:1 ~a:0 ~b:0 ])
  in
  let outcome =
    Experiment.run_scripted ~algorithm:(module C_strobe : Algorithm.S) ~view
      ~initial
      ~updates:
        [ (0.0, 0, ins 2);
          (1.2, 1, Delta.deletion (Chain.tuple ~key:1 ~a:0 ~b:0));
          (1.3, 2, Delta.deletion (Chain.tuple ~key:1 ~a:0 ~b:0)) ]
      ()
  in
  let m = Node.metrics outcome.Experiment.node in
  Alcotest.(check int) "8 queries: 3 + 2 + 2 + 1" 8 m.Metrics.queries_sent;
  Alcotest.check Rig.verdict "complete" Checker.Complete
    (Experiment.check_scripted outcome).Checker.verdict

(* C-strobe concurrent-insert kill: the later insert's derivations are
   removed from the earlier answer and only appear in its own install —
   that is precisely complete consistency, which the checker verifies. *)
let test_cstrobe_insert_kill () =
  let view = Chain.view ~n:3 () in
  let initial =
    Array.init 3 (fun _ -> Relation.of_tuples [ Chain.tuple ~key:0 ~a:0 ~b:0 ])
  in
  let outcome =
    Experiment.run_scripted ~algorithm:(module C_strobe : Algorithm.S) ~view
      ~initial
      ~updates:[ (0.0, 1, ins 1); (1.2, 0, ins 1) ]
      ()
  in
  Alcotest.check Rig.verdict "complete despite overlapping inserts"
    Checker.Complete
    (Experiment.check_scripted outcome).Checker.verdict;
  Alcotest.(check int) "one install per update" 2
    (Node.metrics outcome.Experiment.node).Metrics.installs

let suite =
  [ Alcotest.test_case "eca query-term algebra" `Quick test_eca_term_algebra;
    Alcotest.test_case "eca converges on overlap" `Quick
      test_eca_converges_on_overlap;
    Alcotest.test_case "strobe mid-flight kill" `Quick
      test_strobe_mid_flight_kill;
    Alcotest.test_case "c-strobe pin-set growth (exact counts)" `Quick
      test_cstrobe_pinset_growth;
    Alcotest.test_case "c-strobe concurrent-insert kill" `Quick
      test_cstrobe_insert_kill ]
