(* Pipelined SWEEP (§5.3's second optimization): overlapping ViewChanges,
   in-order installs, and the refined interference rule (only updates
   delivered *after* the one being swept are cancelled). *)

open Repro_relational
open Repro_warehouse
open Repro_consistency
open Repro_workload
open Repro_harness

let view = Chain.view ~n:3 ()

let initial3 () =
  [| Relation.of_tuples [ Chain.tuple ~key:0 ~a:0 ~b:1 ];
     Relation.of_tuples [ Chain.tuple ~key:0 ~a:1 ~b:2 ];
     Relation.of_tuples [ Chain.tuple ~key:0 ~a:2 ~b:3 ] |]

let test_installs_in_delivery_order () =
  (* three rapid-fire updates: sweeps overlap, installs must still follow
     delivery order and each state must be exact *)
  let outcome =
    Experiment.run_scripted ~algorithm:(module Sweep_pipelined : Algorithm.S)
      ~view ~initial:(initial3 ())
      ~updates:
        [ (0.0, 2, Delta.insertion (Chain.tuple ~key:1 ~a:2 ~b:9));
          (0.2, 0, Delta.insertion (Chain.tuple ~key:1 ~a:9 ~b:1));
          (0.4, 1, Delta.deletion (Chain.tuple ~key:0 ~a:1 ~b:2)) ]
      ()
  in
  let sources =
    List.concat_map
      (fun (r : Node.install_record) ->
        List.map (fun (t : Repro_protocol.Message.txn_id) -> t.source) r.txns)
      (Node.installs outcome.Experiment.node)
  in
  Alcotest.(check (list int)) "delivery order" [ 2; 0; 1 ] sources;
  Alcotest.check Rig.verdict "complete" Checker.Complete
    (Experiment.check_scripted outcome).Checker.verdict

let test_overlapping_sweeps () =
  (* with window 8 and a tight stream, several sweeps must be in flight at
     once — observable as queries for later updates sent before earlier
     updates install *)
  let sc =
    { Scenario.default with
      n_sources = 4;
      init_size = 20;
      domain = 20;
      stream =
        { Update_gen.default with n_updates = 60; mean_gap = 0.3 };
      seed = 7L }
  in
  let pipe = Experiment.run sc (module Sweep_pipelined : Algorithm.S) in
  let seq = Experiment.run sc (module Sweep : Algorithm.S) in
  Alcotest.check Rig.verdict "pipelined stays complete" Checker.Complete
    pipe.Experiment.verdict.Checker.verdict;
  Alcotest.(check int) "same query count"
    seq.Experiment.metrics.Metrics.queries_sent
    pipe.Experiment.metrics.Metrics.queries_sent;
  Alcotest.(check bool)
    (Printf.sprintf "pipelining cuts staleness (%.1f < %.1f)"
       (Metrics.mean_staleness pipe.Experiment.metrics)
       (Metrics.mean_staleness seq.Experiment.metrics))
    true
    (Metrics.mean_staleness pipe.Experiment.metrics
    < Metrics.mean_staleness seq.Experiment.metrics /. 2.)

let test_window_one_equals_sweep () =
  let sc =
    { Scenario.default with
      n_sources = 3;
      init_size = 15;
      domain = 15;
      stream = { Update_gen.default with n_updates = 40; mean_gap = 0.5 };
      seed = 13L }
  in
  let w1 = Experiment.run sc (Sweep_pipelined.with_window 1) in
  let sw = Experiment.run sc (module Sweep : Algorithm.S) in
  Alcotest.(check int) "same queries"
    sw.Experiment.metrics.Metrics.queries_sent
    w1.Experiment.metrics.Metrics.queries_sent;
  Alcotest.(check int) "same installs"
    sw.Experiment.metrics.Metrics.installs
    w1.Experiment.metrics.Metrics.installs;
  Alcotest.check Rig.verdict "complete" Checker.Complete
    w1.Experiment.verdict.Checker.verdict;
  Alcotest.(check (float 1e-6)) "same staleness"
    (Metrics.mean_staleness sw.Experiment.metrics)
    (Metrics.mean_staleness w1.Experiment.metrics)

let test_earlier_pipeline_updates_not_cancelled () =
  (* u1 (source 0) and u2 (source 2) overlap in the pipeline; u2's sweep
     reads R0 *after* u1 applied. u1 serializes first, so u2 must NOT
     compensate it away — the refined rule. The checker catches either
     kind of mistake. *)
  let outcome =
    Experiment.run_scripted ~algorithm:(module Sweep_pipelined : Algorithm.S)
      ~view ~initial:(initial3 ())
      ~updates:
        [ (0.0, 0, Delta.deletion (Chain.tuple ~key:0 ~a:0 ~b:1));
          (0.1, 2, Delta.insertion (Chain.tuple ~key:1 ~a:2 ~b:9)) ]
      ()
  in
  Alcotest.check Rig.verdict "refined interference rule is exact"
    Checker.Complete
    (Experiment.check_scripted outcome).Checker.verdict

let qcheck_pipelined_complete =
  QCheck.Test.make ~name:"pipelined sweep: complete on random runs" ~count:15
    (QCheck.triple (QCheck.int_range 2 5) (QCheck.int_range 1 10_000)
       (QCheck.int_range 1 8))
    (fun (n, seed, window) ->
      let sc =
        { Scenario.default with
          n_sources = n;
          init_size = 15;
          domain = 15;
          stream =
            { Update_gen.default with
              n_updates = 30; mean_gap = 0.25; p_insert = 0.55 };
          seed = Int64.of_int seed }
      in
      let r = Experiment.run sc (Sweep_pipelined.with_window window) in
      r.Experiment.verdict.Checker.verdict = Checker.Complete)

let suite =
  [ Alcotest.test_case "installs follow delivery order" `Quick
      test_installs_in_delivery_order;
    Alcotest.test_case "overlapping sweeps slash staleness" `Slow
      test_overlapping_sweeps;
    Alcotest.test_case "window=1 degenerates to sweep" `Slow
      test_window_one_equals_sweep;
    Alcotest.test_case "earlier pipeline updates not cancelled" `Quick
      test_earlier_pipeline_updates_not_cancelled;
    QCheck_alcotest.to_alcotest qcheck_pipelined_complete ]
