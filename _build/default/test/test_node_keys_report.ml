(* Unit suites for the warehouse node's accounting, the key helpers the
   Strobe family uses, and the report renderer. *)

open Repro_relational
open Repro_sim
open Repro_warehouse
open Repro_workload
open Repro_harness

(* --- keys ---------------------------------------------------------- *)

let view3 = Chain.view ~n:3 ()

let test_key_extraction () =
  let tup = Chain.tuple ~key:42 ~a:1 ~b:2 in
  Alcotest.check Rig.tuple "source key" (Tuple.ints [ 42 ])
    (Keys.source_tuple_key view3 1 tup);
  let full = Tuple.ints [ 0; 0; 1; 42; 1; 2; 9; 2; 3 ] in
  Alcotest.check Rig.tuple "key of middle slice" (Tuple.ints [ 42 ])
    (Keys.full_tuple_key view3 1 full);
  (* chain view projects keys at positions 0..n-1 *)
  let vtup = Tuple.ints [ 7; 8; 9; 1; 3 ] in
  Alcotest.check Rig.tuple "key inside view tuple" (Tuple.ints [ 8 ])
    (Keys.view_tuple_key view3 1 vtup)

let test_kill_full () =
  let full =
    Delta.of_list
      [ (Tuple.ints [ 0; 0; 1; 5; 1; 2; 9; 2; 3 ], 1);
        (Tuple.ints [ 0; 0; 1; 6; 1; 2; 9; 2; 3 ], 2) ]
  in
  let keys = Hashtbl.create 4 in
  Hashtbl.replace keys (Tuple.ints [ 5 ]) ();
  Keys.kill_full view3 ~full ~source:1 ~keys;
  Alcotest.(check int) "killed tuple gone" 0
    (Delta.count full (Tuple.ints [ 0; 0; 1; 5; 1; 2; 9; 2; 3 ]));
  Alcotest.(check int) "other survives" 2
    (Delta.count full (Tuple.ints [ 0; 0; 1; 6; 1; 2; 9; 2; 3 ]))

let test_view_deletion () =
  let contents =
    Bag.of_list
      [ (Tuple.ints [ 1; 5; 2; 0; 3 ], 1); (Tuple.ints [ 1; 6; 2; 0; 3 ], 1) ]
  in
  let d = Keys.view_deletion view3 ~contents ~source:1 ~key:(Tuple.ints [ 5 ]) in
  Alcotest.check Rig.delta "only matching key removed"
    (Delta.of_list [ (Tuple.ints [ 1; 5; 2; 0; 3 ], -1) ])
    d

let test_require_keys () =
  Alcotest.(check bool) "chain view passes" true
    (match Keys.require_keys ~algorithm:"X" view3 with
    | () -> true
    | exception Invalid_argument _ -> false);
  let keyless = Chain.view ~n:2 ~projection:[| 1 |] ~name:"nk" () in
  Alcotest.(check bool) "keyless fails with algorithm name" true
    (match Keys.require_keys ~algorithm:"Strobe" keyless with
    | exception Invalid_argument m ->
        String.length m > 6 && String.sub m 0 6 = "Strobe"
    | () -> false)

(* --- node accounting ------------------------------------------------ *)

let test_node_accounting () =
  let outcome =
    Experiment.run_scripted ~algorithm:(module Sweep : Algorithm.S)
      ~view:view3
      ~initial:
        [| Relation.of_tuples [ Chain.tuple ~key:0 ~a:0 ~b:1 ];
           Relation.of_tuples [ Chain.tuple ~key:0 ~a:1 ~b:2 ];
           Relation.of_tuples [ Chain.tuple ~key:0 ~a:2 ~b:3 ] |]
      ~updates:
        [ (0.0, 1, Delta.insertion (Chain.tuple ~key:1 ~a:1 ~b:2));
          (30.0, 1, Delta.deletion (Chain.tuple ~key:1 ~a:1 ~b:2)) ]
      ()
  in
  let node = outcome.Experiment.node in
  let m = Node.metrics node in
  Alcotest.(check int) "updates received" 2 m.Metrics.updates_received;
  Alcotest.(check int) "queries = 2 per update" 4 m.Metrics.queries_sent;
  Alcotest.(check int) "answers mirror queries" 4 m.Metrics.answers_received;
  Alcotest.(check int) "notice weight" 2 m.Metrics.notice_weight;
  Alcotest.(check int) "deliveries recorded" 2
    (List.length (Node.deliveries node));
  Alcotest.(check int) "installs recorded" 2 (List.length (Node.installs node));
  Alcotest.(check string) "algorithm name" "sweep" (Node.algorithm_name node);
  Alcotest.(check bool) "idle after drain" true (Node.idle node);
  (* initial view snapshot is intact even after installs *)
  Alcotest.(check bool) "initial view preserved" true
    (Bag.equal (Node.initial_view node)
       (Bag.of_list [ (Tuple.ints [ 0; 0; 0; 0; 3 ], 1) ]))

let test_install_listener_stream () =
  let seen = ref [] in
  let view = view3 in
  let outcome =
    let initial =
      [| Relation.of_tuples [ Chain.tuple ~key:0 ~a:0 ~b:1 ];
         Relation.of_tuples [ Chain.tuple ~key:0 ~a:1 ~b:2 ];
         Relation.of_tuples [ Chain.tuple ~key:0 ~a:2 ~b:3 ] |]
    in
    let engine = Engine.create () in
    let rng = Engine.rng engine in
    let node = ref None in
    let deliver msg = Node.deliver (Option.get !node) msg in
    let up =
      Array.init 3 (fun _ ->
          Channel.create engine ~latency:(Latency.Fixed 1.0)
            ~rng:(Rng.split rng) ~deliver)
    in
    let sources =
      Array.init 3 (fun i ->
          Repro_source.Source_node.create engine ~view ~id:i
            ~init:initial.(i)
            ~send:(fun m -> Channel.send up.(i) m)
            ~trace:(Trace.create ()))
    in
    let down =
      Array.init 3 (fun i ->
          Channel.create engine ~latency:(Latency.Fixed 1.0)
            ~rng:(Rng.split rng)
            ~deliver:(fun m -> Repro_source.Source_node.handle sources.(i) m))
    in
    let wh =
      Node.create engine ~view ~algorithm:(module Sweep : Algorithm.S)
        ~send:(fun i m -> Channel.send down.(i) m)
        ~init:(Algebra.eval view (fun i -> initial.(i)))
        ()
    in
    Node.add_install_listener wh (fun d -> seen := Delta.copy d :: !seen);
    node := Some wh;
    Engine.at engine ~time:0.0 (fun () ->
        ignore
          (Repro_source.Source_node.local_update sources.(1)
             (Delta.insertion (Chain.tuple ~key:1 ~a:1 ~b:2))));
    ignore (Engine.run engine);
    wh
  in
  ignore outcome;
  Alcotest.(check int) "listener saw one install" 1 (List.length !seen)

(* --- report renderer ------------------------------------------------ *)

let test_table_render () =
  let s =
    Report.table ~title:"T" ~headers:[ "x"; "count" ]
      ~rows:[ [ "alpha"; "1" ]; [ "b"; "23" ] ]
      ()
  in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  (* all body lines the same display width *)
  let lines =
    List.filter (fun l -> String.length l > 0) (String.split_on_char '\n' s)
  in
  (match lines with
  | _title :: rest ->
      let widths = List.map String.length rest in
      Alcotest.(check bool) "uniform width" true
        (List.for_all (fun w -> w = List.hd widths) widths)
  | [] -> Alcotest.fail "empty table");
  (* short rows are padded, alignment defaults left/right *)
  let padded =
    Report.table ~title:"" ~headers:[ "a"; "b" ] ~rows:[ [ "only" ] ] ()
  in
  Alcotest.(check bool) "short row padded" true
    (String.length padded > 0)

let test_table_utf8_width () =
  (* headers with multibyte glyphs must not skew column widths *)
  let s =
    Report.table ~title:"" ~headers:[ "Δmsgs"; "n" ]
      ~rows:[ [ "1"; "2" ] ]
      ()
  in
  let lines =
    List.filter (fun l -> String.length l > 0) (String.split_on_char '\n' s)
  in
  let display_len l =
    (* count non-continuation bytes *)
    let n = ref 0 in
    String.iter (fun c -> if Char.code c land 0xC0 <> 0x80 then incr n) l;
    !n
  in
  let widths = List.map display_len lines in
  Alcotest.(check bool) "uniform display width" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_csv () =
  let s =
    Report.csv ~headers:[ "a"; "b" ]
      ~rows:[ [ "1"; "x,y" ]; [ "q\"t"; "2" ] ]
  in
  Alcotest.(check string) "escaping"
    "a,b\n1,\"x,y\"\n\"q\"\"t\",2" s

let test_scenario_presets () =
  Alcotest.(check bool) "all presets resolvable" true
    (List.for_all
       (fun (name, _) -> Scenario.find_preset name <> None)
       Scenario.presets);
  Alcotest.(check bool) "unknown preset absent" true
    (Scenario.find_preset "nope" = None);
  (* centralized preset really is centralized *)
  (match Scenario.find_preset "centralized" with
  | Some s ->
      Alcotest.(check bool) "topology" true
        (s.Scenario.topology = Scenario.Centralized)
  | None -> Alcotest.fail "centralized preset missing")

let suite =
  [ Alcotest.test_case "key extraction" `Quick test_key_extraction;
    Alcotest.test_case "kill_full" `Quick test_kill_full;
    Alcotest.test_case "view_deletion" `Quick test_view_deletion;
    Alcotest.test_case "require_keys" `Quick test_require_keys;
    Alcotest.test_case "node accounting" `Quick test_node_accounting;
    Alcotest.test_case "install listener stream" `Quick
      test_install_listener_stream;
    Alcotest.test_case "table rendering" `Quick test_table_render;
    Alcotest.test_case "table utf8 widths" `Quick test_table_utf8_width;
    Alcotest.test_case "csv escaping" `Quick test_csv;
    Alcotest.test_case "scenario presets" `Quick test_scenario_presets ]
