(* SWEEP-specific behaviour: sweep order, exact message counts, and the
   FIFO-based interference test of §4 — compensation fires exactly when an
   update really was applied before the query was evaluated. *)

open Repro_relational
open Repro_warehouse
open Repro_consistency
open Repro_workload

let test_sweep_order () =
  Alcotest.(check (list int)) "middle" [ 1; 0; 3; 4 ]
    (Sweep.sweep_order ~n:5 ~i:2);
  Alcotest.(check (list int)) "left end" [ 1; 2 ] (Sweep.sweep_order ~n:3 ~i:0);
  Alcotest.(check (list int)) "right end" [ 1; 0 ]
    (Sweep.sweep_order ~n:3 ~i:2);
  Alcotest.(check (list int)) "single source" [] (Sweep.sweep_order ~n:1 ~i:0)

(* A 3-source chain with hand-picked contents so every join matches. *)
let view = Chain.view ~n:3 ()

let initial () =
  [| Relation.of_tuples [ Chain.tuple ~key:0 ~a:0 ~b:1 ];
     Relation.of_tuples [ Chain.tuple ~key:0 ~a:1 ~b:2 ];
     Relation.of_tuples [ Chain.tuple ~key:0 ~a:2 ~b:3 ] |]

(* With latency 1.0, an update at source 2 delivered at t=1 sweeps:
   query(1) 1→2 answered 2→3, query(0) 3→4 answered 4→5. *)
let interfering_update_time = 3.5 (* applied before eval at t=4 *)
let non_interfering_update_time = 4.5 (* applied after eval at t=4 *)

let scripted ~t0_update =
  Rig.scripted ~view ~initial:(initial ())
    ~updates:
      [ (0.0, 2, Delta.insertion (Chain.tuple ~key:1 ~a:2 ~b:9));
        (t0_update, 0, Delta.deletion (Chain.tuple ~key:0 ~a:0 ~b:1)) ]
    ()

let test_interference_detected () =
  let outcome = scripted ~t0_update:interfering_update_time in
  let m = Node.metrics outcome.node in
  Alcotest.(check int) "exactly one compensation" 1 m.Metrics.compensations;
  Alcotest.check Rig.verdict "still complete" Checker.Complete
    (Rig.check outcome).Checker.verdict

let test_non_interference_ignored () =
  let outcome = scripted ~t0_update:non_interfering_update_time in
  let m = Node.metrics outcome.node in
  (* §4: an update applied after the query was evaluated must NOT be
     compensated — doing so would corrupt a keyless view. *)
  Alcotest.(check int) "no compensation" 0 m.Metrics.compensations;
  Alcotest.check Rig.verdict "complete" Checker.Complete
    (Rig.check outcome).Checker.verdict

let test_exact_message_count () =
  (* (n−1) queries and (n−1) answers per update, regardless of
     concurrency. *)
  List.iter
    (fun n ->
      let sc =
        { Repro_harness.Scenario.default with
          n_sources = n;
          init_size = 10;
          stream =
            { Update_gen.default with n_updates = 20; mean_gap = 0.5 };
          seed = 17L }
      in
      let r = Repro_harness.Experiment.run sc (module Sweep : Algorithm.S) in
      Alcotest.(check int)
        (Printf.sprintf "queries for n=%d" n)
        (20 * (n - 1))
        r.Repro_harness.Experiment.metrics.Metrics.queries_sent;
      Alcotest.(check int)
        (Printf.sprintf "answers for n=%d" n)
        (20 * (n - 1))
        r.Repro_harness.Experiment.metrics.Metrics.answers_received;
      Alcotest.(check int)
        (Printf.sprintf "installs for n=%d" n)
        20 r.Repro_harness.Experiment.metrics.Metrics.installs)
    [ 2; 3; 5 ]

let test_single_source_no_messages () =
  (* n=1: the view is a projection of one relation; no queries needed. *)
  let v1 = Chain.view ~n:1 () in
  let outcome =
    Rig.scripted ~view:v1
      ~initial:[| Relation.of_tuples [ Chain.tuple ~key:0 ~a:1 ~b:2 ] |]
      ~updates:[ (0.0, 0, Delta.insertion (Chain.tuple ~key:1 ~a:3 ~b:4)) ]
      ()
  in
  let m = Node.metrics outcome.node in
  Alcotest.(check int) "no queries" 0 m.Metrics.queries_sent;
  Alcotest.(check int) "installed" 1 m.Metrics.installs;
  Alcotest.check Rig.verdict "complete" Checker.Complete
    (Rig.check outcome).Checker.verdict

let test_multiple_interfering_from_same_source_merged () =
  (* two updates from source 0 both interfere with one sweep: a single
     compensation must account for their sum *)
  let outcome =
    Rig.scripted ~view ~initial:(initial ())
      ~updates:
        [ (0.0, 2, Delta.insertion (Chain.tuple ~key:1 ~a:2 ~b:9));
          (3.2, 0, Delta.insertion (Chain.tuple ~key:1 ~a:0 ~b:1));
          (3.4, 0, Delta.insertion (Chain.tuple ~key:2 ~a:9 ~b:1)) ]
      ()
  in
  let m = Node.metrics outcome.node in
  Alcotest.(check int) "one merged compensation" 1 m.Metrics.compensations;
  Alcotest.check Rig.verdict "complete" Checker.Complete
    (Rig.check outcome).Checker.verdict

let test_processing_order_is_delivery_order () =
  let outcome =
    Rig.scripted ~view ~initial:(initial ())
      ~updates:
        [ (0.0, 2, Delta.insertion (Chain.tuple ~key:1 ~a:2 ~b:9));
          (0.1, 0, Delta.insertion (Chain.tuple ~key:1 ~a:5 ~b:1));
          (0.2, 1, Delta.insertion (Chain.tuple ~key:1 ~a:1 ~b:2)) ]
      ()
  in
  let installs = Node.installs outcome.node in
  let sources =
    List.concat_map
      (fun (r : Node.install_record) ->
        List.map (fun (t : Repro_protocol.Message.txn_id) -> t.source) r.txns)
      installs
  in
  Alcotest.(check (list int)) "installed in delivery order" [ 2; 0; 1 ]
    sources

(* Property: on random concurrent workloads SWEEP is always complete and
   always uses exactly (n-1) queries per update. *)
let qcheck_sweep_complete =
  QCheck.Test.make ~name:"sweep: complete + linear messages on random runs"
    ~count:12
    (QCheck.pair (QCheck.int_range 2 5) (QCheck.int_range 1 10_000))
    (fun (n, seed) ->
      let sc =
        { Repro_harness.Scenario.default with
          n_sources = n;
          init_size = 15;
          domain = 6;
          stream =
            { Update_gen.default with
              n_updates = 25; mean_gap = 0.4; p_insert = 0.55 };
          seed = Int64.of_int seed }
      in
      let r = Repro_harness.Experiment.run sc (module Sweep : Algorithm.S) in
      r.Repro_harness.Experiment.verdict.Checker.verdict = Checker.Complete
      && r.Repro_harness.Experiment.metrics.Metrics.queries_sent
         = 25 * (n - 1))

let suite =
  [ Alcotest.test_case "sweep order" `Quick test_sweep_order;
    Alcotest.test_case "interference detected (FIFO argument)" `Quick
      test_interference_detected;
    Alcotest.test_case "non-interference not compensated" `Quick
      test_non_interference_ignored;
    Alcotest.test_case "exact message counts" `Slow test_exact_message_count;
    Alcotest.test_case "single source: no messages" `Quick
      test_single_source_no_messages;
    Alcotest.test_case "same-source interferers merged" `Quick
      test_multiple_interfering_from_same_source_merged;
    Alcotest.test_case "delivery-order processing" `Quick
      test_processing_order_is_delivery_order;
    QCheck_alcotest.to_alcotest qcheck_sweep_complete ]
