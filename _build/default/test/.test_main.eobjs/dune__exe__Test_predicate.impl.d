test/test_predicate.ml: Alcotest Array Format Predicate QCheck QCheck_alcotest Repro_relational Value
