test/test_schema_tuple.ml: Alcotest Array List QCheck QCheck_alcotest Repro_relational Rig Schema Tuple Value
