test/test_figure5.ml: Alcotest Algebra Algorithm Array Checker List Metrics Naive Nested_sweep Node Paper_example Relation Repro_consistency Repro_relational Repro_warehouse Rig Sweep
