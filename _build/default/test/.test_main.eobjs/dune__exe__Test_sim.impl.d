test/test_sim.ml: Alcotest Array Channel Engine Event_queue Latency List QCheck QCheck_alcotest Repro_sim Rng Trace
