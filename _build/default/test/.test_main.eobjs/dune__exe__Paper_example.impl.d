test/paper_example.ml: Repro_workload
