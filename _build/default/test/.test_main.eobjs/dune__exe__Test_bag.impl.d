test/test_bag.ml: Alcotest Bag List QCheck QCheck_alcotest Repro_relational Rig Tuple Value
