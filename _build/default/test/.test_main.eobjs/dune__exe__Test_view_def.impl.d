test/test_view_def.ml: Alcotest Chain Delta Join_spec Partial Repro_relational Repro_workload Rig Tuple Value View_def
