test/test_experiments_smoke.ml: Alcotest List Paper_experiments Repro_harness String
