test/test_algebra.ml: Alcotest Algebra Array Bag Chain Delta List Paper_example Partial Predicate Printf QCheck QCheck_alcotest Relation Repro_relational Repro_workload Rig Tuple Value
