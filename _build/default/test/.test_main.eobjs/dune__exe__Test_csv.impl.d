test/test_csv.ml: Alcotest Csv Format Relation Repro_relational Rig Schema String Value
