test/test_queue_metrics.ml: Alcotest Delta List Message Metrics Repro_protocol Repro_relational Repro_warehouse Tuple Update_queue
