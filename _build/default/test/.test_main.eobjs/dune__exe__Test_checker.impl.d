test/test_checker.ml: Alcotest Array Bag Checker Delta List Message Paper_example Repro_consistency Repro_protocol Repro_relational Rig Tuple
