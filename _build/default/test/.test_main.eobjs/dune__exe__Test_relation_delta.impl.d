test/test_relation_delta.ml: Alcotest Delta List QCheck QCheck_alcotest Relation Repro_relational Rig Tuple
