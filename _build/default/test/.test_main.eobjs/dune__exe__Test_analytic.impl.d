test/test_analytic.ml: Alcotest Algorithm Analytic Experiment Float Metrics Printf Repro_harness Repro_sim Repro_warehouse Repro_workload Scenario Sweep Update_gen
