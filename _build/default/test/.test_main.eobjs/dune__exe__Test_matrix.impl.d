test/test_matrix.ml: Alcotest Algorithm Checker Experiment List Naive Printf Repro_consistency Repro_harness Repro_warehouse Repro_workload Scenario
