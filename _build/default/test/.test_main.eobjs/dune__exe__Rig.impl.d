test/rig.ml: Alcotest Algorithm Bag Checker Delta Experiment Node Relation Repro_consistency Repro_harness Repro_relational Repro_sim Repro_warehouse Sweep Tuple Value View_def
