test/test_workload.ml: Alcotest Array Bag Chain Delta Engine List Relation Repro_relational Repro_sim Repro_workload Rng Tuple Update_gen Value
