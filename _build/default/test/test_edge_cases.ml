(* Edge cases across the stack: empty/no-op deltas, multiplicities > 1,
   selection that filters everything, source-local transactions whose
   parts cancel, and views at the extremes of the chain. *)

open Repro_relational
open Repro_warehouse
open Repro_consistency
open Repro_workload
open Repro_harness

let view = Chain.view ~n:3 ()

let initial () =
  [| Relation.of_tuples [ Chain.tuple ~key:0 ~a:0 ~b:1 ];
     Relation.of_tuples [ Chain.tuple ~key:0 ~a:1 ~b:2 ];
     Relation.of_tuples [ Chain.tuple ~key:0 ~a:2 ~b:3 ] |]

let run ?(alg = (module Sweep : Algorithm.S)) ?(init = initial) updates =
  Experiment.run_scripted ~algorithm:alg ~view ~initial:(init ()) ~updates ()

let all_algorithms =
  [ ("sweep", (module Sweep : Algorithm.S));
    ("sweep-parallel", (module Sweep_parallel : Algorithm.S));
    ("sweep-pipelined", (module Sweep_pipelined : Algorithm.S));
    ("nested-sweep", (module Nested_sweep : Algorithm.S));
    ("strobe", (module Strobe : Algorithm.S));
    ("c-strobe", (module C_strobe : Algorithm.S));
    ("recompute", (module Recompute : Algorithm.S)) ]

(* A transaction whose insert and delete cancel produces an empty delta;
   every algorithm must survive the resulting empty update notice. *)
let test_cancelling_txn () =
  let cancelling =
    Delta.sum
      [ Delta.insertion (Chain.tuple ~key:9 ~a:5 ~b:5);
        Delta.deletion (Chain.tuple ~key:9 ~a:5 ~b:5) ]
  in
  Alcotest.(check bool) "delta is empty" true (Delta.is_empty cancelling);
  List.iter
    (fun (name, alg) ->
      let outcome =
        run ~alg
          [ (0.0, 1, Delta.insertion (Chain.tuple ~key:1 ~a:1 ~b:2));
            (0.5, 1, cancelling);
            (40.0, 0, Delta.insertion (Chain.tuple ~key:1 ~a:9 ~b:1)) ]
      in
      let v = (Experiment.check_scripted outcome).Checker.verdict in
      if Checker.compare_verdict v Checker.Strong > 0 then
        Alcotest.failf "%s mishandles an empty update (%s)" name
          (Checker.verdict_to_string v))
    all_algorithms

(* An update with no effect on the view (no join partners) must still
   produce its own (empty) state transition under complete consistency. *)
let test_no_effect_update () =
  let outcome =
    run [ (0.0, 1, Delta.insertion (Chain.tuple ~key:1 ~a:77 ~b:88)) ]
  in
  Alcotest.(check int) "one install" 1
    (List.length (Node.installs outcome.Experiment.node));
  Alcotest.check Rig.verdict "complete" Checker.Complete
    (Experiment.check_scripted outcome).Checker.verdict

(* Duplicate tuples (multiplicity 2) flow through joins and deltas with
   correct counting semantics — the GMS93 machinery SWEEP relies on. *)
let test_multiplicity_handling () =
  let init () =
    [| Relation.of_list [ (Chain.tuple ~key:0 ~a:0 ~b:1, 2) ];
       Relation.of_tuples [ Chain.tuple ~key:0 ~a:1 ~b:2 ];
       Relation.of_tuples [ Chain.tuple ~key:0 ~a:2 ~b:3 ] |]
  in
  let outcome =
    run ~init
      [ (0.0, 2, Delta.insertion (Chain.tuple ~key:1 ~a:2 ~b:9));
        (1.2, 0, Delta.of_list [ (Chain.tuple ~key:0 ~a:0 ~b:1, -1) ]) ]
  in
  Alcotest.check Rig.verdict "complete with multiplicities" Checker.Complete
    (Experiment.check_scripted outcome).Checker.verdict

(* A selection that filters out every tuple: the view stays empty but
   consistency bookkeeping still works. *)
let test_everything_filtered () =
  let v =
    Chain.view ~n:2
      ~selection:(Predicate.cmp_const Predicate.Lt 1 (Value.int (-1)))
      ~name:"never" ()
  in
  let outcome =
    Experiment.run_scripted ~algorithm:(module Sweep : Algorithm.S) ~view:v
      ~initial:
        [| Relation.of_tuples [ Chain.tuple ~key:0 ~a:0 ~b:1 ];
           Relation.of_tuples [ Chain.tuple ~key:0 ~a:1 ~b:2 ] |]
      ~updates:[ (0.0, 0, Delta.insertion (Chain.tuple ~key:1 ~a:3 ~b:1)) ]
      ()
  in
  Alcotest.(check bool) "view empty" true
    (Bag.is_empty (Node.view_contents outcome.Experiment.node));
  Alcotest.check Rig.verdict "still complete" Checker.Complete
    (Experiment.check_scripted outcome).Checker.verdict

(* Updates at the chain's extreme positions: the left sweep (i = 0) and
   right sweep (i = n-1) degenerate to a single direction. *)
let test_edge_positions () =
  List.iter
    (fun src ->
      let outcome =
        run
          [ (0.0, src,
             Delta.insertion
               (Chain.tuple ~key:1 ~a:(if src = 0 then 7 else 2)
                  ~b:(if src = 0 then 1 else 7))) ]
      in
      Alcotest.check Rig.verdict
        (Printf.sprintf "complete for update at source %d" src)
        Checker.Complete
        (Experiment.check_scripted outcome).Checker.verdict)
    [ 0; 2 ]

(* A large source-local transaction (paper's type-2 update): shipped and
   compensated as one atomic unit. *)
let test_source_local_txn_atomicity () =
  let txn =
    Delta.sum
      [ Delta.insertion (Chain.tuple ~key:1 ~a:1 ~b:2);
        Delta.insertion (Chain.tuple ~key:2 ~a:1 ~b:2);
        Delta.deletion (Chain.tuple ~key:0 ~a:1 ~b:2) ]
  in
  let outcome =
    run
      [ (0.0, 2, Delta.insertion (Chain.tuple ~key:1 ~a:2 ~b:9));
        (1.2, 1, txn) ]
  in
  let m = Node.metrics outcome.Experiment.node in
  (* one notice for the whole transaction *)
  Alcotest.(check int) "two notices only" 2 m.Metrics.updates_received;
  Alcotest.check Rig.verdict "complete" Checker.Complete
    (Experiment.check_scripted outcome).Checker.verdict

(* n = 2: the smallest multi-source warehouse; every algorithm applies. *)
let test_two_sources_all_algorithms () =
  let v2 = Chain.view ~n:2 () in
  List.iter
    (fun (name, alg) ->
      let outcome =
        Experiment.run_scripted ~algorithm:alg ~view:v2
          ~initial:
            [| Relation.of_tuples [ Chain.tuple ~key:0 ~a:0 ~b:1 ];
               Relation.of_tuples [ Chain.tuple ~key:0 ~a:1 ~b:2 ] |]
          ~updates:
            [ (0.0, 1, Delta.insertion (Chain.tuple ~key:1 ~a:1 ~b:5));
              (1.2, 0, Delta.deletion (Chain.tuple ~key:0 ~a:0 ~b:1)) ]
          ()
      in
      let verdict = (Experiment.check_scripted outcome).Checker.verdict in
      (* recompute's unsynchronized snapshots only promise convergence
         under interference *)
      let floor_ =
        if name = "recompute" then Checker.Convergent else Checker.Strong
      in
      if Checker.compare_verdict verdict floor_ > 0 then
        Alcotest.failf "%s failed on n=2 (%s)" name
          (Checker.verdict_to_string verdict))
    all_algorithms

(* Deliveries while the pipeline is full exercise the queue watermark. *)
let test_queue_growth_accounted () =
  let outcome =
    run
      (List.init 10 (fun k ->
           (0.1 *. float_of_int k, 1,
            Delta.insertion (Chain.tuple ~key:(k + 1) ~a:1 ~b:2))))
  in
  let m = Node.metrics outcome.Experiment.node in
  Alcotest.(check bool) "max queue observed" true (m.Metrics.max_queue >= 5);
  Alcotest.check Rig.verdict "complete" Checker.Complete
    (Experiment.check_scripted outcome).Checker.verdict

let suite =
  [ Alcotest.test_case "cancelling transactions (empty delta)" `Quick
      test_cancelling_txn;
    Alcotest.test_case "update with no view effect" `Quick
      test_no_effect_update;
    Alcotest.test_case "multiplicities > 1" `Quick test_multiplicity_handling;
    Alcotest.test_case "selection filters everything" `Quick
      test_everything_filtered;
    Alcotest.test_case "updates at chain extremes" `Quick test_edge_positions;
    Alcotest.test_case "source-local txn atomicity" `Quick
      test_source_local_txn_atomicity;
    Alcotest.test_case "n=2 across all algorithms" `Quick
      test_two_sources_all_algorithms;
    Alcotest.test_case "queue growth accounted" `Quick
      test_queue_growth_accounted ]
