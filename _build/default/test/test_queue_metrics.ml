open Repro_relational
open Repro_protocol
open Repro_warehouse

let upd ~source ~seq =
  { Message.txn = { Message.source; seq };
    delta = Delta.insertion (Tuple.ints [ seq ]); occurred_at = 0.; global = None }

let test_fifo () =
  let q = Update_queue.create () in
  let _ = Update_queue.append q (upd ~source:0 ~seq:0) ~arrived_at:1. in
  let _ = Update_queue.append q (upd ~source:1 ~seq:0) ~arrived_at:2. in
  Alcotest.(check int) "length" 2 (Update_queue.length q);
  (match Update_queue.peek q with
  | Some e -> Alcotest.(check int) "peek is oldest" 0 e.Update_queue.arrival
  | None -> Alcotest.fail "expected entry");
  (match Update_queue.pop q with
  | Some e -> Alcotest.(check int) "pop oldest" 0 e.Update_queue.arrival
  | None -> Alcotest.fail "expected entry");
  Alcotest.(check int) "one left" 1 (Update_queue.length q)

let test_arrival_numbers_monotonic () =
  let q = Update_queue.create () in
  Alcotest.(check int) "initially -1" (-1) (Update_queue.last_arrival q);
  let e1 = Update_queue.append q (upd ~source:0 ~seq:0) ~arrived_at:0. in
  ignore (Update_queue.pop q);
  let e2 = Update_queue.append q (upd ~source:0 ~seq:1) ~arrived_at:0. in
  Alcotest.(check bool) "arrival grows across pops" true
    (e2.Update_queue.arrival > e1.Update_queue.arrival);
  Alcotest.(check int) "watermark" e2.Update_queue.arrival
    (Update_queue.last_arrival q)

let test_from_source () =
  let q = Update_queue.create () in
  let _ = Update_queue.append q (upd ~source:0 ~seq:0) ~arrived_at:0. in
  let _ = Update_queue.append q (upd ~source:1 ~seq:0) ~arrived_at:0. in
  let _ = Update_queue.append q (upd ~source:0 ~seq:1) ~arrived_at:0. in
  Alcotest.(check int) "two from 0" 2
    (List.length (Update_queue.from_source q 0));
  Alcotest.(check int) "non-destructive" 3 (Update_queue.length q);
  let taken = Update_queue.take_from_source q 0 in
  Alcotest.(check (list int)) "taken oldest-first"
    [ 0; 1 ]
    (List.map (fun e -> e.Update_queue.update.Message.txn.Message.seq) taken);
  Alcotest.(check int) "only source 1 remains" 1 (Update_queue.length q);
  (match Update_queue.peek q with
  | Some e ->
      Alcotest.(check int) "remaining is source 1" 1
        e.Update_queue.update.Message.txn.Message.source
  | None -> Alcotest.fail "expected entry")

let test_metrics_staleness () =
  let m = Metrics.create () in
  Metrics.note_staleness m 2.0;
  Metrics.note_staleness m 4.0;
  m.Metrics.updates_incorporated <- 2;
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Metrics.mean_staleness m);
  Alcotest.(check (float 1e-9)) "max" 4.0 m.Metrics.staleness_max;
  m.Metrics.queries_sent <- 10;
  Alcotest.(check (float 1e-9)) "queries per update" 5.0
    (Metrics.queries_per_update m)

let test_metrics_queue_watermark () =
  let m = Metrics.create () in
  Metrics.note_queue_length m 3;
  Metrics.note_queue_length m 1;
  Alcotest.(check int) "max retained" 3 m.Metrics.max_queue

let suite =
  [ Alcotest.test_case "queue is FIFO" `Quick test_fifo;
    Alcotest.test_case "arrival numbering" `Quick
      test_arrival_numbers_monotonic;
    Alcotest.test_case "per-source extraction" `Quick test_from_source;
    Alcotest.test_case "staleness accounting" `Quick test_metrics_staleness;
    Alcotest.test_case "queue watermark" `Quick test_metrics_queue_watermark ]
