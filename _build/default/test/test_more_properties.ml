(* A grab bag of deeper properties and less-travelled paths: latency
   models, engine caps, merge_overlap vs direct join, parser round trips
   through the algebra, and distribution sanity for the generators. *)

open Repro_relational
open Repro_sim
open Repro_workload

let test_latency_models () =
  let rng = Rng.create 12L in
  Alcotest.(check (float 0.)) "fixed" 2.5 (Latency.sample (Latency.Fixed 2.5) rng);
  for _ = 1 to 500 do
    let u = Latency.sample (Latency.Uniform (1., 2.)) rng in
    Alcotest.(check bool) "uniform in range" true (u >= 1. && u < 2.);
    let e = Latency.sample (Latency.Exponential 3.) rng in
    Alcotest.(check bool) "exponential nonnegative" true (e >= 0.)
  done;
  Alcotest.(check (float 1e-9)) "mean fixed" 2.5 (Latency.mean (Latency.Fixed 2.5));
  Alcotest.(check (float 1e-9)) "mean uniform" 1.5
    (Latency.mean (Latency.Uniform (1., 2.)));
  Alcotest.(check (float 1e-9)) "mean exp" 3. (Latency.mean (Latency.Exponential 3.))

let test_exponential_mean_converges () =
  let rng = Rng.create 5L in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:2.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "sample mean %.3f within 5%% of 2.0" mean)
    true
    (mean > 1.9 && mean < 2.1)

let test_engine_max_events () =
  let e = Engine.create () in
  let rec tick () = Engine.schedule e ~delay:1.0 tick in
  tick ();
  (match Engine.run ~max_events:25 e with
  | `Max_events -> ()
  | _ -> Alcotest.fail "expected max_events stop");
  Alcotest.(check int) "exactly 25 ran" 25 (Engine.executed e)

let test_channel_counts () =
  let e = Engine.create () in
  let got = ref 0 in
  let ch =
    Channel.create e ~latency:(Latency.Fixed 1.) ~rng:(Rng.create 1L)
      ~deliver:(fun () -> incr got)
  in
  for _ = 1 to 7 do
    Channel.send ch ()
  done;
  ignore (Engine.run e);
  Alcotest.(check int) "sent" 7 (Channel.sent ch);
  Alcotest.(check int) "delivered" 7 !got

(* merge_overlap must agree with computing the chain join directly. *)
let qcheck_merge_overlap_vs_direct =
  let view = Chain.view ~n:3 () in
  let gen_rel =
    QCheck.map
      (fun entries ->
        Relation.of_list
          (List.map
             (fun ((k : int), a, b) -> (Chain.tuple ~key:k ~a ~b, 1))
             (List.sort_uniq compare entries)))
      QCheck.(
        small_list (triple (int_range 0 9) (int_range 0 2) (int_range 0 2)))
  in
  QCheck.Test.make ~name:"merge_overlap = direct chain join" ~count:200
    (QCheck.triple gen_rel gen_rel gen_rel)
    (fun (r0, r1, r2) ->
      QCheck.assume (not (Relation.is_empty r1));
      (* direct: R0 ⋈ R1 ⋈ R2 *)
      let direct =
        let p = Partial.of_relation view 0 r0 in
        let p = Algebra.extend view p ~with_relation:(1, r1) in
        Algebra.extend view p ~with_relation:(2, r2)
      in
      (* split at 1: left = R0 ⋈ R1, right = distinct(R1) ⋈ R2, merged *)
      let left =
        Algebra.extend view (Partial.of_relation view 1 r1)
          ~with_relation:(0, r0)
      in
      let right =
        Algebra.extend view
          { Partial.lo = 1; hi = 1;
            data = Delta.distinct (Delta.of_relation r1) }
          ~with_relation:(2, r2)
      in
      let merged = Algebra.merge_overlap view ~at:1 ~left ~right in
      Partial.equal direct merged)

(* The parser's compiled views evaluate exactly like hand-built ones on
   random data. *)
let qcheck_parser_eval_equivalence =
  let hand = Chain.view ~n:2 ~projection:[| 0; 3 |] ~name:"hand" () in
  let parsed =
    View_parser.parse_exn
      "SELECT R0.k, R1.k FROM R0(k int key, a int, b int), R1(k int key, a \
       int, b int) WHERE R0.b = R1.a"
  in
  QCheck.Test.make ~name:"parsed view ≡ hand-built view" ~count:100
    (QCheck.pair
       (QCheck.small_list
          QCheck.(triple (int_range 0 5) (int_range 0 3) (int_range 0 3)))
       (QCheck.small_list
          QCheck.(triple (int_range 0 5) (int_range 0 3) (int_range 0 3))))
    (fun (l0, l1) ->
      let mk l =
        Relation.of_list
          (List.map
             (fun ((k : int), a, b) -> (Chain.tuple ~key:k ~a ~b, 1))
             (List.sort_uniq compare l))
      in
      let rels = [| mk l0; mk l1 |] in
      Relation.equal
        (Algebra.eval hand (fun i -> rels.(i)))
        (Algebra.eval parsed (fun i -> rels.(i))))

(* Compensation algebra: compensate(answer, Δ, temp) + error = answer. *)
let qcheck_compensate_inverse =
  let view = Chain.view ~n:2 () in
  QCheck.Test.make ~name:"compensation subtracts exactly the error term"
    ~count:200
    (QCheck.pair
       (QCheck.small_list
          QCheck.(triple (int_range 0 4) (int_range 0 2) (int_range 0 2)))
       (QCheck.small_list
          QCheck.(pair (triple (int_range 0 4) (int_range 0 2) (int_range 0 2))
             (int_range (-2) 2))))
    (fun (temp_l, delta_l) ->
      let temp =
        { Partial.lo = 1; hi = 1;
          data =
            Delta.of_list
              (List.map
                 (fun ((k : int), a, b) -> (Chain.tuple ~key:k ~a ~b, 1))
                 (List.sort_uniq compare temp_l)) }
      in
      let interfering =
        Delta.of_list
          (List.map
             (fun (((k : int), a, b), c) -> (Chain.tuple ~key:k ~a ~b, c))
             delta_l)
      in
      (* pretend the source answered with (R + Δ) ⋈ temp where R = ∅ *)
      let answer =
        Algebra.join view
          (Partial.of_source_delta view 0 interfering)
          temp
      in
      let fixed = Algebra.compensate view ~answer ~interfering ~temp in
      (* with R = ∅ the corrected answer must be empty *)
      Partial.is_empty fixed)

(* Update_queue: take_from_source leaves relative order of the rest. *)
let qcheck_queue_take_preserves_order =
  QCheck.Test.make ~name:"queue extraction preserves residual order"
    (QCheck.small_list (QCheck.int_range 0 3))
    (fun sources ->
      let open Repro_warehouse in
      let q = Update_queue.create () in
      List.iteri
        (fun i s ->
          ignore
            (Update_queue.append q
               { Repro_protocol.Message.txn =
                   { Repro_protocol.Message.source = s; seq = i };
                 delta = Delta.insertion (Tuple.ints [ i ]);
                 occurred_at = 0.; global = None }
               ~arrived_at:0.))
        sources;
      ignore (Update_queue.take_from_source q 0);
      let rest =
        List.map
          (fun e -> e.Update_queue.arrival)
          (Update_queue.entries q)
      in
      rest = List.sort compare rest)

let test_zipf_most_popular_first () =
  let rng = Rng.create 4L in
  let counts = Array.make 6 0 in
  for _ = 1 to 6000 do
    let k = Rng.zipf rng ~n:6 ~theta:1.0 in
    counts.(k) <- counts.(k) + 1
  done;
  for i = 0 to 4 do
    Alcotest.(check bool)
      (Printf.sprintf "rank %d ≥ rank %d (%d vs %d)" i (i + 1) counts.(i)
         counts.(i + 1))
      true
      (counts.(i) + 80 >= counts.(i + 1))
  done

let suite =
  [ Alcotest.test_case "latency models" `Quick test_latency_models;
    Alcotest.test_case "exponential mean converges" `Quick
      test_exponential_mean_converges;
    Alcotest.test_case "engine max_events" `Quick test_engine_max_events;
    Alcotest.test_case "channel send/deliver counts" `Quick
      test_channel_counts;
    QCheck_alcotest.to_alcotest qcheck_merge_overlap_vs_direct;
    QCheck_alcotest.to_alcotest qcheck_parser_eval_equivalence;
    QCheck_alcotest.to_alcotest qcheck_compensate_inverse;
    QCheck_alcotest.to_alcotest qcheck_queue_take_preserves_order;
    Alcotest.test_case "zipf rank ordering" `Quick
      test_zipf_most_popular_first ]
