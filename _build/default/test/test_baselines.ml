(* Behavioural tests for the comparison baselines: Strobe's quiescence
   batching and free deletes, C-strobe's remote compensation blow-up,
   ECA's O(1) round trips with growing query size, and recompute's
   payload. *)

open Repro_relational
open Repro_warehouse
open Repro_consistency
open Repro_workload
open Repro_harness

let view = Chain.view ~n:3 ()

let initial () =
  [| Relation.of_tuples [ Chain.tuple ~key:0 ~a:0 ~b:1 ];
     Relation.of_tuples [ Chain.tuple ~key:0 ~a:1 ~b:2 ];
     Relation.of_tuples [ Chain.tuple ~key:0 ~a:2 ~b:3 ] |]

let test_strobe_requires_keys () =
  let keyless = Chain.view ~n:2 ~projection:[| 1; 5 |] ~name:"keyless" () in
  let ctx_fails algorithm =
    match
      Rig.scripted ~algorithm ~view:keyless
        ~initial:
          [| Relation.of_tuples [ Chain.tuple ~key:0 ~a:0 ~b:1 ];
             Relation.of_tuples [ Chain.tuple ~key:0 ~a:1 ~b:2 ] |]
        ~updates:[] ()
    with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "strobe refuses keyless views" true
    (ctx_fails (module Strobe : Algorithm.S));
  Alcotest.(check bool) "c-strobe refuses keyless views" true
    (ctx_fails (module C_strobe : Algorithm.S));
  (* SWEEP does not need keys: it must accept the same view. *)
  let ok =
    Rig.scripted ~view:keyless
      ~initial:
        [| Relation.of_tuples [ Chain.tuple ~key:0 ~a:0 ~b:1 ];
           Relation.of_tuples [ Chain.tuple ~key:0 ~a:1 ~b:2 ] |]
      ~updates:[ (0.0, 0, Delta.insertion (Chain.tuple ~key:1 ~a:9 ~b:1)) ]
      ()
  in
  Alcotest.check Rig.verdict "sweep handles keyless views" Checker.Complete
    (Rig.check ok).Checker.verdict

let test_strobe_deletes_are_free () =
  let outcome =
    Rig.scripted ~algorithm:(module Strobe : Algorithm.S) ~view
      ~initial:(initial ())
      ~updates:[ (0.0, 1, Delta.deletion (Chain.tuple ~key:0 ~a:1 ~b:2)) ]
      ()
  in
  let m = Node.metrics outcome.node in
  Alcotest.(check int) "no queries for a delete" 0 m.Metrics.queries_sent;
  Alcotest.(check int) "installed" 1 m.Metrics.installs;
  Alcotest.(check bool) "≥ strong" true
    (Checker.compare_verdict (Rig.check outcome).Checker.verdict
       Checker.Strong
    <= 0)

let test_strobe_batches_until_quiescence () =
  (* three closely spaced inserts: their queries overlap, so Strobe may
     install fewer times than there are updates *)
  let sc =
    { Scenario.default with
      n_sources = 3;
      init_size = 15;
      stream =
        { Update_gen.default with
          n_updates = 40; mean_gap = 0.2; p_insert = 0.9 };
      seed = 9L }
  in
  let r = Experiment.run sc (module Strobe : Algorithm.S) in
  Alcotest.(check bool) "fewer installs than updates" true
    (r.Experiment.metrics.Metrics.installs
    < r.Experiment.metrics.Metrics.updates_incorporated);
  Alcotest.(check bool) "≥ strong" true
    (Checker.compare_verdict r.Experiment.verdict.Checker.verdict
       Checker.Strong
    <= 0)

let test_cstrobe_remote_compensation () =
  (* a concurrent delete during the insert's query forces at least one
     compensating query: more than the n−1 = 2 a SWEEP sweep would use *)
  let outcome =
    Rig.scripted ~algorithm:(module C_strobe : Algorithm.S) ~view
      ~initial:(initial ())
      ~updates:
        [ (0.0, 2, Delta.insertion (Chain.tuple ~key:1 ~a:2 ~b:9));
          (3.5, 0, Delta.deletion (Chain.tuple ~key:0 ~a:0 ~b:1)) ]
      ()
  in
  let m = Node.metrics outcome.node in
  (* insert's own query = 2 messages (n−1); the concurrent delete forces a
     remote compensating query on top (the delete itself is free) *)
  Alcotest.(check int) "one extra compensating query" 3
    m.Metrics.queries_sent;
  Alcotest.check Rig.verdict "complete" Checker.Complete
    (Rig.check outcome).Checker.verdict

let test_eca_single_round_trip () =
  let sc =
    { Scenario.default with
      topology = Scenario.Centralized;
      n_sources = 3;
      init_size = 15;
      stream = { Update_gen.default with n_updates = 30; mean_gap = 0.4 };
      seed = 31L }
  in
  let r = Experiment.run sc (module Eca : Algorithm.S) in
  Alcotest.(check int) "exactly one query per update" 30
    r.Experiment.metrics.Metrics.queries_sent;
  Alcotest.(check bool) "converges" true
    (Checker.compare_verdict r.Experiment.verdict.Checker.verdict
       Checker.Convergent
    <= 0)

let test_eca_query_size_grows_with_overlap () =
  let run gap =
    let sc =
      { Scenario.default with
        topology = Scenario.Centralized;
        n_sources = 3;
        init_size = 15;
        stream =
          { Update_gen.default with n_updates = 30; mean_gap = gap };
        seed = 31L }
    in
    let r = Experiment.run sc (module Eca : Algorithm.S) in
    r.Experiment.metrics.Metrics.query_weight
  in
  let concurrent = run 0.1 and sequential = run 50. in
  Alcotest.(check bool)
    (Printf.sprintf "overlapping updates inflate queries (%d > %d)" concurrent
       sequential)
    true
    (concurrent > sequential)

let test_recompute_pulls_everything () =
  let outcome =
    Rig.scripted ~algorithm:(module Recompute : Algorithm.S) ~view
      ~initial:(initial ())
      ~updates:[ (0.0, 1, Delta.insertion (Chain.tuple ~key:1 ~a:1 ~b:2)) ]
      ()
  in
  let m = Node.metrics outcome.node in
  Alcotest.(check int) "n fetches" 3 m.Metrics.queries_sent;
  Alcotest.(check int) "n snapshots" 3 m.Metrics.answers_received;
  (* snapshot payload ≥ whole database *)
  Alcotest.(check bool) "snapshot weight covers database" true
    (m.Metrics.answer_weight >= 4);
  Alcotest.check Rig.verdict "complete when alone" Checker.Complete
    (Rig.check outcome).Checker.verdict

let test_naive_vs_sweep_divergence_point () =
  (* identical scripted interference: sweep stays right, naive is wrong *)
  let updates =
    [ (0.0, 2, Delta.insertion (Chain.tuple ~key:1 ~a:2 ~b:9));
      (3.5, 0, Delta.deletion (Chain.tuple ~key:0 ~a:0 ~b:1)) ]
  in
  let sweep =
    Rig.scripted ~algorithm:(module Sweep : Algorithm.S) ~view
      ~initial:(initial ()) ~updates ()
  in
  let naive =
    Rig.scripted ~algorithm:(module Naive : Algorithm.S) ~view
      ~initial:(initial ()) ~updates ()
  in
  Alcotest.check Rig.verdict "sweep complete" Checker.Complete
    (Rig.check sweep).Checker.verdict;
  Alcotest.(check bool) "naive wrong on this interleaving" true
    (Checker.compare_verdict (Rig.check naive).Checker.verdict
       Checker.Convergent
    > 0);
  Alcotest.(check bool) "final views differ" false
    (Bag.equal (Rig.final_view sweep) (Rig.final_view naive))

let suite =
  [ Alcotest.test_case "strobe family requires keys; sweep does not" `Quick
      test_strobe_requires_keys;
    Alcotest.test_case "strobe: deletes are message-free" `Quick
      test_strobe_deletes_are_free;
    Alcotest.test_case "strobe: batches until quiescence" `Slow
      test_strobe_batches_until_quiescence;
    Alcotest.test_case "c-strobe: remote compensation costs messages" `Quick
      test_cstrobe_remote_compensation;
    Alcotest.test_case "eca: one round trip per update" `Slow
      test_eca_single_round_trip;
    Alcotest.test_case "eca: query size grows with overlap" `Slow
      test_eca_query_size_grows_with_overlap;
    Alcotest.test_case "recompute: fetches whole database" `Quick
      test_recompute_pulls_everything;
    Alcotest.test_case "naive vs sweep on the same race" `Quick
      test_naive_vs_sweep_divergence_point ]
