open Repro_relational

let test_compare_total_order () =
  let vs =
    [ Value.Null; Value.bool false; Value.bool true; Value.int (-3);
      Value.int 0; Value.int 5; Value.float 1.5; Value.str "a"; Value.str "b" ]
  in
  (* compare agrees with list position for this representative ladder *)
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          let c = Value.compare a b in
          if i < j then Alcotest.(check bool) "lt" true (c < 0)
          else if i > j then Alcotest.(check bool) "gt" true (c > 0)
          else Alcotest.(check int) "eq" 0 c)
        vs)
    vs

let test_equal_reflexive () =
  List.iter
    (fun v -> Alcotest.(check bool) "refl" true (Value.equal v v))
    [ Value.Null; Value.int 7; Value.str "x"; Value.float 2.; Value.bool true ]

let test_type_of () =
  Alcotest.(check bool) "null has no type" true (Value.type_of Value.Null = None);
  Alcotest.(check bool) "int" true (Value.type_of (Value.int 1) = Some Value.T_int);
  Alcotest.(check bool) "str" true
    (Value.type_of (Value.str "s") = Some Value.T_str)

let test_conforms () =
  Alcotest.(check bool) "null conforms to anything" true
    (Value.conforms Value.Null Value.T_int);
  Alcotest.(check bool) "int conforms to int" true
    (Value.conforms (Value.int 3) Value.T_int);
  Alcotest.(check bool) "int does not conform to str" false
    (Value.conforms (Value.int 3) Value.T_str)

let test_to_string () =
  Alcotest.(check string) "int" "42" (Value.to_string (Value.int 42));
  Alcotest.(check string) "null" "null" (Value.to_string Value.Null);
  Alcotest.(check string) "str quoted" "\"hi\"" (Value.to_string (Value.str "hi"))

let qcheck_compare_antisym =
  let gen =
    QCheck.oneof
      [ QCheck.always Value.Null;
        QCheck.map Value.int QCheck.small_signed_int;
        QCheck.map Value.str QCheck.small_string;
        QCheck.map Value.bool QCheck.bool ]
  in
  QCheck.Test.make ~name:"value compare antisymmetric"
    (QCheck.pair gen gen)
    (fun (a, b) -> Value.compare a b = -Value.compare b a)

let qcheck_compare_transitive_ints =
  QCheck.Test.make ~name:"value compare transitive"
    QCheck.(triple small_signed_int small_signed_int small_signed_int)
    (fun (a, b, c) ->
      let va = Value.int a and vb = Value.int b and vc = Value.int c in
      if Value.compare va vb <= 0 && Value.compare vb vc <= 0 then
        Value.compare va vc <= 0
      else true)

let suite =
  [ Alcotest.test_case "total order across types" `Quick
      test_compare_total_order;
    Alcotest.test_case "equality is reflexive" `Quick test_equal_reflexive;
    Alcotest.test_case "type_of" `Quick test_type_of;
    Alcotest.test_case "conforms" `Quick test_conforms;
    Alcotest.test_case "printing" `Quick test_to_string;
    QCheck_alcotest.to_alcotest qcheck_compare_antisym;
    QCheck_alcotest.to_alcotest qcheck_compare_transitive_ints ]
