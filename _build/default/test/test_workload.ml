open Repro_relational
open Repro_sim
open Repro_workload

let test_populate_shape () =
  let view = Chain.view ~n:3 () in
  let rels = Chain.populate view ~size:20 ~domain:5 (Rng.create 1L) in
  Alcotest.(check int) "three relations" 3 (Array.length rels);
  Array.iter
    (fun r ->
      Alcotest.(check int) "twenty tuples" 20 (Relation.total r);
      (* keys are unique: distinct tuples = total *)
      Alcotest.(check int) "unique keys" 20 (Relation.cardinal r);
      Relation.iter
        (fun tup _ ->
          match (Tuple.get tup 1, Tuple.get tup 2) with
          | Value.Int a, Value.Int b ->
              Alcotest.(check bool) "payload in domain" true
                (a >= 0 && a < 5 && b >= 0 && b < 5)
          | _ -> Alcotest.fail "int payloads expected")
        r)
    rels

let run_stream ?(placement = Update_gen.Uniform) ?(p_insert = 0.5) n_updates =
  let view = Chain.view ~n:3 () in
  let engine = Engine.create ~seed:3L () in
  let rng = Engine.rng engine in
  let initial = Chain.populate view ~size:10 ~domain:4 (Rng.split rng) in
  let live = Array.map Relation.copy initial in
  let log = ref [] in
  let apply ~source ~global:_ delta =
    log := (source, Delta.copy delta) :: !log;
    match Relation.apply live.(source) delta with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "generator produced an invalid delete"
  in
  let cfg =
    { Update_gen.default with n_updates; mean_gap = 0.5; p_insert; placement }
  in
  Update_gen.drive engine (Rng.split rng) cfg ~view ~initial ~apply ();
  ignore (Engine.run engine);
  (List.rev !log, live)

let test_stream_counts_and_validity () =
  let log, _ = run_stream 200 in
  Alcotest.(check int) "exactly n updates applied" 200 (List.length log)

let test_stream_deletes_valid () =
  (* heavily delete-biased stream must stay valid (mirrors work) *)
  let log, live = run_stream ~p_insert:0.1 150 in
  Alcotest.(check int) "applied all" 150 (List.length log);
  Array.iter
    (fun r -> Alcotest.(check bool) "no negative counts" false
        (Bag.has_negative (Relation.as_bag r)))
    live

let test_alternating_placement () =
  let log, _ = run_stream ~placement:(Update_gen.Alternating (0, 2)) 20 in
  List.iteri
    (fun i (source, _) ->
      Alcotest.(check int) "alternates 0,2,0,2,…"
        (if i mod 2 = 0 then 0 else 2)
        source)
    log

let test_fresh_keys () =
  (* inserted keys never collide with existing ones *)
  let log, live = run_stream ~p_insert:1.0 50 in
  ignore log;
  Array.iter
    (fun r ->
      Alcotest.(check int) "all keys distinct" (Relation.total r)
        (Relation.cardinal r))
    live

let test_txn_size () =
  let view = Chain.view ~n:2 () in
  let engine = Engine.create ~seed:9L () in
  let rng = Engine.rng engine in
  let initial = Chain.populate view ~size:10 ~domain:4 (Rng.split rng) in
  let sizes = ref [] in
  let apply ~source:_ ~global:_ delta = sizes := Delta.weight delta :: !sizes in
  Update_gen.drive engine (Rng.split rng)
    { Update_gen.default with n_updates = 10; txn_size = 3; p_insert = 1.0 }
    ~view ~initial ~apply ();
  ignore (Engine.run engine);
  List.iter
    (fun w -> Alcotest.(check int) "three tuples per txn" 3 w)
    !sizes

let test_on_done_fires_after_last () =
  let view = Chain.view ~n:2 () in
  let engine = Engine.create ~seed:9L () in
  let rng = Engine.rng engine in
  let initial = Chain.populate view ~size:5 ~domain:4 (Rng.split rng) in
  let count = ref 0 in
  let done_at = ref (-1) in
  Update_gen.drive engine (Rng.split rng)
    { Update_gen.default with n_updates = 7 }
    ~view ~initial
    ~apply:(fun ~source:_ ~global:_ _ -> incr count)
    ~on_done:(fun () -> done_at := !count)
    ();
  ignore (Engine.run engine);
  Alcotest.(check int) "on_done sees all updates" 7 !done_at

let suite =
  [ Alcotest.test_case "populate shape and domains" `Quick test_populate_shape;
    Alcotest.test_case "stream emits exactly n updates" `Quick
      test_stream_counts_and_validity;
    Alcotest.test_case "delete-heavy streams stay valid" `Quick
      test_stream_deletes_valid;
    Alcotest.test_case "alternating placement" `Quick
      test_alternating_placement;
    Alcotest.test_case "fresh keys on insert" `Quick test_fresh_keys;
    Alcotest.test_case "source-local txn size" `Quick test_txn_size;
    Alcotest.test_case "on_done ordering" `Quick test_on_done_fires_after_last ]
