(* The §5.3 parallel-sweep optimization: same messages, same complete
   consistency, shorter critical path; plus unit tests of the overlap
   merge it relies on. *)

open Repro_relational
open Repro_warehouse
open Repro_consistency
open Repro_workload
open Repro_harness

let view = Chain.view ~n:5 ()

let test_merge_overlap_basic () =
  let left =
    { Partial.lo = 0; hi = 1;
      data =
        Delta.of_list
          [ (Tuple.ints [ 1; 1; 2; 10; 2; 3 ], 2);
            (Tuple.ints [ 1; 1; 2; 11; 2; 4 ], 1) ] }
  in
  let right =
    { Partial.lo = 1; hi = 2;
      data =
        Delta.of_list
          [ (Tuple.ints [ 10; 2; 3; 5; 3; 9 ], 3);
            (Tuple.ints [ 12; 9; 9; 6; 9; 9 ], 1) ] }
  in
  let merged = Algebra.merge_overlap view ~at:1 ~left ~right in
  Alcotest.(check int) "range" 0 merged.Partial.lo;
  Alcotest.(check int) "range hi" 2 merged.Partial.hi;
  (* only the (10,2,3) slice matches; counts multiply 2·3 *)
  Alcotest.check Rig.delta "glued tuple"
    (Delta.of_list [ (Tuple.ints [ 1; 1; 2; 10; 2; 3; 5; 3; 9 ], 6) ])
    merged.Partial.data

let test_merge_overlap_requires_overlap () =
  let p1 = { Partial.lo = 0; hi = 1; data = Delta.empty () } in
  let p2 = { Partial.lo = 2; hi = 3; data = Delta.empty () } in
  Alcotest.(check bool) "disjoint rejected" true
    (match Algebra.merge_overlap view ~at:1 ~left:p1 ~right:p2 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_merge_overlap_signs () =
  (* left carries the real count (−2); right the unit copy *)
  let left =
    { Partial.lo = 0; hi = 0; data = Delta.of_list [ (Tuple.ints [ 1; 2; 3 ], -2) ] }
  in
  let right =
    { Partial.lo = 0; hi = 1;
      data = Delta.of_list [ (Tuple.ints [ 1; 2; 3; 4; 3; 5 ], 1) ] }
  in
  let merged = Algebra.merge_overlap view ~at:0 ~left ~right in
  Alcotest.(check int) "sign preserved" (-2)
    (Delta.count merged.Partial.data (Tuple.ints [ 1; 2; 3; 4; 3; 5 ]))

let test_distinct () =
  let d = Delta.of_list [ (Tuple.ints [ 1 ], -3); (Tuple.ints [ 2 ], 2) ] in
  Alcotest.check Rig.delta "unit counts"
    (Delta.of_list [ (Tuple.ints [ 1 ], 1); (Tuple.ints [ 2 ], 1) ])
    (Delta.distinct d)

(* Parallel sweep must agree with sequential SWEEP on every install, and
   finish each ViewChange no later. *)
let agree_with_sweep ~updates ~initial =
  let run algorithm =
    Experiment.run_scripted ~algorithm ~view:(Chain.view ~n:3 ())
      ~initial:(initial ()) ~updates ()
  in
  let seq = run (module Sweep : Algorithm.S) in
  let par = run (module Sweep_parallel : Algorithm.S) in
  let snaps o =
    List.map
      (fun (r : Node.install_record) -> r.Node.view_after)
      (Node.installs o.Experiment.node)
  in
  List.iter2
    (fun a b -> Alcotest.check Rig.bag "same install sequence" a b)
    (snaps seq) (snaps par);
  (seq, par)

let initial3 () =
  [| Relation.of_tuples [ Chain.tuple ~key:0 ~a:0 ~b:1 ];
     Relation.of_tuples [ Chain.tuple ~key:0 ~a:1 ~b:2 ];
     Relation.of_tuples [ Chain.tuple ~key:0 ~a:2 ~b:3 ] |]

let test_agrees_sequential () =
  ignore
    (agree_with_sweep ~initial:initial3
       ~updates:
         [ (0.0, 1, Delta.insertion (Chain.tuple ~key:1 ~a:1 ~b:2));
           (50.0, 0, Delta.deletion (Chain.tuple ~key:0 ~a:0 ~b:1));
           (100.0, 2, Delta.insertion (Chain.tuple ~key:1 ~a:2 ~b:7)) ]
       )

let test_agrees_under_interference () =
  let seq, par =
    agree_with_sweep ~initial:initial3
      ~updates:
        [ (0.0, 1, Delta.insertion (Chain.tuple ~key:1 ~a:1 ~b:2));
          (1.2, 0, Delta.deletion (Chain.tuple ~key:0 ~a:0 ~b:1));
          (1.3, 2, Delta.insertion (Chain.tuple ~key:1 ~a:2 ~b:8)) ]
  in
  Alcotest.check Rig.verdict "parallel stays complete" Checker.Complete
    (Experiment.check_scripted par).Checker.verdict;
  Alcotest.(check int) "same message count"
    (Node.metrics seq.Experiment.node).Metrics.queries_sent
    (Node.metrics par.Experiment.node).Metrics.queries_sent

let test_shorter_critical_path () =
  (* an update in the middle of a 5-chain: sequential sweep = 4 round
     trips in series; parallel = 2 in each direction concurrently *)
  let view5 = Chain.view ~n:5 () in
  let initial () =
    Array.init 5 (fun i -> Relation.of_tuples [ Chain.tuple ~key:0 ~a:i ~b:(i + 1) ])
  in
  let updates = [ (0.0, 2, Delta.insertion (Chain.tuple ~key:1 ~a:2 ~b:3)) ] in
  let run algorithm =
    Experiment.run_scripted ~algorithm ~view:view5 ~initial:(initial ())
      ~updates ()
  in
  let seq = run (module Sweep : Algorithm.S) in
  let par = run (module Sweep_parallel : Algorithm.S) in
  let finish o = (Node.metrics o.Experiment.node).Metrics.staleness_max in
  Alcotest.(check bool)
    (Printf.sprintf "parallel finishes sooner (%.1f < %.1f)" (finish par)
       (finish seq))
    true
    (finish par < finish seq)

let qcheck_parallel_complete =
  QCheck.Test.make ~name:"parallel sweep: complete on random runs" ~count:12
    (QCheck.pair (QCheck.int_range 2 5) (QCheck.int_range 1 10_000))
    (fun (n, seed) ->
      let sc =
        { Scenario.default with
          n_sources = n;
          init_size = 15;
          domain = 6;
          stream =
            { Update_gen.default with
              n_updates = 25; mean_gap = 0.4; p_insert = 0.55 };
          seed = Int64.of_int seed }
      in
      let r = Experiment.run sc (module Sweep_parallel : Algorithm.S) in
      r.Experiment.verdict.Checker.verdict = Checker.Complete)

let suite =
  [ Alcotest.test_case "merge_overlap glues on the shared slice" `Quick
      test_merge_overlap_basic;
    Alcotest.test_case "merge_overlap rejects disjoint ranges" `Quick
      test_merge_overlap_requires_overlap;
    Alcotest.test_case "merge_overlap preserves signs" `Quick
      test_merge_overlap_signs;
    Alcotest.test_case "delta distinct" `Quick test_distinct;
    Alcotest.test_case "agrees with sweep (sequential)" `Quick
      test_agrees_sequential;
    Alcotest.test_case "agrees with sweep (interfering)" `Quick
      test_agrees_under_interference;
    Alcotest.test_case "shorter critical path" `Quick
      test_shorter_critical_path;
    QCheck_alcotest.to_alcotest qcheck_parallel_complete ]
