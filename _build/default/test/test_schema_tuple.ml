open Repro_relational

let abc =
  Schema.make "R"
    [ Schema.attr ~key:true "id" Value.T_int; Schema.attr "a" Value.T_int;
      Schema.attr "b" Value.T_str ]

let test_schema_basics () =
  Alcotest.(check string) "name" "R" (Schema.name abc);
  Alcotest.(check int) "arity" 3 (Schema.arity abc);
  Alcotest.(check int) "index_of a" 1 (Schema.index_of abc "a");
  Alcotest.(check bool) "missing attr" true
    (match Schema.index_of abc "zz" with
    | exception Not_found -> true
    | _ -> false);
  Alcotest.(check (list int)) "keys" [ 0 ] (Schema.key_indices abc)

let test_schema_validation () =
  Alcotest.check_raises "empty attrs"
    (Invalid_argument "Schema.make: empty attribute list") (fun () ->
      ignore (Schema.make "X" []));
  Alcotest.check_raises "duplicate attrs"
    (Invalid_argument "Schema.make: duplicate attribute a") (fun () ->
      ignore
        (Schema.make "X" [ Schema.attr "a" Value.T_int; Schema.attr "a" Value.T_int ]))

let test_schema_conforms () =
  Alcotest.(check bool) "conforming tuple" true
    (Schema.conforms abc [| Value.int 1; Value.int 2; Value.str "x" |]);
  Alcotest.(check bool) "wrong arity" false
    (Schema.conforms abc [| Value.int 1 |]);
  Alcotest.(check bool) "wrong type" false
    (Schema.conforms abc [| Value.int 1; Value.str "no"; Value.str "x" |]);
  Alcotest.(check bool) "nulls conform" true
    (Schema.conforms abc [| Value.Null; Value.Null; Value.Null |])

let test_tuple_ops () =
  let t = Tuple.ints [ 1; 2; 3 ] in
  Alcotest.(check int) "arity" 3 (Tuple.arity t);
  Alcotest.check Rig.value "get" (Value.int 2) (Tuple.get t 1);
  Alcotest.check Rig.tuple "concat"
    (Tuple.ints [ 1; 2; 3; 4 ])
    (Tuple.concat t (Tuple.ints [ 4 ]));
  Alcotest.check Rig.tuple "project"
    (Tuple.ints [ 3; 1 ])
    (Tuple.project t [| 2; 0 |]);
  Alcotest.check Rig.tuple "slice" (Tuple.ints [ 2; 3 ]) (Tuple.slice t 1 2);
  Alcotest.(check string) "pp" "(1, 2, 3)" (Tuple.to_string t)

let test_tuple_compare () =
  let a = Tuple.ints [ 1; 2 ] and b = Tuple.ints [ 1; 3 ] in
  Alcotest.(check bool) "lt" true (Tuple.compare a b < 0);
  Alcotest.(check bool) "shorter first" true
    (Tuple.compare (Tuple.ints [ 9 ]) a < 0);
  Alcotest.(check bool) "eq" true (Tuple.equal a (Tuple.ints [ 1; 2 ]))

let qcheck_project_concat =
  QCheck.Test.make ~name:"project of concat recovers halves"
    QCheck.(pair (small_list small_signed_int) (small_list small_signed_int))
    (fun (l, r) ->
      let a = Tuple.ints l and b = Tuple.ints r in
      let c = Tuple.concat a b in
      let left_idx = Array.init (List.length l) (fun i -> i) in
      let right_idx =
        Array.init (List.length r) (fun i -> List.length l + i)
      in
      Tuple.equal (Tuple.project c left_idx) a
      && Tuple.equal (Tuple.project c right_idx) b)

let suite =
  [ Alcotest.test_case "schema basics" `Quick test_schema_basics;
    Alcotest.test_case "schema validation" `Quick test_schema_validation;
    Alcotest.test_case "schema conformance" `Quick test_schema_conforms;
    Alcotest.test_case "tuple operations" `Quick test_tuple_ops;
    Alcotest.test_case "tuple ordering" `Quick test_tuple_compare;
    QCheck_alcotest.to_alcotest qcheck_project_concat ]
