open Repro_relational

let lookup_of arr g = arr.(g)

let test_cmp_ops () =
  let open Predicate in
  let env = [| Value.int 3; Value.int 5 |] in
  let t p = eval ~lookup:(lookup_of env) p in
  Alcotest.(check bool) "eq false" false (t (eq_attr 0 1));
  Alcotest.(check bool) "lt" true (t (Cmp (Lt, Attr 0, Attr 1)));
  Alcotest.(check bool) "le" true (t (Cmp (Le, Attr 0, Attr 1)));
  Alcotest.(check bool) "gt" false (t (Cmp (Gt, Attr 0, Attr 1)));
  Alcotest.(check bool) "ge self" true (t (Cmp (Ge, Attr 0, Attr 0)));
  Alcotest.(check bool) "ne" true (t (Cmp (Ne, Attr 0, Attr 1)));
  Alcotest.(check bool) "const" true
    (t (cmp_const Eq 1 (Value.int 5)))

let test_boolean_structure () =
  let open Predicate in
  let env = [| Value.int 1 |] in
  let t p = eval ~lookup:(lookup_of env) p in
  Alcotest.(check bool) "true" true (t True);
  Alcotest.(check bool) "false" false (t False);
  Alcotest.(check bool) "and" false (t (And (True, False)));
  Alcotest.(check bool) "or" true (t (Or (False, True)));
  Alcotest.(check bool) "not" true (t (Not False))

let test_conj () =
  let open Predicate in
  Alcotest.(check bool) "empty conj is True" true (conj [] = True);
  let p = conj [ True; cmp_const Eq 0 (Value.int 1) ] in
  Alcotest.(check bool) "True absorbed" true
    (p = cmp_const Eq 0 (Value.int 1))

let test_attrs_used () =
  let open Predicate in
  let p = And (eq_attr 3 1, Or (cmp_const Gt 7 (Value.int 0), Not (eq_attr 1 3))) in
  Alcotest.(check (list int)) "sorted unique attrs" [ 1; 3; 7 ] (attrs_used p)

let test_pp () =
  let open Predicate in
  Alcotest.(check string) "rendering" "(#0 = #1 and #2 > 5)"
    (Format.asprintf "%a" pp
       (And (eq_attr 0 1, cmp_const Gt 2 (Value.int 5))))

(* Property: eval respects De Morgan. *)
let qcheck_de_morgan =
  let gen_leaf =
    QCheck.map
      (fun (a, b) -> Predicate.Cmp (Predicate.Lt, Predicate.Attr a, Predicate.Attr b))
      QCheck.(pair (int_range 0 3) (int_range 0 3))
  in
  QCheck.Test.make ~name:"predicate De Morgan"
    (QCheck.pair gen_leaf gen_leaf)
    (fun (p, q) ->
      let env = [| Value.int 2; Value.int 1; Value.int 3; Value.int 2 |] in
      let t x = Predicate.eval ~lookup:(lookup_of env) x in
      t (Predicate.Not (Predicate.And (p, q)))
      = t (Predicate.Or (Predicate.Not p, Predicate.Not q)))

let suite =
  [ Alcotest.test_case "comparison operators" `Quick test_cmp_ops;
    Alcotest.test_case "boolean structure" `Quick test_boolean_structure;
    Alcotest.test_case "conjunction builder" `Quick test_conj;
    Alcotest.test_case "attrs_used" `Quick test_attrs_used;
    Alcotest.test_case "pretty-printing" `Quick test_pp;
    QCheck_alcotest.to_alcotest qcheck_de_morgan ]
