(* The analytical model vs the simulator: spot checks at light load and
   overload, and internal consistency of the formulas. *)

open Repro_warehouse
open Repro_workload
open Repro_harness

let scenario gap =
  { Scenario.default with
    n_sources = 4;
    init_size = 30;
    domain = 30;
    stream = { Update_gen.default with n_updates = 150; mean_gap = gap };
    seed = 1997L }

let within ~factor a b =
  let lo = Float.min a b and hi = Float.max a b in
  lo > 0. && hi /. lo <= factor

let test_service_time () =
  let i = Analytic.inputs_of_scenario (scenario 10.) in
  let p = Analytic.sweep i in
  (* n=4, mean latency 1.0 → S = 2·3·1 = 6 *)
  Alcotest.(check (float 1e-9)) "S = 2(n−1)L" 6. p.Analytic.service_time;
  Alcotest.(check (float 1e-9)) "ρ = S/gap" 0.6 p.Analytic.utilization;
  Alcotest.(check bool) "stable" true p.Analytic.stable

let test_pipelining_divides_load () =
  let i = Analytic.inputs_of_scenario (scenario 2.) in
  let plain = Analytic.sweep i in
  let piped = Analytic.sweep_pipelined ~w:8 i in
  Alcotest.(check bool) "plain overloaded" false plain.Analytic.stable;
  Alcotest.(check bool) "pipelined stable" true piped.Analytic.stable;
  Alcotest.(check bool) "pipelining cuts predicted staleness" true
    (piped.Analytic.mean_staleness < plain.Analytic.mean_staleness /. 5.)

let test_model_matches_simulator_light_load () =
  let sc = scenario 30. in
  let model = Analytic.sweep (Analytic.inputs_of_scenario sc) in
  let r = Experiment.run ~check:false sc (module Sweep : Algorithm.S) in
  let m = r.Experiment.metrics in
  Alcotest.(check bool)
    (Printf.sprintf "staleness: model %.2f vs sim %.2f"
       model.Analytic.mean_staleness (Metrics.mean_staleness m))
    true
    (within ~factor:1.3 model.Analytic.mean_staleness
       (Metrics.mean_staleness m));
  let sim_comp =
    float_of_int m.Metrics.compensations
    /. float_of_int (max 1 m.Metrics.updates_incorporated)
  in
  Alcotest.(check bool)
    (Printf.sprintf "compensations: model %.2f vs sim %.2f"
       model.Analytic.compensations_per_update sim_comp)
    true
    (within ~factor:1.6 model.Analytic.compensations_per_update sim_comp)

let test_model_matches_simulator_overload () =
  let sc = scenario 1. in
  let model = Analytic.sweep (Analytic.inputs_of_scenario sc) in
  let r = Experiment.run ~check:false sc (module Sweep : Algorithm.S) in
  let m = r.Experiment.metrics in
  Alcotest.(check bool) "model says overloaded" false model.Analytic.stable;
  Alcotest.(check bool)
    (Printf.sprintf "fluid staleness: model %.0f vs sim %.0f"
       model.Analytic.mean_staleness (Metrics.mean_staleness m))
    true
    (within ~factor:1.3 model.Analytic.mean_staleness
       (Metrics.mean_staleness m))

let test_latency_variance_extraction () =
  let fx =
    Analytic.inputs_of_scenario
      { (scenario 1.) with Scenario.latency = Repro_sim.Latency.Fixed 2. }
  in
  Alcotest.(check (float 1e-9)) "fixed has no variance" 0. fx.Analytic.var_latency;
  Alcotest.(check (float 1e-9)) "fixed mean" 2. fx.Analytic.mean_latency;
  let ex =
    Analytic.inputs_of_scenario
      { (scenario 1.) with Scenario.latency = Repro_sim.Latency.Exponential 3. }
  in
  Alcotest.(check (float 1e-9)) "exponential variance = m²" 9.
    ex.Analytic.var_latency

let suite =
  [ Alcotest.test_case "service time and utilization" `Quick
      test_service_time;
    Alcotest.test_case "pipelining divides the load" `Quick
      test_pipelining_divides_load;
    Alcotest.test_case "model ≈ simulator (light load)" `Slow
      test_model_matches_simulator_light_load;
    Alcotest.test_case "model ≈ simulator (overload)" `Slow
      test_model_matches_simulator_overload;
    Alcotest.test_case "latency moment extraction" `Quick
      test_latency_variance_extraction ]
