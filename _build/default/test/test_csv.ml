open Repro_relational

let schema =
  Schema.make "orders"
    [ Schema.attr ~key:true "id" Value.T_int; Schema.attr "note" Value.T_str;
      Schema.attr "price" Value.T_float; Schema.attr "ok" Value.T_bool ]

let test_roundtrip () =
  let rel =
    Relation.of_list
      [ ([| Value.int 1; Value.str "plain"; Value.float 1.5; Value.bool true |], 1);
        ([| Value.int 2; Value.str "has,comma"; Value.float 2.; Value.bool false |], 3);
        ([| Value.int 3; Value.Null; Value.Null; Value.Null |], 1) ]
  in
  let text = Csv.render schema rel in
  let back = Csv.parse_exn schema text in
  Alcotest.check Rig.relation "roundtrip" rel back

let test_parse_basic () =
  let rel =
    Csv.parse_exn schema "id,note,price,ok\n1,hello,2.5,true\n2,,3,false\n"
  in
  Alcotest.(check int) "two tuples" 2 (Relation.total rel);
  Alcotest.(check int) "null note present" 1
    (Relation.count rel
       [| Value.int 2; Value.Null; Value.float 3.; Value.bool false |])

let test_parse_count_column () =
  let rel = Csv.parse_exn schema "id,note,price,ok,#count\n1,x,1,true,4\n" in
  Alcotest.(check int) "multiplicity" 4
    (Relation.count rel
       [| Value.int 1; Value.str "x"; Value.float 1.; Value.bool true |])

let test_quoting () =
  let rel =
    Csv.parse_exn schema "id,note,price,ok\n1,\"a,b\"\"c\",1,true\n"
  in
  Alcotest.(check int) "quoted field decoded" 1
    (Relation.count rel
       [| Value.int 1; Value.str "a,b\"c"; Value.float 1.; Value.bool true |])

let expect_error src frag =
  match Csv.parse schema src with
  | Ok _ -> Alcotest.failf "expected failure for %S" src
  | Error e ->
      let msg = Format.asprintf "%a" Csv.pp_error e in
      let contains () =
        let nh = String.length msg and nn = String.length frag in
        let rec go i =
          i + nn <= nh && (String.sub msg i nn = frag || go (i + 1))
        in
        go 0
      in
      if not (contains ()) then
        Alcotest.failf "error %S does not mention %S" msg frag

let test_errors () =
  expect_error "wrong,header\n1\n" "does not match schema";
  expect_error "id,note,price,ok\nnope,x,1,true\n" "expected an integer";
  expect_error "id,note,price,ok\n1,x,zzz,true\n" "expected a float";
  expect_error "id,note,price,ok\n1,x,1,maybe\n" "expected true/false";
  expect_error "id,note,price,ok\n1,x,1\n" "expected 4 field(s)";
  expect_error "id,note,price,ok,#count\n1,x,1,true,0\n" "invalid #count";
  expect_error "id,note,price,ok\n1,\"broken,1,true\n" "unterminated"

let test_error_line_numbers () =
  match Csv.parse schema "id,note,price,ok\n1,x,1,true\nbad,x,1,true\n" with
  | Error e -> Alcotest.(check int) "second data row = line 3" 3 e.Csv.line
  | Ok _ -> Alcotest.fail "expected failure"

let suite =
  [ Alcotest.test_case "render/parse roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "basic parse with nulls" `Quick test_parse_basic;
    Alcotest.test_case "#count column" `Quick test_parse_count_column;
    Alcotest.test_case "quoting" `Quick test_quoting;
    Alcotest.test_case "error taxonomy" `Quick test_errors;
    Alcotest.test_case "error line numbers" `Quick test_error_line_numbers ]
