(* Reproducibility guarantees: identical seeds give bit-identical runs
   (metrics, installs, final views); different seeds differ. Also a
   larger `Slow` stress run to keep the implementation honest at scale. *)

open Repro_warehouse
open Repro_consistency
open Repro_workload
open Repro_harness

let scenario seed =
  { Scenario.default with
    n_sources = 4;
    init_size = 25;
    domain = 25;
    stream = { Update_gen.default with n_updates = 80; mean_gap = 0.6 };
    seed }

let fingerprint (r : Experiment.result) =
  let m = r.Experiment.metrics in
  ( m.Metrics.queries_sent, m.Metrics.query_weight, m.Metrics.answer_weight,
    m.Metrics.compensations, m.Metrics.installs, r.Experiment.sim_time,
    r.Experiment.final_view_tuples )

let test_same_seed_identical () =
  List.iter
    (fun (name, alg) ->
      let a = Experiment.run (scenario 77L) alg in
      let b = Experiment.run (scenario 77L) alg in
      if fingerprint a <> fingerprint b then
        Alcotest.failf "%s: same seed produced different runs" name)
    [ ("sweep", (module Sweep : Algorithm.S));
      ("nested-sweep", (module Nested_sweep : Algorithm.S));
      ("strobe", (module Strobe : Algorithm.S)) ]

let test_different_seed_differs () =
  let a = Experiment.run (scenario 77L) (module Sweep : Algorithm.S) in
  let b = Experiment.run (scenario 78L) (module Sweep : Algorithm.S) in
  Alcotest.(check bool) "different seeds diverge" true
    (fingerprint a <> fingerprint b)

let test_stress_run () =
  (* n = 10, 600 updates, brisk rate; pipelined SWEEP keeps up and the
     checker still verifies complete consistency over the full history *)
  let sc =
    { Scenario.default with
      n_sources = 10;
      init_size = 50;
      domain = 50;
      stream = { Update_gen.default with n_updates = 600; mean_gap = 0.5 };
      seed = 123L }
  in
  let r = Experiment.run sc (module Sweep_pipelined : Algorithm.S) in
  Alcotest.check Rig.verdict "complete at scale" Checker.Complete
    r.Experiment.verdict.Checker.verdict;
  Alcotest.(check int) "exact message count" (600 * 9 * 2)
    (r.Experiment.metrics.Metrics.queries_sent
    + r.Experiment.metrics.Metrics.answers_received);
  Alcotest.(check bool) "fast enough (< 30s wall)" true
    (r.Experiment.wall_seconds < 30.)

let suite =
  [ Alcotest.test_case "same seed, identical run" `Quick
      test_same_seed_identical;
    Alcotest.test_case "different seed differs" `Quick
      test_different_seed_differs;
    Alcotest.test_case "stress: n=10, 600 updates, complete" `Slow
      test_stress_run ]
