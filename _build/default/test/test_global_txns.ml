(* Type-3 (multi-source) transactions and the Global SWEEP variant:
   installs must never expose part of a global transaction without the
   rest, while plain streams keep SWEEP's complete consistency. *)

open Repro_relational
open Repro_sim
open Repro_protocol
open Repro_warehouse
open Repro_consistency
open Repro_workload
open Repro_harness

let view = Chain.view ~n:3 ()

let initial () =
  [| Relation.of_tuples [ Chain.tuple ~key:0 ~a:0 ~b:1 ];
     Relation.of_tuples [ Chain.tuple ~key:0 ~a:1 ~b:2 ];
     Relation.of_tuples [ Chain.tuple ~key:0 ~a:2 ~b:3 ] |]

(* A scripted run where two sources receive parts of one global txn. We
   wire manually to pass the global tag through local_update. *)
let run_with_global ~algorithm =
  let engine = Engine.create ~seed:5L () in
  let rng = Engine.rng engine in
  let inits = initial () in
  let initial_copy = Array.map Relation.copy inits in
  let node = ref None in
  let deliver msg = Node.deliver (Option.get !node) msg in
  let up =
    Array.init 3 (fun _ ->
        Channel.create engine ~latency:(Latency.Fixed 1.0)
          ~rng:(Rng.split rng) ~deliver)
  in
  let sources =
    Array.init 3 (fun i ->
        Repro_source.Source_node.create engine ~view ~id:i ~init:inits.(i)
          ~send:(fun m -> Channel.send up.(i) m)
          ~trace:(Trace.create ()))
  in
  let down =
    Array.init 3 (fun i ->
        Channel.create engine ~latency:(Latency.Fixed 1.0)
          ~rng:(Rng.split rng)
          ~deliver:(fun m -> Repro_source.Source_node.handle sources.(i) m))
  in
  let warehouse =
    Node.create engine ~view ~algorithm
      ~send:(fun i msg -> Channel.send down.(i) msg)
      ~init:(Algebra.eval view (fun i -> inits.(i)))
      ()
  in
  node := Some warehouse;
  let tag = { Message.gid = 0; parts = 2 } in
  (* an unrelated update first, then the two parts of the global txn with
     an interleaved unrelated update *)
  Engine.at engine ~time:0.0 (fun () ->
      ignore
        (Repro_source.Source_node.local_update sources.(1)
           (Delta.insertion (Chain.tuple ~key:1 ~a:1 ~b:2))));
  Engine.at engine ~time:0.3 (fun () ->
      ignore
        (Repro_source.Source_node.local_update ~global:tag sources.(0)
           (Delta.insertion (Chain.tuple ~key:1 ~a:9 ~b:1))));
  Engine.at engine ~time:0.4 (fun () ->
      ignore
        (Repro_source.Source_node.local_update sources.(2)
           (Delta.insertion (Chain.tuple ~key:1 ~a:2 ~b:8))));
  Engine.at engine ~time:0.5 (fun () ->
      ignore
        (Repro_source.Source_node.local_update ~global:tag sources.(2)
           (Delta.deletion (Chain.tuple ~key:0 ~a:2 ~b:3))));
  (match Engine.run engine with `Drained -> () | _ -> assert false);
  (warehouse, initial_copy)

let txn_set_of_installs warehouse =
  List.map (fun (r : Node.install_record) -> r.Node.txns)
    (Node.installs warehouse)

let test_atomic_installs () =
  let warehouse, initial_copy = run_with_global ~algorithm:(module Sweep_global : Algorithm.S) in
  (* gid 0's parts are u0.0 and u2.1: they must land in the same install *)
  let batches = txn_set_of_installs warehouse in
  let holds_part (batch : Message.txn_id list) (txn : Message.txn_id) =
    List.exists (fun t -> Message.compare_txn_id t txn = 0) batch
  in
  let p1 = { Message.source = 0; seq = 0 } in
  let p2 = { Message.source = 2; seq = 1 } in
  List.iter
    (fun batch ->
      if holds_part batch p1 <> holds_part batch p2 then
        Alcotest.fail "an install split the global transaction")
    batches;
  (* and the run is at least strong *)
  let verdict =
    Checker.check view
      { Checker.initial_sources = initial_copy;
        deliveries = Node.deliveries warehouse;
        installs =
          List.map
            (fun (r : Node.install_record) -> (r.txns, r.view_after))
            (Node.installs warehouse);
        final_view = Node.view_contents warehouse }
  in
  Alcotest.(check bool) "at least strong" true
    (Checker.compare_verdict verdict.Checker.verdict Checker.Strong <= 0)

let test_plain_sweep_splits () =
  (* ordinary SWEEP on the same schedule installs the parts separately —
     the view transiently exposes half the transaction *)
  let warehouse, _ = run_with_global ~algorithm:(module Sweep : Algorithm.S) in
  let batches = txn_set_of_installs warehouse in
  Alcotest.(check int) "one install per update" 4 (List.length batches);
  List.iter
    (fun batch -> Alcotest.(check int) "singleton installs" 1 (List.length batch))
    batches

let test_no_globals_is_sweep () =
  let sc =
    { Scenario.default with
      n_sources = 3;
      init_size = 15;
      domain = 15;
      stream = { Update_gen.default with n_updates = 40; mean_gap = 0.5 };
      seed = 3L }
  in
  let g = Experiment.run sc (module Sweep_global : Algorithm.S) in
  let s = Experiment.run sc (module Sweep : Algorithm.S) in
  Alcotest.check Rig.verdict "complete without globals" Checker.Complete
    g.Experiment.verdict.Checker.verdict;
  Alcotest.(check int) "same messages"
    s.Experiment.metrics.Metrics.queries_sent
    g.Experiment.metrics.Metrics.queries_sent;
  Alcotest.(check int) "same installs"
    s.Experiment.metrics.Metrics.installs g.Experiment.metrics.Metrics.installs

let qcheck_global_streams_strong_and_atomic =
  QCheck.Test.make ~name:"global sweep: strong + atomic on random streams"
    ~count:10
    (QCheck.pair (QCheck.int_range 2 4) (QCheck.int_range 1 10_000))
    (fun (n, seed) ->
      let sc =
        { Scenario.default with
          n_sources = n;
          init_size = 15;
          domain = 15;
          stream =
            { Update_gen.default with
              n_updates = 30; mean_gap = 0.5; p_global = 0.3 };
          seed = Int64.of_int seed }
      in
      let r = Experiment.run sc (module Sweep_global : Algorithm.S) in
      Checker.compare_verdict r.Experiment.verdict.Checker.verdict
        Checker.Strong
      <= 0)

let suite =
  [ Alcotest.test_case "global txn installed atomically" `Quick
      test_atomic_installs;
    Alcotest.test_case "plain sweep splits the txn" `Quick
      test_plain_sweep_splits;
    Alcotest.test_case "without globals = sweep" `Quick test_no_globals_is_sweep;
    QCheck_alcotest.to_alcotest qcheck_global_streams_strong_and_atomic ]
