(* Smoke tests over the table/figure regeneration harness: every
   experiment must run, and the load-bearing strings of the key reports
   must hold (F5's exactness, T1's verified consistency rows). These are
   the same functions `bench/main.exe` prints. *)

open Repro_harness

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub hay i nn = needle then true
    else go (i + 1)
  in
  nn = 0 || go 0

let test_f5_exact () =
  let report = Paper_experiments.f5 () in
  Alcotest.(check bool) "no mismatches" false
    (contains ~needle:"MISMATCH" report);
  Alcotest.(check bool) "checker complete" true
    (contains ~needle:"checker verdict: complete" report);
  Alcotest.(check bool) "both compensations narrated" true
    (contains ~needle:"compensate answer from 0" report
    && contains ~needle:"compensate answer from 2" report)

let test_f2_hops () =
  let report = Paper_experiments.f2 () in
  Alcotest.(check bool) "four round trips" true
    (contains ~needle:"queries 4, answers 4" report)

let test_e6_control_row () =
  let report = Paper_experiments.e6 () in
  (* the fixed-gap control: no compensations and naive complete *)
  Alcotest.(check bool) "zero-interference control present" true
    (contains ~needle:"0.00" report);
  Alcotest.(check bool) "naive corrupts under interference" true
    (contains ~needle:"INCONSISTENT" report)

let test_a1_consistency_column () =
  let report = Paper_experiments.a1 () in
  Alcotest.(check bool) "all rows complete" false
    (contains ~needle:"INCONSISTENT" report)

let test_by_id_total () =
  List.iter
    (fun id ->
      match Paper_experiments.by_id id with
      | Some _ -> ()
      | None -> Alcotest.failf "experiment %s unresolvable" id)
    [ "t1"; "f2"; "f5"; "e1"; "e2"; "e3"; "e4"; "e5"; "e6"; "a1"; "a2"; "a3" ];
  Alcotest.(check bool) "unknown id rejected" true
    (Paper_experiments.by_id "zz" = None)

let suite =
  [ Alcotest.test_case "F5 reproduces Figure 5 exactly" `Slow test_f5_exact;
    Alcotest.test_case "F2 one round trip per source" `Slow test_f2_hops;
    Alcotest.test_case "E6 control and corruption rows" `Slow
      test_e6_control_row;
    Alcotest.test_case "A1 stays complete" `Slow test_a1_consistency_column;
    Alcotest.test_case "experiment ids resolve" `Quick test_by_id_total ]
