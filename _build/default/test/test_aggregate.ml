(* Incremental group-by aggregates over the materialized view (the
   paper's §2 aggregate extension). *)

open Repro_relational
open Repro_warehouse
open Repro_workload
open Repro_harness

let t2 k v = Tuple.ints [ k; v ]

let test_count_sum_avg () =
  let a =
    Aggregate.create ~group_by:[| 0 |]
      ~aggregates:[ Aggregate.Count; Aggregate.Sum 1; Aggregate.Avg 1 ]
  in
  Aggregate.apply a
    (Delta.of_list [ (t2 1 10, 2); (t2 1 20, 1); (t2 2 5, 1) ]);
  Alcotest.(check (list (option (float 1e-9))))
    "group 1"
    [ Some 3.; Some 40.; Some (40. /. 3.) ]
    (Aggregate.get a (Tuple.ints [ 1 ]));
  Alcotest.(check (list (option (float 1e-9))))
    "group 2" [ Some 1.; Some 5.; Some 5. ]
    (Aggregate.get a (Tuple.ints [ 2 ]));
  Alcotest.(check (list (option (float 1e-9))))
    "missing group" [ Some 0.; None; None ]
    (Aggregate.get a (Tuple.ints [ 3 ]))

let test_min_max_under_deletes () =
  let a =
    Aggregate.create ~group_by:[| 0 |]
      ~aggregates:[ Aggregate.Min 1; Aggregate.Max 1 ]
  in
  Aggregate.apply a
    (Delta.of_list [ (t2 1 10, 1); (t2 1 20, 1); (t2 1 30, 1) ]);
  Alcotest.(check (list (option (float 1e-9))))
    "initial extremes" [ Some 10.; Some 30. ]
    (Aggregate.get a (Tuple.ints [ 1 ]));
  (* deleting the current max must reveal the runner-up — impossible with
     plain counters, fine with the value multiset *)
  Aggregate.apply a (Delta.of_list [ (t2 1 30, -1) ]);
  Alcotest.(check (list (option (float 1e-9))))
    "max recedes" [ Some 10.; Some 20. ]
    (Aggregate.get a (Tuple.ints [ 1 ]));
  Aggregate.apply a (Delta.of_list [ (t2 1 10, -1); (t2 1 20, -1) ]);
  Alcotest.(check (list (option (float 1e-9))))
    "empty group" [ None; None ]
    (Aggregate.get a (Tuple.ints [ 1 ]))

let test_group_lifecycle () =
  let a = Aggregate.create ~group_by:[| 0 |] ~aggregates:[ Aggregate.Count ] in
  Aggregate.apply a (Delta.of_list [ (t2 7 0, 2) ]);
  Alcotest.(check int) "one group" 1 (List.length (Aggregate.groups a));
  Aggregate.apply a (Delta.of_list [ (t2 7 0, -2) ]);
  Alcotest.(check int) "group vanishes" 0 (List.length (Aggregate.groups a))

let test_over_deletion_rejected () =
  let a = Aggregate.create ~group_by:[| 0 |] ~aggregates:[ Aggregate.Min 1 ] in
  Aggregate.apply a (Delta.of_list [ (t2 1 5, 1) ]);
  Alcotest.(check bool) "deleting more than present raises" true
    (match Aggregate.apply a (Delta.of_list [ (t2 1 5, -2) ]) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_non_numeric_rejected () =
  let a = Aggregate.create ~group_by:[||] ~aggregates:[ Aggregate.Sum 0 ] in
  Alcotest.(check bool) "string in SUM column raises" true
    (match
       Aggregate.apply a (Delta.of_list [ ([| Value.str "x" |], 1) ])
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* End to end: an aggregate fed by the warehouse's install listener must
   equal the aggregate recomputed from the final view. *)
let test_tracks_warehouse_installs () =
  let sc =
    { Scenario.default with
      n_sources = 3;
      init_size = 20;
      domain = 8;
      stream = { Update_gen.default with n_updates = 60; mean_gap = 0.5 };
      seed = 23L }
  in
  (* The chain view projects n keys + payloads; group by the first key. *)
  let make () =
    Aggregate.create ~group_by:[| 0 |]
      ~aggregates:[ Aggregate.Count; Aggregate.Sum 3; Aggregate.Min 3 ]
  in
  (* run with a listener attached via a custom scripted wiring: reuse
     Experiment.run then seed+replay using the recorded installs *)
  let r = Experiment.run sc (module Sweep : Algorithm.S) in
  ignore r;
  (* deterministic replay: recompute via scripted run with listener *)
  let view = Chain.view ~n:3 () in
  let rng = Repro_sim.Rng.create 23L in
  let initial = Chain.populate view ~size:20 ~domain:8 rng in
  let incremental = make () in
  let initial_view = Algebra.eval view (fun i -> initial.(i)) in
  Aggregate.seed incremental (Relation.as_bag initial_view);
  let outcome =
    Experiment.run_scripted ~algorithm:(module Sweep : Algorithm.S) ~view
      ~initial
      ~updates:
        [ (0.0, 1, Delta.insertion (Chain.tuple ~key:100 ~a:3 ~b:4));
          (0.7, 0, Delta.insertion (Chain.tuple ~key:100 ~a:1 ~b:3));
          (1.1, 2, Delta.insertion (Chain.tuple ~key:100 ~a:4 ~b:2));
          (9.0, 1, Delta.deletion (Chain.tuple ~key:100 ~a:3 ~b:4)) ]
      ()
  in
  (* replay the recorded install deltas *)
  let prev = ref (Bag.copy (Node.initial_view outcome.Experiment.node)) in
  List.iter
    (fun (rec_ : Node.install_record) ->
      let delta = Bag.copy rec_.Node.view_after in
      Bag.diff_into ~into:delta !prev;
      Aggregate.apply incremental delta;
      prev := rec_.Node.view_after)
    (Node.installs outcome.Experiment.node);
  let recomputed = make () in
  Aggregate.seed recomputed (Node.view_contents outcome.Experiment.node);
  List.iter
    (fun key ->
      Alcotest.(check (list (option (float 1e-6))))
        (Format.asprintf "group %a" Tuple.pp key)
        (Aggregate.get recomputed key)
        (Aggregate.get incremental key))
    (List.sort_uniq Tuple.compare
       (Aggregate.groups incremental @ Aggregate.groups recomputed))

(* Property: applying a delta then its negation restores all aggregates. *)
let qcheck_apply_negate_roundtrip =
  QCheck.Test.make ~name:"aggregate apply/negate roundtrip"
    QCheck.(
      small_list (pair (pair (int_range 0 2) (int_range 0 20)) (int_range 1 3)))
    (fun entries ->
      let base =
        Delta.of_list (List.map (fun ((k, v), c) -> (t2 k v, c)) entries)
      in
      let make () =
        Aggregate.create ~group_by:[| 0 |]
          ~aggregates:
            [ Aggregate.Count; Aggregate.Sum 1; Aggregate.Min 1;
              Aggregate.Max 1 ]
      in
      let a = make () in
      Aggregate.apply a base;
      let extra =
        Delta.of_list [ (t2 0 99, 2); (t2 1 3, 1); (t2 2 50, 4) ]
      in
      Aggregate.apply a extra;
      Aggregate.apply a (Delta.negate extra);
      let b = make () in
      Aggregate.apply b base;
      List.for_all
        (fun key -> Aggregate.get a key = Aggregate.get b key)
        (List.map (fun k -> Tuple.ints [ k ]) [ 0; 1; 2 ]))

let suite =
  [ Alcotest.test_case "count/sum/avg" `Quick test_count_sum_avg;
    Alcotest.test_case "min/max survive deletes" `Quick
      test_min_max_under_deletes;
    Alcotest.test_case "group lifecycle" `Quick test_group_lifecycle;
    Alcotest.test_case "over-deletion rejected" `Quick
      test_over_deletion_rejected;
    Alcotest.test_case "non-numeric rejected" `Quick test_non_numeric_rejected;
    Alcotest.test_case "tracks warehouse installs" `Quick
      test_tracks_warehouse_installs;
    QCheck_alcotest.to_alcotest qcheck_apply_negate_roundtrip ]
