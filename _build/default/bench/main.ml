(* Benchmark / experiment driver.

   With no arguments it regenerates every table and figure of the paper
   (T1, F5, F2, E1–E6; see DESIGN.md §4) and then runs the Bechamel
   micro-benchmarks of the hot paths. A single argument selects one
   experiment ("t1", "f5", "f2", "e1".."e6", "micro"). *)

open Repro_relational
open Repro_sim
open Repro_workload
open Repro_harness

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                            *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let rng = Rng.create 2024L in
  let view3 = Chain.view ~n:3 () in
  let rels = Chain.populate view3 ~size:1000 ~domain:64 rng in
  let delta = Delta.insertion (Chain.tuple ~key:10_000 ~a:7 ~b:9) in
  let bench_hash_join =
    Test.make ~name:"hash join 1k x 1k"
      (Staged.stage (fun () ->
           let left = Partial.of_relation view3 0 rels.(0) in
           let right = Partial.of_relation view3 1 rels.(1) in
           ignore (Algebra.join view3 left right)))
  in
  let bench_sweep_step =
    Test.make ~name:"sweep step (dR join R, 1k tuples)"
      (Staged.stage (fun () ->
           let p = Partial.of_source_delta view3 1 delta in
           ignore (Algebra.extend view3 p ~with_relation:(0, rels.(0)))))
  in
  let bench_compensate =
    let temp = Partial.of_source_delta view3 1 delta in
    let answer = Algebra.extend view3 temp ~with_relation:(0, rels.(0)) in
    Test.make ~name:"local compensation"
      (Staged.stage (fun () ->
           ignore
             (Algebra.compensate view3 ~answer
                ~interfering:(Delta.deletion (Chain.tuple ~key:0 ~a:1 ~b:1))
                ~temp)))
  in
  let bench_full_eval =
    Test.make ~name:"full view recompute (3 x 1k)"
      (Staged.stage (fun () -> ignore (Algebra.eval view3 (fun i -> rels.(i)))))
  in
  let bench_delta_apply =
    Test.make ~name:"delta apply to 1k-tuple bag"
      (Staged.stage (fun () ->
           let b = Bag.copy (Relation.as_bag rels.(2)) in
           Bag.merge_into ~into:b delta))
  in
  let bench_sim_round =
    Test.make ~name:"simulated SWEEP run (3 sources, 10 updates)"
      (Staged.stage (fun () ->
           let sc =
             { Scenario.default with
               init_size = 30;
               stream =
                 { Update_gen.default with n_updates = 10; mean_gap = 0.5 } }
           in
           ignore
             (Experiment.run ~check:false sc
                (module Repro_warehouse.Sweep : Repro_warehouse.Algorithm.S))))
  in
  let bench_indexed_probe =
    (* the source-side fast path: probe a persistent index instead of
       building a hash table over the whole relation per query *)
    let tbl =
      Repro_source.Base_table.create ~source:0 ~indexes:[ 2 ] rels.(0)
    in
    Test.make ~name:"sweep step via persistent index (1k tuples)"
      (Staged.stage (fun () ->
           let p = Partial.of_source_delta view3 1 delta in
           ignore
             (Algebra.extend_with_probe view3 p ~source:0
                ~probe:(fun ~col ~value ->
                  Repro_source.Base_table.probe tbl ~col ~value))))
  in
  let bench_parser =
    Test.make ~name:"parse SQL view definition"
      (Staged.stage (fun () ->
           ignore
             (View_parser.parse_exn
                "SELECT R2.D, R3.F FROM R1(A int, B int), R2(C int, D int), \
                 R3(E int, F int) WHERE R1.B = R2.C AND R2.D = R3.E")))
  in
  [ bench_hash_join; bench_sweep_step; bench_indexed_probe; bench_compensate;
    bench_full_eval; bench_delta_apply; bench_parser; bench_sim_round ]

let run_micro () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let tests = micro_tests () in
  print_endline
    "MICRO. Bechamel micro-benchmarks of the hot paths (monotonic clock).";
  let rows =
    List.concat_map
      (fun test ->
        let results = Benchmark.all cfg instances test in
        let analyzed = Analyze.all ols (List.hd instances) results in
        Hashtbl.fold
          (fun name ols acc ->
            let ns =
              match Analyze.OLS.estimates ols with
              | Some [ est ] -> Printf.sprintf "%.0f" est
              | _ -> "n/a"
            in
            [ name; ns ] :: acc)
          analyzed []
        |> List.sort compare)
      tests
  in
  print_string
    (Report.table ~title:"" ~headers:[ "benchmark"; "ns/run" ] ~rows ())

(* ------------------------------------------------------------------ *)
(* Dispatch                                                             *)
(* ------------------------------------------------------------------ *)

let known = [ "t1"; "f5"; "f2"; "e1"; "e2"; "e3"; "e4"; "e5"; "e6"; "e7"; "e8"; "e9"; "a1"; "a2"; "a3"; "micro" ]

let run_one id =
  match id with
  | "micro" -> run_micro ()
  | _ -> (
      match Paper_experiments.by_id id with
      | Some f -> print_string (f ())
      | None ->
          Printf.eprintf "unknown experiment %S; known: %s\n" id
            (String.concat ", " known);
          exit 2)

let () =
  match Array.to_list Sys.argv with
  | [ _ ] ->
      print_endline
        "Reproduction benchmarks: Efficient View Maintenance at Data \
         Warehouses (SIGMOD'97)";
      print_endline
        "===========================================================================";
      List.iter
        (fun id ->
          print_newline ();
          run_one id;
          print_newline ())
        known
  | [ _; id ] -> run_one id
  | _ ->
      Printf.eprintf "usage: main.exe [%s]\n" (String.concat "|" known);
      exit 2
