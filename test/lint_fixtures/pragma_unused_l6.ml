(* lint: allow L6 the probe path below never scans *)
let extend probe delta = probe delta
