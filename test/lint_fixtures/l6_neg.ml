(* L6 negative fixture: the probe path is fine, and a deliberate scan
   carries its pragma. *)
let answer view partial probe = Algebra.extend_with_probe view partial ~probe

let fallback view partial delta =
  Algebra.extend view partial delta (* lint: allow L6 fixture: pairwise fallback for a cross-product junction *)
