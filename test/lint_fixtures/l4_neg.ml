(* L4 negative fixture: specific exceptions, and a re-raised catch. *)
let parse s = try Some (int_of_string s) with Failure _ -> None

let with_cleanup f x reset =
  try f x
  with e ->
    reset ();
    raise e
