(* L8 negative fixture: pure handlers; I/O exists in the unit but only
   off the handler paths. *)
let compute x = x + 1
let on_update x = compute x
let debug_dump msg = print_endline msg
let main () = debug_dump "done"
