(* L2 negative fixture: the folded pairs are sorted before encoding. *)
let snapshot t =
  let pairs =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl [])
  in
  Snap.List (List.map (fun (k, v) -> Snap.ints [ k; v ]) pairs)
