(* L1 positive fixture: ambient randomness and wall-clock reads. *)
let jitter () = Random.float 1.0
let now () = Unix.gettimeofday ()
let cpu () = Sys.time ()
let tbl () = Hashtbl.create ~random:true 16
let weight x = Hashtbl.hash_param 10 100 x
