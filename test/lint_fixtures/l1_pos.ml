(* L1 positive fixture: ambient randomness and wall-clock reads. *)
let jitter () = Random.float 1.0
let now () = Unix.gettimeofday ()
let cpu () = Sys.time ()
