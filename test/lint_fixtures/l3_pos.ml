(* L3 positive fixture: quadratic append into a mutable cell, plus
   List.length re-measured inside a recursive loop. *)
type t = { mutable xs : int list }

let push t x = t.xs <- t.xs @ [ x ]
let rec wait t n = if List.length t.xs < n then wait t n
