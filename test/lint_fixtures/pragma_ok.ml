(* Pragma fixture: the violation below is suppressed with a reason. *)
let jitter () = Random.float 1.0 (* lint: allow L1 fixture: demonstrates suppression with an audit reason *)
