(* L5 positive fixture: [label] never reaches the snapshot path. *)
type t = { mutable count : int; mutable label : string }

let snapshot t = Snap.Int t.count
let restore _ctx s = { count = Snap.to_int s; label = "" }
