(* L9 negative fixture: mutate-before-send, copy-on-send, and mutation
   of a field disjoint from the sent one. *)
let emit send d extra =
  Delta.add d extra;
  send (Delta.copy d);
  Delta.add d extra

let route node msg =
  node.send msg.payload;
  msg.acked <- true
