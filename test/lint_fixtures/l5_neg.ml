(* L5 negative fixture: every mutable field round-trips. *)
type t = { mutable count : int; mutable label : string }

let snapshot t = Snap.List [ Snap.Int t.count; Snap.Str t.label ]

let restore _ctx s =
  match Snap.to_list s with
  | [ c; l ] -> { count = Snap.to_int c; label = Snap.to_str l }
  | _ -> invalid_arg "bad snapshot"
