(* L3 negative fixture: reversed accumulation and a cached length. *)
type t = { mutable rev_xs : int list; mutable len : int }

let push t x =
  t.rev_xs <- x :: t.rev_xs;
  t.len <- t.len + 1

let rec wait t n = if t.len < n then wait t n
let drain t = List.rev t.rev_xs
