(* lint: allow L3 nothing here actually appends *)
let id x = x
