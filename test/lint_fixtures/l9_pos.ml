(* L9 positive fixture: payloads mutated after the send hands them to
   the receiver. *)
let emit send d extra =
  send d;
  Delta.add d extra;
  d

let flush node msg =
  node.send msg;
  msg.seq <- msg.seq + 1
