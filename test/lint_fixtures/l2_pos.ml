(* L2 positive fixture: Hashtbl.fold feeds an encoding without a sort. *)
let snapshot t =
  Snap.List (Hashtbl.fold (fun k v acc -> Snap.ints [ k; v ] :: acc) t.tbl [])
