(* lint: allow L9 no such rule *)
(* lint: allow L1 *)
let id x = x
