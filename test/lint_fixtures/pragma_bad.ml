(* lint: allow L42 no such rule *)
(* lint: allow L1 *)
let id x = x
