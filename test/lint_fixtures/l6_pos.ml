(* L6 positive fixture: a probe-less extend. The test lints this source
   under a lib/warehouse/ path, where the scan is a bug. *)
let answer view partial delta = Algebra.extend view partial delta
