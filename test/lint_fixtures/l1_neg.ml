(* L1 negative fixture: seeded rng and virtual clock only. *)
let jitter rng = Rng.float rng
let now engine = Engine.now engine
