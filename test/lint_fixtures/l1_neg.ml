(* L1 negative fixture: seeded rng, virtual clock, deterministic
   hashing only. *)
let jitter rng = Rng.float rng
let now engine = Engine.now engine
let tbl () = Hashtbl.create 16
let fixed () = Hashtbl.create ~random:false 16
let digest x = Hashtbl.hash x
