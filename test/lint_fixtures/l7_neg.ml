(* L7 negative fixture: immutable toplevels, factories, partial
   applications and a write-once pragma'd registry. *)
let limit = 42
let names = [ "r1"; "r2" ]
let make_table () = Hashtbl.create 16
let first xs = List.hd xs
let encode = Codec.encode 3

(* lint: allow L7 write-once registry, populated before any domain spawns *)
let registry = Hashtbl.create 8
