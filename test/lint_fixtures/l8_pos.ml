(* L8 positive fixture: maintenance handlers reaching console I/O
   through helper hops. *)
let log msg = print_endline msg

let helper x =
  log x;
  x

let on_update x = helper x
let on_source_down i = Printf.printf "down %d\n" i
