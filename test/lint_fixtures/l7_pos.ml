(* L7 positive fixture: toplevel mutable values — module state shared
   by every future domain/shard. *)
let cache = Hashtbl.create 16
let total = ref 0
let log_buf = Buffer.create 64
let alias = cache

let built =
  let t = Hashtbl.create 8 in
  Hashtbl.replace t "k" 1;
  t
