(* L4 positive fixture (linted with has_mli = true): a swallowing
   catch-all and a bare Not_found escaping an exported function. *)
let parse s = try int_of_string s with _ -> 0
let find xs x = if List.mem x xs then x else raise Not_found
