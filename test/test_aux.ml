(* Self-maintenance suite (DESIGN.md §14): auxiliary projections must be
   invisible in results and visible only in the message counters.

   Unit layers first (mode parsing, checkpoint/WAL byte identity of the
   aux snapshot, the Base_table.probe error contract, the forced
   open-breaker composition), then a property over random join specs —
   a leg is locally answerable iff the tracked projection functionally
   determines its result, proved by executing both paths and comparing
   bags — and finally the seeded differential storms: for each seed and
   each Sweep_engine algorithm, aux full and keys-only runs must end
   bit-identical to the aux-off run, replay bit-identically, earn a
   verdict no weaker, and (full mode) send zero sweep queries, including
   under warehouse crashes and a mid-run source outage.

   Seed count comes from AUX_SEEDS (default 5 so `dune runtest` stays
   fast; `make aux` raises it to 100). *)

open Repro_sim
open Repro_relational
open Repro_protocol
open Repro_warehouse
open Repro_consistency
open Repro_harness
open Repro_workload
module Snap = Repro_durability.Snap
module Base_table = Repro_source.Base_table

let aux_seeds = Rig.seeds_env ~var:"AUX_SEEDS" ~default:5

(* ————— mode parsing ————— *)

let test_mode_strings () =
  List.iter
    (fun (s, m) ->
      Alcotest.(check bool) (Printf.sprintf "parse %S" s) true
        (Aux_store.mode_of_string s = Some m))
    [ ("off", Aux_store.Off); ("keys", Aux_store.Keys_only);
      ("keys-only", Aux_store.Keys_only); ("full", Aux_store.Full) ];
  Alcotest.(check bool) "garbage rejected" true
    (Aux_store.mode_of_string "bogus" = None);
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Printf.sprintf "round trip %s" (Aux_store.mode_to_string m))
        true
        (Aux_store.mode_of_string (Aux_store.mode_to_string m) = Some m))
    [ Aux_store.Off; Aux_store.Keys_only; Aux_store.Full ]

(* ————— checkpoint + WAL replay byte identity ————— *)

(* The aux store rides the §8 checkpoint; recovery either restores the
   snapshot and re-applies the WAL tail, or (no checkpoint) resets to
   genesis and re-applies everything. Both recovery paths, and any
   install order of the same deltas, must land on byte-identical
   encodings — the canonical-encoding guarantee checkpoints rely on. *)
let test_snapshot_byte_identity () =
  let view = (Paper_example.view ()) in
  let mk () =
    Aux_store.create ~view ~mode:Aux_store.Full
      ~initial:(Paper_example.initial ()) ()
  in
  let all = [ (Paper_example.d_r2 ()); (Paper_example.d_r3 ()); (Paper_example.d_r1 ()) ] in
  let apply aux l =
    List.iter (fun (s, d) -> Aux_store.apply aux ~source:s d) l
  in
  let a = mk () in
  apply a all;
  let golden = Snap.encode (Aux_store.snapshot a) in
  (* crash after two installs with a checkpoint taken: restore, then
     replay the one-record WAL tail *)
  let c = mk () in
  apply c [ List.nth all 0; List.nth all 1 ];
  let ck = Snap.encode (Aux_store.snapshot c) in
  let r = mk () in
  Aux_store.restore r (Snap.decode ck);
  apply r [ List.nth all 2 ];
  Alcotest.(check string) "checkpoint + WAL tail: byte-identical" golden
    (Snap.encode (Aux_store.snapshot r));
  (* crash with no checkpoint: reset to genesis, replay the whole log *)
  let g = mk () in
  apply g [ List.nth all 2 ];
  Aux_store.reset g;
  apply g all;
  Alcotest.(check string) "reset + full WAL replay: byte-identical" golden
    (Snap.encode (Aux_store.snapshot g));
  (* canonical encoding: same installed set, different order *)
  let o = mk () in
  apply o (List.rev all);
  Alcotest.(check string) "install order does not change the bytes" golden
    (Snap.encode (Aux_store.snapshot o));
  Alcotest.(check int) "bytes reports the encoded size"
    (String.length golden) (Aux_store.bytes a);
  Alcotest.(check bool) "off store snapshots Unit" true
    (Snap.equal (Aux_store.snapshot (Aux_store.off ())) Snap.Unit)

(* ————— Base_table.probe unindexed-fallback contract ————— *)

(* An unindexed probe no longer raises: it degrades to a counted O(n)
   scan with the same answer an index would give, and the degradation is
   observable per table in [scan_count] (the default-strategy suites
   assert the harness's sum of those counters stays 0). *)
let test_probe_scan_fallback () =
  let rel = Relation.of_tuples [ Tuple.ints [ 1; 2; 3 ]; Tuple.ints [ 4; 2; 5 ] ] in
  let bt = Base_table.create ~source:2 ~indexes:[ 0; 2 ] rel in
  Alcotest.(check bool) "indexed probe answers" true
    (Base_table.probe bt ~col:0 ~value:(Value.int 1) <> []);
  Alcotest.(check int) "indexed probes are not counted" 0
    (Base_table.scan_count bt);
  let hits = Base_table.probe bt ~col:1 ~value:(Value.int 2) in
  Alcotest.(check int) "scan fallback finds both matches" 2
    (List.length hits);
  Alcotest.(check int) "the degraded probe is counted" 1
    (Base_table.scan_count bt);
  let bare =
    Base_table.create ~source:0 (Relation.of_tuples [ Tuple.ints [ 7 ] ])
  in
  Alcotest.(check bool) "index-free table still answers" true
    (Base_table.probe bare ~col:0 ~value:(Value.int 7) <> []);
  Alcotest.(check int) "and is counted on its own table" 1
    (Base_table.scan_count bare);
  Alcotest.(check int) "without touching the first table" 1
    (Base_table.scan_count bt)

(* ————— aux × open breaker (node level) ————— *)

(* With full aux every sweep leg is local, so an open breaker on some
   source must not park locally-answerable updates: they install with
   zero outbound messages while the source is down. *)
let test_aux_with_open_breaker () =
  let engine = Engine.create ~seed:5L () in
  let view = Chain.view ~n:3 () in
  let inits = Chain.populate view ~size:8 ~domain:4 (Rng.create 9L) in
  let mirror = Array.map Relation.copy inits in
  let aux =
    Aux_store.create ~view ~mode:Aux_store.Full
      ~initial:(Array.map Relation.copy inits) ()
  in
  let metrics = Metrics.create () in
  let breaker = Breaker.create engine ~rng:(Rng.create 1L) ~metrics ~n:3 in
  let sent = ref 0 in
  let node =
    Node.create engine ~view ~algorithm:(module Sweep : Algorithm.S)
      ~send:(fun _ _ -> incr sent)
      ~init:(Algebra.eval view (fun i -> inits.(i)))
      ~metrics ~breaker ~aux ()
  in
  Breaker.force_open breaker 1;
  Alcotest.(check bool) "source 1 is down" false (Breaker.source_ok breaker 1);
  let update seq source delta occurred_at =
    Message.Update_notice
      { Message.txn = { Message.source; seq }; delta; occurred_at;
        global = None }
  in
  let d0 = Delta.insertion (Chain.tuple ~key:100 ~a:1 ~b:2)
  and d2 = Delta.insertion (Chain.tuple ~key:101 ~a:2 ~b:3) in
  Node.deliver node (update 0 0 d0 1.0);
  Node.deliver node (update 0 2 d2 2.0);
  Alcotest.(check int) "both updates install while the breaker is open" 2
    metrics.Metrics.installs;
  Alcotest.(check int) "every leg answered locally (2 legs each)" 4
    metrics.Metrics.local_answers;
  Alcotest.(check int) "zero outbound messages" 0 !sent;
  Alcotest.(check int) "nothing parked" 0 metrics.Metrics.stalled_updates;
  Alcotest.(check bool) "node is idle" true (Node.idle node);
  (match Relation.apply mirror.(0) d0 with Ok () -> () | Error _ -> assert false);
  (match Relation.apply mirror.(2) d2 with Ok () -> () | Error _ -> assert false);
  Alcotest.check Rig.bag "view exact despite the outage"
    (Relation.as_bag (Algebra.eval view (fun i -> mirror.(i))))
    (Node.view_contents node)

(* ————— property: answerable ⟺ projections determine the leg ————— *)

(* Random join specs: 2–4 sources of arity 2–3 (first column key),
   single-equality joins on random columns with occasional residuals, a
   random projection and an occasional selection. The test recomputes
   the referenced-column set from the View_def spec — independently of
   Aux_store's planner — and demands [answers] agree with
   "required ⊆ tracked"; then it executes every sweep leg both ways
   (local answer vs Algebra.extend over the mirror relations) and
   compares the resulting ΔV bags. *)

let random_view rng =
  let n = 2 + Rng.int rng 3 in
  let arities = Array.init n (fun _ -> 2 + Rng.int rng 2) in
  let offsets = Array.make n 0 in
  for j = 1 to n - 1 do
    offsets.(j) <- offsets.(j - 1) + arities.(j - 1)
  done;
  let total = offsets.(n - 1) + arities.(n - 1) in
  let schemas =
    Array.init n (fun j ->
        Schema.make
          (Printf.sprintf "S%d" j)
          (List.init arities.(j) (fun k ->
               Schema.attr ~key:(k = 0) (Printf.sprintf "c%d" k) Value.T_int)))
  in
  let joins =
    Array.init (n - 1) (fun j ->
        let l = offsets.(j) + Rng.int rng arities.(j)
        and r = offsets.(j + 1) + Rng.int rng arities.(j + 1) in
        let residual =
          if Rng.bool rng 0.3 then
            Some
              (Predicate.cmp_const Predicate.Le
                 (offsets.(j) + Rng.int rng arities.(j))
                 (Value.int 2))
          else None
        in
        Join_spec.make ?residual [ (l, r) ])
  in
  let projection =
    let chosen =
      List.filter (fun _ -> Rng.bool rng 0.4) (List.init total Fun.id)
    in
    Array.of_list (if chosen = [] then [ Rng.int rng total ] else chosen)
  in
  let selection =
    if Rng.bool rng 0.3 then
      Some (Predicate.cmp_const Predicate.Ge (Rng.int rng total) (Value.int 1))
    else None
  in
  View_def.make ~name:"rand" ~schemas ~joins ?selection ~projection ()

(* The spec's referenced set, recomputed from the view definition. *)
let referenced_locals view j =
  let ofs = View_def.offset view j and w = View_def.width view j in
  let local g = if g >= ofs && g < ofs + w then Some (g - ofs) else None in
  let of_joins =
    Array.to_list (View_def.joins view)
    |> List.concat_map (fun (js : Join_spec.t) ->
           List.concat_map (fun (l, r) -> [ l; r ]) js.Join_spec.equalities
           @
           match js.Join_spec.residual with
           | Some p -> Predicate.attrs_used p
           | None -> [])
  in
  let globals =
    of_joins
    @ Predicate.attrs_used (View_def.selection view)
    @ Array.to_list (View_def.projection view)
  in
  List.sort_uniq compare (List.filter_map local globals)

let expected_answerable view mode j =
  match mode with
  | Aux_store.Off -> false
  | Aux_store.Full -> true
  | Aux_store.Keys_only ->
      let keys = Schema.key_indices (View_def.schema view j) in
      let ofs = View_def.offset view j and w = View_def.width view j in
      let join_cols =
        Array.to_list (View_def.joins view)
        |> List.concat_map (fun (js : Join_spec.t) ->
               List.concat_map (fun (l, r) -> [ l; r ]) js.Join_spec.equalities)
        |> List.filter_map (fun g ->
               if g >= ofs && g < ofs + w then Some (g - ofs) else None)
      in
      let tracked = List.sort_uniq compare (keys @ join_cols) in
      List.for_all (fun c -> List.mem c tracked) (referenced_locals view j)

let random_tuple rng arity ~key ~domain =
  Array.init arity (fun c ->
      Value.Int (if c = 0 then key else Rng.int rng domain))

(* Installed update: mostly inserts of fresh keys, sometimes a deletion
   of a present tuple. *)
let random_installed_delta rng rel arity ~key ~domain =
  if Rng.bool rng 0.75 || Relation.is_empty rel then
    Delta.insertion (random_tuple rng arity ~key ~domain)
  else
    let tuples = Relation.to_sorted_list rel in
    let t, _ = List.nth tuples (Rng.int rng (List.length tuples)) in
    Delta.deletion t

(* One sweep of [d] at source [s] over the mirror relations, taking the
   local-answer path wherever the aux store offers one. *)
let sweep_delta view mirror aux ~use_aux s d =
  let p = ref (Partial.of_source_delta view s d) in
  let leg j =
    let local =
      if use_aux then
        Aux_store.local_answer aux ~target:j ~partial:!p
          ~overlay:(Delta.empty ())
      else None
    in
    match local with
    | Some p' -> p := p'
    | None -> p := Algebra.extend view !p ~with_relation:(j, mirror.(j))
  in
  for j = s - 1 downto 0 do leg j done;
  for j = s + 1 to View_def.n_sources view - 1 do leg j done;
  Algebra.select_project view !p

let check_property seed =
  let rng = Rng.create (Int64.of_int (1000 + seed)) in
  let view = random_view rng in
  let n = View_def.n_sources view in
  let base =
    Array.init n (fun j ->
        let rel = Relation.create () in
        for k = 0 to 3 do
          Relation.insert rel
            (random_tuple rng (View_def.width view j) ~key:k ~domain:3)
            1
        done;
        rel)
  in
  List.iter
    (fun mode ->
      let mname = Aux_store.mode_to_string mode in
      let mirror = Array.map Relation.copy base in
      let aux =
        Aux_store.create ~view ~mode ~initial:(Array.map Relation.copy base) ()
      in
      (* answerability matches the spec *)
      for j = 0 to n - 1 do
        Alcotest.(check bool)
          (Printf.sprintf
             "seed %d %s: source %d answerable iff tracked determines it"
             seed mname j)
          (expected_answerable view mode j)
          (Aux_store.answers aux j)
      done;
      (* advance aux and mirrors through some installed history *)
      for i = 0 to 5 do
        let s = Rng.int rng n in
        let d =
          random_installed_delta rng mirror.(s) (View_def.width view s)
            ~key:(100 + i) ~domain:3
        in
        (match Relation.apply mirror.(s) d with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "mirror apply");
        Aux_store.apply aux ~source:s d
      done;
      (* both paths agree on every leg of every sweep *)
      for s = 0 to n - 1 do
        let d =
          random_installed_delta rng mirror.(s) (View_def.width view s)
            ~key:(900 + s) ~domain:3
        in
        Alcotest.check Rig.delta
          (Printf.sprintf "seed %d %s: ΔV at source %d identical both paths"
             seed mname s)
          (sweep_delta view mirror aux ~use_aux:false s d)
          (sweep_delta view mirror aux ~use_aux:true s d)
      done;
      (* end to end on the engine: scripted run, aux on ≡ off *)
      let updates =
        List.init 6 (fun i ->
            let s = Rng.int rng n in
            ( (float_of_int i *. 1.3) +. 1.0, s,
              Delta.insertion
                (random_tuple rng (View_def.width view s) ~key:(500 + i)
                   ~domain:3) ))
      in
      let scripted aux_mode =
        Experiment.run_scripted ~aux_mode
          ~algorithm:(module Sweep : Algorithm.S)
          ~view
          ~initial:(Array.map Relation.copy base)
          ~updates ()
      in
      let off = scripted Aux_store.Off and on = scripted mode in
      Alcotest.check Rig.bag
        (Printf.sprintf "seed %d %s: scripted final view identical" seed mname)
        (Rig.final_view off) (Rig.final_view on);
      let vo = (Experiment.check_scripted off).Checker.verdict
      and vn = (Experiment.check_scripted on).Checker.verdict in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d %s: scripted verdict no weaker (off %s, on %s)"
           seed mname
           (Checker.verdict_to_string vo)
           (Checker.verdict_to_string vn))
        true
        (Checker.compare_verdict vn vo <= 0))
    [ Aux_store.Keys_only; Aux_store.Full ]

let property_case () = Rig.for_seeds aux_seeds check_property

(* ————— seeded differential storms × algorithms ————— *)

let skew_scenario ?(aux_mode = Aux_store.Off) seed =
  { Scenario.default with
    Scenario.name = "aux-diff";
    n_sources = 4;
    init_size = 12;
    domain = 8;
    stream =
      { Update_gen.default with
        Update_gen.n_updates = 40; mean_gap = 0.7;
        placement = Update_gen.Zipf 1.1 };
    aux_mode;
    seed = Int64.of_int seed }

(* Two warehouse crashes mid-run: the aux snapshot rides the checkpoint
   and the WAL tail re-applies installed deltas through the same
   Aux_store.apply path — results must not move. *)
let crashy sc =
  { sc with
    Scenario.name = "aux-crash";
    faults =
      { Fault.link = Fault.reliable;
        crashes = [];
        wh_crashes =
          [ { Fault.wh_down_at = 6.; wh_up_at = 14. };
            { Fault.wh_down_at = 22.; wh_up_at = 30. } ] } }

(* A mid-run source outage with deadlines and breakers armed. Under full
   aux no queries are sent, so no deadline can expire — updates from
   live sources keep installing locally while source 1 is down. *)
let outage sc =
  { sc with
    Scenario.name = "aux-outage";
    deadline = Some 8.;
    breaker_k = 3;
    probe_limit = 0;
    stall_cap = 64;
    faults =
      { Fault.link = Fault.reliable;
        crashes = [ { Fault.source = 1; down_at = 8.; up_at = 20. } ];
        wh_crashes = [] } }

let check_differential ~tag algo seed =
  let ctx fmt = Printf.sprintf ("%s seed %d: " ^^ fmt) tag seed in
  let sc = skew_scenario seed in
  let full = { sc with Scenario.aux_mode = Aux_store.Full } in
  let off = Experiment.run sc algo in
  let on = Experiment.run full algo in
  let on2 = Experiment.run full algo in
  Alcotest.(check bool) (ctx "aux-off run drains") true
    off.Experiment.completed;
  Alcotest.(check bool) (ctx "aux-on run drains") true on.Experiment.completed;
  Alcotest.check Rig.bag (ctx "full aux: final view bit-identical to off")
    off.Experiment.final_view on.Experiment.final_view;
  Rig.check_replay ~ctx:(Printf.sprintf "%s seed %d full-aux" tag seed) on on2;
  Alcotest.(check int) (ctx "replay: same local answers")
    on.Experiment.metrics.Metrics.local_answers
    on2.Experiment.metrics.Metrics.local_answers;
  let vo = off.Experiment.verdict.Checker.verdict
  and vn = on.Experiment.verdict.Checker.verdict in
  Alcotest.(check bool)
    (ctx "verdict no weaker with aux (off %s, on %s)"
       (Checker.verdict_to_string vo)
       (Checker.verdict_to_string vn))
    true
    (Checker.compare_verdict vn vo <= 0);
  Alcotest.(check int) (ctx "full aux: zero sweep queries") 0
    on.Experiment.metrics.Metrics.queries_sent;
  Alcotest.(check bool) (ctx "full aux: local answers accrued") true
    (on.Experiment.metrics.Metrics.local_answers > 0);
  Alcotest.(check bool) (ctx "full aux: messages/update < 1") true
    (Metrics.messages_per_update on.Experiment.metrics < 1.0);
  Alcotest.(check bool) (ctx "full aux: storage cost is accounted") true
    (on.Experiment.metrics.Metrics.aux_bytes > 0);
  (* keys-only: the chain's middle sources are answerable, its ends are
     not (payload columns are projected but untracked) — a genuine
     storage-vs-messages trade-off, still bit-identical *)
  let keys =
    Experiment.run { sc with Scenario.aux_mode = Aux_store.Keys_only } algo
  in
  Alcotest.check Rig.bag (ctx "keys-only aux: final view bit-identical to off")
    off.Experiment.final_view keys.Experiment.final_view;
  Alcotest.(check bool) (ctx "keys-only aux: some legs local") true
    (keys.Experiment.metrics.Metrics.local_answers > 0);
  Alcotest.(check bool) (ctx "keys-only aux: some legs still remote") true
    (keys.Experiment.metrics.Metrics.queries_sent > 0);
  (* note: keys-only can send MORE queries than off for the batching
     engines — faster ViewChanges mean fewer updates coalesce per
     frame — so only the per-leg hit rate is a sound invariant *)
  let hit = Metrics.aux_hit_rate keys.Experiment.metrics in
  Alcotest.(check bool) (ctx "keys-only aux: hit rate strictly in (0,1)")
    true
    (hit > 0. && hit < 1.);
  (* × warehouse crashes: checkpoint + WAL replay with aux state *)
  let coff = Experiment.run (crashy sc) algo in
  let con = Experiment.run (crashy full) algo in
  Alcotest.(check bool) (ctx "crash: aux-on run drains") true
    con.Experiment.completed;
  Alcotest.(check int) (ctx "crash: both crashes happened") 2
    con.Experiment.metrics.Metrics.wh_crashes;
  Alcotest.check Rig.bag (ctx "crash: aux-on ≡ aux-off")
    coff.Experiment.final_view con.Experiment.final_view;
  Alcotest.check Rig.bag (ctx "crash: aux-on ≡ crash-free aux-on")
    on.Experiment.final_view con.Experiment.final_view;
  Alcotest.(check bool) (ctx "crash: local answers survive recovery") true
    (con.Experiment.metrics.Metrics.local_answers > 0);
  (* × source outage with breakers armed *)
  let boff = Experiment.run (outage sc) algo in
  let bon = Experiment.run (outage full) algo in
  Alcotest.(check bool) (ctx "outage: aux-on run drains") true
    bon.Experiment.completed;
  Alcotest.check Rig.bag (ctx "outage: aux-on ≡ aux-off")
    boff.Experiment.final_view bon.Experiment.final_view;
  Alcotest.(check int) (ctx "outage: full aux never queries the dead source")
    0 bon.Experiment.metrics.Metrics.queries_sent;
  Alcotest.(check int) (ctx "outage: every update incorporated") 40
    bon.Experiment.metrics.Metrics.updates_incorporated

let diff_case ~tag algo () =
  Rig.for_seeds aux_seeds (check_differential ~tag algo)

let suite =
  [ Alcotest.test_case "aux mode: parse and print" `Quick test_mode_strings;
    Alcotest.test_case "aux snapshot: checkpoint + WAL replay byte identity"
      `Quick test_snapshot_byte_identity;
    Alcotest.test_case "Base_table.probe: counted scan fallback" `Quick
      test_probe_scan_fallback;
    Alcotest.test_case "aux x open breaker: local installs, zero messages"
      `Quick test_aux_with_open_breaker;
    Alcotest.test_case "property: answerable iff projections determine leg"
      `Slow property_case;
    Alcotest.test_case "differential: sweep" `Slow
      (diff_case ~tag:"sweep" (module Sweep : Algorithm.S));
    Alcotest.test_case "differential: sweep-batched" `Slow
      (diff_case ~tag:"sweep-batched" (module Sweep_batched : Algorithm.S));
    Alcotest.test_case "differential: nested-sweep" `Slow
      (diff_case ~tag:"nested-sweep" (module Nested_sweep : Algorithm.S));
    Alcotest.test_case "differential: strobe" `Slow
      (diff_case ~tag:"strobe" (module Strobe : Algorithm.S)) ]
