(* The paper's §2 assumes channels are reliable and FIFO, and §4's exact
   interference detection depends on it. This suite *breaks* the
   assumption on purpose — routing a source's update notices over a
   different (slower) channel than its query answers — and shows SWEEP
   then mis-detects interference and corrupts the view. A positive control
   with a single FIFO channel on the identical race stays exact. *)

open Repro_relational
open Repro_sim
open Repro_protocol
open Repro_source
open Repro_warehouse
open Repro_consistency
open Repro_workload

let view = Chain.view ~n:3 ()

let initial () =
  [| Relation.of_tuples [ Chain.tuple ~key:0 ~a:0 ~b:1 ];
     Relation.of_tuples [ Chain.tuple ~key:0 ~a:1 ~b:2 ];
     Relation.of_tuples [ Chain.tuple ~key:0 ~a:2 ~b:3 ] |]

(* Wire a 3-source warehouse where [split_notices] controls whether source
   0's notices share the FIFO channel with its answers (the paper's model)
   or travel on their own slow channel (broken model). *)
let run ~split_notices =
  let engine = Engine.create ~seed:3L () in
  let rng = Engine.rng engine in
  let trace = Trace.create () in
  let inits = initial () in
  let initial_copy = Array.map Relation.copy inits in
  let initial_view = Algebra.eval view (fun i -> inits.(i)) in
  let node = ref None in
  let deliver msg = Node.deliver (Option.get !node) msg in
  let fast = Latency.Fixed 1.0 in
  let slow = Latency.Fixed 3.0 in
  let up =
    Array.init 3 (fun _ ->
        Channel.create engine ~latency:fast ~rng:(Rng.split rng) ~deliver)
  in
  (* the rogue channel: source 0's notices, delivered with extra delay *)
  let rogue =
    Channel.create engine ~latency:slow ~rng:(Rng.split rng) ~deliver
  in
  let send_for i msg =
    match msg with
    | Message.Update_notice _ when split_notices && i = 0 ->
        Channel.send rogue msg
    | _ -> Channel.send up.(i) msg
  in
  let sources =
    Array.init 3 (fun i ->
        Source_node.create engine ~view ~id:i ~init:inits.(i)
          ~send:(send_for i) ~trace)
  in
  let down =
    Array.init 3 (fun i ->
        Channel.create engine ~latency:fast ~rng:(Rng.split rng)
          ~deliver:(fun m -> Source_node.handle sources.(i) m))
  in
  let warehouse =
    Node.create engine ~view ~algorithm:(module Sweep : Algorithm.S)
      ~send:(fun i msg -> Channel.send down.(i) msg)
      ~init:initial_view ~trace ()
  in
  node := Some warehouse;
  (* The race: an insert at source 2 sweeps left; source 0 deletes its
     tuple just before the sweep's query is evaluated there. With FIFO the
     notice must beat the answer; on the slow rogue channel it arrives
     *after*, so the warehouse believes the update did not interfere. *)
  Engine.at engine ~time:0.0 (fun () ->
      ignore
        (Source_node.local_update sources.(2)
           (Delta.insertion (Chain.tuple ~key:1 ~a:2 ~b:9))));
  Engine.at engine ~time:3.5 (fun () ->
      ignore
        (Source_node.local_update sources.(0)
           (Delta.deletion (Chain.tuple ~key:0 ~a:0 ~b:1))));
  (match Engine.run engine with `Drained -> () | _ -> assert false);
  let verdict =
    Checker.check view
      { Checker.initial_sources = initial_copy;
        deliveries = Node.deliveries warehouse;
        installs =
          List.map
            (fun (r : Node.install_record) -> (r.txns, r.view_after))
            (Node.installs warehouse);
        final_view = Node.view_contents warehouse }
  in
  verdict.Checker.verdict

let test_fifo_upholds_sweep () =
  Alcotest.check Rig.verdict "with FIFO: complete" Checker.Complete
    (run ~split_notices:false)

let test_broken_fifo_breaks_sweep () =
  let v = run ~split_notices:true in
  Alcotest.(check bool)
    (Printf.sprintf "without FIFO sweep degrades (got %s)"
       (Checker.verdict_to_string v))
    true
    (Checker.compare_verdict v Checker.Complete > 0)

let suite =
  [ Alcotest.test_case "FIFO channels: sweep exact" `Quick
      test_fifo_upholds_sweep;
    Alcotest.test_case "broken FIFO: sweep mis-detects interference" `Quick
      test_broken_fifo_breaks_sweep ]

(* The other half of §2's channel assumption: *reliability*. With lossy
   channels SWEEP wedges — a lost answer leaves the ViewChange waiting
   forever, and the warehouse never quiesces. *)
let test_lossy_channel_wedges_sweep () =
  let engine = Engine.create ~seed:11L () in
  let rng = Engine.rng engine in
  let inits = initial () in
  let node = ref None in
  let deliver msg = Node.deliver (Option.get !node) msg in
  let up =
    Array.init 3 (fun _ ->
        Channel.create engine ~latency:(Latency.Fixed 1.0)
          ~rng:(Rng.split rng) ~deliver)
  in
  let sources =
    Array.init 3 (fun i ->
        Source_node.create engine ~view ~id:i ~init:inits.(i)
          ~send:(fun m -> Channel.send up.(i) m)
          ~trace:(Trace.create ()))
  in
  (* every second query/answer hop loses messages *)
  let down =
    Array.init 3 (fun i ->
        Channel.create ~lossy:true ~drop:0.5 engine
          ~latency:(Latency.Fixed 1.0) ~rng:(Rng.split rng)
          ~deliver:(fun m -> Source_node.handle sources.(i) m))
  in
  let warehouse =
    Node.create engine ~view ~algorithm:(module Sweep : Algorithm.S)
      ~send:(fun i msg -> Channel.send down.(i) msg)
      ~init:(Algebra.eval view (fun i -> inits.(i)))
      ()
  in
  node := Some warehouse;
  for k = 0 to 9 do
    Engine.at engine
      ~time:(float_of_int k)
      (fun () ->
        ignore
          (Source_node.local_update sources.(1)
             (Delta.insertion (Chain.tuple ~key:(k + 1) ~a:1 ~b:2))))
  done;
  (match Engine.run engine with `Drained -> () | _ -> assert false);
  let lost = Array.fold_left (fun acc ch -> acc + Channel.dropped ch) 0 down in
  Alcotest.(check bool) "messages were lost" true (lost > 0);
  Alcotest.(check bool) "warehouse wedged (never quiesces)" false
    (Node.idle warehouse);
  Alcotest.(check bool) "updates stranded" true
    ((Node.metrics warehouse).Metrics.updates_incorporated < 10)

(* Positive control for the wedge: the identical lossy query path, but
   routed over the reliable transport — retransmission restores the
   exactly-once FIFO contract and SWEEP completes untouched. *)
let test_transport_unwedges_sweep () =
  let engine = Engine.create ~seed:11L () in
  let rng = Engine.rng engine in
  let inits = initial () in
  let initial_copy = Array.map Relation.copy inits in
  let node = ref None in
  let deliver msg = Node.deliver (Option.get !node) msg in
  let up =
    Array.init 3 (fun _ ->
        Channel.create engine ~latency:(Latency.Fixed 1.0)
          ~rng:(Rng.split rng) ~deliver)
  in
  let sources =
    Array.init 3 (fun i ->
        Source_node.create engine ~view ~id:i ~init:inits.(i)
          ~send:(fun m -> Channel.send up.(i) m)
          ~trace:(Trace.create ()))
  in
  let down =
    Array.init 3 (fun i ->
        Transport.connect ~faults:(Fault.lossy ~drop:0.5 ()) engine
          ~latency:(Latency.Fixed 1.0) ~rng:(Rng.split rng)
          ~deliver:(fun m -> Source_node.handle sources.(i) m)
          ())
  in
  let warehouse =
    Node.create engine ~view ~algorithm:(module Sweep : Algorithm.S)
      ~send:(fun i msg -> Transport.link_send down.(i) msg)
      ~init:(Algebra.eval view (fun i -> inits.(i)))
      ()
  in
  node := Some warehouse;
  for k = 0 to 9 do
    Engine.at engine
      ~time:(float_of_int k)
      (fun () ->
        ignore
          (Source_node.local_update sources.(1)
             (Delta.insertion (Chain.tuple ~key:(k + 1) ~a:1 ~b:2))))
  done;
  (match Engine.run engine with `Drained -> () | _ -> assert false);
  let lost =
    Array.fold_left (fun acc l -> acc + Transport.link_frames_lost l) 0 down
  in
  Alcotest.(check bool) "frames were lost" true (lost > 0);
  Alcotest.(check bool) "warehouse quiesces" true (Node.idle warehouse);
  Alcotest.(check int) "all updates incorporated" 10
    (Node.metrics warehouse).Metrics.updates_incorporated;
  let verdict =
    Checker.check view
      { Checker.initial_sources = initial_copy;
        deliveries = Node.deliveries warehouse;
        installs =
          List.map
            (fun (r : Node.install_record) -> (r.txns, r.view_after))
            (Node.installs warehouse);
        final_view = Node.view_contents warehouse }
  in
  Alcotest.check Rig.verdict "still complete" Checker.Complete
    verdict.Checker.verdict

let suite =
  suite
  @ [ Alcotest.test_case "lossy channels wedge the protocol" `Quick
        test_lossy_channel_wedges_sweep;
      Alcotest.test_case "transport un-wedges the same lossy run" `Quick
        test_transport_unwedges_sweep ]
