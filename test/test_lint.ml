(* Golden tests for the repro_lint static-analysis pass: every rule has a
   positive fixture (must fire, with the expected rule ids and lines) and
   a negative fixture (must stay silent), so deleting any rule's
   implementation fails at least one case here. Plus pragma suppression,
   the JSON report shape, and the checkpoint-determinism invariant the
   L2 rule exists to protect. *)

open Repro_relational
open Repro_warehouse
open Repro_workload
module Driver = Repro_lint.Driver
module Finding = Repro_lint.Finding
module Jsonw = Repro_observability.Jsonw
module Jsonr = Repro_observability.Jsonr

let read_fixture name =
  let path = Filename.concat "lint_fixtures" name in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Fixtures are linted from source with an explicit [has_mli] so the
   result does not depend on sibling files. *)
let lint ?(has_mli = false) name =
  Driver.lint_source ~has_mli ~file:name (read_fixture name)

(* Lint a fixture as if it lived at [file] — for the path-scoped L6. *)
let lint_as ~file name =
  Driver.lint_source ~has_mli:false ~file (read_fixture name)

let rule_lines (r : Driver.file_report) =
  List.map (fun (f : Finding.t) -> (f.rule, f.line)) r.findings

let rule_line = Alcotest.(pair string int)

let check_findings name expected actual =
  Alcotest.(check (list rule_line)) name expected (rule_lines actual)

(* ————— rule golden tests ————— *)

let test_l1 () =
  check_findings "l1_pos fires per call"
    [ ("L1", 2); ("L1", 3); ("L1", 4); ("L1", 5); ("L1", 6) ]
    (lint "l1_pos.ml");
  check_findings "l1_neg silent" [] (lint "l1_neg.ml")

let test_l2 () =
  check_findings "l2_pos flags the fold" [ ("L2", 3) ] (lint "l2_pos.ml");
  check_findings "l2_neg silent" [] (lint "l2_neg.ml")

let test_l3 () =
  let r = lint "l3_pos.ml" in
  check_findings "l3_pos flags append and length" [ ("L3", 5); ("L3", 6) ] r;
  (match r.findings with
  | [ append; length ] ->
      Alcotest.(check string) "append is an error" "error"
        (Finding.severity_label append.Finding.severity);
      Alcotest.(check string) "length is a warning" "warning"
        (Finding.severity_label length.Finding.severity)
  | _ -> Alcotest.fail "expected two findings");
  check_findings "l3_neg silent" [] (lint "l3_neg.ml")

let test_l4 () =
  check_findings "l4_pos flags swallow and bare raise"
    [ ("L4", 3); ("L4", 4) ]
    (lint ~has_mli:true "l4_pos.ml");
  (* without an interface the bare raise is a local matter *)
  check_findings "l4_pos without mli keeps only the swallow" [ ("L4", 3) ]
    (lint ~has_mli:false "l4_pos.ml");
  check_findings "l4_neg silent" [] (lint ~has_mli:true "l4_neg.ml")

let test_l5 () =
  let r = lint "l5_pos.ml" in
  check_findings "l5_pos flags the dropped field" [ ("L5", 2) ] r;
  (match r.findings with
  | [ f ] ->
      let contains hay needle =
        let n = String.length needle and h = String.length hay in
        let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "message names the dropped field" true
        (contains f.Finding.message "t.label")
  | _ -> Alcotest.fail "expected one finding");
  check_findings "l5_neg silent" [] (lint "l5_neg.ml")

let test_l6 () =
  let r = lint_as ~file:"lib/warehouse/l6_pos.ml" "l6_pos.ml" in
  check_findings "l6_pos fires inside lib/warehouse" [ ("L6", 3) ] r;
  (match r.findings with
  | [ f ] ->
      Alcotest.(check string) "probe-less extend is an error" "error"
        (Finding.severity_label f.Finding.severity)
  | _ -> Alcotest.fail "expected one finding");
  check_findings "same source is silent outside the warehouse" []
    (lint_as ~file:"lib/source/l6_pos.ml" "l6_pos.ml");
  let neg = lint_as ~file:"lib/warehouse/l6_neg.ml" "l6_neg.ml" in
  check_findings "l6_neg: probe path silent, pragma'd scan suppressed" []
    neg;
  match neg.Driver.suppressed with
  | [ (f, _) ] ->
      Alcotest.(check string) "the deliberate scan rode its pragma" "L6"
        f.Finding.rule
  | _ -> Alcotest.fail "expected exactly one suppression"

(* ————— L7–L9: the cross-module rules ————— *)

let test_l7 () =
  let r = lint_as ~file:"lib/workload/l7_pos.ml" "l7_pos.ml" in
  check_findings "l7_pos flags every mutable toplevel"
    [ ("L7", 3); ("L7", 4); ("L7", 5); ("L7", 6); ("L7", 8) ]
    r;
  (match r.findings with
  | f :: _ ->
      Alcotest.(check string) "mutable toplevels are errors" "error"
        (Finding.severity_label f.Finding.severity)
  | [] -> Alcotest.fail "expected findings");
  check_findings "same source is silent outside lib/" []
    (lint_as ~file:"test/l7_pos.ml" "l7_pos.ml");
  let neg = lint_as ~file:"lib/workload/l7_neg.ml" "l7_neg.ml" in
  check_findings "l7_neg: factories and partials silent" [] neg;
  match neg.Driver.suppressed with
  | [ (f, p) ] ->
      Alcotest.(check string) "write-once registry rode its pragma" "L7"
        f.Finding.rule;
      Alcotest.(check bool) "with a reason" true
        (String.length p.Repro_lint.Pragma.reason > 0)
  | _ -> Alcotest.fail "expected exactly one L7 suppression"

(* Cross-module L7: the mutability fixpoint sees through a constructor
   defined in another unit. *)
let test_l7_cross_module () =
  let r =
    Driver.lint_sources
      [ ("lib/warehouse/reg.ml", "let table = Mk.fresh ()\n");
        ("lib/warehouse/mk.ml", "let fresh () = Hashtbl.create 16\n") ]
  in
  let reg =
    List.find (fun (fr : Driver.file_report) ->
        fr.file = "lib/warehouse/reg.ml")
      r.Driver.reports
  in
  check_findings "the alias of the foreign constructor is flagged"
    [ ("L7", 1) ] reg;
  let mk =
    List.find (fun (fr : Driver.file_report) ->
        fr.file = "lib/warehouse/mk.ml")
      r.Driver.reports
  in
  check_findings "the factory itself is fine" [] mk

let test_l8 () =
  check_findings "l8_pos flags each effect site"
    [ ("L8", 3); ("L8", 10) ]
    (lint_as ~file:"lib/warehouse/l8_pos.ml" "l8_pos.ml");
  check_findings "l8_neg: I/O off the handler paths is silent" []
    (lint_as ~file:"lib/warehouse/l8_neg.ml" "l8_neg.ml")

(* Cross-module L8: the reachability walk follows calls into other
   units but never enters lib/observability. *)
let test_l8_cross_module () =
  let io = ("lib/sim/helper_io.ml", "let emit x = print_endline x\n") in
  let r =
    Driver.lint_sources
      [ ("lib/warehouse/wh.ml", "let on_update x = Helper_io.emit x\n"); io ]
  in
  let helper =
    List.find (fun (fr : Driver.file_report) ->
        fr.file = "lib/sim/helper_io.ml")
      r.Driver.reports
  in
  check_findings "the effect site in the callee unit is flagged"
    [ ("L8", 1) ] helper;
  (match helper.findings with
  | [ f ] ->
      let contains hay needle =
        let n = String.length needle and h = String.length hay in
        let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "message carries the call chain" true
        (contains f.Finding.message "Wh.on_update")
  | _ -> Alcotest.fail "expected one finding");
  let obs =
    Driver.lint_sources
      [ ("lib/warehouse/wh.ml", "let on_update x = Obs.emit x\n");
        ("lib/observability/obs.ml", "let emit x = print_endline x\n") ]
  in
  Alcotest.(check int) "effects behind Obs are exempt" 0
    (List.length
       (List.concat_map
          (fun (fr : Driver.file_report) -> fr.findings)
          obs.Driver.reports))

let test_l9 () =
  let r = lint_as ~file:"lib/warehouse/l9_pos.ml" "l9_pos.ml" in
  check_findings "l9_pos flags each mutation-after-send"
    [ ("L9", 5); ("L9", 10) ]
    r;
  (match r.findings with
  | f :: _ ->
      Alcotest.(check string) "send-aliasing is an error" "error"
        (Finding.severity_label f.Finding.severity)
  | [] -> Alcotest.fail "expected findings");
  check_findings "l9_neg: copy-on-send and disjoint fields silent" []
    (lint_as ~file:"lib/warehouse/l9_neg.ml" "l9_neg.ml")

(* ————— pragmas ————— *)

let test_pragma_suppression () =
  let r = lint "pragma_ok.ml" in
  check_findings "no active findings" [] r;
  (match r.suppressed with
  | [ (f, p) ] ->
      Alcotest.(check string) "suppressed rule" "L1" f.Finding.rule;
      Alcotest.(check bool) "reason recorded" true
        (String.length p.Repro_lint.Pragma.reason > 0)
  | _ -> Alcotest.fail "expected exactly one suppression");
  let unused = lint "pragma_unused.ml" in
  check_findings "unused pragma warns" [ ("pragma", 1) ] unused;
  let bad = lint "pragma_bad.ml" in
  check_findings "malformed pragmas are errors"
    [ ("pragma", 1); ("pragma", 2) ]
    bad;
  Alcotest.(check bool) "malformed pragmas are error severity" true
    (List.for_all
       (fun (f : Finding.t) -> f.severity = Finding.Error)
       bad.findings);
  (* an unused pragma for a path-scoped rule warns even where the rule
     applies *)
  check_findings "unused L6 pragma warns inside the warehouse"
    [ ("pragma", 1) ]
    (lint_as ~file:"lib/warehouse/pragma_unused_l6.ml" "pragma_unused_l6.ml")

(* Suppression audit: the pragma count the driver reports per file must
   equal the raw occurrences of the marker in the source — so a pragma
   the scanner silently dropped (neither honored nor reported malformed)
   cannot hide. *)
let test_suppression_audit () =
  let marker = "(* " ^ "lint: allow" in
  let occurrences hay =
    let n = String.length marker and h = String.length hay in
    let count = ref 0 in
    for i = 0 to h - n do
      if String.sub hay i n = marker then incr count
    done;
    !count
  in
  let fixtures =
    Sys.readdir "lint_fixtures" |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".ml")
    |> List.sort String.compare
  in
  Alcotest.(check bool) "fixture directory is populated" true
    (List.length fixtures > 10);
  List.iter
    (fun name ->
      let source = read_fixture name in
      let r = Driver.lint_source ~has_mli:false ~file:name source in
      Alcotest.(check int)
        (Printf.sprintf "%s: pragma_count matches raw markers" name)
        (occurrences source) r.Driver.pragma_count)
    fixtures

(* ————— JSON report ————— *)

let test_json_report () =
  let report =
    { Driver.files = 2;
      reports = [ lint "l3_pos.ml"; lint "pragma_ok.ml" ] }
  in
  let doc = Jsonr.parse_exn (Driver.render_json report) in
  let field k = function
    | Jsonw.Obj kvs -> List.assoc k kvs
    | _ -> Alcotest.fail "expected an object"
  in
  Alcotest.(check string) "version" "repro-lint/1"
    (match field "version" doc with
    | Jsonw.String s -> s
    | _ -> "?");
  Alcotest.(check bool) "error count" true
    (field "errors" doc = Jsonw.Int 1);
  Alcotest.(check bool) "warning count" true
    (field "warnings" doc = Jsonw.Int 1);
  (match field "findings" doc with
  | Jsonw.List fs ->
      Alcotest.(check int) "findings listed" 2 (List.length fs);
      List.iter
        (fun f ->
          List.iter
            (fun k ->
              match field k f with
              | (exception Not_found) ->
                  Alcotest.fail (Printf.sprintf "finding lacks %S" k)
              | _ -> ())
            [ "file"; "line"; "col"; "rule"; "severity"; "message"; "hint" ])
        fs
  | _ -> Alcotest.fail "findings is not a list");
  match field "suppressions" doc with
  | Jsonw.List [ s ] ->
      Alcotest.(check bool) "suppression carries its reason" true
        (match field "reason" s with
        | Jsonw.String r -> String.length r > 0
        | _ -> false)
  | _ -> Alcotest.fail "expected one suppression in the report"

(* ————— SARIF round trip ————— *)

(* The SARIF document must survive the repo's own JSON reader with the
   2.1.0 shape intact: schema/version header, the full rule table, one
   result per active finding, and the invocation verdict. *)
let test_sarif_round_trip () =
  let reports =
    [ lint "l3_pos.ml"; lint_as ~file:"lib/workload/l7_pos.ml" "l7_pos.ml";
      lint "pragma_ok.ml" ]
  in
  let report = { Driver.files = 3; reports } in
  let n_findings =
    List.length
      (List.concat_map (fun (r : Driver.file_report) -> r.findings) reports)
  in
  let doc = Jsonr.parse_exn (Driver.render_sarif report) in
  let field k = function
    | Jsonw.Obj kvs -> List.assoc k kvs
    | _ -> Alcotest.fail "expected an object"
  in
  Alcotest.(check bool) "schema" true
    (field "$schema" doc
    = Jsonw.String "https://json.schemastore.org/sarif-2.1.0.json");
  Alcotest.(check bool) "version" true
    (field "version" doc = Jsonw.String "2.1.0");
  let run =
    match field "runs" doc with
    | Jsonw.List [ r ] -> r
    | _ -> Alcotest.fail "expected exactly one run"
  in
  let driver = field "driver" (field "tool" run) in
  Alcotest.(check bool) "tool name" true
    (field "name" driver = Jsonw.String "repro-lint");
  (match field "rules" driver with
  | Jsonw.List rules ->
      Alcotest.(check int) "rule table covers L1–L9" 9 (List.length rules);
      List.iter
        (fun r ->
          match (field "id" r, field "shortDescription" r) with
          | Jsonw.String _, Jsonw.Obj _ -> ()
          | _ -> Alcotest.fail "rule lacks id or shortDescription")
        rules
  | _ -> Alcotest.fail "rules is not a list");
  (match field "results" run with
  | Jsonw.List results ->
      Alcotest.(check int) "one result per active finding" n_findings
        (List.length results);
      List.iter
        (fun r ->
          match (field "ruleId" r, field "level" r, field "locations" r) with
          | Jsonw.String _, Jsonw.String _, Jsonw.List [ loc ] -> (
              let region =
                field "region" (field "physicalLocation" loc)
              in
              match field "startLine" region with
              | Jsonw.Int l when l >= 1 -> ()
              | _ -> Alcotest.fail "startLine missing or < 1")
          | _ -> Alcotest.fail "result lacks ruleId/level/locations")
        results
  | _ -> Alcotest.fail "results is not a list");
  (match field "invocations" run with
  | Jsonw.List [ inv ] ->
      Alcotest.(check bool) "errors make the invocation unsuccessful" true
        (field "executionSuccessful" inv = Jsonw.Bool false)
  | _ -> Alcotest.fail "expected one invocation");
  match field "properties" run with
  | Jsonw.Obj _ as props ->
      Alcotest.(check bool) "properties count suppressions" true
        (field "suppressions" props = Jsonw.Int 1)
  | _ -> Alcotest.fail "properties is not an object"

(* ————— incremental planning (--changed) ————— *)

let test_incremental_plan () =
  let units =
    [ ("lib/a.ml", "let one = 1\n");
      ("lib/b.ml", "let two = A.one + 1\n");
      ("lib/c.ml", "let three = 3\n") ]
  in
  let graph = Driver.graph_of_sources units in
  let all_files = List.map fst units in
  let plan changed = Driver.incremental_plan ~graph ~all_files ~changed in
  (match plan [ "lib/c.ml" ] with
  | `Subset [ "lib/c.ml" ] -> ()
  | `Subset _ -> Alcotest.fail "leaf change selected the wrong subset"
  | `Full r -> Alcotest.fail ("leaf change forced a full run: " ^ r));
  (match plan [ "lib/a.ml" ] with
  | `Full _ -> ()
  | `Subset _ ->
      Alcotest.fail "a change to a referenced unit must force a full run");
  (match plan [ "lib/b.mli" ] with
  | `Full _ -> ()
  | `Subset _ ->
      Alcotest.fail "an interface change must force a full run");
  (match plan [ "README.md" ] with
  | `Subset [] -> ()
  | `Subset _ | `Full _ ->
      Alcotest.fail "a non-OCaml change should lint nothing");
  match plan [ "lib/other.mli" ] with
  | `Subset [] -> ()
  | `Subset _ | `Full _ ->
      Alcotest.fail "an interface outside the graph should not force a run"

(* ————— checkpoint determinism (the invariant behind L2) ————— *)

module Checkpoint = Repro_durability.Checkpoint

let view = Chain.view ~n:3 ()

let initial () =
  [| Relation.of_tuples [ Chain.tuple ~key:0 ~a:0 ~b:1 ];
     Relation.of_tuples [ Chain.tuple ~key:0 ~a:1 ~b:2 ];
     Relation.of_tuples [ Chain.tuple ~key:0 ~a:2 ~b:3 ] |]

let updates =
  [ (0.0, 2, Delta.insertion (Chain.tuple ~key:1 ~a:2 ~b:9));
    (0.5, 0, Delta.insertion (Chain.tuple ~key:1 ~a:7 ~b:1));
    (3.5, 0, Delta.deletion (Chain.tuple ~key:0 ~a:0 ~b:1)) ]

let checkpoint_bytes algorithm =
  let outcome = Rig.scripted ~algorithm ~view ~initial:(initial ()) ~updates () in
  Checkpoint.encode
    (Node.checkpoint outcome.Rig.node ~wal_pos:0 ~recv_expected:[| 0; 0; 0 |]
       ~senders:[||])

let test_checkpoints_byte_identical () =
  List.iter
    (fun (name, algorithm) ->
      let a = checkpoint_bytes algorithm in
      let b = checkpoint_bytes algorithm in
      Alcotest.(check bool)
        (name ^ ": identical runs checkpoint to identical bytes")
        true (String.equal a b);
      (* decode → re-encode is also stable, so any Hashtbl-order
         dependence in the encoding path would show up twice over *)
      Alcotest.(check string)
        (name ^ ": re-encoding a decoded checkpoint is stable")
        a
        (Checkpoint.encode (Checkpoint.decode a)))
    [ ("sweep", (module Sweep : Algorithm.S));
      ("sweep-global", (module Sweep_global : Algorithm.S));
      ("sweep-batched", (module Sweep_batched : Algorithm.S));
      ("sweep-pipelined", (module Sweep_pipelined : Algorithm.S));
      ("strobe", (module Strobe : Algorithm.S));
      ("c-strobe", (module C_strobe : Algorithm.S)) ]

let suite =
  [ Alcotest.test_case "L1: determinism fixtures" `Quick test_l1;
    Alcotest.test_case "L2: iteration-order fixtures" `Quick test_l2;
    Alcotest.test_case "L3: quadratic fixtures" `Quick test_l3;
    Alcotest.test_case "L4: exception-hygiene fixtures" `Quick test_l4;
    Alcotest.test_case "L5: snapshot-completeness fixtures" `Quick test_l5;
    Alcotest.test_case "L6: warehouse probe-less-extend fixtures" `Quick
      test_l6;
    Alcotest.test_case "L7: toplevel-mutable-state fixtures" `Quick test_l7;
    Alcotest.test_case "L7: cross-module mutability fixpoint" `Quick
      test_l7_cross_module;
    Alcotest.test_case "L8: hot-path-effects fixtures" `Quick test_l8;
    Alcotest.test_case "L8: cross-module reachability and Obs exemption"
      `Quick test_l8_cross_module;
    Alcotest.test_case "L9: send-aliasing fixtures" `Quick test_l9;
    Alcotest.test_case "pragmas: suppression, unused, malformed" `Quick
      test_pragma_suppression;
    Alcotest.test_case "pragma audit: driver count equals raw markers"
      `Quick test_suppression_audit;
    Alcotest.test_case "JSON report decodes with expected shape" `Quick
      test_json_report;
    Alcotest.test_case "SARIF 2.1.0 document round-trips through Jsonr"
      `Quick test_sarif_round_trip;
    Alcotest.test_case "incremental --changed planning" `Quick
      test_incremental_plan;
    Alcotest.test_case "checkpoints are byte-identical across runs" `Quick
      test_checkpoints_byte_identical ]
