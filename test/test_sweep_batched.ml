(* Batched SWEEP: amortized sweeps over coalesced batches of queued
   updates. The batch install must be *completely* consistent (it covers
   exactly the next deliveries, in delivery order), degenerate to plain
   SWEEP at batch_max = 1, survive faults and warehouse crashes, and
   actually amortize messages under bursty load. *)

open Repro_relational
open Repro_warehouse
open Repro_consistency
open Repro_harness
open Repro_workload
open Repro_sim

let view = Chain.view ~n:3 ()

let initial () =
  [| Relation.of_tuples [ Chain.tuple ~key:0 ~a:0 ~b:1 ];
     Relation.of_tuples [ Chain.tuple ~key:0 ~a:1 ~b:2 ];
     Relation.of_tuples [ Chain.tuple ~key:0 ~a:2 ~b:3 ] |]

(* A burst: while the first update's sweep is in flight, three more queue
   up; the head-of-queue drain must coalesce them into one batched sweep
   and install once, and the checker must grade the history complete. *)
let test_scripted_burst_batches () =
  let outcome =
    Rig.scripted ~algorithm:(module Sweep_batched : Algorithm.S) ~view
      ~initial:(initial ())
      ~updates:
        [ (0.0, 2, Delta.insertion (Chain.tuple ~key:1 ~a:2 ~b:9));
          (0.4, 0, Delta.deletion (Chain.tuple ~key:0 ~a:0 ~b:1));
          (0.6, 1, Delta.insertion (Chain.tuple ~key:1 ~a:9 ~b:2));
          (0.8, 0, Delta.insertion (Chain.tuple ~key:1 ~a:0 ~b:1)) ]
      ()
  in
  let m = Node.metrics outcome.node in
  Alcotest.(check int) "all updates incorporated" 4
    m.Metrics.updates_incorporated;
  Alcotest.(check bool) "fewer installs than updates" true
    (m.Metrics.installs < 4);
  Alcotest.(check bool) "a real batch formed" true (m.Metrics.max_batch >= 2);
  Alcotest.(check int) "one batch per install" m.Metrics.installs
    m.Metrics.batches;
  Alcotest.check Rig.verdict "complete" Checker.Complete
    (Rig.check outcome).Checker.verdict

(* batch_max = 1 degenerates to plain SWEEP: same messages, same
   installs, bit-identical final view. *)
let concurrent_scenario ?(batch_max = 16) seed =
  { Scenario.default with
    Scenario.name = "batched-concurrent";
    n_sources = 4;
    init_size = 20;
    domain = 6;
    stream = { Update_gen.default with n_updates = 60; mean_gap = 0.3 };
    batch_max;
    seed }

let test_batch_max_one_is_sweep () =
  List.iter
    (fun seed ->
      let sc = concurrent_scenario ~batch_max:1 seed in
      let batched = Experiment.run sc (Sweep_batched.with_batch_max 1) in
      let sweep = Experiment.run sc (module Sweep : Algorithm.S) in
      let bm = batched.Experiment.metrics and sm = sweep.Experiment.metrics in
      Alcotest.(check int) "same queries" sm.Metrics.queries_sent
        bm.Metrics.queries_sent;
      Alcotest.(check int) "same answers" sm.Metrics.answers_received
        bm.Metrics.answers_received;
      Alcotest.(check int) "same installs" sm.Metrics.installs
        bm.Metrics.installs;
      Alcotest.check Rig.bag "same final view" sweep.Experiment.final_view
        batched.Experiment.final_view;
      Alcotest.check Rig.verdict "complete" Checker.Complete
        batched.Experiment.verdict.Checker.verdict)
    [ 3L; 4L; 5L ]

(* Batching changes the install granularity but never the data: the final
   view must be bit-identical to one-at-a-time SWEEP on the same seed. *)
let qcheck_batched_equals_sweep_final =
  QCheck.Test.make ~name:"batched ≡ sweep final views" ~count:15
    (QCheck.pair (QCheck.int_range 1 4) (QCheck.int_range 1 10_000))
    (fun (batch_max, seed) ->
      let sc = concurrent_scenario ~batch_max (Int64.of_int seed) in
      let batched =
        Experiment.run sc (Sweep_batched.with_batch_max batch_max)
      in
      let sweep = Experiment.run sc (module Sweep : Algorithm.S) in
      batched.Experiment.completed
      && Bag.equal batched.Experiment.final_view sweep.Experiment.final_view
      && Checker.compare_verdict batched.Experiment.verdict.Checker.verdict
           Checker.Complete
         = 0)

(* The headline property (issue acceptance): on 100 seeded degraded
   networks — loss, duplication, one source outage — every run quiesces,
   incorporates every update, and still grades complete. *)
let n_updates = 20

let degraded_scenario seed =
  { Scenario.default with
    Scenario.name = "batched-degraded";
    init_size = 12;
    domain = 8;
    stream = { Update_gen.default with Update_gen.n_updates; mean_gap = 1.5 };
    faults =
      { Fault.link = Fault.lossy ~drop:0.2 ~duplicate:0.1 ();
        crashes = [ { Fault.source = 1; down_at = 8.; up_at = 25. } ];
        wh_crashes = [] };
    seed }

let test_complete_under_faults () =
  for seed = 0 to 99 do
    let sc = degraded_scenario (Int64.of_int seed) in
    let r = Experiment.run sc (module Sweep_batched : Algorithm.S) in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d quiesces" seed)
      true r.Experiment.completed;
    Alcotest.(check int)
      (Printf.sprintf "seed %d all updates in" seed)
      n_updates r.Experiment.metrics.Metrics.updates_incorporated;
    Alcotest.check Rig.verdict
      (Printf.sprintf "seed %d complete" seed)
      Checker.Complete r.Experiment.verdict.Checker.verdict
  done

(* Crash recovery: mid-run warehouse outages (WAL + checkpoint restart,
   including a checkpointed in-flight batch) must not lose or double-count
   anything — final view bit-identical to the crash-free twin. *)
let crashy_scenario ?(wh_crashes = []) seed =
  { Scenario.default with
    Scenario.name = "batched-crashy";
    init_size = 12;
    domain = 8;
    stream = { Update_gen.default with Update_gen.n_updates; mean_gap = 1.5 };
    faults =
      { Fault.link = Fault.lossy ~drop:0.1 ~duplicate:0.05 (); crashes = [];
        wh_crashes };
    checkpoint_every = 4;
    seed }

let test_crash_recovery_round_trip () =
  for seed = 0 to 11 do
    let seed = Int64.of_int seed in
    let crashed =
      Experiment.run
        (crashy_scenario
           ~wh_crashes:
             [ { Fault.wh_down_at = 6.; wh_up_at = 14. };
               { Fault.wh_down_at = 22.; wh_up_at = 30. } ]
           seed)
        (module Sweep_batched : Algorithm.S)
    in
    let clean =
      Experiment.run (crashy_scenario seed)
        (module Sweep_batched : Algorithm.S)
    in
    Alcotest.(check bool)
      (Printf.sprintf "seed %Ld crashed run quiesces" seed)
      true crashed.Experiment.completed;
    Alcotest.(check bool)
      (Printf.sprintf "seed %Ld crash path exercised" seed)
      true
      (crashed.Experiment.metrics.Metrics.wh_crashes = 2);
    Alcotest.(check bool)
      (Printf.sprintf "seed %Ld final views bit-identical" seed)
      true
      (Bag.equal crashed.Experiment.final_view clean.Experiment.final_view);
    Alcotest.(check bool)
      (Printf.sprintf "seed %Ld at least strong" seed)
      true
      (Checker.compare_verdict crashed.Experiment.verdict.Checker.verdict
         Checker.Strong
      <= 0)
  done

(* Amortization: under bursty load the batched sweep must spend strictly
   fewer messages per update than plain SWEEP, with real batches (≥ 4)
   doing the amortizing. *)
let bursty_scenario seed =
  { Scenario.default with
    Scenario.name = "batched-bursty";
    n_sources = 4;
    init_size = 20;
    domain = 6;
    stream = { Update_gen.default with n_updates = 80; mean_gap = 0.1 };
    seed }

let test_messages_amortized () =
  let batched =
    Experiment.run (bursty_scenario 21L) (module Sweep_batched : Algorithm.S)
  in
  let sweep =
    Experiment.run (bursty_scenario 21L) (module Sweep : Algorithm.S)
  in
  let bm = batched.Experiment.metrics and sm = sweep.Experiment.metrics in
  Alcotest.(check bool) "batches of at least 4 formed" true
    (bm.Metrics.max_batch >= 4);
  Alcotest.(check bool)
    (Printf.sprintf "messages per update amortized (%.2f < %.2f)"
       (Metrics.messages_per_update bm)
       (Metrics.messages_per_update sm))
    true
    (Metrics.messages_per_update bm < Metrics.messages_per_update sm);
  Alcotest.check Rig.verdict "still complete" Checker.Complete
    batched.Experiment.verdict.Checker.verdict

let test_bad_batch_max_rejected () =
  Alcotest.(check bool) "batch_max = 0 rejected at create" true
    (match
       Rig.scripted ~algorithm:(Sweep_batched.with_batch_max 0) ~view
         ~initial:(initial ()) ~updates:[] ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  [ Alcotest.test_case "burst coalesces into a complete batch install"
      `Quick test_scripted_burst_batches;
    Alcotest.test_case "batch_max = 1 is plain SWEEP" `Slow
      test_batch_max_one_is_sweep;
    QCheck_alcotest.to_alcotest qcheck_batched_equals_sweep_final;
    Alcotest.test_case "complete on 100 degraded seeds" `Slow
      test_complete_under_faults;
    Alcotest.test_case "crash recovery round trip" `Slow
      test_crash_recovery_round_trip;
    Alcotest.test_case "amortizes messages under bursts" `Slow
      test_messages_amortized;
    Alcotest.test_case "rejects batch_max < 1" `Quick
      test_bad_batch_max_rejected ]
