(* Unit tests for the consistency checker itself, using hand-built
   observations over the paper's example so each verdict level is
   exercised against a known ground truth. *)

open Repro_relational
open Repro_protocol
open Repro_consistency

let view = (Paper_example.view ())

let deliveries =
  (* delivery order: ΔR2, ΔR3, ΔR1 with per-source seq numbers *)
  let mk source seq (_, delta) =
    { Message.txn = { Message.source; seq }; delta; occurred_at = 0.; global = None }
  in
  [ mk 1 0 (Paper_example.d_r2 ()); mk 2 0 (Paper_example.d_r3 ());
    mk 0 0 (Paper_example.d_r1 ()) ]

let txn k = (List.nth deliveries k).Message.txn

let obs installs final =
  { Checker.initial_sources = Paper_example.initial (); deliveries; installs;
    final_view = final }

let test_expected_states () =
  let states =
    Checker.expected_states view ~initial:(Paper_example.initial ())
      ~deliveries
  in
  Alcotest.(check int) "four states" 4 (Array.length states);
  Alcotest.check Rig.bag "s0" (Paper_example.v0 ()) states.(0);
  Alcotest.check Rig.bag "s1" (Paper_example.v1 ()) states.(1);
  Alcotest.check Rig.bag "s2" (Paper_example.v2 ()) states.(2);
  Alcotest.check Rig.bag "s3" (Paper_example.v3 ()) states.(3)

let test_complete_accepted () =
  let r =
    Checker.check view
      (obs
         [ ([ txn 0 ], (Paper_example.v1 ())); ([ txn 1 ], (Paper_example.v2 ()));
           ([ txn 2 ], (Paper_example.v3 ())) ]
         (Paper_example.v3 ()))
  in
  Alcotest.check Rig.verdict "complete" Checker.Complete r.Checker.verdict

let test_contiguous_batching_complete () =
  (* two updates installed as one batch covering exactly the next two
     deliveries: a contiguous run, so still complete (Sweep_batched's
     install shape) *)
  let r =
    Checker.check view
      (obs
         [ ([ txn 0; txn 1 ], (Paper_example.v2 ())); ([ txn 2 ], (Paper_example.v3 ())) ]
         (Paper_example.v3 ()))
  in
  Alcotest.check Rig.verdict "complete" Checker.Complete r.Checker.verdict

let test_strong_batching_accepted () =
  (* the first install batches deliveries 0 and 2, skipping over source
     2's delivery 1: a legal serialization (per-source orders respected)
     but not a delivery-order prefix — strong, not complete *)
  let states =
    Checker.expected_states view ~initial:(Paper_example.initial ())
      ~deliveries:
        [ List.nth deliveries 0; List.nth deliveries 2; List.nth deliveries 1 ]
  in
  let r =
    Checker.check view
      (obs
         [ ([ txn 0; txn 2 ], states.(2)); ([ txn 1 ], (Paper_example.v3 ())) ]
         (Paper_example.v3 ()))
  in
  Alcotest.check Rig.verdict "strong" Checker.Strong r.Checker.verdict

let test_strong_rejects_gaps () =
  (* skipping ΔR3 while installing ΔR1: delivery of source 2 never
     incorporated → only convergent if final happens to match, here it
     does not *)
  let r =
    Checker.check view
      (obs
         [ ([ txn 0 ], (Paper_example.v1 ())); ([ txn 2 ], (Paper_example.v3 ())) ]
         (Paper_example.v3 ()))
  in
  Alcotest.(check bool) "not strong" true
    (Checker.compare_verdict r.Checker.verdict Checker.Strong > 0)

let test_out_of_order_same_source_rejected () =
  (* two updates of one source applied out of order must not be strong *)
  let d1 = Delta.insertion (Tuple.ints [ 9; 5 ]) in
  let d2 = Delta.deletion (Tuple.ints [ 3; 7 ]) in
  let deliveries =
    [ { Message.txn = { Message.source = 1; seq = 0 }; delta = d1;
        occurred_at = 0.; global = None };
      { Message.txn = { Message.source = 1; seq = 1 }; delta = d2;
        occurred_at = 0.; global = None } ]
  in
  let states =
    Checker.expected_states view ~initial:(Paper_example.initial ())
      ~deliveries
  in
  let final = states.(2) in
  let r =
    Checker.check view
      { Checker.initial_sources = Paper_example.initial (); deliveries;
        installs =
          [ ([ { Message.source = 1; seq = 1 } ], final);
            ([ { Message.source = 1; seq = 0 } ], final) ];
        final_view = final }
  in
  Alcotest.(check bool) "reordered source txns rejected" true
    (Checker.compare_verdict r.Checker.verdict Checker.Strong > 0)

let test_convergent () =
  (* garbage intermediate state but correct final state *)
  let junk = Bag.of_list [ (Tuple.ints [ 0; 0 ], 1) ] in
  let r =
    Checker.check view
      (obs
         [ ([ txn 0 ], junk); ([ txn 1 ], junk); ([ txn 2 ], (Paper_example.v3 ())) ]
         (Paper_example.v3 ()))
  in
  Alcotest.check Rig.verdict "convergent" Checker.Convergent r.Checker.verdict

let test_inconsistent () =
  let junk = Bag.of_list [ (Tuple.ints [ 0; 0 ], 1) ] in
  let r = Checker.check view (obs [ ([ txn 0 ], junk) ] junk) in
  Alcotest.check Rig.verdict "inconsistent" Checker.Inconsistent
    r.Checker.verdict

let test_verdict_order () =
  Alcotest.(check bool) "complete < strong" true
    (Checker.compare_verdict Checker.Complete Checker.Strong < 0);
  Alcotest.(check bool) "strong < convergent" true
    (Checker.compare_verdict Checker.Strong Checker.Convergent < 0);
  Alcotest.(check bool) "convergent < inconsistent" true
    (Checker.compare_verdict Checker.Convergent Checker.Inconsistent < 0)

let suite =
  [ Alcotest.test_case "expected states replay Figure 5" `Quick
      test_expected_states;
    Alcotest.test_case "accepts complete histories" `Quick
      test_complete_accepted;
    Alcotest.test_case "contiguous batching is complete" `Quick
      test_contiguous_batching_complete;
    Alcotest.test_case "accepts strong batching" `Quick
      test_strong_batching_accepted;
    Alcotest.test_case "rejects skipped updates" `Quick
      test_strong_rejects_gaps;
    Alcotest.test_case "rejects per-source reordering" `Quick
      test_out_of_order_same_source_rejected;
    Alcotest.test_case "classifies convergent" `Quick test_convergent;
    Alcotest.test_case "classifies inconsistent" `Quick test_inconsistent;
    Alcotest.test_case "verdict ordering" `Quick test_verdict_order ]

(* Mutation testing of the checker itself: perturbing a known-complete
   history in any way must degrade the verdict. A checker that accepts
   mutants would silently bless broken algorithms. *)
let complete_installs () =
  [ ([ txn 0 ], (Paper_example.v1 ())); ([ txn 1 ], (Paper_example.v2 ()));
    ([ txn 2 ], (Paper_example.v3 ())) ]

let degraded r = Checker.compare_verdict r.Checker.verdict Checker.Complete > 0

let test_mutation_snapshot_tuple () =
  (* add a spurious tuple to one snapshot *)
  let installs =
    List.mapi
      (fun i (txns, snap) ->
        if i = 1 then begin
          let snap = Bag.copy snap in
          Bag.add snap (Tuple.ints [ 4; 4 ]) 1;
          (txns, snap)
        end
        else (txns, snap))
      (complete_installs ())
  in
  Alcotest.(check bool) "spurious tuple caught" true
    (degraded (Checker.check view (obs installs (Paper_example.v3 ()))))

let test_mutation_count_off_by_one () =
  let installs =
    List.mapi
      (fun i (txns, snap) ->
        if i = 0 then begin
          let snap = Bag.copy snap in
          Bag.add snap (Tuple.ints [ 5; 6 ]) (-1);
          (txns, snap)
        end
        else (txns, snap))
      (complete_installs ())
  in
  Alcotest.(check bool) "multiplicity error caught" true
    (degraded (Checker.check view (obs installs (Paper_example.v3 ()))))

let test_mutation_swapped_installs () =
  let installs =
    match complete_installs () with
    | [ a; b; c ] -> [ b; a; c ]
    | _ -> assert false
  in
  Alcotest.(check bool) "swapped installs caught" true
    (degraded (Checker.check view (obs installs (Paper_example.v3 ()))))

let test_mutation_duplicated_txn () =
  (* the same txn claimed by two installs *)
  let installs =
    match complete_installs () with
    | [ (t0, s0); (_, s1); c ] -> [ (t0, s0); (t0, s1); c ]
    | _ -> assert false
  in
  Alcotest.(check bool) "duplicate claim caught" true
    (degraded (Checker.check view (obs installs (Paper_example.v3 ()))))

let test_mutation_dropped_install () =
  let installs =
    match complete_installs () with
    | [ a; _; c ] -> [ a; c ]
    | _ -> assert false
  in
  Alcotest.(check bool) "missing install caught" true
    (degraded (Checker.check view (obs installs (Paper_example.v3 ()))))

(* Degenerate inputs: the checker must classify trivial runs correctly
   rather than crash or misgrade them — empty initial database, runs with
   no updates at all, and runs whose every delta is a no-op. *)

let test_degenerate_empty_initial () =
  let n = Repro_relational.View_def.n_sources view in
  let initial = Array.init n (fun _ -> Relation.create ()) in
  let states = Checker.expected_states view ~initial ~deliveries:[] in
  Alcotest.(check int) "one state (the initial view)" 1 (Array.length states);
  Alcotest.(check bool) "empty sources give an empty view" true
    (Bag.is_empty states.(0));
  let r =
    Checker.check view
      { Checker.initial_sources = initial; deliveries = []; installs = [];
        final_view = Bag.create () }
  in
  Alcotest.check Rig.verdict "empty run is complete" Checker.Complete
    r.Checker.verdict

let test_degenerate_zero_updates () =
  let r =
    Checker.check view
      { Checker.initial_sources = Paper_example.initial (); deliveries = [];
        installs = []; final_view = (Paper_example.v0 ()) }
  in
  Alcotest.check Rig.verdict "no-update run is complete" Checker.Complete
    r.Checker.verdict;
  let wrong = Bag.of_list [ (Tuple.ints [ 1; 2 ], 1) ] in
  let r =
    Checker.check view
      { Checker.initial_sources = Paper_example.initial (); deliveries = [];
        installs = []; final_view = wrong }
  in
  Alcotest.check Rig.verdict "wrong final view still caught"
    Checker.Inconsistent r.Checker.verdict

let test_degenerate_all_noop_deltas () =
  let mk source seq =
    { Message.txn = { Message.source; seq }; delta = Delta.empty ();
      occurred_at = 0.; global = None }
  in
  let deliveries = [ mk 0 0; mk 1 0; mk 0 1 ] in
  let states =
    Checker.expected_states view ~initial:(Paper_example.initial ())
      ~deliveries
  in
  Array.iter
    (fun s -> Alcotest.check Rig.bag "every state is the initial view"
        (Paper_example.v0 ()) s)
    states;
  let txn k = (List.nth deliveries k).Message.txn in
  let r =
    Checker.check view
      { Checker.initial_sources = Paper_example.initial (); deliveries;
        installs =
          [ ([ txn 0 ], (Paper_example.v0 ())); ([ txn 1 ], (Paper_example.v0 ()));
            ([ txn 2 ], (Paper_example.v0 ())) ];
        final_view = (Paper_example.v0 ()) }
  in
  Alcotest.check Rig.verdict "per-update no-op installs are complete"
    Checker.Complete r.Checker.verdict;
  let r =
    Checker.check view
      { Checker.initial_sources = Paper_example.initial (); deliveries;
        installs = [ ([ txn 0; txn 1; txn 2 ], (Paper_example.v0 ())) ];
        final_view = (Paper_example.v0 ()) }
  in
  Alcotest.(check bool) "batched no-op install at least strong" true
    (Checker.compare_verdict r.Checker.verdict Checker.Strong <= 0)

(* Degraded-mode degenerate inputs: a run that ends with breakers still
   open may have delivered nothing, installed nothing, or consist purely
   of reads. [check ~degraded:true] must still grade these rather than
   crash or misclassify. *)

let test_degraded_zero_updates () =
  (* nothing delivered, nothing installed, view untouched: the run is
     trivially complete even under the degraded grader — degraded mode
     must not demote a vacuous history *)
  let r =
    Checker.check ~degraded:true view
      { Checker.initial_sources = Paper_example.initial (); deliveries = [];
        installs = []; final_view = (Paper_example.v0 ()) }
  in
  Alcotest.check Rig.verdict "zero-update degraded run is complete"
    Checker.Complete r.Checker.verdict

let test_degraded_read_only_with_parked_updates () =
  (* updates were delivered but the breaker opened before any install:
     the view honestly reflects the empty incorporated subset, so the
     run grades Degraded — not Inconsistent, and not a crash *)
  let r =
    Checker.check ~degraded:true view
      { Checker.initial_sources = Paper_example.initial (); deliveries;
        installs = []; final_view = (Paper_example.v0 ()) }
  in
  Alcotest.check Rig.verdict "parked deliveries grade degraded"
    Checker.Degraded r.Checker.verdict;
  (* without the degraded flag the same history is inconsistent: the
     deliveries were never incorporated and the final view differs from
     the fully-updated state *)
  let r =
    Checker.check view
      { Checker.initial_sources = Paper_example.initial (); deliveries;
        installs = []; final_view = (Paper_example.v0 ()) }
  in
  Alcotest.check Rig.verdict "same history without the flag is inconsistent"
    Checker.Inconsistent r.Checker.verdict

let test_degraded_dishonest_final_view_rejected () =
  (* degraded mode is not a free pass: if the final view does not match
     the incorporated subset's state it is still inconsistent *)
  let junk = Bag.of_list [ (Tuple.ints [ 0; 0 ], 1) ] in
  let r =
    Checker.check ~degraded:true view
      { Checker.initial_sources = Paper_example.initial (); deliveries;
        installs = []; final_view = junk }
  in
  Alcotest.check Rig.verdict "dishonest degraded view rejected"
    Checker.Inconsistent r.Checker.verdict

let suite =
  suite
  @ [ Alcotest.test_case "degenerate: empty initial database" `Quick
        test_degenerate_empty_initial;
      Alcotest.test_case "degraded: zero-update run still grades" `Quick
        test_degraded_zero_updates;
      Alcotest.test_case "degraded: read-only run with parked updates" `Quick
        test_degraded_read_only_with_parked_updates;
      Alcotest.test_case "degraded: dishonest final view rejected" `Quick
        test_degraded_dishonest_final_view_rejected;
      Alcotest.test_case "degenerate: zero updates" `Quick
        test_degenerate_zero_updates;
      Alcotest.test_case "degenerate: all no-op deltas" `Quick
        test_degenerate_all_noop_deltas;
      Alcotest.test_case "mutant: spurious tuple" `Quick
        test_mutation_snapshot_tuple;
      Alcotest.test_case "mutant: multiplicity off by one" `Quick
        test_mutation_count_off_by_one;
      Alcotest.test_case "mutant: swapped installs" `Quick
        test_mutation_swapped_installs;
      Alcotest.test_case "mutant: duplicated txn claim" `Quick
        test_mutation_duplicated_txn;
      Alcotest.test_case "mutant: dropped install" `Quick
        test_mutation_dropped_install ]
