open Repro_relational
open Repro_workload

let view2 = Chain.view ~n:2 ()
let view3 = Chain.view ~n:3 ()

(* Deterministic small relation generator for properties. *)
let gen_relation =
  QCheck.map
    (fun entries ->
      Relation.of_list
        (List.map
           (fun ((k : int), a, b) -> (Chain.tuple ~key:k ~a ~b, 1))
           (List.sort_uniq compare entries)))
    QCheck.(small_list (triple (int_range 0 9) (int_range 0 3) (int_range 0 3)))

let test_join_counts_multiply () =
  (* counts multiply across a join: 2 copies ⋈ 3 copies = 6 derivations *)
  let left =
    { Partial.lo = 0; hi = 0;
      data = Delta.of_list [ (Chain.tuple ~key:0 ~a:0 ~b:7, 2) ] }
  in
  let right =
    { Partial.lo = 1; hi = 1;
      data = Delta.of_list [ (Chain.tuple ~key:0 ~a:7 ~b:0, 3) ] }
  in
  let joined = Algebra.join view2 left right in
  Alcotest.(check int) "one distinct tuple" 1 (Partial.cardinal joined);
  Alcotest.(check int) "count 6" 6 (Partial.weight joined)

let test_join_sign_propagation () =
  let left =
    { Partial.lo = 0; hi = 0;
      data = Delta.of_list [ (Chain.tuple ~key:0 ~a:0 ~b:7, -1) ] }
  in
  let right =
    { Partial.lo = 1; hi = 1;
      data = Delta.of_list [ (Chain.tuple ~key:0 ~a:7 ~b:0, -2) ] }
  in
  let joined = Algebra.join view2 left right in
  Delta.iter
    (fun _ c -> Alcotest.(check int) "(-1)·(-2) = 2" 2 c)
    joined.Partial.data

let test_join_requires_adjacency () =
  let p0 = { Partial.lo = 0; hi = 0; data = Delta.empty () } in
  let p2 = { Partial.lo = 2; hi = 2; data = Delta.empty () } in
  Alcotest.(check bool) "non-adjacent rejected" true
    (match Algebra.join view3 p0 p2 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_extend_both_sides () =
  let r0 = Relation.of_tuples [ Chain.tuple ~key:0 ~a:1 ~b:5 ] in
  let r2 = Relation.of_tuples [ Chain.tuple ~key:0 ~a:6 ~b:9 ] in
  let mid =
    { Partial.lo = 1; hi = 1;
      data = Delta.of_list [ (Chain.tuple ~key:3 ~a:5 ~b:6, 1) ] }
  in
  let left = Algebra.extend view3 mid ~with_relation:(0, r0) in
  Alcotest.(check int) "left extension matched" 1 (Partial.cardinal left);
  Alcotest.(check int) "covers 0..1" 0 left.Partial.lo;
  let both = Algebra.extend view3 left ~with_relation:(2, r2) in
  Alcotest.(check bool) "covers all" true (Partial.covers_all view3 both);
  Alcotest.(check bool) "overlapping extend rejected" true
    (match Algebra.extend view3 left ~with_relation:(0, r0) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_select_project () =
  let sel = Predicate.cmp_const Predicate.Gt 1 (Value.int 0) in
  let v = Chain.view ~n:2 ~selection:sel ~projection:[| 0; 3 |] ~name:"sp" () in
  let full =
    { Partial.lo = 0; hi = 1;
      data =
        Delta.of_list
          [ (Tuple.ints [ 1; 1; 7; 10; 7; 2 ], 1);
            (* fails selection: a = 0 *)
            (Tuple.ints [ 2; 0; 7; 11; 7; 2 ], 1);
            (* projects onto the same view tuple as the first *)
            (Tuple.ints [ 1; 2; 8; 10; 8; 3 ], 2) ]
    }
  in
  let out = Algebra.select_project v full in
  Alcotest.check Rig.delta "selection filters, projection accumulates"
    (Delta.of_list [ (Tuple.ints [ 1; 10 ], 3) ])
    out;
  Alcotest.(check bool) "partial coverage rejected" true
    (match
       Algebra.select_project v { full with Partial.hi = 0 }
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_compensate_example () =
  (* the §5.2 compensation: answer − ΔR1 ⋈ TempView *)
  let view = (Paper_example.view ()) in
  let temp =
    { Partial.lo = 1; hi = 1; data = Delta.of_list [ (Tuple.ints [ 3; 5 ], 1) ] }
  in
  let answer =
    { Partial.lo = 0; hi = 1;
      data = Delta.of_list [ (Tuple.ints [ 1; 3; 3; 5 ], 1) ] }
  in
  let interfering = Delta.deletion (Tuple.ints [ 2; 3 ]) in
  let fixed = Algebra.compensate view ~answer ~interfering ~temp in
  Alcotest.check Rig.delta "both derivations restored"
    (Delta.of_list
       [ (Tuple.ints [ 1; 3; 3; 5 ], 1); (Tuple.ints [ 2; 3; 3; 5 ], 1) ])
    fixed.Partial.data

(* The central algebra property: the incremental delta equals the
   recomputation difference, for inserts and deletes, on 2-way and 3-way
   chains. ΔV = R ⋈ … ⋈ ΔRi ⋈ … ⋈ R computed on the pre-update state. *)
let incremental_matches_recompute view n =
  QCheck.Test.make
    ~name:(Printf.sprintf "incremental = recompute (n=%d)" n)
    ~count:200
    (QCheck.pair
       (QCheck.list_of_size (QCheck.Gen.return n) gen_relation)
       (QCheck.triple (QCheck.int_range 0 (n - 1)) (QCheck.int_range 0 3)
          (QCheck.int_range 0 3)))
    (fun (rels, (i, a, b)) ->
      let rels = Array.of_list rels in
      let before = Algebra.eval view (fun j -> rels.(j)) in
      (* insert a fresh tuple, or delete an existing one when possible *)
      let delta =
        match Relation.to_sorted_list rels.(i) with
        | (victim, _) :: _ when (a + b) mod 2 = 0 -> Delta.deletion victim
        | _ -> Delta.insertion (Chain.tuple ~key:100 ~a ~b)
      in
      let partial = ref (Partial.of_source_delta view i delta) in
      for j = i - 1 downto 0 do
        partial := Algebra.extend view !partial ~with_relation:(j, rels.(j))
      done;
      for j = i + 1 to n - 1 do
        partial := Algebra.extend view !partial ~with_relation:(j, rels.(j))
      done;
      let dv = Algebra.select_project view !partial in
      (match Relation.apply rels.(i) delta with
      | Ok () -> ()
      | Error _ -> QCheck.assume_fail ());
      let after = Algebra.eval view (fun j -> rels.(j)) in
      let expected = Delta.of_relation after in
      Bag.diff_into ~into:expected (Relation.as_bag before);
      Delta.equal dv expected)

let suite =
  [ Alcotest.test_case "join multiplies counts" `Quick
      test_join_counts_multiply;
    Alcotest.test_case "join propagates signs" `Quick
      test_join_sign_propagation;
    Alcotest.test_case "join adjacency enforced" `Quick
      test_join_requires_adjacency;
    Alcotest.test_case "extend on both sides" `Quick test_extend_both_sides;
    Alcotest.test_case "select and project" `Quick test_select_project;
    Alcotest.test_case "compensation (paper example)" `Quick
      test_compensate_example;
    QCheck_alcotest.to_alcotest (incremental_matches_recompute view2 2);
    QCheck_alcotest.to_alcotest (incremental_matches_recompute view3 3) ]
