(* Nested SWEEP behaviour: recursive absorption of concurrent updates,
   batch installs, message amortization, and the forced-termination
   fallback under adversarial alternation (paper §6.2). *)

open Repro_relational
open Repro_warehouse
open Repro_consistency
open Repro_workload
open Repro_harness

let view = Chain.view ~n:3 ()

let initial () =
  [| Relation.of_tuples [ Chain.tuple ~key:0 ~a:0 ~b:1 ];
     Relation.of_tuples [ Chain.tuple ~key:0 ~a:1 ~b:2 ];
     Relation.of_tuples [ Chain.tuple ~key:0 ~a:2 ~b:3 ] |]

let test_recursion_absorbs_concurrent () =
  (* same interleaving that forces a SWEEP compensation: nested sweep must
     absorb the concurrent update into one batch install *)
  let outcome =
    Rig.scripted ~algorithm:(module Nested_sweep : Algorithm.S) ~view
      ~initial:(initial ())
      ~updates:
        [ (0.0, 2, Delta.insertion (Chain.tuple ~key:1 ~a:2 ~b:9));
          (3.5, 0, Delta.deletion (Chain.tuple ~key:0 ~a:0 ~b:1)) ]
      ()
  in
  let m = Node.metrics outcome.node in
  Alcotest.(check int) "one recursion" 1 m.Metrics.recursions;
  Alcotest.(check int) "one batched install" 1 m.Metrics.installs;
  Alcotest.(check int) "both updates incorporated" 2
    m.Metrics.updates_incorporated;
  (* the batch covers every delivery so far — a contiguous run, which the
     checker now grades complete rather than merely strong *)
  Alcotest.check Rig.verdict "complete" Checker.Complete
    (Rig.check outcome).Checker.verdict

let test_no_concurrency_identical_to_sweep () =
  (* paper §6.2: with a single update Nested SWEEP *is* SWEEP *)
  let updates =
    [ (0.0, 1, Delta.insertion (Chain.tuple ~key:1 ~a:1 ~b:2));
      (50.0, 0, Delta.insertion (Chain.tuple ~key:1 ~a:7 ~b:1)) ]
  in
  let a =
    Rig.scripted ~algorithm:(module Nested_sweep : Algorithm.S) ~view
      ~initial:(initial ()) ~updates ()
  in
  let b =
    Rig.scripted ~algorithm:(module Sweep : Algorithm.S) ~view
      ~initial:(initial ()) ~updates ()
  in
  Alcotest.check Rig.bag "same final view" (Rig.final_view b)
    (Rig.final_view a);
  Alcotest.(check int) "same query count"
    (Node.metrics b.node).Metrics.queries_sent
    (Node.metrics a.node).Metrics.queries_sent;
  Alcotest.check Rig.verdict "complete when sequential" Checker.Complete
    (Rig.check a).Checker.verdict

let concurrent_scenario ~algorithm ~seed =
  let sc =
    { Scenario.default with
      n_sources = 4;
      init_size = 20;
      domain = 6;
      stream =
        { Update_gen.default with n_updates = 80; mean_gap = 0.25 };
      seed }
  in
  Experiment.run sc algorithm

let test_amortization_under_load () =
  (* under heavy concurrency nested sweep must batch (fewer installs than
     updates) and spend no more queries than SWEEP *)
  let nested =
    concurrent_scenario ~algorithm:(module Nested_sweep : Algorithm.S)
      ~seed:21L
  in
  let sweep =
    concurrent_scenario ~algorithm:(module Sweep : Algorithm.S) ~seed:21L
  in
  let nm = nested.Experiment.metrics and sm = sweep.Experiment.metrics in
  Alcotest.(check bool) "fewer installs than updates" true
    (nm.Metrics.installs < nm.Metrics.updates_incorporated);
  Alcotest.(check bool) "queries amortized vs sweep" true
    (nm.Metrics.queries_sent <= sm.Metrics.queries_sent);
  Alcotest.(check bool) "recursions happened" true (nm.Metrics.recursions > 0)

let test_adversarial_alternation_falls_back () =
  (* endpoints alternate tightly; with a tiny depth budget the fallback
     must fire and the run must still terminate strongly consistent *)
  let sc =
    { Scenario.default with
      n_sources = 3;
      init_size = 15;
      domain = 4;
      stream =
        { Update_gen.default with
          n_updates = 40; mean_gap = 0.15;
          placement = Update_gen.Alternating (0, 2) };
      seed = 5L }
  in
  let r = Experiment.run sc (Nested_sweep.with_max_depth 2) in
  Alcotest.(check bool) "terminated with fallbacks" true
    (r.Experiment.metrics.Metrics.fallbacks > 0);
  Alcotest.(check bool) "still at least strong" true
    (Checker.compare_verdict r.Experiment.verdict.Checker.verdict
       Checker.Strong
    <= 0);
  Alcotest.(check int) "depth bounded" 2 r.Experiment.metrics.Metrics.max_depth

let qcheck_nested_strong =
  QCheck.Test.make ~name:"nested sweep: ≥ strong on random runs" ~count:12
    (QCheck.pair (QCheck.int_range 2 5) (QCheck.int_range 1 10_000))
    (fun (n, seed) ->
      let sc =
        { Scenario.default with
          n_sources = n;
          init_size = 15;
          domain = 6;
          stream =
            { Update_gen.default with
              n_updates = 25; mean_gap = 0.3; p_insert = 0.55 };
          seed = Int64.of_int seed }
      in
      let r = Experiment.run sc (module Nested_sweep : Algorithm.S) in
      Checker.compare_verdict r.Experiment.verdict.Checker.verdict
        Checker.Strong
      <= 0)

let suite =
  [ Alcotest.test_case "absorbs concurrent update recursively" `Quick
      test_recursion_absorbs_concurrent;
    Alcotest.test_case "identical to sweep when sequential" `Quick
      test_no_concurrency_identical_to_sweep;
    Alcotest.test_case "amortizes messages under load" `Slow
      test_amortization_under_load;
    Alcotest.test_case "adversarial alternation: bounded + fallback" `Slow
      test_adversarial_alternation_falls_back;
    QCheck_alcotest.to_alcotest qcheck_nested_strong ]

(* Two-level recursion, scripted: an update at source 1 interferes with
   the main sweep, and while its recursive frame is sweeping, an update
   at source 2 interferes with *that* — a grandchild frame (depth 3).
   All three end up in one strongly consistent batch. *)
let test_two_level_recursion () =
  let view4 = Chain.view ~n:4 () in
  let initial =
    Array.init 4 (fun _ ->
        Relation.of_tuples [ Chain.tuple ~key:0 ~a:0 ~b:0 ])
  in
  let outcome =
    Rig.scripted ~algorithm:(module Nested_sweep : Algorithm.S) ~view:view4
      ~initial
      ~updates:
        [ (0.0, 3, Delta.insertion (Chain.tuple ~key:1 ~a:0 ~b:0));
          (3.5, 1, Delta.insertion (Chain.tuple ~key:1 ~a:0 ~b:0));
          (5.5, 2, Delta.insertion (Chain.tuple ~key:1 ~a:0 ~b:0)) ]
      ()
  in
  let m = Node.metrics outcome.node in
  Alcotest.(check int) "two recursive frames" 2 m.Metrics.recursions;
  Alcotest.(check int) "depth three" 3 m.Metrics.max_depth;
  Alcotest.(check int) "single batch install" 1 m.Metrics.installs;
  Alcotest.(check int) "all three updates in it" 3
    m.Metrics.updates_incorporated;
  (* all three deliveries land in the one batch: contiguous → complete *)
  Alcotest.check Rig.verdict "complete" Checker.Complete
    (Rig.check outcome).Checker.verdict

let suite =
  suite
  @ [ Alcotest.test_case "two-level recursion (grandchild frame)" `Quick
        test_two_level_recursion ]
