(* Test rig: thin wrapper over the harness's scripted runner plus alcotest
   testables shared by the suites. *)

open Repro_relational
open Repro_warehouse
open Repro_consistency
open Repro_harness

type outcome = Experiment.scripted_outcome = {
  node : Node.t;
  view : View_def.t;
  initial_sources : Relation.t array;
  trace : Repro_sim.Trace.t;
  engine : Repro_sim.Engine.t;
}

let scripted ?latency ?(algorithm = (module Sweep : Algorithm.S)) ?seed ~view
    ~initial ~updates () =
  Experiment.run_scripted ?latency ?seed ~algorithm ~view ~initial ~updates ()

let check = Experiment.check_scripted

(* Alcotest testables. *)
let bag = Alcotest.testable Bag.pp Bag.equal
let delta = Alcotest.testable Delta.pp Delta.equal
let relation = Alcotest.testable Relation.pp Relation.equal
let tuple = Alcotest.testable Tuple.pp Tuple.equal
let value = Alcotest.testable Value.pp Value.equal

let verdict =
  Alcotest.testable Checker.pp_verdict (fun a b ->
      Checker.compare_verdict a b = 0)

let final_view outcome = Node.view_contents outcome.node

(* ————— seeded storm scaffolding ————— *)

(* The seeded property suites (chaos, serving, aux) share one shape: an
   env-scaled seed count, a loop over seeds, and a deterministic-replay
   core. Factored here so a new suite is the invariants, not the rig. *)

(* Seed count for an env-scaled suite: $VAR if set and parseable
   (clamped to >= 1), else [default] — `dune runtest` stays fast while
   `make chaos` / `make serve` / `make aux` raise the count. *)
let seeds_env ~var ~default =
  match Sys.getenv_opt var with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> max 1 n
      | None -> default)
  | None -> default

(* Run [f seed] for [n] seeds starting at [from] (default 1, the storm
   suites' convention; the recovery fuzzers start at 0). *)
let for_seeds ?(from = 1) n f =
  for seed = from to from + n - 1 do
    f seed
  done

(* Deterministic-replay core: two runs of the same seeded scenario must
   agree bit-for-bit on the final view and tick-for-tick on the
   simulation. Suites layer their own equalities on top (breaker trips,
   read logs, WAL counters, aux snapshots). [ctx] prefixes the check
   names, e.g. "sweep seed 3". *)
let check_replay ~ctx (a : Experiment.result) (b : Experiment.result) =
  Alcotest.check bag (ctx ^ ": replay is bit-identical")
    a.Experiment.final_view b.Experiment.final_view;
  Alcotest.(check int) (ctx ^ ": replay: same events") a.Experiment.events
    b.Experiment.events;
  Alcotest.(check (float 0.)) (ctx ^ ": replay: same sim time")
    a.Experiment.sim_time b.Experiment.sim_time
