open Repro_relational

let t1 = Tuple.ints [ 1 ]
let t2 = Tuple.ints [ 2 ]
let t3 = Tuple.ints [ 3 ]

let test_add_cancel () =
  let b = Bag.create () in
  Bag.add b t1 3;
  Bag.add b t1 (-3);
  Alcotest.(check bool) "cancelled entry removed" true (Bag.is_empty b);
  Bag.add b t1 0;
  Alcotest.(check bool) "zero add is no-op" true (Bag.is_empty b)

let test_counts () =
  let b = Bag.of_list [ (t1, 2); (t2, -1) ] in
  Alcotest.(check int) "count t1" 2 (Bag.count b t1);
  Alcotest.(check int) "count t2" (-1) (Bag.count b t2);
  Alcotest.(check int) "count absent" 0 (Bag.count b t3);
  Alcotest.(check int) "cardinal" 2 (Bag.cardinal b);
  Alcotest.(check int) "total" 1 (Bag.total b);
  Alcotest.(check int) "weight" 3 (Bag.weight b);
  Alcotest.(check bool) "has_negative" true (Bag.has_negative b)

let test_merge_diff () =
  let a = Bag.of_list [ (t1, 1); (t2, 2) ] in
  let b = Bag.of_list [ (t2, -2); (t3, 5) ] in
  let m = Bag.copy a in
  Bag.merge_into ~into:m b;
  Alcotest.check Rig.bag "merge" (Bag.of_list [ (t1, 1); (t3, 5) ]) m;
  let d = Bag.copy a in
  Bag.diff_into ~into:d a;
  Alcotest.(check bool) "a - a = empty" true (Bag.is_empty d)

let test_merge_into_self () =
  (* regression: iterating [src] while mutating [into] is undefined when
     they alias; the copy-on-alias guard makes self-merge double every
     multiplicity *)
  let b = Bag.of_list [ (t1, 2); (t2, -1) ] in
  Bag.merge_into ~into:b b;
  Alcotest.check Rig.bag "self-merge doubles"
    (Bag.of_list [ (t1, 4); (t2, -2) ])
    b

let test_diff_into_self () =
  let b = Bag.of_list [ (t1, 3); (t3, 7) ] in
  Bag.diff_into ~into:b b;
  Alcotest.(check bool) "self-diff empties" true (Bag.is_empty b)

let test_sorted_list_deterministic () =
  let b = Bag.of_list [ (t3, 1); (t1, 1); (t2, 1) ] in
  Alcotest.(check (list int))
    "sorted by tuple" [ 1; 2; 3 ]
    (List.map
       (fun (tup, _) ->
         match Tuple.get tup 0 with Value.Int i -> i | _ -> assert false)
       (Bag.to_sorted_list b))

let test_equal_ignores_structure () =
  let a = Bag.create () in
  Bag.add a t1 1;
  Bag.add a t1 1;
  let b = Bag.of_list [ (t1, 2) ] in
  Alcotest.(check bool) "accumulated = direct" true (Bag.equal a b)

(* Property: of_list sums duplicate entries. *)
let qcheck_of_list_sums =
  let entry = QCheck.(pair (int_range 0 3) (int_range (-3) 3)) in
  QCheck.Test.make ~name:"bag of_list sums duplicates"
    (QCheck.small_list entry)
    (fun entries ->
      let b =
        Bag.of_list (List.map (fun (k, c) -> (Tuple.ints [ k ], c)) entries)
      in
      List.for_all
        (fun k ->
          let expected =
            List.fold_left
              (fun acc (k', c) -> if k = k' then acc + c else acc)
              0 entries
          in
          Bag.count b (Tuple.ints [ k ]) = expected)
        [ 0; 1; 2; 3 ])

(* Property: merge then diff restores the original. *)
let qcheck_merge_diff_roundtrip =
  let entry = QCheck.(pair (int_range 0 5) (int_range (-4) 4)) in
  QCheck.Test.make ~name:"bag merge/diff roundtrip"
    (QCheck.pair (QCheck.small_list entry) (QCheck.small_list entry))
    (fun (l1, l2) ->
      let mk l = Bag.of_list (List.map (fun (k, c) -> (Tuple.ints [ k ], c)) l) in
      let a = mk l1 and b = mk l2 in
      let x = Bag.copy a in
      Bag.merge_into ~into:x b;
      Bag.diff_into ~into:x b;
      Bag.equal x a)

let suite =
  [ Alcotest.test_case "add cancels to empty" `Quick test_add_cancel;
    Alcotest.test_case "counts and sizes" `Quick test_counts;
    Alcotest.test_case "merge and diff" `Quick test_merge_diff;
    Alcotest.test_case "merge into itself" `Quick test_merge_into_self;
    Alcotest.test_case "diff against itself" `Quick test_diff_into_self;
    Alcotest.test_case "sorted list deterministic" `Quick
      test_sorted_list_deterministic;
    Alcotest.test_case "equality is content-based" `Quick
      test_equal_ignores_structure;
    QCheck_alcotest.to_alcotest qcheck_of_list_sums;
    QCheck_alcotest.to_alcotest qcheck_merge_diff_roundtrip ]
