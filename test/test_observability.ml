(* The observability layer: histogram quantile accuracy and merge
   algebra, the pinned Figure 5 span tree, the zero-overhead contract
   (enabling observability cannot change a run; disabling it reproduces
   the pre-instrumentation goldens), the JSON writer, and the BENCH.json
   schema validator (the CI perf gate). *)

open Repro_observability
open Repro_warehouse
open Repro_harness

(* ------------------------------------------------------------------ *)
(* Histogram: quantiles vs exact sorted order, merge equality           *)
(* ------------------------------------------------------------------ *)

(* The exact quantile under the histogram's own rank convention:
   rank ⌈p·n⌉, 1-based. *)
let exact_quantile sorted p =
  let n = Array.length sorted in
  let rank = max 1 (int_of_float (Float.ceil (p *. float_of_int n))) in
  sorted.(rank - 1)

(* One full bucket of relative error: the estimate is the geometric
   midpoint of the bucket holding the exact ranked sample, so the ratio
   between them is < 10^(1/bpd). *)
let bucket_ratio = Float.pow 10. (1. /. float_of_int Histogram.default_buckets_per_decade)

let test_quantile_accuracy () =
  for seed = 1 to 50 do
    let st = Random.State.make [| seed |] in (* lint: allow L1 test-local PRNG with a literal seed: deterministic across runs *)
    let samples =
      (* three decades of strictly positive spread *)
      Array.init 1000 (fun _ -> Float.pow 10. (Random.State.float st 3.)) (* lint: allow L1 drawn from the literal-seeded state above *)
    in
    let h = Histogram.create () in
    Array.iter (Histogram.record h) samples;
    let sorted = Array.copy samples in
    Array.sort compare sorted;
    List.iter
      (fun p ->
        let exact = exact_quantile sorted p in
        let est = Histogram.quantile h p in
        let lo = exact /. bucket_ratio *. (1. -. 1e-9)
        and hi = exact *. bucket_ratio *. (1. +. 1e-9) in
        if not (est >= lo && est <= hi) then
          Alcotest.failf
            "seed %d p%.0f: estimate %.6f outside [%.6f, %.6f] (exact %.6f)"
            seed (100. *. p) est lo hi exact)
      [ 0.50; 0.90; 0.99 ]
  done

let test_quantile_extremes () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 1.0; 10.0; 100.0 ];
  Alcotest.(check (float 0.)) "p=1 is the exact max" 100.0
    (Histogram.quantile h 1.0);
  Alcotest.(check (float 0.)) "empty answers 0" 0.0
    (Histogram.quantile (Histogram.create ()) 0.5)

let test_zero_bucket () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 0.0; 0.0; 0.0; 5.0 ];
  Alcotest.(check (float 0.)) "median of mostly-zero samples" 0.0
    (Histogram.p50 h);
  Alcotest.(check int) "count includes zeros" 4 (Histogram.count h)

let test_merge_equals_union () =
  for seed = 1 to 10 do
    let st = Random.State.make [| 0xbeef + seed |] in (* lint: allow L1 test-local PRNG with a literal seed: deterministic across runs *)
    let samples =
      Array.init 1000 (fun _ -> Float.pow 10. (Random.State.float st 3.)) (* lint: allow L1 drawn from the literal-seeded state above *)
    in
    let all = Histogram.create () in
    let h1 = Histogram.create () in
    let h2 = Histogram.create () in
    Array.iteri
      (fun i v ->
        Histogram.record all v;
        Histogram.record (if i < 500 then h1 else h2) v)
      samples;
    let m = Histogram.merge h1 h2 in
    Alcotest.(check int) "count" (Histogram.count all) (Histogram.count m);
    Alcotest.(check (float 0.)) "min" (Histogram.min_value all)
      (Histogram.min_value m);
    Alcotest.(check (float 0.)) "max" (Histogram.max_value all)
      (Histogram.max_value m);
    (* bucket populations are integers, so every quantile is identical *)
    List.iter
      (fun p ->
        Alcotest.(check (float 0.))
          (Printf.sprintf "p%.0f" (100. *. p))
          (Histogram.quantile all p) (Histogram.quantile m p))
      [ 0.1; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99; 1.0 ];
    (* the sum is float arithmetic in a different association order *)
    Alcotest.(check bool) "mean within 1e-9 relative" true
      (Float.abs (Histogram.mean all -. Histogram.mean m)
      <= 1e-9 *. Float.abs (Histogram.mean all))
  done

let test_merge_precision_mismatch () =
  let a = Histogram.create ~buckets_per_decade:10 () in
  let b = Histogram.create ~buckets_per_decade:20 () in
  Alcotest.check_raises "precision mismatch raises"
    (Invalid_argument "Histogram.merge: precision mismatch") (fun () ->
      ignore (Histogram.merge a b))

(* ------------------------------------------------------------------ *)
(* Figure 5: the pinned span tree                                       *)
(* ------------------------------------------------------------------ *)

(* The §5.2 schedule (same as test_figure5.ml): ΔR2 at t=0, ΔR3 at 1.4,
   ΔR1 at 1.5; unit per-hop latency. The rendered tree is pinned byte
   for byte — Tracer.render is deterministic (events in emission order,
   children in creation order), so any drift in span structure, naming,
   timestamps or attributes fails here. *)
let figure5_expected =
  String.concat "\n"
    [ "@1.000 update.delivered txn=u1.0 weight=1";
      "@2.400 update.delivered txn=u2.0 weight=1";
      "@2.500 update.delivered txn=u0.0 weight=1";
      "@5.000 install txns=1 weight=2 negative=false";
      "@9.000 install txns=1 weight=2 negative=false";
      "@13.000 install txns=1 weight=1 negative=false";
      "[1.000..5.000] sweep.txn txn=u1.0";
      "  @3.000 compensate source=0 interfering=1";
      "  @5.000 compensate source=2 interfering=1";
      "  [1.000..3.000] query source=0 qid=1";
      "  [3.000..5.000] query source=2 qid=1";
      "[5.000..9.000] sweep.txn txn=u2.0";
      "  @9.000 compensate source=0 interfering=1";
      "  [5.000..7.000] query source=1 qid=2";
      "  [7.000..9.000] query source=0 qid=2";
      "[9.000..13.000] sweep.txn txn=u0.0";
      "  [9.000..11.000] query source=1 qid=3";
      "  [11.000..13.000] query source=2 qid=3"; "" ]

let figure5_updates () =
  let s2, d2 = Repro_workload.(Paper_example.d_r2 ()) in
  let s3, d3 = Repro_workload.(Paper_example.d_r3 ()) in
  let s1, d1 = Repro_workload.(Paper_example.d_r1 ()) in
  [ (0.0, s2, d2); (1.4, s3, d3); (1.5, s1, d1) ]

let run_figure5 obs =
  Experiment.run_scripted ~obs ~algorithm:(module Sweep : Algorithm.S)
    ~view:Repro_workload.(Paper_example.view ())
    ~initial:(Repro_workload.Paper_example.initial ())
    ~updates:(figure5_updates ()) ()

let test_figure5_span_tree () =
  let obs = Obs.create () in
  let _outcome = run_figure5 obs in
  Alcotest.(check string) "pinned span tree" figure5_expected
    (Tracer.render (Obs.tracer obs))

let test_figure5_span_tree_stable () =
  (* two runs, same schedule → same bytes (determinism of the tracer,
     not just of the simulation) *)
  let render () =
    let obs = Obs.create () in
    let _ = run_figure5 obs in
    Tracer.render (Obs.tracer obs)
  in
  Alcotest.(check string) "identical across runs" (render ()) (render ())

(* ------------------------------------------------------------------ *)
(* Zero overhead: observability cannot change a run                     *)
(* ------------------------------------------------------------------ *)

(* Goldens for Sweep on Scenario.default, pinned before the
   instrumentation landed. The disabled-obs run must still produce
   exactly these, and the enabled-obs run must match it field for
   field — recording draws no randomness and schedules no events. *)
let test_zero_overhead () =
  let run obs = Experiment.run ~obs Scenario.default (module Sweep : Algorithm.S) in
  let off = run (Obs.disabled ()) in
  let on_ = run (Obs.create ()) in
  let m = off.Experiment.metrics in
  Alcotest.(check int) "golden installs" 100 m.Metrics.installs;
  Alcotest.(check int) "golden incorporated" 100 m.Metrics.updates_incorporated;
  Alcotest.(check int) "golden queries" 200 m.Metrics.queries_sent;
  Alcotest.(check int) "golden view size" 346 off.Experiment.final_view_tuples;
  Alcotest.(check int) "golden events" 601 off.Experiment.events;
  Alcotest.(check (float 0.)) "golden sim time" 423.0719946358177
    off.Experiment.sim_time;
  Alcotest.check Rig.verdict "golden verdict"
    Repro_consistency.Checker.Complete
    off.Experiment.verdict.Repro_consistency.Checker.verdict;
  (* enabled vs disabled: byte-identical run *)
  Alcotest.(check (list (pair string (float 0.))))
    "identical metrics"
    (List.map
       (fun (k, v) ->
         (k, match v with `Int i -> float_of_int i | `Float f -> f))
       (Metrics.fields off.Experiment.metrics))
    (List.map
       (fun (k, v) ->
         (k, match v with `Int i -> float_of_int i | `Float f -> f))
       (Metrics.fields on_.Experiment.metrics));
  Alcotest.(check (float 0.)) "identical sim time" off.Experiment.sim_time
    on_.Experiment.sim_time;
  Alcotest.(check int) "identical events" off.Experiment.events
    on_.Experiment.events;
  Alcotest.check Rig.bag "identical final view" off.Experiment.final_view
    on_.Experiment.final_view;
  (* and the enabled run actually recorded something *)
  let obs = Obs.create () in
  let r = Experiment.run ~obs Scenario.default (module Sweep : Algorithm.S) in
  ignore r;
  Alcotest.(check bool) "staleness histogram populated" true
    (Histogram.count (Obs.histogram obs "staleness") > 0)

let test_disabled_records_nothing () =
  let obs = Obs.disabled () in
  let _ = run_figure5 obs in
  Alcotest.(check int) "no histograms" 0 (List.length (Obs.histograms obs));
  Alcotest.(check string) "no spans" "" (Tracer.render (Obs.tracer obs))

let test_mute_suspends () =
  let obs = Obs.create () in
  Obs.observe obs "x" 1.0;
  Obs.mute obs;
  Obs.observe obs "x" 2.0;
  Alcotest.(check bool) "inactive while muted" false (Obs.active obs);
  Obs.unmute obs;
  Obs.observe obs "x" 3.0;
  Alcotest.(check int) "muted sample dropped" 2
    (Histogram.count (Obs.histogram obs "x"))

(* ------------------------------------------------------------------ *)
(* Jsonw: escaping, non-finite rejection, round-trip through Jsonr      *)
(* ------------------------------------------------------------------ *)

let test_jsonw_escaping () =
  Alcotest.(check string) "RFC 8259 escapes"
    {|"a\"b\\c\nd\te\u0001f"|}
    (Jsonw.to_string (Jsonw.str "a\"b\\c\nd\te\x01f"));
  Alcotest.(check string) "UTF-8 passes through" {|"Δ⋈"|}
    (Jsonw.to_string (Jsonw.str "Δ⋈"))

let test_jsonw_non_finite () =
  List.iter
    (fun f ->
      match Jsonw.to_string (Jsonw.obj [ ("x", Jsonw.float f) ]) with
      | _ -> Alcotest.failf "%.1f rendered instead of raising" f
      | exception Invalid_argument _ -> ())
    [ Float.nan; Float.infinity; Float.neg_infinity ]

let test_jsonw_float_round_trip () =
  List.iter
    (fun f ->
      let s = Jsonw.to_string (Jsonw.float f) in
      Alcotest.(check (float 0.))
        (Printf.sprintf "%s round-trips" s)
        f (float_of_string s))
    [ 0.1; 423.0719946358177; 1e-300; -1.5; 0.0 ]

(* Numeric-aware structural equality: Jsonw.float 2. renders as "2",
   which the reader hands back as Int 2 — same JSON value. *)
let rec json_equiv a b =
  match (a, b) with
  | Jsonw.Int x, Jsonw.Float y | Jsonw.Float y, Jsonw.Int x ->
      float_of_int x = y
  | Jsonw.List xs, Jsonw.List ys ->
      List.length xs = List.length ys && List.for_all2 json_equiv xs ys (* lint: allow L3 length guard protecting for_all2; one-shot comparison *)
  | Jsonw.Obj xs, Jsonw.Obj ys ->
      List.length xs = List.length ys (* lint: allow L3 length guard protecting for_all2; one-shot comparison *)
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> k1 = k2 && json_equiv v1 v2)
           xs ys
  | a, b -> a = b

let test_registry_round_trip () =
  (* A registry entry with live histograms and spans, rendered by the
     writer and re-read by the independent decoder. *)
  let t = ref 0.0 in
  let obs = Obs.create ~clock:(fun () -> !t) () in
  let s = Obs.span obs "txn" [ ("txn", Tracer.S "u0.0") ] in
  t := 1.0;
  Obs.event obs ~span:s "compensate" [ ("source", Tracer.I 2) ];
  t := 2.5;
  Obs.finish obs s;
  List.iter (Obs.observe obs "staleness") [ 0.5; 1.5; 2.5 ];
  let registry = Registry.create () in
  let _entry =
    Registry.add registry ~algorithm:"sweep" ~scenario:"golden \"quoted\""
      ~obs
      ~counters:
        [ ("installs", `Int 3); ("sim_time", `Float 2.5);
          ("verdict", `Str "complete") ]
      ()
  in
  let doc = Registry.to_json ~spans:true registry in
  let reread = Jsonr.parse_exn (Jsonw.to_string ~indent:2 doc) in
  Alcotest.(check bool) "writer → reader round-trip" true
    (json_equiv doc reread);
  (* spot-check through the decoder's eyes *)
  match reread with
  | Jsonw.List [ entry ] ->
      Alcotest.(check (option string)) "scenario survives escaping"
        (Some "golden \"quoted\"")
        (match Jsonw.member "scenario" entry with
        | Some (Jsonw.String s) -> Some s
        | _ -> None);
      let hist =
        Option.bind
          (Jsonw.member "histograms" entry)
          (Jsonw.member "staleness")
      in
      Alcotest.(check (option int)) "histogram count survives" (Some 3)
        (match Option.bind hist (Jsonw.member "count") with
        | Some (Jsonw.Int n) -> Some n
        | _ -> None)
  | _ -> Alcotest.fail "expected a one-entry list"

let test_jsonr_rejects_garbage () =
  List.iter
    (fun s ->
      match Jsonr.parse s with
      | Ok _ -> Alcotest.failf "%S parsed" s
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\" 1}"; "nul"; "\"unterminated"; "1 2" ]

(* ------------------------------------------------------------------ *)
(* Bench_doc.validate: the CI perf gate                                 *)
(* ------------------------------------------------------------------ *)

let small_scenario =
  { Scenario.default with
    Scenario.name = "gate";
    stream =
      { Scenario.default.Scenario.stream with
        Repro_workload.Update_gen.n_updates = 10 } }

let make_doc () =
  let registry = Registry.create () in
  let obs = Obs.create () in
  let r = Experiment.run ~obs ~check:false small_scenario (module Sweep : Algorithm.S) in
  let _ = Bench_doc.register registry ~obs r in
  Bench_doc.make ~scale:0.1
    ~experiments:[ ("sweep/gate", r.Experiment.wall_seconds) ]
    ~micro:[ ("hash join", 812.5) ]
    registry

let reject name doc =
  match Bench_doc.validate doc with
  | Ok () -> Alcotest.failf "%s: accepted" name
  | Error _ -> ()

let test_validate_accepts () =
  let doc = make_doc () in
  (match Bench_doc.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid document rejected: %s" e);
  (* and it still validates after a render → parse cycle, which is the
     actual CI pipeline *)
  match Bench_doc.validate (Jsonr.parse_exn (Jsonw.to_string ~indent:2 doc)) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "re-read document rejected: %s" e

let map_obj f = function Jsonw.Obj kvs -> Jsonw.Obj (f kvs) | j -> j

let set_field k v = map_obj (List.map (fun (k', v') -> (k', if k = k' then v else v')))
let drop_field k = map_obj (List.filter (fun (k', _) -> k' <> k))

let test_validate_rejects () =
  let doc () = make_doc () in
  reject "wrong schema tag" (set_field "schema" (Jsonw.str "repro-bench/0") (doc ()));
  reject "missing schema" (drop_field "schema" (doc ()));
  reject "empty algorithms" (set_field "algorithms" (Jsonw.list []) (doc ()));
  reject "non-finite scale" (set_field "scale" (Jsonw.Float Float.nan) (doc ()));
  reject "experiment without timing"
    (set_field "experiments"
       (Jsonw.list [ Jsonw.obj [ ("id", Jsonw.str "e1") ] ])
       (doc ()));
  reject "micro without estimate"
    (set_field "micro"
       (Jsonw.list [ Jsonw.obj [ ("name", Jsonw.str "m") ] ])
       (doc ()));
  (* surgical damage inside the algorithm entry *)
  let damage f = map_obj (List.map (fun (k, v) ->
      (k, if k = "algorithms" then
            (match v with
            | Jsonw.List [ entry ] -> Jsonw.List [ f entry ]
            | j -> j)
          else v)))
  in
  reject "missing required counter"
    (damage (fun e ->
         set_field "counters" (drop_field "installs"
           (Option.get (Jsonw.member "counters" e))) e)
       (doc ()));
  reject "histogram without p99"
    (damage (fun e ->
         set_field "histograms"
           (map_obj (List.map (fun (name, h) -> (name, drop_field "p99" h)))
              (Option.get (Jsonw.member "histograms" e)))
           e)
       (doc ()))

(* Lenient validation tolerates a baseline missing newer counters, but
   must name every counter it waved through — one warning line each —
   and still fail on a missing core counter. *)
let test_validate_lenient_warns () =
  let damage f = map_obj (List.map (fun (k, v) ->
      (k, if k = "algorithms" then
            (match v with
            | Jsonw.List [ entry ] -> Jsonw.List [ f entry ]
            | j -> j)
          else v)))
  in
  let drop_counters names doc =
    damage (fun e ->
        set_field "counters"
          (List.fold_left (fun c n -> drop_field n c)
             (Option.get (Jsonw.member "counters" e))
             names)
          e)
      doc
  in
  let old_doc =
    drop_counters [ "unindexed_scans"; "aux_hit_rate"; "local_answers" ]
      (make_doc ())
  in
  reject "strict validation still fails" old_doc;
  let warnings = ref [] in
  (match
     Bench_doc.validate ~lenient:true ~warn:(fun m -> warnings := m :: !warnings)
       old_doc
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "lenient validation rejected: %s" e);
  Alcotest.(check int) "one warning per missing counter" 3
    (List.length !warnings);
  List.iter
    (fun c ->
      Alcotest.(check bool) (Printf.sprintf "a warning names %S" c) true
        (List.exists
           (fun m ->
             let n = String.length c in
             let rec go i =
               i + n <= String.length m
               && (String.sub m i n = c || go (i + 1))
             in
             go 0)
           !warnings))
    [ "unindexed_scans"; "aux_hit_rate"; "local_answers" ];
  (* a complete document warns about nothing *)
  warnings := [];
  (match
     Bench_doc.validate ~lenient:true ~warn:(fun m -> warnings := m :: !warnings)
       (make_doc ())
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "complete document rejected leniently: %s" e);
  Alcotest.(check int) "no warnings on a complete document" 0
    (List.length !warnings);
  (* missing a core counter fails even leniently *)
  match
    Bench_doc.validate ~lenient:true (drop_counters [ "installs" ] (make_doc ()))
  with
  | Ok () -> Alcotest.fail "lenient must still require core counters"
  | Error _ -> ()

let suite =
  [ Alcotest.test_case "histogram: p50/p90/p99 within one bucket of exact (50 seeds)"
      `Quick test_quantile_accuracy;
    Alcotest.test_case "histogram: p=1 exact max, empty answers 0" `Quick
      test_quantile_extremes;
    Alcotest.test_case "histogram: zero bucket" `Quick test_zero_bucket;
    Alcotest.test_case "histogram: merge equals observing the union" `Quick
      test_merge_equals_union;
    Alcotest.test_case "histogram: merge precision mismatch raises" `Quick
      test_merge_precision_mismatch;
    Alcotest.test_case "figure 5: pinned span tree (byte-identical)" `Quick
      test_figure5_span_tree;
    Alcotest.test_case "figure 5: span tree stable across runs" `Quick
      test_figure5_span_tree_stable;
    Alcotest.test_case "zero overhead: goldens hold, enabled ≡ disabled"
      `Quick test_zero_overhead;
    Alcotest.test_case "disabled handle records nothing" `Quick
      test_disabled_records_nothing;
    Alcotest.test_case "mute suspends recording (WAL-replay bracket)" `Quick
      test_mute_suspends;
    Alcotest.test_case "jsonw: RFC 8259 escaping" `Quick test_jsonw_escaping;
    Alcotest.test_case "jsonw: NaN/∞ rejected" `Quick test_jsonw_non_finite;
    Alcotest.test_case "jsonw: shortest float form round-trips" `Quick
      test_jsonw_float_round_trip;
    Alcotest.test_case "registry: writer → independent reader round-trip"
      `Quick test_registry_round_trip;
    Alcotest.test_case "jsonr: malformed documents rejected" `Quick
      test_jsonr_rejects_garbage;
    Alcotest.test_case "bench gate: valid document accepted" `Quick
      test_validate_accepts;
    Alcotest.test_case "bench gate: damaged documents rejected" `Quick
      test_validate_rejects;
    Alcotest.test_case "bench gate: lenient pass warns per missing counter"
      `Quick test_validate_lenient_warns ]
