open Repro_relational
open Repro_sim
open Repro_protocol
open Repro_source

let test_txn_id_order () =
  let a = { Message.source = 0; seq = 5 } in
  let b = { Message.source = 1; seq = 0 } in
  Alcotest.(check bool) "source major" true (Message.compare_txn_id a b < 0);
  Alcotest.(check bool) "seq minor" true
    (Message.compare_txn_id a { a with Message.seq = 6 } < 0);
  Alcotest.(check string) "printing" "u0.5"
    (Format.asprintf "%a" Message.pp_txn_id a)

let test_message_weights () =
  let d = Delta.of_list [ (Tuple.ints [ 1 ], 2); (Tuple.ints [ 2 ], -1) ] in
  let p = { Partial.lo = 0; hi = 0; data = d } in
  Alcotest.(check int) "sweep query weight" 3
    (Message.weight_to_source
       (Message.Sweep_query { qid = 1; target = 0; partial = p }));
  Alcotest.(check int) "fetch weight" 1
    (Message.weight_to_source (Message.Fetch { qid = 1; target = 0 }));
  Alcotest.(check int) "eca query weight: Σ pins + 1 per term" 8
    (Message.weight_to_source
       (Message.Eca_query { qid = 1; terms = [ [ (0, d) ]; [ (0, d) ] ] }));
  Alcotest.(check int) "notice weight" 3
    (Message.weight_to_warehouse
       (Message.Update_notice
          { txn = { Message.source = 0; seq = 0 }; delta = d;
            occurred_at = 0.; global = None }));
  Alcotest.(check int) "snapshot weight" 4
    (Message.weight_to_warehouse
       (Message.Snapshot
          { qid = 1; source = 0;
            relation = Relation.of_list [ (Tuple.ints [ 9 ], 4) ] }))

let test_base_table_log () =
  let tbl = Base_table.create ~source:2 (Relation.create ()) in
  let t1 = Base_table.apply tbl (Delta.insertion (Tuple.ints [ 1 ])) in
  let t2 = Base_table.apply tbl (Delta.insertion (Tuple.ints [ 2 ])) in
  Alcotest.(check int) "seq 0" 0 t1.Message.seq;
  Alcotest.(check int) "seq 1" 1 t2.Message.seq;
  Alcotest.(check int) "source stamped" 2 t1.Message.source;
  Alcotest.(check int) "applied" 2 (Base_table.applied tbl);
  Alcotest.(check int) "log length" 2 (List.length (Base_table.log tbl));
  Alcotest.(check bool) "bad delete raises" true
    (match Base_table.apply tbl (Delta.deletion (Tuple.ints [ 99 ])) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* A lone source node answering a sweep query must compute ΔV ⋈ R
   (Fig. 3) against its *current* relation. *)
let test_source_node_query () =
  let view = (Paper_example.view ()) in
  let engine = Engine.create () in
  let outbox = ref [] in
  let src =
    Source_node.create engine ~view ~id:0
      ~init:(Paper_example.initial ()).(0)
      ~send:(fun m -> outbox := m :: !outbox)
      ~trace:(Trace.create ())
  in
  (* local update first: (2,3) disappears *)
  ignore (Source_node.local_update src (Delta.deletion (Tuple.ints [ 2; 3 ])));
  let partial =
    { Partial.lo = 1; hi = 1; data = Delta.of_list [ (Tuple.ints [ 3; 5 ], 1) ] }
  in
  Source_node.handle src (Message.Sweep_query { qid = 7; target = 0; partial });
  (match !outbox with
  | [ Message.Answer { qid = 7; source = 0; partial = ans };
      Message.Update_notice _ ] ->
      Alcotest.check Rig.delta "answer reflects the newer state"
        (Delta.of_list [ (Tuple.ints [ 1; 3; 3; 5 ], 1) ])
        ans.Partial.data
  | _ -> Alcotest.fail "expected notice then answer");
  Alcotest.(check bool) "misrouted query rejected" true
    (match
       Source_node.handle src
         (Message.Sweep_query { qid = 8; target = 1; partial })
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_source_node_fetch_snapshot_isolated () =
  let view = (Paper_example.view ()) in
  let engine = Engine.create () in
  let outbox = ref [] in
  let src =
    Source_node.create engine ~view ~id:2
      ~init:(Paper_example.initial ()).(2)
      ~send:(fun m -> outbox := m :: !outbox)
      ~trace:(Trace.create ())
  in
  Source_node.handle src (Message.Fetch { qid = 1; target = 2 });
  let snap =
    match !outbox with
    | [ Message.Snapshot { relation; _ } ] -> relation
    | _ -> Alcotest.fail "expected snapshot"
  in
  (* mutating the source afterwards must not affect the shipped copy *)
  ignore (Source_node.local_update src (Delta.deletion (Tuple.ints [ 7; 8 ])));
  Alcotest.(check int) "snapshot is isolated" 2 (Relation.cardinal snap)

let test_eca_site_terms () =
  let view = (Paper_example.view ()) in
  let engine = Engine.create () in
  let outbox = ref [] in
  let site =
    Eca_site.create engine ~view ~inits:(Paper_example.initial ())
      ~send:(fun m -> outbox := m :: !outbox)
      ~trace:(Trace.create ())
  in
  (* ΔR2 = +(3,5): V(U) term evaluates to the two full-width tuples *)
  let d = Delta.insertion (Tuple.ints [ 3; 5 ]) in
  let result = Eca_site.eval_terms site [ [ (1, d) ] ] in
  Alcotest.(check int) "two derivations, no (7,8) partner for D=5... " 0
    (Delta.count result.Partial.data (Tuple.ints [ 1; 3; 3; 5; 7; 8 ]));
  (* (3,5) joins R3 on D=5 → (5,6) *)
  Alcotest.(check int) "derivation via (5,6)" 1
    (Delta.count result.Partial.data (Tuple.ints [ 1; 3; 3; 5; 5; 6 ]));
  Alcotest.(check int) "both R1 tuples match" 1
    (Delta.count result.Partial.data (Tuple.ints [ 2; 3; 3; 5; 5; 6 ]));
  (* a two-term expression sums *)
  let two = Eca_site.eval_terms site [ [ (1, d) ]; [ (1, d) ] ] in
  Alcotest.(check int) "terms sum" 2
    (Delta.count two.Partial.data (Tuple.ints [ 1; 3; 3; 5; 5; 6 ]))

let suite =
  [ Alcotest.test_case "txn id ordering" `Quick test_txn_id_order;
    Alcotest.test_case "message weights" `Quick test_message_weights;
    Alcotest.test_case "base table log" `Quick test_base_table_log;
    Alcotest.test_case "source node: query joins current state" `Quick
      test_source_node_query;
    Alcotest.test_case "source node: snapshot isolation" `Quick
      test_source_node_fetch_snapshot_isolated;
    Alcotest.test_case "eca site: term evaluation" `Quick test_eca_site_terms ]
