(* Reproduction of the paper's §5.2 example: the three concurrent updates
   of Figure 5 must drive the SWEEP warehouse through exactly the state
   sequence of the sequential execution. *)

open Repro_relational
open Repro_warehouse
open Repro_consistency

let updates_concurrent =
  (* ΔR2 applied at t=0 (delivered t=1); the warehouse's query to R1 is in
     flight 1→2; ΔR3 (t=1.4) and ΔR1 (t=1.5) are applied before that query
     is evaluated and delivered (2.4, 2.5) before its answer (3.0) — the
     precise interleaving narrated in §5.2. *)
  let s2, d2 = (Paper_example.d_r2 ()) in
  let s3, d3 = (Paper_example.d_r3 ()) in
  let s1, d1 = (Paper_example.d_r1 ()) in
  [ (0.0, s2, d2); (1.4, s3, d3); (1.5, s1, d1) ]

let run algorithm =
  Rig.scripted ~algorithm ~view:(Paper_example.view ())
    ~initial:(Paper_example.initial ()) ~updates:updates_concurrent ()

let test_initial_view () =
  let v =
    Algebra.eval (Paper_example.view ()) (fun i -> (Paper_example.initial ()).(i))
  in
  Alcotest.check Rig.bag "initial view is {(7,8)[2]}" (Paper_example.v0 ())
    (Relation.as_bag v)

let test_sweep_state_sequence () =
  let outcome = run (module Sweep : Algorithm.S) in
  let installs = Node.installs outcome.node in
  Alcotest.(check int) "three installs" 3 (List.length installs);
  let snaps = List.map (fun (r : Node.install_record) -> r.view_after) installs in
  (match snaps with
  | [ s1; s2; s3 ] ->
      Alcotest.check Rig.bag "after ΔR2" (Paper_example.v1 ()) s1;
      Alcotest.check Rig.bag "after ΔR3" (Paper_example.v2 ()) s2;
      Alcotest.check Rig.bag "after ΔR1" (Paper_example.v3 ()) s3
  | _ -> Alcotest.fail "expected exactly three snapshots");
  Alcotest.check Rig.verdict "complete consistency" Checker.Complete
    (Rig.check outcome).Checker.verdict

let test_sweep_compensated () =
  let outcome = run (module Sweep : Algorithm.S) in
  let m = Node.metrics outcome.node in
  (* §5.2: ΔR1 interferes with ΔR2's sweep (real compensation) and with
     ΔR3's sweep; ΔR3 also interferes with ΔR2's right sweep (the ∅
     compensation). *)
  Alcotest.(check bool) "compensations occurred" true
    (m.Metrics.compensations >= 2);
  (* 2 sweeps of 2 queries + ... exactly (n-1) queries per update. *)
  Alcotest.(check int) "2(n-1) messages per update: 6 queries for 3 updates"
    6 m.Metrics.queries_sent

let test_sequential_matches_figure5 () =
  (* Far-apart updates: the trivial regime; same final states. *)
  let s2, d2 = (Paper_example.d_r2 ()) in
  let s3, d3 = (Paper_example.d_r3 ()) in
  let s1, d1 = (Paper_example.d_r1 ()) in
  let outcome =
    Rig.scripted ~view:(Paper_example.view ()) ~initial:(Paper_example.initial ())
      ~updates:[ (0.0, s2, d2); (100.0, s3, d3); (200.0, s1, d1) ]
      ()
  in
  Alcotest.check Rig.bag "final view {(5,6)[1]}" (Paper_example.v3 ())
    (Rig.final_view outcome);
  Alcotest.check Rig.verdict "complete" Checker.Complete
    (Rig.check outcome).Checker.verdict

let test_nested_sweep_same_final_state () =
  let outcome = run (module Nested_sweep : Algorithm.S) in
  Alcotest.check Rig.bag "final view {(5,6)[1]}" (Paper_example.v3 ())
    (Rig.final_view outcome);
  let v = (Rig.check outcome).Checker.verdict in
  Alcotest.(check bool) "at least strong"
    true
    (Checker.compare_verdict v Checker.Strong <= 0)

let test_naive_diverges_here () =
  (* With this interleaving the naive algorithm misses the compensation
     for ΔR1 and (2,3,5)'s contribution survives spuriously. *)
  let outcome = run (module Naive : Algorithm.S) in
  let v = (Rig.check outcome).Checker.verdict in
  Alcotest.(check bool) "naive is not complete" true
    (Checker.compare_verdict v Checker.Complete > 0)

let suite =
  [ Alcotest.test_case "initial view" `Quick test_initial_view;
    Alcotest.test_case "sweep: exact Figure 5 state sequence" `Quick
      test_sweep_state_sequence;
    Alcotest.test_case "sweep: compensation and message counts" `Quick
      test_sweep_compensated;
    Alcotest.test_case "sequential run matches Figure 5" `Quick
      test_sequential_matches_figure5;
    Alcotest.test_case "nested sweep reaches the same final state" `Quick
      test_nested_sweep_same_final_state;
    Alcotest.test_case "naive misses the compensation" `Quick
      test_naive_diverges_here ]
