open Repro_relational
open Repro_protocol
open Repro_warehouse

let upd ~source ~seq =
  { Message.txn = { Message.source; seq };
    delta = Delta.insertion (Tuple.ints [ seq ]); occurred_at = 0.; global = None }

let test_fifo () =
  let q = Update_queue.create () in
  let _ = Update_queue.append q (upd ~source:0 ~seq:0) ~arrived_at:1. in
  let _ = Update_queue.append q (upd ~source:1 ~seq:0) ~arrived_at:2. in
  Alcotest.(check int) "length" 2 (Update_queue.length q);
  (match Update_queue.peek q with
  | Some e -> Alcotest.(check int) "peek is oldest" 0 e.Update_queue.arrival
  | None -> Alcotest.fail "expected entry");
  (match Update_queue.pop q with
  | Some e -> Alcotest.(check int) "pop oldest" 0 e.Update_queue.arrival
  | None -> Alcotest.fail "expected entry");
  Alcotest.(check int) "one left" 1 (Update_queue.length q)

let test_arrival_numbers_monotonic () =
  let q = Update_queue.create () in
  Alcotest.(check int) "initially -1" (-1) (Update_queue.last_arrival q);
  let e1 = Update_queue.append q (upd ~source:0 ~seq:0) ~arrived_at:0. in
  ignore (Update_queue.pop q);
  let e2 = Update_queue.append q (upd ~source:0 ~seq:1) ~arrived_at:0. in
  Alcotest.(check bool) "arrival grows across pops" true
    (e2.Update_queue.arrival > e1.Update_queue.arrival);
  Alcotest.(check int) "watermark" e2.Update_queue.arrival
    (Update_queue.last_arrival q)

let test_from_source () =
  let q = Update_queue.create () in
  let _ = Update_queue.append q (upd ~source:0 ~seq:0) ~arrived_at:0. in
  let _ = Update_queue.append q (upd ~source:1 ~seq:0) ~arrived_at:0. in
  let _ = Update_queue.append q (upd ~source:0 ~seq:1) ~arrived_at:0. in
  Alcotest.(check int) "two from 0" 2
    (List.length (Update_queue.from_source q 0));
  Alcotest.(check int) "non-destructive" 3 (Update_queue.length q);
  let taken = Update_queue.take_from_source q 0 in
  Alcotest.(check (list int)) "taken oldest-first"
    [ 0; 1 ]
    (List.map (fun e -> e.Update_queue.update.Message.txn.Message.seq) taken);
  Alcotest.(check int) "only source 1 remains" 1 (Update_queue.length q);
  (match Update_queue.peek q with
  | Some e ->
      Alcotest.(check int) "remaining is source 1" 1
        e.Update_queue.update.Message.txn.Message.source
  | None -> Alcotest.fail "expected entry")

let test_capacity () =
  let q = Update_queue.create ~capacity:2 () in
  let _ = Update_queue.append q (upd ~source:0 ~seq:0) ~arrived_at:0. in
  let _ = Update_queue.append q (upd ~source:0 ~seq:1) ~arrived_at:0. in
  Alcotest.(check bool) "third append raises" true
    (match Update_queue.append q (upd ~source:0 ~seq:2) ~arrived_at:0. with
    | exception Invalid_argument _ -> true
    | _ -> false);
  ignore (Update_queue.pop q);
  (* a pop must free a slot even while entries sit in the rear list *)
  let _ = Update_queue.append q (upd ~source:0 ~seq:3) ~arrived_at:0. in
  Alcotest.(check int) "back at capacity" 2 (Update_queue.length q)

let test_take () =
  let q = Update_queue.create () in
  for seq = 0 to 4 do
    ignore (Update_queue.append q (upd ~source:0 ~seq) ~arrived_at:0.)
  done;
  let seqs es =
    List.map (fun e -> e.Update_queue.update.Message.txn.Message.seq) es
  in
  Alcotest.(check (list int)) "drains oldest-first" [ 0; 1; 2 ]
    (seqs (Update_queue.take q ~max:3));
  Alcotest.(check int) "two left" 2 (Update_queue.length q);
  Alcotest.(check (list int)) "max may exceed length" [ 3; 4 ]
    (seqs (Update_queue.take q ~max:10));
  Alcotest.(check (list int)) "empty queue yields nothing" []
    (seqs (Update_queue.take q ~max:1));
  Alcotest.(check bool) "negative max raises" true
    (match Update_queue.take q ~max:(-1) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_from_source_after_wraparound () =
  (* exercise the rear→front normalization: pop past the initial front,
     then interrogate per-source views that span both internal lists *)
  let q = Update_queue.create () in
  let _ = Update_queue.append q (upd ~source:0 ~seq:0) ~arrived_at:0. in
  let _ = Update_queue.append q (upd ~source:1 ~seq:0) ~arrived_at:0. in
  ignore (Update_queue.pop q);
  let _ = Update_queue.append q (upd ~source:0 ~seq:1) ~arrived_at:0. in
  let _ = Update_queue.append q (upd ~source:1 ~seq:1) ~arrived_at:0. in
  let seqs es =
    List.map (fun e -> e.Update_queue.update.Message.txn.Message.seq) es
  in
  Alcotest.(check (list int)) "source 1 in order" [ 0; 1 ]
    (seqs (Update_queue.from_source q 1));
  Alcotest.(check (list int)) "take_from_source in order" [ 1 ]
    (seqs (Update_queue.take_from_source q 0));
  Alcotest.(check (list int)) "others preserved in order" [ 0; 1 ]
    (seqs (Update_queue.entries q))

(* Property: under any interleaving of appends and pops the queue behaves
   as a FIFO — pops come back in append order, length tracks the model. *)
let qcheck_fifo_model =
  QCheck.Test.make ~name:"queue ≡ FIFO model under interleaved ops"
    ~count:300
    QCheck.(small_list (option (int_range 0 3)))
    (fun ops ->
      (* Some src = append from that source, None = pop *)
      let q = Update_queue.create () in
      let model = ref [] (* newest-first *) and popped_ok = ref true in
      let seq = ref 0 in
      List.iter
        (fun op ->
          match op with
          | Some source ->
              incr seq;
              let u = upd ~source ~seq:!seq in
              ignore (Update_queue.append q u ~arrived_at:0.);
              model := u :: !model
          | None -> (
              match (Update_queue.pop q, List.rev !model) with
              | None, [] -> ()
              | Some e, oldest :: rest ->
                  if e.Update_queue.update != oldest then popped_ok := false;
                  model := List.rev rest
              | Some _, [] | None, _ :: _ -> popped_ok := false))
        ops;
      !popped_ok
      && Update_queue.length q = List.length !model
      && List.map (fun e -> e.Update_queue.update) (Update_queue.entries q)
         = List.rev !model)

let test_metrics_batches () =
  let m = Metrics.create () in
  Alcotest.(check (float 1e-9)) "0/0 guarded" 0.
    (Metrics.messages_per_update m);
  Metrics.note_batch m 3;
  Metrics.note_batch m 5;
  Metrics.note_batch m 1;
  Alcotest.(check int) "batch count" 3 m.Metrics.batches;
  Alcotest.(check int) "max batch" 5 m.Metrics.max_batch;
  m.Metrics.queries_sent <- 12;
  m.Metrics.answers_received <- 12;
  m.Metrics.updates_incorporated <- 9;
  Alcotest.(check (float 1e-9)) "messages per update" (24. /. 9.)
    (Metrics.messages_per_update m)

let test_metrics_staleness () =
  let m = Metrics.create () in
  Metrics.note_staleness m 2.0;
  Metrics.note_staleness m 4.0;
  m.Metrics.updates_incorporated <- 2;
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Metrics.mean_staleness m);
  Alcotest.(check (float 1e-9)) "max" 4.0 m.Metrics.staleness_max;
  m.Metrics.queries_sent <- 10;
  Alcotest.(check (float 1e-9)) "queries per update" 5.0
    (Metrics.queries_per_update m)

let test_metrics_queue_watermark () =
  let m = Metrics.create () in
  Metrics.note_queue_length m 3;
  Metrics.note_queue_length m 1;
  Alcotest.(check int) "max retained" 3 m.Metrics.max_queue

let suite =
  [ Alcotest.test_case "queue is FIFO" `Quick test_fifo;
    Alcotest.test_case "arrival numbering" `Quick
      test_arrival_numbers_monotonic;
    Alcotest.test_case "per-source extraction" `Quick test_from_source;
    Alcotest.test_case "capacity bound survives pops" `Quick test_capacity;
    Alcotest.test_case "batch drain (take)" `Quick test_take;
    Alcotest.test_case "per-source views span the deque halves" `Quick
      test_from_source_after_wraparound;
    QCheck_alcotest.to_alcotest qcheck_fifo_model;
    Alcotest.test_case "batch accounting" `Quick test_metrics_batches;
    Alcotest.test_case "staleness accounting" `Quick test_metrics_staleness;
    Alcotest.test_case "queue watermark" `Quick test_metrics_queue_watermark ]
