(* Fault-injection suite: Channel/Transport edge cases, then the seeded
   fault-schedule property harness — SWEEP (resp. Nested SWEEP, Strobe)
   must keep its complete (resp. strong) consistency verdict and install
   every update when all protocol traffic rides the reliable transport
   over a network that drops, duplicates, delays and partitions frames.
   Everything here is deterministic per seed. *)

open Repro_sim
open Repro_protocol
open Repro_warehouse
open Repro_consistency
open Repro_harness
open Repro_workload

(* ————— Channel edge cases ————— *)

(* Zero latency: every delivery ties at the send time; FIFO must still
   hold via the clamp + the event queue's stable tie order. *)
let test_zero_latency_ties_fifo () =
  let e = Engine.create () in
  let received = ref [] in
  let ch =
    Channel.create e ~latency:(Latency.Fixed 0.0) ~rng:(Rng.create 1L)
      ~deliver:(fun m -> received := m :: !received)
  in
  Engine.at e ~time:1.0 (fun () ->
      for i = 0 to 99 do
        Channel.send ch i
      done);
  ignore (Engine.run e);
  Alcotest.(check (list int)) "ties delivered in send order"
    (List.init 100 (fun i -> i))
    (List.rev !received)

(* The reliable path is byte-identical to the seed implementation: golden
   delivery times captured before the fault layer existed. *)
let test_reliable_channel_golden () =
  let e = Engine.create ~seed:99L () in
  let out = ref [] in
  let ch =
    Channel.create e
      ~latency:(Latency.Uniform (0.1, 5.0))
      ~rng:(Rng.create 3L)
      ~deliver:(fun i -> out := (i, Engine.now e) :: !out)
  in
  for i = 0 to 7 do
    Engine.schedule e ~delay:(0.5 *. float_of_int i) (fun () ->
        Channel.send ch i)
  done;
  ignore (Engine.run e);
  Alcotest.(check (list (pair int (float 0.))))
    "delivery times unchanged from seed"
    [ (0, 0.65590667608005726); (1, 4.0314382166052223);
      (2, 4.1035759444784592); (3, 4.1035759444784592);
      (4, 4.1035759444784592); (5, 5.7174893470654737);
      (6, 5.7174893470654737); (7, 7.9547203271465667) ]
    (List.rev !out)

let test_loss_requires_lossy_flag () =
  let e = Engine.create () in
  let mk ?lossy ?drop ?duplicate ?spike () =
    ignore
      (Channel.create ?lossy ?drop ?duplicate ?spike e
         ~latency:(Latency.Fixed 1.0) ~rng:(Rng.create 1L)
         ~deliver:(fun (_ : int) -> ()))
  in
  let raises f = match f () with exception Invalid_argument _ -> true | () -> false in
  Alcotest.(check bool) "drop without ~lossy raises" true
    (raises (fun () -> mk ~drop:0.1 ()));
  Alcotest.(check bool) "duplicate without ~lossy raises" true
    (raises (fun () -> mk ~duplicate:0.1 ()));
  Alcotest.(check bool) "spike without ~lossy raises" true
    (raises (fun () -> mk ~spike:(0.1, 4.0) ()));
  Alcotest.(check bool) "opting in is fine" false
    (raises (fun () -> mk ~lossy:true ~drop:0.1 ~duplicate:0.1 ()));
  Alcotest.(check bool) "zero rates without ~lossy are fine" false
    (raises (fun () -> mk ~drop:0.0 ()))

let test_channel_duplicate_and_gate_counters () =
  let e = Engine.create () in
  let open_gate = ref true in
  let delivered = ref 0 in
  let ch =
    Channel.create ~lossy:true ~duplicate:0.5
      ~gate:(fun () -> !open_gate)
      e ~latency:(Latency.Fixed 1.0) ~rng:(Rng.create 7L)
      ~deliver:(fun () -> incr delivered)
  in
  for _ = 1 to 100 do
    Channel.send ch ()
  done;
  ignore (Engine.run e);
  Alcotest.(check int) "every copy delivered while the gate is open"
    (100 + Channel.duplicated ch)
    !delivered;
  Alcotest.(check bool) "some duplicates injected" true
    (Channel.duplicated ch > 0);
  (* closed gate: copies vanish at the boundary and are counted *)
  open_gate := false;
  delivered := 0;
  for _ = 1 to 50 do
    Channel.send ch ()
  done;
  ignore (Engine.run e);
  Alcotest.(check int) "gate swallows everything" 0 !delivered;
  Alcotest.(check bool) "gated counter saw them" true (Channel.gated ch >= 50)

(* ————— Transport edge cases ————— *)

let collect_link ?faults ~latency ~n_msgs seed =
  let e = Engine.create ~seed () in
  let rng = Engine.rng e in
  let received = ref [] in
  let link =
    Transport.connect ?faults e ~latency ~rng:(Rng.split rng)
      ~deliver:(fun m -> received := m :: !received)
      ()
  in
  for i = 0 to n_msgs - 1 do
    Engine.schedule e ~delay:(0.3 *. float_of_int i) (fun () ->
        Transport.link_send link i)
  done;
  (match Engine.run e with `Drained -> () | _ -> Alcotest.fail "no drain");
  (List.rev !received, link)

let expect_exactly_once ~name (received, link) ~n_msgs =
  Alcotest.(check (list int))
    (name ^ ": exactly once, in order")
    (List.init n_msgs (fun i -> i))
    received;
  Alcotest.(check bool) (name ^ ": link idle") true (Transport.link_idle link)

let test_transport_reliable_passthrough () =
  let r = collect_link ~latency:(Latency.Fixed 1.0) ~n_msgs:50 5L in
  expect_exactly_once ~name:"clean network" r ~n_msgs:50;
  let s = Transport.link_stats (snd r) in
  Alcotest.(check int) "no retransmissions" 0 s.Transport.retransmissions;
  Alcotest.(check int) "no timeouts" 0 s.Transport.timeouts;
  Alcotest.(check int) "no dups suppressed" 0 s.Transport.duplicates_suppressed

let test_transport_suppresses_duplicates_exactly_once () =
  let r =
    collect_link
      ~faults:(Fault.lossy ~duplicate:0.5 ())
      ~latency:(Latency.Fixed 1.0) ~n_msgs:80 5L
  in
  expect_exactly_once ~name:"duplicating network" r ~n_msgs:80;
  let s = Transport.link_stats (snd r) in
  Alcotest.(check bool) "duplicates were injected and suppressed" true
    (s.Transport.duplicates_suppressed > 0)

let test_transport_recovers_from_loss () =
  let r =
    collect_link
      ~faults:(Fault.lossy ~drop:0.4 ())
      ~latency:(Latency.Fixed 1.0) ~n_msgs:60 5L
  in
  expect_exactly_once ~name:"lossy network" r ~n_msgs:60;
  let s = Transport.link_stats (snd r) in
  Alcotest.(check bool) "frames were lost" true
    (Transport.link_frames_lost (snd r) > 0);
  Alcotest.(check bool) "timeouts fired" true (s.Transport.timeouts > 0);
  Alcotest.(check bool) "retransmissions sent" true
    (s.Transport.retransmissions > 0);
  Alcotest.(check bool) "losses recovered" true (s.Transport.recoveries > 0)

let test_transport_reorders_restored () =
  (* heavy latency spikes reorder the lossy channel; the receiver must
     buffer and release in sequence order *)
  let r =
    collect_link
      ~faults:(Fault.lossy ~spike:0.5 ~spike_factor:10. ())
      ~latency:(Latency.Uniform (0.5, 1.5))
      ~n_msgs:60 5L
  in
  expect_exactly_once ~name:"reordering network" r ~n_msgs:60;
  let s = Transport.link_stats (snd r) in
  Alcotest.(check bool) "out-of-order frames were buffered" true
    (s.Transport.reorders_buffered > 0)

(* Spike-only property: no loss, no duplication — just aggressive latency
   spikes scrambling frame arrival order. Every seed must deliver exactly
   once, in order, with nothing lost at the channel and at least one seed
   actually exercising the reorder buffer. *)
let test_spike_only_exactly_once_in_order () =
  let buffered = ref 0 in
  for seed = 0 to 19 do
    let r =
      collect_link
        ~faults:(Fault.lossy ~drop:0.0 ~duplicate:0.0 ~spike:0.4 ~spike_factor:8. ())
        ~latency:(Latency.Uniform (0.5, 2.0))
        ~n_msgs:60
        (Int64.of_int (100 + seed))
    in
    expect_exactly_once
      ~name:(Printf.sprintf "spike-only seed %d" seed)
      r ~n_msgs:60;
    let s = Transport.link_stats (snd r) in
    Alcotest.(check int)
      (Printf.sprintf "spike-only seed %d loses nothing" seed)
      0
      (Transport.link_frames_lost (snd r));
    buffered := !buffered + s.Transport.reorders_buffered
  done;
  Alcotest.(check bool) "spikes actually reordered frames" true (!buffered > 0)

(* The retransmission schedule is a pure function of the seed: exponential
   backoff doubling from rto to max_rto (jitter 0 here), and two runs with
   jitter produce bit-identical timelines. *)
let test_backoff_schedule_deterministic () =
  let schedule ~jitter ~seed =
    let e = Engine.create () in
    let times = ref [] in
    let s =
      Transport.sender
        ~config:{ Transport.default_config with rto = 1.0; max_rto = 8.0; jitter }
        e ~rng:(Rng.create seed)
        ~send_frame:(function
          | Transport.Data _ -> times := Engine.now e :: !times
          | Transport.Ack _ -> ())
    in
    Transport.send s "payload";
    ignore (Engine.run ~until:40.0 e);
    List.rev !times
  in
  Alcotest.(check (list (float 0.)))
    "jitter-free backoff: 1,2,4 then capped at 8"
    [ 0.; 1.; 3.; 7.; 15.; 23.; 31.; 39. ]
    (schedule ~jitter:0. ~seed:3L);
  Alcotest.(check (list (float 0.)))
    "jittered schedule replays bit-identically per seed"
    (schedule ~jitter:0.25 ~seed:9L)
    (schedule ~jitter:0.25 ~seed:9L);
  Alcotest.(check bool) "different seeds jitter differently" true
    (schedule ~jitter:0.25 ~seed:9L <> schedule ~jitter:0.25 ~seed:10L)

(* ————— query deadlines: suspension, resume, ack liveness ————— *)

let no_jitter ~rto ~deadline =
  { Transport.rto; backoff = 2.0; max_rto = 64.0; jitter = 0.;
    deadline = Some deadline }

(* A frame that is never acknowledged suspends its sender once the
   deadline passes: retransmission stops, [on_deadline] reports the
   oldest seq, sends made while suspended buffer silently, and
   [resume_sender] retransmits the whole window with a fresh deadline
   clock (and, still unacknowledged, expires again). *)
let test_deadline_suspends_buffers_resumes () =
  let e = Engine.create () in
  let sent = ref [] and expired = ref [] in
  let s =
    Transport.sender
      ~config:(no_jitter ~rto:1.0 ~deadline:3.5)
      ~on_deadline:(fun ~seq -> expired := (Engine.now e, seq) :: !expired)
      e ~rng:(Rng.create 3L)
      ~send_frame:(function
        | Transport.Data { seq; _ } -> sent := (Engine.now e, seq) :: !sent
        | Transport.Ack _ -> ())
  in
  Transport.send s "a";
  (* the deadline is checked at retransmission-timer firings: transmits
     at 0, 1, 3; the t=7 timer finds the frame 7 > 3.5 overdue *)
  Engine.at e ~time:8.0 (fun () ->
      Alcotest.(check bool) "suspended after the deadline" true
        (Transport.sender_suspended s);
      Alcotest.(check int) "expiry counted" 1
        (Transport.sender_stats s).Transport.deadline_expiries;
      (* a send while suspended must not transmit *)
      Transport.send s "b");
  Engine.at e ~time:10.0 (fun () -> Transport.resume_sender s);
  ignore (Engine.run ~until:30.0 e);
  let until_suspension, after_resume =
    List.partition (fun (t, _) -> t < 10.) (List.rev !sent)
  in
  Alcotest.(check (list (pair (float 0.) int)))
    "transmissions stop at suspension (buffered send stays dark)"
    [ (0., 0); (1., 0); (3., 0) ]
    until_suspension;
  Alcotest.(check (list (pair (float 0.) int)))
    "resume retransmits the window oldest first, then backs off again"
    [ (10., 0); (10., 1); (11., 0); (11., 1); (13., 0); (13., 1) ]
    after_resume;
  Alcotest.(check (list (pair (float 0.) int)))
    "one expiry per suspension, oldest seq, deadline clock reset by resume"
    [ (7., 0); (17., 0) ]
    (List.rev !expired);
  Alcotest.(check bool) "suspended again at the end" true
    (Transport.sender_suspended s)

(* Round-trip wiring with latency 1.0 each way: the ack clears the
   window before any timer fires and [on_ack] reports the cumulative
   seq — the liveness evidence the breaker layer consumes. *)
let test_deadline_ack_fires_on_ack () =
  let e = Engine.create () in
  let delivered = ref [] and acked = ref [] in
  let receiver_cell = ref None in
  let s =
    Transport.sender
      ~config:(no_jitter ~rto:4.0 ~deadline:8.0)
      ~on_ack:(fun ~seq -> acked := (Engine.now e, seq) :: !acked)
      e ~rng:(Rng.create 3L)
      ~send_frame:(fun f ->
        Engine.schedule e ~delay:1.0 (fun () ->
            Transport.receiver_on_frame (Option.get !receiver_cell) f))
  in
  let r =
    Transport.receiver
      ~send_frame:(fun f ->
        Engine.schedule e ~delay:1.0 (fun () -> Transport.sender_on_frame s f))
      ~deliver:(fun p -> delivered := p :: !delivered)
      ()
  in
  receiver_cell := Some r;
  Transport.send s "a";
  ignore (Engine.run e);
  Alcotest.(check (list string)) "delivered exactly once" [ "a" ] !delivered;
  Alcotest.(check (list (pair (float 0.) int)))
    "on_ack fired once, after one round trip"
    [ (2., 0) ]
    (List.rev !acked);
  Alcotest.(check int) "no expiries" 0
    (Transport.sender_stats s).Transport.deadline_expiries;
  Alcotest.(check int) "window drained" 0 (Transport.unacked s)

(* The delivered-but-ack-lost pathology: the payload got through but
   every ack is dropped until after the sender suspends. The probe
   retransmission is duplicate-suppressed at the receiver — there is no
   second delivery, so a breaker watching only answers would wait
   forever — but the re-ack gets through and [on_ack] proves the link
   alive. *)
let test_deadline_ack_lost_heals_via_on_ack () =
  let e = Engine.create () in
  let delivered = ref [] and acked = ref [] in
  let drop_acks = ref true in
  let receiver_cell = ref None in
  let s =
    Transport.sender
      ~config:(no_jitter ~rto:3.0 ~deadline:5.0)
      ~on_ack:(fun ~seq -> acked := (Engine.now e, seq) :: !acked)
      e ~rng:(Rng.create 3L)
      ~send_frame:(fun f ->
        Engine.schedule e ~delay:1.0 (fun () ->
            Transport.receiver_on_frame (Option.get !receiver_cell) f))
  in
  let r =
    Transport.receiver
      ~send_frame:(fun f ->
        if not !drop_acks then
          Engine.schedule e ~delay:1.0 (fun () ->
              Transport.sender_on_frame s f))
      ~deliver:(fun p -> delivered := p :: !delivered)
      ()
  in
  receiver_cell := Some r;
  Transport.send s "a";
  Engine.at e ~time:6.0 (fun () -> drop_acks := false);
  Engine.at e ~time:10.0 (fun () ->
      Alcotest.(check bool) "suspended: every ack was lost" true
        (Transport.sender_suspended s);
      Alcotest.(check (list string)) "payload already delivered" [ "a" ]
        !delivered;
      Alcotest.(check (list (pair (float 0.) int))) "no ack seen yet" []
        !acked);
  Engine.at e ~time:12.0 (fun () -> Transport.resume_sender s);
  ignore (Engine.run e);
  Alcotest.(check (list string)) "still delivered exactly once" [ "a" ]
    !delivered;
  Alcotest.(check bool) "probe was duplicate-suppressed" true
    ((Transport.receiver_stats r).Transport.duplicates_suppressed >= 2);
  Alcotest.(check (list (pair (float 0.) int)))
    "the re-ack heals: on_ack fired once"
    [ (14., 0) ]
    (List.rev !acked);
  Alcotest.(check bool) "no longer suspended" false
    (Transport.sender_suspended s);
  Alcotest.(check int) "window drained" 0 (Transport.unacked s)

(* ————— seeded fault-schedule property harness ————— *)

let n_updates = 20

let degraded_scenario ?(crashes = [ { Fault.source = 1; down_at = 8.; up_at = 25. } ])
    ?(link = Fault.lossy ~drop:0.2 ~duplicate:0.1 ()) seed =
  { Scenario.default with
    Scenario.name = "degraded-prop";
    init_size = 12;
    domain = 8;
    stream =
      { Update_gen.default with Update_gen.n_updates; mean_gap = 1.5 };
    faults = { Fault.link; crashes; wh_crashes = [] };
    seed }

let run_one scenario algo =
  let r = Experiment.run scenario algo in
  Alcotest.(check bool)
    (Printf.sprintf "seed %Ld quiesces" scenario.Scenario.seed)
    true r.Experiment.completed;
  Alcotest.(check int)
    (Printf.sprintf "seed %Ld installs every update" scenario.Scenario.seed)
    n_updates r.Experiment.metrics.Metrics.updates_incorporated;
  r

(* Acceptance criterion: drop 0.2, duplication 0.1, one scripted crash
   window; SWEEP stays *complete* on 100 distinct seeds and the metrics
   show the transport actually worked for it. *)
let test_sweep_complete_under_faults () =
  let retx = ref 0 and tmo = ref 0 and lost = ref 0 in
  for seed = 0 to 99 do
    let r =
      run_one (degraded_scenario (Int64.of_int seed)) (module Sweep : Algorithm.S)
    in
    Alcotest.check Rig.verdict
      (Printf.sprintf "seed %d complete" seed)
      Checker.Complete r.Experiment.verdict.Checker.verdict;
    retx := !retx + r.Experiment.metrics.Metrics.retransmissions;
    tmo := !tmo + r.Experiment.metrics.Metrics.timeouts;
    lost := !lost + r.Experiment.metrics.Metrics.frames_lost
  done;
  Alcotest.(check bool) "frames were lost across the runs" true (!lost > 0);
  Alcotest.(check bool) "retransmissions nonzero" true (!retx > 0);
  Alcotest.(check bool) "timeouts nonzero" true (!tmo > 0)

(* Random schedules (loss + duplication + spikes + maybe a crash) drawn
   per seed: Nested SWEEP and Strobe must stay at least *strong*. *)
let random_schedule seed =
  let rng = Rng.create (Int64.add 7919L (Int64.mul 31L seed)) in
  Fault.random rng ~n_sources:Scenario.default.Scenario.n_sources
    ~horizon:(float_of_int n_updates *. 1.5)

let at_least_strong ~tag algo seeds =
  List.iter
    (fun seed ->
      let f = random_schedule seed in
      let scenario =
        degraded_scenario ~crashes:f.Fault.crashes ~link:f.Fault.link seed
      in
      let r = run_one scenario algo in
      let v = r.Experiment.verdict.Checker.verdict in
      Alcotest.(check bool)
        (Printf.sprintf "%s seed %Ld at least strong (got %s)" tag seed
           (Checker.verdict_to_string v))
        true
        (Checker.compare_verdict v Checker.Strong <= 0))
    seeds

let seeds n = List.init n Int64.of_int

let test_nested_sweep_strong_under_faults () =
  at_least_strong ~tag:"nested-sweep" (module Nested_sweep : Algorithm.S)
    (seeds 50)

let test_strobe_strong_under_faults () =
  at_least_strong ~tag:"strobe" (module Strobe : Algorithm.S) (seeds 50)

(* Degraded runs replay bit-identically: same seed ⇒ same install history
   and same transport counters. *)
let test_faulty_run_deterministic () =
  let run () = Experiment.run (degraded_scenario 17L) (module Sweep : Algorithm.S) in
  let a = run () and b = run () in
  Alcotest.(check int) "same installs"
    a.Experiment.metrics.Metrics.installs b.Experiment.metrics.Metrics.installs;
  Alcotest.(check int) "same retransmissions"
    a.Experiment.metrics.Metrics.retransmissions
    b.Experiment.metrics.Metrics.retransmissions;
  Alcotest.(check int) "same duplicate suppressions"
    a.Experiment.metrics.Metrics.duplicates_suppressed
    b.Experiment.metrics.Metrics.duplicates_suppressed;
  Alcotest.(check (float 0.)) "same sim time" a.Experiment.sim_time
    b.Experiment.sim_time;
  Alcotest.(check int) "same event count" a.Experiment.events
    b.Experiment.events

(* The no-fault path through the rewired experiment is byte-identical to
   the seed implementation: golden numbers captured before this layer
   existed. *)
let test_fault_free_experiment_golden () =
  let r = Experiment.run Scenario.default (module Sweep : Algorithm.S) in
  Alcotest.(check int) "installs" 100 r.Experiment.metrics.Metrics.installs;
  Alcotest.(check int) "incorporated" 100
    r.Experiment.metrics.Metrics.updates_incorporated;
  Alcotest.(check int) "queries" 200 r.Experiment.metrics.Metrics.queries_sent;
  Alcotest.(check int) "final view tuples" 346 r.Experiment.final_view_tuples;
  Alcotest.(check int) "events" 601 r.Experiment.events;
  Alcotest.(check (float 0.)) "sim time" 423.0719946358177 r.Experiment.sim_time;
  Alcotest.check Rig.verdict "complete" Checker.Complete
    r.Experiment.verdict.Checker.verdict;
  Alcotest.(check int) "no transport traffic at all" 0
    (r.Experiment.metrics.Metrics.retransmissions
    + r.Experiment.metrics.Metrics.timeouts
    + r.Experiment.metrics.Metrics.frames_lost)

let suite =
  [ Alcotest.test_case "channel: zero-latency ties stay FIFO" `Quick
      test_zero_latency_ties_fifo;
    Alcotest.test_case "channel: reliable path matches seed golden" `Quick
      test_reliable_channel_golden;
    Alcotest.test_case "channel: loss is opt-in via ~lossy" `Quick
      test_loss_requires_lossy_flag;
    Alcotest.test_case "channel: duplicate + gate counters" `Quick
      test_channel_duplicate_and_gate_counters;
    Alcotest.test_case "transport: clean passthrough, no retransmission"
      `Quick test_transport_reliable_passthrough;
    Alcotest.test_case "transport: duplicates suppressed exactly once" `Quick
      test_transport_suppresses_duplicates_exactly_once;
    Alcotest.test_case "transport: loss recovered by retransmission" `Quick
      test_transport_recovers_from_loss;
    Alcotest.test_case "transport: reordering restored to FIFO" `Quick
      test_transport_reorders_restored;
    Alcotest.test_case "property: spike-only reordering exactly once in order"
      `Quick test_spike_only_exactly_once_in_order;
    Alcotest.test_case "transport: backoff schedule deterministic" `Quick
      test_backoff_schedule_deterministic;
    Alcotest.test_case "deadline: suspend, buffer, resume, re-expire" `Quick
      test_deadline_suspends_buffers_resumes;
    Alcotest.test_case "deadline: clean round trip fires on_ack" `Quick
      test_deadline_ack_fires_on_ack;
    Alcotest.test_case "deadline: ack-lost delivery heals via on_ack" `Quick
      test_deadline_ack_lost_heals_via_on_ack;
    Alcotest.test_case "property: sweep complete on 100 faulty seeds" `Quick
      test_sweep_complete_under_faults;
    Alcotest.test_case "property: nested sweep strong on random schedules"
      `Quick test_nested_sweep_strong_under_faults;
    Alcotest.test_case "property: strobe strong on random schedules" `Quick
      test_strobe_strong_under_faults;
    Alcotest.test_case "property: faulty runs deterministic per seed" `Quick
      test_faulty_run_deterministic;
    Alcotest.test_case "property: fault-free run identical to seed" `Quick
      test_fault_free_experiment_golden ]
