open Repro_relational

let paper_query =
  "SELECT R2.D, R3.F FROM R1(A int, B int), R2(C int, D int), R3(E int, F \
   int) WHERE R1.B = R2.C AND R2.D = R3.E"

let test_paper_query () =
  let v = View_parser.parse_exn paper_query in
  Alcotest.(check int) "three sources" 3 (View_def.n_sources v);
  Alcotest.(check (array int)) "projection D,F" [| 3; 5 |]
    (View_def.projection v);
  (match (View_def.join_between v 0).Join_spec.equalities with
  | [ (1, 2) ] -> ()
  | _ -> Alcotest.fail "join 0 should be B=C");
  (match (View_def.join_between v 1).Join_spec.equalities with
  | [ (3, 4) ] -> ()
  | _ -> Alcotest.fail "join 1 should be D=E");
  Alcotest.(check bool) "no selection" true (View_def.selection v = Predicate.True);
  (* must evaluate identically to the hand-built paper example *)
  let fetch i = (Repro_workload.Paper_example.initial ()).(i) in
  Alcotest.check Rig.relation "same initial view"
    (Algebra.eval Repro_workload.(Paper_example.view ()) fetch)
    (Algebra.eval v fetch)

let test_select_star () =
  let v =
    View_parser.parse_exn
      "SELECT * FROM A(x int, y int), B(z int, w int) WHERE A.y = B.z"
  in
  Alcotest.(check (array int)) "all columns" [| 0; 1; 2; 3 |]
    (View_def.projection v)

let test_keys_and_types () =
  let v =
    View_parser.parse_exn
      "SELECT O.id, P.name FROM O(id int key, sku int), P(sku int key, name \
       str, price float, active bool) WHERE O.sku = P.sku"
  in
  Alcotest.(check (list int)) "O key" [ 0 ] (Schema.key_indices (View_def.schema v 0));
  let p = View_def.schema v 1 in
  Alcotest.(check bool) "types parsed" true
    ((Schema.attrs p).(1).Schema.ty = Value.T_str
    && (Schema.attrs p).(2).Schema.ty = Value.T_float
    && (Schema.attrs p).(3).Schema.ty = Value.T_bool)

let test_residual_selection () =
  let v =
    View_parser.parse_exn
      "SELECT A.x FROM A(x int, y int), B(z int, w int) WHERE A.y = B.z AND \
       B.w > 5 AND A.x <> 0"
  in
  (* one equality becomes the join; the other conjuncts become selection *)
  Alcotest.(check int) "one join equality" 1
    (List.length (View_def.join_between v 0).Join_spec.equalities);
  Alcotest.(check bool) "selection present" true
    (View_def.selection v <> Predicate.True);
  Alcotest.(check (list int)) "selection references w and x" [ 0; 3 ]
    (Predicate.attrs_used (View_def.selection v))

let test_non_adjacent_equality_is_selection () =
  (* A.x = C.z links non-adjacent relations: kept as selection, not a
     join condition (the chain model only joins neighbours) *)
  let v =
    View_parser.parse_exn
      "SELECT A.x FROM A(x int), B(y int), C(z int) WHERE A.x = B.y AND B.y \
       = C.z AND A.x = C.z"
  in
  Alcotest.(check bool) "residual selection kept" true
    (View_def.selection v <> Predicate.True)

let test_disjunction_whole_where_is_selection () =
  let v =
    View_parser.parse_exn
      "SELECT A.x FROM A(x int), B(y int) WHERE A.x = B.y OR A.x > 3"
  in
  (* an OR at top level cannot produce join conditions *)
  Alcotest.(check int) "cross join" 0
    (List.length (View_def.join_between v 0).Join_spec.equalities);
  Alcotest.(check bool) "all in selection" true
    (View_def.selection v <> Predicate.True)

let test_literals_and_ops () =
  let v =
    View_parser.parse_exn
      "SELECT A.x FROM A(x int, s str, f float, b bool) WHERE A.s = 'hi' AND \
       A.f >= 1.5 AND A.b = true AND A.x != 9"
  in
  let used = Predicate.attrs_used (View_def.selection v) in
  Alcotest.(check (list int)) "attrs used" [ 0; 1; 2; 3 ] used

let test_no_where () =
  let v = View_parser.parse_exn "SELECT * FROM A(x int), B(y int)" in
  Alcotest.(check int) "cross product join" 0
    (List.length (View_def.join_between v 0).Join_spec.equalities)

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub hay i nn = needle then true
    else go (i + 1)
  in
  nn = 0 || go 0

let expect_error fragment src =
  match View_parser.parse src with
  | Ok _ -> Alcotest.failf "expected parse failure for %S" src
  | Error msg ->
      if not (contains ~needle:fragment msg) then
        Alcotest.failf "error %S does not mention %S" msg fragment

let test_errors () =
  expect_error "expected" "FROM A(x int)";
  expect_error "unknown relation" "SELECT Z.q FROM A(x int)";
  expect_error "no attribute" "SELECT A.q FROM A(x int)";
  expect_error "unterminated" "SELECT A.x FROM A(s str) WHERE A.s = 'oops";
  expect_error "unexpected character" "SELECT A.x FROM A(x int) WHERE A.x # 3";
  expect_error "trailing" "SELECT A.x FROM A(x int) garbage garbage";
  expect_error "qualified" "SELECT x FROM A(x int)"

let test_roundtrip_through_simulation () =
  (* a parsed view drives the full stack end to end *)
  let v = View_parser.parse_exn paper_query in
  let s2, d2 = Repro_workload.(Paper_example.d_r2 ()) in
  let outcome =
    Repro_harness.Experiment.run_scripted
      ~algorithm:(module Repro_warehouse.Sweep : Repro_warehouse.Algorithm.S)
      ~view:v
      ~initial:(Repro_workload.Paper_example.initial ())
      ~updates:[ (0.0, s2, d2) ] ()
  in
  Alcotest.check Rig.verdict "complete" Repro_consistency.Checker.Complete
    (Repro_harness.Experiment.check_scripted outcome)
      .Repro_consistency.Checker
      .verdict

let suite =
  [ Alcotest.test_case "the paper's SQL query" `Quick test_paper_query;
    Alcotest.test_case "select star" `Quick test_select_star;
    Alcotest.test_case "keys and types" `Quick test_keys_and_types;
    Alcotest.test_case "residual selection" `Quick test_residual_selection;
    Alcotest.test_case "non-adjacent equality" `Quick
      test_non_adjacent_equality_is_selection;
    Alcotest.test_case "disjunction stays selection" `Quick
      test_disjunction_whole_where_is_selection;
    Alcotest.test_case "literals and operators" `Quick test_literals_and_ops;
    Alcotest.test_case "missing where = cross product" `Quick test_no_where;
    Alcotest.test_case "error reporting" `Quick test_errors;
    Alcotest.test_case "parsed view through the simulator" `Quick
      test_roundtrip_through_simulation ]

(* --- to_sql round trips ---------------------------------------------- *)

let roundtrip_equivalent v =
  let sql = View_parser.to_sql v in
  match View_parser.parse sql with
  | Error msg -> Alcotest.failf "re-parse of %S failed: %s" sql msg
  | Ok v' ->
      Alcotest.(check int) "same sources" (View_def.n_sources v)
        (View_def.n_sources v');
      Alcotest.(check (array int)) "same projection" (View_def.projection v)
        (View_def.projection v');
      (* evaluation equivalence on deterministic data *)
      let rng = Repro_sim.Rng.create 99L in
      let rels =
        Array.init (View_def.n_sources v) (fun i ->
            let rel = Relation.create () in
            for k = 0 to 15 do
              let tup =
                Array.map
                  (fun (a : Schema.attribute) ->
                    match a.Schema.ty with
                    | Value.T_int -> Value.int (Repro_sim.Rng.int rng 4)
                    | Value.T_float ->
                        Value.float (float_of_int (Repro_sim.Rng.int rng 4))
                    | Value.T_str ->
                        Value.str (string_of_int (Repro_sim.Rng.int rng 3))
                    | Value.T_bool -> Value.bool (Repro_sim.Rng.int rng 2 = 0))
                  (Schema.attrs (View_def.schema v i))
              in
              (* overwrite a key column if any, to keep multiplicities 1 *)
              (match Schema.key_indices (View_def.schema v i) with
              | key :: _ -> tup.(key) <- Value.int k
              | [] -> ());
              Relation.insert rel tup 1
            done;
            rel)
      in
      Alcotest.check Rig.relation "same evaluation"
        (Algebra.eval v (fun i -> rels.(i)))
        (Algebra.eval v' (fun i -> rels.(i)))

let test_to_sql_roundtrip_paper () =
  roundtrip_equivalent (View_parser.parse_exn paper_query)

let test_to_sql_roundtrip_selection () =
  roundtrip_equivalent
    (View_parser.parse_exn
       "SELECT A.x FROM A(x int key, y int), B(z int key, w int) WHERE A.y \
        = B.z AND (B.w > 1 OR A.x <> 0) AND NOT A.x = 3")

let test_to_sql_roundtrip_chain () =
  roundtrip_equivalent (Repro_workload.Chain.view ~n:4 ())

let test_to_sql_null_rejected () =
  let schemas = Repro_workload.Chain.schemas ~n:2 in
  let v =
    View_def.make ~name:"nullsel" ~schemas
      ~joins:[| Join_spec.natural ~left_attr:2 ~right_attr:4 |]
      ~selection:(Predicate.cmp_const Predicate.Eq 0 Value.Null)
      ~projection:[| 0 |] ()
  in
  Alcotest.(check bool) "NULL constant rejected" true
    (match View_parser.to_sql v with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  suite
  @ [ Alcotest.test_case "to_sql roundtrip: paper query" `Quick
        test_to_sql_roundtrip_paper;
      Alcotest.test_case "to_sql roundtrip: rich selection" `Quick
        test_to_sql_roundtrip_selection;
      Alcotest.test_case "to_sql roundtrip: chain view" `Quick
        test_to_sql_roundtrip_chain;
      Alcotest.test_case "to_sql rejects NULL constants" `Quick
        test_to_sql_null_rejected ]

let test_to_sql_bad_names_rejected () =
  let v =
    View_def.make ~name:"bad"
      ~schemas:
        [| Schema.make "has-dash" [ Schema.attr "x" Value.T_int ];
           Schema.make "B" [ Schema.attr "y" Value.T_int ] |]
      ~joins:[| Join_spec.make [] |]
      ~projection:[| 0 |] ()
  in
  Alcotest.(check bool) "dashed relation name rejected" true
    (match View_parser.to_sql v with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let kw =
    View_def.make ~name:"kw"
      ~schemas:
        [| Schema.make "select" [ Schema.attr "x" Value.T_int ];
           Schema.make "B" [ Schema.attr "y" Value.T_int ] |]
      ~joins:[| Join_spec.make [] |]
      ~projection:[| 0 |] ()
  in
  Alcotest.(check bool) "keyword relation name rejected" true
    (match View_parser.to_sql kw with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* Generator-based round trip: random small views rendered and re-parsed
   must evaluate identically on random data. *)
let qcheck_random_view_roundtrip =
  let open QCheck in
  let gen =
    Gen.(
      let* n = int_range 2 4 in
      let* arities = list_repeat n (int_range 1 3) in
      let arities = Array.of_list arities in
      let offsets = Array.make n 0 in
      for i = 1 to n - 1 do
        offsets.(i) <- offsets.(i - 1) + arities.(i - 1)
      done;
      let total = offsets.(n - 1) + arities.(n - 1) in
      let* eqs =
        (* one optional equality per adjacent pair *)
        list_repeat (n - 1) (opt (pair (int_range 0 2) (int_range 0 2)))
      in
      let* proj_src = int_range 0 (total - 1) in
      let* sel_const = int_range 0 3 in
      let* sel_attr = int_range 0 (total - 1) in
      let* with_sel = bool in
      return (n, arities, offsets, eqs, proj_src, sel_const, sel_attr, with_sel))
  in
  Test.make ~name:"random view to_sql/parse roundtrip" ~count:100
    (make gen)
    (fun (n, arities, offsets, eqs, proj_src, sel_const, sel_attr, with_sel) ->
      let schemas =
        Array.init n (fun i ->
            Schema.make
              (Printf.sprintf "T%d" i)
              (List.init arities.(i) (fun k ->
                   Schema.attr (Printf.sprintf "c%d" k) Value.T_int)))
      in
      let joins =
        Array.of_list
          (List.mapi
             (fun i eq ->
               match eq with
               | Some (l, r) when l < arities.(i) && r < arities.(i + 1) ->
                   Join_spec.natural ~left_attr:(offsets.(i) + l)
                     ~right_attr:(offsets.(i + 1) + r)
               | _ -> Join_spec.make [])
             eqs)
      in
      let selection =
        if with_sel then
          Predicate.cmp_const Predicate.Le sel_attr (Value.int sel_const)
        else Predicate.True
      in
      let v =
        View_def.make ~name:"rand" ~schemas ~joins ~selection
          ~projection:[| proj_src |] ()
      in
      match View_parser.parse (View_parser.to_sql v) with
      | Error _ -> false
      | Ok v' ->
          let rng = Repro_sim.Rng.create 123L in
          let rels =
            Array.init n (fun i ->
                let rel = Relation.create () in
                for _ = 1 to 8 do
                  Relation.insert rel
                    (Array.init arities.(i) (fun _ ->
                         Value.int (Repro_sim.Rng.int rng 3)))
                    1
                done;
                rel)
          in
          Relation.equal
            (Algebra.eval v (fun i -> rels.(i)))
            (Algebra.eval v' (fun i -> rels.(i))))

let suite =
  suite
  @ [ Alcotest.test_case "to_sql rejects unrepresentable names" `Quick
        test_to_sql_bad_names_rejected;
      QCheck_alcotest.to_alcotest qcheck_random_view_roundtrip ]
