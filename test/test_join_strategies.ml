(* Join-strategy differential suite (DESIGN.md §15).

   The three executions of a delta join leg — pairwise (generic hash
   join), probe (persistent per-column indexes) and trie (sort-order
   tries with leapfrog intersections) — must be observationally
   indistinguishable: same final view bag, same event count, same sim
   time, same verdict, same message counters; only the work per leg
   differs. The suite proves it with unit equivalences over the edge
   cases (empty deltas, Null join columns, self-join-shaped specs,
   residuals), then seeded end-to-end storms over the sweep-family
   algorithms, including crash and outage schedules.

   It also pins the indexed-by-default contract: every default-strategy
   run ends with [unindexed_scans = 0] — a probe that silently degraded
   to an O(n) scan fails the suite instead of costing 27×.

   Seed count comes from JOIN_SEEDS (default 5 so `dune runtest` stays
   fast; `make joins` raises it to 100). *)

open Repro_relational
open Repro_sim
open Repro_warehouse
open Repro_consistency
open Repro_harness
open Repro_workload
module Base_table = Repro_source.Base_table

let join_seeds = Rig.seeds_env ~var:"JOIN_SEEDS" ~default:5

(* ————— strategy parsing ————— *)

let test_strategy_strings () =
  List.iter
    (fun (s, j) ->
      Alcotest.(check bool) (Printf.sprintf "parse %S" s) true
        (Join_strategy.of_string s = Some j))
    [ ("pairwise", Join_strategy.Pairwise); ("scan", Join_strategy.Pairwise);
      ("hash", Join_strategy.Pairwise); ("probe", Join_strategy.Probe);
      ("index", Join_strategy.Probe); ("indexed", Join_strategy.Probe);
      ("trie", Join_strategy.Trie); ("leapfrog", Join_strategy.Trie) ];
  Alcotest.(check bool) "garbage rejected" true
    (Join_strategy.of_string "bogus" = None);
  List.iter
    (fun j ->
      Alcotest.(check bool)
        (Printf.sprintf "round trip %s" (Join_strategy.to_string j))
        true
        (Join_strategy.of_string (Join_strategy.to_string j) = Some j))
    Join_strategy.all;
  Alcotest.(check bool) "probe is the default" true
    (Join_strategy.default = Join_strategy.Probe)

(* ————— trie structure ————— *)

let test_trie_basics () =
  let rel =
    Relation.of_list
      [ (Chain.tuple ~key:0 ~a:5 ~b:7, 1); (Chain.tuple ~key:1 ~a:5 ~b:8, 2);
        (Chain.tuple ~key:2 ~a:9 ~b:7, 1) ]
  in
  let t = Trie_join.of_relation rel ~col:1 in
  Alcotest.(check int) "keyed column" 1 (Trie_join.col t);
  Alcotest.(check int) "two distinct keys" 2 (Trie_join.cardinal t);
  Alcotest.(check int) "probe a=5 finds both rows" 2
    (List.length (Trie_join.probe t (Value.int 5)));
  (match Trie_join.probe t (Value.int 9) with
  | [ (_, 1) ] -> ()
  | _ -> Alcotest.fail "probe a=9: one row, multiplicity 1");
  Alcotest.(check bool) "absent key probes empty" true
    (Trie_join.probe t (Value.int 6) = []);
  (* multiplicities survive grouping *)
  match Trie_join.probe (Trie_join.of_relation rel ~col:2) (Value.int 8) with
  | [ (_, 2) ] -> ()
  | _ -> Alcotest.fail "b=8 carries multiplicity 2"

(* ————— leg equivalence: extend ≡ extend_with_probe ≡ Trie_join.extend ————— *)

let view3 = Chain.view ~n:3 ()

(* Execute one leg all three ways over [r_src] at [source] and demand
   identical partials. *)
let check_leg_equivalence ~ctx view partial ~source r_src =
  let tbl = Base_table.create ~source ~view r_src in
  let generic = Algebra.extend view partial ~with_relation:(source, r_src) in
  (match
     Algebra.extend_with_probe view partial ~source
       ~probe:(fun ~col ~value -> Base_table.probe tbl ~col ~value)
   with
  | None -> Alcotest.fail (ctx ^ ": probe path declined an equality junction")
  | Some p ->
      Alcotest.(check bool) (ctx ^ ": probe ≡ pairwise") true
        (Partial.equal p generic));
  match
    Trie_join.extend view partial ~source
      ~trie:(fun ~col -> Base_table.trie tbl ~col)
  with
  | None -> Alcotest.fail (ctx ^ ": trie path declined an equality junction")
  | Some p ->
      Alcotest.(check bool) (ctx ^ ": trie ≡ pairwise") true
        (Partial.equal p generic)

let test_leg_edge_cases () =
  let r_src =
    Relation.of_list
      [ (Chain.tuple ~key:0 ~a:1 ~b:2, 1); (Chain.tuple ~key:1 ~a:2 ~b:2, 2);
        (Chain.tuple ~key:2 ~a:3 ~b:1, 1) ]
  in
  (* empty delta frontier *)
  let empty = { Partial.lo = 1; hi = 1; data = Delta.empty () } in
  check_leg_equivalence ~ctx:"empty delta" view3 empty ~source:0 r_src;
  check_leg_equivalence ~ctx:"empty delta right" view3 empty ~source:2 r_src;
  (* Null join columns on both sides: Null keys group and match like any
     other value, on every path *)
  let null_tuple k = [| Value.int k; Value.Null; Value.Null |] in
  let r_null =
    Relation.of_list [ (null_tuple 0, 1); (Chain.tuple ~key:1 ~a:1 ~b:1, 1) ]
  in
  let p_null =
    { Partial.lo = 1; hi = 1;
      data = Delta.of_list [ (null_tuple 7, 1); (Chain.tuple ~key:8 ~a:1 ~b:1, 2) ] }
  in
  check_leg_equivalence ~ctx:"Null join columns" view3 p_null ~source:0 r_null;
  check_leg_equivalence ~ctx:"Null join columns right" view3 p_null ~source:2
    r_null;
  (* self-join-shaped spec: identical schemas joined on the same local
     column, plus a second equality and a residual on the junction *)
  let self =
    View_def.make ~name:"self" ~schemas:(Chain.schemas ~n:2)
      ~joins:
        [| Join_spec.make
             ~residual:(Predicate.cmp_const Predicate.Ge 0 (Value.int 0))
             [ (1, 4); (2, 5) ] |]
      ~projection:[| 0; 3 |] ()
  in
  let p_self =
    { Partial.lo = 1; hi = 1;
      data =
        Delta.of_list
          [ (Chain.tuple ~key:0 ~a:1 ~b:2, 1);
            (Chain.tuple ~key:1 ~a:2 ~b:2, 1) ] }
  in
  let r_self =
    Relation.of_list
      [ (Chain.tuple ~key:5 ~a:1 ~b:2, 1); (Chain.tuple ~key:6 ~a:1 ~b:3, 1);
        (Chain.tuple ~key:7 ~a:2 ~b:2, 2) ]
  in
  check_leg_equivalence ~ctx:"self-join shape" self p_self ~source:0 r_self

(* Randomized leg equivalence: dense and sparse key overlap, deletions
   in the frontier (negative counts), multiplicities. *)
let check_leg_random seed =
  let rng = Repro_sim.Rng.create (Int64.of_int (7000 + seed)) in
  let rand_rel n domain =
    Relation.of_list
      (List.init n (fun k ->
           ( Chain.tuple ~key:k
               ~a:(Repro_sim.Rng.int rng domain)
               ~b:(Repro_sim.Rng.int rng domain),
             1 + Repro_sim.Rng.int rng 2 )))
  in
  let r_src = rand_rel (8 + Repro_sim.Rng.int rng 20) 5 in
  let frontier =
    Delta.of_list
      (List.init
         (1 + Repro_sim.Rng.int rng 4)
         (fun k ->
           ( Chain.tuple ~key:(100 + k)
               ~a:(Repro_sim.Rng.int rng 5)
               ~b:(Repro_sim.Rng.int rng 5),
             if Repro_sim.Rng.bool rng 0.3 then -1 else 1 )))
  in
  let partial = { Partial.lo = 1; hi = 1; data = frontier } in
  check_leg_equivalence
    ~ctx:(Printf.sprintf "seed %d left leg" seed)
    view3 partial ~source:0 r_src;
  check_leg_equivalence
    ~ctx:(Printf.sprintf "seed %d right leg" seed)
    view3 partial ~source:2 r_src

let leg_random_case () = Rig.for_seeds join_seeds check_leg_random

(* ————— trie chain evaluation ————— *)

let test_eval_chain () =
  let rng = Repro_sim.Rng.create 99L in
  let initial = Chain.populate view3 ~size:12 ~domain:4 rng in
  let tbls =
    Array.init 3 (fun i -> Base_table.create ~source:i ~view:view3 initial.(i))
  in
  let d = Delta.of_list [ (Chain.tuple ~key:100 ~a:1 ~b:2, 1) ] in
  for pin = 0 to 2 do
    (* reference: pairwise sweep outward from the pin *)
    let p = ref (Partial.of_source_delta view3 pin d) in
    let leg j =
      p := Algebra.extend view3 !p ~with_relation:(j, initial.(j))
    in
    for j = pin - 1 downto 0 do leg j done;
    for j = pin + 1 to 2 do leg j done;
    match
      Trie_join.eval_chain view3 ~pin:(pin, d)
        ~trie:(fun j ~col -> Base_table.trie tbls.(j) ~col)
    with
    | None -> Alcotest.fail "eval_chain declined an all-equality chain"
    | Some q ->
        Alcotest.(check bool)
          (Printf.sprintf "pin %d: trie chain ≡ pairwise sweep" pin)
          true (Partial.equal q !p)
  done

(* ————— end-to-end: strategies are observationally identical ————— *)

let algorithms =
  [ ("sweep", (module Sweep : Algorithm.S));
    ("sweep-batched", (module Sweep_batched : Algorithm.S));
    ("nested-sweep", (module Nested_sweep : Algorithm.S));
    ("strobe", (module Strobe : Algorithm.S)) ]

let base_scenario seed =
  { Scenario.default with
    Scenario.name = "join-diff";
    n_sources = 4;
    init_size = 12;
    domain = 6;
    stream =
      { Update_gen.default with Update_gen.n_updates = 40; mean_gap = 0.7 };
    seed = Int64.of_int seed }

let crashy sc =
  { sc with
    Scenario.name = "join-crash";
    faults =
      { Fault.link = Fault.lossy ~drop:0.05 ~duplicate:0.05 ();
        crashes = [];
        wh_crashes =
          [ { Fault.wh_down_at = 6.; wh_up_at = 14. };
            { Fault.wh_down_at = 22.; wh_up_at = 30. } ] } }

let outage sc =
  { sc with
    Scenario.name = "join-outage";
    deadline = Some 8.;
    breaker_k = 3;
    probe_limit = 0;
    stall_cap = 64;
    faults =
      { Fault.link = Fault.lossy ~drop:0.1 ~duplicate:0.05 ();
        crashes = [ { Fault.source = 1; down_at = 8.; up_at = 20. } ];
        wh_crashes = [] } }

(* Run [sc] under every strategy and demand full observational identity
   with the pairwise reference: view, events, sim time, verdict, message
   counters. Default-strategy runs must additionally never degrade to an
   unindexed scan. *)
let check_strategies ~tag algo sc =
  let run strategy =
    Experiment.run { sc with Scenario.join_strategy = strategy } algo
  in
  let ref_run = run Join_strategy.Pairwise in
  Alcotest.(check bool) (tag ^ ": pairwise run drains") true
    ref_run.Experiment.completed;
  List.iter
    (fun strategy ->
      let name = Join_strategy.to_string strategy in
      let ctx = Printf.sprintf "%s %s" tag name in
      let r = run strategy in
      Alcotest.check Rig.bag (ctx ^ ": final view ≡ pairwise")
        ref_run.Experiment.final_view r.Experiment.final_view;
      Alcotest.(check int) (ctx ^ ": same events")
        ref_run.Experiment.events r.Experiment.events;
      Alcotest.(check (float 0.)) (ctx ^ ": same sim time")
        ref_run.Experiment.sim_time r.Experiment.sim_time;
      Alcotest.check Rig.verdict (ctx ^ ": same verdict")
        ref_run.Experiment.verdict.Checker.verdict
        r.Experiment.verdict.Checker.verdict;
      Alcotest.(check int) (ctx ^ ": same queries sent")
        ref_run.Experiment.metrics.Metrics.queries_sent
        r.Experiment.metrics.Metrics.queries_sent;
      Alcotest.(check int) (ctx ^ ": no probe degraded to a scan") 0
        r.Experiment.metrics.Metrics.unindexed_scans)
    [ Join_strategy.Probe; Join_strategy.Trie ]

let check_differential ~tag algo seed =
  let sc = base_scenario seed in
  check_strategies ~tag:(Printf.sprintf "%s seed %d" tag seed) algo sc;
  check_strategies ~tag:(Printf.sprintf "%s seed %d crash" tag seed) algo
    (crashy sc);
  check_strategies ~tag:(Printf.sprintf "%s seed %d outage" tag seed) algo
    (outage sc)

let diff_case ~tag algo () = Rig.for_seeds join_seeds (check_differential ~tag algo)

(* ————— indexed-by-default: presets never scan ————— *)

let test_default_never_scans () =
  List.iter
    (fun preset ->
      let sc = Option.get (Scenario.find_preset preset) in
      let algo = Option.get (Experiment.algorithm_by_name "sweep") in
      let r = Experiment.run sc algo in
      Alcotest.(check int)
        (Printf.sprintf "%s: default strategy never scans" preset)
        0 r.Experiment.metrics.Metrics.unindexed_scans;
      (* ECA's centralized site routes through the same dispatch *)
      if preset = "centralized" then begin
        let eca = Option.get (Experiment.algorithm_by_name "eca") in
        let r = Experiment.run sc eca in
        Alcotest.(check int) "centralized eca: never scans" 0
          r.Experiment.metrics.Metrics.unindexed_scans
      end)
    [ "sequential"; "concurrent"; "centralized"; "self-maint" ]

let suite =
  [ Alcotest.test_case "strategy: parse and print" `Quick
      test_strategy_strings;
    Alcotest.test_case "trie: build and probe" `Quick test_trie_basics;
    Alcotest.test_case "leg equivalence: edge cases" `Quick
      test_leg_edge_cases;
    Alcotest.test_case "leg equivalence: randomized" `Slow leg_random_case;
    Alcotest.test_case "trie: chain evaluation ≡ pairwise sweep" `Quick
      test_eval_chain;
    Alcotest.test_case "presets: default strategy never scans" `Slow
      test_default_never_scans;
    Alcotest.test_case "differential: sweep" `Slow
      (diff_case ~tag:"sweep" (module Sweep : Algorithm.S));
    Alcotest.test_case "differential: sweep-batched" `Slow
      (diff_case ~tag:"sweep-batched" (module Sweep_batched : Algorithm.S));
    Alcotest.test_case "differential: nested-sweep" `Slow
      (diff_case ~tag:"nested-sweep" (module Nested_sweep : Algorithm.S));
    Alcotest.test_case "differential: strobe" `Slow
      (diff_case ~tag:"strobe" (module Strobe : Algorithm.S)) ]
