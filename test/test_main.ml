let () =
  Alcotest.run "sweep-repro"
    [ ("value", Test_value.suite);
      ("schema-tuple", Test_schema_tuple.suite);
      ("bag", Test_bag.suite);
      ("relation-delta", Test_relation_delta.suite);
      ("predicate", Test_predicate.suite);
      ("view-def", Test_view_def.suite);
      ("view-parser", Test_view_parser.suite);
      ("csv", Test_csv.suite);
      ("determinism", Test_determinism.suite);
      ("algebra", Test_algebra.suite);
      ("sim", Test_sim.suite);
      ("protocol-source", Test_protocol_source.suite);
      ("indexes", Test_indexes.suite);
      ("queue-metrics", Test_queue_metrics.suite);
      ("checker", Test_checker.suite);
      ("workload", Test_workload.suite);
      ("figure5", Test_figure5.suite);
      ("sweep", Test_sweep.suite);
      ("sweep-parallel", Test_sweep_parallel.suite);
      ("sweep-pipelined", Test_sweep_pipelined.suite);
      ("sweep-batched", Test_sweep_batched.suite);
      ("nested-sweep", Test_nested_sweep.suite);
      ("baselines", Test_baselines.suite);
      ("baselines-deep", Test_baselines_deep.suite);
      ("aggregate", Test_aggregate.suite);
      ("fifo-necessity", Test_fifo_necessity.suite);
      ("faults", Test_faults.suite);
      ("recovery", Test_recovery.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("global-txns", Test_global_txns.suite);
      ("node-keys-report", Test_node_keys_report.suite);
      ("matrix", Test_matrix.suite);
      ("more-properties", Test_more_properties.suite);
      ("analytic", Test_analytic.suite);
      ("observability", Test_observability.suite);
      ("experiments-smoke", Test_experiments_smoke.suite) ]
