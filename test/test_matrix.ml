(* The Table 1 matrix as a property: on randomized concurrent workloads
   every algorithm must test at (or above) its claimed consistency level.
   This is the strongest end-to-end check in the suite — it exercises the
   full simulator, every algorithm's state machine, and the checker. *)

open Repro_harness
open Repro_consistency
open Repro_warehouse

let scenario ~seed ~n ~updates ~gap ~topology =
  { Scenario.default with
    name = Printf.sprintf "matrix-n%d-s%Ld" n seed;
    n_sources = n;
    init_size = 25;
    domain = 8;
    stream =
      { Repro_workload.Update_gen.default with
        n_updates = updates; mean_gap = gap; p_insert = 0.55 };
    topology;
    seed }

let required_level = function
  | "sweep" | "sweep-parallel" | "sweep-pipelined" | "sweep-batched"
  | "c-strobe" ->
      Checker.Complete
  | "nested-sweep" -> Checker.Strong
  | "strobe" -> Checker.Strong
  | "eca" | "recompute" | "naive" -> Checker.Convergent
  | other -> Alcotest.failf "unknown algorithm %s" other

let run_matrix ~topology ~gap ~seeds ~n ~updates ~exclude () =
  List.iter
    (fun seed ->
      let sc = scenario ~seed ~n ~updates ~gap ~topology in
      List.iter
        (fun (name, alg) ->
          if not (List.mem name exclude) then begin
            let r = Experiment.run sc alg in
            let got = r.Experiment.verdict.Checker.verdict in
            let want = required_level name in
            if Checker.compare_verdict got want > 0 then
              Alcotest.failf "%s on seed %Ld: wanted ≥%s, got %s (%s)" name
                seed
                (Checker.verdict_to_string want)
                (Checker.verdict_to_string got)
                r.Experiment.verdict.Checker.detail
          end)
        (Experiment.algorithms_for sc))
    seeds

(* Under heavy concurrency. The naive baseline is excluded here: it is
   *expected* to corrupt the view (asserted separately below). *)
let test_concurrent_distributed () =
  run_matrix ~topology:Scenario.Distributed ~gap:0.6 ~seeds:[ 1L; 2L; 3L; 4L ]
    ~n:4 ~updates:60 ~exclude:[ "naive" ] ()

let test_concurrent_distributed_n2 () =
  run_matrix ~topology:Scenario.Distributed ~gap:0.5 ~seeds:[ 5L; 6L ] ~n:2
    ~updates:50 ~exclude:[ "naive" ] ()

let test_concurrent_centralized () =
  run_matrix ~topology:Scenario.Centralized ~gap:0.6 ~seeds:[ 7L; 8L ] ~n:3
    ~updates:50 ~exclude:[ "naive" ] ()

(* With updates spaced far apart there is no interference: then even the
   naive algorithm must be exact, and every algorithm must be complete or
   strong. *)
let test_sequential_everyone_exact () =
  List.iter
    (fun seed ->
      let sc =
        scenario ~seed ~n:3 ~updates:30 ~gap:60. ~topology:Scenario.Distributed
      in
      let sc =
        { sc with
          Scenario.stream =
            { sc.Scenario.stream with Repro_workload.Update_gen.fixed_gap = true } }
      in
      List.iter
        (fun (name, alg) ->
          let r = Experiment.run sc alg in
          let got = r.Experiment.verdict.Checker.verdict in
          let want =
            match name with
            | "sweep" | "sweep-parallel" | "sweep-pipelined" | "sweep-batched"
            | "c-strobe" | "naive" | "recompute" ->
                Checker.Complete
            | "nested-sweep" -> Checker.Complete
            | "strobe" -> Checker.Strong
            | _ -> Checker.Strong
          in
          if Checker.compare_verdict got want > 0 then
            Alcotest.failf "sequential %s seed %Ld: wanted ≥%s, got %s (%s)"
              name seed
              (Checker.verdict_to_string want)
              (Checker.verdict_to_string got)
              r.Experiment.verdict.Checker.detail)
        (Experiment.algorithms_for sc))
    [ 11L; 12L; 13L ]

(* The anomaly the paper opens with: without compensation, concurrent
   updates corrupt the view on at least some seeds. *)
let test_naive_corrupts_eventually () =
  let corrupted =
    List.exists
      (fun seed ->
        let sc =
          scenario ~seed ~n:4 ~updates:60 ~gap:0.4
            ~topology:Scenario.Distributed
        in
        let r = Experiment.run sc (module Naive : Algorithm.S) in
        Checker.compare_verdict r.Experiment.verdict.Checker.verdict
          Checker.Convergent
        > 0)
      [ 1L; 2L; 3L; 4L; 5L ]
  in
  Alcotest.(check bool) "naive corrupts the view on some seed" true corrupted

let suite =
  [ Alcotest.test_case "concurrent, distributed, n=4" `Slow
      test_concurrent_distributed;
    Alcotest.test_case "concurrent, distributed, n=2" `Slow
      test_concurrent_distributed_n2;
    Alcotest.test_case "concurrent, centralized (incl. ECA)" `Slow
      test_concurrent_centralized;
    Alcotest.test_case "sequential: everyone exact" `Slow
      test_sequential_everyone_exact;
    Alcotest.test_case "naive corrupts under concurrency" `Slow
      test_naive_corrupts_eventually ]
