(* Persistent join-column indexes at the sources: maintenance under
   updates, probe results, and equivalence of the indexed sweep-query
   fast path with the generic hash join. *)

open Repro_relational
open Repro_sim
open Repro_source
open Repro_workload

let view = Chain.view ~n:3 ()

let test_index_maintenance () =
  let tbl =
    Base_table.create ~source:1 ~indexes:[ 1; 2 ]
      (Relation.of_tuples
         [ Chain.tuple ~key:0 ~a:5 ~b:7; Chain.tuple ~key:1 ~a:5 ~b:8 ])
  in
  Alcotest.(check (list int)) "indexed columns" [ 1; 2 ]
    (Base_table.indexed_columns tbl);
  Alcotest.(check int) "probe a=5 finds both" 2
    (List.length (Base_table.probe tbl ~col:1 ~value:(Value.int 5)));
  Alcotest.(check int) "probe b=7 finds one" 1
    (List.length (Base_table.probe tbl ~col:2 ~value:(Value.int 7)));
  (* updates keep the index exact *)
  ignore (Base_table.apply tbl (Delta.deletion (Chain.tuple ~key:0 ~a:5 ~b:7)));
  Alcotest.(check int) "after delete" 1
    (List.length (Base_table.probe tbl ~col:1 ~value:(Value.int 5)));
  Alcotest.(check int) "emptied bucket" 0
    (List.length (Base_table.probe tbl ~col:2 ~value:(Value.int 7)));
  ignore
    (Base_table.apply tbl
       (Delta.of_list [ (Chain.tuple ~key:2 ~a:5 ~b:7, 3) ]));
  (match Base_table.probe tbl ~col:2 ~value:(Value.int 7) with
  | [ (_, 3) ] -> ()
  | _ -> Alcotest.fail "expected multiplicity 3 via index");
  (* an unindexed column degrades to a counted scan with the same answer *)
  let before = Base_table.scan_count tbl in
  Alcotest.(check int) "unindexed probe scans to the same answer" 1
    (List.length (Base_table.probe tbl ~col:0 ~value:(Value.int 2)));
  Alcotest.(check int) "and the degradation is counted" (before + 1)
    (Base_table.scan_count tbl)

(* Property: the probe-served extension equals the generic hash join on
   random relations and partials, on both sides. *)
let qcheck_probe_equals_extend =
  let gen_rel =
    QCheck.map
      (fun entries ->
        Relation.of_list
          (List.map
             (fun ((k : int), a, b) -> (Chain.tuple ~key:k ~a ~b, 1))
             (List.sort_uniq compare entries)))
      QCheck.(
        small_list (triple (int_range 0 9) (int_range 0 3) (int_range 0 3)))
  in
  QCheck.Test.make ~name:"indexed probe ≡ generic extend" ~count:200
    (QCheck.triple gen_rel gen_rel QCheck.bool)
    (fun (r_src, r_mid, left_side) ->
      let source = if left_side then 0 else 2 in
      let tbl =
        Base_table.create ~source
          ~indexes:(if left_side then [ 2 ] else [ 1 ])
          r_src
      in
      let partial = Partial.of_relation view 1 r_mid in
      let via_probe =
        Algebra.extend_with_probe view partial ~source
          ~probe:(fun ~col ~value -> Base_table.probe tbl ~col ~value)
      in
      let generic =
        Algebra.extend view partial ~with_relation:(source, r_src)
      in
      match via_probe with
      | Some p -> Partial.equal p generic
      | None -> false)

(* Residual junctions are served by the probe path now (the residual
   filters probe hits when the adjacent ranges meet); only a junction
   with no equality at all — a cross product, nothing to probe on —
   declines. *)
let test_probe_serves_residuals_declines_cross () =
  let schemas = Chain.schemas ~n:2 in
  let v =
    View_def.make ~name:"residual" ~schemas
      ~joins:
        [| Join_spec.make
             ~residual:(Predicate.cmp_const Predicate.Gt 1 (Value.int 0))
             [ (2, 4) ] |]
      ~projection:[| 0; 3 |] ()
  in
  let r_src =
    Relation.of_tuples
      [ Chain.tuple ~key:0 ~a:1 ~b:1; Chain.tuple ~key:1 ~a:0 ~b:1;
        Chain.tuple ~key:2 ~a:2 ~b:2 ]
  in
  let tbl = Base_table.create ~source:0 ~view:v r_src in
  let partial =
    { Partial.lo = 1; hi = 1;
      data = Delta.of_list [ (Chain.tuple ~key:0 ~a:1 ~b:2, 1) ] }
  in
  (match
     Algebra.extend_with_probe v partial ~source:0
       ~probe:(fun ~col ~value -> Base_table.probe tbl ~col ~value)
   with
  | None -> Alcotest.fail "residual junction must be served, not declined"
  | Some p ->
      Alcotest.(check bool) "residual-filtered probe ≡ generic extend" true
        (Partial.equal p (Algebra.extend v partial ~with_relation:(0, r_src))));
  let cross =
    View_def.make ~name:"cross" ~schemas
      ~joins:[| Join_spec.make [] |]
      ~projection:[| 0; 3 |] ()
  in
  Alcotest.(check bool) "cross-product junction declines" true
    (Algebra.extend_with_probe cross partial ~source:0
       ~probe:(fun ~col:_ ~value:_ -> [])
    = None)

let test_source_auto_indexes () =
  let engine = Engine.create () in
  let src =
    Source_node.create engine ~view ~id:1
      ~init:(Relation.of_tuples [ Chain.tuple ~key:0 ~a:1 ~b:2 ])
      ~send:(fun _ -> ())
      ~trace:(Trace.create ())
  in
  (* middle source indexes both its join columns: a (=1) and b (=2) *)
  Alcotest.(check (list int)) "auto-derived join columns" [ 1; 2 ]
    (Base_table.indexed_columns (Source_node.table src));
  let endpoint =
    Source_node.create engine ~view ~id:0
      ~init:(Relation.of_tuples [ Chain.tuple ~key:0 ~a:1 ~b:2 ])
      ~send:(fun _ -> ())
      ~trace:(Trace.create ())
  in
  Alcotest.(check (list int)) "endpoint indexes one column" [ 2 ]
    (Base_table.indexed_columns (Source_node.table endpoint))

let suite =
  [ Alcotest.test_case "index maintenance under updates" `Quick
      test_index_maintenance;
    QCheck_alcotest.to_alcotest qcheck_probe_equals_extend;
    Alcotest.test_case "fast path serves residuals, declines cross products"
      `Quick test_probe_serves_residuals_declines_cross;
    Alcotest.test_case "sources auto-index join columns" `Quick
      test_source_auto_indexes ]
