(* Serving-tier suite: the read path under load.

   Unit layers first (session-guarantee checker, read generator, the
   server's staleness accounting and admission control on a bare
   engine), then seeded read storms over five maintenance algorithms
   with four invariants per run:

     1. no blocked reads — every issued read ends Fresh, Stale or Shed;
     2. SLO honored — Fresh stamps are within the SLO, Stale stamps sit
        strictly between the SLO and the hard ceiling (8× SLO);
     3. determinism — the same seed replays a bit-identical read log;
     4. monotonic reads — no session ever observes the view regress.

   Also here: the flash-crowd × source-outage acceptance run, the
   degraded (open-breaker) run that must keep answering stale-but-
   stamped, and the zero-update read-only run (per-update ratios must
   emit 0, the checker must still grade).

   Seed count comes from SERVE_SEEDS (default 5; `make serve` raises
   it). *)

open Repro_sim
open Repro_relational
open Repro_warehouse
open Repro_consistency
open Repro_harness
open Repro_workload
open Repro_serving

let serve_seeds = Rig.seeds_env ~var:"SERVE_SEEDS" ~default:5

(* ————— session-guarantee checker ————— *)

let rv ?(session = 0) ?(issued_at = 0.) ~version ~incorporated ~acked () =
  { Checker.session; issued_at; version;
    incorporated = Array.of_list incorporated; acked = Array.of_list acked }

let test_sessions_empty () =
  let r = Checker.check_sessions ~n_sources:2 [] in
  Alcotest.(check int) "nothing graded" 0 r.Checker.reads_graded;
  Alcotest.(check bool) "MR holds vacuously" true r.Checker.monotonic_reads;
  Alcotest.(check bool) "RYW holds vacuously" true r.Checker.read_your_writes

let test_sessions_clean () =
  let reads =
    [ rv ~session:0 ~version:1 ~incorporated:[ 1; 0 ] ~acked:[ 1; 0 ] ();
      rv ~session:1 ~version:1 ~incorporated:[ 1; 0 ] ~acked:[ 0; 0 ] ();
      rv ~session:0 ~version:2 ~incorporated:[ 1; 1 ] ~acked:[ 1; 1 ] () ]
  in
  let r = Checker.check_sessions ~n_sources:2 reads in
  Alcotest.(check int) "three graded" 3 r.Checker.reads_graded;
  Alcotest.(check bool) "MR OK" true r.Checker.monotonic_reads;
  Alcotest.(check int) "no MR violations" 0 r.Checker.mr_violations;
  Alcotest.(check bool) "RYW OK" true r.Checker.read_your_writes;
  Alcotest.(check int) "no RYW violations" 0 r.Checker.ryw_violations

let test_sessions_mr_violation () =
  (* same session, version regresses between its two reads *)
  let reads =
    [ rv ~session:0 ~version:3 ~incorporated:[ 2; 1 ] ~acked:[ 2; 1 ] ();
      rv ~session:1 ~version:3 ~incorporated:[ 2; 1 ] ~acked:[ 2; 1 ] ();
      rv ~session:0 ~version:2 ~incorporated:[ 2; 1 ] ~acked:[ 2; 1 ] () ]
  in
  let r = Checker.check_sessions ~n_sources:2 reads in
  Alcotest.(check bool) "MR violated" false r.Checker.monotonic_reads;
  Alcotest.(check int) "one MR violation" 1 r.Checker.mr_violations;
  (* a per-source incorporated count regressing is also a regression,
     even at an equal version *)
  let reads =
    [ rv ~session:0 ~version:2 ~incorporated:[ 2; 1 ] ~acked:[ 2; 1 ] ();
      rv ~session:0 ~version:2 ~incorporated:[ 1; 2 ] ~acked:[ 2; 2 ] () ]
  in
  let r = Checker.check_sessions ~n_sources:2 reads in
  Alcotest.(check bool) "component regress violates MR" false
    r.Checker.monotonic_reads

let test_sessions_ryw_violation () =
  (* session 1 is pinned to source 1: its read must reflect source 1's
     acked writes — here 2 acked but only 1 incorporated *)
  let reads =
    [ rv ~session:1 ~version:1 ~incorporated:[ 0; 1 ] ~acked:[ 0; 2 ] () ]
  in
  let r = Checker.check_sessions ~n_sources:2 reads in
  Alcotest.(check bool) "RYW violated" false r.Checker.read_your_writes;
  Alcotest.(check int) "one RYW violation" 1 r.Checker.ryw_violations;
  (* another source lagging does NOT violate session 1's RYW *)
  let reads =
    [ rv ~session:1 ~version:1 ~incorporated:[ 0; 2 ] ~acked:[ 9; 2 ] () ]
  in
  let r = Checker.check_sessions ~n_sources:2 reads in
  Alcotest.(check bool) "other sources may lag" true r.Checker.read_your_writes

let test_sessions_invalid () =
  Alcotest.check_raises "bad n_sources"
    (Invalid_argument "Checker.check_sessions: n_sources < 1") (fun () ->
      ignore (Checker.check_sessions ~n_sources:0 []));
  let bad =
    [ rv ~session:5 ~version:0 ~incorporated:[ 0; 0 ] ~acked:[ 0; 0 ] () ]
  in
  Alcotest.(check bool) "session out of range raises" true
    (try
       ignore (Checker.check_sessions ~n_sources:2 bad);
       false
     with Invalid_argument _ -> true)

(* ————— read generator ————— *)

let test_reads_over () =
  Alcotest.(check int) "rate 2 over 10" 20
    (Read_gen.reads_over ~rate:2. ~burst:None ~horizon:10.);
  Alcotest.(check int) "burst excess included" 36
    (Read_gen.reads_over ~rate:2.
       ~burst:(Some { Read_gen.at = 3.; duration = 2.; multiplier = 5. })
       ~horizon:10.);
  Alcotest.(check int) "zero rate" 0
    (Read_gen.reads_over ~rate:0. ~burst:None ~horizon:10.)

let collect_arrivals ~seed cfg =
  let engine = Engine.create ~seed () in
  let rng = Rng.split (Engine.rng engine) in
  let log = ref [] in
  Read_gen.drive engine rng cfg ~n_sessions:3
    ~read:(fun ~session ~kind ->
      log := (Engine.now engine, session, kind) :: !log)
    ();
  (match Engine.run engine with `Drained -> () | _ -> assert false);
  List.rev !log

let test_read_gen_deterministic () =
  let cfg = { Read_gen.default with Read_gen.n_reads = 60 } in
  let a = collect_arrivals ~seed:3L cfg in
  let b = collect_arrivals ~seed:3L cfg in
  Alcotest.(check int) "exactly n_reads issued" 60 (List.length a);
  Alcotest.(check bool) "same seed, same arrivals" true (a = b);
  let c = collect_arrivals ~seed:4L cfg in
  Alcotest.(check bool) "different seed, different arrivals" true (a <> c)

let test_read_gen_burst_compresses () =
  let burst = { Read_gen.at = 10.; duration = 10.; multiplier = 8. } in
  let base = { Read_gen.default with Read_gen.rate = 1.0; n_reads = 80 } in
  let inside log =
    List.length
      (List.filter (fun (t, _, _) -> t >= 10. && t < 20.) log)
  in
  let flat = inside (collect_arrivals ~seed:9L base) in
  let crowd =
    inside (collect_arrivals ~seed:9L { base with Read_gen.burst = Some burst })
  in
  Alcotest.(check bool)
    (Printf.sprintf "burst window densifies (%d -> %d)" flat crowd)
    true
    (crowd > 2 * max 1 flat)

(* ————— server on a bare engine ————— *)

let obs = Repro_observability.Obs.disabled ()

let mk_server ?config engine ~view =
  Server.create ?config ~engine ~rng:(Rng.split (Engine.rng engine)) ~obs
    ~n_sources:2 ~view ()

let run_engine engine =
  match Engine.run engine with `Drained -> () | _ -> assert false

let test_staleness_monotone_across_heal () =
  let engine = Engine.create ~seed:1L () in
  let srv = mk_server engine ~view:(fun () -> Bag.create ()) in
  let samples = ref [] in
  let sample () = samples := Server.staleness srv :: !samples in
  Engine.at engine ~time:0. (fun () ->
      Server.note_delivery srv ~source:0 ~txn:0);
  List.iter (fun t -> Engine.at engine ~time:t sample) [ 1.; 4.; 9. ];
  (* the heal: maintenance catches up at t=12 *)
  Engine.at engine ~time:12. (fun () -> Server.note_install srv [ (0, 0) ]);
  Engine.at engine ~time:13. sample;
  run_engine engine;
  match List.rev !samples with
  | [ s1; s2; s3; s4 ] ->
      Alcotest.(check (float 1e-9)) "staleness = age of oldest pending" 1. s1;
      Alcotest.(check bool) "monotone while lagging" true (s1 < s2 && s2 < s3);
      Alcotest.(check (float 1e-9)) "zero after the heal" 0. s4
  | _ -> Alcotest.fail "expected four samples"

let test_duplicate_delivery_deduped () =
  let engine = Engine.create ~seed:1L () in
  let srv = mk_server engine ~view:(fun () -> Bag.create ()) in
  Engine.at engine ~time:0. (fun () ->
      (* a crash window re-acknowledges the same txn *)
      Server.note_delivery srv ~source:0 ~txn:7;
      Server.note_delivery srv ~source:0 ~txn:7);
  Engine.at engine ~time:5. (fun () -> Server.note_install srv [ (0, 7) ]);
  Engine.at engine ~time:6. (fun () ->
      Alcotest.(check (float 1e-9)) "single install clears the duplicate" 0.
        (Server.staleness srv));
  run_engine engine

let classification_config =
  { Server.staleness_slo = 2.0; staleness_ceiling = 16.0; read_cap = 4;
    service_mean = 0.01 }

let test_outcome_classification () =
  let engine = Engine.create ~seed:1L () in
  let bag = Bag.create () in
  Bag.add bag (Tuple.ints [ 1; 2 ]) 3;
  let srv = mk_server ~config:classification_config engine ~view:(fun () -> bag) in
  let outcomes = ref [] in
  let read_at t =
    Engine.at engine ~time:t (fun () ->
        outcomes := Server.read srv ~session:0 ~kind:Read_gen.Aggregate :: !outcomes)
  in
  Engine.at engine ~time:0. (fun () ->
      Server.note_delivery srv ~source:0 ~txn:0);
  read_at 1.;  (* staleness 1 <= slo: fresh *)
  read_at 7.;  (* slo < 7 <= ceiling: stale, stamped *)
  read_at 20.;  (* past the ceiling: shed *)
  run_engine engine;
  (match List.rev !outcomes with
  | [ Server.Fresh; Server.Stale s; Server.Shed ] ->
      Alcotest.(check (float 1e-9)) "stale read carries its stamp" 7. s
  | _ -> Alcotest.fail "expected fresh, stale, shed");
  Alcotest.(check int) "fresh counted" 1 (Server.fresh srv);
  Alcotest.(check int) "stale counted" 1 (Server.stale srv);
  Alcotest.(check int) "ceiling shed counted" 1 (Server.shed_ceiling srv);
  Alcotest.(check int) "no cap shed" 0 (Server.shed_cap srv);
  (* served reads answered from the live view *)
  List.iter
    (fun (r : Server.record) ->
      if r.Server.outcome <> Server.Shed then
        Alcotest.(check int) "aggregate answer is the view total" 3
          r.Server.answer)
    (Server.log srv)

let test_cap_sheds_not_queues () =
  let engine = Engine.create ~seed:1L () in
  let config =
    { Server.default_config with Server.read_cap = 2; service_mean = 10. }
  in
  let srv = mk_server ~config engine ~view:(fun () -> Bag.create ()) in
  let shed_now = ref 0 in
  Engine.at engine ~time:0. (fun () ->
      for _ = 1 to 5 do
        match Server.read srv ~session:0 ~kind:Read_gen.Aggregate with
        | Server.Shed -> incr shed_now
        | _ -> ()
      done);
  (* service times are exponential with mean 10: by t=200 both tokens
     are long since back, so a later read is admitted again *)
  Engine.at engine ~time:200. (fun () ->
      Alcotest.(check bool) "token returns after service" true
        (Server.read srv ~session:0 ~kind:Read_gen.Aggregate <> Server.Shed));
  run_engine engine;
  Alcotest.(check int) "cap admits exactly read_cap reads" 3 !shed_now;
  Alcotest.(check int) "shed reads attributed to the cap" 3
    (Server.shed_cap srv);
  Alcotest.(check int) "no read ever waits: served + shed = issued" 6
    (Server.served srv + Server.shed srv)

(* ————— seeded read storms × algorithms ————— *)

let storm_scenario seed =
  { Scenario.default with
    Scenario.name = "read-storm";
    n_sources = 4;
    init_size = 12;
    domain = 8;
    stream = { Update_gen.default with Update_gen.n_updates = 40; mean_gap = 1.0 };
    read_rate = 6.0;
    staleness_slo = 2.0;
    read_cap = 8;
    read_burst = Some { Read_gen.at = 10.; duration = 8.; multiplier = 6. };
    seed = Int64.of_int seed }

let check_storm ~tag algo seed =
  let scenario = storm_scenario seed in
  let r = Experiment.run ~max_events:500_000 scenario algo in
  let ctx fmt = Printf.sprintf ("%s seed %d: " ^^ fmt) tag seed in
  let m = r.Experiment.metrics in
  Alcotest.(check bool) (ctx "run drains") true r.Experiment.completed;
  (* 1. every read classified, none blocked *)
  let issued =
    Read_gen.reads_over ~rate:scenario.Scenario.read_rate
      ~burst:scenario.Scenario.read_burst
      ~horizon:
        (float_of_int scenario.Scenario.stream.Update_gen.n_updates
        *. scenario.Scenario.stream.Update_gen.mean_gap)
  in
  Alcotest.(check int) (ctx "every issued read is logged") issued
    (List.length r.Experiment.reads);
  Alcotest.(check int)
    (ctx "served + shed covers the log")
    (List.length r.Experiment.reads)
    (m.Metrics.reads_served + m.Metrics.reads_shed);
  (* 2. SLO honored on every stamp *)
  let slo = scenario.Scenario.staleness_slo in
  let ceiling = slo *. 8. in
  List.iter
    (fun (rec_ : Server.record) ->
      match rec_.Server.outcome with
      | Server.Fresh ->
          Alcotest.(check bool) (ctx "fresh within SLO") true
            (rec_.Server.staleness <= slo)
      | Server.Stale s ->
          Alcotest.(check bool) (ctx "stale stamp matches the record") true
            (s = rec_.Server.staleness);
          Alcotest.(check bool) (ctx "stale within (slo, ceiling]") true
            (s > slo && s <= ceiling)
      | Server.Shed -> ())
    r.Experiment.reads;
  Alcotest.(check bool) (ctx "p99 >= p50 >= 0") true
    (m.Metrics.read_staleness_p99 >= m.Metrics.read_staleness_p50
    && m.Metrics.read_staleness_p50 >= 0.);
  (* 3. deterministic replay, bit-identical *)
  let r2 = Experiment.run ~max_events:500_000 scenario algo in
  Alcotest.(check bool) (ctx "replay: identical read log") true
    (r.Experiment.reads = r2.Experiment.reads);
  Rig.check_replay ~ctx:(Printf.sprintf "%s seed %d" tag seed) r r2;
  (* 4. session guarantees: MR must hold (the view version the server
     exposes never regresses); RYW is measured, not required *)
  match r.Experiment.sessions with
  | None -> Alcotest.fail (ctx "expected a session report")
  | Some s ->
      Alcotest.(check bool) (ctx "monotonic reads hold") true
        s.Checker.monotonic_reads;
      Alcotest.(check int) (ctx "every served read graded")
        m.Metrics.reads_served s.Checker.reads_graded

let storm_case ~tag algo () = Rig.for_seeds serve_seeds (check_storm ~tag algo)

(* ————— shed only above cap ————— *)

let test_no_shed_below_cap () =
  (* an SLO (and so a ceiling) the run can never exceed, and more tokens
     than reads: nothing may be shed and everything is fresh *)
  let scenario =
    { (storm_scenario 3) with
      Scenario.name = "uncapped";
      staleness_slo = 1e6;
      read_cap = 4096;
      read_burst = None }
  in
  let r = Experiment.run scenario (module Sweep : Algorithm.S) in
  let m = r.Experiment.metrics in
  Alcotest.(check int) "nothing shed" 0 m.Metrics.reads_shed;
  Alcotest.(check int) "nothing stale" 0 m.Metrics.reads_stale;
  Alcotest.(check bool) "reads actually ran" true (m.Metrics.reads_served > 0)

(* ————— flash crowd × source outage (acceptance) ————— *)

let test_flash_crowd_with_outage algo_name algo () =
  let scenario =
    match Scenario.find_preset "flash-crowd" with
    | Some s -> s
    | None -> Alcotest.fail "flash-crowd preset missing"
  in
  let r = Experiment.run ~max_events:2_000_000 scenario algo in
  let m = r.Experiment.metrics in
  let ctx s = algo_name ^ ": " ^ s in
  Alcotest.(check bool) (ctx "run drains") true r.Experiment.completed;
  Alcotest.(check int)
    (ctx "zero unboundedly-blocked reads: all classified")
    (List.length r.Experiment.reads)
    (m.Metrics.reads_served + m.Metrics.reads_shed);
  Alcotest.(check bool) (ctx "the crowd was served") true
    (m.Metrics.reads_served > 0);
  Alcotest.(check bool) (ctx "the outage shows up as stale stamps") true
    (m.Metrics.reads_stale > 0);
  Alcotest.(check bool) (ctx "admission control engaged") true
    (m.Metrics.reads_shed > 0);
  Alcotest.(check bool) (ctx "staleness p99 emitted") true
    (m.Metrics.read_staleness_p99 > 0.);
  let r2 = Experiment.run ~max_events:2_000_000 scenario algo in
  Alcotest.(check bool) (ctx "deterministic per seed") true
    (r.Experiment.reads = r2.Experiment.reads
    && m.Metrics.reads_shed = r2.Experiment.metrics.Metrics.reads_shed)

(* ————— degraded mode keeps serving ————— *)

let test_degraded_run_keeps_serving () =
  (* Source 1 dies at t=10 for far longer than the probe budget
     tolerates: the breaker trips, exhausts its probes and is
     abandoned, so the run ends degraded with updates parked — but the
     server must keep answering throughout, stamping reads stale. (The
     link itself heals at t=400, long after the last read, so the
     transport's update notices eventually drain instead of
     retransmitting forever.) *)
  let scenario =
    { Scenario.default with
      Scenario.name = "degraded-serving";
      n_sources = 4;
      init_size = 12;
      domain = 8;
      stream =
        { Update_gen.default with Update_gen.n_updates = 20; mean_gap = 1.5 };
      deadline = Some 8.;
      breaker_k = 2;
      probe_limit = 2;
      stall_cap = 64;
      read_rate = 3.0;
      staleness_slo = 0.5;
      read_cap = 16;
      faults =
        { Fault.link = Fault.reliable;
          crashes = [ { Fault.source = 1; down_at = 10.; up_at = 400. } ];
          wh_crashes = [] };
      seed = 7L }
  in
  let r =
    Experiment.run ~max_events:500_000 scenario (module Sweep : Algorithm.S)
  in
  let m = r.Experiment.metrics in
  Alcotest.(check bool) "run drains degraded" true
    (r.Experiment.completed && r.Experiment.degraded);
  Alcotest.(check bool) "reads answered during the outage" true
    (m.Metrics.reads_served > 0);
  Alcotest.(check bool) "stale-but-stamped answers" true
    (m.Metrics.reads_stale > 0);
  List.iter
    (fun (rec_ : Server.record) ->
      match rec_.Server.outcome with
      | Server.Stale s ->
          Alcotest.(check bool) "every stale answer is stamped" true (s > 0.)
      | _ -> ())
    r.Experiment.reads;
  Alcotest.(check int) "no read blocked" (List.length r.Experiment.reads)
    (m.Metrics.reads_served + m.Metrics.reads_shed)

(* ————— zero-update read-only run ————— *)

let test_read_only_run () =
  let scenario =
    { Scenario.default with
      Scenario.name = "read-only";
      init_size = 12;
      domain = 8;
      stream = { Update_gen.default with Update_gen.n_updates = 0 };
      read_rate = 2.0;
      seed = 5L }
  in
  let r = Experiment.run scenario (module Sweep : Algorithm.S) in
  let m = r.Experiment.metrics in
  Alcotest.(check bool) "run drains" true r.Experiment.completed;
  Alcotest.(check bool) "reads ran against the static view" true
    (m.Metrics.reads_served > 0);
  Alcotest.(check int) "all fresh" 0 (m.Metrics.reads_stale + m.Metrics.reads_shed);
  Alcotest.(check (float 0.)) "per-update ratio is 0, not a division" 0.
    (Metrics.messages_per_update m);
  Alcotest.(check (float 0.)) "mean staleness is 0 on zero updates" 0.
    (Metrics.mean_staleness m);
  Alcotest.check Rig.verdict "checker still grades" Checker.Complete
    r.Experiment.verdict.Checker.verdict;
  match r.Experiment.sessions with
  | Some s ->
      Alcotest.(check bool) "RYW trivially holds" true
        s.Checker.read_your_writes
  | None -> Alcotest.fail "expected a session report"

let suite =
  [ Alcotest.test_case "sessions: empty log" `Quick test_sessions_empty;
    Alcotest.test_case "sessions: clean log" `Quick test_sessions_clean;
    Alcotest.test_case "sessions: monotonic-reads violation" `Quick
      test_sessions_mr_violation;
    Alcotest.test_case "sessions: read-your-writes violation" `Quick
      test_sessions_ryw_violation;
    Alcotest.test_case "sessions: invalid inputs" `Quick test_sessions_invalid;
    Alcotest.test_case "read-gen: reads_over sizing" `Quick test_reads_over;
    Alcotest.test_case "read-gen: deterministic per seed" `Quick
      test_read_gen_deterministic;
    Alcotest.test_case "read-gen: flash-crowd burst densifies" `Quick
      test_read_gen_burst_compresses;
    Alcotest.test_case "server: staleness monotone across heal" `Quick
      test_staleness_monotone_across_heal;
    Alcotest.test_case "server: duplicate delivery deduped" `Quick
      test_duplicate_delivery_deduped;
    Alcotest.test_case "server: fresh / stale / shed classification" `Quick
      test_outcome_classification;
    Alcotest.test_case "server: cap sheds, never queues" `Quick
      test_cap_sheds_not_queues;
    Alcotest.test_case "storm: no shed below cap" `Quick test_no_shed_below_cap;
    Alcotest.test_case "storm: degraded run keeps serving" `Quick
      test_degraded_run_keeps_serving;
    Alcotest.test_case "storm: zero-update read-only run" `Quick
      test_read_only_run;
    Alcotest.test_case "flash-crowd acceptance: sweep" `Quick
      (test_flash_crowd_with_outage "sweep" (module Sweep : Algorithm.S));
    Alcotest.test_case "flash-crowd acceptance: sweep-batched" `Quick
      (test_flash_crowd_with_outage "sweep-batched"
         (module Sweep_batched : Algorithm.S));
    Alcotest.test_case "storm invariants: sweep" `Slow
      (storm_case ~tag:"sweep" (module Sweep : Algorithm.S));
    Alcotest.test_case "storm invariants: sweep-batched" `Slow
      (storm_case ~tag:"sweep-batched" (module Sweep_batched : Algorithm.S));
    Alcotest.test_case "storm invariants: nested-sweep" `Slow
      (storm_case ~tag:"nested-sweep" (module Nested_sweep : Algorithm.S));
    Alcotest.test_case "storm invariants: strobe" `Slow
      (storm_case ~tag:"strobe" (module Strobe : Algorithm.S));
    Alcotest.test_case "storm invariants: c-strobe" `Slow
      (storm_case ~tag:"c-strobe" (module C_strobe : Algorithm.S)) ]
