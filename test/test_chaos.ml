(* Composed chaos suite: randomized [Fault.chaos] schedules — heavy link
   faults, overlapping source-crash windows, a warehouse outage — with
   query deadlines and circuit breakers armed. Four invariants per seed
   and algorithm:

     1. progress     — the run drains, is not degraded (every chaos
                       window heals by 0.7·horizon) and incorporates
                       every update;
     2. determinism  — the same seed replays to a bit-identical final
                       view with identical counters;
     3. verdict      — at least the algorithm's consistency floor;
     4. convergence  — quiescence within a bounded sim-time after the
                       last crash window heals, and (for the SWEEP
                       family) a final view bit-identical to the same
                       run with the crash windows deleted — on-line
                       error correction plus breaker replay loses
                       nothing.

   Seed count comes from CHAOS_SEEDS (default 6 so `dune runtest` stays
   fast; `make chaos` raises it to 50). Also here: the permanent-crash
   regression (a source that never heals must park its updates behind an
   abandoned breaker and drain Degraded instead of stalling forever) and
   the scripted overlapping-windows scenario from the issue. *)

open Repro_sim
open Repro_warehouse
open Repro_consistency
open Repro_harness
open Repro_workload

let chaos_seeds = Rig.seeds_env ~var:"CHAOS_SEEDS" ~default:6

let n_updates = 40
let mean_gap = 1.5
let horizon = float_of_int n_updates *. mean_gap

(* One chaos scenario per seed: the fault schedule is drawn from the
   seed, the workload stream from [Scenario.seed] (split after link
   wiring), so schedule and workload vary independently per seed. *)
let chaos_scenario seed =
  let rng = Rng.create (Int64.of_int seed) in
  let faults = Fault.chaos rng ~n_sources:4 ~horizon in
  { Scenario.default with
    Scenario.name = "chaos-prop";
    n_sources = 4;
    init_size = 12;
    domain = 8;
    stream = { Update_gen.default with Update_gen.n_updates; mean_gap };
    deadline = Some 8.;
    breaker_k = 3;
    probe_limit = 0;
    stall_cap = 64;
    faults;
    seed = Int64.of_int seed }

(* Sim-time allowance after the last heal: breaker probe timers back off
   exponentially, so a source that trips near the end of its window can
   take a few thousand sim-seconds of probing before it closes and the
   parked updates replay. The bound only needs to rule out
   non-convergence (eternal retransmission), not be tight. *)
let convergence_slack = 6000.

let run scenario algo = Experiment.run scenario algo

let check_invariants ~tag ~floor ~golden algo seed =
  let scenario = chaos_scenario seed in
  let r = run scenario algo in
  let ctx fmt = Printf.sprintf ("%s seed %d: " ^^ fmt) tag seed in
  (* 1. progress *)
  Alcotest.(check bool) (ctx "run drains") true r.Experiment.completed;
  Alcotest.(check bool) (ctx "not degraded (all windows heal)") false
    r.Experiment.degraded;
  Alcotest.(check int)
    (ctx "every update incorporated")
    n_updates r.Experiment.metrics.Metrics.updates_incorporated;
  (* 2. deterministic replay *)
  let r2 = run scenario algo in
  Rig.check_replay ~ctx:(Printf.sprintf "%s seed %d" tag seed) r r2;
  Alcotest.(check int) (ctx "replay: same breaker trips")
    r.Experiment.metrics.Metrics.breaker_trips
    r2.Experiment.metrics.Metrics.breaker_trips;
  Alcotest.(check int) (ctx "replay: same stalled updates")
    r.Experiment.metrics.Metrics.stalled_updates
    r2.Experiment.metrics.Metrics.stalled_updates;
  (* 3. verdict floor *)
  let v = r.Experiment.verdict.Checker.verdict in
  Alcotest.(check bool)
    (ctx "verdict at least %s (got %s)"
       (Checker.verdict_to_string floor)
       (Checker.verdict_to_string v))
    true
    (Checker.compare_verdict v floor <= 0);
  (* 4. convergence after the last heal *)
  Alcotest.(check bool)
    (ctx "quiesces within %.0f of the last heal (sim time %.1f)"
       convergence_slack r.Experiment.sim_time)
    true
    (r.Experiment.sim_time
    <= Fault.last_heal scenario.Scenario.faults +. convergence_slack);
  if golden then begin
    (* Same link faults, breakers still armed (identical rng draw
       order), only the crash windows deleted: the chaotic run must end
       on the same view — parked updates replay losslessly. *)
    let fault_free =
      { scenario with
        Scenario.faults =
          { scenario.Scenario.faults with Fault.crashes = []; wh_crashes = [] }
      }
    in
    let g = run fault_free algo in
    Alcotest.check Rig.bag
      (ctx "final view bit-identical to the crash-free run")
      g.Experiment.final_view r.Experiment.final_view
  end

let chaos_case ~tag ~floor ~golden algo () =
  Rig.for_seeds chaos_seeds (check_invariants ~tag ~floor ~golden algo)

(* ————— permanent source crash: degraded drain, no stall ————— *)

(* Source 1 goes down and never comes back. Without deadlines the run
   would retransmit its sweep query forever; with a breaker of bounded
   probes it must trip, abandon the source, keep maintaining everyone
   else's updates and drain with a [Degraded] verdict and the dead
   source's updates parked. *)
let test_permanent_crash_degrades () =
  let scenario =
    { Scenario.default with
      Scenario.name = "permanent-crash";
      init_size = 12;
      domain = 8;
      stream =
        { Update_gen.default with Update_gen.n_updates = 20; mean_gap = 0.3 };
      deadline = Some 8.;
      breaker_k = 2;
      probe_limit = 2;
      stall_cap = 64;
      faults =
        { Fault.link = Fault.reliable;
          crashes = [ { Fault.source = 1; down_at = 10.; up_at = 1e12 } ];
          wh_crashes = [] };
      (* The seed is chosen so the dead source's up link is fully acked
         by [down_at] — update notices ride the up link with NO deadline
         (update delivery must survive arbitrary outages), so a frame
         left unacked at crash time retransmits until [up_at]. *)
      seed = 7L }
  in
  (* [max_events] guards the failure mode under test: if the breaker
     did NOT abandon the dead source, eternal retransmission would spin
     the engine forever — cut off, the run reports [completed = false]
     and the assertion below fails instead of hanging the suite. *)
  let r =
    Experiment.run ~max_events:200_000 scenario (module Sweep : Algorithm.S)
  in
  let m = r.Experiment.metrics in
  Alcotest.(check bool) "run drains despite the dead source" true
    r.Experiment.completed;
  Alcotest.(check bool) "run is degraded" true r.Experiment.degraded;
  Alcotest.check Rig.verdict "verdict is Degraded" Checker.Degraded
    r.Experiment.verdict.Checker.verdict;
  Alcotest.(check bool) "breaker tripped" true (m.Metrics.breaker_trips >= 1);
  Alcotest.(check bool) "updates parked behind the open breaker" true
    (m.Metrics.stalled_updates > 0);
  Alcotest.(check bool) "deadlines actually expired" true
    (m.Metrics.query_timeouts > 0);
  Alcotest.(check bool) "degraded time accrued" true
    (m.Metrics.degraded_time > 0.);
  Alcotest.(check bool)
    (Printf.sprintf
       "some but not all updates incorporated (%d of %d received)"
       m.Metrics.updates_incorporated m.Metrics.updates_received)
    true
    (m.Metrics.updates_incorporated > 0
    && m.Metrics.updates_incorporated < m.Metrics.updates_received)

(* ————— scripted overlap: two source windows + warehouse outage ————— *)

(* Source 1 down for [20,60), the warehouse crashes inside that window
   ([30,45) — recovery must restore breaker state from the checkpoint),
   source 3 down for [50,80) overlapping source 1's tail. Everything
   heals, so the run must converge non-degraded, at least Strong, with
   the same final view as the crash-free wiring. *)
let overlap_scenario =
  { Scenario.default with
    Scenario.name = "overlap";
    n_sources = 4;
    init_size = 12;
    domain = 8;
    stream =
      { Update_gen.default with Update_gen.n_updates = 40; mean_gap = 1.5 };
    deadline = Some 8.;
    breaker_k = 3;
    probe_limit = 0;
    stall_cap = 64;
    faults =
      { Fault.link = Fault.lossy ~drop:0.1 ~duplicate:0.05 ();
        crashes =
          [ { Fault.source = 1; down_at = 20.; up_at = 60. };
            { Fault.source = 3; down_at = 50.; up_at = 80. } ];
        wh_crashes = [ { Fault.wh_down_at = 30.; wh_up_at = 45. } ] };
    seed = 11L }

let test_overlapping_windows algo_name algo () =
  let r = Experiment.run overlap_scenario algo in
  let ctx s = algo_name ^ ": " ^ s in
  Alcotest.(check bool) (ctx "run drains") true r.Experiment.completed;
  Alcotest.(check bool) (ctx "not degraded") false r.Experiment.degraded;
  Alcotest.(check int) (ctx "every update incorporated") 40
    r.Experiment.metrics.Metrics.updates_incorporated;
  Alcotest.(check bool) (ctx "warehouse actually crashed") true
    (r.Experiment.metrics.Metrics.wh_crashes >= 1);
  let v = r.Experiment.verdict.Checker.verdict in
  Alcotest.(check bool)
    (ctx
       (Printf.sprintf "at least strong (got %s)"
          (Checker.verdict_to_string v)))
    true
    (Checker.compare_verdict v Checker.Strong <= 0);
  let fault_free =
    { overlap_scenario with
      Scenario.faults =
        { overlap_scenario.Scenario.faults with
          Fault.crashes = [];
          wh_crashes = [] } }
  in
  let g = Experiment.run fault_free algo in
  Alcotest.check Rig.bag
    (ctx "final view bit-identical to the crash-free run")
    g.Experiment.final_view r.Experiment.final_view

(* ————— chaos schedule generator sanity ————— *)

let test_chaos_schedule_shape () =
  for seed = 0 to 199 do
    let rng = Rng.create (Int64.of_int seed) in
    let f = Fault.chaos rng ~n_sources:4 ~horizon:100. in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: chaos schedule is faulty" seed)
      true (Fault.is_faulty f);
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: has at least one source window" seed)
      true
      (f.Fault.crashes <> []);
    List.iter
      (fun w ->
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: source window heals by 0.7·horizon" seed)
          true
          (w.Fault.up_at <= 70. && w.Fault.down_at < w.Fault.up_at))
      f.Fault.crashes;
    List.iter
      (fun o ->
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: warehouse outage heals by 0.7·horizon"
             seed)
          true
          (o.Fault.wh_up_at <= 70. && o.Fault.wh_down_at < o.Fault.wh_up_at))
      f.Fault.wh_crashes;
    let heal = Fault.last_heal f in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: last_heal is the max heal time" seed)
      true
      (List.for_all (fun w -> w.Fault.up_at <= heal) f.Fault.crashes
      && List.for_all (fun o -> o.Fault.wh_up_at <= heal) f.Fault.wh_crashes)
  done;
  Alcotest.(check (float 0.)) "last_heal of the empty schedule" 0.
    (Fault.last_heal Fault.none)

let suite =
  [ Alcotest.test_case "chaos schedule: shape and last_heal" `Quick
      test_chaos_schedule_shape;
    Alcotest.test_case "permanent source crash: degraded drain" `Quick
      test_permanent_crash_degrades;
    Alcotest.test_case "overlap: sweep" `Quick
      (test_overlapping_windows "sweep" (module Sweep : Algorithm.S));
    Alcotest.test_case "overlap: sweep-batched" `Quick
      (test_overlapping_windows "sweep-batched"
         (module Sweep_batched : Algorithm.S));
    Alcotest.test_case "chaos invariants: sweep" `Slow
      (chaos_case ~tag:"sweep" ~floor:Checker.Strong ~golden:true
         (module Sweep : Algorithm.S));
    Alcotest.test_case "chaos invariants: sweep-batched" `Slow
      (chaos_case ~tag:"sweep-batched" ~floor:Checker.Strong ~golden:true
         (module Sweep_batched : Algorithm.S));
    Alcotest.test_case "chaos invariants: nested-sweep" `Slow
      (chaos_case ~tag:"nested-sweep" ~floor:Checker.Strong ~golden:true
         (module Nested_sweep : Algorithm.S));
    Alcotest.test_case "chaos invariants: strobe" `Slow
      (chaos_case ~tag:"strobe" ~floor:Checker.Strong ~golden:false
         (module Strobe : Algorithm.S));
    Alcotest.test_case "chaos invariants: c-strobe" `Slow
      (chaos_case ~tag:"c-strobe" ~floor:Checker.Convergent ~golden:false
         (module C_strobe : Algorithm.S)) ]
