(* Warehouse crash-recovery suite: durability-layer unit tests (codec /
   Snap / WAL / checkpoint round trips, the store's checkpoint cadence,
   backpressure admission), then the seeded warehouse-crash property
   harness — kill the warehouse mid-run, restart it from its latest
   checkpoint plus the WAL tail, and demand the same consistency verdict
   the algorithm earns without crashes, with a bit-identical final view
   and zero source refetch. Everything is deterministic per seed. *)

open Repro_sim
open Repro_relational
open Repro_protocol
open Repro_durability
open Repro_warehouse
open Repro_consistency
open Repro_harness
open Repro_workload
module Backpressure = Repro_serving.Backpressure

(* ————— codec round trips ————— *)

let roundtrip put get x = Codec.decode get (Codec.encode put x)

let test_codec_primitives () =
  List.iter
    (fun i ->
      Alcotest.(check int) (Printf.sprintf "int %d" i) i
        (roundtrip Codec.put_int Codec.get_int i))
    [ 0; 1; -1; 255; -256; 1 lsl 40; min_int; max_int ];
  List.iter
    (fun f ->
      Alcotest.(check (float 0.)) (Printf.sprintf "float %g" f) f
        (roundtrip Codec.put_float Codec.get_float f))
    [ 0.; -1.5; 3.141592653589793; 1e300; -1e-300 ];
  List.iter
    (fun s ->
      Alcotest.(check string) "string" s
        (roundtrip Codec.put_string Codec.get_string s))
    [ ""; "x"; String.make 300 'q'; "emb\000edded" ];
  Alcotest.(check (list int)) "int list" [ 3; 1; 2 ]
    (roundtrip
       (fun b -> Codec.put_list b Codec.put_int)
       (fun r -> Codec.get_list r Codec.get_int)
       [ 3; 1; 2 ])

let test_codec_corrupt_raises () =
  let raises f =
    match f () with exception Codec.Corrupt _ -> true | _ -> false
  in
  Alcotest.(check bool) "truncated int" true
    (raises (fun () -> Codec.decode Codec.get_int "ab"));
  Alcotest.(check bool) "trailing garbage" true
    (raises (fun () ->
         Codec.decode Codec.get_bool (Codec.encode Codec.put_bool true ^ "z")));
  Alcotest.(check bool) "bad bool tag" true
    (raises (fun () -> Codec.decode Codec.get_bool "\007"))

let test_codec_bag_canonical () =
  (* same bag content built in different insertion orders encodes to the
     same bytes — checkpoints of equal states are bit-identical *)
  let a = Bag.create () and b = Bag.create () in
  Bag.add a (Tuple.ints [ 1; 2 ]) 2;
  Bag.add a (Tuple.ints [ 3; 4 ]) 1;
  Bag.add b (Tuple.ints [ 3; 4 ]) 1;
  Bag.add b (Tuple.ints [ 1; 2 ]) 1;
  Bag.add b (Tuple.ints [ 1; 2 ]) 1;
  Alcotest.(check string) "equal bags, equal bytes"
    (Codec.encode Codec.put_bag a)
    (Codec.encode Codec.put_bag b);
  Alcotest.(check bool) "round trip preserves content" true
    (Bag.equal a (roundtrip Codec.put_bag Codec.get_bag a))

let test_snap_roundtrip () =
  let d = Delta.of_list [ (Tuple.ints [ 1; 2 ], 1); (Tuple.ints [ 5; 6 ], -2) ] in
  let u =
    { Message.txn = { Message.source = 2; seq = 7 }; delta = Delta.copy d;
      occurred_at = 4.25; global = Some { Message.gid = 3; parts = 2 } }
  in
  let s =
    Snap.List
      [ Snap.Unit; Snap.Bool true; Snap.Int (-42); Snap.Float 1.5;
        Snap.Str "state"; Snap.ints [ 1; 2; 3 ];
        Snap.Tup (Tuple.ints [ 9; 9 ]); Snap.Delta d; Snap.Update u;
        Snap.option (fun i -> Snap.Int i) None;
        Snap.option (fun i -> Snap.Int i) (Some 5) ]
  in
  Alcotest.(check bool) "snap round trip equal" true
    (Snap.equal s (Snap.decode (Snap.encode s)));
  Alcotest.(check bool) "distinct snaps differ" false
    (Snap.equal s (Snap.Int 0))

let test_wal_roundtrip_and_tail () =
  let u =
    { Message.txn = { Message.source = 0; seq = 3 };
      delta = Delta.insertion (Tuple.ints [ 1; 2 ]); occurred_at = 2.0;
      global = None }
  in
  let records =
    [ Wal.Update_received { update = u; arrived_at = 2.5 };
      Wal.Answer_received
        { link = 1;
          msg =
            Message.Answer
              { qid = 4; source = 1;
                partial =
                  Partial.of_source_delta (Paper_example.view ()) 1
                    (snd (Paper_example.d_r2 ())) } };
      Wal.Installed
        { delta = Delta.insertion (Tuple.ints [ 7; 8 ]);
          txns = [ { Message.source = 0; seq = 3 } ] } ]
  in
  List.iter
    (fun r ->
      let r' = Wal.decode_record (Wal.encode_record r) in
      Alcotest.(check string) "record round trip"
        (Wal.encode_record r) (Wal.encode_record r'))
    records;
  Alcotest.(check (list (option int))) "link_of"
    [ Some 0; Some 1; None ]
    (List.map Wal.link_of records);
  let w = Wal.create () in
  List.iter (Wal.append w) records;
  Alcotest.(check int) "length" 3 (Wal.length w);
  Alcotest.(check bool) "bytes counted" true (Wal.bytes w > 0);
  Alcotest.(check int) "tail from 1" 2 (List.length (Wal.records_from w 1));
  Alcotest.(check (list string)) "tail decodes in order"
    (List.map Wal.encode_record (List.tl records))
    (List.map Wal.encode_record (Wal.records_from w 1))

let test_checkpoint_roundtrip () =
  let view = Bag.of_list [ (Tuple.ints [ 1; 2; 3 ], 2) ] in
  let u =
    { Message.txn = { Message.source = 1; seq = 0 };
      delta = Delta.deletion (Tuple.ints [ 4; 5 ]); occurred_at = 1.0;
      global = None }
  in
  let c =
    { Checkpoint.taken_at = 12.5; wal_pos = 9; view;
      queue = [ { Checkpoint.update = u; arrival = 4; arrived_at = 1.75 } ];
      queue_next_arrival = 5; next_qid = 17;
      algo = Snap.List [ Snap.Int 1; Snap.Str "x" ];
      recv_expected = [| 3; 0; 8 |];
      senders =
        [| { Checkpoint.next_seq = 2; acked_upto = 1; window = [] };
           { Checkpoint.next_seq = 5; acked_upto = 2;
             window = [ (3, Message.Fetch { qid = 1; target = 0 }) ] };
           { Checkpoint.next_seq = 0; acked_upto = -1; window = [] } |];
      breaker = Snap.List [ Snap.Int 0; Snap.Int 2 ];
      aux = Snap.List [ Snap.Delta (Delta.insertion (Tuple.ints [ 7 ])) ] }
  in
  let c' = Checkpoint.decode (Checkpoint.encode c) in
  Alcotest.(check string) "checkpoint bytes stable"
    (Checkpoint.encode c) (Checkpoint.encode c');
  Alcotest.(check bool) "view preserved" true (Bag.equal c.Checkpoint.view c'.Checkpoint.view);
  Alcotest.(check int) "wal_pos" 9 c'.Checkpoint.wal_pos;
  Alcotest.(check int) "queue length" 1 (List.length c'.Checkpoint.queue);
  Alcotest.(check int) "sender next_seq" 5 c'.Checkpoint.senders.(1).Checkpoint.next_seq;
  Alcotest.(check int) "sender window" 1
    (List.length c'.Checkpoint.senders.(1).Checkpoint.window)

let dummy_capture () =
  { Checkpoint.taken_at = 0.; wal_pos = 0; view = Bag.create (); queue = [];
    queue_next_arrival = 0; next_qid = 0; algo = Snap.Unit;
    recv_expected = [||]; senders = [||]; breaker = Snap.Unit;
    aux = Snap.Unit }

let test_store_checkpoint_cadence () =
  let s = Store.create ~checkpoint_every:3 () in
  let wal_pos = ref 0 in
  Store.set_capture s (fun () -> { (dummy_capture ()) with wal_pos = !wal_pos });
  let record =
    Wal.Installed { delta = Delta.empty (); txns = [] }
  in
  for i = 1 to 10 do
    Store.log s record;
    wal_pos := i;
    Store.maybe_checkpoint s
  done;
  Alcotest.(check int) "10 records" 10 (Store.wal_length s);
  Alcotest.(check int) "checkpoints every 3 records" 3 (Store.checkpoints s);
  (match Store.latest_checkpoint s with
  | Some c -> Alcotest.(check int) "latest covers 9 records" 9 c.Checkpoint.wal_pos
  | None -> Alcotest.fail "no checkpoint");
  Alcotest.(check int) "tail after latest checkpoint" 1
    (List.length (Store.tail s));
  let off = Store.create ~checkpoint_every:0 () in
  Store.set_capture off dummy_capture;
  for _ = 1 to 10 do
    Store.log off record;
    Store.maybe_checkpoint off
  done;
  Alcotest.(check int) "0 disables checkpoints" 0 (Store.checkpoints off);
  Alcotest.(check int) "recovery would replay the whole log" 10
    (List.length (Store.tail off))

(* ————— backpressure + bounded queue units ————— *)

let test_update_queue_capacity () =
  let q = Update_queue.create ~capacity:2 () in
  let u seq =
    { Message.txn = { Message.source = 0; seq }; delta = Delta.empty ();
      occurred_at = 0.; global = None }
  in
  ignore (Update_queue.append q (u 0) ~arrived_at:0.);
  ignore (Update_queue.append q (u 1) ~arrived_at:0.);
  Alcotest.(check bool) "over-capacity append raises" true
    (match Update_queue.append q (u 2) ~arrived_at:0. with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "capacity <= 0 rejected" true
    (match Update_queue.create ~capacity:0 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_backpressure_fifo_and_shed () =
  let bp = Backpressure.create ~n_sources:2 ~capacity:2 in
  let ran = ref [] in
  let submit source ~noop tag =
    Backpressure.submit bp ~source ~noop (fun () -> ran := tag :: !ran)
  in
  submit 0 ~noop:false "a0";
  submit 1 ~noop:false "b0";
  (* capacity exhausted: these wait *)
  submit 0 ~noop:false "a1";
  submit 1 ~noop:false "b1";
  (* a no-op at capacity is shed, not queued *)
  submit 0 ~noop:true "a-noop";
  (* a no-op with a token free must still wait behind its source's
     earlier waiters — shed again *)
  Alcotest.(check (list string)) "only first two ran" [ "b0"; "a0" ] !ran;
  Alcotest.(check int) "two deferred" 2 (Backpressure.deferred bp);
  Alcotest.(check int) "one shed" 1 (Backpressure.shed bp);
  Alcotest.(check int) "two waiting" 2 (Backpressure.waiting_count bp);
  Backpressure.release bp 1;
  Alcotest.(check (list string)) "cursor admits source 0 first"
    [ "a1"; "b0"; "a0" ] !ran;
  Backpressure.release bp 1;
  Alcotest.(check (list string)) "then the next source" [ "b1"; "a1"; "b0"; "a0" ]
    !ran;
  Alcotest.(check int) "queues drained" 0 (Backpressure.waiting_count bp)

let test_backpressure_round_robin_no_starvation () =
  let bp = Backpressure.create ~n_sources:3 ~capacity:1 in
  let ran = ref [] in
  let submit source tag =
    Backpressure.submit bp ~source ~noop:false (fun () -> ran := tag :: !ran)
  in
  submit 0 "a0";  (* takes the only token *)
  submit 1 "b";
  submit 2 "c";
  (* Sustained source-0 pressure: a fresh source-0 update arrives before
     every release. The old lowest-source-first policy admitted only
     source 0's queue here and starved source 2 (the highest index)
     forever; the round-robin cursor must admit every source within
     n releases. *)
  for i = 1 to 4 do
    submit 0 (Printf.sprintf "a%d" i);
    Backpressure.release bp 1
  done;
  Alcotest.(check (list string))
    "round-robin admits sources 1 and 2 despite sustained source-0 load"
    [ "a0"; "a1"; "b"; "c"; "a2" ]
    (List.rev !ran);
  Alcotest.(check int) "the rest still waits" 2
    (Backpressure.waiting_count bp)

(* ————— breaker probe schedule across checkpoint/restore mid-Open ————— *)

(* Capture a breaker snapshot while source 0 is Open with a probe timer
   pending (exactly what a warehouse checkpoint taken mid-outage holds),
   then restore it into two fresh incarnations on identically seeded
   engines. Restore re-schedules the probe from its own seeded rng
   stream, so both incarnations must replay a bit-identical probe
   schedule — crash recovery cannot fork the simulation. Each probe is
   answered with another deadline expiry (k = 1 re-trips immediately),
   walking the backoff ladder a few rungs. *)
let test_breaker_probe_schedule_deterministic_across_restore () =
  let mk () =
    let engine = Engine.create ~seed:77L () in
    let metrics = Metrics.create () in
    let b =
      Breaker.create engine
        ~rng:(Rng.split (Engine.rng engine))
        ~config:{ Breaker.default_config with Breaker.k = 1 }
        ~metrics ~n:2
    in
    (engine, b)
  in
  let snap =
    let engine, b = mk () in
    let s = ref Repro_durability.Snap.Unit in
    Engine.at engine ~time:0. (fun () ->
        Breaker.force_open b 0;
        (* mid-Open: the probe timer is pending, not yet fired *)
        s := Breaker.snapshot b;
        Breaker.halt b);
    ignore (Engine.run engine);
    !s
  in
  let probes_after_restore () =
    let engine, b = mk () in
    let times = ref [] in
    Breaker.set_on_probe b (fun i ->
        times := (Engine.now engine, i) :: !times;
        if List.length !times < 4 then ignore (Breaker.record_timeout b i));
    Engine.at engine ~time:0. (fun () -> Breaker.restore b snap);
    ignore (Engine.run engine);
    List.rev !times
  in
  let a = probes_after_restore () in
  let b = probes_after_restore () in
  Alcotest.(check int) "restored breaker probes down the backoff ladder" 4
    (List.length a);
  Alcotest.(check bool) "probe schedule bit-identical across restores" true
    (a = b);
  List.iter
    (fun (_, i) -> Alcotest.(check int) "probes target the open source" 0 i)
    a

(* ————— seeded warehouse-crash property harness ————— *)

let n_updates = 20

(* Base scenario: lossy links + one or two scripted warehouse outages
   (or none, for the crash-free twin). *)
let crashy_scenario ?(wh_crashes = [ { Fault.wh_down_at = 8.; wh_up_at = 20. } ])
    ?(crashes = []) ?(link = Fault.lossy ~drop:0.1 ~duplicate:0.05 ())
    ?(checkpoint_every = 4) seed =
  { Scenario.default with
    Scenario.name = "crashy-prop";
    init_size = 12;
    domain = 8;
    stream = { Update_gen.default with Update_gen.n_updates; mean_gap = 1.5 };
    faults = { Fault.link; crashes; wh_crashes };
    checkpoint_every;
    seed }

let run_one scenario algo =
  let r = Experiment.run scenario algo in
  Alcotest.(check bool)
    (Printf.sprintf "seed %Ld quiesces" scenario.Scenario.seed)
    true r.Experiment.completed;
  Alcotest.(check int)
    (Printf.sprintf "seed %Ld installs every update" scenario.Scenario.seed)
    n_updates r.Experiment.metrics.Metrics.updates_incorporated;
  (* Recovery must come from the checkpoint + WAL tail alone: no
     Snapshot-style refetch of base relations, ever. *)
  Alcotest.(check int)
    (Printf.sprintf "seed %Ld never refetches a base relation"
       scenario.Scenario.seed)
    0 r.Experiment.metrics.Metrics.snapshots_fetched;
  r

let random_recovery_schedule seed =
  let rng = Rng.create (Int64.add 104729L (Int64.mul 31L seed)) in
  Fault.random_recovery rng ~n_sources:Scenario.default.Scenario.n_sources
    ~horizon:(float_of_int n_updates *. 1.5)

(* Acceptance criterion: SWEEP stays *complete* across 50 random
   warehouse-crash schedules (each with guaranteed outages plus random
   link faults / source crashes), and the aggregate metrics show recovery
   actually ran — records replayed, checkpoints taken, crashes counted. *)
let test_sweep_complete_across_crashes () =
  let crashes = ref 0 and replayed = ref 0 and ckpts = ref 0 in
  for seed = 0 to 49 do
    let f = random_recovery_schedule (Int64.of_int seed) in
    let scenario =
      crashy_scenario ~wh_crashes:f.Fault.wh_crashes ~crashes:f.Fault.crashes
        ~link:f.Fault.link (Int64.of_int seed)
    in
    let r = run_one scenario (module Sweep : Algorithm.S) in
    Alcotest.check Rig.verdict
      (Printf.sprintf "seed %d complete" seed)
      Checker.Complete r.Experiment.verdict.Checker.verdict;
    crashes := !crashes + r.Experiment.metrics.Metrics.wh_crashes;
    replayed := !replayed + r.Experiment.metrics.Metrics.replayed_records;
    ckpts := !ckpts + r.Experiment.metrics.Metrics.checkpoints
  done;
  Alcotest.(check bool) "warehouse actually crashed" true (!crashes >= 50);
  Alcotest.(check bool) "WAL records were replayed" true (!replayed > 0);
  Alcotest.(check bool) "checkpoints were taken" true (!ckpts > 0)

let at_least_strong ~tag algo seeds =
  List.iter
    (fun seed ->
      let f = random_recovery_schedule seed in
      let scenario =
        crashy_scenario ~wh_crashes:f.Fault.wh_crashes ~crashes:f.Fault.crashes
          ~link:f.Fault.link seed
      in
      let r = run_one scenario algo in
      let v = r.Experiment.verdict.Checker.verdict in
      Alcotest.(check bool)
        (Printf.sprintf "%s seed %Ld at least strong (got %s)" tag seed
           (Checker.verdict_to_string v))
        true
        (Checker.compare_verdict v Checker.Strong <= 0))
    seeds

let seeds n = List.init n Int64.of_int

let test_nested_sweep_strong_across_crashes () =
  at_least_strong ~tag:"nested-sweep" (module Nested_sweep : Algorithm.S)
    (seeds 25)

let test_strobe_strong_across_crashes () =
  at_least_strong ~tag:"strobe" (module Strobe : Algorithm.S) (seeds 25)

(* Exactly-once across the crash: for each seed, the run with mid-run
   crash-restarts must end with a final view bit-identical to its
   crash-free twin (same seed, same link faults, no outages). A lost or
   double-applied update would leave a different bag. *)
let test_final_view_identical_with_and_without_crash () =
  Rig.for_seeds ~from:0 12 @@ fun seed ->
    let seed = Int64.of_int seed in
    let crashed =
      Experiment.run
        (crashy_scenario
           ~wh_crashes:
             [ { Fault.wh_down_at = 6.; wh_up_at = 14. };
               { Fault.wh_down_at = 22.; wh_up_at = 30. } ]
           seed)
        (module Sweep : Algorithm.S)
    in
    let clean =
      Experiment.run (crashy_scenario ~wh_crashes:[] seed)
        (module Sweep : Algorithm.S)
    in
    Alcotest.(check bool)
      (Printf.sprintf "seed %Ld crashed run quiesces" seed)
      true crashed.Experiment.completed;
    Alcotest.(check bool)
      (Printf.sprintf "seed %Ld final views bit-identical" seed)
      true
      (Bag.equal crashed.Experiment.final_view clean.Experiment.final_view);
    Alcotest.(check bool)
      (Printf.sprintf "seed %Ld crash path exercised" seed)
      true
      (crashed.Experiment.metrics.Metrics.wh_crashes = 2
      && clean.Experiment.metrics.Metrics.wh_crashes = 0)

(* Crash-recovery runs replay bit-identically per seed. *)
let test_crashy_run_deterministic () =
  let run () =
    Experiment.run (crashy_scenario 17L) (module Sweep : Algorithm.S)
  in
  let a = run () and b = run () in
  Rig.check_replay ~ctx:"crashy" a b;
  Alcotest.(check int) "same installs"
    a.Experiment.metrics.Metrics.installs b.Experiment.metrics.Metrics.installs;
  Alcotest.(check int) "same WAL records"
    a.Experiment.metrics.Metrics.wal_records
    b.Experiment.metrics.Metrics.wal_records;
  Alcotest.(check int) "same replayed records"
    a.Experiment.metrics.Metrics.replayed_records
    b.Experiment.metrics.Metrics.replayed_records;
  Alcotest.(check int) "same checkpoint bytes"
    a.Experiment.metrics.Metrics.checkpoint_bytes
    b.Experiment.metrics.Metrics.checkpoint_bytes

(* WAL-only recovery: checkpointing disabled, the whole log replays. *)
let test_recovery_without_checkpoints () =
  let r =
    run_one (crashy_scenario ~checkpoint_every:0 3L) (module Sweep : Algorithm.S)
  in
  Alcotest.check Rig.verdict "still complete" Checker.Complete
    r.Experiment.verdict.Checker.verdict;
  Alcotest.(check int) "no checkpoints taken" 0
    r.Experiment.metrics.Metrics.checkpoints;
  Alcotest.(check bool) "replay happened from the log alone" true
    (r.Experiment.metrics.Metrics.replayed_records > 0)

(* The remaining algorithms survive a crash window too (smoke level):
   C-strobe on the distributed topology, ECA on the centralized one. *)
let test_c_strobe_crashy_smoke () =
  let scenario = crashy_scenario ~link:Fault.reliable 5L in
  let r = Experiment.run scenario (module C_strobe : Algorithm.S) in
  Alcotest.(check bool) "quiesces" true r.Experiment.completed;
  Alcotest.(check int) "all updates incorporated" n_updates
    r.Experiment.metrics.Metrics.updates_incorporated;
  Alcotest.(check bool) "not inconsistent" true
    (r.Experiment.verdict.Checker.verdict <> Checker.Inconsistent);
  Alcotest.(check bool) "crashed and recovered" true
    (r.Experiment.metrics.Metrics.wh_crashes = 1
    && r.Experiment.metrics.Metrics.replayed_records >= 0)

let test_eca_crashy_smoke () =
  let scenario =
    { (crashy_scenario ~link:Fault.reliable 7L) with
      Scenario.topology = Scenario.Centralized }
  in
  let r = Experiment.run scenario (module Eca : Algorithm.S) in
  Alcotest.(check bool) "quiesces" true r.Experiment.completed;
  Alcotest.(check int) "all updates incorporated" n_updates
    r.Experiment.metrics.Metrics.updates_incorporated;
  Alcotest.(check bool) "not inconsistent" true
    (r.Experiment.verdict.Checker.verdict <> Checker.Inconsistent);
  Alcotest.(check int) "crashed once" 1 r.Experiment.metrics.Metrics.wh_crashes

(* ————— bounded queue under load ————— *)

let test_bounded_queue_backpressure () =
  let n = 60 in
  let scenario =
    { Scenario.default with
      Scenario.name = "bounded-queue";
      stream =
        { Update_gen.default with Update_gen.n_updates = n; mean_gap = 0.2 };
      queue_capacity = Some 4 }
  in
  let r = Experiment.run scenario (module Sweep : Algorithm.S) in
  Alcotest.(check bool) "quiesces" true r.Experiment.completed;
  Alcotest.check Rig.verdict "still complete" Checker.Complete
    r.Experiment.verdict.Checker.verdict;
  Alcotest.(check bool) "queue bounded by capacity" true
    (r.Experiment.metrics.Metrics.max_queue <= 4);
  Alcotest.(check bool) "high-watermark recorded" true
    (r.Experiment.metrics.Metrics.max_queue >= 1);
  Alcotest.(check bool) "backpressure engaged" true
    (r.Experiment.metrics.Metrics.queue_deferred > 0);
  Alcotest.(check int) "every admitted update incorporated" n
    (r.Experiment.metrics.Metrics.updates_incorporated
    + r.Experiment.metrics.Metrics.queue_shed)

(* An unbounded twin of the same workload incorporates everything and
   defers nothing — the knob defaults to off. *)
let test_unbounded_queue_untouched () =
  let scenario =
    { Scenario.default with
      Scenario.name = "unbounded-queue";
      stream =
        { Update_gen.default with Update_gen.n_updates = 60; mean_gap = 0.2 } }
  in
  let r = Experiment.run scenario (module Sweep : Algorithm.S) in
  Alcotest.(check int) "nothing deferred" 0
    r.Experiment.metrics.Metrics.queue_deferred;
  Alcotest.(check int) "nothing shed" 0 r.Experiment.metrics.Metrics.queue_shed;
  Alcotest.(check int) "all incorporated" 60
    r.Experiment.metrics.Metrics.updates_incorporated

let suite =
  [ Alcotest.test_case "codec: primitive round trips" `Quick
      test_codec_primitives;
    Alcotest.test_case "codec: malformed bytes raise Corrupt" `Quick
      test_codec_corrupt_raises;
    Alcotest.test_case "codec: equal bags encode identically" `Quick
      test_codec_bag_canonical;
    Alcotest.test_case "snap: tree round trip" `Quick test_snap_roundtrip;
    Alcotest.test_case "wal: record round trip and tail" `Quick
      test_wal_roundtrip_and_tail;
    Alcotest.test_case "checkpoint: full round trip" `Quick
      test_checkpoint_roundtrip;
    Alcotest.test_case "store: checkpoint cadence and tail" `Quick
      test_store_checkpoint_cadence;
    Alcotest.test_case "queue: capacity enforced" `Quick
      test_update_queue_capacity;
    Alcotest.test_case "backpressure: per-source FIFO, shed, release" `Quick
      test_backpressure_fifo_and_shed;
    Alcotest.test_case "backpressure: round-robin admission, no starvation"
      `Quick test_backpressure_round_robin_no_starvation;
    Alcotest.test_case "breaker: probe schedule deterministic across restore"
      `Quick test_breaker_probe_schedule_deterministic_across_restore;
    Alcotest.test_case "property: sweep complete on 50 crashy seeds" `Quick
      test_sweep_complete_across_crashes;
    Alcotest.test_case "property: nested sweep strong on 25 crashy seeds"
      `Quick test_nested_sweep_strong_across_crashes;
    Alcotest.test_case "property: strobe strong on 25 crashy seeds" `Quick
      test_strobe_strong_across_crashes;
    Alcotest.test_case "property: final view identical with/without crash"
      `Quick test_final_view_identical_with_and_without_crash;
    Alcotest.test_case "property: crashy runs deterministic per seed" `Quick
      test_crashy_run_deterministic;
    Alcotest.test_case "recovery works with checkpoints disabled" `Quick
      test_recovery_without_checkpoints;
    Alcotest.test_case "smoke: c-strobe across a crash window" `Quick
      test_c_strobe_crashy_smoke;
    Alcotest.test_case "smoke: eca (centralized) across a crash window" `Quick
      test_eca_crashy_smoke;
    Alcotest.test_case "bounded queue: backpressure keeps run complete" `Quick
      test_bounded_queue_backpressure;
    Alcotest.test_case "unbounded queue: knob off changes nothing" `Quick
      test_unbounded_queue_untouched ]
