(* Sort-order tries over join columns, in the spirit of (incremental)
   leapfrog triejoin. A chain SPJ view has exactly one junction between
   adjacent sources, so the general LFTJ variable ordering degenerates
   to one sorted intersection per junction: the delta's distinct join
   values leapfrog against the trie's sorted keys, galloping past the
   gaps, and only the matching groups ever touch tuples. [eval_chain]
   strings those intersections together, fanning out from the pinned
   delta — the whole multiway join is |junctions| intersections over
   delta-sized frontiers, never a hash build over a base relation. *)

type level = { key : Value.t; rows : (Tuple.t * int) array }
type t = { col : int; levels : level array }

let col t = t.col
let cardinal t = Array.length t.levels

let of_iter iter ~col =
  let groups : (Value.t, (Tuple.t * int) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  iter (fun tup c ->
      let v = Tuple.get tup col in
      match Hashtbl.find_opt groups v with
      | Some l -> l := (tup, c) :: !l
      | None -> Hashtbl.replace groups v (ref [ (tup, c) ]));
  let keys =
    List.sort Value.compare (Hashtbl.fold (fun v _ acc -> v :: acc) groups [])
  in
  { col;
    levels =
      Array.of_list
        (List.map
           (fun v ->
             let rows = Array.of_list !(Hashtbl.find groups v) in
             (* canonical row order: the trie for a given relation state
                is independent of its update history *)
             Array.sort compare rows;
             { key = v; rows })
           keys) }

let of_relation rel ~col = of_iter (fun f -> Relation.iter f rel) ~col

let of_rows rows ~col =
  of_iter (fun f -> List.iter (fun (tup, c) -> f tup c) rows) ~col

(* Smallest index in [lo, len) whose key is >= v: exponential gallop to
   bracket, then binary search inside the bracket — the "leapfrog" seek
   that lets an intersection skip runs of non-matching keys in
   O(log gap) instead of O(gap). *)
let seek ~get ~len lo v =
  if lo >= len || Value.compare (get lo) v >= 0 then lo
  else begin
    let step = ref 1 in
    while lo + !step < len && Value.compare (get (lo + !step)) v < 0 do
      step := !step * 2
    done;
    let l = ref (lo + (!step / 2)) and r = ref (min (lo + !step) len) in
    (* get !l < v; !r = len or get !r >= v *)
    while !r - !l > 1 do
      let m = (!l + !r) / 2 in
      if Value.compare (get m) v < 0 then l := m else r := m
    done;
    !r
  end

let probe t value =
  let len = Array.length t.levels in
  let i = seek ~get:(fun i -> t.levels.(i).key) ~len 0 value in
  if i < len && Value.compare t.levels.(i).key value = 0 then
    Array.to_list t.levels.(i).rows
  else []

let extend view (p : Partial.t) ~source ~trie =
  let dir =
    if source = p.lo - 1 then `Left
    else if source = p.hi + 1 then `Right
    else
      invalid_arg
        (Printf.sprintf "Trie_join.extend: source %d not adjacent to [%d..%d]"
           source p.lo p.hi)
  in
  let spec =
    match dir with
    | `Left -> View_def.join_between view source
    | `Right -> View_def.join_between view p.hi
  in
  match spec.Join_spec.equalities with
  | [] -> None (* cross-product junction: nothing to intersect on *)
  | eqs ->
      let src_ofs = View_def.offset view source in
      let p_ofs = View_def.offset view p.lo in
      (* each equality names one column in [source], one inside [p] *)
      let local (lg, rg) =
        match dir with
        | `Left -> (lg - src_ofs, rg - p_ofs)
        | `Right -> (rg - src_ofs, lg - p_ofs)
      in
      let (src_col, p_col), rest =
        match List.map local eqs with
        | first :: rest -> (first, rest)
        | [] -> assert false
      in
      let residual_ok stup ptup =
        match spec.Join_spec.residual with
        | None -> true
        | Some pr ->
            let lookup g =
              match dir with
              | `Left ->
                  if g < p_ofs then stup.(g - src_ofs) else ptup.(g - p_ofs)
              | `Right ->
                  if g < src_ofs then ptup.(g - p_ofs) else stup.(g - src_ofs)
            in
            Predicate.eval ~lookup pr
      in
      (* group the delta frontier by its join value ... *)
      let groups : (Value.t, (Tuple.t * int) list ref) Hashtbl.t =
        Hashtbl.create (max 16 (Delta.cardinal p.data))
      in
      Delta.iter
        (fun ptup pc ->
          let v = Tuple.get ptup p_col in
          match Hashtbl.find_opt groups v with
          | Some l -> l := (ptup, pc) :: !l
          | None -> Hashtbl.replace groups v (ref [ (ptup, pc) ]))
        p.data;
      let dvals =
        Array.of_list
          (List.sort Value.compare
             (Hashtbl.fold (fun v _ acc -> v :: acc) groups []))
      in
      (* ... and leapfrog the two sorted key sequences *)
      let t = trie ~col:src_col in
      let result = Delta.empty () in
      let emit v rows =
        let group = !(Hashtbl.find groups v) in
        Array.iter
          (fun (stup, sc) ->
            List.iter
              (fun (ptup, pc) ->
                if
                  List.for_all
                    (fun (sc', pc') -> stup.(sc') = ptup.(pc'))
                    rest
                  && residual_ok stup ptup
                then
                  let combined =
                    match dir with
                    | `Left -> Tuple.concat stup ptup
                    | `Right -> Tuple.concat ptup stup
                  in
                  Delta.add result combined (pc * sc))
              group)
          rows
      in
      let nd = Array.length dvals and nt = Array.length t.levels in
      let i = ref 0 and j = ref 0 in
      while !i < nd && !j < nt do
        let c = Value.compare dvals.(!i) t.levels.(!j).key in
        if c = 0 then begin
          emit dvals.(!i) t.levels.(!j).rows;
          incr i;
          incr j
        end
        else if c < 0 then
          i := seek ~get:(fun k -> dvals.(k)) ~len:nd !i t.levels.(!j).key
        else
          j := seek ~get:(fun k -> t.levels.(k).key) ~len:nt !j dvals.(!i)
      done;
      let lo, hi =
        match dir with `Left -> (source, p.hi) | `Right -> (p.lo, source)
      in
      Some { Partial.lo; hi; data = result }

let eval_chain view ~pin:(k, d) ~trie =
  let n = View_def.n_sources view in
  if k < 0 || k >= n then invalid_arg "Trie_join.eval_chain: pin out of range";
  let acc = ref (Some (Partial.of_source_delta view k d)) in
  let leg j =
    match !acc with
    | None -> ()
    | Some p -> acc := extend view p ~source:j ~trie:(trie j)
  in
  for j = k - 1 downto 0 do
    leg j
  done;
  for j = k + 1 to n - 1 do
    leg j
  done;
  !acc
