type t = Pairwise | Probe | Trie

let default = Probe
let all = [ Pairwise; Probe; Trie ]

let to_string = function
  | Pairwise -> "pairwise"
  | Probe -> "probe"
  | Trie -> "trie"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "pairwise" | "scan" | "hash" -> Some Pairwise
  | "probe" | "index" | "indexed" -> Some Probe
  | "trie" | "leapfrog" -> Some Trie
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)
