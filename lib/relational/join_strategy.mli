(** How a delta join leg is executed against a base relation.

    Every sweep leg joins a (small) partial ΔV with a (large) base
    relation. Three interchangeable executions — all bag-identical, only
    the work per leg differs:

    - [Pairwise] — the original generic hash join: build an ad-hoc hash
      table over one operand per leg ({!Algebra.extend}). O(|R|) per leg
      even for a one-tuple delta.
    - [Probe] — probe the persistent per-column hash index the base
      table maintains incrementally ({!Algebra.extend_with_probe} over
      [Base_table.probe]). O(|ΔV| · matches) per leg. The default.
    - [Trie] — sort-order tries over the join columns with a
      leapfrog-style sorted intersection per junction
      ({!Trie_join.extend}). Prototype of incremental leapfrog triejoin
      (arXiv 1303.5313) for wide views.

    Legs whose join shape a strategy cannot serve (a cross-product
    junction with no equality) fall back to [Pairwise] — the per-table
    {!Base_table.scan_count} counter tracks the probes that degraded. *)

type t = Pairwise | Probe | Trie

(** [Probe] — indexed deltas are the default execution. *)
val default : t

val all : t list
val to_string : t -> string

(** Parses ["pairwise"|"scan"|"hash"], ["probe"|"index"|"indexed"],
    ["trie"|"leapfrog"]. *)
val of_string : string -> t option

val pp : Format.formatter -> t -> unit
