type t = {
  view_name : string;
  schemas : Schema.t array;
  joins : Join_spec.t array;
  selection : Predicate.t;
  projection : int array;
  offsets : int array;
  total_width : int;
}

let make ~name ~schemas ~joins ?(selection = Predicate.True) ~projection () =
  let n = Array.length schemas in
  if n = 0 then invalid_arg "View_def.make: no sources";
  if Array.length joins <> n - 1 then
    invalid_arg "View_def.make: need exactly n-1 join specs";
  let offsets = Array.make n 0 in
  for i = 1 to n - 1 do
    offsets.(i) <- offsets.(i - 1) + Schema.arity schemas.(i - 1)
  done;
  let total_width = offsets.(n - 1) + Schema.arity schemas.(n - 1) in
  let in_range g = g >= 0 && g < total_width in
  let source_of g =
    let rec go i = if i + 1 < n && offsets.(i + 1) <= g then go (i + 1) else i in
    go 0
  in
  Array.iteri
    (fun i spec ->
      List.iter
        (fun (l, r) ->
          if not (in_range l && in_range r) then
            invalid_arg "View_def.make: join attr out of range";
          if source_of l <> i || source_of r <> i + 1 then
            invalid_arg
              (Printf.sprintf
                 "View_def.make: join %d must connect sources %d and %d" i i
                 (i + 1)))
        spec.Join_spec.equalities)
    joins;
  Array.iter
    (fun g ->
      if not (in_range g) then
        invalid_arg "View_def.make: projection attr out of range")
    projection;
  List.iter
    (fun g ->
      if not (in_range g) then
        invalid_arg "View_def.make: selection attr out of range")
    (Predicate.attrs_used selection);
  { view_name = name; schemas; joins; selection; projection; offsets;
    total_width }

let name v = v.view_name
let n_sources v = Array.length v.schemas
let schemas v = v.schemas
let schema v i = v.schemas.(i)
let joins v = v.joins
let join_between v i = v.joins.(i)
let selection v = v.selection
let projection v = v.projection
let offset v i = v.offsets.(i)
let width v i = Schema.arity v.schemas.(i)
let total_width v = v.total_width

let source_of_global v g =
  if g < 0 || g >= v.total_width then invalid_arg "source_of_global";
  let rec go i =
    if i + 1 < Array.length v.offsets && v.offsets.(i + 1) <= g then go (i + 1)
    else i
  in
  go 0

let global v i a = v.offsets.(i) + a
let global_by_name v i name = global v i (Schema.index_of v.schemas.(i) name)

let view_key_positions v i =
  let keys = Schema.key_indices v.schemas.(i) in
  List.map
    (fun a ->
      let g = global v i a in
      let rec find p =
        if p >= Array.length v.projection then
          raise Not_found (* lint: allow L4 documented contract in view_def.mli; includes_all_keys catches it *)
        else if v.projection.(p) = g then p
        else find (p + 1)
      in
      find 0)
    keys

let includes_all_keys v =
  let ok = ref true in
  for i = 0 to n_sources v - 1 do
    (match view_key_positions v i with
    | [] -> ok := false (* a relation without a declared key has no key *)
    | _ :: _ -> ()
    | exception Not_found -> ok := false)
  done;
  !ok

let pp ppf v =
  Format.fprintf ppf "@[<v>view %s:@," v.view_name;
  Array.iteri
    (fun i s -> Format.fprintf ppf "  source %d: %a@," i Schema.pp s)
    v.schemas;
  Array.iteri
    (fun i j -> Format.fprintf ppf "  join %d⋈%d: %a@," i (i + 1) Join_spec.pp j)
    v.joins;
  Format.fprintf ppf "  select: %a@," Predicate.pp v.selection;
  Format.fprintf ppf "  project: [%s]@]"
    (String.concat "; "
       (Array.to_list (Array.map string_of_int v.projection)))
