type attribute = { name : string; ty : Value.ty; key : bool }
type t = { rel_name : string; attributes : attribute array }

let make rel_name attr_list =
  if attr_list = [] then invalid_arg "Schema.make: empty attribute list";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun a ->
      if Hashtbl.mem seen a.name then
        invalid_arg ("Schema.make: duplicate attribute " ^ a.name);
      Hashtbl.add seen a.name ())
    attr_list;
  { rel_name; attributes = Array.of_list attr_list }

let attr ?(key = false) name ty = { name; ty; key }
let name s = s.rel_name
let attrs s = s.attributes
let arity s = Array.length s.attributes

let index_of s n =
  let rec find i =
    if i >= Array.length s.attributes then
      raise Not_found (* lint: allow L4 documented contract: schema.mli says index_of raises Not_found when absent *)
    else if String.equal s.attributes.(i).name n then i
    else find (i + 1)
  in
  find 0

let key_indices s =
  let acc = ref [] in
  for i = Array.length s.attributes - 1 downto 0 do
    if s.attributes.(i).key then acc := i :: !acc
  done;
  !acc

let conforms s tup =
  Array.length tup = arity s
  && Array.for_all2 (fun v a -> Value.conforms v a.ty) tup s.attributes

let pp ppf s =
  Format.fprintf ppf "%s(" s.rel_name;
  Array.iteri
    (fun i a ->
      if i > 0 then Format.pp_print_string ppf ", ";
      Format.fprintf ppf "%s%s:%a" a.name
        (if a.key then "*" else "")
        Value.pp_ty a.ty)
    s.attributes;
  Format.pp_print_string ppf ")"
