(** Trie-based multiway delta join (prototype).

    Sort-order tries over join columns with a leapfrog-style sorted
    intersection per junction, after (incremental) leapfrog triejoin.
    For the chain SPJ views this repo maintains, the general trie
    ordering degenerates to one sorted intersection per junction:
    {!extend} intersects the delta frontier's distinct join values with
    the trie's keys (galloping seeks skip the gaps), and {!eval_chain}
    chains those intersections outward from the pinned delta — the whole
    multiway join runs over delta-sized frontiers without ever hashing a
    base relation.

    Results are bag-identical to {!Algebra.extend} /
    {!Algebra.extend_with_probe} (asserted by the strategy differential
    suite). Tries are immutable snapshots: build one per relation state
    ({!of_relation}) and rebuild (or cache against a dirty flag, as
    [Base_table.trie] does) after updates. *)

type t

(** The source-local column the trie is keyed on. *)
val col : t -> int

(** Number of distinct keys. *)
val cardinal : t -> int

(** [of_relation rel ~col] — trie over [rel] keyed on local column
    [col]; rows under each key carry their multiplicities. *)
val of_relation : Relation.t -> col:int -> t

(** [of_rows rows ~col] — same, from an explicit row list. *)
val of_rows : (Tuple.t * int) list -> col:int -> t

(** All rows whose key equals [value] (binary search; [[]] when
    absent). *)
val probe : t -> Value.t -> (Tuple.t * int) list

(** [extend view p ~source ~trie] is {!Algebra.extend} executed as a
    leapfrog intersection: [trie ~col] must return the source's trie
    keyed on source-local column [col]. Handles any junction with at
    least one equality (extra equalities and residuals filter the
    matched groups); returns [None] on a cross-product junction — the
    caller falls back to the pairwise join. *)
val extend :
  View_def.t -> Partial.t -> source:int -> trie:(col:int -> t) ->
  Partial.t option

(** [eval_chain view ~pin:(k, d) ~trie] evaluates the full chain with
    source [k] pinned to delta [d] and every other position served by
    its trie ([trie j ~col]): one intersection per junction, fanning
    left then right from the pin. [None] when any junction lacks an
    equality. *)
val eval_chain :
  View_def.t -> pin:int * Delta.t -> trie:(int -> col:int -> t) ->
  Partial.t option
