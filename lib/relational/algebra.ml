(* The hash join indexes the smaller operand. Keys are the tuples of values
   named by the join equalities; an empty equality list degenerates to a
   cross product (single shared key). *)

let key_of_side offset tup eqs side =
  Array.of_list
    (List.map
       (fun (l, r) ->
         let g = match side with `L -> l | `R -> r in
         tup.(g - offset))
       eqs)

let join view (left : Partial.t) (right : Partial.t) : Partial.t =
  if left.hi + 1 <> right.lo then
    invalid_arg
      (Printf.sprintf "Algebra.join: partials [%d..%d] and [%d..%d] not adjacent"
         left.lo left.hi right.lo right.hi);
  let spec = View_def.join_between view left.hi in
  let eqs = spec.Join_spec.equalities in
  let lofs = View_def.offset view left.lo in
  let rofs = View_def.offset view right.lo in
  let result = Delta.empty () in
  let residual_ok ltup rtup =
    match spec.Join_spec.residual with
    | None -> true
    | Some p ->
        let lookup g = if g < rofs then ltup.(g - lofs) else rtup.(g - rofs) in
        Predicate.eval ~lookup p
  in
  let emit ltup lc rtup rc =
    if residual_ok ltup rtup then
      Delta.add result (Tuple.concat ltup rtup) (lc * rc)
  in
  (* Index the smaller side; probe with the larger. *)
  if Delta.cardinal left.data <= Delta.cardinal right.data then begin
    let idx = Hashtbl.create (max 16 (Delta.cardinal left.data * 2)) in
    Delta.iter
      (fun tup c -> Hashtbl.add idx (key_of_side lofs tup eqs `L) (tup, c))
      left.data;
    Delta.iter
      (fun rtup rc ->
        List.iter
          (fun (ltup, lc) -> emit ltup lc rtup rc)
          (Hashtbl.find_all idx (key_of_side rofs rtup eqs `R)))
      right.data
  end
  else begin
    let idx = Hashtbl.create (max 16 (Delta.cardinal right.data * 2)) in
    Delta.iter
      (fun tup c -> Hashtbl.add idx (key_of_side rofs tup eqs `R) (tup, c))
      right.data;
    Delta.iter
      (fun ltup lc ->
        List.iter
          (fun (rtup, rc) -> emit ltup lc rtup rc)
          (Hashtbl.find_all idx (key_of_side lofs ltup eqs `L)))
      left.data
  end;
  { Partial.lo = left.lo; hi = right.hi; data = result }

let extend view (p : Partial.t) ~with_relation:(j, r) =
  let rp = Partial.of_relation view j r in
  if j = p.lo - 1 then join view rp p
  else if j = p.hi + 1 then join view p rp
  else
    invalid_arg
      (Printf.sprintf "Algebra.extend: source %d not adjacent to [%d..%d]" j
         p.lo p.hi)

let compensate view ~answer ~(interfering : Delta.t) ~(temp : Partial.t) =
  let j =
    if answer.Partial.lo = temp.lo - 1 then answer.Partial.lo
    else if answer.Partial.hi = temp.hi + 1 then answer.Partial.hi
    else
      invalid_arg
        (Printf.sprintf
           "Algebra.compensate: answer [%d..%d] does not extend temp [%d..%d]"
           answer.Partial.lo answer.Partial.hi temp.lo temp.hi)
  in
  let dp = Partial.of_source_delta view j interfering in
  let error = if j < temp.lo then join view dp temp else join view temp dp in
  Partial.sub answer error

let extend_with_probe view (p : Partial.t) ~source ~probe =
  let dir =
    if source = p.lo - 1 then `Left
    else if source = p.hi + 1 then `Right
    else
      invalid_arg
        (Printf.sprintf
           "Algebra.extend_with_probe: source %d not adjacent to [%d..%d]"
           source p.lo p.hi)
  in
  let spec =
    match dir with
    | `Left -> View_def.join_between view source
    | `Right -> View_def.join_between view p.hi
  in
  match spec.Join_spec.equalities with
  | [] -> None (* cross-product junction: no column to probe on *)
  | eqs ->
      let src_ofs = View_def.offset view source in
      let p_ofs = View_def.offset view p.lo in
      (* each equality names one attribute in [source] and one inside
         [p]; the first drives the probe, the rest filter candidates *)
      let local (lg, rg) =
        match dir with
        | `Left -> (lg - src_ofs, rg - p_ofs)
        | `Right -> (rg - src_ofs, lg - p_ofs)
      in
      let (src_col, p_col), rest =
        match List.map local eqs with
        | first :: rest -> (first, rest)
        | [] -> assert false
      in
      let residual_ok stup ptup =
        match spec.Join_spec.residual with
        | None -> true
        | Some pr ->
            let lookup g =
              match dir with
              | `Left ->
                  if g < p_ofs then stup.(g - src_ofs) else ptup.(g - p_ofs)
              | `Right ->
                  if g < src_ofs then ptup.(g - p_ofs) else stup.(g - src_ofs)
            in
            Predicate.eval ~lookup pr
      in
      let result = Delta.empty () in
      Delta.iter
        (fun ptup pc ->
          List.iter
            (fun (stup, sc) ->
              if
                List.for_all
                  (fun (sc', pc') -> stup.(sc') = ptup.(pc'))
                  rest
                && residual_ok stup ptup
              then
                let combined =
                  match dir with
                  | `Left -> Tuple.concat stup ptup
                  | `Right -> Tuple.concat ptup stup
                in
                Delta.add result combined (pc * sc))
            (probe ~col:src_col ~value:(Tuple.get ptup p_col)))
        p.data;
      let lo, hi =
        match dir with
        | `Left -> (source, p.hi)
        | `Right -> (p.lo, source)
      in
      Some { Partial.lo; hi; data = result }

let merge_overlap view ~at ~(left : Partial.t) ~(right : Partial.t) =
  if left.hi <> at || right.lo <> at then
    invalid_arg
      (Printf.sprintf
         "Algebra.merge_overlap: [%d..%d] and [%d..%d] do not overlap at %d"
         left.lo left.hi right.lo right.hi at);
  let w = View_def.width view at in
  let left_width = Partial.arity view ~lo:left.lo ~hi:left.hi in
  let result = Delta.empty () in
  (* Index right tuples by their leading (at)-slice, probe with left's
     trailing slice. *)
  let idx = Hashtbl.create (max 16 (Delta.cardinal right.data * 2)) in
  Delta.iter
    (fun tup c -> Hashtbl.add idx (Tuple.slice tup 0 w) (tup, c))
    right.data;
  Delta.iter
    (fun ltup lc ->
      let key = Tuple.slice ltup (left_width - w) w in
      List.iter
        (fun (rtup, rc) ->
          let tail = Tuple.slice rtup w (Tuple.arity rtup - w) in
          Delta.add result (Tuple.concat ltup tail) (lc * rc))
        (Hashtbl.find_all idx key))
    left.data;
  { Partial.lo = left.lo; hi = right.hi; data = result }

let select_project view (full : Partial.t) : Delta.t =
  if not (Partial.covers_all view full) then
    invalid_arg "Algebra.select_project: partial does not span all sources";
  let sel = View_def.selection view in
  let proj = View_def.projection view in
  let out = Delta.empty () in
  Delta.iter
    (fun tup c ->
      let lookup g = tup.(g) in
      if Predicate.eval ~lookup sel then
        Delta.add out (Tuple.project tup proj) c)
    full.data;
  out

let eval view fetch =
  let n = View_def.n_sources view in
  let acc = ref (Partial.of_relation view 0 (fetch 0)) in
  for j = 1 to n - 1 do
    acc := extend view !acc ~with_relation:(j, fetch j)
  done;
  let d = select_project view !acc in
  (* A recomputation of a view from positive relations yields only positive
     counts, so the conversion below cannot fail. *)
  let r = Relation.create () in
  match Relation.apply r d with
  | Ok () -> r
  | Error _ -> assert false
