type t = (Tuple.t, int) Hashtbl.t

let create ?(initial_size = 16) () : t = Hashtbl.create initial_size

let copy : t -> t = Hashtbl.copy

let add b tup n =
  if n <> 0 then
    match Hashtbl.find_opt b tup with
    | None -> Hashtbl.replace b tup n
    | Some c ->
        let c' = c + n in
        if c' = 0 then Hashtbl.remove b tup else Hashtbl.replace b tup c'

let count b tup = Option.value ~default:0 (Hashtbl.find_opt b tup)
let mem b tup = Hashtbl.mem b tup
let is_empty b = Hashtbl.length b = 0
let cardinal b = Hashtbl.length b
let total b = Hashtbl.fold (fun _ c acc -> acc + c) b 0
let weight b = Hashtbl.fold (fun _ c acc -> acc + abs c) b 0
let has_negative b = Hashtbl.fold (fun _ c acc -> acc || c < 0) b false
let iter f b = Hashtbl.iter f b
let fold f b init = Hashtbl.fold f b init
(* Iterating over [src] while [add] mutates [into] is undefined when the
   two are the same table — snapshot first. Self-merge doubles every
   count; self-diff empties the bag. *)
let merge_into ~into src =
  let src = if into == src then copy src else src in
  iter (fun tup c -> add into tup c) src

let diff_into ~into src =
  let src = if into == src then copy src else src in
  iter (fun tup c -> add into tup (-c)) src

let to_sorted_list b =
  let l = fold (fun tup c acc -> (tup, c) :: acc) b [] in
  List.sort (fun (a, _) (b, _) -> Tuple.compare a b) l

let of_list l =
  let b = create ~initial_size:(List.length l * 2) () in
  List.iter (fun (tup, c) -> add b tup c) l;
  b

let equal a b =
  cardinal a = cardinal b && fold (fun tup c ok -> ok && count b tup = c) a true

let pp ppf b =
  Format.pp_print_char ppf '{';
  List.iteri
    (fun i (tup, c) ->
      if i > 0 then Format.pp_print_string ppf ", ";
      Format.fprintf ppf "%a[%d]" Tuple.pp tup c)
    (to_sorted_list b);
  Format.pp_print_char ppf '}'
