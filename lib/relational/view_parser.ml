(* Hand-rolled lexer + recursive-descent parser. Kept dependency-free; the
   grammar is small and the error positions matter more than parser
   generators would buy us. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | COMMA
  | LPAREN
  | RPAREN
  | DOT
  | STAR
  | OP of Predicate.cmp
  | KW of string  (* uppercased keyword *)
  | EOF

type lexed = { token : token; pos : int }

exception Error of string * int

let error pos fmt = Printf.ksprintf (fun m -> raise (Error (m, pos))) fmt

let keywords =
  [ "SELECT"; "FROM"; "WHERE"; "AND"; "OR"; "NOT"; "KEY"; "INT"; "FLOAT";
    "STR"; "BOOL"; "TRUE"; "FALSE" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let lex src =
  let n = String.length src in
  let out = ref [] in
  let emit pos token = out := { token; pos } :: !out in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    let pos = !i in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do incr j done;
      let word = String.sub src !i (!j - !i) in
      i := !j;
      let upper = String.uppercase_ascii word in
      if List.mem upper keywords then emit pos (KW upper)
      else emit pos (IDENT word)
    end
    else if is_digit c then begin
      let j = ref !i in
      while !j < n && is_digit src.[!j] do incr j done;
      if !j < n && src.[!j] = '.' then begin
        incr j;
        while !j < n && is_digit src.[!j] do incr j done;
        let text = String.sub src !i (!j - !i) in
        i := !j;
        emit pos (FLOAT (float_of_string text))
      end
      else begin
        let text = String.sub src !i (!j - !i) in
        i := !j;
        emit pos (INT (int_of_string text))
      end
    end
    else
      match c with
      | ',' -> emit pos COMMA; incr i
      | '(' -> emit pos LPAREN; incr i
      | ')' -> emit pos RPAREN; incr i
      | '.' -> emit pos DOT; incr i
      | '*' -> emit pos STAR; incr i
      | '\'' ->
          let j = ref (!i + 1) in
          while !j < n && src.[!j] <> '\'' do incr j done;
          if !j >= n then error pos "unterminated string literal";
          emit pos (STRING (String.sub src (!i + 1) (!j - !i - 1)));
          i := !j + 1
      | '=' -> emit pos (OP Predicate.Eq); incr i
      | '<' ->
          if !i + 1 < n && src.[!i + 1] = '>' then begin
            emit pos (OP Predicate.Ne); i := !i + 2
          end
          else if !i + 1 < n && src.[!i + 1] = '=' then begin
            emit pos (OP Predicate.Le); i := !i + 2
          end
          else begin emit pos (OP Predicate.Lt); incr i end
      | '>' ->
          if !i + 1 < n && src.[!i + 1] = '=' then begin
            emit pos (OP Predicate.Ge); i := !i + 2
          end
          else begin emit pos (OP Predicate.Gt); incr i end
      | '!' ->
          if !i + 1 < n && src.[!i + 1] = '=' then begin
            emit pos (OP Predicate.Ne); i := !i + 2
          end
          else error pos "unexpected character '!'"
      | _ -> error pos "unexpected character %C" c
  done;
  emit n EOF;
  List.rev !out

(* --- token stream --------------------------------------------------- *)

type stream = { mutable items : lexed list }

let peek s = match s.items with [] -> assert false | t :: _ -> t

let next s =
  let t = peek s in
  (match s.items with [] -> () | _ :: rest -> s.items <- rest);
  t

let expect s want describe =
  let t = next s in
  if t.token <> want then error t.pos "expected %s" describe

let expect_kw s kw =
  let t = next s in
  match t.token with
  | KW k when k = kw -> ()
  | _ -> error t.pos "expected %s" kw

let ident s =
  let t = next s in
  match t.token with
  | IDENT name -> (name, t.pos)
  | _ -> error t.pos "expected an identifier"

(* --- AST before resolution ------------------------------------------ *)

type operand =
  | Qattr of string * string * int  (* rel, attr, pos *)
  | Lit of Value.t

type expr =
  | Cmp of Predicate.cmp * operand * operand
  | And of expr * expr
  | Or of expr * expr
  | Not of expr

(* --- parsing --------------------------------------------------------- *)

let parse_type s =
  let t = next s in
  match t.token with
  | KW "INT" -> Value.T_int
  | KW "FLOAT" -> Value.T_float
  | KW "STR" -> Value.T_str
  | KW "BOOL" -> Value.T_bool
  | _ -> error t.pos "expected a type (int, float, str, bool)"

let parse_attr s =
  let name, _ = ident s in
  let ty = parse_type s in
  let key =
    match (peek s).token with
    | KW "KEY" ->
        ignore (next s);
        true
    | _ -> false
  in
  Schema.attr ~key name ty

let parse_relation s =
  let name, _ = ident s in
  expect s LPAREN "'('";
  let attrs = ref [ parse_attr s ] in
  while (peek s).token = COMMA do
    ignore (next s);
    attrs := parse_attr s :: !attrs
  done;
  expect s RPAREN "')'";
  Schema.make name (List.rev !attrs)

let parse_qattr s =
  let rel, pos = ident s in
  expect s DOT "'.' (attributes must be qualified as Rel.attr)";
  let attr, _ = ident s in
  Qattr (rel, attr, pos)

let parse_operand s =
  let t = peek s in
  match t.token with
  | IDENT _ -> parse_qattr s
  | INT i ->
      ignore (next s);
      Lit (Value.int i)
  | FLOAT f ->
      ignore (next s);
      Lit (Value.float f)
  | STRING str ->
      ignore (next s);
      Lit (Value.str str)
  | KW "TRUE" ->
      ignore (next s);
      Lit (Value.bool true)
  | KW "FALSE" ->
      ignore (next s);
      Lit (Value.bool false)
  | _ -> error t.pos "expected an attribute or a literal"

let rec parse_expr s = parse_or s

and parse_or s =
  let left = parse_and s in
  match (peek s).token with
  | KW "OR" ->
      ignore (next s);
      Or (left, parse_or s)
  | _ -> left

and parse_and s =
  let left = parse_not s in
  match (peek s).token with
  | KW "AND" ->
      ignore (next s);
      And (left, parse_and s)
  | _ -> left

and parse_not s =
  match (peek s).token with
  | KW "NOT" ->
      ignore (next s);
      Not (parse_not s)
  | LPAREN ->
      ignore (next s);
      let e = parse_expr s in
      expect s RPAREN "')'";
      e
  | _ ->
      let l = parse_operand s in
      let t = next s in
      let op =
        match t.token with
        | OP op -> op
        | _ -> error t.pos "expected a comparison operator"
      in
      let r = parse_operand s in
      Cmp (op, l, r)

let parse_select_list s =
  match (peek s).token with
  | STAR ->
      ignore (next s);
      `All
  | _ ->
      let items = ref [ parse_qattr s ] in
      while (peek s).token = COMMA do
        ignore (next s);
        items := parse_qattr s :: !items
      done;
      `Attrs (List.rev !items)

(* --- resolution ------------------------------------------------------ *)

let resolve_qattr schemas = function
  | Qattr (rel, attr, pos) ->
      let rec find i =
        if i >= Array.length schemas then
          error pos "unknown relation %s" rel
        else if String.equal (Schema.name schemas.(i)) rel then i
        else find (i + 1)
      in
      let src = find 0 in
      let local =
        match Schema.index_of schemas.(src) attr with
        | a -> a
        | exception Not_found ->
            error pos "relation %s has no attribute %s" rel attr
      in
      let offset = ref 0 in
      for k = 0 to src - 1 do
        offset := !offset + Schema.arity schemas.(k)
      done;
      (src, !offset + local)
  | Lit _ -> invalid_arg "resolve_qattr"

let rec compile_pred schemas e : Predicate.t =
  let operand = function
    | Lit v -> Predicate.Const v
    | Qattr _ as q ->
        let _, g = resolve_qattr schemas q in
        Predicate.Attr g
  in
  match e with
  | Cmp (op, l, r) -> Predicate.Cmp (op, operand l, operand r)
  | And (a, b) -> Predicate.And (compile_pred schemas a, compile_pred schemas b)
  | Or (a, b) -> Predicate.Or (compile_pred schemas a, compile_pred schemas b)
  | Not a -> Predicate.Not (compile_pred schemas a)

(* Split a top-level conjunction into adjacent-equality join conditions
   and residual selection conjuncts. *)
let split_where schemas e =
  let rec conjuncts = function
    | And (a, b) -> conjuncts a @ conjuncts b
    | other -> [ other ]
  in
  let joins = Array.make (Array.length schemas - 1) [] in
  let residual = ref [] in
  List.iter
    (fun c ->
      match c with
      | Cmp (Predicate.Eq, (Qattr _ as l), (Qattr _ as r)) ->
          let sl, gl = resolve_qattr schemas l in
          let sr, gr = resolve_qattr schemas r in
          if sl + 1 = sr then joins.(sl) <- joins.(sl) @ [ (gl, gr) ] (* lint: allow L3 parse-time only, bounded by the query's join-predicate count *)
          else if sr + 1 = sl then joins.(sr) <- joins.(sr) @ [ (gr, gl) ]
          else residual := c :: !residual
      | _ -> residual := c :: !residual)
    (conjuncts e);
  let selection =
    Predicate.conj (List.rev_map (compile_pred schemas) !residual)
  in
  (Array.map Join_spec.make joins, selection)

let parse_stream s =
  expect_kw s "SELECT";
  let select = parse_select_list s in
  expect_kw s "FROM";
  let rels = ref [ parse_relation s ] in
  while (peek s).token = COMMA do
    ignore (next s);
    rels := parse_relation s :: !rels
  done;
  let schemas = Array.of_list (List.rev !rels) in
  let joins, selection =
    match (peek s).token with
    | KW "WHERE" ->
        ignore (next s);
        split_where schemas (parse_expr s)
    | _ ->
        (Array.make (Array.length schemas - 1) (Join_spec.make []),
         Predicate.True)
  in
  let t = next s in
  if t.token <> EOF then error t.pos "trailing input after query";
  let total_width =
    Array.fold_left (fun acc sc -> acc + Schema.arity sc) 0 schemas
  in
  let projection =
    match select with
    | `All -> Array.init total_width (fun g -> g)
    | `Attrs items ->
        Array.of_list
          (List.map (fun q -> snd (resolve_qattr schemas q)) items)
  in
  View_def.make ~name:"parsed" ~schemas ~joins ~selection ~projection ()

let parse src =
  match parse_stream { items = lex src } with
  | view -> Ok view
  | exception Error (msg, pos) ->
      Result.Error (Printf.sprintf "parse error at offset %d: %s" pos msg)
  | exception Invalid_argument msg ->
      Result.Error (Printf.sprintf "invalid view: %s" msg)

let parse_exn src =
  match parse src with Ok v -> v | Error msg -> invalid_arg msg

(* --- rendering back to the surface syntax ---------------------------- *)

let sql_of_type = function
  | Value.T_int -> "int"
  | Value.T_float -> "float"
  | Value.T_str -> "str"
  | Value.T_bool -> "bool"

let sql_of_value = function
  | Value.Int i -> string_of_int i
  | Value.Float f -> Printf.sprintf "%g" f
  | Value.Str s -> "'" ^ s ^ "'"
  | Value.Bool b -> string_of_bool b
  | Value.Null ->
      invalid_arg "View_parser.to_sql: NULL constants are not expressible"

let sql_of_cmp = function
  | Predicate.Eq -> "="
  | Predicate.Ne -> "<>"
  | Predicate.Lt -> "<"
  | Predicate.Le -> "<="
  | Predicate.Gt -> ">"
  | Predicate.Ge -> ">="

let valid_ident name =
  String.length name > 0
  && is_ident_start name.[0]
  && String.for_all is_ident_char name
  && not (List.mem (String.uppercase_ascii name) keywords)

let to_sql view =
  (* every relation and attribute name must survive the lexer *)
  Array.iter
    (fun schema ->
      if not (valid_ident (Schema.name schema)) then
        invalid_arg
          (Printf.sprintf "View_parser.to_sql: unrepresentable relation name %S"
             (Schema.name schema));
      Array.iter
        (fun a ->
          if not (valid_ident a.Schema.name) then
            invalid_arg
              (Printf.sprintf
                 "View_parser.to_sql: unrepresentable attribute name %S"
                 a.Schema.name))
        (Schema.attrs schema))
    (View_def.schemas view);
  let buf = Buffer.create 256 in
  let qattr g =
    let src = View_def.source_of_global view g in
    let schema = View_def.schema view src in
    let local = g - View_def.offset view src in
    Printf.sprintf "%s.%s" (Schema.name schema)
      (Schema.attrs schema).(local).Schema.name
  in
  (* SELECT *)
  Buffer.add_string buf "SELECT ";
  Array.iteri
    (fun i g ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (qattr g))
    (View_def.projection view);
  (* FROM *)
  Buffer.add_string buf " FROM ";
  Array.iteri
    (fun i schema ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Schema.name schema);
      Buffer.add_char buf '(';
      Array.iteri
        (fun k a ->
          if k > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf
            (Printf.sprintf "%s %s%s" a.Schema.name (sql_of_type a.Schema.ty)
               (if a.Schema.key then " key" else "")))
        (Schema.attrs schema);
      Buffer.add_char buf ')')
    (View_def.schemas view);
  (* WHERE: join equalities and residuals, then the selection *)
  let sql_of_expr = function
    | Predicate.Const v -> sql_of_value v
    | Predicate.Attr g -> qattr g
  in
  let rec sql_of_pred = function
    | Predicate.True -> "0 = 0"
    | Predicate.False -> "0 = 1"
    | Predicate.Cmp (op, l, r) ->
        Printf.sprintf "%s %s %s" (sql_of_expr l) (sql_of_cmp op)
          (sql_of_expr r)
    | Predicate.And (a, b) ->
        Printf.sprintf "(%s AND %s)" (sql_of_pred a) (sql_of_pred b)
    | Predicate.Or (a, b) ->
        Printf.sprintf "(%s OR %s)" (sql_of_pred a) (sql_of_pred b)
    | Predicate.Not a -> Printf.sprintf "NOT (%s)" (sql_of_pred a)
  in
  let conjuncts =
    List.concat
      [ Array.to_list (View_def.joins view)
        |> List.concat_map (fun spec ->
               List.map
                 (fun (l, r) -> Printf.sprintf "%s = %s" (qattr l) (qattr r))
                 spec.Join_spec.equalities
               @
               match spec.Join_spec.residual with
               | None -> []
               | Some p -> [ sql_of_pred p ]);
        (match View_def.selection view with
        | Predicate.True -> []
        | sel -> [ sql_of_pred sel ]) ]
  in
  (match conjuncts with
  | [] -> ()
  | cs ->
      Buffer.add_string buf " WHERE ";
      Buffer.add_string buf (String.concat " AND " cs));
  Buffer.contents buf
