(** Join / select / project with counting semantics.

    These operations implement both sides of the protocol: a data source
    computing [ComputeJoin(ΔV, R)] (Fig. 3) and the warehouse computing the
    local compensation [ΔRj ⋈ TempView] (Fig. 4) use the same signed hash
    join. Counts multiply across a join and accumulate under projection
    (GMS93). *)

(** [join view left right] joins two adjacent partials
    ([left.hi + 1 = right.lo]) using the chain's join condition between
    them. Counts multiply, so deletions (negative counts) propagate with
    the correct sign. Raises [Invalid_argument] when the partials are not
    adjacent. *)
val join : View_def.t -> Partial.t -> Partial.t -> Partial.t

(** [extend view p ~with_relation:(j, r)] joins [p] with relation [r] of
    source [j], which must be adjacent to [p] on either side. This is the
    source-side step of the sweep. *)
val extend : View_def.t -> Partial.t -> with_relation:int * Relation.t -> Partial.t

(** [compensate view ~answer ~interfering ~temp] removes the error term
    from a sweep answer (paper §4): [answer − interfering ⋈ temp], where
    [interfering] is the (merged) concurrent ΔRj and [temp] the partial ΔV
    that was sent to source [j]. The join side is inferred from the
    ranges. *)
val compensate :
  View_def.t -> answer:Partial.t -> interfering:Delta.t -> temp:Partial.t ->
  Partial.t

(** [extend_with_probe view p ~source ~probe] is {!extend} served by a
    persistent per-column index instead of an ad-hoc hash build: each
    partial tuple probes the source's index on the junction's first
    equality column ([probe ~col ~value] returns the matching source
    tuples with multiplicities, [col] being source-local); any further
    equalities and any residual predicate filter the candidates. Returns
    [None] only for a cross-product junction (no equality to probe on) —
    the caller falls back to {!extend}. Results are always identical to
    {!extend}'s (asserted by the test suite). *)
val extend_with_probe :
  View_def.t -> Partial.t -> source:int ->
  probe:(col:int -> value:Value.t -> (Tuple.t * int) list) ->
  Partial.t option

(** [merge_overlap view ~at ~left ~right] glues two partials that both end
    at source [at] ([left.hi = at = right.lo]): tuples whose [at]-slices
    are equal are concatenated (the duplicate slice kept once) and their
    counts multiplied. This is the ΔV_left ⋈ ΔV_right merge of the
    parallel-sweep optimization the paper sketches in §5.3 — the right
    sweep must have started from a unit-count copy of ΔR so multiplicities
    and signs are not double-counted. Raises [Invalid_argument] when the
    ranges do not overlap exactly at [at]. *)
val merge_overlap :
  View_def.t -> at:int -> left:Partial.t -> right:Partial.t -> Partial.t

(** [select_project view full] applies the view's selection and projection
    to a full-width delta, producing a delta over *view* tuples. Raises
    [Invalid_argument] when [full] does not span all sources. *)
val select_project : View_def.t -> Partial.t -> Delta.t

(** [eval view fetch] recomputes the view from scratch: [fetch i] must
    return source [i]'s current relation. Ground truth for tests and the
    recompute baseline. *)
val eval : View_def.t -> (int -> Relation.t) -> Relation.t
