(** Counted multisets of tuples.

    This is the shared representation behind {!Relation} (counts kept
    strictly positive) and {!Delta} (signed counts). The paper maintains
    tuple multiplicities with a count control field (GMS93 counting
    semantics, §2), which is what makes SWEEP correct without the
    unique-key assumption the Strobe family needs.

    A bag never stores a zero count: inserting an opposite count removes
    the entry. *)

type t

val create : ?initial_size:int -> unit -> t
val copy : t -> t

(** [add b tup n] adds [n] (possibly negative) to the multiplicity of
    [tup]. Adding zero is a no-op. *)
val add : t -> Tuple.t -> int -> unit

(** [count b tup] is the multiplicity of [tup] (0 when absent). *)
val count : t -> Tuple.t -> int

val mem : t -> Tuple.t -> bool
val is_empty : t -> bool

(** Number of distinct tuples. *)
val cardinal : t -> int

(** Sum of multiplicities (signed). *)
val total : t -> int

(** Sum of absolute multiplicities — the "size" of a bag when used as a
    message payload. *)
val weight : t -> int

(** [has_negative b] holds when some multiplicity is negative. *)
val has_negative : t -> bool

val iter : (Tuple.t -> int -> unit) -> t -> unit
val fold : (Tuple.t -> int -> 'a -> 'a) -> t -> 'a -> 'a

(** [merge_into ~into src] adds every entry of [src] into [into].
    Aliasing is safe: [merge_into ~into b b] doubles every count. *)
val merge_into : into:t -> t -> unit

(** [diff_into ~into src] subtracts every entry of [src] from [into].
    Aliasing is safe: [diff_into ~into b b] empties the bag. *)
val diff_into : into:t -> t -> unit

(** Entries sorted by tuple — canonical, deterministic order. *)
val to_sorted_list : t -> (Tuple.t * int) list

val of_list : (Tuple.t * int) list -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
