(* The invariant rules. L1–L6 are per-file [Ast_iterator] walks over one
   compilation unit's Parsetree; L7–L9 are cross-module, driven by the
   phase-1 [Modgraph] shared across the run. See DESIGN.md §11/§16 for
   the mapping from rule to paper/design invariant.

   The rules are deliberately syntactic: they over-approximate (a pragma
   with a reason settles the argument) rather than miss the systematic
   bug classes this repo has already paid for — PR 4's O(n²) appends, the
   Strobe/ECA anomaly family, snapshot drift after PR 2's WAL layer, and
   the shared-module-state races that would sink the sharded
   OCaml-domains engine (ROADMAP item 3). *)

open Parsetree

type ctx = { file : string; has_mli : bool; graph : Modgraph.t }

let line_of (loc : Location.t) = loc.loc_start.Lexing.pos_lnum

let col_of (loc : Location.t) =
  loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol

let finding ctx ~loc ~rule ~severity ~message ~hint =
  { Finding.file = ctx.file; line = line_of loc; col = col_of loc; rule;
    severity; message; hint }

let path_of (lid : Longident.t) =
  match Longident.flatten lid with exception _ -> [] | parts -> parts

let dotted lid = String.concat "." (path_of lid)

let norm_path file = String.concat "/" (String.split_on_char '\\' file)

(* ————— shared structure walks ————— *)

(* Name of a [let]-bound value, through type constraints. *)
let rec binding_name (p : pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p, _) -> binding_name p
  | _ -> None

(* Every value binding in the unit at definition level: toplevel [let]s
   plus those inside (nested) modules, functor bodies and functor
   arguments — but NOT [let]s nested inside expressions, so each returned
   binding is an analysis scope of its own. *)
let rec structure_bindings (str : structure) =
  List.concat_map item_bindings str

and item_bindings (it : structure_item) =
  match it.pstr_desc with
  | Pstr_value (_, vbs) -> vbs
  | Pstr_module mb -> module_expr_bindings mb.pmb_expr
  | Pstr_recmodule mbs ->
      List.concat_map (fun mb -> module_expr_bindings mb.pmb_expr) mbs
  | Pstr_include i -> module_expr_bindings i.pincl_mod
  | _ -> []

and module_expr_bindings (me : module_expr) =
  match me.pmod_desc with
  | Pmod_structure s -> structure_bindings s
  | Pmod_functor (_, body) -> module_expr_bindings body
  | Pmod_apply (f, arg) ->
      module_expr_bindings f @ module_expr_bindings arg
  | Pmod_constraint (me, _) -> module_expr_bindings me
  | _ -> []

(* Iterate [f] over every expression in a subtree. *)
let iter_exprs f node_iter node =
  let it =
    { Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          f e;
          Ast_iterator.default_iterator.expr self e) }
  in
  node_iter it node

let iter_exprs_in_expr f e = iter_exprs f (fun it e -> it.expr it e) e

(* ————— L1 · determinism ————— *)

(* The paper's replayable event order (§4) and PR 2's deterministic
   restart both assume a seeded run is bit-replayable. Ambient
   randomness and wall-clock reads are the two ways OCaml code breaks
   that silently. *)
let l1 ctx (str : structure) =
  let out = ref [] in
  let rng_owner = String.ends_with ~suffix:"lib/sim/rng.ml" (norm_path ctx.file) in
  iter_exprs
    (fun e ->
      match e.pexp_desc with
      | Pexp_ident { txt; loc } -> (
          match path_of txt with
          | "Random" :: _ when not rng_owner ->
              out :=
                finding ctx ~loc ~rule:"L1" ~severity:Finding.Error
                  ~message:
                    (Printf.sprintf
                       "%s: ambient randomness outside lib/sim/rng.ml \
                        breaks seeded replay"
                       (dotted txt))
                  ~hint:
                    "thread a seeded Repro_sim.Rng (Rng.split the run's \
                     root) instead of the global Random state"
                :: !out
          | [ "Unix"; ("gettimeofday" | "time") ] | [ "Sys"; "time" ] ->
              out :=
                finding ctx ~loc ~rule:"L1" ~severity:Finding.Error
                  ~message:
                    (Printf.sprintf
                       "%s: wall-clock read; seeded runs must depend only \
                        on virtual time"
                       (dotted txt))
                  ~hint:
                    "use the engine's virtual clock, or route through one \
                     allow-listed wall-metrics helper carrying a `(* lint: \
                     allow L1 ... *)` pragma"
                :: !out
          | [ "Hashtbl"; (("hash_param" | "randomize") as fn) ] ->
              out :=
                finding ctx ~loc ~rule:"L1" ~severity:Finding.Error
                  ~message:
                    (Printf.sprintf
                       "Hashtbl.%s: nondeterministic hashing; table \
                        iteration order would differ across runs"
                       fn)
                  ~hint:
                    "use the default Hashtbl.hash; canonical orders come \
                     from explicit sorts, never from bucket layout"
                :: !out
          | _ -> ())
      | Pexp_apply
          ( { pexp_desc =
                Pexp_ident
                  { txt = Longident.Ldot (Longident.Lident "Hashtbl", "create");
                    _ };
              _ },
            args ) ->
          List.iter
            (fun (lbl, arg) ->
              match (lbl, arg.pexp_desc) with
              | ( Asttypes.Labelled "random",
                  Pexp_construct
                    ({ txt = Longident.Lident "false"; _ }, None) ) ->
                  ()
              | Asttypes.Labelled "random", _ ->
                  out :=
                    finding ctx ~loc:arg.pexp_loc ~rule:"L1"
                      ~severity:Finding.Error
                      ~message:
                        "Hashtbl.create ~random: per-process seeded bucket \
                         order breaks replay and canonical encodings"
                      ~hint:
                        "drop ~random (the repo's encodings sort \
                         explicitly, so flooding resistance buys nothing \
                         here)"
                    :: !out
              | _ -> ())
            args
      | _ -> ())
    (fun it s -> it.structure it s)
    str;
  List.rev !out

(* ————— L2 · iteration order ————— *)

(* PR 2's crash-recovery argument needs byte-identical snapshots for
   equal states; Hashtbl iteration order is arbitrary, so anything it
   feeds into a Snap/Codec/Checkpoint/Jsonw encoding must pass through an
   explicit sort. Granularity is the definition-level binding: a binding
   that (transitively, syntactically) builds an encoding, touches
   Hashtbl.fold/iter and never sorts is flagged at each Hashtbl site. *)
let l2 ctx (str : structure) =
  let out = ref [] in
  let encoders = [ "Snap"; "Codec"; "Checkpoint"; "Jsonw" ] in
  List.iter
    (fun vb ->
      let sites = ref [] in
      let sorts = ref false in
      let encodes = ref false in
      let note_path loc = function
        | [ "Hashtbl"; ("fold" | "iter") ] -> sites := loc :: !sites
        | [ "List"; ("sort" | "stable_sort" | "fast_sort" | "sort_uniq") ] ->
            sorts := true
        | parts ->
            if List.exists (fun p -> List.mem p encoders) parts then
              encodes := true
      in
      iter_exprs_in_expr
        (fun e ->
          match e.pexp_desc with
          | Pexp_ident { txt; loc } -> note_path loc (path_of txt)
          | Pexp_construct ({ txt; loc }, _) -> note_path loc (path_of txt)
          | _ -> ())
        vb.pvb_expr;
      if !encodes && not !sorts then
        List.iter
          (fun loc ->
            out :=
              finding ctx ~loc ~rule:"L2" ~severity:Finding.Error
                ~message:
                  "Hashtbl iteration order flows into a snapshot/encoding \
                   without a List.sort; equal states would encode \
                   differently across runs"
                ~hint:
                  "sort the folded list on a canonical key before encoding \
                   (see Sweep_global.extra_snapshot), or pragma the site if \
                   order provably cannot reach the encoding"
              :: !out)
          (List.rev !sites))
    (structure_bindings str);
  List.rev !out

(* ————— L3 · quadratic patterns ————— *)

let is_literal_list e =
  let rec go e =
    match e.pexp_desc with
    | Pexp_construct ({ txt = Longident.Lident "[]"; _ }, None) -> true
    | Pexp_construct
        ( { txt = Longident.Lident "::"; _ },
          Some { pexp_desc = Pexp_tuple [ _; tl ]; _ } ) ->
        go tl
    | _ -> false
  in
  go e

(* Locations of [e @ [x; ...]] (append of a literal list) in a subtree. *)
let literal_appends rhs =
  let out = ref [] in
  iter_exprs_in_expr
    (fun e ->
      match e.pexp_desc with
      | Pexp_apply
          ( { pexp_desc = Pexp_ident { txt = Longident.Lident "@"; _ }; _ },
            [ _; (_, r) ] )
        when is_literal_list r ->
          out := e.pexp_loc :: !out
      | _ -> ())
    rhs;
  List.rev !out

let is_length_app e =
  match e.pexp_desc with
  | Pexp_apply
      ( { pexp_desc =
            Pexp_ident
              { txt = Longident.Ldot (Longident.Lident "List", "length"); _ };
          _ },
        _ ) ->
      true
  | _ -> false

(* The exact PR-4 bug class: [l @ [x]] re-walks the whole list on every
   append, so accumulating into a mutable cell this way is O(n²) over a
   run; ditto re-measuring a list with [List.length] on every iteration
   of a loop. *)
let l3 ctx (str : structure) =
  let out = ref [] in
  let flag_appends rhs =
    List.iter
      (fun loc ->
        out :=
          finding ctx ~loc ~rule:"L3" ~severity:Finding.Error
            ~message:
              "list append `l @ [x]` stored back into a mutable cell: O(n) \
               per append, O(n²) over the run"
            ~hint:
              "accumulate with `x :: rev_acc` and reverse at the boundary, \
               or use a two-list deque (see Update_queue); keep checkpoint \
               encodings in delivery order by reversing at snapshot time"
          :: !out)
      (literal_appends rhs)
  in
  let in_hot = ref false in
  let default = Ast_iterator.default_iterator in
  let expr self e =
    (match e.pexp_desc with
    | Pexp_setfield (_, _, rhs) -> flag_appends rhs
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Longident.Lident ":="; _ }; _ },
          [ _; (_, rhs) ] ) ->
        flag_appends rhs
    | Pexp_apply
        ( { pexp_desc =
              Pexp_ident
                { txt = Longident.Ldot (Longident.Lident "Array", "set"); _ };
            _ },
          args ) -> (
        match List.rev args with
        | (_, rhs) :: _ -> flag_appends rhs
        | [] -> ())
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Longident.Lident op; _ }; _ },
          ([ _; _ ] as args) )
      when !in_hot
           && List.mem op [ "<"; "<="; ">"; ">="; "="; "<>" ]
           && List.exists (fun (_, a) -> is_length_app a) args ->
        out :=
          finding ctx ~loc:e.pexp_loc ~rule:"L3" ~severity:Finding.Warning
            ~message:
              (Printf.sprintf
                 "`List.length` compared with `%s` inside a recursive/loop \
                  context re-measures the list on every pass"
                 op)
            ~hint:
              "cache the length in a counter maintained with the list (see \
               Update_queue.len), or bound it structurally"
          :: !out
    | _ -> ());
    match e.pexp_desc with
    | Pexp_while _ | Pexp_for _ ->
        let saved = !in_hot in
        in_hot := true;
        default.expr self e;
        in_hot := saved
    | Pexp_let (Asttypes.Recursive, vbs, body) ->
        let saved = !in_hot in
        in_hot := true;
        List.iter (self.Ast_iterator.value_binding self) vbs;
        in_hot := saved;
        self.Ast_iterator.expr self body
    | _ -> default.expr self e
  in
  let structure_item self it =
    match it.pstr_desc with
    | Pstr_value (Asttypes.Recursive, vbs) ->
        let saved = !in_hot in
        in_hot := true;
        List.iter (self.Ast_iterator.value_binding self) vbs;
        in_hot := saved
    | _ -> default.structure_item self it
  in
  let it = { default with expr; structure_item } in
  it.structure it str;
  List.sort Finding.compare !out

(* ————— L4 · exception hygiene ————— *)

(* [e] re-raises the caught exception variable [v]? *)
let reraises v body =
  let found = ref false in
  iter_exprs_in_expr
    (fun e ->
      match e.pexp_desc with
      | Pexp_apply
          ( { pexp_desc =
                Pexp_ident { txt = Longident.Lident ("raise" | "raise_notrace"); _ };
              _ },
            args ) ->
          List.iter
            (fun (_, a) ->
              match a.pexp_desc with
              | Pexp_ident { txt = Longident.Lident v'; _ } when v' = v ->
                  found := true
              | _ -> ())
            args
      | _ -> ())
    body;
  !found

let l4 ctx (str : structure) =
  let out = ref [] in
  iter_exprs
    (fun e ->
      match e.pexp_desc with
      | Pexp_try (_, cases) ->
          List.iter
            (fun c ->
              match (c.pc_lhs.ppat_desc, c.pc_guard) with
              | Ppat_any, None ->
                  out :=
                    finding ctx ~loc:c.pc_lhs.ppat_loc ~rule:"L4"
                      ~severity:Finding.Error
                      ~message:
                        "`with _ ->` swallows every exception, including \
                         the consistency checker's and the engine's own \
                         invariant violations"
                      ~hint:
                        "match the specific exceptions this expression can \
                         raise; let the rest propagate"
                    :: !out
              | Ppat_var { txt = v; _ }, None when not (reraises v c.pc_rhs)
                ->
                  out :=
                    finding ctx ~loc:c.pc_lhs.ppat_loc ~rule:"L4"
                      ~severity:Finding.Error
                      ~message:
                        (Printf.sprintf
                           "`with %s ->` catches every exception and never \
                            re-raises it"
                           v)
                      ~hint:
                        "match the specific exceptions, or re-raise after \
                         the side effect"
                    :: !out
              | _ -> ())
            cases
      | Pexp_apply
          ( { pexp_desc =
                Pexp_ident { txt = Longident.Lident ("raise" | "raise_notrace"); _ };
              _ },
            [ ( _,
                { pexp_desc =
                    Pexp_construct
                      ({ txt = Longident.Lident (("Not_found" | "Exit") as exn); _ }, None);
                  pexp_loc = loc;
                  _ } ) ] )
        when ctx.has_mli ->
          out :=
            finding ctx ~loc ~rule:"L4" ~severity:Finding.Error
              ~message:
                (Printf.sprintf
                   "bare `raise %s` in a module with an exported interface: \
                    callers get a context-free exception"
                   exn)
              ~hint:
                "raise Invalid_argument naming the operation and the \
                 offending value (see Base_table.probe), or return an \
                 option; pragma only if the .mli documents the contract"
            :: !out
      | _ -> ())
    (fun it s -> it.structure it s)
    str;
  List.sort Finding.compare !out

(* ————— L5 · snapshot completeness ————— *)

module SSet = Set.Make (String)
module SMap = Map.Make (String)

(* PR 2's recovery proof needs [restore ctx (snapshot t)] to behave
   identically to [t]: a mutable state field that neither function ever
   mentions is state that a crash silently drops. For a unit defining
   both [snapshot] and [restore] (or the sweep-engine [extra_] pair),
   every mutable record field declared in the unit must be referenced —
   as a field access, record label or pattern label — somewhere in the
   call closure of each of the two functions. *)
let l5 ctx (str : structure) =
  (* mutable fields of record types declared here *)
  let fields = ref [] in
  let ty_it =
    { Ast_iterator.default_iterator with
      type_declaration =
        (fun self td ->
          (match td.ptype_kind with
          | Ptype_record labels ->
              List.iter
                (fun ld ->
                  if ld.pld_mutable = Asttypes.Mutable then
                    fields :=
                      (td.ptype_name.txt, ld.pld_name.txt, ld.pld_loc)
                      :: !fields)
                labels
          | _ -> ());
          Ast_iterator.default_iterator.type_declaration self td) }
  in
  ty_it.structure ty_it str;
  let fields = List.rev !fields in
  if fields = [] then []
  else
    (* per definition-level binding: unqualified idents it references and
       record labels it touches *)
    let info = ref SMap.empty in
    let names = ref [] in
    List.iter
      (fun vb ->
        match binding_name vb.pvb_pat with
        | None -> ()
        | Some name ->
            let refs = ref SSet.empty in
            let labels = ref SSet.empty in
            let lbl lid =
              match path_of lid with
              | [] -> ()
              | parts -> labels := SSet.add (List.nth parts (List.length parts - 1)) !labels
            in
            let e_it =
              { Ast_iterator.default_iterator with
                expr =
                  (fun self e ->
                    (match e.pexp_desc with
                    | Pexp_ident { txt = Longident.Lident n; _ } ->
                        refs := SSet.add n !refs
                    | Pexp_field (_, { txt; _ }) -> lbl txt
                    | Pexp_setfield (_, { txt; _ }, _) -> lbl txt
                    | Pexp_record (fs, _) ->
                        List.iter (fun ({ Location.txt; _ }, _) -> lbl txt) fs
                    | _ -> ());
                    Ast_iterator.default_iterator.expr self e);
                pat =
                  (fun self p ->
                    (match p.ppat_desc with
                    | Ppat_record (fs, _) ->
                        List.iter (fun ({ Location.txt; _ }, _) -> lbl txt) fs
                    | _ -> ());
                    Ast_iterator.default_iterator.pat self p) }
            in
            e_it.expr e_it vb.pvb_expr;
            names := name :: !names;
            info :=
              SMap.update name
                (function
                  | None -> Some (!refs, !labels)
                  | Some (r, l) -> Some (SSet.union r !refs, SSet.union l !labels))
                !info)
      (structure_bindings str);
    let closure roots =
      let seen = ref SSet.empty in
      let rec go n =
        if not (SSet.mem n !seen) then begin
          seen := SSet.add n !seen;
          match SMap.find_opt n !info with
          | Some (refs, _) -> SSet.iter go refs
          | None -> ()
        end
      in
      List.iter go roots;
      SSet.fold
        (fun n acc ->
          match SMap.find_opt n !info with
          | Some (_, labels) -> SSet.union labels acc
          | None -> acc)
        !seen SSet.empty
    in
    let have root alt = SMap.mem root !info || SMap.mem alt !info in
    if not (have "snapshot" "extra_snapshot" && have "restore" "extra_restore")
    then []
    else
      let snap_labels = closure [ "snapshot"; "extra_snapshot" ] in
      let rest_labels = closure [ "restore"; "extra_restore" ] in
      List.concat_map
        (fun (ty, field, loc) ->
          let miss side =
            finding ctx ~loc ~rule:"L5" ~severity:Finding.Error
              ~message:
                (Printf.sprintf
                   "mutable field `%s.%s` is never referenced on the %s \
                    path: crash recovery would silently drop it"
                   ty field side)
              ~hint:
                "capture the field in the snapshot tree and rebuild it in \
                 restore; if it is genuinely volatile (derived, or reset \
                 after recovery), say so with a `lint: allow L5` pragma on \
                 the field"
          in
          (if SSet.mem field snap_labels then [] else [ miss "snapshot" ])
          @ if SSet.mem field rest_labels then [] else [ miss "restore" ])
        fields

(* ————— L6 · probe-less joins in the warehouse ————— *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* The 27× gap this repo's index layer closed: [Algebra.extend] walks
   every stored tuple per delta row, so a bare call in the warehouse's
   per-update path silently reopens the scan bottleneck. Warehouse code
   must go through [Algebra.extend_with_probe] backed by the leg's
   persistent index; the only legitimate scans (pairwise fallback for
   cross-product junctions, explicit [--join pairwise] strategy) carry a
   pragma naming the reason. *)
let l6 ctx (str : structure) =
  if not (contains (norm_path ctx.file) "lib/warehouse/") then []
  else begin
    let out = ref [] in
    iter_exprs
      (fun e ->
        match e.pexp_desc with
        | Pexp_ident { txt; loc } when path_of txt = [ "Algebra"; "extend" ]
          ->
            out :=
              finding ctx ~loc ~rule:"L6" ~severity:Finding.Error
                ~message:
                  "bare `Algebra.extend` in lib/warehouse scans every \
                   stored tuple per delta row, bypassing the persistent \
                   indexes"
                ~hint:
                  "probe the leg's index through \
                   `Algebra.extend_with_probe` (see \
                   Aux_store.local_answer); if this site is a deliberate \
                   scan — cross-product junction, explicit pairwise \
                   strategy — say why with a `lint: allow L6` pragma"
              :: !out
        | _ -> ())
      (fun it s -> it.structure it s)
      str;
    List.rev !out
  end

(* ————— L7 · toplevel mutable state (cross-module) ————— *)

let in_lib file =
  let f = norm_path file in
  String.starts_with ~prefix:"lib/" f || contains f "/lib/"

(* ROADMAP item 3's gate: once shards run on OCaml domains, every
   module-init mutable value in lib/ is state those domains share
   without an owner. The Modgraph mutability fixpoint finds them even
   when the creation hides behind repo-local constructors
   ([Bag.of_list], [Delta.insertion], a record whose field value is
   [Array.of_list ...]). Values that are genuinely write-once carry a
   pragma saying so. *)
let l7 ctx (_ : structure) =
  if not (in_lib ctx.file) then []
  else
    List.map
      (fun (mv : Modgraph.mutable_value) ->
        { Finding.file = ctx.file; line = mv.mv_line; col = mv.mv_col;
          rule = "L7"; severity = Finding.Error;
          message =
            Printf.sprintf
              "toplevel `%s` holds mutable structure (%s): module state \
               shared by every future domain/shard"
              mv.mv_name mv.mv_reason;
          hint =
            "make it per-instance state (a record field, or a `unit ->` \
             constructor the caller owns); if it is write-once and \
             read-only thereafter, say so with a `lint: allow L7` pragma" })
      (Modgraph.mutable_values ctx.graph ~file:ctx.file)

(* ————— L8 · hot-path effects (cross-module) ————— *)

(* The maintenance handlers are the per-update hot path and, under the
   simulator, the deterministic replay path: direct I/O or wall-clock
   reads reachable from them both cost latency and desynchronize
   replays. Observability goes through Obs, which the reachability walk
   therefore never enters. *)
let l8 ctx (_ : structure) =
  List.map
    (fun (he : Modgraph.hot_effect) ->
      { Finding.file = ctx.file; line = he.he_line; col = he.he_col;
        rule = "L8"; severity = Finding.Error;
        message =
          Printf.sprintf
            "%s in %s is reachable from a maintenance handler (%s): \
             direct I/O on the per-update hot path"
            he.he_effect he.he_def he.he_chain;
        hint =
          "route the effect through Repro_observability.Obs (spans, \
           counters, log buffers drained off the hot path), or pragma \
           the site if it provably never writes" })
    (Modgraph.hot_path_effects ctx.graph ~file:ctx.file)

(* ————— L9 · send-aliasing (copy-on-send) ————— *)

(* Known in-place mutators, keyed by their module-qualified path; the
   mutated operand is the first required argument unless a ~into label
   names it. Unqualified [:=], [incr]/[decr] and [<-] are handled
   structurally. *)
let mutator_target = function
  | [ "Hashtbl"; ("replace" | "add" | "remove" | "reset" | "clear"
                 | "filter_map_inplace") ]
  | [ "Queue"; ("push" | "add" | "pop" | "take" | "clear" | "transfer") ]
  | [ "Stack"; ("push" | "pop" | "clear") ]
  | [ "Buffer"; ("add_string" | "add_char" | "add_bytes" | "add_buffer"
                | "clear" | "reset" | "truncate") ]
  | [ "Array"; ("set" | "fill" | "blit" | "sort" | "unsafe_set") ]
  | [ "Bytes"; ("set" | "fill" | "blit" | "unsafe_set") ]
  | [ "Atomic"; ("set" | "incr" | "decr") ]
  | [ "Bag"; ("add" | "remove" | "merge_into" | "diff_into") ]
  | [ "Delta"; "add" ]
  | [ "Relation"; "apply" ]
  | [ ("Base_table" | "Aux_store" | "Eca_site"); "apply" ] ->
      true
  | _ -> false

(* Root paths of the mutable structures an expression exposes: variable
   and field chains, stopping at [*.copy] calls (the sanctioned
   copy-on-send barrier) and fresh constructions. *)
let rec root_path e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident x; _ } -> Some [ x ]
  | Pexp_field (base, { txt; _ }) -> (
      match root_path base with
      | Some p -> (
          match List.rev (path_of txt) with
          | lbl :: _ -> Some (p @ [ lbl ])
          | [] -> None)
      | None -> None)
  | Pexp_constraint (e, _) -> root_path e
  | _ -> None

let is_copy_call f =
  match f.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match List.rev (path_of txt) with
      | "copy" :: _ -> true
      | _ -> false)
  | _ -> false

let payload_roots e =
  let out = ref [] in
  let rec go e =
    match e.pexp_desc with
    | Pexp_apply (f, args) ->
        if not (is_copy_call f) then List.iter (fun (_, a) -> go a) args
    | Pexp_tuple es -> List.iter go es
    | Pexp_construct (_, Some e) | Pexp_variant (_, Some e) -> go e
    | Pexp_record (fields, base) ->
        List.iter (fun (_, v) -> go v) fields;
        Option.iter go base
    | Pexp_constraint (e, _) | Pexp_open (_, e) -> go e
    | Pexp_field _ | Pexp_ident _ -> (
        match root_path e with Some p -> out := p :: !out | None -> ())
    | _ -> ()
  in
  go e;
  !out

(* Prefix-compatible paths alias the same structure: sending [vc] and
   then mutating [vc.dv] is a flagged pair; [vc.qid] vs [vc.dv] is not. *)
let aliases sent mutated =
  let rec pre a b =
    match (a, b) with
    | [], _ | _, [] -> true
    | x :: a, y :: b -> x = y && pre a b
  in
  pre sent mutated

let offset_of (loc : Location.t) = loc.loc_start.Lexing.pos_cnum

(* Cross-shard delivery (ROADMAP item 3) makes a sent structure
   concurrently owned by the receiver the moment send returns; mutating
   it afterwards in the same function is a race in the domains build and
   an aliasing bug in the simulator. The rule is lexical and per
   definition: sends and subsequent mutations of a prefix-compatible
   path. *)
let l9 ctx (str : structure) =
  if not (in_lib ctx.file) then []
  else begin
    let out = ref [] in
    List.iter
      (fun vb ->
        let sends = ref [] in
        let muts = ref [] in
        iter_exprs_in_expr
          (fun e ->
            match e.pexp_desc with
            | Pexp_apply (f, args) -> (
                let is_send =
                  match f.pexp_desc with
                  | Pexp_ident { txt; _ } -> (
                      match List.rev (path_of txt) with
                      | "send" :: _ -> true
                      | _ -> false)
                  | Pexp_field (_, { txt; _ }) -> (
                      match List.rev (path_of txt) with
                      | "send" :: _ -> true
                      | _ -> false)
                  | _ -> false
                in
                if is_send then begin
                  let roots =
                    List.concat_map (fun (_, a) -> payload_roots a) args
                  in
                  if roots <> [] then
                    sends := (offset_of e.pexp_loc, e.pexp_loc, roots) :: !sends
                end
                else
                  match f.pexp_desc with
                  | Pexp_ident { txt; _ } -> (
                      let parts = path_of txt in
                      let note target =
                        match root_path target with
                        | Some p ->
                            muts :=
                              ( offset_of e.pexp_loc, e.pexp_loc, p,
                                dotted txt )
                              :: !muts
                        | None -> ()
                      in
                      match parts with
                      | [ ":=" ] | [ "incr" ] | [ "decr" ] -> (
                          match args with
                          | (_, target) :: _ -> note target
                          | [] -> ())
                      | _ when mutator_target parts -> (
                          let labelled_into =
                            List.find_opt
                              (fun (lbl, _) -> lbl = Asttypes.Labelled "into")
                              args
                          in
                          match labelled_into with
                          | Some (_, target) -> note target
                          | None -> (
                              match
                                List.find_opt
                                  (fun (lbl, _) -> lbl = Asttypes.Nolabel)
                                  args
                              with
                              | Some (_, target) -> note target
                              | None -> ()))
                      | _ -> ())
                  | _ -> ())
            | Pexp_setfield (recv, { txt; _ }, _) -> (
                match root_path recv with
                | Some p -> (
                    match List.rev (path_of txt) with
                    | lbl :: _ ->
                        let path = p @ [ lbl ] in
                        muts :=
                          (offset_of e.pexp_loc, e.pexp_loc, path, "<-")
                          :: !muts
                    | [] -> ())
                | None -> ())
            | _ -> ())
          vb.pvb_expr;
        List.iter
          (fun (m_off, m_loc, m_path, m_op) ->
            match
              List.find_opt
                (fun (s_off, _, roots) ->
                  s_off < m_off
                  && List.exists (fun r -> aliases r m_path) roots)
                (List.rev !sends)
            with
            | Some (_, s_loc, _) ->
                out :=
                  finding ctx ~loc:m_loc ~rule:"L9" ~severity:Finding.Error
                    ~message:
                      (Printf.sprintf
                         "`%s` mutates `%s` after it was sent at line %d: \
                          the receiver observes the mutation (and races \
                          on it once shards run on domains)"
                         m_op
                         (String.concat "." m_path)
                         (line_of s_loc))
                    ~hint:
                      "send a copy (`Partial.copy`/`Delta.copy`/\
                       `Relation.copy`) and keep mutating the original, \
                       or finish mutating before the send"
                  :: !out
            | None -> ())
          (List.rev !muts))
      (structure_bindings str);
    List.sort Finding.compare !out
  end

(* ————— registry ————— *)

let all : (string * (ctx -> structure -> Finding.t list)) list =
  [ ("L1", l1); ("L2", l2); ("L3", l3); ("L4", l4); ("L5", l5); ("L6", l6);
    ("L7", l7); ("L8", l8); ("L9", l9) ]

(* id, slug, one-line description — the SARIF rule table and the
   per-rule report stats both read from here. *)
let meta =
  [ ("L1", "determinism",
     "no ambient randomness, wall-clock reads or randomized hashing");
    ("L2", "iteration-order",
     "Hashtbl iteration must not reach encodings without a sort");
    ("L3", "quadratic",
     "no O(n^2) list appends or repeated List.length in loops");
    ("L4", "exception-hygiene",
     "no catch-all swallows or context-free raises across interfaces");
    ("L5", "snapshot-complete",
     "every mutable field crosses snapshot and restore");
    ("L6", "probe-less-join",
     "warehouse joins probe persistent indexes, never bare scans");
    ("L7", "toplevel-mutable-state",
     "no module-init mutable values in lib/ (domain-shared state)");
    ("L8", "hot-path-effects",
     "no direct I/O or wall-clock reads reachable from handlers");
    ("L9", "send-aliasing",
     "no mutation of a structure after sending it (copy-on-send)") ]

let run ctx str = List.concat_map (fun (_, rule) -> rule ctx str) all
