(** Suppression pragmas: [(* lint: allow <rule> <reason> *)] covers
    findings of [<rule>] on the same or the next line;
    [(* lint: allow-file <rule> <reason> *)] covers the whole file. The
    reason is mandatory — each suppression is its own audit trail. *)

type t = {
  line : int;
  rule : string;  (** canonical id, e.g. "L3" *)
  reason : string;
  file_wide : bool;
  mutable used : bool;
}

(** Accepts "L1".."L9" and the slug names ("determinism",
    "iteration-order", "quadratic", "exception-hygiene",
    "snapshot-complete", "probe-less-join", "toplevel-mutable-state",
    "hot-path-effects", "send-aliasing"), case-insensitively. *)
val canonical_rule : string -> string option

(** [scan source] returns pragmas in line order plus malformed-pragma
    diagnostics as [(line, message)] pairs. *)
val scan : string -> t list * (int * string) list

val covers : t -> Finding.t -> bool
