(* Orchestration: discover files, parse with compiler-libs, run the
   rules, apply pragmas, render text or JSON, decide the exit status. *)

module Jsonw = Repro_observability.Jsonw

type file_report = {
  file : string;
  findings : Finding.t list;  (* active (unsuppressed), sorted *)
  suppressed : (Finding.t * Pragma.t) list;  (* the audit trail *)
}

type report = { files : int; reports : file_report list }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_impl ~file source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  Parse.implementation lexbuf

(* Directories never descended into: build artifacts, hidden dirs, and
   the lint fixtures (which violate the rules on purpose). *)
let skip_dir name =
  name = "_build" || name = "lint_fixtures"
  || (String.length name > 0 && name.[0] = '.')

let rec discover path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun entry ->
           if skip_dir entry then []
           else discover (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let parse_error_finding ~file msg =
  { Finding.file; line = 1; col = 0; rule = "parse";
    severity = Finding.Error; message = msg; hint = "" }

(* Lint one unit from source text. [has_mli] defaults to a sibling-file
   probe; tests override it. *)
let lint_source ?has_mli ~file source =
  let has_mli =
    match has_mli with
    | Some b -> b
    | None -> Sys.file_exists (file ^ "i")
  in
  let pragmas, pragma_errors = Pragma.scan source in
  let raw =
    match parse_impl ~file source with
    | ast -> Rules.run { Rules.file; has_mli } ast
    | exception Syntaxerr.Error _ ->
        [ parse_error_finding ~file "syntax error: unit skipped" ]
    | exception Lexer.Error (_, _) ->
        [ parse_error_finding ~file "lexing error: unit skipped" ]
  in
  let active, suppressed =
    List.fold_left
      (fun (active, suppressed) f ->
        match List.find_opt (fun p -> Pragma.covers p f) pragmas with
        | Some p ->
            p.Pragma.used <- true;
            (active, (f, p) :: suppressed)
        | None -> (f :: active, suppressed))
      ([], []) raw
  in
  let pragma_findings =
    List.map
      (fun (line, msg) ->
        { Finding.file; line; col = 0; rule = "pragma";
          severity = Finding.Error; message = msg; hint = "" })
      pragma_errors
    @ List.filter_map
        (fun (p : Pragma.t) ->
          if p.used then None
          else
            Some
              { Finding.file; line = p.line; col = 0; rule = "pragma";
                severity = Finding.Warning;
                message =
                  Printf.sprintf
                    "pragma `allow %s` (%s) suppresses nothing; drop it"
                    p.rule p.reason;
                hint = "" })
        pragmas
  in
  { file;
    findings = List.sort Finding.compare (pragma_findings @ active);
    suppressed = List.rev suppressed }

let lint_file path = lint_source ~file:path (read_file path)

let lint_paths paths =
  let files = List.concat_map discover paths in
  { files = List.length files; reports = List.map lint_file files }

(* ————— aggregation & rendering ————— *)

let all_findings r = List.concat_map (fun fr -> fr.findings) r.reports
let all_suppressed r = List.concat_map (fun fr -> fr.suppressed) r.reports

let count sev r =
  List.length
    (List.filter (fun (f : Finding.t) -> f.severity = sev) (all_findings r))

let errors r = count Finding.Error r
let warnings r = count Finding.Warning r

let render_text ?(show_suppressed = false) r =
  let buf = Buffer.create 1024 in
  List.iter
    (fun fr ->
      List.iter
        (fun f ->
          Buffer.add_string buf (Finding.to_string f);
          Buffer.add_char buf '\n')
        fr.findings)
    r.reports;
  if show_suppressed then
    List.iter
      (fun (f, (p : Pragma.t)) ->
        Buffer.add_string buf
          (Printf.sprintf "%s:%d: [%s][suppressed] %s — allowed: %s\n"
             f.Finding.file f.Finding.line f.Finding.rule f.Finding.message
             p.reason))
      (all_suppressed r);
  Buffer.add_string buf
    (Printf.sprintf
       "repro-lint: %d file(s), %d error(s), %d warning(s), %d suppressed\n"
       r.files (errors r) (warnings r)
       (List.length (all_suppressed r)));
  Buffer.contents buf

let finding_json (f : Finding.t) =
  Jsonw.obj
    [ ("file", Jsonw.str f.file); ("line", Jsonw.int f.line);
      ("col", Jsonw.int f.col); ("rule", Jsonw.str f.rule);
      ("severity", Jsonw.str (Finding.severity_label f.severity));
      ("message", Jsonw.str f.message); ("hint", Jsonw.str f.hint) ]

let suppression_json (f, (p : Pragma.t)) =
  Jsonw.obj
    [ ("file", Jsonw.str f.Finding.file); ("line", Jsonw.int f.Finding.line);
      ("rule", Jsonw.str f.Finding.rule);
      ("message", Jsonw.str f.Finding.message);
      ("pragma_line", Jsonw.int p.line); ("reason", Jsonw.str p.reason) ]

let to_json r =
  Jsonw.obj
    [ ("version", Jsonw.str "repro-lint/1"); ("files", Jsonw.int r.files);
      ("errors", Jsonw.int (errors r));
      ("warnings", Jsonw.int (warnings r));
      ("findings", Jsonw.list (List.map finding_json (all_findings r)));
      ("suppressions",
       Jsonw.list (List.map suppression_json (all_suppressed r))) ]

let render_json r = Jsonw.to_string ~indent:2 (to_json r)

(* ————— CLI ————— *)

let usage =
  "usage: repro_lint [--json] [--show-suppressed] [path ...]\n\
   Lints every .ml under the given files/directories (default: lib bin \
   bench test).\n\
   Exit status 1 when any error-severity finding survives pragmas."

let main argv =
  let json = ref false in
  let show_suppressed = ref false in
  let paths = ref [] in
  let bad = ref None in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--json" -> json := true
        | "--show-suppressed" -> show_suppressed := true
        | "--help" | "-h" -> bad := Some 0
        | _ when String.length arg > 0 && arg.[0] = '-' -> bad := Some 2
        | path -> paths := path :: !paths)
    argv;
  match !bad with
  | Some code ->
      print_endline usage;
      code
  | None ->
      let paths =
        match List.rev !paths with
        | [] -> [ "lib"; "bin"; "bench"; "test" ]
        | ps -> ps
      in
      (match List.find_opt (fun p -> not (Sys.file_exists p)) paths with
      | Some missing ->
          Printf.eprintf "repro_lint: no such path: %s\n" missing;
          exit 2
      | None -> ());
      let r = lint_paths paths in
      if !json then print_string (render_json r)
      else print_string (render_text ~show_suppressed:!show_suppressed r);
      if errors r > 0 then 1 else 0
