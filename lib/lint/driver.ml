(* Orchestration, in two phases: phase 1 discovers and parses every
   unit once and builds the Modgraph (the cross-module rules' repo
   model); phase 2 runs the rules over the selected units, applies
   pragmas, renders text / JSON / SARIF and decides the exit status.

   [--changed[=REF]] restricts phase 2 to the units git reports changed
   against REF — phase 1 always covers the whole repo, so cross-module
   verdicts stay exact for the selected files — falling back to a full
   run when a changed interface (or a unit other units reference) could
   shift verdicts elsewhere. *)

module Jsonw = Repro_observability.Jsonw

type file_report = {
  file : string;
  findings : Finding.t list;  (* active (unsuppressed), sorted *)
  suppressed : (Finding.t * Pragma.t) list;  (* the audit trail *)
  pragma_count : int;  (* pragma occurrences scanned, valid or not *)
}

type report = { files : int; reports : file_report list }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_impl ~file source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  Parse.implementation lexbuf

(* Directories never descended into: build artifacts, hidden dirs, and
   the lint fixtures (which violate the rules on purpose). *)
let skip_dir name =
  name = "_build" || name = "lint_fixtures"
  || (String.length name > 0 && name.[0] = '.')

let rec discover path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun entry ->
           if skip_dir entry then []
           else discover (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let parse_error_finding ~file msg =
  { Finding.file; line = 1; col = 0; rule = "parse";
    severity = Finding.Error; message = msg; hint = "" }

(* ————— phase 1: parse once ————— *)

type parsed = {
  p_file : string;
  p_has_mli : bool;
  p_source : string;
  p_ast : Parsetree.structure option;
  p_parse_error : Finding.t option;
}

let parse_unit ?has_mli ~file source =
  let has_mli =
    match has_mli with
    | Some b -> b
    | None -> Sys.file_exists (file ^ "i")
  in
  let ast, err =
    match parse_impl ~file source with
    | ast -> (Some ast, None)
    | exception Syntaxerr.Error _ ->
        (None, Some (parse_error_finding ~file "syntax error: unit skipped"))
    | exception Lexer.Error (_, _) ->
        (None, Some (parse_error_finding ~file "lexing error: unit skipped"))
  in
  { p_file = file; p_has_mli = has_mli; p_source = source; p_ast = ast;
    p_parse_error = err }

let build_graph parsed =
  Modgraph.build
    (List.filter_map
       (fun p ->
         match p.p_ast with Some ast -> Some (p.p_file, ast) | None -> None)
       parsed)

(* ————— phase 2: rules + pragmas on one unit ————— *)

let lint_parsed graph p =
  let pragmas, pragma_errors = Pragma.scan p.p_source in
  let raw =
    match p.p_ast with
    | Some ast ->
        Rules.run { Rules.file = p.p_file; has_mli = p.p_has_mli; graph } ast
    | None -> (
        match p.p_parse_error with Some f -> [ f ] | None -> [])
  in
  let active, suppressed =
    List.fold_left
      (fun (active, suppressed) f ->
        match List.find_opt (fun pr -> Pragma.covers pr f) pragmas with
        | Some pr ->
            pr.Pragma.used <- true;
            (active, (f, pr) :: suppressed)
        | None -> (f :: active, suppressed))
      ([], []) raw
  in
  let pragma_findings =
    List.map
      (fun (line, msg) ->
        { Finding.file = p.p_file; line; col = 0; rule = "pragma";
          severity = Finding.Error; message = msg; hint = "" })
      pragma_errors
    @ List.filter_map
        (fun (pr : Pragma.t) ->
          if pr.used then None
          else
            Some
              { Finding.file = p.p_file; line = pr.line; col = 0;
                rule = "pragma"; severity = Finding.Warning;
                message =
                  Printf.sprintf
                    "pragma `allow %s` (%s) suppresses nothing; drop it"
                    pr.rule pr.reason;
                hint = "" })
        pragmas
  in
  { file = p.p_file;
    findings = List.sort Finding.compare (pragma_findings @ active);
    suppressed = List.rev suppressed;
    pragma_count = List.length pragmas + List.length pragma_errors }

(* Lint one unit from source text, with a single-unit graph — the
   fixture entry point. [has_mli] defaults to a sibling-file probe;
   tests override it. *)
let lint_source ?has_mli ~file source =
  let p = parse_unit ?has_mli ~file source in
  lint_parsed (build_graph [ p ]) p

let lint_file path = lint_source ~file:path (read_file path)

(* Lint several units from source against one shared graph — the
   cross-module fixture entry point. *)
let lint_sources units =
  let parsed =
    List.map (fun (file, src) -> parse_unit ~has_mli:false ~file src) units
  in
  let graph = build_graph parsed in
  { files = List.length parsed;
    reports = List.map (lint_parsed graph) parsed }

let graph_of_sources units =
  build_graph
    (List.map (fun (file, src) -> parse_unit ~has_mli:false ~file src) units)

let lint_paths paths =
  let files = List.concat_map discover paths in
  let parsed = List.map (fun f -> parse_unit ~file:f (read_file f)) files in
  let graph = build_graph parsed in
  { files = List.length files;
    reports = List.map (lint_parsed graph) parsed }

(* ————— incremental planning (--changed) ————— *)

(* Decide, purely from the module graph, whether linting only [changed]
   is sound. A changed interface, or a changed unit other units
   reference, can shift cross-module verdicts in files we would skip —
   those force a full run. Exposed for unit tests (git is unavailable
   in the dune sandbox). *)
let incremental_plan ~graph ~all_files ~changed =
  let norm p = String.concat "/" (String.split_on_char '\\' p) in
  let all = List.map norm all_files in
  let changed = List.map norm changed in
  let graph_units = Modgraph.units graph in
  let interface =
    List.find_opt
      (fun c ->
        Filename.check_suffix c ".mli"
        && List.mem (Modgraph.unit_name_of_file c) graph_units)
      changed
  in
  match interface with
  | Some mli ->
      `Full (Printf.sprintf "interface %s changed" mli)
  | None -> (
      let changed_ml =
        List.filter (fun c -> Filename.check_suffix c ".ml") changed
      in
      let selected =
        List.filter
          (fun f ->
            List.exists
              (fun c ->
                f = c
                || Filename.basename f = Filename.basename c)
              changed_ml)
          all
      in
      let referenced =
        List.find_map
          (fun f ->
            let u = Modgraph.unit_name_of_file f in
            match Modgraph.referencing_units graph u with
            | [] -> None
            | refs -> Some (u, refs))
          selected
      in
      match referenced with
      | Some (u, refs) ->
          `Full
            (Printf.sprintf "unit %s is referenced by %s" u
               (String.concat ", " refs))
      | None -> `Subset selected)

let git_lines cmd =
  let ic = Unix.open_process_in cmd in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> Some (List.rev !lines)
  | _ -> None

let git_changed ref_ =
  match
    git_lines
      (Printf.sprintf "git diff --name-only %s -- 2>/dev/null"
         (Filename.quote ref_))
  with
  | None -> None
  | Some diff ->
      let untracked =
        Option.value ~default:[]
          (git_lines "git ls-files --others --exclude-standard 2>/dev/null")
      in
      Some (diff @ untracked)

(* ————— aggregation & rendering ————— *)

let all_findings r = List.concat_map (fun fr -> fr.findings) r.reports
let all_suppressed r = List.concat_map (fun fr -> fr.suppressed) r.reports

let count sev r =
  List.length
    (List.filter (fun (f : Finding.t) -> f.severity = sev) (all_findings r))

let errors r = count Finding.Error r
let warnings r = count Finding.Warning r

let pragmas r =
  List.fold_left (fun acc fr -> acc + fr.pragma_count) 0 r.reports

(* (id, slug, active findings, suppressed findings) per rule, in rule
   order — the per-rule accounting CI prints and the JSON embeds. *)
let rule_stats r =
  let active = all_findings r in
  let supp = all_suppressed r in
  List.map
    (fun (id, slug, _) ->
      ( id, slug,
        List.length (List.filter (fun (f : Finding.t) -> f.rule = id) active),
        List.length
          (List.filter (fun ((f : Finding.t), _) -> f.rule = id) supp) ))
    Rules.meta

let render_text ?(show_suppressed = false) r =
  let buf = Buffer.create 1024 in
  List.iter
    (fun fr ->
      List.iter
        (fun f ->
          Buffer.add_string buf (Finding.to_string f);
          Buffer.add_char buf '\n')
        fr.findings)
    r.reports;
  if show_suppressed then
    List.iter
      (fun (f, (p : Pragma.t)) ->
        Buffer.add_string buf
          (Printf.sprintf "%s:%d: [%s][suppressed] %s — allowed: %s\n"
             f.Finding.file f.Finding.line f.Finding.rule f.Finding.message
             p.reason))
      (all_suppressed r);
  List.iter
    (fun (id, slug, active, suppressed) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s %-24s %d finding(s), %d suppressed\n" id slug
           active suppressed))
    (rule_stats r);
  Buffer.add_string buf
    (Printf.sprintf
       "repro-lint: %d file(s), %d error(s), %d warning(s), %d suppressed, \
        %d pragma(s)\n"
       r.files (errors r) (warnings r)
       (List.length (all_suppressed r))
       (pragmas r));
  Buffer.contents buf

let finding_json (f : Finding.t) =
  Jsonw.obj
    [ ("file", Jsonw.str f.file); ("line", Jsonw.int f.line);
      ("col", Jsonw.int f.col); ("rule", Jsonw.str f.rule);
      ("severity", Jsonw.str (Finding.severity_label f.severity));
      ("message", Jsonw.str f.message); ("hint", Jsonw.str f.hint) ]

let suppression_json (f, (p : Pragma.t)) =
  Jsonw.obj
    [ ("file", Jsonw.str f.Finding.file); ("line", Jsonw.int f.Finding.line);
      ("rule", Jsonw.str f.Finding.rule);
      ("message", Jsonw.str f.Finding.message);
      ("pragma_line", Jsonw.int p.line); ("reason", Jsonw.str p.reason) ]

let to_json r =
  Jsonw.obj
    [ ("version", Jsonw.str "repro-lint/1"); ("files", Jsonw.int r.files);
      ("errors", Jsonw.int (errors r));
      ("warnings", Jsonw.int (warnings r));
      ("pragmas", Jsonw.int (pragmas r));
      ("rules",
       Jsonw.list
         (List.map
            (fun (id, slug, active, suppressed) ->
              Jsonw.obj
                [ ("id", Jsonw.str id); ("slug", Jsonw.str slug);
                  ("findings", Jsonw.int active);
                  ("suppressed", Jsonw.int suppressed) ])
            (rule_stats r)));
      ("findings", Jsonw.list (List.map finding_json (all_findings r)));
      ("suppressions",
       Jsonw.list (List.map suppression_json (all_suppressed r))) ]

let render_json r = Jsonw.to_string ~indent:2 (to_json r)

(* ————— SARIF 2.1.0 ————— *)

(* The minimal static-analysis interchange shape: one run, the rule
   table from Rules.meta, one result per active finding. Suppressed
   findings are by definition resolved, so they stay out of [results]
   and are accounted in the run properties instead. *)
let to_sarif r =
  let rule_json (id, slug, _, _) =
    let (_, _, desc) =
      List.find (fun (i, _, _) -> i = id) Rules.meta
    in
    Jsonw.obj
      [ ("id", Jsonw.str id); ("name", Jsonw.str slug);
        ("shortDescription", Jsonw.obj [ ("text", Jsonw.str desc) ]) ]
  in
  let result_json (f : Finding.t) =
    Jsonw.obj
      [ ("ruleId", Jsonw.str f.rule);
        ("level",
         Jsonw.str
           (match f.severity with
           | Finding.Error -> "error"
           | Finding.Warning -> "warning"));
        ("message", Jsonw.obj [ ("text", Jsonw.str f.message) ]);
        ("locations",
         Jsonw.list
           [ Jsonw.obj
               [ ( "physicalLocation",
                   Jsonw.obj
                     [ ( "artifactLocation",
                         Jsonw.obj [ ("uri", Jsonw.str f.file) ] );
                       ( "region",
                         Jsonw.obj
                           [ ("startLine", Jsonw.int f.line);
                             ("startColumn", Jsonw.int (f.col + 1)) ] ) ] )
               ] ]) ]
  in
  Jsonw.obj
    [ ("$schema",
       Jsonw.str "https://json.schemastore.org/sarif-2.1.0.json");
      ("version", Jsonw.str "2.1.0");
      ("runs",
       Jsonw.list
         [ Jsonw.obj
             [ ( "tool",
                 Jsonw.obj
                   [ ( "driver",
                       Jsonw.obj
                         [ ("name", Jsonw.str "repro-lint");
                           ("version", Jsonw.str "1");
                           ("rules",
                            Jsonw.list (List.map rule_json (rule_stats r)))
                         ] ) ] );
               ("results",
                Jsonw.list (List.map result_json (all_findings r)));
               ( "invocations",
                 Jsonw.list
                   [ Jsonw.obj
                       [ ("executionSuccessful", Jsonw.bool (errors r = 0))
                       ] ] );
               ( "properties",
                 Jsonw.obj
                   [ ("files", Jsonw.int r.files);
                     ("suppressions",
                      Jsonw.int (List.length (all_suppressed r)));
                     ("pragmas", Jsonw.int (pragmas r)) ] ) ] ]) ]

let render_sarif r = Jsonw.to_string ~indent:2 (to_sarif r)

(* ————— CLI ————— *)

let usage =
  "usage: repro_lint [--json] [--show-suppressed] [--sarif OUT.sarif] \
   [--changed[=REF]] [path ...]\n\
   Lints every .ml under the given files/directories (default: lib bin \
   bench test).\n\
   --sarif writes a SARIF 2.1.0 report alongside the chosen output.\n\
   --changed lints only files changed vs a git ref (default HEAD), \
   falling back to the full repo when the module graph demands it.\n\
   Exit status 1 when any error-severity finding survives pragmas."

let main argv =
  let json = ref false in
  let show_suppressed = ref false in
  let sarif_out = ref None in
  let changed_ref = ref None in
  let paths = ref [] in
  let bad = ref None in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
        json := true;
        parse rest
    | "--show-suppressed" :: rest ->
        show_suppressed := true;
        parse rest
    | "--sarif" :: out :: rest ->
        sarif_out := Some out;
        parse rest
    | [ "--sarif" ] -> bad := Some 2
    | "--changed" :: rest ->
        changed_ref := Some "HEAD";
        parse rest
    | ("--help" | "-h") :: _ -> bad := Some 0
    | arg :: rest when String.length arg > 0 && arg.[0] = '-' ->
        let prefix pre =
          String.length arg > String.length pre
          && String.sub arg 0 (String.length pre) = pre
        in
        let suffix pre =
          String.sub arg (String.length pre)
            (String.length arg - String.length pre)
        in
        if prefix "--changed=" then begin
          changed_ref := Some (suffix "--changed=");
          parse rest
        end
        else if prefix "--sarif=" then begin
          sarif_out := Some (suffix "--sarif=");
          parse rest
        end
        else bad := Some 2
    | path :: rest ->
        paths := path :: !paths;
        parse rest
  in
  parse (List.tl (Array.to_list argv));
  match !bad with
  | Some code ->
      print_endline usage;
      code
  | None -> (
      let paths =
        match List.rev !paths with
        | [] -> [ "lib"; "bin"; "bench"; "test" ]
        | ps -> ps
      in
      match List.find_opt (fun p -> not (Sys.file_exists p)) paths with
      | Some missing ->
          Printf.eprintf "repro_lint: no such path: %s\n" missing;
          2
      | None ->
          let files = List.concat_map discover paths in
          let parsed =
            List.map (fun f -> parse_unit ~file:f (read_file f)) files
          in
          let graph = build_graph parsed in
          let selected =
            match !changed_ref with
            | None -> parsed
            | Some ref_ -> (
                match git_changed ref_ with
                | None ->
                    Printf.eprintf
                      "repro_lint: git diff vs %s failed; full run\n" ref_;
                    parsed
                | Some changed -> (
                    match
                      incremental_plan ~graph ~all_files:files ~changed
                    with
                    | `Full reason ->
                        Printf.eprintf
                          "repro_lint: incremental fallback to full run \
                           (%s)\n"
                          reason;
                        parsed
                    | `Subset keep ->
                        Printf.eprintf
                          "repro_lint: incremental vs %s: %d of %d file(s)\n"
                          ref_ (List.length keep) (List.length files);
                        List.filter
                          (fun p -> List.mem p.p_file keep)
                          parsed))
          in
          let r =
            { files = List.length selected;
              reports = List.map (lint_parsed graph) selected }
          in
          (match !sarif_out with
          | Some out ->
              let oc = open_out_bin out in
              Fun.protect
                ~finally:(fun () -> close_out_noerr oc)
                (fun () -> output_string oc (render_sarif r))
          | None -> ());
          if !json then print_string (render_json r)
          else print_string (render_text ~show_suppressed:!show_suppressed r);
          if errors r > 0 then 1 else 0)
