(* Phase-1 repo model for the cross-module rules. See modgraph.mli for
   the contract. Everything here is deliberately syntactic: the model
   over-approximates (a pragma with a reason settles the argument) and
   the arity guard keeps the one systematic false positive — partial
   applications like [let encode = Codec.encode put] — out. *)

open Parsetree

type mutable_value = {
  mv_name : string;
  mv_line : int;
  mv_col : int;
  mv_reason : string;
}

type hot_effect = {
  he_line : int;
  he_col : int;
  he_effect : string;
  he_def : string;
  he_chain : string;
}

(* One definition-level [let]. [arity] counts required (non-optional)
   peeled parameters; 0 means a plain value. [mut] is the fixpoint
   verdict: Some reason when the value / fully-applied result holds
   freshly created mutable structure. *)
type def = {
  d_unit : string;
  d_file : string;
  d_name : string;
  d_line : int;
  d_col : int;
  mutable d_arity : int;
  d_atoms : atom list;  (* return-position summary, see below *)
  d_refs : (string * string) list;  (* resolved (unit, def) references *)
  d_effects : (int * int * string) list;  (* line, col, primitive *)
  mutable d_mut : string option;
}

(* What a definition returns, reduced to the cases the fixpoint can act
   on. [Direct] is mutable structure created right here; [Call]/[Alias]
   defer to another indexed definition; [Prim_alias] is a bare reference
   to a stdlib creator ([let mk = Hashtbl.create]). *)
and atom =
  | Direct of string
  | Call of (string * string) * int  (* target, required args supplied *)
  | Alias of (string * string)
  | Prim_alias of string * int  (* reason, creator arity *)

type t = {
  files : (string * string) list;  (* unit name, file *)
  unit_of_file : (string, string) Hashtbl.t;
  defs : def list;
  (* resolution index: (unit, name) -> def (first definition wins) *)
  by_name : (string * string, def) Hashtbl.t;
  (* units referencing a given unit, precomputed for [--changed] *)
  mutable reach : ((string * string, string) Hashtbl.t) option;
      (* handler reachability: def -> " -> "-joined chain from its root;
         computed lazily, shared by every per-file L8 query *)
}

let norm_path file = String.concat "/" (String.split_on_char '\\' file)

let in_lib file =
  let f = norm_path file in
  String.length f >= 4 && (String.sub f 0 4 = "lib/" || (
    let rec go i =
      i + 5 <= String.length f && (String.sub f i 5 = "/lib/" || go (i + 1))
    in
    go 0))

let in_observability file =
  let f = norm_path file in
  let needle = "lib/observability/" in
  let n = String.length needle and h = String.length f in
  let rec go i = i + n <= h && (String.sub f i n = needle || go (i + 1)) in
  go 0

let unit_name_of_file file =
  let base = Filename.remove_extension (Filename.basename (norm_path file)) in
  String.capitalize_ascii base

let line_of (loc : Location.t) = loc.loc_start.Lexing.pos_lnum
let col_of (loc : Location.t) =
  loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol

let path_of (lid : Longident.t) =
  match Longident.flatten lid with exception _ -> [] | parts -> parts

(* ————— shared structure walks (local copies: Rules depends on us) ————— *)

let rec binding_name (p : pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p, _) -> binding_name p
  | _ -> None

let rec structure_bindings (str : structure) =
  List.concat_map item_bindings str

and item_bindings (it : structure_item) =
  match it.pstr_desc with
  | Pstr_value (_, vbs) -> vbs
  | Pstr_module mb -> module_expr_bindings mb.pmb_expr
  | Pstr_recmodule mbs ->
      List.concat_map (fun mb -> module_expr_bindings mb.pmb_expr) mbs
  | Pstr_include i -> module_expr_bindings i.pincl_mod
  | _ -> []

and module_expr_bindings (me : module_expr) =
  match me.pmod_desc with
  | Pmod_structure s -> structure_bindings s
  | Pmod_functor (_, body) -> module_expr_bindings body
  | Pmod_apply (f, arg) -> module_expr_bindings f @ module_expr_bindings arg
  | Pmod_constraint (me, _) -> module_expr_bindings me
  | _ -> []

(* ————— stdlib mutable-structure creators ————— *)

(* (path, required arity). Fully applying any of these yields a
   structure whose sharing across domains races. *)
let prim_creator = function
  | [ "ref" ] -> Some ("ref cell", 1)
  | [ "Hashtbl"; ("create" | "copy" | "of_seq") ] -> Some ("Hashtbl", 1)
  | [ "Buffer"; "create" ] -> Some ("Buffer", 1)
  | [ "Queue"; ("create" | "copy" | "of_seq") ] -> Some ("Queue", 1)
  | [ "Stack"; ("create" | "copy" | "of_seq") ] -> Some ("Stack", 1)
  | [ "Atomic"; "make" ] -> Some ("Atomic", 1)
  | [ "Weak"; "create" ] -> Some ("Weak array", 1)
  | [ "Bytes"; ("create" | "of_string" | "copy") ] -> Some ("Bytes", 1)
  | [ "Bytes"; ("make" | "init") ] -> Some ("Bytes", 2)
  | [ "Bytes"; "sub" ] -> Some ("Bytes", 3)
  | [ "Array"; ("create_float" | "of_list" | "of_seq" | "copy" | "concat") ]
    ->
      Some ("array", 1)
  | [ "Array"; ("make" | "init" | "append" | "map" | "mapi") ] ->
      Some ("array", 2)
  | [ "Array"; ("sub" | "make_matrix") ] -> Some ("array", 3)
  | _ -> None

(* ————— direct I/O and wall-clock primitives (L8 feed) ————— *)

let effect_prim = function
  | [ ( "print_string" | "print_char" | "print_int" | "print_float"
      | "print_endline" | "print_newline" | "prerr_string" | "prerr_char"
      | "prerr_endline" | "prerr_newline" | "output_string" | "output_char"
      | "output_byte" | "output_bytes" | "output_value" | "stdout"
      | "stderr" | "read_line" | "input_line" | "open_in" | "open_in_bin"
      | "open_out" | "open_out_bin" ) as p ] ->
      Some p
  | [ "Printf"; (("printf" | "eprintf") as p) ] -> Some ("Printf." ^ p)
  | [ "Format";
      (( "printf" | "eprintf" | "print_string" | "print_newline"
       | "std_formatter" | "err_formatter" ) as p) ] ->
      Some ("Format." ^ p)
  | [ "Unix"; (("gettimeofday" | "time") as p) ] -> Some ("Unix." ^ p)
  | [ "Sys"; (("time" | "command") as p) ] -> Some ("Sys." ^ p)
  | _ -> None

(* ————— build ————— *)

module SSet = Set.Make (String)

(* Count required (non-optional) parameters an application supplies. *)
let supplied_args args =
  List.length
    (List.filter
       (fun (lbl, _) ->
         match lbl with Asttypes.Optional _ -> false | _ -> true)
       args)

(* Peel the leading [fun]/[function] layers off a binding's rhs:
   required arity plus the body expressions results flow out of. *)
let rec peel e =
  match e.pexp_desc with
  | Pexp_fun (lbl, _, _, body) ->
      let a, bodies = peel body in
      ((match lbl with Asttypes.Optional _ -> a | _ -> a + 1), bodies)
  | Pexp_function cases -> (1, List.map (fun c -> c.pc_rhs) cases)
  | Pexp_newtype (_, body) -> peel body
  | Pexp_constraint (e, _) -> peel e
  | _ -> (0, [ e ])

let build units =
  let unit_names =
    List.fold_left
      (fun acc (file, _) -> SSet.add (unit_name_of_file file) acc)
      SSet.empty units
  in
  (* local [module X = Path] aliases, per unit *)
  let aliases : (string, (string, string) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 64
  in
  let resolve_module_path parts =
    (* rightmost path component that names a known unit *)
    List.fold_left
      (fun acc p -> if SSet.mem p unit_names then Some p else acc)
      None parts
  in
  List.iter
    (fun (file, str) ->
      let u = unit_name_of_file file in
      let tbl = Hashtbl.create 4 in
      List.iter
        (fun it ->
          match it.pstr_desc with
          | Pstr_module
              { pmb_name = { txt = Some alias; _ };
                pmb_expr = { pmod_desc = Pmod_ident { txt; _ }; _ };
                _ } -> (
              match resolve_module_path (path_of txt) with
              | Some target -> Hashtbl.replace tbl alias target
              | None -> ())
          | _ -> ())
        str;
      Hashtbl.replace aliases u tbl)
    units;
  (* record labels declared [mutable], scoped per declaring unit: label
     names repeat across modules with different mutability (Fault's
     immutable [wh_crashes] list vs Metrics' mutable counter), so a
     record literal only counts when the label is mutable in the
     literal's own unit, or in the unit a qualified label names. *)
  let mutable_labels : (string, SSet.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (file, str) ->
      let u = unit_name_of_file file in
      let acc = ref SSet.empty in
      let it =
        { Ast_iterator.default_iterator with
          type_declaration =
            (fun self td ->
              (match td.ptype_kind with
              | Ptype_record labels ->
                  List.iter
                    (fun ld ->
                      if ld.pld_mutable = Asttypes.Mutable then
                        acc := SSet.add ld.pld_name.txt !acc)
                    labels
              | _ -> ());
              Ast_iterator.default_iterator.type_declaration self td) }
      in
      it.structure it str;
      Hashtbl.replace mutable_labels u !acc)
    units;
  let mutable_label u parts =
    match List.rev parts with
    | [] -> false
    | lbl :: rev_mods ->
        let owner =
          if rev_mods = [] then Some u
          else
            let local = Hashtbl.find_opt aliases u in
            List.fold_left
              (fun acc p ->
                match acc with
                | Some _ -> acc
                | None ->
                    if SSet.mem p unit_names then Some p
                    else
                      Option.bind local (fun tbl -> Hashtbl.find_opt tbl p))
              None rev_mods
        in
        (match owner with
        | Some ou -> (
            match Hashtbl.find_opt mutable_labels ou with
            | Some set -> SSet.mem lbl set
            | None -> false)
        | None -> false)
  in
  (* names defined at definition level, per unit, for Lident resolution *)
  let def_names : (string, SSet.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (file, str) ->
      let u = unit_name_of_file file in
      let names =
        List.fold_left
          (fun acc vb ->
            match binding_name vb.pvb_pat with
            | Some n -> SSet.add n acc
            | None -> acc)
          SSet.empty (structure_bindings str)
      in
      Hashtbl.replace def_names u names)
    units;
  (* resolve a dotted reference made from unit [u] *)
  let resolve u parts =
    match parts with
    | [] -> None
    | [ n ] ->
        (match Hashtbl.find_opt def_names u with
        | Some names when SSet.mem n names -> Some (u, n)
        | _ -> None)
    | _ -> (
        let value = List.nth parts (List.length parts - 1) in
        let modpath = List.filteri (fun i _ -> i < List.length parts - 1) parts in
        let local = Hashtbl.find_opt aliases u in
        let target =
          List.fold_left
            (fun acc p ->
              if SSet.mem p unit_names then Some p
              else
                match local with
                | Some tbl -> (
                    match Hashtbl.find_opt tbl p with
                    | Some t -> Some t
                    | None -> acc)
                | None -> acc)
            None modpath
        in
        match target with
        | Some tu -> Some (tu, value)
        | None -> None)
  in
  (* per-definition summaries *)
  let defs = ref [] in
  List.iter
    (fun (file, str) ->
      let u = unit_name_of_file file in
      List.iter
        (fun vb ->
          match binding_name vb.pvb_pat with
          | None -> ()
          | Some name ->
              let arity, bodies = peel vb.pvb_expr in
              (* return-position atoms, through local lets *)
              let rec atoms env e =
                match e.pexp_desc with
                | Pexp_let (_, vbs, body) ->
                    let env =
                      List.fold_left
                        (fun env vb ->
                          match binding_name vb.pvb_pat with
                          | Some n -> (n, atoms env vb.pvb_expr) :: env
                          | None -> env)
                        env vbs
                    in
                    atoms env body
                | Pexp_sequence (_, b) -> atoms env b
                | Pexp_ifthenelse (_, t, eo) ->
                    atoms env t
                    @ (match eo with Some e -> atoms env e | None -> [])
                | Pexp_match (_, cases) | Pexp_try (_, cases) ->
                    List.concat_map (fun c -> atoms env c.pc_rhs) cases
                | Pexp_open (_, e)
                | Pexp_constraint (e, _)
                | Pexp_coerce (e, _, _)
                | Pexp_letmodule (_, _, e)
                | Pexp_letexception (_, e) ->
                    atoms env e
                | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> []
                | Pexp_ident { txt = Longident.Lident x; _ }
                  when List.mem_assoc x env ->
                    List.assoc x env
                | Pexp_ident { txt; _ } -> (
                    let parts = path_of txt in
                    match prim_creator parts with
                    | Some (reason, a) -> [ Prim_alias (reason, a) ]
                    | None -> (
                        match resolve u parts with
                        | Some target -> [ Alias target ]
                        | None -> []))
                | Pexp_apply (f, args) -> (
                    let n = supplied_args args in
                    let via_atoms f_atoms =
                      List.concat_map
                        (function
                          | Prim_alias (reason, a) when n >= a ->
                              [ Direct reason ]
                          | Alias target -> [ Call (target, n) ]
                          | _ -> [])
                        f_atoms
                    in
                    match f.pexp_desc with
                    | Pexp_ident { txt = Longident.Lident x; _ }
                      when List.mem_assoc x env ->
                        via_atoms (List.assoc x env)
                    | Pexp_ident { txt; _ } -> (
                        let parts = path_of txt in
                        match prim_creator parts with
                        | Some (reason, a) when n >= a -> [ Direct reason ]
                        | Some _ -> []
                        | None -> (
                            match resolve u parts with
                            | Some target -> [ Call (target, n) ]
                            | None -> []))
                    | _ -> [])
                | Pexp_tuple es -> List.concat_map (atoms env) es
                | Pexp_construct (_, Some e) | Pexp_variant (_, Some e) ->
                    atoms env e
                | Pexp_array [] -> []
                | Pexp_array _ -> [ Direct "array literal" ]
                | Pexp_lazy _ -> [ Direct "lazy thunk" ]
                | Pexp_record (fields, base) ->
                    let own =
                      List.filter_map
                        (fun ({ Location.txt; _ }, _) ->
                          let parts = path_of txt in
                          match List.rev parts with
                          | lbl :: _ when mutable_label u parts ->
                              Some (Direct ("mutable field `" ^ lbl ^ "`"))
                          | _ -> None)
                        fields
                    in
                    own
                    @ List.concat_map (fun (_, v) -> atoms env v) fields
                    @ (match base with Some b -> atoms env b | None -> [])
                | _ -> []
              in
              let d_atoms = List.concat_map (atoms []) bodies in
              (* whole-body references and effect sites *)
              let refs = ref [] in
              let effects = ref [] in
              let seen_refs = Hashtbl.create 16 in
              let it =
                { Ast_iterator.default_iterator with
                  expr =
                    (fun self e ->
                      (match e.pexp_desc with
                      | Pexp_ident { txt; loc } -> (
                          let parts = path_of txt in
                          (match effect_prim parts with
                          | Some p ->
                              effects :=
                                (line_of loc, col_of loc, p) :: !effects
                          | None -> ());
                          match resolve u parts with
                          | Some target ->
                              if not (Hashtbl.mem seen_refs target) then begin
                                Hashtbl.replace seen_refs target ();
                                refs := target :: !refs
                              end
                          | None -> ())
                      | _ -> ());
                      Ast_iterator.default_iterator.expr self e) }
              in
              it.expr it vb.pvb_expr;
              let loc = vb.pvb_pat.ppat_loc in
              defs :=
                { d_unit = u;
                  d_file = file;
                  d_name = name;
                  d_line = line_of loc;
                  d_col = col_of loc;
                  d_arity = arity;
                  d_atoms;
                  d_refs = List.rev !refs;
                  d_effects = List.rev !effects;
                  d_mut = None }
                :: !defs)
        (structure_bindings str))
    units;
  let defs = List.rev !defs in
  let by_name = Hashtbl.create 256 in
  List.iter
    (fun d ->
      if not (Hashtbl.mem by_name (d.d_unit, d.d_name)) then
        Hashtbl.replace by_name (d.d_unit, d.d_name) d)
    defs;
  (* ————— mutability fixpoint ————— *)
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 64 do
    changed := false;
    incr rounds;
    List.iter
      (fun d ->
        (* arity through bare-alias chains: [let create = Bag.create] *)
        (if d.d_arity = 0 then
           match d.d_atoms with
           | [ Alias target ] -> (
               match Hashtbl.find_opt by_name target with
               | Some t when t.d_arity > 0 ->
                   d.d_arity <- t.d_arity;
                   changed := true
               | _ -> ())
           | [ Prim_alias (_, a) ] ->
               d.d_arity <- a;
               changed := true
           | _ -> ());
        if d.d_mut = None then
          let verdict =
            List.fold_left
              (fun acc atom ->
                match acc with
                | Some _ -> acc
                | None -> (
                    match atom with
                    | Direct reason -> Some reason
                    | Prim_alias (reason, _) -> Some reason
                    | Alias target -> (
                        match Hashtbl.find_opt by_name target with
                        | Some t when t.d_mut <> None ->
                            Some
                              (Printf.sprintf "alias of %s.%s (%s)"
                                 (fst target) (snd target)
                                 (Option.get t.d_mut))
                        | _ -> None)
                    | Call (target, n) -> (
                        match Hashtbl.find_opt by_name target with
                        | Some t
                          when t.d_mut <> None && t.d_arity > 0
                               && n >= t.d_arity ->
                            Some
                              (Printf.sprintf "call to %s.%s (%s)"
                                 (fst target) (snd target)
                                 (Option.get t.d_mut))
                        | _ -> None)))
              None d.d_atoms
          in
          match verdict with
          | Some _ ->
              d.d_mut <- verdict;
              changed := true
          | None -> ())
      defs
  done;
  let unit_of_file = Hashtbl.create 64 in
  List.iter
    (fun (file, _) ->
      Hashtbl.replace unit_of_file (norm_path file) (unit_name_of_file file))
    units;
  { files = List.map (fun (f, _) -> (unit_name_of_file f, f)) units;
    unit_of_file;
    defs;
    by_name;
    reach = None }

(* ————— queries ————— *)

let units t = List.map fst t.files
let file_of_unit t u = List.assoc_opt u t.files

let referencing_units t target =
  let out = ref SSet.empty in
  List.iter
    (fun d ->
      if d.d_unit <> target
         && List.exists (fun (u, _) -> u = target) d.d_refs
      then out := SSet.add d.d_unit !out)
    t.defs;
  SSet.elements !out

let mutable_values t ~file =
  let file = norm_path file in
  List.filter_map
    (fun d ->
      if norm_path d.d_file = file && d.d_arity = 0 then
        match d.d_mut with
        | Some reason ->
            Some
              { mv_name = d.d_name; mv_line = d.d_line; mv_col = d.d_col;
                mv_reason = reason }
        | None -> None
      else None)
    t.defs

let handler_names = [ "on_update"; "on_answer"; "on_source_down"; "on_source_up" ]

(* BFS from every handler definition under lib/, recording a call chain
   per visited definition. The walk refuses to enter lib/observability/:
   effects routed through Obs are the sanctioned path. *)
let reachability t =
  match t.reach with
  | Some r -> r
  | None ->
      let chains : (string * string, string) Hashtbl.t = Hashtbl.create 256 in
      let queue = Queue.create () in
      List.iter
        (fun d ->
          if List.mem d.d_name handler_names && in_lib d.d_file then begin
            let key = (d.d_unit, d.d_name) in
            if not (Hashtbl.mem chains key) then begin
              Hashtbl.replace chains key (d.d_unit ^ "." ^ d.d_name);
              Queue.add d queue
            end
          end)
        t.defs;
      while not (Queue.is_empty queue) do
        let d = Queue.pop queue in
        let chain = Hashtbl.find chains (d.d_unit, d.d_name) in
        List.iter
          (fun target ->
            match Hashtbl.find_opt t.by_name target with
            | Some next
              when (not (Hashtbl.mem chains target))
                   && not (in_observability next.d_file) ->
                Hashtbl.replace chains target
                  (chain ^ " -> " ^ next.d_unit ^ "." ^ next.d_name);
                Queue.add next queue
            | _ -> ())
          d.d_refs
      done;
      t.reach <- Some chains;
      chains

let hot_path_effects t ~file =
  let file = norm_path file in
  let chains = reachability t in
  let out = ref [] in
  List.iter
    (fun d ->
      if norm_path d.d_file = file && in_lib d.d_file
         && not (in_observability d.d_file)
      then
        match Hashtbl.find_opt chains (d.d_unit, d.d_name) with
        | Some chain ->
            List.iter
              (fun (line, col, prim) ->
                out :=
                  { he_line = line; he_col = col; he_effect = prim;
                    he_def = d.d_unit ^ "." ^ d.d_name; he_chain = chain }
                  :: !out)
              d.d_effects
        | None -> ())
    t.defs;
  List.sort
    (fun a b -> compare (a.he_line, a.he_col) (b.he_line, b.he_col))
    (List.rev !out)
