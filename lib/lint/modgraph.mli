(** Phase 1 of the cross-module lint: a repo-wide model built by parsing
    every compilation unit once, queried by the cross-module rules
    (L7–L9) and the [--changed] incremental planner.

    The model records, per unit (one [.ml] file, module name = capitalized
    basename):

    - every definition-level [let] (toplevel, nested modules, functor
      bodies and arguments) with its required arity and source location;
    - the cross-module references each definition makes, resolved by
      module-name prefix plus local [module X = Path] aliases;
    - direct I/O and wall-clock effect sites inside each definition;
    - the record labels declared [mutable] anywhere in the parsed set.

    On top of the index sits a [mutability fixpoint]: a definition is
    {e mutable-yielding} when its value (arity 0) or its fully-applied
    result (arity > 0) is — or contains — freshly created mutable
    structure ([ref], [Hashtbl.create], [Buffer], arrays, mutable record
    fields, [lazy]), propagated through local [let]s, value aliases and
    calls to other indexed definitions. Partial applications are never
    counted: a call contributes only when it supplies at least the
    callee's required (non-optional) parameters, so
    [let encode = Codec.encode put] stays a function, not a value. *)

type t

(** A toplevel value binding that holds mutable structure (L7 feed). *)
type mutable_value = {
  mv_name : string;
  mv_line : int;
  mv_col : int;
  mv_reason : string;  (** what makes it mutable, e.g. "Hashtbl.create" *)
}

(** A direct effect site reachable from a maintenance handler (L8 feed). *)
type hot_effect = {
  he_line : int;
  he_col : int;
  he_effect : string;  (** the primitive, e.g. "Format.std_formatter" *)
  he_def : string;  (** "Unit.def" containing the effect *)
  he_chain : string;  (** call chain from the handler root, " -> "-joined *)
}

(** [build units] indexes the parsed set; [units] are
    [(file, structure)] pairs. Files that failed to parse are simply
    absent. *)
val build : (string * Parsetree.structure) list -> t

(** ["lib/relational/bag.ml"] -> ["Bag"]. *)
val unit_name_of_file : string -> string

val units : t -> string list
val file_of_unit : t -> string -> string option

(** Units (other than [u] itself) holding at least one reference to a
    definition of unit [u] — the [--changed] fallback test. *)
val referencing_units : t -> string -> string list

(** Toplevel mutable values defined in [file], in source order. *)
val mutable_values : t -> file:string -> mutable_value list

(** Effect sites in [file] reachable from a handler root
    ([on_update]/[on_answer]/[on_source_down]/[on_source_up]) defined
    under [lib/]. The walk never descends into [lib/observability/]:
    routing an effect through [Obs] is the sanctioned escape hatch. *)
val hot_path_effects : t -> file:string -> hot_effect list
