(** The invariant rules (see DESIGN.md §11 and §16):

    - L1 determinism: no ambient [Random.*] outside [lib/sim/rng.ml], no
      wall-clock reads ([Unix.gettimeofday]/[Unix.time]/[Sys.time]), no
      randomized hashing ([Hashtbl.create ~random:true],
      [Hashtbl.hash_param], [Hashtbl.randomize]).
    - L2 iteration order: [Hashtbl.iter]/[Hashtbl.fold] results must not
      reach Snap/Codec/Checkpoint/Jsonw encodings without a [List.sort].
    - L3 quadratic patterns: [l @ [x]] stored into a mutable cell
      (error), [List.length] comparisons inside recursive/loop contexts
      (warning).
    - L4 exception hygiene: catch-all [try ... with _ ->] swallows
      (error), bare [raise Not_found]/[raise Exit] in modules with an
      exported [.mli] (error).
    - L5 snapshot completeness: in units defining [snapshot]+[restore]
      (or the [extra_] pair), every mutable record field must be
      referenced in the call closure of both.
    - L6 probe-less joins: bare [Algebra.extend] in [lib/warehouse/]
      bypasses the persistent indexes (error).
    - L7 toplevel mutable state (cross-module): any module-init mutable
      value in [lib/] — found through the Modgraph mutability fixpoint,
      so repo-local constructors count — is domain-shared state (error).
    - L8 hot-path effects (cross-module): direct I/O or wall-clock reads
      reachable from a maintenance handler
      ([on_update]/[on_answer]/[on_source_down]/[on_source_up]) outside
      [lib/observability/] (error).
    - L9 send-aliasing: mutating a structure after sending it in the
      same function violates copy-on-send (error). *)

type ctx = { file : string; has_mli : bool; graph : Modgraph.t }

(** Each rule by id, individually runnable (fixture tests pin each one). *)
val all : (string * (ctx -> Parsetree.structure -> Finding.t list)) list

(** (id, slug, one-line description) for every rule — feeds the SARIF
    rule table and the per-rule report stats. *)
val meta : (string * string * string) list

(** Run every rule; findings in rule order, locations sorted per rule. *)
val run : ctx -> Parsetree.structure -> Finding.t list
