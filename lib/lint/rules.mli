(** The five invariant rules (see DESIGN.md §11):

    - L1 determinism: no ambient [Random.*] outside [lib/sim/rng.ml], no
      wall-clock reads ([Unix.gettimeofday]/[Unix.time]/[Sys.time])
      outside allow-listed wall-metrics sites.
    - L2 iteration order: [Hashtbl.iter]/[Hashtbl.fold] results must not
      reach Snap/Codec/Checkpoint/Jsonw encodings without a [List.sort].
    - L3 quadratic patterns: [l @ [x]] stored into a mutable cell
      (error), [List.length] comparisons inside recursive/loop contexts
      (warning).
    - L4 exception hygiene: catch-all [try ... with _ ->] swallows
      (error), bare [raise Not_found]/[raise Exit] in modules with an
      exported [.mli] (error).
    - L5 snapshot completeness: in units defining [snapshot]+[restore]
      (or the [extra_] pair), every mutable record field must be
      referenced in the call closure of both. *)

type ctx = { file : string; has_mli : bool }

(** Each rule by id, individually runnable (fixture tests pin each one). *)
val all : (string * (ctx -> Parsetree.structure -> Finding.t list)) list

(** Run every rule; findings in rule order, locations sorted per rule. *)
val run : ctx -> Parsetree.structure -> Finding.t list
