(** File discovery, parsing (compiler-libs), pragma application and
    rendering for the lint pass. *)

type file_report = {
  file : string;
  findings : Finding.t list;  (** active (unsuppressed), sorted *)
  suppressed : (Finding.t * Pragma.t) list;  (** the audit trail *)
}

type report = { files : int; reports : file_report list }

(** Lint one unit from source text. [has_mli] defaults to probing for a
    sibling [.mli] on disk; fixture tests override it. *)
val lint_source : ?has_mli:bool -> file:string -> string -> file_report

val lint_file : string -> file_report

(** Lint every [.ml] under the given files/directories, skipping
    [_build], hidden directories and [lint_fixtures]. *)
val lint_paths : string list -> report

val errors : report -> int
val warnings : report -> int
val render_text : ?show_suppressed:bool -> report -> string
val to_json : report -> Repro_observability.Jsonw.t
val render_json : report -> string

(** Run the CLI on [argv]; returns the intended exit status (0 clean,
    1 error findings, 2 usage error). *)
val main : string array -> int
