(** Two-phase orchestration: phase 1 parses every unit once and builds
    the {!Modgraph}; phase 2 runs the rules over the selected units,
    applies pragmas and renders text / JSON / SARIF. *)

type file_report = {
  file : string;
  findings : Finding.t list;  (** active (unsuppressed), sorted *)
  suppressed : (Finding.t * Pragma.t) list;  (** the audit trail *)
  pragma_count : int;
      (** pragma occurrences scanned in the file, valid or malformed —
          the suppression-audit invariant ties this to the raw source *)
}

type report = { files : int; reports : file_report list }

(** Lint one unit from source text against a single-unit module graph
    (the fixture entry point — cross-module rules see only this file).
    [has_mli] defaults to probing for a sibling [.mli] on disk; fixture
    tests override it. *)
val lint_source : ?has_mli:bool -> file:string -> string -> file_report

val lint_file : string -> file_report

(** Lint several [(file, source)] units against one shared module graph
    — the cross-module fixture entry point. Reports are in input
    order. *)
val lint_sources : (string * string) list -> report

(** Phase 1 only: the module graph of the given [(file, source)] units
    (for {!incremental_plan} tests — git is unavailable in the dune
    sandbox). *)
val graph_of_sources : (string * string) list -> Modgraph.t

(** Lint every [.ml] under the given files/directories, skipping
    [_build], hidden directories and [lint_fixtures]. One shared module
    graph spans the whole set. *)
val lint_paths : string list -> report

(** [--changed] planning, pure for testing: lint only [changed] unless
    a changed interface or a referenced unit forces a [`Full] run. *)
val incremental_plan :
  graph:Modgraph.t ->
  all_files:string list ->
  changed:string list ->
  [ `Full of string | `Subset of string list ]

val errors : report -> int
val warnings : report -> int

(** Total pragma occurrences scanned (used + unused + malformed). *)
val pragmas : report -> int

(** Per-rule (id, slug, active findings, suppressed) in rule order. *)
val rule_stats : report -> (string * string * int * int) list

val render_text : ?show_suppressed:bool -> report -> string
val to_json : report -> Repro_observability.Jsonw.t
val render_json : report -> string

(** SARIF 2.1.0 document: one run, rule table from {!Rules.meta}, one
    result per active finding. *)
val to_sarif : report -> Repro_observability.Jsonw.t

val render_sarif : report -> string

(** Run the CLI on [argv]; returns the intended exit status (0 clean,
    1 error findings, 2 usage error). Flags: [--json],
    [--show-suppressed], [--sarif OUT], [--changed[=REF]]. *)
val main : string array -> int
