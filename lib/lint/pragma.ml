(* Suppression pragmas, scanned from raw source text (the compiler's
   parser discards comments, so pragmas live outside the AST).

   Syntax — an ordinary OCaml comment whose body reads, with the comment
   opener directly before it (shown here without the opener so the
   scanner does not match its own documentation):

     lint: allow <rule> <reason...>        covers same line or next line
     lint: allow-file <rule> <reason...>   covers the whole file

   The reason is mandatory: every suppression carries its own audit
   trail. A pragma that suppresses nothing is reported as a warning so
   stale exemptions cannot linger silently. *)

type t = {
  line : int;
  rule : string;  (* canonical id, e.g. "L3" *)
  reason : string;
  file_wide : bool;
  mutable used : bool;
}

(* Accept both the short id and the rule's slug name. *)
let canonical_rule r =
  match String.lowercase_ascii r with
  | "l1" | "determinism" -> Some "L1"
  | "l2" | "iteration-order" -> Some "L2"
  | "l3" | "quadratic" -> Some "L3"
  | "l4" | "exception-hygiene" -> Some "L4"
  | "l5" | "snapshot-complete" -> Some "L5"
  | "l6" | "probe-less-join" -> Some "L6"
  | "l7" | "toplevel-mutable-state" -> Some "L7"
  | "l8" | "hot-path-effects" -> Some "L8"
  | "l9" | "send-aliasing" -> Some "L9"
  | _ -> None

(* The comment opener is part of the marker so that prose, hint strings
   and this module's own documentation cannot accidentally form a
   pragma; the marker is assembled so this very line does not match. *)
let marker = "(* " ^ "lint: allow"

(* [scan source] returns the pragmas plus malformed-pragma diagnostics as
   (line, message) pairs. *)
let scan source =
  let pragmas = ref [] in
  let errors = ref [] in
  let lines = String.split_on_char '\n' source in
  List.iteri
    (fun idx line_text ->
      let line = idx + 1 in
      match
        let rec find from =
          if from + String.length marker > String.length line_text then None
          else if String.sub line_text from (String.length marker) = marker
          then Some from
          else find (from + 1)
        in
        find 0
      with
      | None -> ()
      | Some at ->
          let rest_start = at + String.length marker in
          let rest =
            String.sub line_text rest_start
              (String.length line_text - rest_start)
          in
          let file_wide = String.length rest >= 5 && String.sub rest 0 5 = "-file" in
          let rest = if file_wide then String.sub rest 5 (String.length rest - 5) else rest in
          (* trim to the closing comment if present *)
          let rest =
            match String.index_opt rest '*' with
            | Some i when i + 1 < String.length rest && rest.[i + 1] = ')' ->
                String.sub rest 0 i
            | _ -> rest
          in
          let words =
            List.filter (fun w -> w <> "")
              (String.split_on_char ' ' (String.trim rest))
          in
          (match words with
          | [] ->
              errors :=
                (line, "pragma names no rule: `lint: allow <rule> <reason>`")
                :: !errors
          | rule :: reason_words -> (
              match canonical_rule rule with
              | None ->
                  errors :=
                    (line, Printf.sprintf "pragma names unknown rule %S" rule)
                    :: !errors
              | Some rule ->
                  let reason = String.concat " " reason_words in
                  if reason = "" then
                    errors :=
                      ( line,
                        Printf.sprintf
                          "pragma for %s carries no reason; suppressions must \
                           explain themselves"
                          rule )
                      :: !errors
                  else
                    pragmas :=
                      { line; rule; reason; file_wide; used = false }
                      :: !pragmas)))
    lines;
  (List.rev !pragmas, List.rev !errors)

(* A pragma covers findings of its rule on its own line or the next line
   (so it can sit at end-of-line or on its own line just above), or
   anywhere in the file when [file_wide]. *)
let covers p (f : Finding.t) =
  p.rule = f.rule && (p.file_wide || f.line = p.line || f.line = p.line + 1)
