type severity = Error | Warning

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;  (* "L1".."L5", or "parse"/"pragma" for tool diagnostics *)
  severity : severity;
  message : string;
  hint : string;
}

let severity_label = function Error -> "error" | Warning -> "warning"

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare a.rule b.rule
          | c -> c)
      | c -> c)
  | c -> c

let pp ppf f =
  Format.fprintf ppf "%s:%d:%d: [%s][%s] %s" f.file f.line f.col f.rule
    (severity_label f.severity) f.message;
  if f.hint <> "" then Format.fprintf ppf "@,    hint: %s" f.hint

let to_string f =
  Printf.sprintf "%s:%d:%d: [%s][%s] %s%s" f.file f.line f.col f.rule
    (severity_label f.severity) f.message
    (if f.hint = "" then "" else "\n    hint: " ^ f.hint)
