(** One static-analysis finding: a rule violation anchored to a source
    location, with a severity and a fix hint. Only [Error]-severity
    findings fail the build; [Warning]s inform. *)

type severity = Error | Warning

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;  (** "L1".."L9", or "parse"/"pragma" for tool diagnostics *)
  severity : severity;
  message : string;
  hint : string;
}

val severity_label : severity -> string

(** Order by (file, line, col, rule) for deterministic reports. *)
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
