(* Aggregation point for a batch of runs: one entry per
   (algorithm, scenario) pair carrying flat counters and the run's
   {!Obs} handle. [to_json] is the canonical per-algorithm section of
   BENCH.json: entries in registration order, counters in insertion
   order, histograms in observation order. *)

type counter = [ `Int of int | `Float of float | `Str of string ]

type entry = {
  algorithm : string;
  scenario : string;
  mutable counters : (string * counter) list;
  obs : Obs.t option;
}

type t = { mutable rev_entries : entry list }

let create () = { rev_entries = [] }

let add t ~algorithm ~scenario ?obs ~counters () =
  let e = { algorithm; scenario; counters; obs } in
  t.rev_entries <- e :: t.rev_entries;
  e

let set_counter e name v =
  e.counters <-
    (if List.mem_assoc name e.counters then
       List.map (fun (k, old) -> (k, if k = name then v else old)) e.counters
     else
       (* lint: allow L3 counters stay tiny (a handful of keys per entry) and insertion order is the report order *)
       e.counters @ [ (name, v) ])

let entries t = List.rev t.rev_entries

let counter_json : counter -> Jsonw.t = function
  | `Int i -> Jsonw.Int i
  | `Float f -> Jsonw.Float f
  | `Str s -> Jsonw.String s

let entry_json ?(spans = false) e =
  Jsonw.obj
    ([ ("algorithm", Jsonw.str e.algorithm);
       ("scenario", Jsonw.str e.scenario);
       ("counters",
        Jsonw.Obj (List.map (fun (k, v) -> (k, counter_json v)) e.counters)) ]
    @
    match e.obs with
    | None -> []
    | Some obs ->
        [ ("histograms", Obs.histograms_json obs);
          ("span_count", Jsonw.int (Tracer.span_count (Obs.tracer obs))) ]
        @ if spans then [ ("trace", Tracer.to_json (Obs.tracer obs)) ] else [])

let to_json ?spans t = Jsonw.list (List.map (entry_json ?spans) (entries t))
