(** The per-run observability handle threaded through the node, the
    algorithms, the transport and the harness: one {!Tracer} plus named
    {!Histogram}s, stamped by a caller-supplied clock (the simulator's
    virtual time).

    A disabled handle costs one branch per emission — the same contract
    as the legacy free-text [Trace]. {!mute} suspends recording during
    WAL replay (the replayed work was observed before the crash). *)

type t

(** [create ()] — an enabled handle. [clock] supplies timestamps (wire
    the simulation engine's clock; defaults to a constant 0). *)
val create :
  ?enabled:bool -> ?buckets_per_decade:int -> ?clock:(unit -> float) ->
  unit -> t

(** A never-recording handle (the default everywhere). *)
val disabled : unit -> t

val enabled : t -> bool
val set_clock : t -> (unit -> float) -> unit
val now : t -> float

(** Suspend / resume recording (crash-replay bracket). *)
val mute : t -> unit

val unmute : t -> unit

(** Enabled and not muted. *)
val active : t -> bool

(** Get-or-create a named histogram (registration order is remembered
    and drives JSON key order). *)
val histogram : t -> string -> Histogram.t

(** Record a sample into the named histogram (no-op when inactive). *)
val observe : t -> string -> float -> unit

(** Open a span at the clock's current time; {!Tracer.none} when
    inactive. *)
val span : t -> ?parent:Tracer.id -> string -> (string * Tracer.attr) list -> Tracer.id

(** Close a span at the clock's current time. *)
val finish : t -> Tracer.id -> unit

(** Record a point event (no-op when inactive). *)
val event : t -> ?span:Tracer.id -> string -> (string * Tracer.attr) list -> unit

val tracer : t -> Tracer.t

(** Histograms in registration order. *)
val histograms : t -> (string * Histogram.t) list

val histograms_json : t -> Jsonw.t

(** Canonical export: histograms + span count (+ full trace when
    [spans]). *)
val to_json : ?spans:bool -> t -> Jsonw.t
