(** Aggregates counters + histograms per (algorithm, scenario) run and
    exports the canonical per-algorithm JSON section of BENCH.json.

    Deterministic: entries render in registration order, counters in
    insertion order, histograms in first-observation order. *)

type counter = [ `Int of int | `Float of float | `Str of string ]

type entry = {
  algorithm : string;
  scenario : string;
  mutable counters : (string * counter) list;
  obs : Obs.t option;
}

type t

val create : unit -> t

val add :
  t -> algorithm:string -> scenario:string -> ?obs:Obs.t ->
  counters:(string * counter) list -> unit -> entry

(** Upsert one counter (appends on first write, preserving order). *)
val set_counter : entry -> string -> counter -> unit

(** Entries in registration order. *)
val entries : t -> entry list

val entry_json : ?spans:bool -> entry -> Jsonw.t

(** The canonical array; [spans] embeds full span trees (large). *)
val to_json : ?spans:bool -> t -> Jsonw.t
