(* Minimal recursive-descent JSON reader, independent of the writer in
   {!Jsonw} (shared value type, separate code path). Used by the BENCH.json
   CI gate and by round-trip tests. Accepts RFC 8259 documents; numbers
   without '.', 'e' or 'E' that fit an OCaml int parse as [Int]. *)

type state = { src : string; mutable pos : int }

exception Fail of string * int

let fail st msg = raise (Fail (msg, st.pos))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      st.pos <- st.pos + 1;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected %C" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let hex_digit st c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail st "bad \\u escape"

(* Decode a \uXXXX escape (and a following low surrogate when XXXX is a
   high surrogate) to UTF-8 bytes. *)
let parse_u16 st =
  if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
  let v =
    (hex_digit st st.src.[st.pos] lsl 12)
    lor (hex_digit st st.src.[st.pos + 1] lsl 8)
    lor (hex_digit st st.src.[st.pos + 2] lsl 4)
    lor hex_digit st st.src.[st.pos + 3]
  in
  st.pos <- st.pos + 4;
  v

let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> (
        st.pos <- st.pos + 1;
        match peek st with
        | Some '"' -> Buffer.add_char buf '"'; st.pos <- st.pos + 1; loop ()
        | Some '\\' -> Buffer.add_char buf '\\'; st.pos <- st.pos + 1; loop ()
        | Some '/' -> Buffer.add_char buf '/'; st.pos <- st.pos + 1; loop ()
        | Some 'n' -> Buffer.add_char buf '\n'; st.pos <- st.pos + 1; loop ()
        | Some 't' -> Buffer.add_char buf '\t'; st.pos <- st.pos + 1; loop ()
        | Some 'r' -> Buffer.add_char buf '\r'; st.pos <- st.pos + 1; loop ()
        | Some 'b' -> Buffer.add_char buf '\b'; st.pos <- st.pos + 1; loop ()
        | Some 'f' -> Buffer.add_char buf '\012'; st.pos <- st.pos + 1; loop ()
        | Some 'u' ->
            st.pos <- st.pos + 1;
            let hi = parse_u16 st in
            let cp =
              if hi >= 0xD800 && hi <= 0xDBFF then begin
                expect st '\\';
                expect st 'u';
                let lo = parse_u16 st in
                if lo < 0xDC00 || lo > 0xDFFF then fail st "bad surrogate pair";
                0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00)
              end
              else hi
            in
            add_utf8 buf cp;
            loop ()
        | _ -> fail st "bad escape")
    | Some c when Char.code c < 0x20 -> fail st "raw control char in string"
    | Some c ->
        Buffer.add_char buf c;
        st.pos <- st.pos + 1;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    match peek st with Some c when is_num_char c -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done;
  let s = String.sub st.src start (st.pos - start) in
  let has_frac = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s in
  if has_frac then
    match float_of_string_opt s with
    | Some f -> Jsonw.Float f
    | None -> fail st "bad number"
  else
    match int_of_string_opt s with
    | Some i -> Jsonw.Int i
    | None -> (
        (* integer overflowing native int: keep it as a float *)
        match float_of_string_opt s with
        | Some f -> Jsonw.Float f
        | None -> fail st "bad number")

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Jsonw.Obj []
      end
      else begin
        let rec fields acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              fields ((k, v) :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> fail st "expected ',' or '}'"
        in
        Jsonw.Obj (fields [])
      end
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        Jsonw.List []
      end
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              items (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List.rev (v :: acc)
          | _ -> fail st "expected ',' or ']'"
        in
        Jsonw.List (items [])
      end
  | Some '"' -> Jsonw.String (parse_string st)
  | Some 't' -> literal st "true" (Jsonw.Bool true)
  | Some 'f' -> literal st "false" (Jsonw.Bool false)
  | Some 'n' -> literal st "null" Jsonw.Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected %C" c)

let parse s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at byte %d" st.pos)
      else Ok v
  | exception Fail (msg, pos) ->
      Error (Printf.sprintf "parse error at byte %d: %s" pos msg)

let parse_exn s =
  match parse s with Ok v -> v | Error msg -> invalid_arg ("Jsonr: " ^ msg)
