(** Log-bucketed (HDR-style) histogram with mergeable state.

    Positive values fall into geometric buckets, [buckets_per_decade]
    per factor of ten; quantiles are answered with the geometric midpoint
    of the bucket holding the rank, bounding the relative error by half a
    bucket (≈5.9% at the default precision of 20). Values ≤ 0 share a
    dedicated zero bucket. *)

type t

val default_buckets_per_decade : int

val create : ?buckets_per_decade:int -> unit -> t
val buckets_per_decade : t -> int

(** Record one sample. Raises on NaN; ±∞ raise later, at JSON export. *)
val record : t -> float -> unit

val count : t -> int

(** Sum of all recorded samples. *)
val total : t -> float

val mean : t -> float
val min_value : t -> float
val max_value : t -> float

(** [quantile t p] for p ∈ [0,1]; rank ⌈p·n⌉, midpoint-of-bucket
    estimate clamped to the observed [min,max]. [p = 1] returns the
    exact maximum; an empty histogram answers 0. *)
val quantile : t -> float -> float

val p50 : t -> float
val p90 : t -> float
val p99 : t -> float

(** Bucket-wise sum; both inputs are left untouched. Raises when the
    precisions differ. *)
val merge : t -> t -> t

val to_json : t -> Jsonw.t
val pp : Format.formatter -> t -> unit
