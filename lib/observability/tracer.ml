(* Structured tracing: typed, causally linked spans and events.

   A span is an interval of simulated time with a name, attributes, a
   parent span and an ordered set of children/events — one span tree per
   update transaction at the warehouse (notice → sweep legs →
   compensation → install). Events are instants attached to a span (or to
   the root). Everything is recorded append-only and rendered
   deterministically, so a seeded run pins a byte-identical tree. *)

type id = int

let none : id = 0

type attr = I of int | F of float | S of string | B of bool

type span = {
  id : id;
  parent : id;
  name : string;
  start_time : float;
  mutable end_time : float;  (* NaN while open *)
  mutable attrs : (string * attr) list;
  mutable rev_children : id list;
  mutable rev_events : event list;
}

and event = { at : float; ev_name : string; ev_attrs : (string * attr) list }

type t = {
  spans : (id, span) Hashtbl.t;
  mutable rev_roots : id list;
  mutable rev_root_events : event list;
  mutable next_id : int;
}

let create () =
  { spans = Hashtbl.create 64; rev_roots = []; rev_root_events = [];
    next_id = 1 }

let span_count t = Hashtbl.length t.spans

let start t ~time ?(parent = none) ~name ?(attrs = []) () =
  let id = t.next_id in
  t.next_id <- id + 1;
  let s =
    { id; parent; name; start_time = time; end_time = Float.nan; attrs;
      rev_children = []; rev_events = [] }
  in
  Hashtbl.replace t.spans id s;
  (match Hashtbl.find_opt t.spans parent with
  | Some p -> p.rev_children <- id :: p.rev_children
  | None -> t.rev_roots <- id :: t.rev_roots);
  id

let finish t ~time id =
  if id <> none then
    match Hashtbl.find_opt t.spans id with
    | None -> ()
    | Some s -> if Float.is_nan s.end_time then s.end_time <- time

let add_attrs t id attrs =
  if id <> none then
    match Hashtbl.find_opt t.spans id with
    | None -> ()
    | Some s -> s.attrs <- s.attrs @ attrs

let event t ~time ?(span = none) ~name ?(attrs = []) () =
  let ev = { at = time; ev_name = name; ev_attrs = attrs } in
  match Hashtbl.find_opt t.spans span with
  | Some s -> s.rev_events <- ev :: s.rev_events
  | None -> t.rev_root_events <- ev :: t.rev_root_events

let find t id = Hashtbl.find_opt t.spans id
let roots t = List.rev t.rev_roots

(* ————— rendering ————— *)

let fmt_attr = function
  | I i -> string_of_int i
  | F f -> Printf.sprintf "%.3f" f
  | S s -> s
  | B b -> if b then "true" else "false"

let fmt_attrs attrs =
  String.concat ""
    (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k (fmt_attr v)) attrs)

let fmt_span_head s =
  let fin =
    if Float.is_nan s.end_time then "…" else Printf.sprintf "%.3f" s.end_time
  in
  Printf.sprintf "[%.3f..%s] %s%s" s.start_time fin s.name (fmt_attrs s.attrs)

(* Deterministic layout: under each span, its events (emission order)
   first, then its child spans in creation order — stable under time
   ties, unlike sorting on float timestamps. *)
let render t =
  let buf = Buffer.create 512 in
  let rec walk indent id =
    match Hashtbl.find_opt t.spans id with
    | None -> ()
    | Some s ->
        Buffer.add_string buf indent;
        Buffer.add_string buf (fmt_span_head s);
        Buffer.add_char buf '\n';
        List.iter
          (fun ev ->
            Buffer.add_string buf indent;
            Buffer.add_string buf
              (Printf.sprintf "  @%.3f %s%s\n" ev.at ev.ev_name
                 (fmt_attrs ev.ev_attrs)))
          (List.rev s.rev_events);
        List.iter (walk (indent ^ "  ")) (List.rev s.rev_children)
  in
  List.iter
    (fun ev ->
      Buffer.add_string buf
        (Printf.sprintf "@%.3f %s%s\n" ev.at ev.ev_name (fmt_attrs ev.ev_attrs)))
    (List.rev t.rev_root_events);
  List.iter (walk "") (roots t);
  Buffer.contents buf

(* ————— JSON export ————— *)

let attr_json = function
  | I i -> Jsonw.Int i
  | F f -> Jsonw.Float f
  | S s -> Jsonw.String s
  | B b -> Jsonw.Bool b

let attrs_json attrs = Jsonw.Obj (List.map (fun (k, v) -> (k, attr_json v)) attrs)

let event_json ev =
  Jsonw.obj
    (("at", Jsonw.float ev.at) :: ("name", Jsonw.str ev.ev_name)
    ::
    (match ev.ev_attrs with
    | [] -> []
    | attrs -> [ ("attrs", attrs_json attrs) ]))

let to_json t =
  let span_json s =
    Jsonw.obj
      ([ ("id", Jsonw.int s.id); ("parent", Jsonw.int s.parent);
         ("name", Jsonw.str s.name); ("start", Jsonw.float s.start_time) ]
      @ (if Float.is_nan s.end_time then []
         else [ ("end", Jsonw.float s.end_time) ])
      @ (match s.attrs with
        | [] -> []
        | attrs -> [ ("attrs", attrs_json attrs) ])
      @
      match s.rev_events with
      | [] -> []
      | evs -> [ ("events", Jsonw.list (List.rev_map event_json evs)) ])
  in
  let all =
    Hashtbl.fold (fun _ s acc -> s :: acc) t.spans []
    |> List.sort (fun a b -> Int.compare a.id b.id)
  in
  Jsonw.obj
    [ ("spans", Jsonw.list (List.map span_json all));
      ("events", Jsonw.list (List.rev_map event_json t.rev_root_events)) ]
