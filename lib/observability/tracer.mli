(** Structured tracing: typed, causally linked spans and events.

    A span is an interval of simulated time — name, attributes, parent
    span, children and point events — forming one tree per update
    transaction at the warehouse (notice → sweep legs → compensation →
    install, with source-query child spans). Recording is append-only;
    {!render} and {!to_json} are deterministic, so a seeded run pins a
    byte-identical tree. Gating (enabled/disabled, replay muting) lives
    one level up in {!Obs}; the tracer itself always records. *)

type id = int

(** The null span: parent of roots, safe no-op target for {!finish}. *)
val none : id

type attr = I of int | F of float | S of string | B of bool

type span = {
  id : id;
  parent : id;
  name : string;
  start_time : float;
  mutable end_time : float;  (** NaN while the span is open *)
  mutable attrs : (string * attr) list;
  mutable rev_children : id list;
  mutable rev_events : event list;
}

and event = { at : float; ev_name : string; ev_attrs : (string * attr) list }

type t

val create : unit -> t
val span_count : t -> int

(** Open a span at [time]. An unknown (or [none]) parent makes it a
    root. *)
val start :
  t -> time:float -> ?parent:id -> name:string ->
  ?attrs:(string * attr) list -> unit -> id

(** Close a span (first close wins; unknown ids and [none] ignored). *)
val finish : t -> time:float -> id -> unit

(** Append attributes to an open or closed span. *)
val add_attrs : t -> id -> (string * attr) list -> unit

(** Record a point event on [span] (default: the root). *)
val event :
  t -> time:float -> ?span:id -> name:string ->
  ?attrs:(string * attr) list -> unit -> unit

val find : t -> id -> span option
val roots : t -> id list

(** ASCII span tree: one line per span ("[start..end] name k=v …", 3
    decimals), events as "@time name" lines, children indented two
    spaces. Byte-deterministic for a given recording. *)
val render : t -> string

val to_json : t -> Jsonw.t
