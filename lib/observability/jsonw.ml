(* Dependency-free JSON writer. Values are ordinary OCaml data; [to_string]
   renders them deterministically: object keys keep their insertion order,
   floats use the shortest representation that round-trips, and non-finite
   floats are rejected (JSON has no encoding for them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let obj fields = Obj fields
let list items = List items
let str s = String s
let int i = Int i
let float f = Float f
let bool b = Bool b

(* Shortest decimal form that parses back to the same double. "%g" alone
   can emit "1" (valid JSON, reads back as an int — fine) but also drops
   precision, so widen until the round trip is exact. *)
let float_repr f =
  if not (Float.is_finite f) then
    invalid_arg
      (Printf.sprintf "Jsonw: non-finite float %s has no JSON encoding"
         (Float.to_string f));
  let rec shortest p =
    if p > 17 then Printf.sprintf "%.17g" f
    else
      let s = Printf.sprintf "%.*g" p f in
      if float_of_string s = f then s else shortest (p + 1)
  in
  shortest 1

(* Escape per RFC 8259: quote, backslash and control characters. Any other
   byte passes through, so well-formed UTF-8 stays well-formed UTF-8. *)
let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec write buf ~indent ~level v =
  let nl_pad lv =
    match indent with
    | None -> ()
    | Some n ->
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (n * lv) ' ')
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
      Buffer.add_char buf '"';
      escape_into buf s;
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl_pad (level + 1);
          write buf ~indent ~level:(level + 1) item)
        items;
      nl_pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          nl_pad (level + 1);
          Buffer.add_char buf '"';
          escape_into buf k;
          Buffer.add_string buf "\":";
          if indent <> None then Buffer.add_char buf ' ';
          write buf ~indent ~level:(level + 1) item)
        fields;
      nl_pad level;
      Buffer.add_char buf '}'

let to_string ?indent v =
  let buf = Buffer.create 256 in
  write buf ~indent ~level:0 v;
  Buffer.contents buf

let to_channel ?indent oc v =
  output_string oc (to_string ?indent v);
  output_char oc '\n'

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None
