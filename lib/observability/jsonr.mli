(** Minimal JSON reader — the decoding half of the observability layer,
    independent of {!Jsonw}'s writer code path (they share only the value
    type). Used by the BENCH.json CI gate and round-trip tests. *)

(** Parse a complete document. Numbers without a fraction or exponent
    that fit an OCaml [int] come back as [Jsonw.Int]. *)
val parse : string -> (Jsonw.t, string) result

(** Like {!parse}; raises [Invalid_argument] with the error message. *)
val parse_exn : string -> Jsonw.t
