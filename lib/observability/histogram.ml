(* Log-bucketed (HDR-style) histogram for latency / staleness / weight
   distributions.

   Positive values land in geometric buckets: bucket [i] covers
   [10^(i/bpd), 10^((i+1)/bpd)) where [bpd] (buckets per decade) is the
   precision knob. A quantile is answered with the geometric midpoint of
   the bucket holding that rank, so its relative error is bounded by half
   a bucket width — 10^(1/(2*bpd)) ≈ 5.9% at the default bpd = 20.
   Values ≤ 0 are counted in a dedicated zero bucket (simulated staleness
   can be exactly 0 when delivery and install tie). State is mergeable:
   two histograms with the same precision add bucket-wise. *)

type t = {
  bpd : int;
  counts : (int, int) Hashtbl.t;
  mutable zero : int;  (* values <= 0 *)
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

let default_buckets_per_decade = 20

let create ?(buckets_per_decade = default_buckets_per_decade) () =
  if buckets_per_decade < 1 then
    invalid_arg "Histogram.create: buckets_per_decade < 1";
  { bpd = buckets_per_decade; counts = Hashtbl.create 32; zero = 0;
    count = 0; sum = 0.; vmin = Float.infinity; vmax = Float.neg_infinity }

let buckets_per_decade t = t.bpd

let bucket_of t v =
  (* v > 0; indexes go negative below 1.0, the Hashtbl doesn't mind *)
  int_of_float (Float.floor (Float.log10 v *. float_of_int t.bpd))

(* Geometric midpoint of bucket [i]. *)
let bucket_mid t i =
  Float.pow 10. ((float_of_int i +. 0.5) /. float_of_int t.bpd)

let record t v =
  if Float.is_nan v then invalid_arg "Histogram.record: NaN";
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v;
  if v <= 0. then t.zero <- t.zero + 1
  else
    let i = bucket_of t v in
    Hashtbl.replace t.counts i
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts i))

let count t = t.count
let total t = t.sum
let mean t = if t.count = 0 then 0. else t.sum /. float_of_int t.count
let min_value t = if t.count = 0 then 0. else t.vmin
let max_value t = if t.count = 0 then 0. else t.vmax

let sorted_buckets t =
  Hashtbl.fold (fun i c acc -> (i, c) :: acc) t.counts []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let quantile t p =
  if p < 0. || p > 1. then invalid_arg "Histogram.quantile: p outside [0,1]";
  if t.count = 0 then 0.
  else if p >= 1. then t.vmax
  else
    let rank =
      Stdlib.max 1 (int_of_float (Float.ceil (p *. float_of_int t.count)))
    in
    if rank <= t.zero then 0.
    else
      let rec walk seen = function
        | [] -> t.vmax (* numerical slack: the last bucket absorbs it *)
        | (i, c) :: rest ->
            if seen + c >= rank then
              (* clamp the bucket estimate into the observed range so a
                 sparse histogram never reports beyond its true extremes *)
              Float.min (Float.max (bucket_mid t i) t.vmin) t.vmax
            else walk (seen + c) rest
      in
      walk t.zero (sorted_buckets t)

let p50 t = quantile t 0.50
let p90 t = quantile t 0.90
let p99 t = quantile t 0.99

let merge a b =
  if a.bpd <> b.bpd then invalid_arg "Histogram.merge: precision mismatch";
  let m = create ~buckets_per_decade:a.bpd () in
  let add src =
    Hashtbl.iter
      (fun i c ->
        Hashtbl.replace m.counts i
          (c + Option.value ~default:0 (Hashtbl.find_opt m.counts i)))
      src.counts;
    m.zero <- m.zero + src.zero;
    m.count <- m.count + src.count;
    m.sum <- m.sum +. src.sum;
    if src.count > 0 then begin
      if src.vmin < m.vmin then m.vmin <- src.vmin;
      if src.vmax > m.vmax then m.vmax <- src.vmax
    end
  in
  add a;
  add b;
  m

let to_json t =
  Jsonw.obj
    [ ("count", Jsonw.int t.count); ("mean", Jsonw.float (mean t));
      ("min", Jsonw.float (min_value t)); ("max", Jsonw.float (max_value t));
      ("p50", Jsonw.float (p50 t)); ("p90", Jsonw.float (p90 t));
      ("p99", Jsonw.float (p99 t));
      ("buckets_per_decade", Jsonw.int t.bpd) ]

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f"
    t.count (mean t) (p50 t) (p90 t) (p99 t) (max_value t)
