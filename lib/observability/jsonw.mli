(** Dependency-free JSON writer.

    Deterministic output: object keys keep their insertion order, floats
    render as the shortest decimal that round-trips, and non-finite
    floats raise [Invalid_argument] (JSON cannot encode them). Strings
    are escaped per RFC 8259; bytes outside the control range pass
    through, so UTF-8 input stays UTF-8 output. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** rendered in list order *)

(** Constructors, for readable document-building code. *)
val obj : (string * t) list -> t

val list : t list -> t
val str : string -> t
val int : int -> t
val float : float -> t
val bool : bool -> t

(** Render. [indent] pretty-prints with that many spaces per level;
    omitted = compact single line. Raises [Invalid_argument] on NaN or
    infinite floats anywhere in the tree. *)
val to_string : ?indent:int -> t -> string

(** [to_channel oc v] writes [to_string v] and a trailing newline. *)
val to_channel : ?indent:int -> out_channel -> t -> unit

(** Field lookup on [Obj] (None on missing field or non-object). *)
val member : string -> t -> t option
