(* The per-run observability handle threaded through the stack: one
   tracer plus a set of named histograms, stamped by a caller-supplied
   clock (the simulator's virtual time). Disabled handles keep the
   one-branch-when-disabled contract the old free-text Trace had: every
   entry point tests [active] once and returns.

   [mute]/[unmute] bracket WAL replay after a warehouse crash: the
   replayed work's spans and samples were already recorded by the
   previous incarnation. *)

type t = {
  enabled : bool;
  mutable muted : bool;
  mutable clock : unit -> float;
  tracer : Tracer.t;
  buckets_per_decade : int;
  hists : (string, Histogram.t) Hashtbl.t;
  mutable rev_names : string list;  (* registration order *)
}

let create ?(enabled = true) ?buckets_per_decade ?clock () =
  { enabled; muted = false;
    clock = (match clock with Some f -> f | None -> fun () -> 0.);
    tracer = Tracer.create ();
    buckets_per_decade =
      Option.value buckets_per_decade
        ~default:Histogram.default_buckets_per_decade;
    hists = Hashtbl.create 8; rev_names = [] }

let disabled () = create ~enabled:false ()
let enabled t = t.enabled
let set_clock t f = t.clock <- f
let now t = t.clock ()
let mute t = t.muted <- true
let unmute t = t.muted <- false
let active t = t.enabled && not t.muted

let histogram t name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
      let h = Histogram.create ~buckets_per_decade:t.buckets_per_decade () in
      Hashtbl.replace t.hists name h;
      t.rev_names <- name :: t.rev_names;
      h

let observe t name v = if active t then Histogram.record (histogram t name) v

let span t ?parent name attrs =
  if active t then
    Tracer.start t.tracer ~time:(t.clock ()) ?parent ~name ~attrs ()
  else Tracer.none

let finish t id = if active t then Tracer.finish t.tracer ~time:(t.clock ()) id

let event t ?span name attrs =
  if active t then
    Tracer.event t.tracer ~time:(t.clock ()) ?span ~name ~attrs ()

let tracer t = t.tracer

let histograms t =
  List.rev_map (fun name -> (name, Hashtbl.find t.hists name)) t.rev_names

let histograms_json t =
  Jsonw.Obj
    (List.map (fun (name, h) -> (name, Histogram.to_json h)) (histograms t))

let to_json ?(spans = false) t =
  Jsonw.obj
    (("histograms", histograms_json t)
    :: ("span_count", Jsonw.int (Tracer.span_count t.tracer))
    :: (if spans then [ ("trace", Tracer.to_json t.tracer) ] else []))
