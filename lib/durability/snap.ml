open Repro_relational
open Repro_protocol

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Tup of Tuple.t
  | Delta of Delta.t
  | Partial of Partial.t
  | Update of Message.update

(* ————— accessors ————— *)

let bad what = invalid_arg ("Snap." ^ what ^ ": constructor mismatch")
let to_bool = function Bool v -> v | _ -> bad "to_bool"
let to_int = function Int v -> v | _ -> bad "to_int"
let to_float = function Float v -> v | _ -> bad "to_float"
let to_str = function Str v -> v | _ -> bad "to_str"
let to_list = function List v -> v | _ -> bad "to_list"
let to_tuple = function Tup v -> v | _ -> bad "to_tuple"
let to_delta = function Delta v -> v | _ -> bad "to_delta"
let to_partial = function Partial v -> v | _ -> bad "to_partial"
let to_update = function Update v -> v | _ -> bad "to_update"

let ints vs = List (List.map (fun v -> Int v) vs)
let to_ints s = List.map to_int (to_list s)
let option f = function None -> List [] | Some v -> List [ f v ]

let to_option f = function
  | List [] -> None
  | List [ v ] -> Some (f v)
  | _ -> bad "to_option"

(* ————— structural equality (hashtable-free, for tests) ————— *)

let rec equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | List x, List y ->
      (* lint: allow L3 length guard protecting for_all2 from Invalid_argument; both lists are walked once anyway *)
      List.length x = List.length y && List.for_all2 equal x y
  | Tup x, Tup y -> Tuple.equal x y
  | Delta x, Delta y -> Delta.equal x y
  | Partial x, Partial y -> Partial.equal x y
  | Update x, Update y ->
      Message.compare_txn_id x.Message.txn y.Message.txn = 0
      && Delta.equal x.Message.delta y.Message.delta
      && Float.equal x.Message.occurred_at y.Message.occurred_at
      && x.Message.global = y.Message.global
  | _ -> false

(* ————— codec ————— *)

let rec put b = function
  | Unit -> Codec.put_tag b 0
  | Bool v ->
      Codec.put_tag b 1;
      Codec.put_bool b v
  | Int v ->
      Codec.put_tag b 2;
      Codec.put_int b v
  | Float v ->
      Codec.put_tag b 3;
      Codec.put_float b v
  | Str v ->
      Codec.put_tag b 4;
      Codec.put_string b v
  | List vs ->
      Codec.put_tag b 5;
      Codec.put_list b put vs
  | Tup v ->
      Codec.put_tag b 6;
      Codec.put_tuple b v
  | Delta v ->
      Codec.put_tag b 7;
      Codec.put_delta b v
  | Partial v ->
      Codec.put_tag b 8;
      Codec.put_partial b v
  | Update v ->
      Codec.put_tag b 9;
      Codec.put_update b v

let rec get r =
  match Codec.get_tag r with
  | 0 -> Unit
  | 1 -> Bool (Codec.get_bool r)
  | 2 -> Int (Codec.get_int r)
  | 3 -> Float (Codec.get_float r)
  | 4 -> Str (Codec.get_string r)
  | 5 -> List (Codec.get_list r get)
  | 6 -> Tup (Codec.get_tuple r)
  | 7 -> Delta (Codec.get_delta r)
  | 8 -> Partial (Codec.get_partial r)
  | 9 -> Update (Codec.get_update r)
  | t -> raise (Codec.Corrupt (Printf.sprintf "bad snap tag %d" t))

let encode s = Codec.encode put s
let decode s = Codec.decode get s
