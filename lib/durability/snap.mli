(** Generic serializable snapshot trees for algorithm state.

    Every maintenance algorithm must be able to checkpoint its resumable
    state (in-flight sweeps, pending compensations, install buffers) and
    restore it after a warehouse crash. Rather than one bespoke wire
    format per algorithm, each implements
    {!Repro_warehouse.Algorithm.S.snapshot} by mapping its state onto
    this small tree of primitives, tuples, deltas, partials and updates —
    and [restore] by reading it back with the [to_*] accessors, which
    raise [Invalid_argument] on shape mismatch (a corrupted or
    cross-algorithm checkpoint).

    Snapshots must be canonical: any internal hashtable state has to be
    dumped in a sorted order so that equal states produce equal encoded
    bytes. *)

open Repro_relational
open Repro_protocol

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Tup of Tuple.t
  | Delta of Delta.t
  | Partial of Partial.t
  | Update of Message.update

val to_bool : t -> bool
val to_int : t -> int
val to_float : t -> float
val to_str : t -> string
val to_list : t -> t list
val to_tuple : t -> Tuple.t
val to_delta : t -> Delta.t
val to_partial : t -> Partial.t
val to_update : t -> Message.update

(** [ints [1;2]] is [List [Int 1; Int 2]]; {!to_ints} reads it back. *)
val ints : int list -> t

val to_ints : t -> int list

(** Options encode as [List []] / [List [x]]. *)
val option : ('a -> t) -> 'a option -> t

val to_option : (t -> 'a) -> t -> 'a option

(** Deep structural equality (deltas and partials compare by content). *)
val equal : t -> t -> bool

val put : Buffer.t -> t -> unit
val get : Codec.reader -> t
val encode : t -> string
val decode : string -> t
