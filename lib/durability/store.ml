type t = {
  wal : Wal.t;
  checkpoint_every : int;
  mutable capture : (unit -> Checkpoint.t) option;
  mutable latest : string option;
  mutable records_since : int;
  mutable checkpoints : int;
  mutable checkpoint_bytes : int;
}

let create ?(checkpoint_every = 8) () =
  if checkpoint_every < 0 then invalid_arg "Store.create: checkpoint_every < 0";
  { wal = Wal.create (); checkpoint_every; capture = None; latest = None;
    records_since = 0; checkpoints = 0; checkpoint_bytes = 0 }

let set_capture t f = t.capture <- Some f
let wal_length t = Wal.length t.wal
let wal_bytes t = Wal.bytes t.wal
let checkpoints t = t.checkpoints
let checkpoint_bytes t = t.checkpoint_bytes

let log t record =
  Wal.append t.wal record;
  t.records_since <- t.records_since + 1

let checkpoint_now t =
  match t.capture with
  | None -> invalid_arg "Store.checkpoint_now: no capture function set"
  | Some capture ->
      (* encode immediately: the stored bytes are the durable artifact,
         and decoding them (rather than keeping the live record) is what
         recovery does — serializability is exercised on every cycle *)
      let s = Checkpoint.encode (capture ()) in
      t.latest <- Some s;
      t.checkpoints <- t.checkpoints + 1;
      t.checkpoint_bytes <- t.checkpoint_bytes + String.length s;
      t.records_since <- 0

let maybe_checkpoint t =
  if
    t.checkpoint_every > 0
    && t.records_since >= t.checkpoint_every
    && Option.is_some t.capture
  then checkpoint_now t

let latest_checkpoint t = Option.map Checkpoint.decode t.latest

let tail t =
  let from =
    match latest_checkpoint t with
    | Some c -> c.Checkpoint.wal_pos
    | None -> 0
  in
  Wal.records_from t.wal from
