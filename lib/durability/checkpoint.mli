(** Periodic snapshots of the whole recoverable warehouse state.

    A checkpoint bounds the WAL tail that has to be replayed after a
    crash. It captures, at a consistent point (between message
    deliveries):

    - the materialized view contents;
    - the pending-update queue, with original arrival numbers and
      timestamps (algorithms compare arrival numbers, and staleness is
      measured from the original arrival time);
    - the query-id counter and the algorithm's resumable state as a
      {!Snap} tree;
    - transport state: each warehouse-side receiver's next expected
      sequence number and each warehouse-side sender's [next_seq] /
      cumulative-ack / unacknowledged window. Restoring the sender
      counter makes replay regenerate in-flight queries with their
      {e original} sequence numbers, so the sources' receivers suppress
      them as duplicates — exactly-once even though recovery resends;
    - the WAL position [wal_pos] the checkpoint covers: recovery replays
      only records [wal_pos..].

    Checkpoints round-trip through {!encode}/{!decode} every time one is
    taken, so serializability is exercised on every run that crashes. *)

open Repro_relational

(** One warehouse→source transport sender, frozen. *)
type sender_state = {
  next_seq : int;
  acked_upto : int;
  window : (int * Repro_protocol.Message.to_source) list;
      (** unacked (seq, payload), oldest first *)
}

type queued = {
  update : Repro_protocol.Message.update;
  arrival : int;
  arrived_at : float;
}

type t = {
  taken_at : float;  (** sim time the checkpoint was taken *)
  wal_pos : int;  (** WAL records covered by this checkpoint *)
  view : Bag.t;
  queue : queued list;
  queue_next_arrival : int;
  next_qid : int;
  algo : Snap.t;
  recv_expected : int array;  (** per up-link receiver state *)
  senders : sender_state array;  (** per down-link sender state *)
  breaker : Snap.t;
      (** per-source circuit-breaker state ([Snap.Unit] when the run has
          no breaker) *)
  aux : Snap.t;
      (** self-maintenance aux-store projections ([Snap.Unit] when the
          run has no aux store) *)
}

val put : Buffer.t -> t -> unit
val get : Codec.reader -> t
val encode : t -> string
val decode : string -> t
