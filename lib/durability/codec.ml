open Repro_relational
open Repro_protocol

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

type reader = { buf : string; mutable pos : int }

let reader buf = { buf; pos = 0 }
let at_end r = r.pos = String.length r.buf

(* ————— primitives ————— *)

(* Fixed-width little-endian integers: the WAL favours decode simplicity
   and determinism over wire compactness (checkpoint size is itself a
   reported metric, so the format just has to be stable). *)

let put_int b i = Buffer.add_int64_le b (Int64.of_int i)

let get_int r =
  if r.pos + 8 > String.length r.buf then corrupt "int past end at %d" r.pos;
  let v = Int64.to_int (String.get_int64_le r.buf r.pos) in
  r.pos <- r.pos + 8;
  v

let put_float b f = Buffer.add_int64_le b (Int64.bits_of_float f)

let get_float r =
  if r.pos + 8 > String.length r.buf then corrupt "float past end at %d" r.pos;
  let v = Int64.float_of_bits (String.get_int64_le r.buf r.pos) in
  r.pos <- r.pos + 8;
  v

let put_tag b t = Buffer.add_char b (Char.chr t)

let get_tag r =
  if r.pos >= String.length r.buf then corrupt "tag past end at %d" r.pos;
  let c = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  c

let put_bool b v = put_tag b (if v then 1 else 0)

let get_bool r =
  match get_tag r with
  | 0 -> false
  | 1 -> true
  | t -> corrupt "bad bool tag %d" t

let put_string b s =
  put_int b (String.length s);
  Buffer.add_string b s

let get_string r =
  let n = get_int r in
  if n < 0 || r.pos + n > String.length r.buf then
    corrupt "string of %d past end at %d" n r.pos;
  let s = String.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let put_list b f xs =
  put_int b (List.length xs);
  List.iter (f b) xs

let get_list r f =
  let n = get_int r in
  if n < 0 then corrupt "negative list length %d" n;
  let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (f r :: acc) in
  go n []

let put_option b f = function
  | None -> put_tag b 0
  | Some x ->
      put_tag b 1;
      f b x

let get_option r f =
  match get_tag r with
  | 0 -> None
  | 1 -> Some (f r)
  | t -> corrupt "bad option tag %d" t

(* ————— relational values ————— *)

let put_value b = function
  | Value.Null -> put_tag b 0
  | Value.Bool v ->
      put_tag b 1;
      put_bool b v
  | Value.Int v ->
      put_tag b 2;
      put_int b v
  | Value.Float v ->
      put_tag b 3;
      put_float b v
  | Value.Str v ->
      put_tag b 4;
      put_string b v

let get_value r =
  match get_tag r with
  | 0 -> Value.Null
  | 1 -> Value.Bool (get_bool r)
  | 2 -> Value.Int (get_int r)
  | 3 -> Value.Float (get_float r)
  | 4 -> Value.Str (get_string r)
  | t -> corrupt "bad value tag %d" t

let put_tuple b (t : Tuple.t) =
  put_int b (Array.length t);
  Array.iter (put_value b) t

(* Array.init may evaluate out of order, which would scramble the stream;
   read tuples via an explicit loop instead. *)
let get_tuple r : Tuple.t =
  let n = get_int r in
  if n < 0 then corrupt "negative tuple arity %d" n;
  let a = Array.make n Value.Null in
  for i = 0 to n - 1 do
    a.(i) <- get_value r
  done;
  a

(* Bags (and Delta/Relation, which share the representation) serialize as
   their canonical sorted (tuple, count) listing, so equal bags have equal
   bytes — checkpoints of the same state are bit-identical. *)

let put_counted b (t, c) =
  put_tuple b t;
  put_int b c

let get_counted r =
  let t = get_tuple r in
  let c = get_int r in
  (t, c)

let put_bag b (bag : Bag.t) = put_list b put_counted (Bag.to_sorted_list bag)
let get_bag r : Bag.t = Bag.of_list (get_list r get_counted)

let put_delta b (d : Delta.t) = put_list b put_counted (Delta.to_sorted_list d)
let get_delta r : Delta.t = Delta.of_list (get_list r get_counted)

let put_relation b (rel : Relation.t) =
  put_list b put_counted (Relation.to_sorted_list rel)

let get_relation r : Relation.t = Relation.of_list (get_list r get_counted)

let put_partial b (p : Partial.t) =
  put_int b p.Partial.lo;
  put_int b p.Partial.hi;
  put_delta b p.Partial.data

let get_partial r : Partial.t =
  let lo = get_int r in
  let hi = get_int r in
  let data = get_delta r in
  { Partial.lo; hi; data }

(* ————— protocol messages ————— *)

let put_txn_id b (t : Message.txn_id) =
  put_int b t.Message.source;
  put_int b t.Message.seq

let get_txn_id r : Message.txn_id =
  let source = get_int r in
  let seq = get_int r in
  { Message.source; seq }

let put_global b (g : Message.global_tag) =
  put_int b g.Message.gid;
  put_int b g.Message.parts

let get_global r : Message.global_tag =
  let gid = get_int r in
  let parts = get_int r in
  { Message.gid; parts }

let put_update b (u : Message.update) =
  put_txn_id b u.Message.txn;
  put_delta b u.Message.delta;
  put_float b u.Message.occurred_at;
  put_option b put_global u.Message.global

let get_update r : Message.update =
  let txn = get_txn_id r in
  let delta = get_delta r in
  let occurred_at = get_float r in
  let global = get_option r get_global in
  { Message.txn; delta; occurred_at; global }

let put_eca_term b (term : Message.eca_term) =
  put_list b
    (fun b (src, d) ->
      put_int b src;
      put_delta b d)
    term

let get_eca_term r : Message.eca_term =
  get_list r (fun r ->
      let src = get_int r in
      let d = get_delta r in
      (src, d))

let put_to_source b = function
  | Message.Sweep_query { qid; target; partial } ->
      put_tag b 0;
      put_int b qid;
      put_int b target;
      put_partial b partial
  | Message.Fetch { qid; target } ->
      put_tag b 1;
      put_int b qid;
      put_int b target
  | Message.Eca_query { qid; terms } ->
      put_tag b 2;
      put_int b qid;
      put_list b put_eca_term terms

let get_to_source r =
  match get_tag r with
  | 0 ->
      let qid = get_int r in
      let target = get_int r in
      let partial = get_partial r in
      Message.Sweep_query { qid; target; partial }
  | 1 ->
      let qid = get_int r in
      let target = get_int r in
      Message.Fetch { qid; target }
  | 2 ->
      let qid = get_int r in
      let terms = get_list r get_eca_term in
      Message.Eca_query { qid; terms }
  | t -> corrupt "bad to_source tag %d" t

let put_to_warehouse b = function
  | Message.Update_notice u ->
      put_tag b 0;
      put_update b u
  | Message.Answer { qid; source; partial } ->
      put_tag b 1;
      put_int b qid;
      put_int b source;
      put_partial b partial
  | Message.Snapshot { qid; source; relation } ->
      put_tag b 2;
      put_int b qid;
      put_int b source;
      put_relation b relation
  | Message.Eca_answer { qid; partial } ->
      put_tag b 3;
      put_int b qid;
      put_partial b partial

let get_to_warehouse r =
  match get_tag r with
  | 0 -> Message.Update_notice (get_update r)
  | 1 ->
      let qid = get_int r in
      let source = get_int r in
      let partial = get_partial r in
      Message.Answer { qid; source; partial }
  | 2 ->
      let qid = get_int r in
      let source = get_int r in
      let relation = get_relation r in
      Message.Snapshot { qid; source; relation }
  | 3 ->
      let qid = get_int r in
      let partial = get_partial r in
      Message.Eca_answer { qid; partial }
  | t -> corrupt "bad to_warehouse tag %d" t

(* ————— whole-string convenience ————— *)

let encode f x =
  let b = Buffer.create 256 in
  f b x;
  Buffer.contents b

let decode f s =
  let r = reader s in
  let v = f r in
  if not (at_end r) then corrupt "%d trailing bytes" (String.length s - r.pos);
  v
