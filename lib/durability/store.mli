(** The warehouse's durable state: one WAL plus the latest checkpoint.

    The node logs every delivered message and every install through
    {!log}; the experiment harness installs a {!set_capture} callback
    that freezes the full recoverable state ({!Checkpoint.t}) and calls
    {!maybe_checkpoint} at consistent points (after a delivery has been
    fully processed). A checkpoint is taken every [checkpoint_every] WAL
    records — record-count triggered, not timer triggered, so an idle
    warehouse schedules no events and fault-free engines still drain.

    Checkpoints are held encoded; {!latest_checkpoint} decodes a fresh
    copy, so recovered state never aliases the live structures it was
    captured from. *)

type t

(** [checkpoint_every = 0] disables checkpointing (recovery then replays
    the whole WAL). Default 8. *)
val create : ?checkpoint_every:int -> unit -> t

val set_capture : t -> (unit -> Checkpoint.t) -> unit

(** Append one record (does not checkpoint; call {!maybe_checkpoint} at
    the next consistent point). *)
val log : t -> Wal.record -> unit

(** Take a checkpoint if [checkpoint_every] records have been logged
    since the last one. *)
val maybe_checkpoint : t -> unit

(** Unconditional checkpoint. Raises if no capture function is set. *)
val checkpoint_now : t -> unit

(** Decode the most recent checkpoint, if any. *)
val latest_checkpoint : t -> Checkpoint.t option

(** The WAL records recovery must replay: everything after the latest
    checkpoint's [wal_pos] (the whole log when no checkpoint exists). *)
val tail : t -> Wal.record list

val wal_length : t -> int
val wal_bytes : t -> int
val checkpoints : t -> int

(** Total encoded bytes across all checkpoints taken. *)
val checkpoint_bytes : t -> int
