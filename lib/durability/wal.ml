open Repro_relational
open Repro_protocol

type record =
  | Update_received of { update : Message.update; arrived_at : float }
  | Answer_received of { link : int; msg : Message.to_warehouse }
  | Installed of { delta : Delta.t; txns : Message.txn_id list }

let put_record b = function
  | Update_received { update; arrived_at } ->
      Codec.put_tag b 0;
      Codec.put_update b update;
      Codec.put_float b arrived_at
  | Answer_received { link; msg } ->
      Codec.put_tag b 1;
      Codec.put_int b link;
      Codec.put_to_warehouse b msg
  | Installed { delta; txns } ->
      Codec.put_tag b 2;
      Codec.put_delta b delta;
      Codec.put_list b Codec.put_txn_id txns

let get_record r =
  match Codec.get_tag r with
  | 0 ->
      let update = Codec.get_update r in
      let arrived_at = Codec.get_float r in
      Update_received { update; arrived_at }
  | 1 ->
      let link = Codec.get_int r in
      let msg = Codec.get_to_warehouse r in
      Answer_received { link; msg }
  | 2 ->
      let delta = Codec.get_delta r in
      let txns = Codec.get_list r Codec.get_txn_id in
      Installed { delta; txns }
  | t -> raise (Codec.Corrupt (Printf.sprintf "bad wal tag %d" t))

let encode_record = Codec.encode put_record
let decode_record = Codec.decode get_record

(* The in-simulation log device: an append-only sequence of encoded
   records. Records are serialized on append — the log never aliases live
   algorithm state, exactly like bytes on stable storage. *)
type t = {
  mutable rev_records : string list;  (* newest first *)
  mutable count : int;
  mutable total_bytes : int;
}

let create () = { rev_records = []; count = 0; total_bytes = 0 }

let append t record =
  let s = encode_record record in
  t.rev_records <- s :: t.rev_records;
  t.count <- t.count + 1;
  t.total_bytes <- t.total_bytes + String.length s

let length t = t.count
let bytes t = t.total_bytes

let records_from t pos =
  if pos < 0 || pos > t.count then
    invalid_arg (Printf.sprintf "Wal.records_from: position %d of %d" pos t.count);
  let rec take k acc rest =
    if k = 0 then acc
    else
      match rest with
      | [] -> assert false
      | s :: rest -> take (k - 1) (decode_record s :: acc) rest
  in
  take (t.count - pos) [] t.rev_records

(* Which incoming link a record was delivered on ([None] for installs,
   which are local). Recovery counts these per link to advance each
   receiver's expected sequence number past the replayed records. *)
let link_of = function
  | Update_received { update; _ } -> Some update.Message.txn.Message.source
  | Answer_received { link; _ } -> Some link
  | Installed _ -> None
