(** Wire (de)serializers for the durability layer.

    A small hand-rolled binary format: fixed-width little-endian integers
    and floats, length-prefixed strings and lists, one tag byte per
    variant. Bags (and [Delta]/[Relation], which share the
    representation) serialize as their canonical sorted
    [(tuple, count)] listing, so equal values always produce equal bytes
    — two checkpoints of the same warehouse state are bit-identical,
    which the recovery tests rely on.

    Encoders append to a [Buffer.t]; decoders consume a {!reader}.
    Decoding malformed bytes raises {!Corrupt}, never
    [Invalid_argument]. *)

open Repro_relational
open Repro_protocol

exception Corrupt of string

type reader

val reader : string -> reader

(** True once every byte has been consumed. *)
val at_end : reader -> bool

(** {2 Primitives} *)

val put_int : Buffer.t -> int -> unit
val get_int : reader -> int

(** One variant-tag byte (values 0–255). *)
val put_tag : Buffer.t -> int -> unit

val get_tag : reader -> int
val put_float : Buffer.t -> float -> unit
val get_float : reader -> float
val put_bool : Buffer.t -> bool -> unit
val get_bool : reader -> bool
val put_string : Buffer.t -> string -> unit
val get_string : reader -> string
val put_list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit
val get_list : reader -> (reader -> 'a) -> 'a list
val put_option : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a option -> unit
val get_option : reader -> (reader -> 'a) -> 'a option

(** {2 Relational values} *)

val put_value : Buffer.t -> Value.t -> unit
val get_value : reader -> Value.t
val put_tuple : Buffer.t -> Tuple.t -> unit
val get_tuple : reader -> Tuple.t
val put_bag : Buffer.t -> Bag.t -> unit
val get_bag : reader -> Bag.t
val put_delta : Buffer.t -> Delta.t -> unit
val get_delta : reader -> Delta.t
val put_relation : Buffer.t -> Relation.t -> unit
val get_relation : reader -> Relation.t
val put_partial : Buffer.t -> Partial.t -> unit
val get_partial : reader -> Partial.t

(** {2 Protocol messages} *)

val put_txn_id : Buffer.t -> Message.txn_id -> unit
val get_txn_id : reader -> Message.txn_id
val put_update : Buffer.t -> Message.update -> unit
val get_update : reader -> Message.update
val put_to_source : Buffer.t -> Message.to_source -> unit
val get_to_source : reader -> Message.to_source
val put_to_warehouse : Buffer.t -> Message.to_warehouse -> unit
val get_to_warehouse : reader -> Message.to_warehouse

(** {2 Whole-string convenience} *)

(** [encode put x] runs [put] into a fresh buffer and returns the bytes. *)
val encode : (Buffer.t -> 'a -> unit) -> 'a -> string

(** [decode get s] reads one value and checks every byte was consumed. *)
val decode : (reader -> 'a) -> string -> 'a
