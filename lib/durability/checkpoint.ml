open Repro_relational
open Repro_protocol

type sender_state = {
  next_seq : int;
  acked_upto : int;
  window : (int * Message.to_source) list;
}

type queued = { update : Message.update; arrival : int; arrived_at : float }

type t = {
  taken_at : float;
  wal_pos : int;
  view : Bag.t;
  queue : queued list;
  queue_next_arrival : int;
  next_qid : int;
  algo : Snap.t;
  recv_expected : int array;
  senders : sender_state array;
  breaker : Snap.t;  (* circuit-breaker state; Snap.Unit when none *)
  aux : Snap.t;  (* aux-store projections; Snap.Unit when off *)
}

let put_sender b s =
  Codec.put_int b s.next_seq;
  Codec.put_int b s.acked_upto;
  Codec.put_list b
    (fun b (seq, payload) ->
      Codec.put_int b seq;
      Codec.put_to_source b payload)
    s.window

let get_sender r =
  let next_seq = Codec.get_int r in
  let acked_upto = Codec.get_int r in
  let window =
    Codec.get_list r (fun r ->
        let seq = Codec.get_int r in
        let payload = Codec.get_to_source r in
        (seq, payload))
  in
  { next_seq; acked_upto; window }

let put_queued b q =
  Codec.put_update b q.update;
  Codec.put_int b q.arrival;
  Codec.put_float b q.arrived_at

let get_queued r =
  let update = Codec.get_update r in
  let arrival = Codec.get_int r in
  let arrived_at = Codec.get_float r in
  { update; arrival; arrived_at }

let put b t =
  Codec.put_float b t.taken_at;
  Codec.put_int b t.wal_pos;
  Codec.put_bag b t.view;
  Codec.put_list b put_queued t.queue;
  Codec.put_int b t.queue_next_arrival;
  Codec.put_int b t.next_qid;
  Snap.put b t.algo;
  Codec.put_list b (fun b i -> Codec.put_int b i) (Array.to_list t.recv_expected);
  Codec.put_list b put_sender (Array.to_list t.senders);
  Snap.put b t.breaker;
  Snap.put b t.aux

let get r =
  let taken_at = Codec.get_float r in
  let wal_pos = Codec.get_int r in
  let view = Codec.get_bag r in
  let queue = Codec.get_list r get_queued in
  let queue_next_arrival = Codec.get_int r in
  let next_qid = Codec.get_int r in
  let algo = Snap.get r in
  let recv_expected = Array.of_list (Codec.get_list r Codec.get_int) in
  let senders = Array.of_list (Codec.get_list r get_sender) in
  let breaker = Snap.get r in
  let aux = Snap.get r in
  { taken_at; wal_pos; view; queue; queue_next_arrival; next_qid; algo;
    recv_expected; senders; breaker; aux }

let encode = Codec.encode put
let decode = Codec.decode get
