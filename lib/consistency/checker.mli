(** Post-hoc verification of the consistency level a run achieved
    (paper §2's hierarchy: complete ⊃ strong ⊃ convergence).

    The warehouse serializes source updates in delivery order (paper §5).
    Replaying that serialization over the initial database gives the
    expected view after every prefix; the observed install history is then
    classified:

    - {b Complete}: the installs partition the delivery log into
      contiguous runs, in delivery order, each matching the expected
      prefix state exactly — every warehouse state is a source state and
      no update is reflected early or late. One install per update
      (SWEEP) is the all-runs-of-length-1 case; a batched install
      (Sweep_batched) qualifies iff it covers exactly the next pending
      deliveries.
    - {b Strong}: installs may batch several updates {e skipping over
      other sources' deliveries}, as long as each batch keeps every
      source's updates in order (cumulative sets are per-source
      prefixes — sources are autonomous, so any interleaving respecting
      per-source order is a legal serialization) and the resulting content
      matches the corresponding database state.
    - {b Convergent}: intermediate installs stray from every legal state,
      but the final view is correct once the run drains.
    - {b Degraded}: the run ended with circuit breakers still open
      (source outage outlasting the run), so parked updates were never
      incorporated — accepted only when [check ~degraded:true] and the
      install history is order-preserving and exact over the
      {e incorporated subset}: the view is honest about what it
      reflects, it just is not done.
    - {b Inconsistent}: the final view is wrong (or was driven negative).

    Commercial systems of the era ensured only convergence (paper §2 cites
    Red Brick); SWEEP must test as Complete, Nested SWEEP and Strobe as
    Strong — the test suite asserts exactly that on randomized runs. *)

open Repro_relational
open Repro_protocol

type verdict = Complete | Strong | Convergent | Degraded | Inconsistent

val verdict_to_string : verdict -> string
val pp_verdict : Format.formatter -> verdict -> unit

(** Verdict ordering: [Complete] strongest. *)
val compare_verdict : verdict -> verdict -> int

type observation = {
  initial_sources : Relation.t array;  (** source contents before any update *)
  deliveries : Message.update list;  (** warehouse delivery order *)
  installs : (Message.txn_id list * Bag.t) list;
      (** per install: incorporated txns and view snapshot *)
  final_view : Bag.t;
}

type result = {
  verdict : verdict;
  detail : string;  (** human explanation of the strongest failed level *)
  states_checked : int;
}

(** [degraded] (default false): the run ended with breakers open —
    accept an exact-over-the-incorporated-subset history as
    {!Degraded} instead of grading it {!Inconsistent}. *)
val check : ?degraded:bool -> View_def.t -> observation -> result

(** [expected_states view ~initial ~deliveries] — the ground-truth view
    after each delivery prefix (element 0 = initial view), computed by
    in-memory incremental maintenance. Exposed for tests and for the
    Figure 5 walkthrough. *)
val expected_states :
  View_def.t -> initial:Relation.t array -> deliveries:Message.update list ->
  Bag.t array

(** {2 Session guarantees over the read path}

    The serving tier ({!Repro_serving.Server}) answers reads from the
    materialized view while maintenance may be lagging. Two classic
    session guarantees are graded post-hoc from the read log:

    - {b monotonic reads}: within one session, the view version observed
      never goes backwards (a later read never sees an older view);
    - {b read-your-writes}: a read issued by session [s] (sessions are
      pinned to source sites) reflects every update of source [s] the
      warehouse had {e acknowledged} — delivered into its queue — by the
      time the read was issued.

    Stale serving can violate read-your-writes by design (that is what
    the staleness stamp is for); the checker measures how often, it does
    not forbid it. *)

(** One served (not shed) read, in serve order. *)
type read_view = {
  session : int;  (** client session; pinned to a source id for RYW *)
  issued_at : float;
  version : int;  (** warehouse install count observed at serve time *)
  incorporated : int array;
      (** per-source count of updates reflected in the served view *)
  acked : int array;
      (** per-source count of updates the warehouse had acknowledged
          when the read was issued *)
}

type session_report = {
  reads_graded : int;
  monotonic_reads : bool;
  mr_violations : int;
  read_your_writes : bool;
  ryw_violations : int;
}

(** [check_sessions ~n_sources reads] grades the read log (serve
    order). An empty log trivially satisfies both guarantees. *)
val check_sessions : n_sources:int -> read_view list -> session_report

val pp_session_report : Format.formatter -> session_report -> unit
