open Repro_relational
open Repro_protocol

type verdict = Complete | Strong | Convergent | Degraded | Inconsistent

let verdict_to_string = function
  | Complete -> "complete"
  | Strong -> "strong"
  | Convergent -> "convergent"
  | Degraded -> "degraded"
  | Inconsistent -> "INCONSISTENT"

let pp_verdict ppf v = Format.pp_print_string ppf (verdict_to_string v)

let rank = function
  | Complete -> 0
  | Strong -> 1
  | Convergent -> 2
  | Degraded -> 3
  | Inconsistent -> 4

let compare_verdict a b = Int.compare (rank a) (rank b)

type observation = {
  initial_sources : Relation.t array;
  deliveries : Message.update list;
  installs : (Message.txn_id list * Bag.t) list;
  final_view : Bag.t;
}

type result = { verdict : verdict; detail : string; states_checked : int }

(* Apply one update to the replayed database, maintaining the expected view
   incrementally: ΔV = R0 ⋈ … ⋈ ΔRi ⋈ … ⋈ R(n-1) evaluated on the current
   state, then ΔRi is applied to Ri. *)
let apply_txn view rels expected (u : Message.update) =
  let i = u.Message.txn.source in
  let n = View_def.n_sources view in
  let partial = ref (Partial.of_source_delta view i u.Message.delta) in
  for j = i - 1 downto 0 do
    partial := Algebra.extend view !partial ~with_relation:(j, rels.(j))
  done;
  for j = i + 1 to n - 1 do
    partial := Algebra.extend view !partial ~with_relation:(j, rels.(j))
  done;
  Bag.merge_into ~into:expected (Algebra.select_project view !partial);
  match Relation.apply rels.(i) u.Message.delta with
  | Ok () -> ()
  | Error _ ->
      invalid_arg "Checker: delivery log contains a delete of absent tuples"

let initial_expected view initial =
  Bag.copy (Relation.as_bag (Algebra.eval view (fun i -> initial.(i))))

let expected_states view ~initial ~deliveries =
  let rels = Array.map Relation.copy initial in
  let expected = initial_expected view initial in
  let states = Array.make (List.length deliveries + 1) expected in
  states.(0) <- Bag.copy expected;
  List.iteri
    (fun k u ->
      apply_txn view rels expected u;
      states.(k + 1) <- Bag.copy expected)
    deliveries;
  states

(* Complete consistency: the installs partition the delivery log into
   contiguous runs, in delivery order, each installed state matching the
   database state after its run exactly. A singleton-per-delivery history
   (SWEEP) is the special case of all runs having length 1; a batched
   install (Sweep_batched, Nested SWEEP when its batch happens to be the
   full pending run) is complete iff it incorporates *exactly* the next
   deliveries with nothing skipped — every installed state is then a
   state the source databases actually passed through, in order, with no
   update ever reflected early or late. Returns an error description on
   failure. *)
let check_complete view obs =
  let by_txn = Hashtbl.create 64 in
  List.iteri
    (fun k u -> Hashtbl.replace by_txn u.Message.txn (k, u))
    obs.deliveries;
  let n_deliveries = List.length obs.deliveries in
  let rels = Array.map Relation.copy obs.initial_sources in
  let expected = initial_expected view obs.initial_sources in
  let next = ref 0 in
  let rec go installs k =
    match installs with
    | [] ->
        if !next = n_deliveries then Ok ()
        else
          Error
            (Format.asprintf "update %a was never installed"
               Message.pp_txn_id
               (List.nth obs.deliveries !next).Message.txn)
    | (txns, snap) :: rest -> (
        let resolved =
          List.fold_left
            (fun acc txn ->
              match (acc, Hashtbl.find_opt by_txn txn) with
              | Error e, _ -> Error e
              | Ok _, None ->
                  Error
                    (Format.asprintf "install %d claims unknown txn %a" k
                       Message.pp_txn_id txn)
              | Ok l, Some ku -> Ok (ku :: l))
            (Ok []) txns
        in
        match resolved with
        | Error e -> Error e
        | Ok batch ->
            let batch =
              List.sort (fun (a, _) (b, _) -> Int.compare a b) batch
            in
            let contiguous =
              List.for_all2
                (fun (idx, _) want -> idx = want)
                batch
                (List.init (List.length batch) (fun d -> !next + d))
            in
            if batch = [] || not contiguous then
              let n_txns = List.length txns in
              Error
                (Format.asprintf
                   "install %d does not incorporate exactly the next %s \
                    in delivery order"
                   k
                   (if n_txns <= 1 then "delivered update"
                    else Printf.sprintf "%d delivered updates" n_txns))
            else begin
              List.iter (fun (_, u) -> apply_txn view rels expected u) batch;
              next := !next + List.length batch;
              if Bag.equal expected snap then go rest (k + 1)
              else
                Error
                  (Format.asprintf
                     "install %d deviates from the expected state" k)
            end)
  in
  go obs.installs 0

(* Strong consistency: batch installs allowed, provided each cumulative set
   is a per-source prefix of that source's update sequence and contents
   match the corresponding database state; all deliveries must eventually
   be incorporated. *)
let check_strong view obs =
  let n = View_def.n_sources view in
  let by_txn = Hashtbl.create 64 in
  List.iteri
    (fun k u -> Hashtbl.replace by_txn u.Message.txn (k, u))
    obs.deliveries;
  let rels = Array.map Relation.copy obs.initial_sources in
  let expected = initial_expected view obs.initial_sources in
  let next_seq = Array.make n 0 in
  let incorporated = ref 0 in
  let n_deliveries = List.length obs.deliveries in
  let rec go installs k =
    match installs with
    | [] ->
        if !incorporated = n_deliveries then Ok ()
        else
          Error
            (Printf.sprintf "only %d of %d updates were ever incorporated"
               !incorporated n_deliveries)
    | (txns, snap) :: rest -> (
        (* Resolve the batch against the delivery log. *)
        let resolved =
          List.map
            (fun txn ->
              match Hashtbl.find_opt by_txn txn with
              | Some ku -> Ok ku
              | None ->
                  Error
                    (Format.asprintf "install %d claims unknown txn %a" k
                       Message.pp_txn_id txn))
            txns
        in
        match
          List.fold_left
            (fun acc r ->
              match (acc, r) with
              | Error e, _ -> Error e
              | Ok l, Ok ku -> Ok (ku :: l)
              | Ok _, Error e -> Error e)
            (Ok []) resolved
        with
        | Error e -> Error e
        | Ok batch ->
            (* Per-source prefix condition. *)
            let by_source = Array.make n [] in
            List.iter
              (fun (_, u) ->
                let s = u.Message.txn.Message.source in
                by_source.(s) <- u.Message.txn.Message.seq :: by_source.(s))
              batch;
            let prefix_ok = ref true in
            Array.iteri
              (fun s seqs ->
                let seqs = List.sort Int.compare seqs in
                List.iter
                  (fun seq ->
                    if seq <> next_seq.(s) then prefix_ok := false
                    else next_seq.(s) <- next_seq.(s) + 1)
                  seqs)
              by_source;
            if not !prefix_ok then
              Error
                (Printf.sprintf
                   "install %d skips over an earlier update of some source" k)
            else begin
              (* Replay the batch in delivery order (the final state of a
                 batch is interleaving-independent). *)
              let batch =
                List.sort (fun (a, _) (b, _) -> Int.compare a b) batch
              in
              List.iter (fun (_, u) -> apply_txn view rels expected u) batch;
              incorporated := !incorporated + List.length batch;
              if Bag.equal expected snap then go rest (k + 1)
              else
                Error
                  (Printf.sprintf
                     "install %d deviates from its batch's database state" k)
            end)
  in
  go obs.installs 0

(* Degraded consistency: the run ended with circuit breakers still open,
   so some delivered updates were parked and never incorporated. The
   install history must still be order-preserving and exact over the
   {e incorporated subset} (per-source prefixes, contents matching the
   partially-updated database state), and the final view must equal the
   state reached by exactly the incorporated updates — the view is
   honest about what it reflects, it just is not done. *)
let check_degraded view obs =
  let n = View_def.n_sources view in
  let by_txn = Hashtbl.create 64 in
  List.iteri
    (fun k u -> Hashtbl.replace by_txn u.Message.txn (k, u))
    obs.deliveries;
  let rels = Array.map Relation.copy obs.initial_sources in
  let expected = initial_expected view obs.initial_sources in
  let next_seq = Array.make n 0 in
  let rec go installs k =
    match installs with
    | [] ->
        if Bag.equal expected obs.final_view then Ok ()
        else
          Error "final view deviates from the incorporated updates' state"
    | (txns, snap) :: rest -> (
        match
          List.fold_left
            (fun acc txn ->
              match (acc, Hashtbl.find_opt by_txn txn) with
              | Error e, _ -> Error e
              | Ok _, None ->
                  Error
                    (Format.asprintf "install %d claims unknown txn %a" k
                       Message.pp_txn_id txn)
              | Ok l, Some ku -> Ok (ku :: l))
            (Ok []) txns
        with
        | Error e -> Error e
        | Ok batch ->
            let by_source = Array.make n [] in
            List.iter
              (fun (_, u) ->
                let s = u.Message.txn.Message.source in
                by_source.(s) <- u.Message.txn.Message.seq :: by_source.(s))
              batch;
            let prefix_ok = ref true in
            Array.iteri
              (fun s seqs ->
                let seqs = List.sort Int.compare seqs in
                List.iter
                  (fun seq ->
                    if seq <> next_seq.(s) then prefix_ok := false
                    else next_seq.(s) <- next_seq.(s) + 1)
                  seqs)
              by_source;
            if not !prefix_ok then
              Error
                (Printf.sprintf
                   "install %d skips over an earlier update of some source" k)
            else begin
              let batch =
                List.sort (fun (a, _) (b, _) -> Int.compare a b) batch
              in
              List.iter (fun (_, u) -> apply_txn view rels expected u) batch;
              if Bag.equal expected snap then go rest (k + 1)
              else
                Error
                  (Printf.sprintf
                     "install %d deviates from its batch's database state" k)
            end)
  in
  go obs.installs 0

let check_convergent view obs =
  let states =
    expected_states view ~initial:obs.initial_sources
      ~deliveries:obs.deliveries
  in
  let final = states.(Array.length states - 1) in
  if Bag.equal final obs.final_view then Ok ()
  else Error "final view differs from the fully-updated database state"

(* ————— session guarantees over the read path ————— *)

type read_view = {
  session : int;
  issued_at : float;
  version : int;
  incorporated : int array;
  acked : int array;
}

type session_report = {
  reads_graded : int;
  monotonic_reads : bool;
  mr_violations : int;
  read_your_writes : bool;
  ryw_violations : int;
}

(* Grade the read log in serve order. Monotonic reads: per session, the
   observed install version never decreases (and neither does any
   component of the incorporated vector — a view that un-installed an
   update would be a regression even at the same version count).
   Read-your-writes: the served view reflects at least every update of
   the session's own source that the warehouse had acknowledged when the
   read was issued. *)
let check_sessions ~n_sources reads =
  if n_sources < 1 then invalid_arg "Checker.check_sessions: n_sources < 1";
  let last_version = Array.make n_sources (-1) in
  let last_inc = Array.make n_sources [||] in
  let mr_violations = ref 0 in
  let ryw_violations = ref 0 in
  let graded = ref 0 in
  List.iter
    (fun r ->
      if r.session < 0 || r.session >= n_sources then
        invalid_arg "Checker.check_sessions: session out of range";
      incr graded;
      let s = r.session in
      let component_regressed prev cur =
        Array.length prev = Array.length cur
        && (let bad = ref false in
            Array.iteri (fun i p -> if cur.(i) < p then bad := true) prev;
            !bad)
      in
      let regressed =
        r.version < last_version.(s)
        || (last_inc.(s) <> [||] && component_regressed last_inc.(s) r.incorporated)
      in
      if regressed then incr mr_violations;
      last_version.(s) <- max last_version.(s) r.version;
      last_inc.(s) <- Array.copy r.incorporated;
      if r.incorporated.(s) < r.acked.(s) then incr ryw_violations)
    reads;
  { reads_graded = !graded;
    monotonic_reads = !mr_violations = 0;
    mr_violations = !mr_violations;
    read_your_writes = !ryw_violations = 0;
    ryw_violations = !ryw_violations }

let pp_session_report ppf r =
  Format.fprintf ppf
    "%d reads graded; monotonic-reads %s (%d violations); read-your-writes \
     %s (%d violations)"
    r.reads_graded
    (if r.monotonic_reads then "OK" else "VIOLATED")
    r.mr_violations
    (if r.read_your_writes then "OK" else "violated")
    r.ryw_violations

let check ?(degraded = false) view obs =
  let states_checked = List.length obs.installs + 1 in
  (* A wrong final view is inconsistent no matter what the install
     history looks like — check it unconditionally first (a vacuously
     perfect history, e.g. a zero-update run, must not mask it). A
     degraded run (breakers open at the end, updates still parked) is
     allowed to miss the fully-updated state, but only if it is exact
     over the incorporated subset. *)
  match check_convergent view obs with
  | Error conv_err when degraded -> (
      match check_degraded view obs with
      | Ok () ->
          { verdict = Degraded;
            detail =
              "breakers still open at end of run; view is exact over the \
               incorporated updates";
            states_checked }
      | Error deg_err ->
          { verdict = Inconsistent;
            detail = conv_err ^ "; and over the incorporated subset: "
                     ^ deg_err;
            states_checked })
  | Error conv_err ->
      { verdict = Inconsistent; detail = conv_err; states_checked }
  | Ok () -> (
  match check_complete view obs with
  | Ok () -> { verdict = Complete; detail = "every update installed in delivery order with exact contents"; states_checked }
  | Error complete_err -> (
      match check_strong view obs with
      | Ok () ->
          { verdict = Strong;
            detail = "not complete (" ^ complete_err ^ ") but all batches \
                      order-preserving and exact";
            states_checked }
      | Error strong_err ->
          { verdict = Convergent;
            detail = "not strong (" ^ strong_err ^ ") but converged";
            states_checked }))
