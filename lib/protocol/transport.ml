open Repro_sim
module Obs = Repro_observability.Obs
module Tracer = Repro_observability.Tracer

type config = {
  rto : float;
  backoff : float;
  max_rto : float;
  jitter : float;
  deadline : float option;
}

let default_config =
  { rto = 8.0; backoff = 2.0; max_rto = 64.0; jitter = 0.1; deadline = None }

let config_for latency =
  (* one query/answer round trip is two hops; leave headroom for latency
     variance so the timer fires on loss, not on slow delivery *)
  let rtt = 2. *. Latency.mean latency in
  { default_config with
    rto = Float.max (4. *. rtt) 1.0;
    max_rto = Float.max (32. *. rtt) 8.0 }

type 'a frame = Data of { seq : int; payload : 'a } | Ack of { upto : int }

type stats = {
  mutable frames_sent : int;
  mutable retransmissions : int;
  mutable timeouts : int;
  mutable recoveries : int;
  mutable duplicates_suppressed : int;
  mutable reorders_buffered : int;
  mutable acks_sent : int;
  mutable deadline_expiries : int;
}

let fresh_stats () =
  { frames_sent = 0; retransmissions = 0; timeouts = 0; recoveries = 0;
    duplicates_suppressed = 0; reorders_buffered = 0; acks_sent = 0;
    deadline_expiries = 0 }

(* ————— sender ————— *)

type 'a inflight = {
  seq : int;
  payload : 'a;
  mutable retx : int;
  mutable first_sent : float;  (* deadline clock: reset on resume *)
  mutable sent_once : bool;  (* false for sends buffered while suspended *)
}

type 'a sender = {
  engine : Engine.t;
  rng : Rng.t;
  config : config;
  send_frame : 'a frame -> unit;
  on_deadline : seq:int -> unit;
  on_ack : seq:int -> unit;
  stats : stats;
  obs : Obs.t;
  label : string;
  mutable next_seq : int;
  mutable acked_upto : int;  (* cumulative: all seq <= acked_upto acked *)
  mutable rev_window : 'a inflight list;  (* unacked, newest first *)
  mutable cur_rto : float;
  mutable epoch : int;  (* stamps timers; a stale timer is a no-op *)
  mutable suspended : bool;  (* deadline hit: hold fire until resumed *)
}

let sender ?(config = default_config) ?(obs = Obs.disabled ()) ?(label = "")
    ?(on_deadline = fun ~seq:_ -> ()) ?(on_ack = fun ~seq:_ -> ()) engine
    ~rng ~send_frame =
  if config.rto <= 0. || config.backoff < 1. || config.max_rto < config.rto
  then invalid_arg "Transport.sender: bad config";
  if config.jitter < 0. then invalid_arg "Transport.sender: jitter < 0";
  (match config.deadline with
  | Some d when d <= 0. -> invalid_arg "Transport.sender: deadline <= 0"
  | _ -> ());
  { engine; rng; config; send_frame; on_deadline; on_ack;
    stats = fresh_stats (); obs; label; next_seq = 0; acked_upto = -1;
    rev_window = []; cur_rto = config.rto; epoch = 0; suspended = false }

let unacked s = List.length s.rev_window
let sender_stats s = s.stats
let sender_suspended s = s.suspended

(* One timer guards the whole in-flight window (TCP-style). Timers cannot
   be cancelled in the engine, so each armed timer carries the epoch it
   was armed in; bumping the epoch orphans it. *)
let rec arm s =
  s.epoch <- s.epoch + 1;
  let epoch = s.epoch in
  let delay = s.cur_rto *. (1. +. (s.config.jitter *. Rng.float s.rng)) in
  Engine.schedule s.engine ~delay (fun () ->
      if epoch = s.epoch && s.rev_window <> [] && not s.suspended then begin
        s.stats.timeouts <- s.stats.timeouts + 1;
        if Obs.active s.obs then
          Obs.event s.obs "transport.timeout"
            [ ("link", Tracer.S s.label);
              ("window", Tracer.I (List.length s.rev_window));
              ("rto", Tracer.F s.cur_rto) ];
        let now = Engine.now s.engine in
        let overdue =
          match s.config.deadline with
          | None -> None
          | Some d ->
              List.find_opt
                (fun f -> now -. f.first_sent >= d)
                (List.rev s.rev_window)
        in
        match overdue with
        | Some f ->
            (* the oldest frame blew its delivery deadline: stop
               retransmitting and report Timed_out; only an explicit
               [resume_sender] (a breaker retry or probe) restarts us *)
            s.stats.deadline_expiries <- s.stats.deadline_expiries + 1;
            if Obs.active s.obs then
              Obs.event s.obs "transport.deadline"
                [ ("link", Tracer.S s.label); ("seq", Tracer.I f.seq);
                  ("waited", Tracer.F (now -. f.first_sent)) ];
            s.suspended <- true;
            s.epoch <- s.epoch + 1;
            s.on_deadline ~seq:f.seq
        | None ->
            List.iter
              (fun f ->
                f.retx <- f.retx + 1;
                s.stats.retransmissions <- s.stats.retransmissions + 1;
                if Obs.active s.obs then
                  Obs.event s.obs "transport.retransmit"
                    [ ("link", Tracer.S s.label); ("seq", Tracer.I f.seq);
                      ("retx", Tracer.I f.retx) ];
                s.send_frame (Data { seq = f.seq; payload = f.payload }))
              (List.rev s.rev_window);
            s.cur_rto <-
              Float.min (s.cur_rto *. s.config.backoff) s.config.max_rto;
            arm s
      end)

let send s payload =
  let seq = s.next_seq in
  s.next_seq <- seq + 1;
  let was_idle = s.rev_window = [] in
  let f =
    { seq; payload; retx = 0; first_sent = Engine.now s.engine;
      sent_once = not s.suspended }
  in
  s.rev_window <- f :: s.rev_window;
  if not s.suspended then begin
    s.stats.frames_sent <- s.stats.frames_sent + 1;
    s.send_frame (Data { seq; payload });
    if was_idle then begin
      s.cur_rto <- s.config.rto;
      arm s
    end
  end

(* Breaker retry / half-open probe: (re)transmit the whole window oldest
   first with fresh deadline clocks and timer. Safe on dup delivery — the
   peer's receiver suppresses and re-acks. *)
let resume_sender s =
  if s.suspended then begin
    s.suspended <- false;
    s.cur_rto <- s.config.rto;
    if s.rev_window <> [] then begin
      let now = Engine.now s.engine in
      List.iter
        (fun f ->
          f.first_sent <- now;
          if f.sent_once then begin
            f.retx <- f.retx + 1;
            s.stats.retransmissions <- s.stats.retransmissions + 1
          end
          else begin
            f.sent_once <- true;
            s.stats.frames_sent <- s.stats.frames_sent + 1
          end;
          s.send_frame (Data { seq = f.seq; payload = f.payload }))
        (List.rev s.rev_window);
      arm s
    end
  end

let sender_on_frame s = function
  | Data _ -> invalid_arg "Transport.sender_on_frame: Data on ack channel"
  | Ack { upto } ->
      if upto > s.acked_upto then begin
        let acked, rest =
          List.partition (fun f -> f.seq <= upto) s.rev_window
        in
        (* oldest first, so recovery events keep their original order *)
        List.iter
          (fun f ->
            if f.retx > 0 then begin
              s.stats.recoveries <- s.stats.recoveries + 1;
              if Obs.active s.obs then
                Obs.event s.obs "transport.recovery"
                  [ ("link", Tracer.S s.label); ("seq", Tracer.I f.seq);
                    ("retx", Tracer.I f.retx) ]
            end)
          (List.rev acked);
        s.rev_window <- rest;
        s.acked_upto <- upto;
        s.cur_rto <- s.config.rto;
        (* progress: restart the timer for what remains, or go idle; a
           suspended sender stays dark until [resume_sender] *)
        if s.rev_window = [] then s.epoch <- s.epoch + 1
        else if not s.suspended then arm s;
        (* an ack is round-trip liveness evidence — the breaker layer
           needs it because a delivered-but-ack-lost query produces
           deadline expiries yet will never produce a second answer
           (the retransmission is duplicate-suppressed at the peer) *)
        s.on_ack ~seq:upto
      end

(* ————— crash-recovery hooks —————

   A crashed endpoint loses its volatile transport state; recovery
   restores it from a checkpoint. Restoring [next_seq] means replayed
   protocol sends regenerate their original sequence numbers, so the
   peer's receiver suppresses them as duplicates — exactly-once
   re-application for free. *)

(* The checkpointed window stays oldest-first: the encoding predates the
   reversed in-memory representation. *)
let sender_state s =
  ( s.next_seq,
    s.acked_upto,
    List.rev_map (fun f -> (f.seq, f.payload)) s.rev_window )

(* The owner crashed: orphan the retransmission timer and forget the
   window (it is volatile state; a restore re-seeds it). *)
let halt_sender s =
  s.epoch <- s.epoch + 1;
  s.suspended <- false;
  s.rev_window <- []

let restore_sender s ~next_seq ~acked_upto ~window =
  s.epoch <- s.epoch + 1;
  s.suspended <- false;
  s.next_seq <- next_seq;
  s.acked_upto <- acked_upto;
  let now = Engine.now s.engine in
  s.rev_window <-
    List.rev_map
      (fun (seq, payload) ->
        { seq; payload; retx = 1; first_sent = now; sent_once = true })
      window;
  s.cur_rto <- s.config.rto;
  if s.rev_window <> [] then begin
    (* retransmit the restored window immediately, oldest first; the peer
       re-acks anything it already delivered *)
    List.iter
      (fun (seq, payload) ->
        s.stats.retransmissions <- s.stats.retransmissions + 1;
        s.send_frame (Data { seq; payload }))
      window;
    arm s
  end

(* ————— receiver ————— *)

type 'a receiver = {
  r_send_frame : 'a frame -> unit;
  deliver : 'a -> unit;
  r_stats : stats;
  r_obs : Obs.t;
  r_label : string;
  mutable expected : int;  (* next in-order seq to deliver *)
  held : (int, 'a) Hashtbl.t;  (* out-of-order frames awaiting the gap *)
}

let receiver ?(obs = Obs.disabled ()) ?(label = "") ~send_frame ~deliver () =
  { r_send_frame = send_frame; deliver; r_stats = fresh_stats ();
    r_obs = obs; r_label = label; expected = 0; held = Hashtbl.create 16 }

let receiver_stats r = r.r_stats
let receiver_expected r = r.expected

(* Recovery: anything below [expected] was logged before the crash and is
   replayed from the WAL; held out-of-order frames above it were never
   acknowledged and will be retransmitted by their senders. *)
let reset_receiver r ~expected =
  if expected < 0 then invalid_arg "Transport.reset_receiver: expected < 0";
  Hashtbl.reset r.held;
  r.expected <- expected

let ack r =
  r.r_stats.acks_sent <- r.r_stats.acks_sent + 1;
  r.r_send_frame (Ack { upto = r.expected - 1 })

let receiver_on_frame r = function
  | Ack _ -> invalid_arg "Transport.receiver_on_frame: Ack on data channel"
  | Data { seq; payload } ->
      (if seq < r.expected || Hashtbl.mem r.held seq then begin
         (* already delivered or already held: suppress, but re-ack so a
            sender whose acks were lost stops retransmitting *)
         r.r_stats.duplicates_suppressed <- r.r_stats.duplicates_suppressed + 1;
         if Obs.active r.r_obs then
           Obs.event r.r_obs "transport.dup"
             [ ("link", Tracer.S r.r_label); ("seq", Tracer.I seq) ]
       end
       else begin
         Hashtbl.replace r.held seq payload;
         if seq > r.expected then begin
           r.r_stats.reorders_buffered <- r.r_stats.reorders_buffered + 1;
           if Obs.active r.r_obs then
             Obs.event r.r_obs "transport.reorder"
               [ ("link", Tracer.S r.r_label); ("seq", Tracer.I seq);
                 ("expected", Tracer.I r.expected) ]
         end;
         while Hashtbl.mem r.held r.expected do
           let p = Hashtbl.find r.held r.expected in
           Hashtbl.remove r.held r.expected;
           r.expected <- r.expected + 1;
           r.deliver p
         done
       end);
      ack r

(* ————— wired links ————— *)

type 'a link = {
  l_sender : 'a sender;
  l_receiver : 'a receiver;
  data_ch : 'a frame Channel.t;
  ack_ch : 'a frame Channel.t;
}

let connect ?config ?(faults = Fault.reliable) ?gate ?data_gate ?ack_gate
    ?(obs = Obs.disabled ()) ?(label = "") ?on_deadline ?on_ack engine
    ~latency ~rng ~deliver () =
  let config =
    match config with Some c -> c | None -> config_for latency
  in
  let lossy = faults <> Fault.reliable in
  let spike =
    if faults.Fault.spike > 0. then
      Some (faults.Fault.spike, faults.Fault.spike_factor)
    else None
  in
  let recv = ref None in
  let snd = ref None in
  let mk ?gate deliver =
    Channel.create ~lossy ~drop:faults.Fault.drop
      ~duplicate:faults.Fault.duplicate ?spike ?gate engine ~latency
      ~rng:(Rng.split rng) ~deliver
  in
  let first o = match o with Some _ -> o | None -> gate in
  let data_ch =
    mk ?gate:(first data_gate) (fun f -> receiver_on_frame (Option.get !recv) f)
  in
  let ack_ch =
    mk ?gate:(first ack_gate) (fun f -> sender_on_frame (Option.get !snd) f)
  in
  let l_receiver =
    receiver ~obs ~label ~send_frame:(fun f -> Channel.send ack_ch f) ~deliver
      ()
  in
  recv := Some l_receiver;
  let l_sender =
    sender ~config ~obs ~label ?on_deadline ?on_ack engine
      ~rng:(Rng.split rng)
      ~send_frame:(fun f -> Channel.send data_ch f)
  in
  snd := Some l_sender;
  { l_sender; l_receiver; data_ch; ack_ch }

let link_send l payload = send l.l_sender payload
let link_idle l = l.l_sender.rev_window = []
let link_sender l = l.l_sender
let link_receiver l = l.l_receiver

let link_stats l =
  let s = l.l_sender.stats and r = l.l_receiver.r_stats in
  { frames_sent = s.frames_sent + r.frames_sent;
    retransmissions = s.retransmissions + r.retransmissions;
    timeouts = s.timeouts + r.timeouts;
    recoveries = s.recoveries + r.recoveries;
    duplicates_suppressed = s.duplicates_suppressed + r.duplicates_suppressed;
    reorders_buffered = s.reorders_buffered + r.reorders_buffered;
    acks_sent = s.acks_sent + r.acks_sent;
    deadline_expiries = s.deadline_expiries + r.deadline_expiries }

let link_frames_lost l =
  Channel.dropped l.data_ch + Channel.gated l.data_ch
  + Channel.dropped l.ack_ch + Channel.gated l.ack_ch
