(** Reliable exactly-once FIFO links over lossy channels.

    The maintenance protocol (paper §2) assumes every source↔warehouse
    channel is reliable and FIFO; {!Repro_sim.Channel} in lossy mode
    violates both. This module restores the contract so the algorithm
    layer ([Source_node]/[Node]) runs unchanged over a faulty network:

    - the {e sender} stamps each payload with a per-link monotone
      sequence number, buffers it until acknowledged, and retransmits on
      timeout with exponential backoff (capped) plus deterministic
      jitter, all driven by {!Repro_sim.Engine} timers and the link's
      {!Repro_sim.Rng} stream — runs replay bit-identically per seed;
    - the {e receiver} delivers payloads strictly in sequence order
      (buffering out-of-order arrivals), suppresses duplicates, and
      returns cumulative acks ([Ack upto] ⇒ all seq ≤ upto received) on
      its own lossy reverse channel.

    A crashed source (see {!Repro_sim.Fault} windows) simply looks like
    100% loss for the duration: the warehouse's in-flight [Sweep_query]
    keeps being retransmitted with backoff and gets through — and is
    answered — once the source recovers, which is exactly the paper's
    "re-issue the query" recovery with no algorithm-layer involvement.

    {b The Timed_out contract.} Unbounded retransmission only delivers
    when fault rates are < 1 and every crash window is finite; an
    infinite window (a source that never heals) would stall the sender —
    and the maintenance leg behind it — forever, with no warehouse-side
    signal. Setting [config.deadline = Some d] bounds that wait: once the
    oldest in-flight frame has gone unacknowledged for [d] sim-seconds,
    the sender {e suspends} (stops retransmitting, keeps its window and
    sequence state), counts a [deadline_expiries], emits a
    ["transport.deadline"] event, and invokes the [on_deadline] callback
    — the timed-out outcome a circuit breaker consumes. A suspended
    sender buffers new [send]s without transmitting. {!resume_sender}
    (a breaker retry or half-open probe) retransmits the whole window
    with fresh deadline clocks; duplicate deliveries are suppressed and
    re-acked by the peer, so suspend/resume never breaks exactly-once
    FIFO delivery. With [deadline = None] (the default) behaviour is the
    legacy retransmit-forever contract. *)

open Repro_sim

(** Retransmission policy. [rto] is the initial retransmission timeout;
    after each timeout of the same in-flight window the timeout is
    multiplied by [backoff] (capped at [max_rto]) and the timer re-armed
    with a uniform extra jitter fraction in [0, jitter). An advancing ack
    resets the timeout to [rto]. [deadline] bounds how long the oldest
    in-flight frame may stay unacknowledged before the sender suspends
    and reports Timed_out (see the module preamble); [None] retries
    forever. *)
type config = {
  rto : float;
  backoff : float;
  max_rto : float;
  jitter : float;
  deadline : float option;
}

val default_config : config

(** [config_for latency] — a config whose [rto] comfortably exceeds one
    round trip under the given latency model. *)
val config_for : Latency.t -> config

(** Wire frames: payloads and cumulative acknowledgements share the
    channel message type so one lossy channel per direction suffices. *)
type 'a frame = Data of { seq : int; payload : 'a } | Ack of { upto : int }

(** Counters for one endpoint (sender and receiver fill disjoint
    fields). *)
type stats = {
  mutable frames_sent : int;  (** first transmissions (sender) *)
  mutable retransmissions : int;  (** frames resent after a timeout *)
  mutable timeouts : int;  (** retransmission timer expiries *)
  mutable recoveries : int;  (** frames acked after ≥1 retransmission *)
  mutable duplicates_suppressed : int;  (** dup frames dropped (receiver) *)
  mutable reorders_buffered : int;  (** out-of-order frames held (receiver) *)
  mutable acks_sent : int;  (** ack frames emitted (receiver) *)
  mutable deadline_expiries : int;
      (** query deadlines blown: sender suspensions (sender) *)
}

(** {2 Endpoints} *)

type 'a sender
type 'a receiver

(** [sender ?config engine ~rng ~send_frame] — [send_frame] hands a frame
    to the forward lossy channel. [obs]/[label] attach structured
    observability: timeout / retransmit / recovery events tagged with the
    link label. [on_deadline ~seq] fires when the configured [deadline]
    expires on in-flight frame [seq] — the sender is already suspended
    when it runs, so the callback may call {!resume_sender}
    synchronously to retry. [on_ack ~seq] fires after a cumulative ack
    up to [seq] is processed — round-trip liveness evidence for the
    circuit-breaker layer (a delivered-but-ack-lost query produces
    deadline expiries yet never a second answer, because the peer
    duplicate-suppresses the retransmission; only the ack proves the
    link alive in that case). *)
val sender :
  ?config:config ->
  ?obs:Repro_observability.Obs.t ->
  ?label:string ->
  ?on_deadline:(seq:int -> unit) ->
  ?on_ack:(seq:int -> unit) ->
  Engine.t ->
  rng:Rng.t ->
  send_frame:('a frame -> unit) ->
  'a sender

(** Reliable FIFO send: buffered until cumulatively acked. A suspended
    sender appends to its window without transmitting; the frame goes
    out on the next {!resume_sender}. *)
val send : 'a sender -> 'a -> unit

(** True while the sender is deadline-suspended (not retransmitting). *)
val sender_suspended : 'a sender -> bool

(** Clear a deadline suspension: retransmit the whole in-flight window
    oldest first with fresh deadline clocks, transmit any sends buffered
    while suspended, and re-arm the retransmission timer. No-op when not
    suspended. *)
val resume_sender : 'a sender -> unit

(** Feed the sender a frame from the reverse channel (acks; [Data] frames
    raise — the link is unidirectional). *)
val sender_on_frame : 'a sender -> 'a frame -> unit

(** Payloads sent but not yet acknowledged. *)
val unacked : 'a sender -> int

val sender_stats : 'a sender -> stats

(** {2 Crash-recovery hooks}

    A warehouse crash loses volatile transport state. {!sender_state}
    freezes a sender for a checkpoint; {!halt_sender} is called when the
    owner crashes (orphans the retransmission timer so the simulation
    does not keep resending on behalf of a dead node);
    {!restore_sender} reinstates checkpointed state on recovery and
    immediately retransmits the restored window. Restoring [next_seq]
    makes replayed sends regenerate their original sequence numbers, so
    peers suppress them as duplicates — exactly-once across the crash.
    {!reset_receiver} reinstates a receiver: recovery passes
    [checkpointed expected + replayed records on that link], because
    everything the old incarnation delivered (and acked) is replayed
    from the WAL, while held out-of-order frames were never acked and
    will be retransmitted. *)

(** [(next_seq, acked_upto, window)] with the window oldest first. *)
val sender_state : 'a sender -> int * int * (int * 'a) list

val halt_sender : 'a sender -> unit

val restore_sender :
  'a sender -> next_seq:int -> acked_upto:int -> window:(int * 'a) list ->
  unit

(** Next in-order sequence number the receiver will deliver. *)
val receiver_expected : 'a receiver -> int

(** Set [expected] and drop all held out-of-order frames. *)
val reset_receiver : 'a receiver -> expected:int -> unit

(** [receiver ~send_frame ~deliver ()] — [send_frame] hands ack frames to
    the reverse lossy channel; [deliver] receives each payload exactly
    once, in send order. [obs]/[label] attach structured observability:
    duplicate-suppression / reorder-buffering events tagged with the link
    label. *)
val receiver :
  ?obs:Repro_observability.Obs.t ->
  ?label:string ->
  send_frame:('a frame -> unit) ->
  deliver:('a -> unit) ->
  unit ->
  'a receiver

(** Feed the receiver a frame from the forward channel. *)
val receiver_on_frame : 'a receiver -> 'a frame -> unit

val receiver_stats : 'a receiver -> stats

(** {2 Wired links}

    [connect] builds both lossy channels (forward data, reverse ack) with
    the same fault rates and gate, and wires a sender/receiver pair over
    them — the usual way an experiment assembles a reliable link. *)

type 'a link

(** [gate] applies to both directions (a partitioned peer); [data_gate] /
    [ack_gate] override it per channel, so a warehouse crash can close
    only the channels that deliver {e into} the warehouse (data on up
    links, acks on down links) while frames to the still-live peer keep
    flowing. *)
val connect :
  ?config:config ->
  ?faults:Fault.link ->
  ?gate:(unit -> bool) ->
  ?data_gate:(unit -> bool) ->
  ?ack_gate:(unit -> bool) ->
  ?obs:Repro_observability.Obs.t ->
  ?label:string ->
  ?on_deadline:(seq:int -> unit) ->
  ?on_ack:(seq:int -> unit) ->
  Engine.t ->
  latency:Latency.t ->
  rng:Rng.t ->
  deliver:('a -> unit) ->
  unit ->
  'a link

val link_send : 'a link -> 'a -> unit

(** True when every payload sent over the link has been acknowledged. *)
val link_idle : 'a link -> bool

val link_sender : 'a link -> 'a sender
val link_receiver : 'a link -> 'a receiver

(** Combined sender+receiver counters for the link. *)
val link_stats : 'a link -> stats

(** Frames lost by the two underlying lossy channels (drop + gate). *)
val link_frames_lost : 'a link -> int
