(** The paper's running example (§5.2, Figures 1 and 5).

    View over R1[A,B], R2[C,D], R3[E,F]:
    {v V = π[D,F] (R1 ⋈(B=C) R2 ⋈(D=E) R3) v}

    with the initial contents and the three concurrent updates the paper
    walks through. Note this view has {e no} key attributes — it is
    exactly the kind of view the Strobe family cannot maintain and SWEEP
    can (paper §3).

    Every value is a thunk returning a fresh copy: schemas, view
    definitions, deltas and bags all embed mutable structure, and a
    shared toplevel value would be module state visible to every run
    and every future domain. *)

open Repro_relational

val schemas : unit -> Schema.t array
val view : unit -> View_def.t

(** Fresh copies of the initial relations. *)
val initial : unit -> Relation.t array

(** The updates as (source index, delta): ΔR2 = +(3,5), ΔR3 = −(7,8),
    ΔR1 = −(2,3). *)
val d_r2 : unit -> int * Delta.t

val d_r3 : unit -> int * Delta.t
val d_r1 : unit -> int * Delta.t

(** Expected view contents after zero, one, two and three updates
    (Figure 5's warehouse column). *)
val v0 : unit -> Bag.t

val v1 : unit -> Bag.t
val v2 : unit -> Bag.t
val v3 : unit -> Bag.t
