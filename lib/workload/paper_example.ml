(* The paper's running example (§5.2, Figure 5), reused by several test
   suites and by the figure5 walkthrough executable.

   View over R1[A,B], R2[C,D], R3[E,F]:
     V = π[D,F] (R1 ⋈(B=C) R2 ⋈(D=E) R3)
   Initial state:
     R1 = {(1,3), (2,3)}   R2 = {(3,7)}   R3 = {(5,6), (7,8)}
     V  = {(7,8)[2]}
   Updates (in warehouse delivery order):
     ΔR2 = +(3,5)   ΔR3 = −(7,8)   ΔR1 = −(2,3)

   Everything here is a thunk: schemas, view definitions, deltas and
   bags all embed mutable arrays/tables, and a shared toplevel copy
   would be cross-run (and, eventually, cross-domain) mutable state.
   Each call builds a fresh value the caller owns. *)

open Repro_relational

let schemas () =
  [| Schema.make "R1" [ Schema.attr "A" Value.T_int; Schema.attr "B" Value.T_int ];
     Schema.make "R2" [ Schema.attr "C" Value.T_int; Schema.attr "D" Value.T_int ];
     Schema.make "R3" [ Schema.attr "E" Value.T_int; Schema.attr "F" Value.T_int ] |]

let view () =
  View_def.make ~name:"paper-example" ~schemas:(schemas ())
    ~joins:
      [| Join_spec.natural ~left_attr:1 ~right_attr:2 (* B = C *);
         Join_spec.natural ~left_attr:3 ~right_attr:4 (* D = E *) |]
    ~projection:[| 3; 5 |] (* D, F *)
    ()

let initial () =
  [| Relation.of_tuples [ Tuple.ints [ 1; 3 ]; Tuple.ints [ 2; 3 ] ];
     Relation.of_tuples [ Tuple.ints [ 3; 7 ] ];
     Relation.of_tuples [ Tuple.ints [ 5; 6 ]; Tuple.ints [ 7; 8 ] ] |]

(* The three updates, as (source, delta). *)
let d_r2 () = (1, Delta.insertion (Tuple.ints [ 3; 5 ]))
let d_r3 () = (2, Delta.deletion (Tuple.ints [ 7; 8 ]))
let d_r1 () = (0, Delta.deletion (Tuple.ints [ 2; 3 ]))

(* Expected view states after each update, per Figure 5. *)
let v0 () = Bag.of_list [ (Tuple.ints [ 7; 8 ], 2) ]
let v1 () = Bag.of_list [ (Tuple.ints [ 7; 8 ], 2); (Tuple.ints [ 5; 6 ], 2) ]
let v2 () = Bag.of_list [ (Tuple.ints [ 5; 6 ], 2) ]
let v3 () = Bag.of_list [ (Tuple.ints [ 5; 6 ], 1) ]
