type align = L | R

(* Column width must count display glyphs, not bytes: headers contain
   UTF-8 (Δ, ⋈). Count non-continuation bytes. *)
let display_width s =
  let w = ref 0 in
  String.iter (fun c -> if Char.code c land 0xC0 <> 0x80 then incr w) s;
  !w

let pad align width s =
  let gap = width - display_width s in
  if gap <= 0 then s
  else
    match align with
    | L -> s ^ String.make gap ' '
    | R -> String.make gap ' ' ^ s

let table ?aligns ~title ~headers ~rows () =
  let ncols = List.length headers in
  let aligns =
    match aligns with
    | Some a -> a
    | None -> List.init ncols (fun i -> if i = 0 then L else R)
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row ->
            match List.nth_opt row i with
            | Some cell -> max acc (display_width cell)
            | None -> acc)
          (display_width h) rows)
      headers
  in
  let buf = Buffer.create 1024 in
  let rule () =
    Buffer.add_char buf '+';
    List.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i cell ->
        let w = List.nth widths i in
        let a = List.nth aligns i in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad a w cell);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  rule ();
  line headers;
  rule ();
  List.iter
    (fun row ->
      let row =
        if List.length row < ncols then
          row @ List.init (ncols - List.length row) (fun _ -> "")
        else row
      in
      line row)
    rows;
  rule ();
  Buffer.contents buf

let csv ~headers ~rows =
  let escape cell =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
    else cell
  in
  String.concat "\n"
    (List.map (fun r -> String.concat "," (List.map escape r))
       (headers :: rows))

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let f3 x = Printf.sprintf "%.3f" x

let write_json path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Repro_observability.Jsonw.to_channel ~indent:2 oc json)
