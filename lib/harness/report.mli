(** ASCII table / CSV rendering for experiment output. *)

type align = L | R

(** [table ~title ~headers ~rows] renders a boxed ASCII table. [aligns]
    defaults to left for the first column and right for the rest. *)
val table :
  ?aligns:align list -> title:string -> headers:string list ->
  rows:string list list -> unit -> string

val csv : headers:string list -> rows:string list list -> string

(** Format helpers. *)
val f1 : float -> string

val f2 : float -> string
val f3 : float -> string

(** Write a JSON document to [path] (2-space indent, trailing newline). *)
val write_json : string -> Repro_observability.Jsonw.t -> unit
