open Repro_sim
open Repro_workload

type topology = Distributed | Centralized

type t = {
  name : string;
  n_sources : int;
  init_size : int;
  domain : int;
  stream : Update_gen.config;
  latency : Latency.t;
  topology : topology;
  faults : Fault.t;
  checkpoint_every : int;
  queue_capacity : int option;
  batch_max : int;
  deadline : float option;
  breaker_k : int;
  probe_limit : int;
  stall_cap : int;
  read_rate : float;
  staleness_slo : float;
  read_cap : int;
  read_burst : Repro_serving.Read_gen.burst option;
  aux_mode : Repro_warehouse.Aux_store.mode;
  join_strategy : Repro_relational.Join_strategy.t;
  seed : int64;
}

let default =
  { name = "default"; n_sources = 3; init_size = 40; domain = 16;
    stream = Update_gen.default; latency = Latency.Uniform (0.5, 1.5);
    topology = Distributed; faults = Fault.none; checkpoint_every = 8;
    queue_capacity = None; batch_max = 16; deadline = None; breaker_k = 3;
    probe_limit = 0; stall_cap = 256; read_rate = 0.; staleness_slo = 2.0;
    read_cap = 16; read_burst = None;
    aux_mode = Repro_warehouse.Aux_store.Off;
    join_strategy = Repro_relational.Join_strategy.default; seed = 42L }

let presets =
  [ (* updates spaced far apart: no concurrency, every algorithm should be
       exact *)
    ( "sequential",
      { default with
        name = "sequential";
        stream =
          { Update_gen.default with
            n_updates = 60; mean_gap = 50.; fixed_gap = true } } );
    (* heavy interleaving: the regime the paper is about *)
    ( "concurrent",
      { default with
        name = "concurrent"; n_sources = 4;
        stream =
          { Update_gen.default with n_updates = 120; mean_gap = 0.7 } } );
    (* bursts of near-simultaneous updates *)
    ( "bursty",
      { default with
        name = "bursty"; n_sources = 4;
        stream =
          { Update_gen.default with
            n_updates = 120; mean_gap = 0.2; txn_size = 2 } } );
    (* alternating interference between the chain's endpoints: Nested
       SWEEP's worst case (paper §6.2) *)
    ( "adversarial",
      { default with
        name = "adversarial"; n_sources = 4;
        stream =
          { Update_gen.default with
            n_updates = 80; mean_gap = 0.3;
            placement = Update_gen.Alternating (0, 3) } } );
    (* everything on one site: ECA's home turf *)
    ( "centralized",
      { default with
        name = "centralized"; topology = Centralized;
        stream = { Update_gen.default with n_updates = 80; mean_gap = 0.7 } }
    );
    (* degraded network: loss, duplication, spikes and one source outage;
       protocol messages ride the reliable transport layer *)
    ( "degraded",
      { default with
        name = "degraded"; n_sources = 4;
        stream = { Update_gen.default with n_updates = 80; mean_gap = 1.5 };
        faults =
          { Fault.link =
              Fault.lossy ~drop:0.2 ~duplicate:0.1 ~spike:0.05
                ~spike_factor:4. ();
            crashes = [ { Fault.source = 1; down_at = 30.; up_at = 60. } ];
            wh_crashes = [] } } );
    (* warehouse crash/restart mid-run: WAL + checkpoint recovery, twice,
       over a mildly lossy network *)
    ( "crashy",
      { default with
        name = "crashy"; n_sources = 4;
        stream = { Update_gen.default with n_updates = 80; mean_gap = 1.5 };
        faults =
          { Fault.link = Fault.lossy ~drop:0.05 ~duplicate:0.05 ();
            crashes = [];
            wh_crashes =
              [ { Fault.wh_down_at = 20.; wh_up_at = 40. };
                { Fault.wh_down_at = 70.; wh_up_at = 85. } ] } } );
    (* everything at once: lossy links, two overlapping source outages,
       a warehouse crash inside one of them, query deadlines and circuit
       breakers armed. The chaos suite draws randomized variants of this
       with [Fault.chaos]; the preset is one representative schedule. *)
    ( "chaos",
      { default with
        name = "chaos"; n_sources = 4;
        stream = { Update_gen.default with n_updates = 80; mean_gap = 1.5 };
        deadline = Some 8.; breaker_k = 3; probe_limit = 0; stall_cap = 64;
        faults =
          { Fault.link =
              Fault.lossy ~drop:0.15 ~duplicate:0.1 ~spike:0.1
                ~spike_factor:4. ();
            crashes =
              [ { Fault.source = 1; down_at = 25.; up_at = 70. };
                { Fault.source = 3; down_at = 55.; up_at = 90. } ];
            wh_crashes = [ { Fault.wh_down_at = 40.; wh_up_at = 52. } ] } } );
    (* sustained read pressure over a busy write stream: the serving tier
       must stamp staleness honestly and never block a read *)
    ( "read-heavy",
      { default with
        name = "read-heavy"; n_sources = 4;
        stream = { Update_gen.default with n_updates = 120; mean_gap = 0.7 };
        read_rate = 8.0; staleness_slo = 2.0; read_cap = 16 } );
    (* a flash crowd (10× read burst) colliding with a source outage:
       maintenance lags behind the open breaker while reads spike, so the
       server must degrade gracefully — stale-but-stamped answers within
       the ceiling, shed beyond it or past the in-flight cap *)
    ( "flash-crowd",
      { default with
        name = "flash-crowd"; n_sources = 4;
        stream = { Update_gen.default with n_updates = 100; mean_gap = 1.0 };
        deadline = Some 8.; breaker_k = 3; probe_limit = 0; stall_cap = 64;
        read_rate = 4.0; staleness_slo = 2.0; read_cap = 12;
        read_burst =
          Some { Repro_serving.Read_gen.at = 30.; duration = 20.;
                 multiplier = 10. };
        faults =
          { Fault.link = Fault.lossy ~drop:0.05 ~duplicate:0.05 ();
            crashes = [ { Fault.source = 1; down_at = 25.; up_at = 55. } ];
            wh_crashes = [] } } );
    (* self-maintenance showcase (DESIGN.md §14): the concurrent regime
       with a skewed (Zipf) update placement and full aux projections —
       every sweep leg answered locally, messages/update ≪ 1 *)
    ( "self-maint",
      { default with
        name = "self-maint"; n_sources = 4;
        stream =
          { Update_gen.default with
            n_updates = 120; mean_gap = 0.7;
            placement = Update_gen.Zipf 1.1 };
        aux_mode = Repro_warehouse.Aux_store.Full } )
  ]

let find_preset name = List.assoc_opt name presets

let pp ppf t =
  Format.fprintf ppf
    "%s: n=%d init=%d domain=%d updates=%d gap=%g p_ins=%g lat=%a %s seed=%Ld"
    t.name t.n_sources t.init_size t.domain t.stream.Update_gen.n_updates
    t.stream.Update_gen.mean_gap t.stream.Update_gen.p_insert Latency.pp
    t.latency
    (match t.topology with
    | Distributed -> "distributed"
    | Centralized -> "centralized")
    t.seed;
  if t.read_rate > 0. then
    Format.fprintf ppf " reads[rate=%g slo=%g cap=%d%s]" t.read_rate
      t.staleness_slo t.read_cap
      (match t.read_burst with
      | Some b ->
          Format.asprintf " burst=%gx@@%g+%g" b.multiplier b.at b.duration
      | None -> "");
  if t.aux_mode <> Repro_warehouse.Aux_store.Off then
    Format.fprintf ppf " aux=%s"
      (Repro_warehouse.Aux_store.mode_to_string t.aux_mode);
  if t.join_strategy <> Repro_relational.Join_strategy.default then
    Format.fprintf ppf " join=%s"
      (Repro_relational.Join_strategy.to_string t.join_strategy);
  if Fault.is_faulty t.faults then
    Format.fprintf ppf " faults[%a]" Fault.pp t.faults
