(* The machine-readable benchmark document (BENCH.json, schema
   "repro-bench/1"): per-experiment wall-clock timings, microbenchmark
   throughputs and one registry entry per (algorithm, scenario) run with
   the full Metrics counter set plus latency histograms. The CI perf gate
   re-reads the file through the independent Jsonr decoder and runs
   [validate]. *)

open Repro_warehouse
open Repro_observability

let schema = "repro-bench/1"

(* One registry entry per completed run: every Metrics counter (flat,
   declaration order), the run-level outcome fields, and the run's
   histograms when observability was attached. *)
let register registry ?obs (r : Experiment.result) =
  let counters =
    List.map
      (fun (k, v) ->
        (k, (v :> Registry.counter)))
      (Metrics.fields r.metrics)
    @ [ ("sim_time", `Float r.sim_time);
        ("wall_seconds", `Float r.wall_seconds);
        ("events", `Int r.events);
        ("final_view_tuples", `Int r.final_view_tuples);
        ("completed", `Str (if r.completed then "true" else "false"));
        ("verdict",
         `Str
           (Format.asprintf "%a" Repro_consistency.Checker.pp_verdict
              r.verdict.Repro_consistency.Checker.verdict)) ]
  in
  Registry.add registry ~algorithm:r.algorithm
    ~scenario:r.scenario.Scenario.name ?obs ~counters ()

let make ~scale ~experiments ~micro registry =
  Jsonw.obj
    [ ("schema", Jsonw.str schema);
      ("scale", Jsonw.float scale);
      ("experiments",
       Jsonw.list
         (List.map
            (fun (id, wall) ->
              Jsonw.obj
                [ ("id", Jsonw.str id); ("wall_seconds", Jsonw.float wall) ])
            experiments));
      ("micro",
       Jsonw.list
         (List.map
            (fun (name, ns) ->
              Jsonw.obj
                [ ("name", Jsonw.str name); ("ns_per_run", Jsonw.float ns) ])
            micro));
      ("algorithms", Registry.to_json registry) ]

(* ————— validation (the CI perf gate) ————— *)

let ( let* ) = Result.bind

let field name j =
  match Jsonw.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let want_string name j =
  match Jsonw.member name j with
  | Some (Jsonw.String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S is not a string" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let want_list name j =
  match Jsonw.member name j with
  | Some (Jsonw.List l) -> Ok l
  | Some _ -> Error (Printf.sprintf "field %S is not a list" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let want_number name j =
  match Jsonw.member name j with
  | Some (Jsonw.Int _) -> Ok ()
  | Some (Jsonw.Float f) when Float.is_finite f -> Ok ()
  | Some (Jsonw.Float _) ->
      Error (Printf.sprintf "field %S is not finite" name)
  | Some _ -> Error (Printf.sprintf "field %S is not a number" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let iter_all f l =
  List.fold_left (fun acc x -> match acc with Ok () -> f x | e -> e) (Ok ()) l

let in_context ctx = Result.map_error (fun e -> ctx ^ ": " ^ e)

(* The maintenance counters present since the first BENCH.json — the
   floor every document of any era must clear. *)
let core_counters =
  [ "updates_incorporated"; "queries_sent"; "answers_received";
    "query_weight"; "answer_weight"; "installs"; "messages_per_update" ]

(* The counters every algorithm entry must report, whatever the run.
   The resilience/serving/self-maintenance counters are zero on runs
   that never exercise them but must always be present — a BENCH.json
   missing them predates the corresponding layer (validate a baseline
   of an older era with [~lenient:true]). *)
let required_counters =
  core_counters
  @ [ "query_timeouts"; "breaker_trips"; "stalled_updates"; "degraded_time";
      "reads_served"; "reads_stale"; "reads_shed"; "read_staleness_p50";
      "read_staleness_p99"; "local_answers"; "aux_bytes"; "aux_hit_rate";
      "unindexed_scans" ]

let required_histogram_stats = [ "count"; "p50"; "p90"; "p99"; "max" ]

let validate_histograms entry =
  match Jsonw.member "histograms" entry with
  | None -> Ok ()  (* a run without obs attached reports none *)
  | Some (Jsonw.Obj hists) ->
      iter_all
        (fun (hname, h) ->
          in_context (Printf.sprintf "histogram %S" hname)
            (iter_all (fun s -> want_number s h) required_histogram_stats))
        hists
  | Some _ -> Error "field \"histograms\" is not an object"

(* [soft] counters are checked but tolerated when absent: each miss is
   reported through [warn] instead of failing the gate, so a lenient
   pass is never silent about what it waved through. *)
let validate_algorithm ~required ~soft ~warn entry =
  let* algorithm = want_string "algorithm" entry in
  let* scenario = want_string "scenario" entry in
  in_context
    (Printf.sprintf "algorithm %S" algorithm)
    (let* counters = field "counters" entry in
     let* () = iter_all (fun c -> want_number c counters) required in
     List.iter
       (fun c ->
         match want_number c counters with
         | Ok () -> ()
         | Error _ ->
             warn
               (Printf.sprintf
                  "algorithm %S on %S: counter %S missing (accepted \
                   leniently; baseline predates it)"
                  algorithm scenario c))
       soft;
     validate_histograms entry)

let validate ?(lenient = false) ?(warn = fun _ -> ()) doc =
  let* s = want_string "schema" doc in
  if s <> schema then
    Error (Printf.sprintf "schema %S, expected %S" s schema)
  else
    let* () = want_number "scale" doc in
    let* experiments = want_list "experiments" doc in
    let* () =
      iter_all
        (fun e ->
          let* id = want_string "id" e in
          in_context
            (Printf.sprintf "experiment %S" id)
            (want_number "wall_seconds" e))
        experiments
    in
    let* micro = want_list "micro" doc in
    let* () =
      iter_all
        (fun m ->
          let* name = want_string "name" m in
          in_context
            (Printf.sprintf "micro %S" name)
            (want_number "ns_per_run" m))
        micro
    in
    let* algorithms = want_list "algorithms" doc in
    if algorithms = [] then Error "no algorithm entries"
    else
      let required, soft =
        if lenient then
          ( core_counters,
            List.filter
              (fun c -> not (List.mem c core_counters))
              required_counters )
        else (required_counters, [])
      in
      iter_all (validate_algorithm ~required ~soft ~warn) algorithms
