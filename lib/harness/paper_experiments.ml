open Repro_relational
open Repro_sim
open Repro_warehouse
open Repro_consistency
open Repro_workload

let buf_report f =
  let buf = Buffer.create 4096 in
  f buf;
  Buffer.contents buf

let line buf fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt

let stream ~updates ~gap =
  { Update_gen.default with n_updates = updates; mean_gap = gap;
    p_insert = 0.55 }

(* Unless an experiment overrides it, the join-attribute domain matches the
   relation size, so each join hop has an expansion factor of ~1 and view
   size stays flat as n grows (the paper's complexity axis is messages, not
   join blow-up). *)
let scenario ?(name = "exp") ?(n = 4) ?(init = 30) ?domain
    ?(topology = Scenario.Distributed) ?(seed = 1997L) ~updates ~gap () =
  let domain = Option.value domain ~default:init in
  { Scenario.name; n_sources = n; init_size = init; domain;
    stream = stream ~updates ~gap; latency = Latency.Uniform (0.5, 1.5);
    topology; faults = Fault.none; checkpoint_every = 8;
    queue_capacity = None; batch_max = 16; deadline = None; breaker_k = 3;
    probe_limit = 0; stall_cap = 256; read_rate = 0.; staleness_slo = 2.0;
    read_cap = 16; read_burst = None;
    aux_mode = Repro_warehouse.Aux_store.Off;
    join_strategy = Join_strategy.default; seed }

let mpu (r : Experiment.result) =
  (* round trips (query + answer) per incorporated update *)
  let m = r.Experiment.metrics in
  if m.Metrics.updates_incorporated = 0 then 0.
  else
    float_of_int (m.Metrics.queries_sent + m.Metrics.answers_received)
    /. float_of_int m.Metrics.updates_incorporated

let verdict_str (r : Experiment.result) =
  if r.Experiment.completed then
    Checker.verdict_to_string r.Experiment.verdict.Checker.verdict
  else "diverges"

(* Message cost cell: flagged when the run had to be cut off (C-strobe's
   combinatorial compensation keeps the queue growing faster than it
   drains). *)
let mpu_cell (r : Experiment.result) =
  if r.Experiment.completed then Report.f1 (mpu r)
  else Printf.sprintf ">%s*" (Report.f1 (mpu r))

(* ------------------------------------------------------------------ *)
(* Table 1                                                              *)
(* ------------------------------------------------------------------ *)

let t1 () =
  buf_report @@ fun buf ->
  line buf
    "T1. Paper Table 1, measured. Concurrent workload (mean gap 1.2, latency \
     U(0.5,1.5),";
  line buf
    "    100 updates, 55%% inserts); consistency verified by the checker; \
     message cost is";
  line buf "    (queries+answers)/update, measured at n = 2, 4, 6, 8 sources.";
  let ns = [ 2; 4; 6; 8 ] in
  let algorithms =
    [ ("eca", "centralized", "remote compensation; quadratic query size");
      ("strobe", "distributed", "unique keys; waits for quiescence");
      ("c-strobe", "distributed", "unique keys; remote compensation blow-up");
      ("sweep", "distributed", "local compensation");
      ("nested-sweep", "distributed", "local compensation; batches concurrent \
                                       updates");
      ("naive", "distributed", "no compensation (anomaly baseline)");
      ("recompute", "distributed", "ships whole database per update") ]
  in
  let rows =
    List.map
      (fun (name, arch, comment) ->
        let alg = Option.get (Experiment.algorithm_by_name name) in
        let topology =
          if name = "eca" then Scenario.Centralized else Scenario.Distributed
        in
        let results =
          List.map
            (fun n ->
              Experiment.run ~max_events:30_000
                (scenario ~name:("t1-" ^ name) ~n ~topology ~updates:100
                   ~gap:1.2 ())
                alg)
            ns
        in
        let verdicts =
          List.sort_uniq compare (List.map verdict_str results)
        in
        name :: arch
        :: String.concat "/" verdicts
        :: List.map mpu_cell results
        @ [ comment ])
      algorithms
  in
  Buffer.add_string buf
    (Report.table ~title:""
       ~headers:
         ([ "algorithm"; "architecture"; "consistency (measured)" ]
         @ List.map (fun n -> Printf.sprintf "msgs/upd n=%d" n) ns
         @ [ "comments" ])
       ~rows ());
  line buf
    "Paper's claims: ECA O(1), Strobe O(n), C-strobe O(n!) worst case, SWEEP \
     O(n),";
  line buf
    "Nested SWEEP O(n) amortized. SWEEP rows must read 'complete'; Nested \
     SWEEP and";
  line buf "Strobe 'strong'; ECA/recompute degrade to 'convergent' under \
            concurrency.";
  line buf
    "Cells marked >x* were cut off at 30k simulator events with the update \
     queue still";
  line buf
    "growing — C-strobe's compensation explosion in practice (its Table 1 \
     row says";
  line buf "'not scalable')."

(* ------------------------------------------------------------------ *)
(* Figure 5 / §5.2                                                      *)
(* ------------------------------------------------------------------ *)

let f5 () =
  buf_report @@ fun buf ->
  line buf
    "F5. Paper Figure 5 and the §5.2 walkthrough, replayed through the full \
     simulator";
  line buf "    (SWEEP, three concurrent updates, no keys in the view).";
  line buf "";
  let s2, d2 = (Paper_example.d_r2 ()) in
  let s3, d3 = (Paper_example.d_r3 ()) in
  let s1, d1 = (Paper_example.d_r1 ()) in
  let outcome =
    Experiment.run_scripted ~algorithm:(module Sweep : Algorithm.S)
      ~view:(Paper_example.view ())
      ~initial:(Paper_example.initial ())
      ~updates:[ (0.0, s2, d2); (1.4, s3, d3); (1.5, s1, d1) ]
      ()
  in
  let installs = Node.installs outcome.Experiment.node in
  let expected = [ (Paper_example.v1 ()); (Paper_example.v2 ()); (Paper_example.v3 ()) ] in
  let labels = [ "ΔR2 = +(3,5)"; "ΔR3 = −(7,8)"; "ΔR1 = −(2,3)" ] in
  let show_bag b = Format.asprintf "%a" Bag.pp b in
  let rows =
    ("initial state", show_bag (Paper_example.v0 ()), show_bag (Paper_example.v0 ()),
     "")
    :: List.map2
         (fun (label, want) (inst : Node.install_record) ->
           ( label, show_bag want, show_bag inst.Node.view_after,
             if Bag.equal want inst.Node.view_after then "ok" else "MISMATCH"
           ))
         (List.combine labels expected)
         installs
  in
  Buffer.add_string buf
    (Report.table ~title:""
       ~aligns:[ Report.L; Report.L; Report.L; Report.L ]
       ~headers:[ "event"; "paper's V"; "measured V"; "" ]
       ~rows:(List.map (fun (a, b, c, d) -> [ a; b; c; d ]) rows)
       ());
  let verdict = Experiment.check_scripted outcome in
  line buf "checker verdict: %s (%s)"
    (Checker.verdict_to_string verdict.Checker.verdict)
    verdict.Checker.detail;
  line buf "";
  line buf "warehouse narration (from the simulation trace):";
  List.iter
    (fun l ->
      if l.Trace.who = "warehouse" then
        line buf "  [%6.2f] %s" l.Trace.time l.Trace.text)
    (Trace.lines outcome.Experiment.trace)

(* ------------------------------------------------------------------ *)
(* Figure 2                                                             *)
(* ------------------------------------------------------------------ *)

let f2 () =
  buf_report @@ fun buf ->
  line buf
    "F2. Paper Figure 2 — on-line incremental view computation: the \
     warehouse extends";
  line buf
    "    ΔV hop by hop, left of the updated source first, then right \
     (n = 5, ΔR3).";
  line buf "";
  let view = Chain.view ~n:5 () in
  let rels =
    Array.init 5 (fun i ->
        Relation.of_tuples
          [ Chain.tuple ~key:0 ~a:i ~b:(i + 1);
            Chain.tuple ~key:1 ~a:i ~b:(i + 1) ])
  in
  let outcome =
    Experiment.run_scripted ~algorithm:(module Sweep : Algorithm.S) ~view
      ~initial:rels
      ~updates:[ (0.0, 2, Delta.insertion (Chain.tuple ~key:2 ~a:2 ~b:3)) ]
      ()
  in
  List.iter
    (fun l -> line buf "  [%6.2f] %-8s %s" l.Trace.time l.Trace.who l.Trace.text)
    (Trace.lines outcome.Experiment.trace);
  let m = Node.metrics outcome.Experiment.node in
  line buf "";
  line buf
    "queries %d, answers %d — one round trip per remote source, as in the \
     figure."
    m.Metrics.queries_sent m.Metrics.answers_received

(* ------------------------------------------------------------------ *)
(* E1 — message complexity                                              *)
(* ------------------------------------------------------------------ *)

let e1_scaling buf =
  line buf
    "E1a. Messages per update vs number of sources (random workload, mean \
     gap 1.5).";
  let ns = [ 2; 3; 4; 6; 8; 10 ] in
  let algos = [ "sweep"; "nested-sweep"; "strobe"; "c-strobe"; "recompute" ] in
  let rows =
    List.map
      (fun name ->
        let alg = Option.get (Experiment.algorithm_by_name name) in
        name
        :: List.map
             (fun n ->
               let r =
                 Experiment.run ~check:false ~max_events:30_000
                   (scenario ~name:("e1-" ^ name) ~n ~updates:80 ~gap:1.5 ())
                   alg
               in
               mpu_cell r)
             ns)
      algos
  in
  Buffer.add_string buf
    (Report.table ~title:""
       ~headers:("algorithm" :: List.map (fun n -> Printf.sprintf "n=%d" n) ns)
       ~rows ());
  line buf
    "SWEEP stays at exactly 2(n−1); C-strobe exceeds it as concurrent deletes \
     force";
  line buf "remote compensation; recompute matches 2n in count but ships \
            snapshots (see E2/weights)."

(* Scripted blow-up: one insert at source 0, K concurrent deletes at
   distinct other sources while the insert's query is in flight. *)
let e1_blowup buf =
  line buf "";
  line buf
    "E1b. C-strobe's compensation blow-up vs SWEEP, scripted: one insert at \
     R0 with K";
  line buf
    "     concurrent deletes at K distinct sources during its evaluation \
     (n = 8).";
  let n = 8 in
  let view = Chain.view ~n () in
  let mk_initial () =
    Array.init n (fun _ ->
        (* a = b = 0 everywhere: everything joins everything *)
        Relation.of_tuples
          [ Chain.tuple ~key:0 ~a:0 ~b:0; Chain.tuple ~key:1 ~a:0 ~b:0 ])
  in
  ignore view;
  let run algorithm k =
    let updates =
      (0.0, 0, Delta.insertion (Chain.tuple ~key:2 ~a:0 ~b:0))
      :: List.init k (fun j ->
             ( 1.2 +. (0.01 *. float_of_int j), j + 1,
               Delta.deletion (Chain.tuple ~key:1 ~a:0 ~b:0) ))
    in
    let outcome =
      Experiment.run_scripted ~trace_enabled:false ~algorithm ~view
        ~initial:(mk_initial ()) ~updates ()
    in
    let m = Node.metrics outcome.Experiment.node in
    (m.Metrics.queries_sent, Experiment.check_scripted outcome)
  in
  let ks = [ 0; 1; 2; 3; 4; 5 ] in
  let row name algorithm =
    name
    :: List.map
         (fun k ->
           let q, v = run algorithm k in
           Printf.sprintf "%d (%s)" q
             (Checker.verdict_to_string v.Checker.verdict))
         ks
  in
  Buffer.add_string buf
    (Report.table ~title:""
       ~headers:
         ("algorithm (queries, verdict)"
         :: List.map (fun k -> Printf.sprintf "K=%d" k) ks)
       ~rows:
         [ row "sweep" (module Sweep : Algorithm.S);
           row "c-strobe" (module C_strobe : Algorithm.S) ]
       ());
  line buf
    "SWEEP spends exactly 7 queries per update — 7(K+1) in total, linear, \
     all";
  line buf
    "compensation local. C-strobe's compensating queries multiply with K \
     (the paper";
  line buf "cites K^(n−2), optimized (n−1)!)."

let e1 () =
  buf_report @@ fun buf ->
  e1_scaling buf;
  e1_blowup buf

(* ------------------------------------------------------------------ *)
(* E2 — ECA query size growth                                           *)
(* ------------------------------------------------------------------ *)

let e2 () =
  buf_report @@ fun buf ->
  line buf
    "E2. ECA: compensating-query size vs update overlap (centralized, n = 3, \
     80 updates).";
  line buf
    "    'query tuples/update' is the shipped query payload; it grows as \
     updates overlap";
  line buf "    (quadratic in the number of interfering updates, §3).";
  let gaps = [ 10.0; 3.0; 1.0; 0.5; 0.25; 0.1 ] in
  let rows =
    List.map
      (fun gap ->
        let r =
          Experiment.run
            (scenario ~name:"e2" ~topology:Scenario.Centralized ~n:3
               ~updates:80 ~gap ())
            (module Eca : Algorithm.S)
        in
        let m = r.Experiment.metrics in
        [ Report.f2 gap;
          Report.f2
            (float_of_int m.Metrics.query_weight
            /. float_of_int (max 1 m.Metrics.updates_incorporated));
          string_of_int m.Metrics.queries_sent;
          verdict_str r ])
      gaps
  in
  Buffer.add_string buf
    (Report.table ~title:""
       ~headers:
         [ "mean gap"; "query tuples/update"; "queries"; "verdict" ]
       ~rows ());
  line buf
    "Round trips stay at one per update (the O(1) column of Table 1) while \
     the payload";
  line buf "inflates; intermediate states are only convergent under overlap."

(* ------------------------------------------------------------------ *)
(* E3 — staleness / quiescence                                          *)
(* ------------------------------------------------------------------ *)

let e3 () =
  buf_report @@ fun buf ->
  line buf
    "E3. Staleness and the quiescence requirement (n = 4, 120 updates, \
     inserts only so";
  line buf
    "    Strobe's action list can only be applied when its query set \
     drains). Staleness";
  line buf "    = sim-time from delivery to installation.";
  let algos = [ "sweep"; "nested-sweep"; "strobe" ] in
  let gaps = [ 5.0; 2.0; 1.0; 0.5; 0.25 ] in
  let rows =
    List.map
      (fun gap ->
        Report.f2 gap
        :: List.concat_map
             (fun name ->
               let alg = Option.get (Experiment.algorithm_by_name name) in
               let sc = scenario ~name:("e3-" ^ name) ~updates:120 ~gap () in
               let sc =
                 { sc with
                   Scenario.stream =
                     { sc.Scenario.stream with Update_gen.p_insert = 1.0 } }
               in
               let r = Experiment.run ~check:false sc alg in
               let m = r.Experiment.metrics in
               [ Report.f1 (Metrics.mean_staleness m);
                 string_of_int m.Metrics.installs ])
             algos)
      gaps
  in
  Buffer.add_string buf
    (Report.table ~title:""
       ~headers:
         ("mean gap"
         :: List.concat_map (fun a -> [ a ^ " stale"; a ^ " installs" ]) algos)
       ~rows ());
  line buf
    "Three regimes, all predicted by the paper: SWEEP serializes updates \
     (complete";
  line buf
    "consistency), so past its service rate the queue and staleness grow \
     without bound —";
  line buf
    "the pipelining optimization §5.3 sketches exists precisely for this. \
     Nested SWEEP";
  line buf
    "batches interfering updates and stays current. Strobe evaluates \
     queries in parallel";
  line buf
    "but may install only at quiescence: as the gap shrinks its installs \
     collapse toward";
  line buf
    "one giant deferred batch (the unbounded-trailing behaviour §5.3 \
     criticizes)."

(* ------------------------------------------------------------------ *)
(* E4 — Nested SWEEP amortization                                       *)
(* ------------------------------------------------------------------ *)

let e4 () =
  buf_report @@ fun buf ->
  line buf
    "E4. Nested SWEEP amortization vs concurrency (n = 4, 120 updates): \
     messages per";
  line buf "    update and installs (state transitions) per update.";
  let gaps = [ 5.0; 2.0; 1.0; 0.5; 0.25; 0.1 ] in
  let rows =
    List.map
      (fun gap ->
        let sweep =
          Experiment.run ~check:false
            (scenario ~name:"e4-sweep" ~updates:120 ~gap ())
            (module Sweep : Algorithm.S)
        in
        let nested =
          Experiment.run ~check:false
            (scenario ~name:"e4-nested" ~updates:120 ~gap ())
            (module Nested_sweep : Algorithm.S)
        in
        let nm = nested.Experiment.metrics in
        let batch =
          float_of_int nm.Metrics.updates_incorporated
          /. float_of_int (max 1 nm.Metrics.installs)
        in
        [ Report.f2 gap; Report.f1 (mpu sweep); Report.f1 (mpu nested);
          Report.f2 batch; string_of_int nm.Metrics.recursions;
          string_of_int nm.Metrics.max_depth ])
      gaps
  in
  Buffer.add_string buf
    (Report.table ~title:""
       ~headers:
         [ "mean gap"; "sweep msgs/upd"; "nested msgs/upd";
           "nested batch size"; "recursions"; "max depth" ]
       ~rows ());
  line buf
    "As concurrency rises Nested SWEEP folds more updates into each sweep: \
     messages";
  line buf
    "per update drop below SWEEP's 2(n−1) while SWEEP's stay constant — the \
     paper's";
  line buf "amortization claim (§6.2)."

(* ------------------------------------------------------------------ *)
(* E5 — adversarial alternation                                         *)
(* ------------------------------------------------------------------ *)

let e5 () =
  buf_report @@ fun buf ->
  line buf
    "E5. Adversarial alternating interference (updates alternate between \
     the chain's";
  line buf
    "    endpoints, n = 4): Nested SWEEP's recursion oscillates (§6.2); a \
     depth bound";
  line buf "    forces termination, falling back to SWEEP handling.";
  let adversarial gap =
    { (scenario ~name:"e5" ~updates:80 ~gap ()) with
      Scenario.stream =
        { (stream ~updates:80 ~gap) with
          Update_gen.placement = Update_gen.Alternating (0, 3) } }
  in
  let gaps = [ 1.0; 0.5; 0.25; 0.15 ] in
  let rows =
    List.concat_map
      (fun gap ->
        List.map
          (fun (label, alg) ->
            let r = Experiment.run (adversarial gap) alg in
            let m = r.Experiment.metrics in
            [ Report.f2 gap; label; Report.f1 (mpu r);
              string_of_int m.Metrics.recursions;
              string_of_int m.Metrics.max_depth;
              string_of_int m.Metrics.fallbacks; verdict_str r ])
          [ ("sweep", (module Sweep : Algorithm.S));
            ("nested (d=64)", (module Nested_sweep : Algorithm.S));
            ("nested (d=4)", Nested_sweep.with_max_depth 4) ])
      gaps
  in
  Buffer.add_string buf
    (Report.table ~title:""
       ~headers:
         [ "mean gap"; "algorithm"; "msgs/upd"; "recursions"; "max depth";
           "fallbacks"; "verdict" ]
       ~rows ());
  line buf
    "Tighter alternation drives the recursion deeper; the bounded variant \
     trades batch";
  line buf "size for guaranteed termination exactly as §6.2 suggests."

(* ------------------------------------------------------------------ *)
(* E6 — on-line error correction exactness                              *)
(* ------------------------------------------------------------------ *)

let e6 () =
  buf_report @@ fun buf ->
  line buf
    "E6. On-line error correction (§4): SWEEP's local compensations track \
     the actual";
  line buf
    "    interference rate, and correctness never degrades — while the \
     naive baseline";
  line buf "    corrupts the view as soon as interference appears (n = 4, \
            100 updates).";
  let gaps = [ 50.0; 3.0; 1.0; 0.5; 0.25 ] in
  let rows =
    List.map
      (fun gap ->
        (* the widest spacing is run with deterministic gaps so it is a
           true zero-interference control *)
        let sc name =
          let base = scenario ~name ~updates:100 ~gap () in
          { base with
            Scenario.stream =
              { base.Scenario.stream with
                Update_gen.fixed_gap = gap >= 10. } }
        in
        let sweep = Experiment.run (sc "e6-sweep") (module Sweep : Algorithm.S) in
        let naive = Experiment.run (sc "e6-naive") (module Naive : Algorithm.S) in
        let sm = sweep.Experiment.metrics in
        [ Report.f2 gap;
          Report.f2
            (float_of_int sm.Metrics.compensations
            /. float_of_int (max 1 sm.Metrics.updates_incorporated));
          verdict_str sweep; verdict_str naive;
          string_of_int naive.Experiment.metrics.Metrics.negative_installs ])
      gaps
  in
  Buffer.add_string buf
    (Report.table ~title:""
       ~headers:
         [ "mean gap"; "sweep compensations/upd"; "sweep verdict";
           "naive verdict"; "naive negative installs" ]
       ~rows ());
  line buf
    "No interference (large gaps): zero compensations and even naive is \
     complete.";
  line buf
    "Rising interference: compensations scale with it, SWEEP stays complete, \
     naive";
  line buf "goes inconsistent and can even drive view counts negative."

(* ------------------------------------------------------------------ *)
(* A1 — ablation: the §5.3 parallel-sweep optimization                  *)
(* ------------------------------------------------------------------ *)

let a1 () =
  buf_report @@ fun buf ->
  line buf
    "A1. Ablation of the §5.3 optimization: left and right sweeps executed \
     in parallel";
  line buf
    "    and merged as ΔV_left ⋈ ΔV_right. Same messages, same complete \
     consistency,";
  line buf
    "    shorter critical path — so lower staleness and higher sustainable \
     update rates.";
  let rows =
    List.concat_map
      (fun n ->
        List.map
          (fun (label, alg) ->
            let r =
              Experiment.run (scenario ~name:"a1" ~n ~updates:100 ~gap:1.0 ())
                alg
            in
            let m = r.Experiment.metrics in
            [ string_of_int n; label; Report.f1 (mpu r);
              Report.f1 (Metrics.mean_staleness m);
              Report.f1 m.Metrics.staleness_max; verdict_str r ])
          [ ("sweep", (module Sweep : Algorithm.S));
            ("sweep-parallel", (module Sweep_parallel : Algorithm.S)) ])
      [ 3; 5; 7; 9 ]
  in
  Buffer.add_string buf
    (Report.table ~title:""
       ~headers:
         [ "n"; "algorithm"; "msgs/upd"; "staleness mean"; "staleness max";
           "verdict" ]
       ~rows ());
  line buf
    "The parallel variant keeps SWEEP's exact 2(n−1) messages and complete \
     consistency";
  line buf
    "while cutting the per-update critical path from n−1 round trips to \
     max(i, n−1−i)."

(* ------------------------------------------------------------------ *)
(* A2 — ablation: the §5.3 pipelining optimization                      *)
(* ------------------------------------------------------------------ *)

let a2 () =
  buf_report @@ fun buf ->
  line buf
    "A2. Ablation of §5.3's pipelining: up to W ViewChange sweeps overlap, \
     installs stay";
  line buf
    "    in delivery order. Staleness vs pipeline width under a fast stream \
     (n = 4,";
  line buf "    150 updates, mean gap 0.5 ≪ sweep latency).";
  let run alg =
    Experiment.run (scenario ~name:"a2" ~n:4 ~updates:150 ~gap:0.5 ()) alg
  in
  let rows =
    List.map
      (fun (label, alg) ->
        let r = run alg in
        let m = r.Experiment.metrics in
        [ label; Report.f1 (mpu r); Report.f1 (Metrics.mean_staleness m);
          Report.f1 m.Metrics.staleness_max;
          string_of_int m.Metrics.max_queue; verdict_str r ])
      [ ("sweep", (module Sweep : Algorithm.S));
        ("pipelined W=2", Sweep_pipelined.with_window 2);
        ("pipelined W=4", Sweep_pipelined.with_window 4);
        ("pipelined W=8", (module Sweep_pipelined : Algorithm.S));
        ("pipelined W=16", Sweep_pipelined.with_window 16);
        ("nested-sweep", (module Nested_sweep : Algorithm.S)) ]
  in
  Buffer.add_string buf
    (Report.table ~title:""
       ~headers:
         [ "algorithm"; "msgs/upd"; "staleness mean"; "staleness max";
           "max queue"; "verdict" ]
       ~rows ());
  line buf
    "Widening the pipeline multiplies the warehouse's service rate at \
     unchanged message";
  line buf
    "cost and *unchanged complete consistency* — curing the serial \
     bottleneck E3 exposed";
  line buf
    "— while Nested SWEEP achieves currency differently, by weakening to \
     strong";
  line buf "consistency and batching."

(* ------------------------------------------------------------------ *)
(* A3 — extension: type-3 global transactions                           *)
(* ------------------------------------------------------------------ *)

let a3 () =
  buf_report @@ fun buf ->
  line buf
    "A3. Type-3 (multi-source) transactions — §2 defers them to the Strobe \
     paper's";
  line buf
    "    technique. Global SWEEP buffers installs while a transaction is \
     partially";
  line buf
    "    incorporated, so no view state exposes half a transaction; plain \
     SWEEP installs";
  line buf "    each part separately. (n = 4, 100 updates, 30%% global.)";
  let sc =
    let base = scenario ~name:"a3" ~n:4 ~updates:100 ~gap:1.0 () in
    { base with
      Scenario.stream =
        { base.Scenario.stream with Update_gen.p_global = 0.3 } }
  in
  let rows =
    List.map
      (fun (label, alg) ->
        let r = Experiment.run sc alg in
        let m = r.Experiment.metrics in
        [ label; verdict_str r; string_of_int m.Metrics.installs;
          Report.f2
            (float_of_int m.Metrics.updates_incorporated
            /. float_of_int (max 1 m.Metrics.installs));
          Report.f1 (mpu r) ])
      [ ("sweep (splits txns)", (module Sweep : Algorithm.S));
        ("sweep-global (atomic)", (module Sweep_global : Algorithm.S)) ]
  in
  Buffer.add_string buf
    (Report.table ~title:""
       ~headers:
         [ "algorithm"; "verdict"; "installs"; "updates/install"; "msgs/upd" ]
       ~rows ());
  line buf
    "Both remain exact; Global SWEEP trades complete for strong consistency \
     exactly";
  line buf
    "when transactions force batching, and the test suite asserts no \
     install ever";
  line buf "splits a transaction."

(* ------------------------------------------------------------------ *)
(* E7 — payload sizes vs join selectivity                               *)
(* ------------------------------------------------------------------ *)

let e7 () =
  buf_report @@ fun buf ->
  line buf
    "E7. The §1 trade-off, measured: incremental maintenance moves work \
     from shipping";
  line buf
    "    data to answering queries. Payload tuples per update vs join \
     expansion factor";
  line buf
    "    (|R| / domain; factor 1 keeps the view flat, larger factors blow \
     the join up).";
  line buf "    n = 3, |R| = 30, 60 updates, mean gap 2.";
  let rows =
    List.map
      (fun domain ->
        let factor = 30. /. float_of_int domain in
        let run alg =
          Experiment.run ~check:false
            (scenario ~name:"e7" ~n:3 ~init:30 ~domain ~updates:60 ~gap:2. ())
            alg
        in
        let sweep = run (module Sweep : Algorithm.S) in
        let recompute = run (module Recompute : Algorithm.S) in
        let payload (r : Experiment.result) =
          let m = r.Experiment.metrics in
          float_of_int (m.Metrics.query_weight + m.Metrics.answer_weight)
          /. float_of_int (max 1 m.Metrics.updates_incorporated)
        in
        [ Report.f2 factor;
          Report.f1 (payload sweep);
          Report.f1 (payload recompute);
          string_of_int sweep.Experiment.final_view_tuples ])
      [ 60; 30; 15; 10; 6 ]
  in
  Buffer.add_string buf
    (Report.table ~title:""
       ~headers:
         [ "expansion factor"; "sweep payload/upd"; "recompute payload/upd";
           "view tuples" ]
       ~rows ());
  line buf
    "SWEEP ships only the partial join of the changed tuple — tiny at \
     factor ≤ 1 and";
  line buf
    "growing with the join's fan-out — while recomputation always ships \
     every base";
  line buf
    "relation. The crossover the paper's introduction describes sits where \
     a delta's";
  line buf "join expansion approaches the database size itself."

(* ------------------------------------------------------------------ *)
(* E8 — the analytical model vs the simulator                           *)
(* ------------------------------------------------------------------ *)

let e8 () =
  buf_report @@ fun buf ->
  line buf
    "E8. The analytical model (cf. the [Yur97] model §6.2 cites) vs the \
     simulator:";
  line buf
    "    M/G/1 service 2(n−1)·E[lat] per sweep, P–K staleness below \
     saturation, a";
  line buf
    "    fluid model above it, and per-hop interference probabilities. \
     n = 4, 150";
  line buf "    updates, latency U(0.5,1.5).";
  let rows =
    List.map
      (fun gap ->
        let sc = scenario ~name:"e8" ~n:4 ~updates:150 ~gap () in
        let model = Analytic.sweep (Analytic.inputs_of_scenario sc) in
        let r = Experiment.run ~check:false sc (module Sweep : Algorithm.S) in
        let m = r.Experiment.metrics in
        [ Report.f2 gap;
          Report.f2 model.Analytic.utilization;
          Report.f1 model.Analytic.mean_staleness;
          Report.f1 (Metrics.mean_staleness m);
          Report.f2 model.Analytic.compensations_per_update;
          Report.f2
            (float_of_int m.Metrics.compensations
            /. float_of_int (max 1 m.Metrics.updates_incorporated)) ])
      [ 30.0; 12.0; 8.0; 6.5; 3.0; 1.0 ]
  in
  Buffer.add_string buf
    (Report.table ~title:""
       ~headers:
         [ "mean gap"; "ρ (model)"; "staleness model"; "staleness sim";
           "comps/upd model"; "comps/upd sim" ]
       ~rows ());
  line buf
    "The model tracks the simulator through both regimes: Pollaczek–\
     Khinchine below";
  line buf
    "saturation (ρ < 1), the fluid overload growth above it, and the \
     interference";
  line buf
    "probabilities that drive compensation counts. Deviations stay within \
     the model's";
  line buf "first-order assumptions (Poisson arrivals, independent hops)."

(* ------------------------------------------------------------------ *)
(* E9 — latency-distribution sensitivity                                *)
(* ------------------------------------------------------------------ *)

let e9 () =
  buf_report @@ fun buf ->
  line buf
    "E9. Latency-variance sensitivity: same mean per-hop latency (1.0), \
     different";
  line buf
    "    distributions. Message counts are distribution-independent; \
     staleness is not —";
  line buf
    "    the M/G/1 model's (1+cv²) factor predicts the spread. n = 4, 150 \
     updates,";
  line buf "    mean gap 8 (ρ = 0.75).";
  let rows =
    List.map
      (fun (label, latency) ->
        let sc =
          { (scenario ~name:"e9" ~n:4 ~updates:150 ~gap:8. ()) with
            Scenario.latency }
        in
        let model = Analytic.sweep (Analytic.inputs_of_scenario sc) in
        let r = Experiment.run ~check:false sc (module Sweep : Algorithm.S) in
        let m = r.Experiment.metrics in
        [ label;
          Report.f2
            (Analytic.inputs_of_scenario sc).Analytic.var_latency;
          Report.f1 model.Analytic.mean_staleness;
          Report.f1 (Metrics.mean_staleness m);
          Report.f2
            (float_of_int m.Metrics.compensations
            /. float_of_int (max 1 m.Metrics.updates_incorporated)) ])
      [ ("fixed(1.0)", Latency.Fixed 1.0);
        ("uniform(0.5,1.5)", Latency.Uniform (0.5, 1.5));
        ("uniform(0,2)", Latency.Uniform (0., 2.));
        ("exponential(1.0)", Latency.Exponential 1.0) ]
  in
  Buffer.add_string buf
    (Report.table ~title:""
       ~headers:
         [ "latency model"; "per-hop var"; "staleness model"; "staleness sim";
           "comps/upd sim" ]
       ~rows ());
  line buf
    "Higher per-hop variance nudges staleness up (the P–K (1+cv²) factor), \
     but only";
  line buf
    "mildly: a sweep sums 2(n−1) independent latency samples, so its \
     service-time cv²";
  line buf
    "shrinks with n — SWEEP is naturally robust to latency jitter, and \
     model and";
  line buf "simulator agree on that. Message counts are identical in all \
            four rows."

let all () =
  [ ("t1", t1 ()); ("f5", f5 ()); ("f2", f2 ()); ("e1", e1 ()); ("e2", e2 ());
    ("e3", e3 ()); ("e4", e4 ()); ("e5", e5 ()); ("e6", e6 ()); ("e7", e7 ()); ("e8", e8 ()); ("e9", e9 ()); ("a1", a1 ()); ("a2", a2 ()); ("a3", a3 ()) ]

let by_id = function
  | "t1" -> Some t1
  | "f2" -> Some f2
  | "f5" -> Some f5
  | "e1" -> Some e1
  | "e2" -> Some e2
  | "e3" -> Some e3
  | "e4" -> Some e4
  | "e5" -> Some e5
  | "e6" -> Some e6
  | "e7" -> Some e7
  | "e8" -> Some e8
  | "e9" -> Some e9
  | "a1" -> Some a1
  | "a2" -> Some a2
  | "a3" -> Some a3
  | _ -> None
