(** The machine-readable benchmark document (BENCH.json).

    Schema ["repro-bench/1"]:
    {v
    { "schema": "repro-bench/1",
      "scale": 1.0,
      "experiments": [ { "id": "e1", "wall_seconds": 0.42 }, … ],
      "micro":       [ { "name": "join/eval", "ns_per_run": 812.3 }, … ],
      "algorithms":  [ { "algorithm": "sweep", "scenario": "concurrent",
                         "counters": { …all Metrics fields, run outcome… },
                         "histograms": { "staleness": { count, mean, min,
                           max, p50, p90, p99, buckets_per_decade }, … },
                         "span_count": 123 }, … ] }
    v}

    [validate] is the CI perf gate: it re-reads the document (through the
    independent {!Repro_observability.Jsonr} decoder) and fails on any
    missing or malformed required field. *)

open Repro_observability

val schema : string

(** Register one completed run: all {!Repro_warehouse.Metrics.fields}
    counters plus the
    run-level outcome (sim time, wall clock, events, view size, verdict),
    and — when [obs] is given — the run's histograms and span count. *)
val register :
  Registry.t -> ?obs:Obs.t -> Experiment.result -> Registry.entry

(** Assemble the document. [experiments] are [(id, wall_seconds)];
    [micro] are [(name, ns_per_run)]. *)
val make :
  scale:float ->
  experiments:(string * float) list ->
  micro:(string * float) list ->
  Registry.t ->
  Jsonw.t

(** [validate doc] checks the schema tag, that every experiment / micro
    row has its timing, that at least one algorithm entry exists, and
    that each entry carries the required counters
    (updates_incorporated, queries_sent, answers_received, query_weight,
    answer_weight, installs, messages_per_update plus the resilience,
    serving and self-maintenance counters) and, for each histogram
    present, finite count/p50/p90/p99/max.

    [~lenient:true] requires only the core maintenance counters —
    use it for a [--against] baseline generated before a newer layer
    added its counters (e.g. BENCH_7.json predates local_answers /
    aux_bytes / aux_hit_rate). Freshly generated documents are always
    validated strictly. A lenient pass is never silent: every missing
    non-core counter is reported through [warn] (one line each; default
    ignores them — [bench_check] forwards them to stderr). *)
val validate :
  ?lenient:bool -> ?warn:(string -> unit) -> Jsonw.t -> (unit, string) result
