(** Executes a scenario under one maintenance algorithm and verifies the
    outcome.

    Wiring (paper Fig. 1): one FIFO channel from the warehouse to each
    source and one back. Update notices and query answers from a source
    share the same upstream channel — SWEEP's interference detection
    depends on that ordering. In the centralized topology a single
    {!Repro_source.Eca_site} stands in for all sources and every message
    is routed to it. The run drains completely (the update stream is
    finite), then the consistency checker classifies the install
    history. *)

open Repro_sim
open Repro_warehouse
open Repro_consistency

type result = {
  scenario : Scenario.t;
  algorithm : string;
  metrics : Metrics.t;
  verdict : Checker.result;
  sim_time : float;  (** sim time at drain *)
  wall_seconds : float;  (** host time the run took *)
  final_view_tuples : int;
  final_view : Repro_relational.Bag.t;
      (** final materialized view (copied) — lets tests compare runs,
          e.g. crash-recovery vs crash-free, for bit-identical results *)
  events : int;  (** simulator events executed *)
  completed : bool;
      (** false when the run was cut off by [max_events] — how the harness
          reports C-strobe's divergence without hanging *)
  degraded : bool;
      (** the run ended with at least one circuit breaker not closed
          (source outage outlasting the run): parked updates remain in
          the queue and the verdict was computed with
          [Checker.check ~degraded:true] *)
  reads : Repro_serving.Server.record list;
      (** the serving tier's read log in serve order (shed reads
          included); [] when [scenario.read_rate = 0] *)
  sessions : Checker.session_report option;
      (** session-guarantee grades (monotonic reads, read-your-writes)
          over the served reads; [None] without a serving tier *)
}

(** Outcome of a {!run_scripted} run, exposing everything needed for
    assertions and walkthroughs. *)
type scripted_outcome = {
  node : Node.t;
  view : Repro_relational.View_def.t;
  initial_sources : Repro_relational.Relation.t array;
  trace : Trace.t;
  engine : Engine.t;
}

(** [run_scripted ~algorithm ~view ~initial ~updates ()] runs an explicit
    update schedule [(time, source, delta), …] over the distributed
    topology with a fixed per-hop latency (default 1.0) — deterministic
    interleavings for tests, walkthroughs and figure regeneration. *)
val run_scripted :
  ?latency:float ->
  ?seed:int64 ->
  ?trace_enabled:bool ->
  ?obs:Repro_observability.Obs.t ->
  ?aux_mode:Repro_warehouse.Aux_store.mode ->
  ?join_strategy:Repro_relational.Join_strategy.t ->
  algorithm:(module Repro_warehouse.Algorithm.S) ->
  view:Repro_relational.View_def.t ->
  initial:Repro_relational.Relation.t array ->
  updates:(float * int * Repro_relational.Delta.t) list ->
  unit ->
  scripted_outcome

(** Consistency verdict for a scripted run. *)
val check_scripted : scripted_outcome -> Checker.result

(** [run scenario algorithm] executes to quiescence.
    [check] (default true) runs the consistency checker (it needs
    per-install snapshots; disable for very long runs).
    [trace] collects a simulation trace when provided.
    [obs] attaches structured observability (spans, histograms,
    transport events); its clock is bound to the engine's virtual time.
    Recording never consumes randomness or schedules events, so enabling
    it cannot perturb the simulation.
    [max_events] bounds the simulation; a run cut off by it has
    [completed = false] and skips the checker. *)
val run :
  ?check:bool ->
  ?trace:Trace.t ->
  ?obs:Repro_observability.Obs.t ->
  ?max_events:int ->
  Scenario.t ->
  (module Algorithm.S) ->
  result

(** All algorithms applicable to a scenario (ECA only in the centralized
    topology; every algorithm is available there). *)
val algorithms_for : Scenario.t -> (string * (module Algorithm.S)) list

(** Look an algorithm up by name (["sweep"], ["sweep-parallel"],
    ["sweep-batched"], ["nested-sweep"], ["strobe"], ["c-strobe"],
    ["eca"], ["naive"], ["recompute"]). [batch_max] (default 16)
    parameterizes ["sweep-batched"] only. *)
val algorithm_by_name : ?batch_max:int -> string -> (module Algorithm.S) option

val pp_result : Format.formatter -> result -> unit
