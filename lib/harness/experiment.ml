open Repro_relational
open Repro_sim
open Repro_protocol
open Repro_source
open Repro_warehouse
open Repro_consistency
open Repro_workload

type result = {
  scenario : Scenario.t;
  algorithm : string;
  metrics : Metrics.t;
  verdict : Checker.result;
  sim_time : float;
  wall_seconds : float;
  final_view_tuples : int;
  events : int;
  completed : bool;
}

let algorithm_by_name = function
  | "sweep" -> Some (module Sweep : Algorithm.S)
  | "sweep-parallel" -> Some (module Sweep_parallel : Algorithm.S)
  | "sweep-pipelined" -> Some (module Sweep_pipelined : Algorithm.S)
  | "sweep-global" -> Some (module Sweep_global : Algorithm.S)
  | "nested-sweep" -> Some (module Nested_sweep : Algorithm.S)
  | "strobe" -> Some (module Strobe : Algorithm.S)
  | "c-strobe" -> Some (module C_strobe : Algorithm.S)
  | "eca" -> Some (module Eca : Algorithm.S)
  | "naive" -> Some (module Naive : Algorithm.S)
  | "recompute" -> Some (module Recompute : Algorithm.S)
  | _ -> None

let algorithms_for (s : Scenario.t) =
  let base =
    [ ("sweep", (module Sweep : Algorithm.S));
      ("sweep-parallel", (module Sweep_parallel : Algorithm.S));
      ("sweep-pipelined", (module Sweep_pipelined : Algorithm.S));
      ("nested-sweep", (module Nested_sweep : Algorithm.S));
      ("strobe", (module Strobe : Algorithm.S));
      ("c-strobe", (module C_strobe : Algorithm.S));
      ("naive", (module Naive : Algorithm.S));
      ("recompute", (module Recompute : Algorithm.S)) ]
  in
  match s.topology with
  | Scenario.Distributed -> base
  | Scenario.Centralized -> base @ [ ("eca", (module Eca : Algorithm.S)) ]

let run ?(check = true) ?(trace = Trace.create ()) ?max_events
    (scenario : Scenario.t) (algorithm : (module Algorithm.S)) =
  let wall_start = Unix.gettimeofday () in
  let engine = Engine.create ~seed:scenario.seed () in
  let rng = Engine.rng engine in
  let view = Chain.view ~n:scenario.n_sources () in
  let data_rng = Rng.split rng in
  let initial =
    Chain.populate view ~size:scenario.init_size ~domain:scenario.domain
      data_rng
  in
  let initial_copy = Array.map Relation.copy initial in
  let initial_view = Algebra.eval view (fun i -> initial.(i)) in
  let node = ref None in
  let deliver msg =
    match !node with
    | Some n -> Node.deliver n msg
    | None -> invalid_arg "Experiment.run: message before wiring complete"
  in
  let n = scenario.n_sources in
  let faulty = Fault.is_faulty scenario.faults in
  (* Crash windows close a source's network boundary in both directions;
     the transport keeps retransmitting into the partition and gets
     through once it heals. *)
  let gate i () =
    not (Fault.crashed scenario.faults ~source:i ~time:(Engine.now engine))
  in
  let tconfig = Transport.config_for scenario.latency in
  (* per-link stat readers, type-erased (up links carry to_warehouse,
     down links to_source) *)
  let link_stats : (unit -> Transport.stats * int) list ref = ref [] in
  let reliable_link i ~deliver =
    let l =
      Transport.connect ~config:tconfig ~faults:scenario.faults.Fault.link
        ~gate:(gate i) engine ~latency:scenario.latency ~rng:(Rng.split rng)
        ~deliver ()
    in
    link_stats :=
      (fun () -> (Transport.link_stats l, Transport.link_frames_lost l))
      :: !link_stats;
    Transport.link_send l
  in
  (* apply: how the workload performs an update at "source i". *)
  let send_to, apply =
    match scenario.topology with
    | Scenario.Distributed ->
        let up_send =
          Array.init n (fun i ->
              if faulty then (reliable_link i ~deliver : Message.to_warehouse -> unit)
              else
                let ch =
                  Channel.create engine ~latency:scenario.latency
                    ~rng:(Rng.split rng) ~deliver
                in
                Channel.send ch)
        in
        let sources =
          Array.init n (fun i ->
              Source_node.create engine ~view ~id:i ~init:initial.(i)
                ~send:(fun m -> up_send.(i) m)
                ~trace)
        in
        let down_send =
          Array.init n (fun i ->
              let deliver m = Source_node.handle sources.(i) m in
              if faulty then (reliable_link i ~deliver : Message.to_source -> unit)
              else
                let ch =
                  Channel.create engine ~latency:scenario.latency
                    ~rng:(Rng.split rng) ~deliver
                in
                Channel.send ch)
        in
        ( (fun i msg -> down_send.(i) msg),
          fun ~source ~global delta ->
            let global =
              Option.map
                (fun (gid, parts) -> { Repro_protocol.Message.gid; parts })
                global
            in
            ignore (Source_node.local_update ?global sources.(source) delta) )
    | Scenario.Centralized ->
        (* the single site plays the role of "source 0" for crash windows *)
        let mk_send i ~deliver =
          if faulty then reliable_link i ~deliver
          else
            let ch =
              Channel.create engine ~latency:scenario.latency
                ~rng:(Rng.split rng) ~deliver
            in
            Channel.send ch
        in
        let up = mk_send 0 ~deliver in
        let site =
          Eca_site.create engine ~view ~inits:initial ~send:up ~trace
        in
        let down = mk_send 0 ~deliver:(fun m -> Eca_site.handle site m) in
        ( (fun _i msg -> down msg),
          fun ~source ~global:_ delta ->
            (* the centralized site applies type-3 parts as local updates *)
            ignore (Eca_site.local_update site ~source delta) )
  in
  let warehouse =
    Node.create engine ~view ~algorithm ~send:send_to ~init:initial_view
      ~record_history:check ~trace ()
  in
  node := Some warehouse;
  Update_gen.drive engine (Rng.split rng) scenario.stream ~view
    ~initial:initial_copy ~apply ();
  let completed =
    match Engine.run ?max_events engine with
    | `Drained -> true
    | `Max_events -> false
    | `Until -> assert false
  in
  if completed && not (Node.idle warehouse) then
    invalid_arg
      (Printf.sprintf
         "Experiment.run: %s did not quiesce after the event queue drained"
         (Node.algorithm_name warehouse));
  (* fold the transport layer's counters into the run's metrics *)
  let m = Node.metrics warehouse in
  List.iter
    (fun read ->
      let s, lost = read () in
      m.Metrics.retransmissions <-
        m.Metrics.retransmissions + s.Transport.retransmissions;
      m.Metrics.timeouts <- m.Metrics.timeouts + s.Transport.timeouts;
      m.Metrics.duplicates_suppressed <-
        m.Metrics.duplicates_suppressed + s.Transport.duplicates_suppressed;
      m.Metrics.recoveries <- m.Metrics.recoveries + s.Transport.recoveries;
      m.Metrics.frames_lost <- m.Metrics.frames_lost + lost)
    !link_stats;
  let verdict =
    if check && completed then
      Checker.check view
        { Checker.initial_sources = initial_copy;
          deliveries = Node.deliveries warehouse;
          installs =
            List.map
              (fun (r : Node.install_record) -> (r.txns, r.view_after))
              (Node.installs warehouse);
          final_view = Node.view_contents warehouse }
    else
      { Checker.verdict = Checker.Convergent; detail = "not checked";
        states_checked = 0 }
  in
  { scenario; algorithm = Node.algorithm_name warehouse;
    metrics = Node.metrics warehouse; verdict; sim_time = Engine.now engine;
    wall_seconds = Unix.gettimeofday () -. wall_start;
    final_view_tuples = Bag.total (Node.view_contents warehouse);
    events = Engine.executed engine; completed }

type scripted_outcome = {
  node : Node.t;
  view : Repro_relational.View_def.t;
  initial_sources : Repro_relational.Relation.t array;
  trace : Trace.t;
  engine : Engine.t;
}

let run_scripted ?(latency = 1.0) ?(seed = 7L) ?(trace_enabled = true)
    ~algorithm ~view ~initial ~updates () =
  let open Repro_relational in
  let engine = Engine.create ~seed () in
  let rng = Engine.rng engine in
  let trace = Trace.create ~enabled:trace_enabled () in
  let initial_copy = Array.map Relation.copy initial in
  let initial_view = Algebra.eval view (fun i -> initial.(i)) in
  let node = ref None in
  let deliver msg = Node.deliver (Option.get !node) msg in
  let n = View_def.n_sources view in
  let up =
    Array.init n (fun _ ->
        Channel.create engine ~latency:(Latency.Fixed latency)
          ~rng:(Rng.split rng) ~deliver)
  in
  let sources =
    Array.init n (fun i ->
        Source_node.create engine ~view ~id:i ~init:initial.(i)
          ~send:(fun m -> Channel.send up.(i) m)
          ~trace)
  in
  let down =
    Array.init n (fun i ->
        Channel.create engine ~latency:(Latency.Fixed latency)
          ~rng:(Rng.split rng)
          ~deliver:(fun m -> Source_node.handle sources.(i) m))
  in
  let warehouse =
    Node.create engine ~view ~algorithm
      ~send:(fun i msg -> Channel.send down.(i) msg)
      ~init:initial_view ~trace ()
  in
  node := Some warehouse;
  List.iter
    (fun (time, source, delta) ->
      Engine.at engine ~time (fun () ->
          ignore (Source_node.local_update sources.(source) delta)))
    updates;
  (match Engine.run engine with `Drained -> () | _ -> assert false);
  { node = warehouse; view; initial_sources = initial_copy; trace; engine }

let check_scripted outcome =
  Checker.check outcome.view
    { Checker.initial_sources = outcome.initial_sources;
      deliveries = Node.deliveries outcome.node;
      installs =
        List.map
          (fun (r : Node.install_record) -> (r.txns, r.view_after))
          (Node.installs outcome.node);
      final_view = Node.view_contents outcome.node }

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>%s on %s:@,  %a@,  verdict: %a (%s)@,  sim time %.1f, %d events, %.3fs wall@]"
    r.algorithm r.scenario.Scenario.name Metrics.pp r.metrics
    Checker.pp_verdict r.verdict.Checker.verdict r.verdict.Checker.detail
    r.sim_time r.events r.wall_seconds
