open Repro_relational
open Repro_sim
open Repro_protocol
open Repro_source
open Repro_warehouse
open Repro_consistency
open Repro_workload
open Repro_durability
module Obs = Repro_observability.Obs
module Backpressure = Repro_serving.Backpressure
module Server = Repro_serving.Server
module Read_gen = Repro_serving.Read_gen

(* The harness's single sanctioned wall-clock read. The values feed only
   the reporting fields (wall_seconds, recovery_seconds) — never a
   simulation decision, which depend solely on the seeded virtual
   clock. *)
let wall_clock () =
  Unix.gettimeofday ()  (* lint: allow L1 reporting-only; results carry wall times but no simulation decision reads them *)

type result = {
  scenario : Scenario.t;
  algorithm : string;
  metrics : Metrics.t;
  verdict : Checker.result;
  sim_time : float;
  wall_seconds : float;
  final_view_tuples : int;
  final_view : Bag.t;
  events : int;
  completed : bool;
  degraded : bool;
  reads : Server.record list;  (** serve-order read log; [] without serving *)
  sessions : Checker.session_report option;
}

let algorithm_by_name ?(batch_max = 16) = function
  | "sweep" -> Some (module Sweep : Algorithm.S)
  | "sweep-parallel" -> Some (module Sweep_parallel : Algorithm.S)
  | "sweep-pipelined" -> Some (module Sweep_pipelined : Algorithm.S)
  | "sweep-global" -> Some (module Sweep_global : Algorithm.S)
  | "sweep-batched" ->
      Some
        (if batch_max = 16 then (module Sweep_batched : Algorithm.S)
         else Sweep_batched.with_batch_max batch_max)
  | "nested-sweep" -> Some (module Nested_sweep : Algorithm.S)
  | "strobe" -> Some (module Strobe : Algorithm.S)
  | "c-strobe" -> Some (module C_strobe : Algorithm.S)
  | "eca" -> Some (module Eca : Algorithm.S)
  | "naive" -> Some (module Naive : Algorithm.S)
  | "recompute" -> Some (module Recompute : Algorithm.S)
  | _ -> None

let algorithms_for (s : Scenario.t) =
  let base =
    [ ("sweep", (module Sweep : Algorithm.S));
      ("sweep-parallel", (module Sweep_parallel : Algorithm.S));
      ("sweep-pipelined", (module Sweep_pipelined : Algorithm.S));
      ( "sweep-batched",
        (if s.batch_max = 16 then (module Sweep_batched : Algorithm.S)
         else Sweep_batched.with_batch_max s.batch_max) );
      ("nested-sweep", (module Nested_sweep : Algorithm.S));
      ("strobe", (module Strobe : Algorithm.S));
      ("c-strobe", (module C_strobe : Algorithm.S));
      ("naive", (module Naive : Algorithm.S));
      ("recompute", (module Recompute : Algorithm.S)) ]
  in
  match s.topology with
  | Scenario.Distributed -> base
  | Scenario.Centralized -> base @ [ ("eca", (module Eca : Algorithm.S)) ]

let run ?(check = true) ?(trace = Trace.create ()) ?(obs = Obs.disabled ())
    ?max_events (scenario : Scenario.t) (algorithm : (module Algorithm.S)) =
  let wall_start = wall_clock () in
  let strategy = scenario.join_strategy in
  let engine = Engine.create ~seed:scenario.seed () in
  Obs.set_clock obs (Engine.clock engine);
  let rng = Engine.rng engine in
  let view = Chain.view ~n:scenario.n_sources () in
  let data_rng = Rng.split rng in
  let initial =
    Chain.populate view ~size:scenario.init_size ~domain:scenario.domain
      data_rng
  in
  let initial_copy = Array.map Relation.copy initial in
  let initial_view = Algebra.eval view (fun i -> initial.(i)) in
  let node = ref None in
  let the_node () =
    match !node with
    | Some n -> n
    | None -> invalid_arg "Experiment.run: message before wiring complete"
  in
  let n = scenario.n_sources in
  let faulty = Fault.is_faulty scenario.faults in
  let wh_crashes = scenario.faults.Fault.wh_crashes in
  let metrics = Metrics.create () in
  (* Query deadlines + circuit breakers arm only on the faulty
     distributed wiring: the deadline lives in the transport senders on
     the warehouse→source links, and the breaker is the warehouse-side
     policy fed by their expiries. *)
  let breaker =
    match (scenario.deadline, scenario.topology, faulty) with
    | Some _, Scenario.Distributed, true ->
        Some
          (Breaker.create engine ~rng:(Rng.split rng)
             ~config:
               { Breaker.default_config with
                 k = scenario.breaker_k; probe_limit = scenario.probe_limit }
             ~obs ~metrics ~n)
    | _ -> None
  in
  (* warehouse-side down-link endpoints, newest first (reversed below) *)
  let up_links : Message.to_warehouse Transport.link list ref = ref [] in
  let down_links : Message.to_source Transport.link list ref = ref [] in
  let down_sender i =
    match List.nth_opt (List.rev !down_links) i with
    | Some l -> Some (Transport.link_sender l)
    | None -> None
  in
  let resume_if_suspended i =
    match down_sender i with
    | Some s when Transport.sender_suspended s -> Transport.resume_sender s
    | _ -> ()
  in
  let deliver msg =
    Node.deliver (the_node ()) msg;
    (* The delivery may have been the answer that closed a breaker while
       its sender sat suspended on an expired deadline. Resume it, so
       the queries the heal-triggered replay just issued (buffered while
       suspended) actually go out. *)
    match breaker with
    | None -> ()
    | Some b ->
        for i = 0 to n - 1 do
          if Breaker.source_ok b i then resume_if_suspended i
        done
  in
  (* Crash windows close a source's network boundary in both directions;
     the transport keeps retransmitting into the partition and gets
     through once it heals. A warehouse outage instead closes only the
     channels that deliver *into* the warehouse — data on up links, acks
     on down links — while the still-live sources keep receiving. *)
  let gate i () =
    not (Fault.crashed scenario.faults ~source:i ~time:(Engine.now engine))
  in
  let wh_down = ref false in
  let wh_ok () = not !wh_down in
  let tconfig = Transport.config_for scenario.latency in
  (* queries carry a deadline only when the breaker is armed; update
     notices (up links) keep the legacy retransmit-until-healed senders *)
  let down_config =
    match breaker with
    | Some _ -> { tconfig with Transport.deadline = scenario.deadline }
    | None -> tconfig
  in
  (* per-link stat readers, type-erased (up links carry to_warehouse,
     down links to_source) *)
  let link_stats : (unit -> Transport.stats * int) list ref = ref [] in
  let reliable_link (type a) ?on_deadline ?on_ack i ~(dir : [ `Up | `Down ])
      ~(deliver : a -> unit) : a Transport.link =
    let data_gate, ack_gate =
      match dir with
      | `Up -> ((fun () -> gate i () && wh_ok ()), gate i)
      | `Down -> (gate i, fun () -> gate i () && wh_ok ())
    in
    let config = match dir with `Up -> tconfig | `Down -> down_config in
    let label =
      Printf.sprintf "%s%d" (match dir with `Up -> "up" | `Down -> "down") i
    in
    let l =
      Transport.connect ~config ?on_deadline ?on_ack
        ~faults:scenario.faults.Fault.link ~data_gate ~ack_gate ~obs ~label
        engine ~latency:scenario.latency ~rng:(Rng.split rng) ~deliver ()
    in
    link_stats :=
      (fun () -> (Transport.link_stats l, Transport.link_frames_lost l))
      :: !link_stats;
    l
  in
  (* The warehouse-side transport endpoints, kept for checkpointing and
     crash recovery: each up link's receiver, each down link's sender.
     Collected newest first; reversed when frozen into arrays below. *)
  let mk_up i ~deliver =
    let l = reliable_link i ~dir:`Up ~deliver in
    up_links := l :: !up_links;
    Transport.link_send l
  in
  let mk_down i ~deliver =
    (* a deadline expiry already suspended the sender; below [k]
       consecutive expiries the breaker says retry (resume, fresh
       clock), at [k] it trips and the sender stays parked until a
       probe or a heal resumes it *)
    let self = ref None in
    let on_deadline ~seq:_ =
      match breaker with
      | None -> ()
      | Some b -> (
          match Breaker.record_timeout b i with
          | Breaker.Retry ->
              Option.iter
                (fun l -> Transport.resume_sender (Transport.link_sender l))
                !self
          | Breaker.Tripped -> ())
    in
    (* an ack on this link is round-trip proof the source is alive — the
       only proof available when the query was delivered but its ack was
       lost (the source will never answer the dup-suppressed
       retransmission) *)
    let on_ack ~seq:_ =
      match breaker with
      | None -> ()
      | Some b ->
          Breaker.record_success b i;
          if Breaker.source_ok b i then
            Option.iter
              (fun l ->
                let s = Transport.link_sender l in
                if Transport.sender_suspended s then Transport.resume_sender s)
              !self
    in
    let l = reliable_link i ~dir:`Down ~on_deadline ~on_ack ~deliver in
    self := Some l;
    down_links := l :: !down_links;
    Transport.link_send l
  in
  (* apply: how the workload performs an update at "source i";
     scan_total: probes across this run's own base tables that degraded
     to O(n) scans — under the default Probe strategy the suites
     assert 0. *)
  let send_to, apply, scan_total =
    match scenario.topology with
    | Scenario.Distributed ->
        let up_send =
          Array.init n (fun i ->
              if faulty then (mk_up i ~deliver : Message.to_warehouse -> unit)
              else
                let ch =
                  Channel.create engine ~latency:scenario.latency
                    ~rng:(Rng.split rng) ~deliver
                in
                Channel.send ch)
        in
        let sources =
          Array.init n (fun i ->
              Source_node.create ~strategy engine ~view ~id:i
                ~init:initial.(i)
                ~send:(fun m -> up_send.(i) m)
                ~trace)
        in
        let down_send =
          Array.init n (fun i ->
              let deliver m = Source_node.handle sources.(i) m in
              if faulty then (mk_down i ~deliver : Message.to_source -> unit)
              else
                let ch =
                  Channel.create engine ~latency:scenario.latency
                    ~rng:(Rng.split rng) ~deliver
                in
                Channel.send ch)
        in
        ( (fun i msg -> down_send.(i) msg),
          (fun ~source ~global delta ->
            let global =
              Option.map
                (fun (gid, parts) -> { Repro_protocol.Message.gid; parts })
                global
            in
            ignore (Source_node.local_update ?global sources.(source) delta)),
          fun () ->
            Array.fold_left
              (fun acc s ->
                acc + Base_table.scan_count (Source_node.table s))
              0 sources )
    | Scenario.Centralized ->
        (* the single site plays the role of "source 0" for crash windows *)
        let up =
          if faulty then mk_up 0 ~deliver
          else
            let ch =
              Channel.create engine ~latency:scenario.latency
                ~rng:(Rng.split rng) ~deliver
            in
            Channel.send ch
        in
        let site =
          Eca_site.create ~strategy engine ~view ~inits:initial ~send:up
            ~trace
        in
        let deliver_down m = Eca_site.handle site m in
        let down =
          if faulty then mk_down 0 ~deliver:deliver_down
          else
            let ch =
              Channel.create engine ~latency:scenario.latency
                ~rng:(Rng.split rng) ~deliver:deliver_down
            in
            Channel.send ch
        in
        ( (fun _i msg -> down msg),
          (fun ~source ~global:_ delta ->
            (* the centralized site applies type-3 parts as local updates *)
            ignore (Eca_site.local_update site ~source delta)),
          fun () ->
            let acc = ref 0 in
            for i = 0 to n - 1 do
              acc := !acc + Base_table.scan_count (Eca_site.table site i)
            done;
            !acc )
  in
  let store =
    if wh_crashes <> [] then
      Some (Store.create ~checkpoint_every:scenario.checkpoint_every ())
    else None
  in
  let aux =
    Aux_store.create ~view ~mode:scenario.aux_mode ~strategy
      ~initial:initial_copy ()
  in
  let warehouse =
    Node.create engine ~view ~algorithm ~send:send_to ~init:initial_view
      ?durability:store ~metrics ?queue_capacity:scenario.queue_capacity
      ?breaker ~aux ~stall_cap:scenario.stall_cap ~record_history:check ~trace
      ~obs ()
  in
  node := Some warehouse;
  (* probe = retransmit the parked query through the suspended sender;
     the source's answer (routed to Breaker.record_success by the node)
     is the heal evidence that closes the breaker *)
  (match breaker with
  | None -> ()
  | Some b -> Breaker.set_on_probe b resume_if_suspended);
  (* Bounded queue: admission control where updates are born. Tokens
     return when the warehouse reports transactions incorporated; the
     listener registration survives crash recovery with the node. *)
  let bp =
    Option.map
      (fun capacity -> Backpressure.create ~n_sources:n ~capacity)
      scenario.queue_capacity
  in
  let apply =
    match bp with
    | None -> apply
    | Some bp ->
        Node.add_incorporate_listener warehouse (fun k ->
            Backpressure.release bp k);
        fun ~source ~global delta ->
          Backpressure.submit bp ~source ~noop:(Delta.is_empty delta)
            (fun () -> apply ~source ~global delta)
  in
  (match store with
  | None -> ()
  | Some store ->
      let ups = Array.of_list (List.rev !up_links) in
      let downs = Array.of_list (List.rev !down_links) in
      (* In the centralized topology all traffic shares link 0 even
         though transactions carry source ids 0..n-1. *)
      let li j = if Array.length ups = 1 then 0 else j in
      Store.set_capture store (fun () ->
          Node.checkpoint (the_node ())
            ~wal_pos:(Store.wal_length store)
            ~recv_expected:
              (Array.map
                 (fun l ->
                   Transport.receiver_expected (Transport.link_receiver l))
                 ups)
            ~senders:
              (Array.map
                 (fun l ->
                   let next_seq, acked_upto, window =
                     Transport.sender_state (Transport.link_sender l)
                   in
                   { Checkpoint.next_seq; acked_upto; window })
                 downs));
      let crash () =
        wh_down := true;
        metrics.Metrics.wh_crashes <- metrics.Metrics.wh_crashes + 1;
        (* the dead warehouse must stop retransmitting queries, and its
           breaker must stop probing (recovery restores it from the
           checkpoint, re-scheduling probes for still-open sources) *)
        (match breaker with Some b -> Breaker.halt b | None -> ());
        Array.iter
          (fun l -> Transport.halt_sender (Transport.link_sender l))
          downs
      in
      let recover () =
        let t0 = wall_clock () in
        wh_down := false;
        let checkpoint = Store.latest_checkpoint store in
        let tail = Store.tail store in
        (* Receivers restart at [checkpointed expected + records replayed
           on that link]: everything the old incarnation delivered (and
           acked) is on the WAL; held out-of-order frames were never
           acked and will be retransmitted. *)
        let expected =
          match checkpoint with
          | Some (c : Checkpoint.t) -> Array.copy c.recv_expected
          | None -> Array.make (Array.length ups) 0
        in
        List.iter
          (fun r ->
            match Wal.link_of r with
            | Some j -> expected.(li j) <- expected.(li j) + 1
            | None -> ())
          tail;
        Array.iteri
          (fun j l ->
            Transport.reset_receiver (Transport.link_receiver l)
              ~expected:expected.(j))
          ups;
        (* Senders resume from the checkpoint (or from genesis), so the
           sends replay regenerates carry their original sequence
           numbers and the sources suppress them as duplicates. *)
        Array.iteri
          (fun j l ->
            let s = Transport.link_sender l in
            match checkpoint with
            | Some (c : Checkpoint.t) ->
                let st = c.senders.(j) in
                Transport.restore_sender s ~next_seq:st.Checkpoint.next_seq
                  ~acked_upto:st.Checkpoint.acked_upto
                  ~window:st.Checkpoint.window
            | None ->
                Transport.restore_sender s ~next_seq:0 ~acked_upto:(-1)
                  ~window:[])
          downs;
        let fresh = Node.recover ~prev:(the_node ()) ?checkpoint () in
        node := Some fresh;
        Node.begin_replay fresh;
        List.iter (Node.replay_record fresh) tail;
        Node.end_replay fresh;
        metrics.Metrics.replayed_records <-
          metrics.Metrics.replayed_records + List.length tail;
        metrics.Metrics.recovery_seconds <-
          metrics.Metrics.recovery_seconds +. (wall_clock () -. t0)
      in
      List.iter
        (fun (o : Fault.outage) ->
          Engine.at engine ~time:o.wh_down_at crash;
          Engine.at engine ~time:o.wh_up_at recover)
        wh_crashes);
  Update_gen.drive engine (Rng.split rng) scenario.stream ~view
    ~initial:initial_copy ~apply ();
  (* The serving tier attaches only when the scenario asks for reads;
     every rng split below is gated on that, so read-free runs stay
     byte-identical to pre-serving builds. Reads are issued against the
     live node ([the_node] survives crash recovery), staleness is fed by
     the node's delivery and install listeners (both replay-suppressed,
     both carried across recovery). *)
  let server =
    if scenario.read_rate <= 0. then None
    else begin
      let slo = scenario.staleness_slo in
      let config =
        { Server.default_config with
          Server.staleness_slo = slo; staleness_ceiling = slo *. 8.;
          read_cap = scenario.read_cap }
      in
      let srv =
        Server.create ~config ~engine ~rng:(Rng.split rng) ~obs ~n_sources:n
          ~view:(fun () -> Node.view_contents (the_node ()))
          ()
      in
      Node.add_delivery_listener warehouse (fun (u : Message.update) ->
          Server.note_delivery srv ~source:u.Message.txn.Message.source
            ~txn:u.Message.txn.Message.seq);
      Node.add_install_txns_listener warehouse (fun txns ->
          Server.note_install srv
            (List.map
               (fun (id : Message.txn_id) -> (id.Message.source, id.Message.seq))
               txns));
      let horizon =
        let h =
          float_of_int scenario.stream.Update_gen.n_updates
          *. scenario.stream.Update_gen.mean_gap
        in
        if h > 0. then h else 60.  (* read-only run: a fixed window *)
      in
      let rcfg =
        { Read_gen.default with
          Read_gen.rate = scenario.read_rate;
          n_reads =
            Read_gen.reads_over ~rate:scenario.read_rate
              ~burst:scenario.read_burst ~horizon;
          arity = Array.length (View_def.projection view);
          domain = scenario.domain; burst = scenario.read_burst }
      in
      if rcfg.Read_gen.n_reads > 0 then
        Read_gen.drive engine (Rng.split rng) rcfg ~n_sessions:n
          ~read:(fun ~session ~kind ->
            ignore (Server.read srv ~session ~kind))
          ();
      Some srv
    end
  in
  let completed =
    match Engine.run ?max_events engine with
    | `Drained -> true
    | `Max_events -> false
    | `Until -> assert false
  in
  (* the node may have been replaced by crash recovery *)
  let warehouse = the_node () in
  (match breaker with Some b -> Breaker.flush b | None -> ());
  let degraded =
    match breaker with Some b -> Breaker.degraded b | None -> false
  in
  (* A degraded drain is legitimate non-quiescence: abandoned breakers
     leave parked updates in the queue by design. *)
  if completed && (not (Node.idle warehouse)) && not degraded then
    invalid_arg
      (Printf.sprintf
         "Experiment.run: %s did not quiesce after the event queue drained"
         (Node.algorithm_name warehouse));
  (* fold the transport layer's counters into the run's metrics *)
  let m = Node.metrics warehouse in
  List.iter
    (fun read ->
      let s, lost = read () in
      m.Metrics.retransmissions <-
        m.Metrics.retransmissions + s.Transport.retransmissions;
      m.Metrics.timeouts <- m.Metrics.timeouts + s.Transport.timeouts;
      m.Metrics.duplicates_suppressed <-
        m.Metrics.duplicates_suppressed + s.Transport.duplicates_suppressed;
      m.Metrics.recoveries <- m.Metrics.recoveries + s.Transport.recoveries;
      m.Metrics.frames_lost <- m.Metrics.frames_lost + lost)
    !link_stats;
  (match store with
  | Some store ->
      m.Metrics.wal_records <- Store.wal_length store;
      m.Metrics.wal_bytes <- Store.wal_bytes store;
      m.Metrics.checkpoints <- Store.checkpoints store;
      m.Metrics.checkpoint_bytes <- Store.checkpoint_bytes store
  | None -> ());
  (match bp with
  | Some bp ->
      m.Metrics.queue_deferred <- Backpressure.deferred bp;
      m.Metrics.queue_shed <- Backpressure.shed bp
  | None -> ());
  (match server with
  | Some srv ->
      m.Metrics.reads_served <- Server.served srv;
      m.Metrics.reads_stale <- Server.stale srv;
      m.Metrics.reads_shed <- Server.shed srv;
      m.Metrics.read_staleness_p50 <- Server.staleness_p50 srv;
      m.Metrics.read_staleness_p99 <- Server.staleness_p99 srv
  | None -> ());
  (* the storage side of the self-maintenance trade-off (deterministic:
     canonical encoding of the final projections) *)
  if Aux_store.mode aux <> Aux_store.Off then
    m.Metrics.aux_bytes <- Aux_store.bytes aux;
  m.Metrics.unindexed_scans <- scan_total ();
  let sessions =
    Option.map
      (fun srv -> Checker.check_sessions ~n_sources:n (Server.read_log srv))
      server
  in
  let verdict =
    if check && completed then
      Checker.check ~degraded view
        { Checker.initial_sources = initial_copy;
          deliveries = Node.deliveries warehouse;
          installs =
            List.map
              (fun (r : Node.install_record) -> (r.txns, r.view_after))
              (Node.installs warehouse);
          final_view = Node.view_contents warehouse }
    else
      { Checker.verdict = Checker.Convergent; detail = "not checked";
        states_checked = 0 }
  in
  { scenario; algorithm = Node.algorithm_name warehouse;
    metrics = Node.metrics warehouse; verdict; sim_time = Engine.now engine;
    wall_seconds = wall_clock () -. wall_start;
    final_view_tuples = Bag.total (Node.view_contents warehouse);
    final_view = Bag.copy (Node.view_contents warehouse);
    events = Engine.executed engine; completed; degraded;
    reads = (match server with Some srv -> Server.log srv | None -> []);
    sessions }

type scripted_outcome = {
  node : Node.t;
  view : Repro_relational.View_def.t;
  initial_sources : Repro_relational.Relation.t array;
  trace : Trace.t;
  engine : Engine.t;
}

let run_scripted ?(latency = 1.0) ?(seed = 7L) ?(trace_enabled = true)
    ?(obs = Obs.disabled ()) ?(aux_mode = Aux_store.Off)
    ?(join_strategy = Join_strategy.default) ~algorithm ~view ~initial
    ~updates () =
  let open Repro_relational in
  let engine = Engine.create ~seed () in
  Obs.set_clock obs (Engine.clock engine);
  let rng = Engine.rng engine in
  let trace = Trace.create ~enabled:trace_enabled () in
  let initial_copy = Array.map Relation.copy initial in
  let initial_view = Algebra.eval view (fun i -> initial.(i)) in
  let node = ref None in
  let deliver msg = Node.deliver (Option.get !node) msg in
  let n = View_def.n_sources view in
  let up =
    Array.init n (fun _ ->
        Channel.create engine ~latency:(Latency.Fixed latency)
          ~rng:(Rng.split rng) ~deliver)
  in
  let sources =
    Array.init n (fun i ->
        Source_node.create ~strategy:join_strategy engine ~view ~id:i
          ~init:initial.(i)
          ~send:(fun m -> Channel.send up.(i) m)
          ~trace)
  in
  let down =
    Array.init n (fun i ->
        Channel.create engine ~latency:(Latency.Fixed latency)
          ~rng:(Rng.split rng)
          ~deliver:(fun m -> Source_node.handle sources.(i) m))
  in
  let warehouse =
    Node.create engine ~view ~algorithm
      ~send:(fun i msg -> Channel.send down.(i) msg)
      ~init:initial_view
      ~aux:
        (Aux_store.create ~view ~mode:aux_mode ~strategy:join_strategy
           ~initial:initial_copy ())
      ~trace ~obs ()
  in
  node := Some warehouse;
  List.iter
    (fun (time, source, delta) ->
      Engine.at engine ~time (fun () ->
          ignore (Source_node.local_update sources.(source) delta)))
    updates;
  (match Engine.run engine with `Drained -> () | _ -> assert false);
  { node = warehouse; view; initial_sources = initial_copy; trace; engine }

let check_scripted outcome =
  Checker.check outcome.view
    { Checker.initial_sources = outcome.initial_sources;
      deliveries = Node.deliveries outcome.node;
      installs =
        List.map
          (fun (r : Node.install_record) -> (r.txns, r.view_after))
          (Node.installs outcome.node);
      final_view = Node.view_contents outcome.node }

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>%s on %s:@,  %a@,  verdict: %a (%s)@,  sim time %.1f, %d events, %.3fs wall%s@]"
    r.algorithm r.scenario.Scenario.name Metrics.pp r.metrics
    Checker.pp_verdict r.verdict.Checker.verdict r.verdict.Checker.detail
    r.sim_time r.events r.wall_seconds
    (if r.degraded then " [DEGRADED: breakers open at end of run]" else "");
  match r.sessions with
  | Some s -> Format.fprintf ppf "@,  sessions: %a" Checker.pp_session_report s
  | None -> ()
