(** A complete experiment configuration: view shape, initial data, update
    stream, network, and topology (distributed sources vs the centralized
    ECA site). Scenarios are pure descriptions; {!Experiment.run} executes
    them. *)

open Repro_sim
open Repro_workload

type topology =
  | Distributed  (** one site per source (paper Fig. 1) *)
  | Centralized  (** one site holding all base relations (ECA's model) *)

type t = {
  name : string;
  n_sources : int;
  init_size : int;  (** tuples per base relation at t=0 *)
  domain : int;  (** join-attribute domain (selectivity knob) *)
  stream : Update_gen.config;
  latency : Latency.t;
  topology : topology;
  faults : Fault.t;
      (** network fault schedule; {!Fault.none} (the default) wires plain
          reliable channels, byte-identical to runs predating the fault
          layer. Anything faulty routes all protocol traffic over
          {!Repro_protocol.Transport} links instead. *)
  checkpoint_every : int;
      (** checkpoint every N WAL records (0 = WAL only, full replay).
          Only meaningful when [faults.wh_crashes] is non-empty — runs
          without warehouse crashes attach no durability store at all. *)
  queue_capacity : int option;
      (** bound on the warehouse update queue; excess updates are held
          back (or shed when no-ops) at the workload layer. *)
  batch_max : int;
      (** cap on the updates [Sweep_batched] drains into one batched
          sweep (default 16); only that algorithm reads it. *)
  deadline : float option;
      (** per-query transport deadline (sim seconds). [None] (the
          default) keeps the legacy retransmit-forever senders; [Some d]
          arms warehouse→source links with a deadline and a per-source
          circuit breaker (Distributed topology only). *)
  breaker_k : int;
      (** consecutive deadline expiries before a source's breaker trips
          (only read when [deadline] is set). *)
  probe_limit : int;
      (** failed half-open probes before a breaker is abandoned and the
          run drains degraded; 0 = probe forever (only read when
          [deadline] is set). *)
  stall_cap : int;
      (** parked-update bound for degraded mode: once this many updates
          are stalled behind open breakers the engines fall back to
          blocking on the dead source. *)
  read_rate : float;
      (** mean serving-tier reads per sim-time unit; 0 (the default)
          attaches no serving tier at all — byte-identical to runs
          predating the read path. *)
  staleness_slo : float;
      (** reads within this view lag are [Fresh]; beyond it they are
          served [Stale] (stamped) up to a hard ceiling of 8× the SLO,
          past which they are shed. *)
  read_cap : int;  (** max reads in flight (admission-control tokens) *)
  read_burst : Repro_serving.Read_gen.burst option;
      (** optional flash-crowd window multiplying the read rate *)
  aux_mode : Repro_warehouse.Aux_store.mode;
      (** self-maintenance aux projections (DESIGN.md §14): [Off],
          [Keys_only] (keys + join columns) or [Full] (every referenced
          column — all sweep legs answered locally) *)
  join_strategy : Repro_relational.Join_strategy.t;
      (** delta-join execution for every leg (DESIGN.md §15): [Probe]
          (the default — persistent hash indexes on join columns),
          [Trie] (sort-order tries, leapfrog intersections) or
          [Pairwise] (the legacy scan/hash-join path). All three are
          bag-identical; only execution cost differs. *)
  seed : int64;
}

val default : t

(** [quick_presets] — a few named scenarios used by examples, tests and
    the CLI ([sequential], [concurrent], [bursty], [adversarial],
    [centralized], [degraded], [crashy], [chaos], [read-heavy],
    [flash-crowd], [self-maint]). *)
val presets : (string * t) list

val find_preset : string -> t option
val pp : Format.formatter -> t -> unit
