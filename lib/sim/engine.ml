type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable clock : float;
  mutable executed : int;
  root_rng : Rng.t;
}

let create ?(seed = 0x5EEDL) () =
  { queue = Event_queue.create (); clock = 0.; executed = 0;
    root_rng = Rng.create seed }

let now t = t.clock
let clock t () = t.clock
let rng t = t.root_rng

let at t ~time f =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.at: time %g is in the past (now %g)" time t.clock);
  Event_queue.push t.queue ~time f

let schedule t ~delay f =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  at t ~time:(t.clock +. delay) f

let executed t = t.executed
let pending t = Event_queue.length t.queue

let run ?until ?max_events t =
  let stop = ref None in
  while !stop = None do
    match Event_queue.peek_time t.queue with
    | None -> stop := Some `Drained
    | Some time -> (
        match until with
        | Some u when time > u ->
            t.clock <- u;
            stop := Some `Until
        | _ -> (
            match max_events with
            | Some m when t.executed >= m -> stop := Some `Max_events
            | _ -> (
                match Event_queue.pop t.queue with
                | None -> stop := Some `Drained
                | Some (time, f) ->
                    t.clock <- time;
                    t.executed <- t.executed + 1;
                    f ())))
  done;
  Option.get !stop
