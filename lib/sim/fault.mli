(** Seeded fault schedules for the network simulation.

    The paper assumes reliable FIFO channels (§2); this module describes
    controlled *violations* of that assumption — probabilistic frame loss,
    duplication and latency spikes on a link, plus scripted crash windows
    during which a source is unreachable in both directions — so the
    transport layer ({!Repro_protocol.Transport}) can be shown to restore
    the assumption and the harness can measure staleness under degraded
    delivery. A schedule is pure data; {!Channel} applies the link faults
    and the experiment wiring applies the crash windows as delivery gates. *)

(** Per-link fault rates. [drop] and [duplicate] are per-frame
    probabilities; with probability [spike] a frame's sampled latency is
    multiplied by [spike_factor] (a congestion burst, the reordering
    source). *)
type link = {
  drop : float;
  duplicate : float;
  spike : float;
  spike_factor : float;
}

(** No faults: the paper's reliable channel. *)
val reliable : link

(** [lossy ()] with any subset of rates overridden; validates ranges
    (probabilities in [0,1), [spike_factor >= 1]). *)
val lossy :
  ?drop:float -> ?duplicate:float -> ?spike:float -> ?spike_factor:float ->
  unit -> link

(** A crash window: source [source] is unreachable (frames in either
    direction are lost at its network boundary) for sim times in
    [[down_at, up_at)]. Windows must be finite or the retransmission
    timers never quiesce. *)
type window = { source : int; down_at : float; up_at : float }

(** A warehouse outage: the warehouse process is down for sim times in
    [[wh_down_at, wh_up_at)] — frames delivered to it during the window
    are lost (sources keep retransmitting), its own retransmission
    timers die with it, and at [wh_up_at] it restarts and runs crash
    recovery from its latest checkpoint + WAL tail. Windows must be
    finite. *)
type outage = { wh_down_at : float; wh_up_at : float }

(** A complete fault schedule for one run. *)
type t = { link : link; crashes : window list; wh_crashes : outage list }

(** The empty schedule — runs wired with it are byte-identical to runs
    without any fault plumbing. *)
val none : t

(** True when the schedule perturbs anything (used to decide whether the
    experiment wiring needs the transport layer at all). *)
val is_faulty : t -> bool

(** [crashed t ~source ~time] — is [source] inside one of its crash
    windows at [time]? *)
val crashed : t -> source:int -> time:float -> bool

(** [warehouse_crashed t ~time] — is the warehouse inside one of its
    outage windows at [time]? *)
val warehouse_crashed : t -> time:float -> bool

(** [random rng ~n_sources ~horizon] draws a schedule for the property
    harness: moderate loss/duplication/spike rates and, with probability
    1/2, one crash window per run placed inside [horizon]. Deterministic
    per [rng] state. *)
val random : Rng.t -> n_sources:int -> horizon:float -> t

(** [random_recovery rng ~n_sources ~horizon] — a {!random} schedule
    (identical link/source-crash draws) plus one or two guaranteed
    warehouse outage windows inside [horizon], for the crash-recovery
    property harness. *)
val random_recovery : Rng.t -> n_sources:int -> horizon:float -> t

(** [chaos rng ~n_sources ~horizon] — a composed schedule for the chaos
    suite: heavier link faults than {!random}, one or two (possibly
    overlapping) source-crash windows, and, with probability 1/2, a
    warehouse outage that overlaps a source window half the time. All
    windows close by [0.7 *. horizon], so every chaos run has a healing
    tail in which it must converge. Deterministic per [rng] state. *)
val chaos : Rng.t -> n_sources:int -> horizon:float -> t

(** [last_heal t] — the sim time at which the last crash window (source
    or warehouse) heals; [0.] for a schedule with no crash windows. The
    chaos suite's convergence invariant measures from this instant. *)
val last_heal : t -> float

val pp : Format.formatter -> t -> unit
