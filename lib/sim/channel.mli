(** Point-to-point simulated channels.

    In the default (reliable) mode messages are never lost and are
    delivered in send order: a sampled delivery time earlier than the
    previous message's is clamped forward. SWEEP's exact interference
    detection (§4, footnote 2) depends on this property, and the tests
    assert it.

    {b Loss is opt-in and loud.} Passing a nonzero fault rate without
    [~lossy:true] raises [Invalid_argument]: a silently lossy channel
    under a protocol that assumes reliability stalls a sweep or corrupts
    the view with no detection. A lossy channel additionally does {e not}
    clamp delivery times, so latency variance (and spikes) can reorder
    frames — restoring the exactly-once FIFO contract on top of such a
    channel is {!Repro_protocol.Transport}'s job. *)

type 'a t

(** [create engine ~latency ~rng ~deliver] builds a channel whose receive
    endpoint is the [deliver] callback.

    Fault knobs (all require [~lossy:true] when nonzero; each is a
    violation of the paper's §2 reliability assumption):
    - [drop]: per-message loss probability.
    - [duplicate]: per-message probability of delivering a second,
      independently delayed copy.
    - [spike]: [(p, factor)] — with probability [p] the sampled latency
      is multiplied by [factor] (congestion burst; the reordering source
      on lossy channels).

    [gate] is evaluated at delivery time; when it returns [false] the
    message is discarded (crash/partition windows — see {!Fault}). The
    gate is independent of [lossy]: it models scripted unreachability,
    not random loss. *)
val create :
  ?lossy:bool ->
  ?drop:float ->
  ?duplicate:float ->
  ?spike:float * float ->
  ?gate:(unit -> bool) ->
  Engine.t ->
  latency:Latency.t ->
  rng:Rng.t ->
  deliver:('a -> unit) ->
  'a t

(** [send ch msg] enqueues [msg] for delivery (FIFO when reliable). *)
val send : 'a t -> 'a -> unit

(** Messages sent over this channel so far. *)
val sent : 'a t -> int

(** Messages lost to [drop] so far (always 0 when reliable). *)
val dropped : 'a t -> int

(** Extra copies injected by [duplicate] so far. *)
val duplicated : 'a t -> int

(** Messages discarded by the [gate] at delivery time so far. *)
val gated : 'a t -> int
