type 'a t = {
  engine : Engine.t;
  latency : Latency.t;
  rng : Rng.t;
  lossy : bool;
  drop : float;
  duplicate : float;
  spike : (float * float) option;
  gate : (unit -> bool) option;
  deliver : 'a -> unit;
  mutable last_delivery : float;
  mutable sent : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable gated : int;
}

let create ?(lossy = false) ?(drop = 0.) ?(duplicate = 0.) ?spike ?gate engine
    ~latency ~rng ~deliver =
  if drop < 0. || drop >= 1. then invalid_arg "Channel.create: drop ∉ [0,1)";
  if duplicate < 0. || duplicate >= 1. then
    invalid_arg "Channel.create: duplicate ∉ [0,1)";
  (match spike with
  | Some (p, f) ->
      if p < 0. || p >= 1. then invalid_arg "Channel.create: spike p ∉ [0,1)";
      if f < 1. then invalid_arg "Channel.create: spike factor < 1"
  | None -> ());
  let spike = match spike with Some (p, _) when p = 0. -> None | s -> s in
  if (not lossy) && (drop > 0. || duplicate > 0. || spike <> None) then
    invalid_arg
      "Channel.create: fault rates require ~lossy:true (the protocol \
       assumes reliable channels; see channel.mli)";
  { engine; latency; rng; lossy; drop; duplicate; spike; gate; deliver;
    last_delivery = 0.; sent = 0; dropped = 0; duplicated = 0; gated = 0 }

(* Delivery-time gating: a closed gate (crash window) swallows the
   message at the receiver's network boundary. *)
let deliver_gated ch msg =
  match ch.gate with
  | Some g when not (g ()) -> ch.gated <- ch.gated + 1
  | _ -> ch.deliver msg

let sample_latency ch =
  let sample = Latency.sample ch.latency ch.rng in
  match ch.spike with
  | Some (p, factor) when Rng.bool ch.rng p -> sample *. factor
  | _ -> sample

let send ch msg =
  ch.sent <- ch.sent + 1;
  if ch.drop > 0. && Rng.bool ch.rng ch.drop then
    ch.dropped <- ch.dropped + 1
  else if ch.lossy then begin
    (* lossy mode: no FIFO clamp — spikes and latency variance reorder *)
    let deliver_copy () =
      let t = Engine.now ch.engine +. sample_latency ch in
      Engine.at ch.engine ~time:t (fun () -> deliver_gated ch msg)
    in
    deliver_copy ();
    if ch.duplicate > 0. && Rng.bool ch.rng ch.duplicate then begin
      ch.duplicated <- ch.duplicated + 1;
      deliver_copy ()
    end
  end
  else begin
    let sample = Latency.sample ch.latency ch.rng in
    let t = Float.max (Engine.now ch.engine +. sample) ch.last_delivery in
    ch.last_delivery <- t;
    Engine.at ch.engine ~time:t (fun () -> deliver_gated ch msg)
  end

let sent ch = ch.sent
let dropped ch = ch.dropped
let duplicated ch = ch.duplicated
let gated ch = ch.gated
