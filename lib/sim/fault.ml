type link = {
  drop : float;
  duplicate : float;
  spike : float;
  spike_factor : float;
}

let reliable = { drop = 0.; duplicate = 0.; spike = 0.; spike_factor = 1. }

let check_p name p =
  if p < 0. || p >= 1. then
    invalid_arg (Printf.sprintf "Fault.lossy: %s ∉ [0,1)" name)

let lossy ?(drop = 0.) ?(duplicate = 0.) ?(spike = 0.) ?(spike_factor = 4.) ()
    =
  check_p "drop" drop;
  check_p "duplicate" duplicate;
  check_p "spike" spike;
  if spike_factor < 1. then invalid_arg "Fault.lossy: spike_factor < 1";
  { drop; duplicate; spike; spike_factor }

type window = { source : int; down_at : float; up_at : float }
type outage = { wh_down_at : float; wh_up_at : float }

type t = { link : link; crashes : window list; wh_crashes : outage list }

let none = { link = reliable; crashes = []; wh_crashes = [] }

let is_faulty t =
  t.link <> reliable || t.crashes <> [] || t.wh_crashes <> []

let crashed t ~source ~time =
  List.exists
    (fun w -> w.source = source && time >= w.down_at && time < w.up_at)
    t.crashes

let warehouse_crashed t ~time =
  List.exists
    (fun o -> time >= o.wh_down_at && time < o.wh_up_at)
    t.wh_crashes

let random rng ~n_sources ~horizon =
  let link =
    { drop = Rng.uniform rng ~lo:0.0 ~hi:0.3;
      duplicate = Rng.uniform rng ~lo:0.0 ~hi:0.2;
      spike = Rng.uniform rng ~lo:0.0 ~hi:0.15;
      spike_factor = Rng.uniform rng ~lo:2.0 ~hi:6.0 }
  in
  let crashes =
    if Rng.bool rng 0.5 then
      let source = Rng.int rng n_sources in
      let down_at = Rng.uniform rng ~lo:0.0 ~hi:(horizon *. 0.6) in
      let len = Rng.uniform rng ~lo:(horizon *. 0.05) ~hi:(horizon *. 0.3) in
      [ { source; down_at; up_at = down_at +. len } ]
    else []
  in
  { link; crashes; wh_crashes = [] }

(* Schedules for the crash-recovery property harness: the same moderate
   link faults as {!random} (drawn first, so the link part of a seed's
   schedule is unchanged) plus one or two guaranteed warehouse outages
   inside the horizon. *)
let random_recovery rng ~n_sources ~horizon =
  let base = random rng ~n_sources ~horizon in
  let down_at = Rng.uniform rng ~lo:(horizon *. 0.1) ~hi:(horizon *. 0.45) in
  let len =
    Rng.uniform rng ~lo:(horizon *. 0.05) ~hi:(horizon *. 0.2)
  in
  let first = { wh_down_at = down_at; wh_up_at = down_at +. len } in
  let wh_crashes =
    if Rng.bool rng 0.35 then
      let gap = Rng.uniform rng ~lo:(horizon *. 0.05) ~hi:(horizon *. 0.2) in
      let down2 = first.wh_up_at +. gap in
      let len2 = Rng.uniform rng ~lo:(horizon *. 0.05) ~hi:(horizon *. 0.15) in
      [ first; { wh_down_at = down2; wh_up_at = down2 +. len2 } ]
    else [ first ]
  in
  { base with wh_crashes }

(* Composed chaos schedules: heavier link faults than {!random}, one or
   two source-crash windows, a warehouse outage overlapping one of them
   with probability ~1/2, all inside the first 70% of the horizon so the
   run always has a healing tail. Every window closes: chaos runs must
   converge after the last heal (the permanent-outage path is exercised
   separately with explicit never-healing windows). *)
let chaos rng ~n_sources ~horizon =
  let link =
    { drop = Rng.uniform rng ~lo:0.05 ~hi:0.35;
      duplicate = Rng.uniform rng ~lo:0.0 ~hi:0.25;
      spike = Rng.uniform rng ~lo:0.0 ~hi:0.2;
      spike_factor = Rng.uniform rng ~lo:2.0 ~hi:8.0 }
  in
  let window () =
    let source = Rng.int rng n_sources in
    let down_at = Rng.uniform rng ~lo:(horizon *. 0.05) ~hi:(horizon *. 0.5) in
    let len = Rng.uniform rng ~lo:(horizon *. 0.05) ~hi:(horizon *. 0.25) in
    { source; down_at; up_at = Float.min (down_at +. len) (horizon *. 0.7) }
  in
  let first = window () in
  let crashes =
    if Rng.bool rng 0.5 then
      let second = window () in
      if second.source = first.source then [ first ] else [ first; second ]
    else [ first ]
  in
  let wh_crashes =
    if Rng.bool rng 0.5 then
      (* overlap the first source window half the time, else disjoint *)
      let down_at =
        if Rng.bool rng 0.5 then
          Rng.uniform rng ~lo:first.down_at
            ~hi:(Float.max first.up_at (first.down_at +. 1.))
        else Rng.uniform rng ~lo:(horizon *. 0.05) ~hi:(horizon *. 0.5)
      in
      let len =
        Rng.uniform rng ~lo:(horizon *. 0.03) ~hi:(horizon *. 0.15)
      in
      [ { wh_down_at = down_at;
          wh_up_at = Float.min (down_at +. len) (horizon *. 0.7) } ]
    else []
  in
  { link; crashes; wh_crashes }

(* The instant the last crash window heals ([0.] when none): chaos runs
   must converge within a bounded sim-time after it. *)
let last_heal t =
  let src = List.fold_left (fun m w -> Float.max m w.up_at) 0. t.crashes in
  List.fold_left (fun m o -> Float.max m o.wh_up_at) src t.wh_crashes

let pp ppf t =
  Format.fprintf ppf "drop=%g dup=%g spike=%g×%g" t.link.drop t.link.duplicate
    t.link.spike t.link.spike_factor;
  List.iter
    (fun w ->
      Format.fprintf ppf " crash(src%d %g..%g)" w.source w.down_at w.up_at)
    t.crashes;
  List.iter
    (fun o ->
      Format.fprintf ppf " crash(warehouse %g..%g)" o.wh_down_at o.wh_up_at)
    t.wh_crashes
