(** The discrete-event simulation engine.

    Components (sources, the warehouse, the workload driver) schedule
    thunks at future sim times; [run] executes them in (time, insertion)
    order. All concurrency in the reproduction — updates racing sweep
    queries — comes from interleavings of these events. *)

type t

val create : ?seed:int64 -> unit -> t

(** Current simulation time. *)
val now : t -> float

(** [clock t] — {!now} as a closure: the virtual-time source handed to
    observability (span timestamps, staleness samples). *)
val clock : t -> unit -> float

(** The engine's root PRNG (split it per component). *)
val rng : t -> Rng.t

(** [schedule t ~delay f] runs [f ()] at [now t +. delay].
    Raises [Invalid_argument] when [delay < 0]. *)
val schedule : t -> delay:float -> (unit -> unit) -> unit

(** [at t ~time f] runs [f ()] at absolute [time >= now]. *)
val at : t -> time:float -> (unit -> unit) -> unit

(** Number of events executed so far. *)
val executed : t -> int

(** Pending events. *)
val pending : t -> int

(** [run ?until ?max_events t] executes events until the queue drains, the
    next event is past [until], or [max_events] have run. Returns the
    reason it stopped. *)
val run :
  ?until:float -> ?max_events:int -> t -> [ `Drained | `Until | `Max_events ]
