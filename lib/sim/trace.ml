type line = { time : float; who : string; text : string }
type t = { mutable enabled : bool; mutable rev_lines : line list }

let create ?(enabled = false) () = { enabled; rev_lines = [] }
let enabled t = t.enabled
let set_enabled t b = t.enabled <- b

let emit t ~time ~who fmt =
  if t.enabled then
    Format.kasprintf
      (fun text -> t.rev_lines <- { time; who; text } :: t.rev_lines)
      fmt
  else
    (* lint: allow L8 ikfprintf ignores its formatter argument and never writes; std_formatter is only a type witness *)
    Format.ikfprintf (fun _ -> ()) Format.std_formatter fmt

let lines t = List.rev t.rev_lines
let clear t = t.rev_lines <- []

let pp ppf t =
  List.iter
    (fun l -> Format.fprintf ppf "[%8.3f] %-12s %s@." l.time l.who l.text)
    (lines t)
