(** Per-run counters: the quantities Table 1 and our experiments report.

    Message counts and weights are maintained by the warehouse node's send
    and deliver paths; algorithm-specific counters (compensations,
    recursions, fallbacks) by the algorithms themselves. *)

type t = {
  mutable updates_received : int;  (** update notices delivered *)
  mutable updates_incorporated : int;  (** txns reflected in the view *)
  mutable queries_sent : int;  (** messages warehouse → sources *)
  mutable answers_received : int;  (** non-update messages sources → warehouse *)
  mutable query_weight : int;  (** Σ payload tuples, warehouse → sources *)
  mutable answer_weight : int;  (** Σ payload tuples, sources → warehouse *)
  mutable notice_weight : int;  (** Σ payload tuples of update notices *)
  mutable installs : int;  (** view-state transitions *)
  mutable compensations : int;  (** local error corrections performed *)
  mutable recursions : int;  (** Nested SWEEP recursive frames *)
  mutable fallbacks : int;  (** Nested SWEEP forced terminations *)
  mutable max_depth : int;  (** max Nested SWEEP stack depth *)
  mutable max_queue : int;  (** max update-queue length *)
  mutable negative_installs : int;  (** installs driving a count < 0 *)
  mutable staleness_sum : float;  (** Σ (install − arrival) over txns *)
  mutable staleness_max : float;
  mutable retransmissions : int;  (** transport frames resent on timeout *)
  mutable timeouts : int;  (** transport retransmission timer expiries *)
  mutable duplicates_suppressed : int;  (** dup frames dropped by receivers *)
  mutable recoveries : int;  (** frames acked after ≥1 retransmission *)
  mutable frames_lost : int;  (** frames lost to drop + crash windows *)
  mutable wh_crashes : int;  (** warehouse crash/restart cycles *)
  mutable wal_records : int;  (** records appended to the WAL *)
  mutable wal_bytes : int;  (** encoded WAL size *)
  mutable checkpoints : int;  (** checkpoints taken *)
  mutable checkpoint_bytes : int;  (** Σ encoded checkpoint sizes *)
  mutable replayed_records : int;  (** WAL records replayed during recovery *)
  mutable recovery_seconds : float;  (** wall-clock time spent recovering *)
  mutable snapshots_fetched : int;  (** Snapshot answers (full refetches) *)
  mutable queue_deferred : int;  (** updates held back by backpressure *)
  mutable queue_shed : int;  (** no-op updates dropped at capacity *)
  mutable batches : int;  (** batched installs (Sweep_batched) *)
  mutable max_batch : int;  (** largest batch of updates swept at once *)
  mutable query_timeouts : int;  (** sweep-query deadlines blown *)
  mutable breaker_trips : int;  (** circuit-breaker Closed→Open edges *)
  mutable stalled_updates : int;  (** updates parked behind an open breaker *)
  mutable degraded_time : float;  (** sim-time spent with ≥1 breaker open *)
  mutable reads_served : int;  (** reads answered (fresh + stale) *)
  mutable reads_stale : int;  (** served reads over the staleness SLO *)
  mutable reads_shed : int;  (** reads rejected by admission control *)
  mutable read_staleness_p50 : float;  (** median staleness stamp served *)
  mutable read_staleness_p99 : float;  (** tail staleness stamp served *)
  mutable local_answers : int;  (** sweep legs answered from the aux store *)
  mutable aux_bytes : int;  (** encoded aux-store size at end of run *)
  mutable unindexed_scans : int;
      (** probes that found no index and degraded to an O(n) scan —
          0 on every default-strategy run (asserted by the suites) *)
}

val create : unit -> t

(** Observe queue length after an append. *)
val note_queue_length : t -> int -> unit

(** Observe one batched sweep of [size] updates (counts the batch,
    retains the high-water mark). *)
val note_batch : t -> int -> unit

(** Observe one incorporated txn's staleness. *)
val note_staleness : t -> float -> unit

(** Mean staleness per incorporated txn (0 when none). *)
val mean_staleness : t -> float

(** Queries sent per incorporated txn (the paper's message cost per
    update). *)
val queries_per_update : t -> float

(** Total protocol messages (queries + answers) per incorporated txn —
    the cost batching drives toward O(n/k). *)
val messages_per_update : t -> float

(** Fraction of sweep legs answered locally from the aux store,
    [local_answers / (local_answers + queries_sent)] (0 when no legs). *)
val aux_hit_rate : t -> float

(** Canonical flat export (declaration order, derived means last) for
    the observability registry and BENCH.json. *)
val fields : t -> (string * [ `Int of int | `Float of float ]) list

val pp : Format.formatter -> t -> unit
