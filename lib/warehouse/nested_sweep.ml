open Repro_relational
open Repro_sim
open Repro_protocol
module Obs = Repro_observability.Obs
module Tracer = Repro_observability.Tracer

(* One activation of the recursive ViewChange(ΔR, left, src, right).
   [pending] lists the sources this frame still has to query, left sweep
   first; [entries] are the update(s) this frame incorporates (several
   when concurrent updates from one source are merged). *)
type frame = {
  entries : Update_queue.entry list;
  left : int;
  src : int;
  right : int;
  mutable dv : Partial.t;
  mutable temp : Partial.t;
  mutable pending : int list;
  mutable outstanding : int;
  qid : int;
  mutable span : Tracer.id; (* lint: allow L5 volatile span ids: never checkpointed, Tracer.none after restore *)
  mutable leg : Tracer.id;
}

type state = {
  ctx : Algorithm.ctx;
  max_depth : int;
  mutable stack : frame list;  (* innermost first *)
  (* all entries being installed, newest first (reversed at install — the
     absorption path is hot under heavy concurrency) *)
  mutable rev_batch : Update_queue.entry list;
}

let frame_order ~left ~src ~right =
  let l = List.init (src - left) (fun k -> src - 1 - k) in
  let r = List.init (right - src) (fun k -> src + 1 + k) in
  l @ r

let make_frame ctx ~entries ~left ~src ~right =
  let merged =
    Delta.sum
      (List.map (fun e -> e.Update_queue.update.Message.delta) entries)
  in
  let dv = Partial.of_source_delta ctx.Algorithm.view src merged in
  { entries; left; src; right; dv; temp = dv;
    pending = frame_order ~left ~src ~right; outstanding = -1;
    qid = ctx.Algorithm.fresh_qid (); span = Tracer.none; leg = Tracer.none }

module Make (Cfg : sig
  val max_depth : int
end) =
struct
  type t = state

  let name =
    if Cfg.max_depth = 64 then "nested-sweep"
    else Printf.sprintf "nested-sweep(d=%d)" Cfg.max_depth

  let create ctx =
    { ctx; max_depth = Cfg.max_depth; stack = []; rev_batch = [] }

  let trace t fmt =
    Trace.emit t.ctx.Algorithm.trace ~time:(Engine.now t.ctx.engine)
      ~who:"warehouse" fmt

  let local t j = Aux_store.answers t.ctx.Algorithm.aux j

  (* A remote answer from [j] reflects installed state + the absorbed-
     but-uninstalled batch deltas from [j] (queued interference is
     compensated away, then absorbed as child frames). The aux
     projection holds only installed state, so overlay the batch. A
     local answer does NOT absorb queued updates from [j] — they stay
     queued for their own later ViewChange, exactly the already-correct
     forced-termination (SWEEP) path. *)
  let batch_overlay t j =
    Delta.sum
      (List.filter_map
         (fun (e : Update_queue.entry) ->
           if e.update.Message.txn.source = j then
             Some e.update.Message.delta
           else None)
         t.rev_batch)

  let rec advance t =
    match t.stack with
    | [] -> start_next t
    | frame :: parents -> (
        match frame.pending with
        | j :: rest when local t j -> (
            match
              Algorithm.local_answer t.ctx ~name ~span:frame.span ~target:j
                ~partial:frame.dv ~overlay:(batch_overlay t j) ()
            with
            | Some dv ->
                frame.pending <- rest;
                frame.dv <- dv;
                advance t
            | None -> assert false (* local t j implies answerable *))
        | j :: rest ->
            frame.pending <- rest;
            frame.outstanding <- j;
            frame.temp <- frame.dv;
            frame.leg <-
              (if Obs.active t.ctx.obs then
                 Obs.span t.ctx.obs ~parent:frame.span "query"
                   [ ("source", Tracer.I j); ("qid", Tracer.I frame.qid) ]
               else Tracer.none);
            t.ctx.send j
              (Message.Sweep_query
                 { qid = frame.qid; target = j;
                   partial = Partial.copy frame.dv })
        | [] -> (
            match parents with
            | parent :: _ ->
                (* Recursive call returns: merge the child's view change
                   into the parent's and resume the parent. *)
                t.stack <- parents;
                parent.dv <- Partial.add parent.dv frame.dv;
                trace t "frame for src %d returns to src %d" frame.src
                  parent.src;
                Obs.finish t.ctx.obs frame.span;
                advance t
            | [] ->
                let view_delta = Algebra.select_project t.ctx.view frame.dv in
                let txns = List.rev t.rev_batch in
                t.stack <- [];
                t.rev_batch <- [];
                trace t "install batch of %d update(s): %a" (List.length txns)
                  Delta.pp view_delta;
                t.ctx.install view_delta ~txns;
                Obs.finish t.ctx.obs frame.span;
                start_next t))

  and start_next t =
    match t.stack with
    | _ :: _ -> ()
    | [] -> (
        match Update_queue.pop t.ctx.queue with
        | None -> ()
        | Some entry ->
            let i = entry.update.Message.txn.source in
            let n = View_def.n_sources t.ctx.view in
            let frame =
              make_frame t.ctx ~entries:[ entry ] ~left:0 ~src:i
                ~right:(n - 1)
            in
            trace t "ViewChange(%a, 0, %d, %d) begins" Message.pp_txn_id
              entry.update.Message.txn i (n - 1);
            if Obs.active t.ctx.obs then
              frame.span <-
                Obs.span t.ctx.obs (name ^ ".txn")
                  [ ("txn",
                     Tracer.S
                       (Format.asprintf "%a" Message.pp_txn_id
                          entry.update.Message.txn)) ];
            t.stack <- [ frame ];
            t.rev_batch <- [ entry ];
            advance t)

  let on_update t (_ : Update_queue.entry) = start_next t

  let on_answer t msg =
    match (msg, t.stack) with
    | Message.Answer { qid; source = j; partial }, frame :: _
      when qid = frame.qid && j = frame.outstanding ->
        frame.outstanding <- -1;
        Obs.finish t.ctx.obs frame.leg;
        frame.leg <- Tracer.none;
        let interfering = Update_queue.from_source t.ctx.queue j in
        (match interfering with
        | [] -> frame.dv <- partial
        | _ :: _ ->
            let merged =
              Delta.sum
                (List.map (fun e -> e.Update_queue.update.Message.delta)
                   interfering)
            in
            t.ctx.metrics.Metrics.compensations <-
              t.ctx.metrics.Metrics.compensations + 1;
            if Obs.active t.ctx.obs then
              Obs.event t.ctx.obs ~span:frame.span "compensate"
                [ ("source", Tracer.I j);
                  ("interfering", Tracer.I (List.length interfering)) ];
            frame.dv <-
              Algebra.compensate t.ctx.view ~answer:partial ~interfering:merged
                ~temp:frame.temp;
            let depth = List.length t.stack in
            if depth >= t.max_depth then begin
              (* Forced termination (paper §6.2): behave like SWEEP — the
                 update stays queued for its own, later ViewChange. *)
              t.ctx.metrics.Metrics.fallbacks <-
                t.ctx.metrics.Metrics.fallbacks + 1;
              trace t "depth limit: leaving %d update(s) from %d queued"
                (List.length interfering) j;
              if Obs.active t.ctx.obs then
                Obs.event t.ctx.obs ~span:frame.span "fallback"
                  [ ("source", Tracer.I j); ("depth", Tracer.I depth) ]
            end
            else begin
              let absorbed = Update_queue.take_from_source t.ctx.queue j in
              t.rev_batch <- List.rev_append absorbed t.rev_batch;
              (* Bounds per Fig. 6: during the left sweep the frame covers
                 [j..src], so the child evaluates ΔRj's missing terms over
                 j+1..src; during the right sweep it covers [left..j] and
                 the child evaluates over left..j−1. *)
              let child =
                if j < frame.src then
                  make_frame t.ctx ~entries:absorbed ~left:j ~src:j
                    ~right:frame.src
                else
                  make_frame t.ctx ~entries:absorbed ~left:frame.left ~src:j
                    ~right:j
              in
              t.ctx.metrics.Metrics.recursions <-
                t.ctx.metrics.Metrics.recursions + 1;
              let new_depth = depth + 1 in
              if new_depth > t.ctx.metrics.Metrics.max_depth then
                t.ctx.metrics.Metrics.max_depth <- new_depth;
              trace t "recurse: ViewChange(ΔR%d, %d, %d, %d) at depth %d" j
                child.left child.src child.right new_depth;
              if Obs.active t.ctx.obs then
                child.span <-
                  Obs.span t.ctx.obs ~parent:frame.span "frame"
                    [ ("src", Tracer.I child.src);
                      ("left", Tracer.I child.left);
                      ("right", Tracer.I child.right);
                      ("depth", Tracer.I new_depth) ];
              t.stack <- child :: t.stack
            end);
        advance t
    | Message.Answer { qid; source; _ }, _ ->
        invalid_arg
          (Printf.sprintf "Nested_sweep.on_answer: unexpected answer qid=%d from %d"
             qid source)
    | (Message.Snapshot _ | Message.Eca_answer _ | Message.Update_notice _), _
      ->
        invalid_arg "Nested_sweep.on_answer: unexpected message kind"

  let on_source_down _ _ = ()
  let on_source_up _ _ = ()
  let idle t = t.stack = [] && Update_queue.is_empty t.ctx.queue

  module Snap = Repro_durability.Snap

  let snap_of_frame f =
    Snap.List
      [ Snap.List (List.map Algorithm.snap_of_entry f.entries);
        Snap.ints [ f.left; f.src; f.right ];
        Snap.Partial (Partial.copy f.dv); Snap.Partial (Partial.copy f.temp);
        Snap.ints f.pending; Snap.Int f.outstanding; Snap.Int f.qid ]

  let frame_of_snap s =
    match Snap.to_list s with
    | [ entries; bounds; dv; temp; pending; outstanding; qid ] ->
        let left, src, right =
          match Snap.to_ints bounds with
          | [ l; s; r ] -> (l, s, r)
          | _ -> invalid_arg "nested-sweep: malformed frame bounds"
        in
        { entries = List.map Algorithm.entry_of_snap (Snap.to_list entries);
          left; src; right; dv = Snap.to_partial dv;
          temp = Snap.to_partial temp; pending = Snap.to_ints pending;
          outstanding = Snap.to_int outstanding; qid = Snap.to_int qid;
          span = Tracer.none; leg = Tracer.none }
    | _ -> invalid_arg "nested-sweep: malformed frame snapshot"

  (* The batch is checkpointed in delivery order, keeping the encoding
     identical to the pre-deque representation. *)
  let snapshot t =
    Snap.List
      [ Snap.List (List.map snap_of_frame t.stack);
        Snap.List (List.rev_map Algorithm.snap_of_entry t.rev_batch) ]

  let restore ctx s =
    match Snap.to_list s with
    | [ stack; batch ] ->
        { ctx; max_depth = Cfg.max_depth;
          stack = List.map frame_of_snap (Snap.to_list stack);
          rev_batch =
            List.rev_map Algorithm.entry_of_snap (Snap.to_list batch) }
    | _ -> invalid_arg "nested-sweep: malformed snapshot"
end

module Default = Make (struct
  let max_depth = 64
end)

include Default

let with_max_depth d : (module Algorithm.S) =
  (module Make (struct
    let max_depth = d
  end))
