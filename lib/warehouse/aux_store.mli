(** Auxiliary projections for self-maintainable views (DESIGN.md §14).

    SWEEP's 2(n−1) messages/update is the floor only if the warehouse
    stores nothing beyond the view itself. This module keeps, per base
    relation, a counting projection onto a small set of {e tracked}
    columns — maintained as a mini-view from the same installed delta
    stream the main view sees — and a planner that decides, per sweep
    leg, whether the leg can be answered locally from the projection
    (zero messages) or must fall back to a remote query.

    {2 Exactness}

    The projection of source [j] is advanced only when an update is
    {e installed} into the view, so at any instant it equals exactly
    [π_tracked (R_j_init + installed_j)] — the same state a remote
    answer has {e after} interference compensation. A local answer
    therefore needs no compensation; engines add a per-algorithm
    {e overlay} (delivered-but-uninstalled deltas of [j], e.g. the rest
    of a batch) when their remote path would see them.

    {2 Answerability}

    A leg against source [j] is locally answerable iff the tracked
    columns functionally determine the leg's contribution: every column
    of [j] referenced by any join equality, any join residual, the
    selection, or the projection must be tracked. Untracked columns are
    lifted as {!Value.Null} placeholders — never consulted, and
    discarded by the final projection, so answers are bit-identical to
    the remote path. [Keys_only] mode tracks keys + join columns (small,
    may leave some legs remote); [Full] tracks everything referenced
    (every leg local). *)

open Repro_relational

type mode = Off | Keys_only | Full

val mode_to_string : mode -> string

(** Parses ["off" | "keys" | "keys-only" | "full"]. *)
val mode_of_string : string -> mode option

type t

(** A store that answers nothing and stores nothing ([mode = Off]);
    the default for nodes created without auxiliary state. *)
val off : unit -> t

(** [create ~view ~mode ?strategy ~initial ()] projects the initial base
    relations. [initial.(j)] must be source [j]'s relation at warehouse
    genesis (the state [init] the initial view was computed from).
    [strategy] (default {!Join_strategy.default}) selects how
    {!local_answer} executes its leg: [Probe]/[Trie] probe persistent
    hash indexes kept on every projected join column; [Pairwise] copies
    the projection and hash-joins (the pre-index execution). All
    strategies return bit-identical answers. *)
val create :
  view:View_def.t -> mode:mode -> ?strategy:Join_strategy.t ->
  initial:Relation.t array -> unit -> t

val mode : t -> mode

(** The join execution strategy {!local_answer} uses. *)
val strategy : t -> Join_strategy.t

(** Tracked local columns of source [j] (sorted; [[||]] when off). *)
val tracked : t -> int -> int array

(** Whether legs against source [j] can be answered locally. *)
val answers : t -> int -> bool

(** Advance source [j]'s projection by an installed delta. Must be
    called exactly once per installed update, in install order —
    {!Node} does this from its install path (live and replaying). *)
val apply : t -> source:int -> Delta.t -> unit

(** [local_answer t ~target ~partial ~overlay] answers the sweep leg
    joining [partial] with source [target] from the projection, or
    returns [None] when the leg is not locally answerable. [overlay] is
    the sum of delivered-but-uninstalled deltas of [target] that the
    remote path would observe (net of compensation); pass
    [Delta.empty ()] when the remote path would see exactly the
    installed state. [partial] must be adjacent to [target]
    ([target = partial.lo - 1] or [target = partial.hi + 1]). *)
val local_answer :
  t -> target:int -> partial:Partial.t -> overlay:Delta.t -> Partial.t option

(** Serialized size of the current state — the storage side of the
    storage-vs-messages trade-off ([Metrics.aux_bytes]). *)
val bytes : t -> int

(** Deep-copied canonical encoding ({!Snap} tree, sorted entries); rides
    the §8 checkpoint. [Snap.Unit] when off. *)
val snapshot : t -> Repro_durability.Snap.t

(** Restore projections from {!snapshot} output (crash recovery).
    Mode and view must match the store that produced the snapshot. *)
val restore : t -> Repro_durability.Snap.t -> unit

(** Reset projections to warehouse genesis (recovery without a
    checkpoint: WAL replay re-applies every installed delta). *)
val reset : t -> unit
