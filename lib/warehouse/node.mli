(** The warehouse site (paper Figs. 1 and 4).

    Owns the materialized view, the update message queue and the metrics;
    runs one maintenance algorithm. The [LogUpdates] process of Fig. 4 is
    {!deliver} on an [Update_notice]; answers are routed to the
    algorithm's [on_answer]. All messages the algorithm sends are
    instrumented here, and every install is recorded (time, incorporated
    transactions, view snapshot) for the consistency checker.

    The view is stored as a signed {!Bag} on purpose: a correct algorithm
    never drives a count negative, and the node records it when one does
    (the naive baseline's failure mode) instead of crashing.

    With a durability {!Repro_durability.Store} attached, every delivered
    message is WAL-logged {e before} it is processed (and the transport
    acknowledges only after {!deliver} returns, so everything acked is on
    the log), every install is logged for replay verification, and a
    checkpoint is taken every [checkpoint_every] records at the end of a
    delivery — a consistent point. After a crash, {!recover} rebuilds the
    node from the latest checkpoint and {!replay_record} re-drives the WAL
    tail through the algorithm with all externally visible effects
    (metrics, histories, WAL appends, listeners) suppressed — they already
    happened before the crash. *)

open Repro_relational
open Repro_sim
open Repro_protocol
open Repro_durability

type install_record = {
  at : float;
  txns : Message.txn_id list;  (** incorporated by this install *)
  view_after : Bag.t;  (** snapshot right after the install *)
  negative : bool;  (** install drove some count negative *)
}

type t

(** [create engine ~view ~algorithm ~send ~init ()] builds the node.
    [send i msg] must transmit [msg] to source [i] (or to the centralized
    site); [init] is the initial, correct materialized view (paper §5.1
    assumes V starts correct). [record_history] (default true) keeps
    per-install snapshots for the checker. [durability] attaches a WAL +
    checkpoint store; [metrics] lets the caller supply the counter record
    (so it can survive crash/recovery); [queue_capacity] bounds the update
    queue (admission control must hold updates back — see
    {!Update_queue.create}); [obs] attaches structured spans + latency
    histograms (a disabled handle by default — one branch per emission).
    Observability is muted during WAL replay: replayed work was already
    observed before the crash. [breaker] attaches per-source circuit
    breakers: the node routes answer arrivals to
    {!Breaker.record_success}, wires breaker open/close transitions to
    the algorithm's [on_source_down]/[on_source_up] hooks, and
    checkpoints/restores breaker state with the rest of the node.
    [stall_cap] (default 256) bounds how many updates the algorithm may
    park behind open breakers. *)
val create :
  Engine.t ->
  view:View_def.t ->
  algorithm:(module Algorithm.S) ->
  send:(int -> Message.to_source -> unit) ->
  init:Relation.t ->
  ?durability:Store.t ->
  ?metrics:Metrics.t ->
  ?queue_capacity:int ->
  ?breaker:Breaker.t ->
  ?aux:Aux_store.t ->
  ?stall_cap:int ->
  ?record_history:bool ->
  ?trace:Trace.t ->
  ?obs:Repro_observability.Obs.t ->
  unit ->
  t

(** Deliver one message from a source channel. *)
val deliver : t -> Message.to_warehouse -> unit

(** {2 Crash recovery} *)

(** [recover ~prev ?checkpoint ()] — restart after a crash. Volatile
    state (view, queue, algorithm, query-id counter) is rebuilt from
    [checkpoint], or from genesis (initial view, empty queue, fresh
    algorithm) when no checkpoint was taken; durable artifacts — store,
    metrics, install/delivery histories, listeners — carry over from
    [prev]. The caller must then replay the WAL tail:
    {!begin_replay}, {!replay_record} per record, {!end_replay}. *)
val recover : prev:t -> ?checkpoint:Checkpoint.t -> unit -> t

val begin_replay : t -> unit

(** Re-drive one WAL record through the algorithm. [Installed] records
    are not applied — replay regenerates installs; each one is checked
    against the log (raises [Invalid_argument] on divergence). *)
val replay_record : t -> Wal.record -> unit

(** Raises if replay regenerated installs the log does not contain. *)
val end_replay : t -> unit

(** Freeze the node's recoverable state. [wal_pos] is the WAL length at
    capture; [recv_expected] / [senders] are the transport endpoints'
    frozen states (supplied by the wiring layer, which owns the links). *)
val checkpoint :
  t ->
  wal_pos:int ->
  recv_expected:int array ->
  senders:Checkpoint.sender_state array ->
  Checkpoint.t

(** {2 Observation} *)

(** [add_install_listener t f] calls [f delta] after every install, with
    the view-level delta just applied — the feed for downstream
    derivations such as {!Aggregate}. Not fired during replay. *)
val add_install_listener : t -> (Delta.t -> unit) -> unit

(** [add_incorporate_listener t f] calls [f n] after every install that
    incorporated [n] update transactions — the backpressure layer's
    token-release hook. Not fired during replay. *)
val add_incorporate_listener : t -> (int -> unit) -> unit

(** [add_delivery_listener t f] calls [f update] when an update notice is
    delivered (acknowledged) into the warehouse queue — the serving
    tier's staleness feed. Not fired during replay. *)
val add_delivery_listener : t -> (Message.update -> unit) -> unit

(** [add_install_txns_listener t f] calls [f txns] after every install
    with the transaction ids it incorporated — the serving tier's
    catch-up feed. Not fired during replay. *)
val add_install_txns_listener : t -> (Message.txn_id list -> unit) -> unit

(** Current materialized view contents (live; treat as read-only). *)
val view_contents : t -> Bag.t

val metrics : t -> Metrics.t

(** The structured-observability handle passed at {!create} (a disabled
    one when none was). *)
val obs : t -> Repro_observability.Obs.t

val queue : t -> Update_queue.t

(** The breaker passed at {!create}, if any. *)
val breaker : t -> Breaker.t option

(** The self-maintenance aux store ([Aux_store.off ()] when none was
    passed to {!create}). *)
val aux : t -> Aux_store.t

(** At least one source's breaker is currently not closed. *)
val degraded : t -> bool

val algorithm_name : t -> string

(** Installs in order of occurrence. *)
val installs : t -> install_record list

(** Updates in warehouse delivery order. *)
val deliveries : t -> Message.update list

(** Initial view contents (snapshot taken at creation). *)
val initial_view : t -> Bag.t

(** True when the algorithm has no in-flight work and the queue is
    empty. *)
val idle : t -> bool
