open Repro_protocol

type entry = { update : Message.update; arrival : int; arrived_at : float }

(* Entries are kept oldest-first in a two-list deque: [front] holds the
   oldest entries in order, [rear] the newest in reverse. Appends and pops
   are O(1) amortized and the length is cached, so neither the hot append
   path nor the capacity check walks the queue. Mid-queue removal (which
   algorithms need for absorption) rebuilds both lists — it was O(n)
   before and stays O(n). *)
type t = {
  mutable front : entry list;
  mutable rear : entry list;
  mutable len : int;
  mutable next_arrival : int;
  capacity : int option;
}

let create ?capacity () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Update_queue.create: capacity <= 0"
  | _ -> ());
  { front = []; rear = []; len = 0; next_arrival = 0; capacity }

let capacity t = t.capacity

let append t update ~arrived_at =
  (match t.capacity with
  | Some c when t.len >= c ->
      (* Admission control lives above the queue (the harness defers or
         sheds before delivery); reaching this point is a wiring bug. *)
      invalid_arg "Update_queue.append: over capacity"
  | _ -> ());
  let entry = { update; arrival = t.next_arrival; arrived_at } in
  t.next_arrival <- t.next_arrival + 1;
  t.rear <- entry :: t.rear;
  t.len <- t.len + 1;
  entry

(* Crash recovery: rebuild a queue from checkpointed entries, preserving
   their original arrival numbers and the next number to assign. *)
let of_entries ?capacity entries ~next_arrival =
  let t = create ?capacity () in
  t.front <- entries;
  t.len <- List.length entries;
  t.next_arrival <- next_arrival;
  t

let normalize t =
  if t.front = [] then begin
    t.front <- List.rev t.rear;
    t.rear <- []
  end

let pop t =
  normalize t;
  match t.front with
  | [] -> None
  | e :: rest ->
      t.front <- rest;
      t.len <- t.len - 1;
      Some e

(* Degraded-mode abort path: return an entry to the head so the next
   [pop] re-yields it (its arrival number is unchanged). *)
let push_front t e =
  (match t.capacity with
  | Some c when t.len >= c -> invalid_arg "Update_queue.push_front: over capacity"
  | _ -> ());
  t.front <- e :: t.front;
  t.len <- t.len + 1

(* Oldest entry satisfying [eligible], skipping (and preserving) parked
   ones. O(parked prefix) per call — the parked prefix is bounded by the
   stall cap. *)
let pop_eligible t ~eligible =
  let rec go skipped =
    match pop t with
    | None -> (None, List.rev skipped)
    | Some e -> if eligible e then (Some e, List.rev skipped) else go (e :: skipped)
  in
  let found, skipped = go [] in
  (* put the skipped prefix back in order ahead of whatever remains *)
  List.iter (fun e -> push_front t e) (List.rev skipped);
  found

let peek t =
  normalize t;
  match t.front with [] -> None | e :: _ -> Some e

let is_empty t = t.len = 0
let length t = t.len
let entries t = t.front @ List.rev t.rear

let take t ~max =
  if max < 0 then invalid_arg "Update_queue.take: max < 0";
  let rec go k acc =
    if k = 0 then List.rev acc
    else match pop t with None -> List.rev acc | Some e -> go (k - 1) (e :: acc)
  in
  go max []

(* Batched variant of [pop_eligible]: up to [max] eligible entries in
   arrival order, skipping (and preserving) ineligible ones. *)
let take_eligible t ~max ~eligible =
  if max < 0 then invalid_arg "Update_queue.take_eligible: max < 0";
  let all = entries t in
  let rec go k taken kept = function
    | [] -> (List.rev taken, List.rev kept)
    | e :: rest ->
        if k > 0 && eligible e then go (k - 1) (e :: taken) kept rest
        else go k taken (e :: kept) rest
  in
  let taken, kept = go max [] [] all in
  t.front <- kept;
  t.rear <- [];
  t.len <- List.length kept;
  taken

let from_source t j =
  List.filter (fun e -> e.update.Message.txn.source = j) (entries t)

let take_from_source t j =
  let mine, rest =
    List.partition (fun e -> e.update.Message.txn.source = j) (entries t)
  in
  t.front <- rest;
  t.rear <- [];
  t.len <- List.length rest;
  mine

let last_arrival t = t.next_arrival - 1
