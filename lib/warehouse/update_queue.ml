open Repro_protocol

type entry = { update : Message.update; arrival : int; arrived_at : float }

(* Entries are kept oldest-first in a plain list: queues stay short (the
   max length is itself a reported metric) and algorithms need mid-queue
   removal, which a functional list does simply. *)
type t = {
  mutable items : entry list;
  mutable next_arrival : int;
  capacity : int option;
}

let create ?capacity () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Update_queue.create: capacity <= 0"
  | _ -> ());
  { items = []; next_arrival = 0; capacity }

let capacity t = t.capacity

let append t update ~arrived_at =
  (match t.capacity with
  | Some c when List.length t.items >= c ->
      (* Admission control lives above the queue (the harness defers or
         sheds before delivery); reaching this point is a wiring bug. *)
      invalid_arg "Update_queue.append: over capacity"
  | _ -> ());
  let entry = { update; arrival = t.next_arrival; arrived_at } in
  t.next_arrival <- t.next_arrival + 1;
  t.items <- t.items @ [ entry ];
  entry

(* Crash recovery: rebuild a queue from checkpointed entries, preserving
   their original arrival numbers and the next number to assign. *)
let of_entries ?capacity entries ~next_arrival =
  let t = create ?capacity () in
  t.items <- entries;
  t.next_arrival <- next_arrival;
  t

let pop t =
  match t.items with
  | [] -> None
  | e :: rest ->
      t.items <- rest;
      Some e

let peek t = match t.items with [] -> None | e :: _ -> Some e
let is_empty t = t.items = []
let length t = List.length t.items

let from_source t j =
  List.filter (fun e -> e.update.Message.txn.source = j) t.items

let take_from_source t j =
  let mine, rest =
    List.partition (fun e -> e.update.Message.txn.source = j) t.items
  in
  t.items <- rest;
  mine

let entries t = t.items
let last_arrival t = t.next_arrival - 1
