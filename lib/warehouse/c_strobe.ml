open Repro_relational
open Repro_sim
open Repro_protocol
module Obs = Repro_observability.Obs
module Tracer = Repro_observability.Tracer

let name = "c-strobe"

(* One (possibly compensating) query: the chain join with [pins] replacing
   the pinned sources' relations. [pin_ids] (sorted arrival numbers, the
   initial update itself included) identify the pin set so each distinct
   compensation is sent at most once. *)
type job = {
  pins : (int * Delta.t) list;
  pin_ids : int list;
  mutable dv : Partial.t;
  mutable pending : int list;  (* next positions to incorporate, in order *)
  mutable outstanding : int;
  qid : int;
  mutable span : Tracer.id; (* lint: allow L5 volatile span ids: never checkpointed, Tracer.none after restore *)
  mutable leg : Tracer.id;
}

type current = {
  entry : Update_queue.entry;
  mutable jobs : job list;
  spawned : (int list, unit) Hashtbl.t;  (* pin-id sets already issued *)
  mutable answer : Partial.t option;  (* full-width accumulator *)
  mutable killed : (int, unit) Hashtbl.t;  (* arrivals already key-killed *)
  mutable kills : (int * Tuple.t) list;  (* (source, key) kills to apply *)
  mutable finished : bool;  (* finalize-once guard *)
  delete_view_delta : Delta.t;  (* local handling of the delete part *)
  (* lint: allow L5 volatile span id, like the jobs': Tracer.none after restore *)
  mutable span : Tracer.id;
}

type t = { ctx : Algorithm.ctx; mutable current : current option }

let create ctx =
  Keys.require_keys ~algorithm:"C-strobe" ctx.Algorithm.view;
  { ctx; current = None }

let trace t fmt =
  Trace.emit t.ctx.Algorithm.trace ~time:(Engine.now t.ctx.engine)
    ~who:"warehouse" fmt

(* Positions a job must incorporate, sweeping out from its lowest pin. *)
let job_order ~n ~start =
  let left = List.init start (fun k -> start - 1 - k) in
  let right = List.init (n - 1 - start) (fun k -> start + 1 + k) in
  left @ right

let make_job t ~pins ~pin_ids =
  let n = View_def.n_sources t.ctx.Algorithm.view in
  let start, start_delta =
    match List.sort (fun (a, _) (b, _) -> Int.compare a b) pins with
    | (s, d) :: _ -> (s, d)
    | [] -> invalid_arg "C_strobe.make_job: no pins"
  in
  { pins; pin_ids;
    dv = Partial.of_source_delta t.ctx.Algorithm.view start start_delta;
    pending = job_order ~n ~start; outstanding = -1;
    qid = t.ctx.Algorithm.fresh_qid (); span = Tracer.none;
    leg = Tracer.none }

let rec advance t cur job =
  match job.pending with
  | j :: rest -> (
      job.pending <- rest;
      match List.assoc_opt j job.pins with
      | Some pin ->
          (* Pinned position: joined locally, no message. *)
          let pp = Partial.of_source_delta t.ctx.view j pin in
          job.dv <-
            (if j < job.dv.Partial.lo then Algebra.join t.ctx.view pp job.dv
             else Algebra.join t.ctx.view job.dv pp);
          advance t cur job
      | None ->
          job.outstanding <- j;
          job.leg <-
            (if Obs.active t.ctx.obs then
               Obs.span t.ctx.obs ~parent:job.span "query"
                 [ ("source", Tracer.I j); ("qid", Tracer.I job.qid) ]
             else Tracer.none);
          t.ctx.send j
            (Message.Sweep_query
               { qid = job.qid; target = j; partial = Partial.copy job.dv }))
  | [] -> complete t cur job

and complete t cur job =
  Obs.finish t.ctx.obs job.span;
  cur.jobs <- List.filter (fun j -> j.qid <> job.qid) cur.jobs;
  cur.answer <-
    Some
      (match cur.answer with
      | None -> job.dv
      | Some a -> Partial.add a job.dv);
  (* Conservative concurrency scan: every queued update delivered after
     the one being processed. *)
  let concurrent =
    List.filter
      (fun e -> e.Update_queue.arrival > cur.entry.Update_queue.arrival)
      (Update_queue.entries t.ctx.queue)
  in
  let children = ref [] in
  List.iter
    (fun e ->
      let d = e.Update_queue.update.Message.delta in
      let src = e.Update_queue.update.Message.txn.source in
      (* Concurrent inserts: key-delete from the accumulated answer (once
         per concurrent update). *)
      if not (Hashtbl.mem cur.killed e.arrival) then begin
        Hashtbl.replace cur.killed e.arrival ();
        Delta.iter
          (fun tup c ->
            if c > 0 then
              cur.kills <-
                (src, Keys.source_tuple_key t.ctx.view src tup) :: cur.kills)
          d
      end;
      (* Concurrent deletes: compensating query with the deleted tuples
         pinned in, for every pin set not yet issued. *)
      let dels = Delta.negative_part d in
      if
        (not (Delta.is_empty dels))
        && (not (List.mem_assoc src job.pins))
        && not (List.mem e.arrival job.pin_ids)
      then begin
        let pin_ids = List.sort Int.compare (e.arrival :: job.pin_ids) in
        if not (Hashtbl.mem cur.spawned pin_ids) then begin
          Hashtbl.replace cur.spawned pin_ids ();
          let child =
            make_job t ~pins:((src, dels) :: job.pins) ~pin_ids
          in
          trace t "c-strobe: compensating query %d (pins %s)" child.qid
            (String.concat "," (List.map string_of_int pin_ids));
          if Obs.active t.ctx.obs then
            child.span <-
              Obs.span t.ctx.obs ~parent:cur.span "job"
                [ ("qid", Tracer.I child.qid);
                  ("pins", Tracer.I (List.length child.pins));
                  ("compensating", Tracer.B true) ];
          children := child :: !children
        end
      end)
    concurrent;
  (* Register every child before advancing any: a fully-pinned child
     completes synchronously and must not observe an empty job set and
     finalize prematurely. *)
  let children = List.rev !children in
  cur.jobs <- children @ cur.jobs;
  List.iter (fun child -> advance t cur child) children;
  if cur.jobs = [] && not cur.finished then begin
    cur.finished <- true;
    finalize t cur
  end

and finalize t cur =
  let view = t.ctx.view in
  let contents = t.ctx.view_contents () in
  let working = Bag.copy contents in
  Bag.merge_into ~into:working cur.delete_view_delta;
  (match cur.answer with
  | None -> ()
  | Some a ->
      let full = a.Partial.data in
      let by_source = Hashtbl.create 8 in
      List.iter
        (fun (src, key) ->
          let tbl =
            match Hashtbl.find_opt by_source src with
            | Some tbl -> tbl
            | None ->
                let tbl = Hashtbl.create 4 in
                Hashtbl.replace by_source src tbl;
                tbl
          in
          Hashtbl.replace tbl key ())
        cur.kills;
      Hashtbl.iter
        (fun src keys -> Keys.kill_full view ~full ~source:src ~keys)
        by_source;
      let view_delta =
        Algebra.select_project view
          { Partial.lo = 0; hi = View_def.n_sources view - 1; data = full }
      in
      (* Duplicate suppression: the keys make any already-present tuple a
         duplicate derivation. *)
      Delta.iter
        (fun tup c -> if c > 0 && not (Bag.mem working tup) then
            Bag.add working tup 1)
        view_delta);
  let delta = Bag.copy working in
  Bag.diff_into ~into:delta contents;
  let entry = cur.entry in
  t.current <- None;
  t.ctx.install delta ~txns:[ entry ];
  Obs.finish t.ctx.obs cur.span;
  start_next t

and start_next t =
  match t.current with
  | Some _ -> ()
  | None -> (
      match Update_queue.pop t.ctx.queue with
      | None -> ()
      | Some entry ->
          let view = t.ctx.view in
          let i = entry.update.Message.txn.source in
          let delta = entry.update.Message.delta in
          let deletes = Delta.negative_part delta in
          let inserts = Delta.positive_part delta in
          (* Deletes are applied locally by key (C-strobe's optimization):
             build the view-level deletion now, against the current
             contents. *)
          let delete_view_delta = Delta.empty () in
          Delta.iter
            (fun tup _ ->
              let key = Keys.source_tuple_key view i tup in
              Bag.merge_into ~into:delete_view_delta
                (Keys.view_deletion view ~contents:(t.ctx.view_contents ())
                   ~source:i ~key))
            deletes;
          let span =
            if Obs.active t.ctx.obs then
              Obs.span t.ctx.obs "c-strobe.txn"
                [ ("txn",
                   Tracer.S
                     (Format.asprintf "%a" Message.pp_txn_id
                        entry.update.Message.txn)) ]
            else Tracer.none
          in
          let cur =
            { entry; jobs = []; spawned = Hashtbl.create 32; answer = None;
              killed = Hashtbl.create 8; kills = []; finished = false;
              delete_view_delta; span }
          in
          t.current <- Some cur;
          if Delta.is_empty inserts then begin
            cur.finished <- true;
            finalize t cur
          end
          else begin
            let job =
              make_job t ~pins:[ (i, inserts) ] ~pin_ids:[ entry.arrival ]
            in
            if Obs.active t.ctx.obs then
              job.span <-
                Obs.span t.ctx.obs ~parent:cur.span "job"
                  [ ("qid", Tracer.I job.qid);
                    ("pins", Tracer.I 1) ];
            Hashtbl.replace cur.spawned [ entry.arrival ] ();
            cur.jobs <- [ job ];
            advance t cur job
          end)

let on_update t (_ : Update_queue.entry) = start_next t

let on_answer t msg =
  match (msg, t.current) with
  | Message.Answer { qid; source = j; partial }, Some cur -> (
      match List.find_opt (fun job -> job.qid = qid) cur.jobs with
      | Some job when job.outstanding = j ->
          job.outstanding <- -1;
          Obs.finish t.ctx.obs job.leg;
          job.leg <- Tracer.none;
          job.dv <- partial;
          advance t cur job
      | Some _ | None ->
          invalid_arg
            (Printf.sprintf "C_strobe.on_answer: unexpected answer qid=%d" qid))
  | Message.Answer _, None ->
      invalid_arg "C_strobe.on_answer: answer with no update in progress"
  | (Message.Snapshot _ | Message.Eca_answer _ | Message.Update_notice _), _ ->
      invalid_arg "C_strobe.on_answer: unexpected message kind"

let on_source_down _ _ = ()
let on_source_up _ _ = ()
let idle t = t.current = None && Update_queue.is_empty t.ctx.queue

module Snap = Repro_durability.Snap

let snap_of_job job =
  Snap.List
    [ Snap.List
        (List.map
           (fun (src, d) ->
             Snap.List [ Snap.Int src; Snap.Delta (Delta.copy d) ])
           job.pins);
      Snap.ints job.pin_ids; Snap.Partial (Partial.copy job.dv);
      Snap.ints job.pending; Snap.Int job.outstanding; Snap.Int job.qid ]

let job_of_snap s =
  match Snap.to_list s with
  | [ pins; pin_ids; dv; pending; outstanding; qid ] ->
      { pins =
          List.map
            (fun p ->
              match Snap.to_list p with
              | [ src; d ] -> (Snap.to_int src, Snap.to_delta d)
              | _ -> invalid_arg "C_strobe: malformed pin snapshot")
            (Snap.to_list pins);
        pin_ids = Snap.to_ints pin_ids; dv = Snap.to_partial dv;
        pending = Snap.to_ints pending; outstanding = Snap.to_int outstanding;
        qid = Snap.to_int qid; span = Tracer.none; leg = Tracer.none }
  | _ -> invalid_arg "C_strobe: malformed job snapshot"

(* Canonical hashtable dumps: spawned pin-id sets and killed arrivals
   sorted so equal states encode identically. *)
let snap_of_current cur =
  let spawned =
    Hashtbl.fold (fun ids () acc -> ids :: acc) cur.spawned []
    |> List.sort compare |> List.map Snap.ints
  in
  let killed =
    Hashtbl.fold (fun a () acc -> a :: acc) cur.killed []
    |> List.sort Int.compare
  in
  Snap.List
    [ Algorithm.snap_of_entry cur.entry;
      Snap.List (List.map snap_of_job cur.jobs); Snap.List spawned;
      Snap.option (fun a -> Snap.Partial (Partial.copy a)) cur.answer;
      Snap.ints killed;
      Snap.List
        (List.map
           (fun (src, key) ->
             Snap.List [ Snap.Int src; Snap.Tup (Array.copy key) ])
           cur.kills);
      Snap.Bool cur.finished; Snap.Delta (Delta.copy cur.delete_view_delta) ]

let current_of_snap s =
  match Snap.to_list s with
  | [ entry; jobs; spawned; answer; killed; kills; finished; dvd ] ->
      let spawned_tbl = Hashtbl.create 32 in
      List.iter
        (fun ids -> Hashtbl.replace spawned_tbl (Snap.to_ints ids) ())
        (Snap.to_list spawned);
      let killed_tbl = Hashtbl.create 8 in
      List.iter (fun a -> Hashtbl.replace killed_tbl a ()) (Snap.to_ints killed);
      { entry = Algorithm.entry_of_snap entry;
        jobs = List.map job_of_snap (Snap.to_list jobs); spawned = spawned_tbl;
        answer = Snap.to_option Snap.to_partial answer; killed = killed_tbl;
        kills =
          List.map
            (fun k ->
              match Snap.to_list k with
              | [ src; key ] -> (Snap.to_int src, Snap.to_tuple key)
              | _ -> invalid_arg "C_strobe: malformed kill snapshot")
            (Snap.to_list kills);
        finished = Snap.to_bool finished;
        delete_view_delta = Snap.to_delta dvd; span = Tracer.none }
  | _ -> invalid_arg "C_strobe: malformed current snapshot"

let snapshot t = Snap.option snap_of_current t.current

let restore ctx s =
  Keys.require_keys ~algorithm:"C-strobe" ctx.Algorithm.view;
  { ctx; current = Snap.to_option current_of_snap s }
