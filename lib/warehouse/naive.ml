include Sweep_engine.Make (struct
  let name = "naive"

  (* No on-line error correction — the whole point of this baseline. *)
  let compensate = false

  (* And no self-maintenance either: the baseline measures the cost of
     always asking the sources. *)
  let local_answers = false

  type extra = unit

  let create_extra _ = ()

  let on_complete ctx () view_delta entry =
    ctx.Algorithm.install view_delta ~txns:[ entry ]

  let extra_idle () = true
  let extra_snapshot () = Repro_durability.Snap.Unit
  let extra_restore _ _ = ()
end)
