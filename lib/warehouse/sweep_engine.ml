open Repro_relational
open Repro_sim
open Repro_protocol
module Obs = Repro_observability.Obs
module Tracer = Repro_observability.Tracer

module type POLICY = sig
  val name : string
  val compensate : bool

  (* Whether sweep legs may be answered from the aux store (DESIGN.md
     §14). Requires the policy to install each completed entry before
     the next ViewChange starts: the aux projections advance at install
     time, and a policy that buffers completed-but-uninstalled entries
     (sweep-global) would leave their deltas visible to neither the aux
     store nor the interference-compensation queue scan. *)
  val local_answers : bool

  type extra

  val create_extra : Algorithm.ctx -> extra

  val on_complete :
    Algorithm.ctx -> extra -> Delta.t -> Update_queue.entry -> unit

  val extra_idle : extra -> bool
  val extra_snapshot : extra -> Repro_durability.Snap.t
  val extra_restore : Algorithm.ctx -> Repro_durability.Snap.t -> extra
end

module Snap = Repro_durability.Snap

module Make (P : POLICY) = struct
  (* State of the in-progress ViewChange: [pending] is the sweep-order
     list of sources still to query; [temp] is TempView — the ΔV that was
     sent with the outstanding query. *)
  type view_change = {
    entry : Update_queue.entry;
    mutable dv : Partial.t;
    mutable temp : Partial.t;
    mutable outstanding : int;
    mutable pending : int list;
    qid : int;
    mutable span : Tracer.id; (* lint: allow L5 volatile span ids: never checkpointed, Tracer.none after a crash restore (recovery truncates the span tree) *)
    mutable leg : Tracer.id;
  }

  type t = {
    ctx : Algorithm.ctx;
    extra : P.extra;
    mutable current : view_change option;
    mutable aborted : int list;
        (* qids of view changes aborted by a breaker trip: their late
           answers are dropped, not errors *)
    mutable stall_mark : int;
        (* highest arrival number already counted in [stalled_updates] *)
  }

  let name = P.name

  let create ctx =
    { ctx; extra = P.create_extra ctx; current = None; aborted = [];
      stall_mark = -1 }

  let trace t fmt =
    Trace.emit t.ctx.Algorithm.trace ~time:(Engine.now t.ctx.engine)
      ~who:"warehouse" fmt

  (* Legs answerable from the aux store need no remote round trip —
     and no compensation: the projections advance at install time, so
     they equal exactly what a compensated remote answer reflects
     (queued interference never made it into either). *)
  let local t j =
    P.local_answers && Aux_store.answers t.ctx.Algorithm.aux j

  (* Degraded mode (DESIGN.md §12): parked entries stay in the queue,
     which keeps them visible to the [from_source] interference test — a
     sweep that overtakes them still subtracts their effect from
     answers, so each cross term is counted exactly once and
     replay-after-heal converges to the fault-free view. *)
  let note_parked t =
    let parked, mark =
      Algorithm.note_parked ~local:(local t) t.ctx ~stall_mark:t.stall_mark
        ~event:(P.name ^ ".park")
    in
    t.stall_mark <- mark;
    parked

  let rec advance t =
    match t.current with
    | None -> ()
    | Some vc -> (
        match vc.pending with
        | j :: rest -> (
            match
              if local t j then
                Algorithm.local_answer t.ctx ~name:P.name ~span:vc.span
                  ~target:j ~partial:vc.dv ~overlay:(Delta.empty ()) ()
              else None
            with
            | Some dv ->
                (* leg answered from the aux store: no message, no
                   compensation (the projection already reflects exactly
                   the installed state a compensated answer would) *)
                vc.pending <- rest;
                vc.dv <- dv;
                advance t
            | None ->
                vc.pending <- rest;
                vc.outstanding <- j;
                vc.temp <- vc.dv;
                vc.leg <-
                  (if Obs.active t.ctx.obs then
                     Obs.span t.ctx.obs ~parent:vc.span "query"
                       [ ("source", Tracer.I j); ("qid", Tracer.I vc.qid) ]
                   else Tracer.none);
                t.ctx.send j
                  (Message.Sweep_query
                     { qid = vc.qid; target = j; partial = Partial.copy vc.dv }))
        | [] ->
            let view_delta = Algebra.select_project t.ctx.view vc.dv in
            trace t "%s: ViewChange(%a) yields %a" P.name Message.pp_txn_id
              vc.entry.update.Message.txn Delta.pp view_delta;
            t.current <- None;
            P.on_complete t.ctx t.extra view_delta vc.entry;
            Obs.finish t.ctx.obs vc.span;
            start_next t)

  (* The UpdateView process of Fig. 4: take the oldest queued update and
     run ViewChange for it — the oldest *eligible* one while breakers are
     open (blocking again once the stall cap is hit). *)
  and start_next t =
    match t.current with
    | Some _ -> ()
    | None -> (
        let parked = note_parked t in
        let popped =
          (* at the stall cap, fall back to blocking on the dead source *)
          if parked = 0 || parked >= t.ctx.Algorithm.stall_cap then
            Update_queue.pop t.ctx.queue
          else
            Update_queue.pop_eligible t.ctx.queue
              ~eligible:(Algorithm.sweep_eligible ~local:(local t) t.ctx)
        in
        match popped with
        | None -> ()
        | Some entry ->
            let i = entry.update.Message.txn.source in
            let n = View_def.n_sources t.ctx.view in
            let dv =
              Partial.of_source_delta t.ctx.view i entry.update.Message.delta
            in
            let span =
              if Obs.active t.ctx.obs then
                Obs.span t.ctx.obs (P.name ^ ".txn")
                  [ ("txn",
                     Tracer.S
                       (Format.asprintf "%a" Message.pp_txn_id
                          entry.update.Message.txn)) ]
              else Tracer.none
            in
            let vc =
              { entry; dv; temp = dv; outstanding = -1;
                pending = Sweep_order.order ~n ~i; qid = t.ctx.fresh_qid ();
                span; leg = Tracer.none }
            in
            t.current <- Some vc;
            advance t)

  let on_update t (_ : Update_queue.entry) = start_next t

  let on_answer t msg =
    match (msg, t.current) with
    | Message.Answer { qid; source = j; partial }, Some vc
      when qid = vc.qid && j = vc.outstanding ->
        vc.outstanding <- -1;
        Obs.finish t.ctx.obs vc.leg;
        vc.leg <- Tracer.none;
        (* On-line error correction (paper §4): any update from j still in
           the queue was applied at j before our query was evaluated. *)
        let interfering =
          if P.compensate then Update_queue.from_source t.ctx.queue j else []
        in
        (match interfering with
        | [] -> vc.dv <- partial
        | _ :: _ ->
            let merged =
              Delta.sum
                (List.map (fun e -> e.Update_queue.update.Message.delta)
                   interfering)
            in
            t.ctx.metrics.Metrics.compensations <-
              t.ctx.metrics.Metrics.compensations + 1;
            trace t "compensate answer from %d for %d interfering update(s)" j
              (List.length interfering);
            if Obs.active t.ctx.obs then
              Obs.event t.ctx.obs ~span:vc.span "compensate"
                [ ("source", Tracer.I j);
                  ("interfering", Tracer.I (List.length interfering)) ];
            vc.dv <-
              Algebra.compensate t.ctx.view ~answer:partial ~interfering:merged
                ~temp:vc.temp);
        advance t
    | Message.Answer { qid; source; _ }, _ when List.mem qid t.aborted ->
        (* late answer for a breaker-aborted view change (the stale query
           doubled as the recovery probe): the update it answered was
           pushed back and will re-run with a fresh qid *)
        t.aborted <- List.filter (fun q -> q <> qid) t.aborted;
        trace t "%s: dropped answer for aborted qid=%d from %d" P.name qid
          source;
        start_next t
    | Message.Answer { qid; source; _ }, _ ->
        invalid_arg
          (Printf.sprintf "%s: unexpected answer qid=%d from %d" P.name qid
             source)
    | (Message.Snapshot _ | Message.Eca_answer _ | Message.Update_notice _), _
      ->
        invalid_arg (P.name ^ ": unexpected message kind")

  (* Source [j]'s breaker opened. If the in-flight view change still has
     a leg through [j] (outstanding or pending), abort it: discard the
     partial ΔV, return the update to the head of the queue (arrival
     number intact) and remember the stale qid so its late answer is
     dropped. The re-run recomputes from scratch through the normal
     compensation path, so aborting never double-applies anything. *)
  let on_source_down t j =
    (match t.current with
    | Some vc
      when vc.outstanding = j || (List.mem j vc.pending && not (local t j)) ->
        t.aborted <- vc.qid :: t.aborted;
        Update_queue.push_front t.ctx.queue vc.entry;
        t.current <- None;
        trace t "%s: abort ViewChange(%a) — source %d tripped" P.name
          Message.pp_txn_id vc.entry.update.Message.txn j;
        if Obs.active t.ctx.obs then
          Obs.event t.ctx.obs ~span:vc.span (P.name ^ ".abort")
            [ ("source", Tracer.I j); ("qid", Tracer.I vc.qid) ];
        Obs.finish t.ctx.obs vc.leg;
        Obs.finish t.ctx.obs vc.span
    | _ -> ());
    (* other queued updates may still be eligible *)
    start_next t

  (* Source [j] healed: parked entries are eligible again; replay them
     (oldest first) through the normal path. *)
  let on_source_up t _j = start_next t

  let idle t =
    t.current = None
    && Update_queue.is_empty t.ctx.queue
    && P.extra_idle t.extra

  let snap_of_vc vc =
    Snap.List
      [ Algorithm.snap_of_entry vc.entry; Snap.Partial (Partial.copy vc.dv);
        Snap.Partial (Partial.copy vc.temp); Snap.Int vc.outstanding;
        Snap.ints vc.pending; Snap.Int vc.qid ]

  let vc_of_snap s =
    match Snap.to_list s with
    | [ entry; dv; temp; outstanding; pending; qid ] ->
        { entry = Algorithm.entry_of_snap entry; dv = Snap.to_partial dv;
          temp = Snap.to_partial temp; outstanding = Snap.to_int outstanding;
          pending = Snap.to_ints pending; qid = Snap.to_int qid;
          span = Tracer.none; leg = Tracer.none }
    | _ -> invalid_arg (P.name ^ ": malformed view-change snapshot")

  let snapshot t =
    Snap.List
      [ Snap.option snap_of_vc t.current; P.extra_snapshot t.extra;
        Snap.ints t.aborted; Snap.Int t.stall_mark ]

  let restore ctx s =
    match Snap.to_list s with
    | [ current; extra; aborted; stall_mark ] ->
        { ctx; extra = P.extra_restore ctx extra;
          current = Snap.to_option vc_of_snap current;
          aborted = Snap.to_ints aborted; stall_mark = Snap.to_int stall_mark }
    | _ -> invalid_arg (P.name ^ ": malformed snapshot")
end
