open Repro_relational
open Repro_sim
open Repro_protocol
module Obs = Repro_observability.Obs
module Tracer = Repro_observability.Tracer

let name = "sweep-parallel"

(* One directional sweep: its own query id, its own TempView, its own list
   of sources still to visit. *)
type side = {
  qid : int;
  mutable dv : Partial.t;
  mutable temp : Partial.t;
  mutable pending : int list;
  mutable outstanding : int;
  mutable finished : bool;
  mutable span : Tracer.id; (* lint: allow L5 volatile span ids: never checkpointed, Tracer.none after restore *)
  mutable leg : Tracer.id;
}

type view_change = {
  entry : Update_queue.entry;
  src : int;
  left : side;
  right : side;
  (* lint: allow L5 volatile span id, like the sides': Tracer.none after restore *)
  mutable span : Tracer.id;
}

type t = { ctx : Algorithm.ctx; mutable current : view_change option }

let create ctx = { ctx; current = None }

let trace t fmt =
  Trace.emit t.ctx.Algorithm.trace ~time:(Engine.now t.ctx.engine)
    ~who:"warehouse" fmt

let advance_side t side =
  match side.pending with
  | j :: rest ->
      side.pending <- rest;
      side.outstanding <- j;
      side.temp <- side.dv;
      side.leg <-
        (if Obs.active t.ctx.obs then
           Obs.span t.ctx.obs ~parent:side.span "query"
             [ ("source", Tracer.I j); ("qid", Tracer.I side.qid) ]
         else Tracer.none);
      t.ctx.send j
        (Message.Sweep_query
           { qid = side.qid; target = j; partial = Partial.copy side.dv })
  | [] ->
      if not side.finished then Obs.finish t.ctx.obs side.span;
      side.finished <- true

let rec maybe_finish t =
  match t.current with
  | Some vc when vc.left.finished && vc.right.finished ->
      (* ΔV = ΔV_left ⋈ ΔV_right (§5.3). The right sweep started from a
         unit-count copy of ΔR, so counts multiply correctly here. *)
      let merged =
        Algebra.merge_overlap t.ctx.view ~at:vc.src ~left:vc.left.dv
          ~right:vc.right.dv
      in
      let view_delta = Algebra.select_project t.ctx.view merged in
      trace t "parallel install for %a: %a" Message.pp_txn_id
        vc.entry.update.Message.txn Delta.pp view_delta;
      t.current <- None;
      t.ctx.install view_delta ~txns:[ vc.entry ];
      Obs.finish t.ctx.obs vc.span;
      start_next t
  | Some _ | None -> ()

and start_next t =
  match t.current with
  | Some _ -> ()
  | None -> (
      match Update_queue.pop t.ctx.queue with
      | None -> ()
      | Some entry ->
          let i = entry.update.Message.txn.source in
          let n = View_def.n_sources t.ctx.view in
          let delta = entry.update.Message.delta in
          let left =
            { qid = t.ctx.fresh_qid ();
              dv = Partial.of_source_delta t.ctx.view i delta;
              temp = Partial.of_source_delta t.ctx.view i delta;
              pending = List.init i (fun k -> i - 1 - k);
              outstanding = -1; finished = false; span = Tracer.none;
              leg = Tracer.none }
          in
          let right =
            { qid = t.ctx.fresh_qid ();
              dv = Partial.of_source_delta t.ctx.view i (Delta.distinct delta);
              temp = Partial.of_source_delta t.ctx.view i (Delta.distinct delta);
              pending = List.init (n - 1 - i) (fun k -> i + 1 + k);
              outstanding = -1; finished = false; span = Tracer.none;
              leg = Tracer.none }
          in
          trace t "parallel ViewChange(%a): left %d hops, right %d hops"
            Message.pp_txn_id entry.update.Message.txn i
            (n - 1 - i);
          let span =
            if Obs.active t.ctx.obs then
              Obs.span t.ctx.obs "sweep-parallel.txn"
                [ ("txn",
                   Tracer.S
                     (Format.asprintf "%a" Message.pp_txn_id
                        entry.update.Message.txn)) ]
            else Tracer.none
          in
          if Obs.active t.ctx.obs then begin
            left.span <-
              Obs.span t.ctx.obs ~parent:span "left"
                [ ("hops", Tracer.I i) ];
            right.span <-
              Obs.span t.ctx.obs ~parent:span "right"
                [ ("hops", Tracer.I (n - 1 - i)) ]
          end;
          t.current <- Some { entry; src = i; left; right; span };
          advance_side t left;
          advance_side t right;
          maybe_finish t)

let on_update t (_ : Update_queue.entry) = start_next t

let on_answer t msg =
  match (msg, t.current) with
  | Message.Answer { qid; source = j; partial }, Some vc
    when (qid = vc.left.qid && j = vc.left.outstanding)
         || (qid = vc.right.qid && j = vc.right.outstanding) ->
      let side = if qid = vc.left.qid then vc.left else vc.right in
      side.outstanding <- -1;
      Obs.finish t.ctx.obs side.leg;
      side.leg <- Tracer.none;
      let interfering = Update_queue.from_source t.ctx.queue j in
      (match interfering with
      | [] -> side.dv <- partial
      | _ :: _ ->
          let merged =
            Delta.sum
              (List.map (fun e -> e.Update_queue.update.Message.delta)
                 interfering)
          in
          t.ctx.metrics.Metrics.compensations <-
            t.ctx.metrics.Metrics.compensations + 1;
          if Obs.active t.ctx.obs then
            Obs.event t.ctx.obs ~span:side.span "compensate"
              [ ("source", Tracer.I j);
                ("interfering", Tracer.I (List.length interfering)) ];
          side.dv <-
            Algebra.compensate t.ctx.view ~answer:partial ~interfering:merged
              ~temp:side.temp);
      advance_side t side;
      maybe_finish t
  | Message.Answer { qid; source; _ }, _ ->
      invalid_arg
        (Printf.sprintf
           "Sweep_parallel.on_answer: unexpected answer qid=%d from %d" qid
           source)
  | (Message.Snapshot _ | Message.Eca_answer _ | Message.Update_notice _), _ ->
      invalid_arg "Sweep_parallel.on_answer: unexpected message kind"

let on_source_down _ _ = ()
let on_source_up _ _ = ()
let idle t = t.current = None && Update_queue.is_empty t.ctx.queue

module Snap = Repro_durability.Snap

let snap_of_side s =
  Snap.List
    [ Snap.Int s.qid; Snap.Partial (Partial.copy s.dv);
      Snap.Partial (Partial.copy s.temp); Snap.ints s.pending;
      Snap.Int s.outstanding; Snap.Bool s.finished ]

let side_of_snap s =
  match Snap.to_list s with
  | [ qid; dv; temp; pending; outstanding; finished ] ->
      { qid = Snap.to_int qid; dv = Snap.to_partial dv;
        temp = Snap.to_partial temp; pending = Snap.to_ints pending;
        outstanding = Snap.to_int outstanding;
        finished = Snap.to_bool finished; span = Tracer.none;
        leg = Tracer.none }
  | _ -> invalid_arg "Sweep_parallel: malformed side snapshot"

let snap_of_vc vc =
  Snap.List
    [ Algorithm.snap_of_entry vc.entry; Snap.Int vc.src; snap_of_side vc.left;
      snap_of_side vc.right ]

let vc_of_snap s =
  match Snap.to_list s with
  | [ entry; src; left; right ] ->
      { entry = Algorithm.entry_of_snap entry; src = Snap.to_int src;
        left = side_of_snap left; right = side_of_snap right;
        span = Tracer.none }
  | _ -> invalid_arg "Sweep_parallel: malformed snapshot"

let snapshot t = Snap.option snap_of_vc t.current
let restore ctx s = { ctx; current = Snap.to_option vc_of_snap s }
