open Repro_relational
open Repro_sim
open Repro_protocol
module Obs = Repro_observability.Obs
module Tracer = Repro_observability.Tracer

let name = "strobe"

(* AL entries, in append order. [Del] carries the key of a deleted source
   tuple; [Ins] a ready full-width answer to project and merge. *)
type action =
  | Del of { source : int; key : Tuple.t }
  | Ins of { full : Delta.t }

type query = {
  entry : Update_queue.entry;
  mutable dv : Partial.t;
  mutable pending : int list;
  mutable outstanding : int;
  (* key-deletes delivered while this query was in flight *)
  mutable kill_keys : (int * Tuple.t) list;
  qid : int;
  mutable span : Tracer.id; (* lint: allow L5 volatile span ids: never checkpointed, Tracer.none after restore *)
  mutable leg : Tracer.id;
}

type t = {
  ctx : Algorithm.ctx;
  (* unanswered query set, newest first (appends are hot; membership and
     removal never depend on order) *)
  mutable rev_uqs : query list;
  mutable rev_al : action list;
  (* entries awaiting install, newest first (reversed at flush — appends
     are hot, flushes amortize the reversal over the whole batch) *)
  mutable rev_batch : Update_queue.entry list;
}

let create ctx =
  Keys.require_keys ~algorithm:"Strobe" ctx.Algorithm.view;
  { ctx; rev_uqs = []; rev_al = []; rev_batch = [] }

let trace t fmt =
  Trace.emit t.ctx.Algorithm.trace ~time:(Engine.now t.ctx.engine)
    ~who:"warehouse" fmt

(* Apply AL to the materialized view atomically: key deletes remove every
   matching view tuple; inserts are added with duplicate suppression (the
   view's keys make any duplicate an already-derived tuple). *)
let flush t =
  if t.rev_al <> [] || t.rev_batch <> [] then begin
    let working = Bag.copy (t.ctx.view_contents ()) in
    List.iter
      (fun action ->
        match action with
        | Del { source; key } ->
            let d =
              Keys.view_deletion t.ctx.view ~contents:working ~source ~key
            in
            Bag.merge_into ~into:working d
        | Ins { full } ->
            let view_delta =
              Algebra.select_project t.ctx.view
                { Partial.lo = 0;
                  hi = View_def.n_sources t.ctx.view - 1;
                  data = full }
            in
            Delta.iter
              (fun tup c ->
                if c > 0 && not (Bag.mem working tup) then
                  Bag.add working tup 1)
              view_delta)
      (List.rev t.rev_al);
    (* Install the net difference as one state transition. *)
    let delta = Bag.copy working in
    Bag.diff_into ~into:delta (t.ctx.view_contents ());
    let txns = List.rev t.rev_batch in
    t.rev_al <- [];
    t.rev_batch <- [];
    trace t "strobe: flush AL (%d txns)" (List.length txns);
    if Obs.active t.ctx.obs then
      Obs.event t.ctx.obs "strobe.flush"
        [ ("txns", Tracer.I (List.length txns)) ];
    t.ctx.install delta ~txns
  end

let maybe_flush t = if t.rev_uqs = [] then flush t

let local t j = Aux_store.answers t.ctx.Algorithm.aux j

(* A live remote answer from [j] reflects installed state + the batch
   deltas from [j] already delivered but awaiting flush (FIFO: anything
   applied at [j] before it answered reached our mailbox first). The aux
   projection holds installed state only, so overlay the batch. *)
let batch_overlay t j =
  Delta.sum
    (List.filter_map
       (fun (e : Update_queue.entry) ->
         if e.update.Message.txn.source = j then Some e.update.Message.delta
         else None)
       t.rev_batch)

let rec advance t q =
  match q.pending with
  | j :: rest when local t j -> (
      match
        Algorithm.local_answer t.ctx ~name ~span:q.span ~target:j
          ~partial:q.dv ~overlay:(batch_overlay t j) ()
      with
      | Some dv ->
          q.pending <- rest;
          q.dv <- dv;
          advance t q
      | None -> assert false (* local t j implies answerable *))
  | j :: rest ->
      q.pending <- rest;
      q.outstanding <- j;
      q.leg <-
        (if Obs.active t.ctx.obs then
           Obs.span t.ctx.obs ~parent:q.span "query"
             [ ("source", Tracer.I j); ("qid", Tracer.I q.qid) ]
         else Tracer.none);
      t.ctx.send j
        (Message.Sweep_query
           { qid = q.qid; target = j; partial = Partial.copy q.dv })
  | [] ->
      (* Query finished: apply the deletes seen during evaluation, then
         append the insert action. *)
      let full = q.dv.Partial.data in
      List.iter
        (fun (source, key) ->
          let keys = Hashtbl.create 4 in
          Hashtbl.replace keys key ();
          Keys.kill_full t.ctx.view ~full ~source ~keys)
        q.kill_keys;
      t.rev_uqs <- List.filter (fun q' -> q'.qid <> q.qid) t.rev_uqs;
      t.rev_al <- Ins { full } :: t.rev_al;
      Obs.finish t.ctx.obs q.span;
      maybe_flush t

let on_update t (entry : Update_queue.entry) =
  (* Strobe consumes updates immediately; the queue is only a mailbox. *)
  (match Update_queue.pop t.ctx.queue with
  | Some e when e.arrival = entry.arrival -> ()
  | _ -> invalid_arg "Strobe.on_update: queue out of sync");
  t.rev_batch <- entry :: t.rev_batch;
  let delta = entry.update.Message.delta in
  let deletes = Delta.negative_part delta in
  let inserts = Delta.positive_part delta in
  let i = entry.update.Message.txn.source in
  (* Deletes: local key-delete actions, registered with in-flight
     queries. *)
  Delta.iter
    (fun tup _c ->
      let key = Keys.source_tuple_key t.ctx.view i tup in
      List.iter (fun q -> q.kill_keys <- (i, key) :: q.kill_keys) t.rev_uqs;
      t.rev_al <- Del { source = i; key } :: t.rev_al)
    deletes;
  (* Inserts: launch a query over the other sources. *)
  if not (Delta.is_empty inserts) then begin
    let n = View_def.n_sources t.ctx.view in
    let span =
      if Obs.active t.ctx.obs then
        Obs.span t.ctx.obs "strobe.txn"
          [ ("txn",
             Tracer.S
               (Format.asprintf "%a" Message.pp_txn_id
                  entry.update.Message.txn)) ]
      else Tracer.none
    in
    let q =
      { entry; dv = Partial.of_source_delta t.ctx.view i inserts;
        pending = Sweep.sweep_order ~n ~i; outstanding = -1;
        kill_keys = []; qid = t.ctx.fresh_qid (); span; leg = Tracer.none }
    in
    t.rev_uqs <- q :: t.rev_uqs;
    advance t q
  end
  else maybe_flush t

let on_answer t msg =
  match msg with
  | Message.Answer { qid; source = j; partial } -> (
      match List.find_opt (fun q -> q.qid = qid) t.rev_uqs with
      | Some q when q.outstanding = j ->
          q.outstanding <- -1;
          Obs.finish t.ctx.obs q.leg;
          q.leg <- Tracer.none;
          q.dv <- partial;
          advance t q
      | Some _ | None ->
          invalid_arg
            (Printf.sprintf "Strobe.on_answer: unexpected answer qid=%d" qid))
  | Message.Snapshot _ | Message.Eca_answer _ | Message.Update_notice _ ->
      invalid_arg "Strobe.on_answer: unexpected message kind"

let on_source_down _ _ = ()
let on_source_up _ _ = ()

let idle t =
  t.rev_uqs = [] && t.rev_al = [] && Update_queue.is_empty t.ctx.queue

module Snap = Repro_durability.Snap

let snap_of_action = function
  | Del { source; key } ->
      Snap.List [ Snap.Int 0; Snap.Int source; Snap.Tup (Array.copy key) ]
  | Ins { full } -> Snap.List [ Snap.Int 1; Snap.Delta (Delta.copy full) ]

let action_of_snap s =
  match Snap.to_list s with
  | [ tag; source; key ] when Snap.to_int tag = 0 ->
      Del { source = Snap.to_int source; key = Snap.to_tuple key }
  | [ tag; full ] when Snap.to_int tag = 1 ->
      Ins { full = Snap.to_delta full }
  | _ -> invalid_arg "Strobe: malformed action snapshot"

let snap_of_query q =
  Snap.List
    [ Algorithm.snap_of_entry q.entry; Snap.Partial (Partial.copy q.dv);
      Snap.ints q.pending; Snap.Int q.outstanding;
      Snap.List
        (List.map
           (fun (source, key) ->
             Snap.List [ Snap.Int source; Snap.Tup (Array.copy key) ])
           q.kill_keys);
      Snap.Int q.qid ]

let query_of_snap s =
  match Snap.to_list s with
  | [ entry; dv; pending; outstanding; kill_keys; qid ] ->
      { entry = Algorithm.entry_of_snap entry; dv = Snap.to_partial dv;
        pending = Snap.to_ints pending; outstanding = Snap.to_int outstanding;
        kill_keys =
          List.map
            (fun kk ->
              match Snap.to_list kk with
              | [ source; key ] -> (Snap.to_int source, Snap.to_tuple key)
              | _ -> invalid_arg "Strobe: malformed kill key snapshot")
            (Snap.to_list kill_keys);
        qid = Snap.to_int qid; span = Tracer.none; leg = Tracer.none }
  | _ -> invalid_arg "Strobe: malformed query snapshot"

(* The batch and query set are checkpointed in delivery order, keeping
   the encoding identical to the pre-deque representation. *)
let snapshot t =
  Snap.List
    [ Snap.List (List.rev_map snap_of_query t.rev_uqs);
      Snap.List (List.map snap_of_action t.rev_al);
      Snap.List (List.rev_map Algorithm.snap_of_entry t.rev_batch) ]

let restore ctx s =
  match Snap.to_list s with
  | [ uqs; rev_al; batch ] ->
      Keys.require_keys ~algorithm:"Strobe" ctx.Algorithm.view;
      { ctx; rev_uqs = List.rev_map query_of_snap (Snap.to_list uqs);
        rev_al = List.map action_of_snap (Snap.to_list rev_al);
        rev_batch =
          List.rev_map Algorithm.entry_of_snap (Snap.to_list batch) }
  | _ -> invalid_arg "Strobe: malformed snapshot"
