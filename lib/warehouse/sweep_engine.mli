(** The shared ViewChange state machine behind the SWEEP family.

    SWEEP, the naive baseline and Global SWEEP all process one update at a
    time with the same left-then-right sweep (Fig. 4); they differ only in
    whether answers are error-corrected and in what happens when a
    ViewChange finishes. This functor owns the sweep mechanics; policies
    supply the two decision points. *)

open Repro_relational

module type POLICY = sig
  val name : string

  (** Apply §4's on-line error correction to answers? (The naive baseline
      says no — that is its entire difference from SWEEP.) *)
  val compensate : bool

  (** May sweep legs be answered from the aux store (DESIGN.md §14)?
      Requires that every completed entry is installed before the next
      ViewChange starts: aux projections advance at install time, so a
      policy that buffers completed-but-uninstalled entries
      (sweep-global) would leave their deltas visible to neither the
      projections nor the interference-compensation queue scan. *)
  val local_answers : bool

  (** Per-instance policy state (install buffers, transaction ledgers…). *)
  type extra

  val create_extra : Algorithm.ctx -> extra

  (** A ViewChange finished: the policy decides how to install
      [view_delta] for [entry] (immediately, buffered, …). The engine
      starts the next update afterwards. *)
  val on_complete :
    Algorithm.ctx -> extra -> Delta.t -> Update_queue.entry -> unit

  (** Is the policy state quiescent (nothing buffered)? *)
  val extra_idle : extra -> bool

  (** Checkpoint / restore the policy state (crash recovery). *)
  val extra_snapshot : extra -> Repro_durability.Snap.t

  val extra_restore : Algorithm.ctx -> Repro_durability.Snap.t -> extra
end

module Make (P : POLICY) : Algorithm.S
