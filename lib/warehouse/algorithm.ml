open Repro_relational
open Repro_sim
open Repro_protocol

type ctx = {
  engine : Engine.t;
  view : View_def.t;
  trace : Trace.t;
  obs : Repro_observability.Obs.t;
  metrics : Metrics.t;
  queue : Update_queue.t;
  send : int -> Message.to_source -> unit;
  install : Delta.t -> txns:Update_queue.entry list -> unit;
  view_contents : unit -> Bag.t;
  fresh_qid : unit -> int;
}

module type S = sig
  type t

  val name : string
  val create : ctx -> t
  val on_update : t -> Update_queue.entry -> unit
  val on_answer : t -> Message.to_warehouse -> unit
  val idle : t -> bool

  (** Freeze the algorithm's resumable state for a checkpoint. Must be a
      deep copy: the returned tree may outlive arbitrary further
      mutation of [t]. *)
  val snapshot : t -> Repro_durability.Snap.t

  (** Rebuild from a {!snapshot} against a fresh context (crash
      recovery). [restore ctx (snapshot t)] must behave identically to
      [t] for all future events. *)
  val restore : ctx -> Repro_durability.Snap.t -> t
end

type packed = Packed : (module S with type t = 'a) * 'a -> packed

let instantiate (module A : S) ctx = Packed ((module A), A.create ctx)
let packed_name (Packed ((module A), _)) = A.name
let packed_on_update (Packed ((module A), st)) e = A.on_update st e
let packed_on_answer (Packed ((module A), st)) m = A.on_answer st m
let packed_idle (Packed ((module A), st)) = A.idle st
let packed_snapshot (Packed ((module A), st)) = A.snapshot st

let restore_packed (module A : S) ctx snap =
  Packed ((module A), A.restore ctx snap)

(* Shared (de)serialization of queue entries: algorithms checkpoint the
   entries they hold references to (pending lists, frames) by value. *)

module Snap = Repro_durability.Snap

let snap_of_entry (e : Update_queue.entry) =
  Snap.List [ Snap.Update e.update; Snap.Int e.arrival; Snap.Float e.arrived_at ]

let entry_of_snap s =
  match Snap.to_list s with
  | [ u; a; t ] ->
      { Update_queue.update = Snap.to_update u; arrival = Snap.to_int a;
        arrived_at = Snap.to_float t }
  | _ -> invalid_arg "Algorithm.entry_of_snap: malformed entry"
