open Repro_relational
open Repro_sim
open Repro_protocol

type ctx = {
  engine : Engine.t;
  view : View_def.t;
  trace : Trace.t;
  obs : Repro_observability.Obs.t;
  metrics : Metrics.t;
  aux : Aux_store.t;
  queue : Update_queue.t;
  send : int -> Message.to_source -> unit;
  install : Delta.t -> txns:Update_queue.entry list -> unit;
  view_contents : unit -> Bag.t;
  fresh_qid : unit -> int;
  source_ok : int -> bool;
  stall_cap : int;
}

module type S = sig
  type t

  val name : string
  val create : ctx -> t
  val on_update : t -> Update_queue.entry -> unit
  val on_answer : t -> Message.to_warehouse -> unit
  val on_source_down : t -> int -> unit
  val on_source_up : t -> int -> unit
  val idle : t -> bool

  (** Freeze the algorithm's resumable state for a checkpoint. Must be a
      deep copy: the returned tree may outlive arbitrary further
      mutation of [t]. *)
  val snapshot : t -> Repro_durability.Snap.t

  (** Rebuild from a {!snapshot} against a fresh context (crash
      recovery). [restore ctx (snapshot t)] must behave identically to
      [t] for all future events. *)
  val restore : ctx -> Repro_durability.Snap.t -> t
end

type packed = Packed : (module S with type t = 'a) * 'a -> packed

let instantiate (module A : S) ctx = Packed ((module A), A.create ctx)
let packed_name (Packed ((module A), _)) = A.name
let packed_on_update (Packed ((module A), st)) e = A.on_update st e
let packed_on_answer (Packed ((module A), st)) m = A.on_answer st m
let packed_on_source_down (Packed ((module A), st)) i = A.on_source_down st i
let packed_on_source_up (Packed ((module A), st)) i = A.on_source_up st i
let packed_idle (Packed ((module A), st)) = A.idle st
let packed_snapshot (Packed ((module A), st)) = A.snapshot st

let restore_packed (module A : S) ctx snap =
  Packed ((module A), A.restore ctx snap)

(* Shared (de)serialization of queue entries: algorithms checkpoint the
   entries they hold references to (pending lists, frames) by value. *)

module Snap = Repro_durability.Snap

let snap_of_entry (e : Update_queue.entry) =
  Snap.List [ Snap.Update e.update; Snap.Int e.arrival; Snap.Float e.arrived_at ]

let entry_of_snap s =
  match Snap.to_list s with
  | [ u; a; t ] ->
      { Update_queue.update = Snap.to_update u; arrival = Snap.to_int a;
        arrived_at = Snap.to_float t }
  | _ -> invalid_arg "Algorithm.entry_of_snap: malformed entry"

(* ————— degraded-mode helpers (shared by the sweep engines) ————— *)

(* An update from source [i] sweeps every other source, so it is
   eligible only while all of them have closed breakers — or can be
   answered locally from the aux store ([local], DESIGN.md §14): a leg
   that never leaves the warehouse does not care about breakers. *)
let sweep_eligible ?(local = fun _ -> false) ctx (e : Update_queue.entry) =
  let i = e.update.Message.txn.source in
  let n = View_def.n_sources ctx.view in
  List.for_all
    (fun j -> ctx.source_ok j || local j)
    (Sweep_order.order ~n ~i)

(* Count queued entries currently parked behind open breakers; each is
   counted in [stalled_updates] once (monotone arrival mark). Returns
   (parked now, new mark). *)
let note_parked ?(local = fun _ -> false) ctx ~stall_mark ~event =
  let parked = ref 0 in
  let mark = ref stall_mark in
  List.iter
    (fun (e : Update_queue.entry) ->
      if not (sweep_eligible ~local ctx e) then begin
        incr parked;
        if e.arrival > !mark then begin
          mark := e.arrival;
          ctx.metrics.Metrics.stalled_updates <-
            ctx.metrics.Metrics.stalled_updates + 1;
          if Repro_observability.Obs.active ctx.obs then
            Repro_observability.Obs.event ctx.obs event
              [ ("txn",
                 Repro_observability.Tracer.S
                   (Format.asprintf "%a" Message.pp_txn_id
                      e.update.Message.txn)) ]
        end
      end)
    (Update_queue.entries ctx.queue);
  (!parked, !mark)

(* ————— self-maintenance helper (shared by the sweep engines) ————— *)

(* Try to answer the leg joining [partial] with source [target] from the
   aux store; on success count it, trace it, and return the extended
   partial. [overlay] is the algorithm's delivered-but-uninstalled delta
   of [target] (see Aux_store.local_answer). *)
let local_answer ctx ~name ?span ~target ~partial ~overlay () =
  match Aux_store.local_answer ctx.aux ~target ~partial ~overlay with
  | None -> None
  | Some p ->
      ctx.metrics.Metrics.local_answers <-
        ctx.metrics.Metrics.local_answers + 1;
      Trace.emit ctx.trace ~time:(Engine.now ctx.engine) ~who:"warehouse"
        "%s: leg %d answered locally from aux store" name target;
      if Repro_observability.Obs.active ctx.obs then
        Repro_observability.Obs.event ctx.obs ?span (name ^ ".local-answer")
          [ ("source", Repro_observability.Tracer.I target) ];
      Some p
