open Repro_relational
open Repro_sim
open Repro_protocol
module Obs = Repro_observability.Obs
module Tracer = Repro_observability.Tracer

let name = "eca"

type pending = {
  entry : Update_queue.entry;
  terms : Message.eca_term list;
  qid : int;
  (* volatile span id: never checkpointed, [Tracer.none] after restore *)
  span : Tracer.id;
}

(* Pending queries, newest first: appends are hot, and every ordered
   consumer reverses at the boundary. *)
type t = { ctx : Algorithm.ctx; mutable rev_pending : pending list }

let create ctx = { ctx; rev_pending = [] }

let trace t fmt =
  Trace.emit t.ctx.Algorithm.trace ~time:(Engine.now t.ctx.engine)
    ~who:"warehouse" fmt

let on_update t (entry : Update_queue.entry) =
  (match Update_queue.pop t.ctx.queue with
  | Some e when e.arrival = entry.arrival -> ()
  | _ -> invalid_arg "Eca.on_update: queue out of sync");
  let a = entry.update.Message.txn.source in
  let delta = entry.update.Message.delta in
  let neg = Delta.negate delta in
  (* Qi = V(Ui) − Σj Qj(Ui): substituting Ui into a term that already pins
     relation a annihilates that term (it does not mention Ra). *)
  let compensations =
    List.concat_map
      (fun p ->
        List.filter_map
          (fun term ->
            if List.mem_assoc a term then None
            else Some ((a, neg) :: term))
          p.terms)
      (List.rev t.rev_pending)
  in
  let terms = [ (a, delta) ] :: compensations in
  let qid = t.ctx.fresh_qid () in
  trace t "eca: query %d with %d terms for %a" qid (List.length terms)
    Message.pp_txn_id entry.update.Message.txn;
  let span =
    if Obs.active t.ctx.obs then
      Obs.span t.ctx.obs "eca.txn"
        [ ("txn",
           Tracer.S
             (Format.asprintf "%a" Message.pp_txn_id entry.update.Message.txn));
          ("terms", Tracer.I (List.length terms));
          ("qid", Tracer.I qid) ]
    else Tracer.none
  in
  t.rev_pending <- { entry; terms; qid; span } :: t.rev_pending;
  (* The centralized site is addressed as source 0 by convention. *)
  t.ctx.send 0 (Message.Eca_query { qid; terms })

let on_answer t msg =
  match msg with
  | Message.Eca_answer { qid; partial } -> (
      match List.find_opt (fun p -> p.qid = qid) t.rev_pending with
      | None ->
          invalid_arg
            (Printf.sprintf "Eca.on_answer: unexpected answer qid=%d" qid)
      | Some p ->
          t.rev_pending <- List.filter (fun p' -> p'.qid <> qid) t.rev_pending;
          let view_delta = Algebra.select_project t.ctx.view partial in
          t.ctx.install view_delta ~txns:[ p.entry ];
          Obs.finish t.ctx.obs p.span)
  | Message.Answer _ | Message.Snapshot _ | Message.Update_notice _ ->
      invalid_arg "Eca.on_answer: unexpected message kind"

let on_source_down _ _ = ()
let on_source_up _ _ = ()
let idle t = t.rev_pending = [] && Update_queue.is_empty t.ctx.queue

module Snap = Repro_durability.Snap

let snap_of_term (term : Message.eca_term) =
  Snap.List
    (List.map
       (fun (src, d) -> Snap.List [ Snap.Int src; Snap.Delta (Delta.copy d) ])
       term)

let term_of_snap s : Message.eca_term =
  List.map
    (fun factor ->
      match Snap.to_list factor with
      | [ src; d ] -> (Snap.to_int src, Snap.to_delta d)
      | _ -> invalid_arg "Eca: malformed term snapshot")
    (Snap.to_list s)

let snap_of_pending p =
  Snap.List
    [ Algorithm.snap_of_entry p.entry;
      Snap.List (List.map snap_of_term p.terms); Snap.Int p.qid ]

let pending_of_snap s =
  match Snap.to_list s with
  | [ entry; terms; qid ] ->
      { entry = Algorithm.entry_of_snap entry;
        terms = List.map term_of_snap (Snap.to_list terms);
        qid = Snap.to_int qid; span = Tracer.none }
  | _ -> invalid_arg "Eca: malformed pending snapshot"

(* Checkpointed in delivery order: the encoding is unchanged by the
   reversed in-memory representation. *)
let snapshot t = Snap.List (List.rev_map snap_of_pending t.rev_pending)

let restore ctx s =
  { ctx; rev_pending = List.rev_map pending_of_snap (Snap.to_list s) }
