(** Per-source circuit breakers: the warehouse-side fuse between query
    deadlines ({!Repro_protocol.Transport} [config.deadline]) and
    degraded-mode maintenance.

    One breaker guards each source link. State machine per source:

    {v
                 k consecutive deadline expiries
        Closed ──────────────────────────────────▶ Open
          ▲  ▲                                      │
          │  │ answer arrives (late heal evidence)  │ seeded probe timer
          │  ╰──────────────────────────────────────┤ (backoff, capped,
          │                                         │  optional budget)
          │     answer arrives (probe succeeded)    ▼
          ╰──────────────────────────────────── Half_open
                                                    │
                                                    │ another expiry
                                                    ╰───────▶ Open
    v}

    Below [k] consecutive expiries {!record_timeout} returns [Retry] and
    the caller resumes the suspended sender immediately (bounded retry).
    On the [k]-th it trips: the sender stays suspended, [on_open] fires
    (algorithms park affected work), and a probe is scheduled on the
    breaker's own seeded {!Repro_sim.Rng} stream — runs stay
    deterministic per seed. A probe moves to [Half_open] and fires
    [on_probe] (the harness resumes the sender, retransmitting the
    parked query); the next answer from the source closes the breaker
    and fires [on_close] (algorithms replay parked work). With
    [probe_limit > 0] a never-healing source is abandoned after that
    many failed probes so the simulation can drain — the run finishes
    [Degraded] instead of livelocking.

    Every transition is counted in {!Metrics} ([breaker_trips],
    [query_timeouts], [degraded_time]) and emitted as a
    ["breaker.transition"] / ["breaker.probe"] / ["breaker.abandon"]
    observability event. *)

type state = Closed | Open | Half_open

val state_name : state -> string

type config = {
  k : int;  (** consecutive deadline expiries that trip the breaker *)
  probe_after : float;  (** initial Open → Half_open probe delay *)
  probe_backoff : float;  (** delay multiplier per failed probe *)
  max_probe_after : float;  (** probe-delay cap *)
  probe_jitter : float;  (** uniform extra fraction in [0, jitter) *)
  probe_limit : int;  (** failed probes before giving up; 0 = unlimited *)
}

val default_config : config

type t

(** What the caller should do after feeding a deadline expiry in. *)
type decision = Retry | Tripped

(** [create engine ~rng ~metrics ~n] — one breaker per source [0..n-1].
    [rng] drives probe jitter only. *)
val create :
  ?config:config ->
  ?obs:Repro_observability.Obs.t ->
  Repro_sim.Engine.t ->
  rng:Repro_sim.Rng.t ->
  metrics:Metrics.t ->
  n:int ->
  t

(** Wire the transition callbacks. The node installs [on_open]/
    [on_close] (notify the algorithm to park / replay); the harness
    installs [on_probe] (resume the suspended transport sender). *)
val set_on_open : t -> (int -> unit) -> unit

val set_on_probe : t -> (int -> unit) -> unit
val set_on_close : t -> (int -> unit) -> unit

val n_sources : t -> int
val state : t -> int -> state

(** [source_ok t i] — may a new sweep leg target source [i]?
    ([Closed] only.) *)
val source_ok : t -> int -> bool

(** At least one source is not [Closed]. *)
val degraded : t -> bool

(** Source [i] exhausted its probe budget and is written off. *)
val abandoned : t -> int -> bool

val any_abandoned : t -> bool

(** Feed in a query-deadline expiry on the link to source [i]. *)
val record_timeout : t -> int -> decision

(** Feed in delivery evidence (an answer/snapshot from source [i]). *)
val record_success : t -> int -> unit

(** Trip source [i]'s breaker immediately (tests). *)
val force_open : t -> int -> unit

(** Close out the current degraded interval into
    [metrics.degraded_time] without changing state (end of run). *)
val flush : t -> unit

(** The owning warehouse crashed: orphan probe timers, close the
    degraded interval. Pair with {!restore} (or {!reset}). *)
val halt : t -> unit

(** Genesis recovery (no checkpoint taken): all sources back to
    [Closed]. *)
val reset : t -> unit

(** Checkpointable state (everything but pending probe timers, which
    {!restore} re-schedules). *)
val snapshot : t -> Repro_durability.Snap.t

val restore : t -> Repro_durability.Snap.t -> unit
