open Repro_relational
module Snap = Repro_durability.Snap

type mode = Off | Keys_only | Full

let mode_to_string = function
  | Off -> "off"
  | Keys_only -> "keys-only"
  | Full -> "full"

let mode_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "off" -> Some Off
  | "keys" | "keys-only" -> Some Keys_only
  | "full" -> Some Full
  | _ -> None

type t = {
  mode : mode;
  view : View_def.t option;
  tracked : int array array;
  (* required ⊆ tracked, per source: the leg against that source can be
     answered from the projection alone. *)
  answerable : bool array;
  widths : int array;
  projs : Bag.t array;
  genesis : Bag.t array;
}

let off () =
  { mode = Off; view = None; tracked = [||]; answerable = [||]; widths = [||];
    projs = [||]; genesis = [||] }

(* Local columns of source [j] among a list of global attribute
   indices. *)
let localize view j globals =
  let ofs = View_def.offset view j and w = View_def.width view j in
  List.filter_map
    (fun g -> if g >= ofs && g < ofs + w then Some (g - ofs) else None)
    globals

(* Global attributes a leg's result can depend on: every join equality
   column (join keys), every join residual's attributes (Algebra.join
   evaluates residuals against both operands of the combined range),
   the selection's attributes and the projected attributes (both applied
   to the full-width tuple at the end of the sweep). *)
let referenced view =
  let acc = ref [] in
  let add g = acc := g :: !acc in
  Array.iter
    (fun (js : Join_spec.t) ->
      List.iter
        (fun (l, r) ->
          add l;
          add r)
        js.Join_spec.equalities;
      match js.Join_spec.residual with
      | Some p -> List.iter add (Predicate.attrs_used p)
      | None -> ())
    (View_def.joins view);
  List.iter add (Predicate.attrs_used (View_def.selection view));
  Array.iter add (View_def.projection view);
  !acc

let join_columns view =
  let acc = ref [] in
  Array.iter
    (fun (js : Join_spec.t) ->
      List.iter
        (fun (l, r) ->
          acc := l :: r :: !acc)
        js.Join_spec.equalities)
    (View_def.joins view);
  !acc

let project_relation rel cols =
  let b = Bag.create () in
  Relation.iter (fun tup c -> Bag.add b (Tuple.project tup cols) c) rel;
  b

let create ~view ~mode ~initial =
  match mode with
  | Off -> off ()
  | _ ->
      let n = View_def.n_sources view in
      if Array.length initial <> n then
        invalid_arg
          (Printf.sprintf "Aux_store.create: %d initial relations for %d sources"
             (Array.length initial) n);
      let refd = referenced view and jcols = join_columns view in
      let required = Array.init n (fun j -> localize view j refd) in
      let tracked =
        Array.init n (fun j ->
            let keys = Schema.key_indices (View_def.schema view j) in
            let wanted =
              match mode with
              | Off -> assert false
              | Keys_only -> keys @ localize view j jcols
              | Full -> keys @ required.(j)
            in
            Array.of_list (List.sort_uniq compare wanted))
      in
      let answerable =
        Array.init n (fun j ->
            List.for_all
              (fun c -> Array.exists (fun c' -> c' = c) tracked.(j))
              required.(j))
      in
      let widths = Array.init n (View_def.width view) in
      { mode; view = Some view; tracked; answerable; widths;
        projs = Array.init n (fun j -> project_relation initial.(j) tracked.(j));
        genesis =
          Array.init n (fun j -> project_relation initial.(j) tracked.(j)) }

let mode t = t.mode
let tracked t j = if t.mode = Off then [||] else t.tracked.(j)
let answers t j = t.mode <> Off && t.answerable.(j)

let apply t ~source delta =
  if t.mode <> Off then
    Delta.iter
      (fun tup c -> Bag.add t.projs.(source) (Tuple.project tup t.tracked.(source)) c)
      delta

(* Lift a projected tuple back to source width: tracked columns carry
   their values, untracked columns become Null placeholders. Safe
   because answerability guarantees no join key, residual, selection or
   projection attribute is untracked — a Null is never consulted and
   never survives the final projection. *)
let lift t j proj =
  let lifted = Delta.empty () in
  Bag.iter
    (fun pt c ->
      let full = Array.make t.widths.(j) Value.Null in
      Array.iteri (fun k col -> full.(col) <- pt.(k)) t.tracked.(j);
      Bag.add lifted full c)
    proj;
  lifted

let local_answer t ~target ~partial ~overlay =
  if not (answers t target) then None
  else begin
    let view = Option.get t.view in
    let j = target in
    let proj = Bag.copy t.projs.(j) in
    Delta.iter
      (fun tup c -> Bag.add proj (Tuple.project tup t.tracked.(j)) c)
      overlay;
    let pj = { Partial.lo = j; hi = j; data = lift t j proj } in
    Some
      (if j < partial.Partial.lo then Algebra.join view pj partial
       else Algebra.join view partial pj)
  end

let snapshot t =
  match t.mode with
  | Off -> Snap.Unit
  | _ ->
      Snap.List
        (Array.to_list (Array.map (fun b -> Snap.Delta (Bag.copy b)) t.projs))

let restore t s =
  if t.mode <> Off then begin
    let parts = Snap.to_list s in
    if List.length parts <> Array.length t.projs then
      invalid_arg "Aux_store.restore: source count mismatch";
    List.iteri (fun j p -> t.projs.(j) <- Bag.copy (Snap.to_delta p)) parts
  end

let reset t =
  Array.iteri (fun j g -> t.projs.(j) <- Bag.copy g) t.genesis

let bytes t = String.length (Snap.encode (snapshot t))
